(* RCC core tests: the §3.4.1 permutation bijection, client mapping,
   recovery contracts. *)

module Permutation = Rcc_core.Permutation
module Client_map = Rcc_core.Client_map
module Contract = Rcc_core.Contract
module Msg = Rcc_messages.Msg

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- permutation --------------------------------------------------------- *)

let test_factorial () =
  check Alcotest.int "0!" 1 (Permutation.factorial 0);
  check Alcotest.int "1!" 1 (Permutation.factorial 1);
  check Alcotest.int "5!" 120 (Permutation.factorial 5);
  check Alcotest.int "11!" 39_916_800 (Permutation.factorial 11);
  Alcotest.check_raises "21! overflows"
    (Invalid_argument "Permutation.factorial: out of range") (fun () ->
      ignore (Permutation.factorial 21))

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all
    (fun x ->
      x >= 0 && x < n
      &&
      if seen.(x) then false
      else begin
        seen.(x) <- true;
        true
      end)
    a

let test_of_index_bijective_len4 () =
  (* All 24 indices map to distinct valid permutations of 4 elements. *)
  let seen = Hashtbl.create 24 in
  for h = 0 to 23 do
    let p = Permutation.of_index h ~len:4 in
    check Alcotest.bool "valid permutation" true (is_permutation p);
    let key = String.concat "," (Array.to_list (Array.map string_of_int p)) in
    check Alcotest.bool (Printf.sprintf "h=%d fresh" h) false (Hashtbl.mem seen key);
    Hashtbl.replace seen key ()
  done;
  check Alcotest.int "24 distinct permutations" 24 (Hashtbl.length seen)

let test_identity_and_base_cases () =
  check Alcotest.(array int) "len 1" [| 0 |] (Permutation.of_index 0 ~len:1);
  check Alcotest.bool "h=0 is some fixed order" true
    (is_permutation (Permutation.of_index 0 ~len:6))

let index_roundtrip =
  qtest "permutation: index_of inverts of_index"
    QCheck2.Gen.(pair (int_range 1 7) small_int)
    (fun (len, raw) ->
      let h = raw mod Permutation.factorial len in
      Permutation.index_of (Permutation.of_index h ~len) = h)

let test_of_index_validation () =
  Alcotest.check_raises "h too large"
    (Invalid_argument "Permutation.of_index: bad index") (fun () ->
      ignore (Permutation.of_index 24 ~len:4));
  Alcotest.check_raises "empty" (Invalid_argument "Permutation.of_index: empty sequence")
    (fun () -> ignore (Permutation.of_index 0 ~len:0))

let seed_in_range =
  qtest "permutation: digest seed within len!"
    QCheck2.Gen.(pair (int_range 1 10) string)
    (fun (len, s) ->
      let digest = Rcc_crypto.Sha256.digest s in
      let h = Permutation.seed_of_digest digest ~len in
      h >= 0 && h < Permutation.factorial len)

let test_order_of_round_deterministic () =
  let digests = [ "aa"; "bb"; "cc"; "dd" ] in
  let a = Permutation.order_of_round ~digests ~len:4 in
  let b = Permutation.order_of_round ~digests ~len:4 in
  check Alcotest.(array int) "same inputs, same order" a b;
  check Alcotest.bool "valid" true (is_permutation a);
  (* Different round content gives (almost surely) a different order for
     some sequence; check over several variations to avoid flakiness. *)
  let variations =
    List.init 50 (fun i -> Permutation.order_of_round ~digests:[ string_of_int i ] ~len:4)
  in
  let distinct =
    List.sort_uniq compare (List.map (fun p -> Array.to_list p) variations)
  in
  check Alcotest.bool "orders vary with content" true (List.length distinct > 3)

let test_order_distribution_covers_all () =
  (* §3.4.1's fairness claim: over many rounds, the digest-seeded order
     visits every permutation (no instance has reliable influence). *)
  let seen = Hashtbl.create 6 in
  for i = 0 to 199 do
    let order =
      Permutation.order_of_round ~digests:[ Printf.sprintf "round-%d" i ] ~len:3
    in
    Hashtbl.replace seen (Array.to_list order) ()
  done;
  check Alcotest.int "all 3! orders appear" 6 (Hashtbl.length seen)

(* --- client map ------------------------------------------------------------ *)

let test_client_map_home () =
  let m = Client_map.create ~z:4 ~cap_per_instance:2 in
  check Alcotest.int "home" 3 (Client_map.home_instance m 7);
  check Alcotest.int "current = home initially" 3 (Client_map.current_instance m 7)

let test_client_map_change_and_cap () =
  let m = Client_map.create ~z:3 ~cap_per_instance:1 in
  (* client 0's home is 0; move to 1 *)
  check Alcotest.bool "change ok" true
    (Result.is_ok (Client_map.request_change m ~client:0 ~target:1));
  check Alcotest.int "moved" 1 (Client_map.current_instance m 0);
  check Alcotest.int "population" 1 (Client_map.population m 1);
  (* instance 1 is at capacity for adopted clients *)
  check Alcotest.bool "cap enforced" true
    (match Client_map.request_change m ~client:3 ~target:1 with
    | Error `At_capacity -> true
    | Ok () | Error `Same_instance -> false);
  (* same-instance requests are rejected *)
  check Alcotest.bool "same instance" true
    (match Client_map.request_change m ~client:0 ~target:1 with
    | Error `Same_instance -> true
    | Ok () | Error `At_capacity -> false);
  (* moving home again frees the slot *)
  check Alcotest.bool "move home" true
    (Result.is_ok (Client_map.request_change m ~client:0 ~target:0));
  check Alcotest.int "slot released" 0 (Client_map.population m 1)

(* Invariant under random instance-change traffic: adopted populations
   equal the number of clients currently away from home, and never exceed
   the cap. *)
let client_map_population_invariant =
  qtest ~count:200 "client map: population invariant under random changes"
    QCheck2.Gen.(
      pair (int_range 2 5)
        (list_size (int_range 0 40) (pair (int_range 0 19) (int_range 0 4))))
    (fun (z, ops) ->
      let cap = 3 in
      let m = Client_map.create ~z ~cap_per_instance:cap in
      List.iter
        (fun (client, target) ->
          if target < z then
            ignore (Client_map.request_change m ~client ~target))
        ops;
      let adopted = ref 0 in
      for c = 0 to 19 do
        if Client_map.current_instance m c <> Client_map.home_instance m c then
          incr adopted
      done;
      let total_pop = ref 0 in
      let capped = ref true in
      for x = 0 to z - 1 do
        let p = Client_map.population m x in
        total_pop := !total_pop + p;
        if p > cap then capped := false
      done;
      !adopted = !total_pop && !capped)

(* --- contracts --------------------------------------------------------------- *)

let rng = Rcc_common.Rng.create 23
let secret, _ = Rcc_crypto.Signature.keygen rng

let batch id =
  Rcc_messages.Batch.create ~id ~client:0
    ~txns:[| Rcc_workload.Txn.{ key = id; op = Write id } |]
    ~secret

let test_contract_build_and_validate () =
  let accepted x = if x = 1 then None else Some (batch x, [ 0; 1; 2 ]) in
  let contract = Contract.build ~round:5 ~accepted ~z:3 in
  check Alcotest.int "entries for accepted instances" 2
    (List.length contract.Contract.entries);
  check Alcotest.bool "validates" true
    (Result.is_ok (Contract.validate contract ~n:4 ~min_cert:2));
  check Alcotest.bool "insufficient proof rejected" true
    (Result.is_error (Contract.validate contract ~n:4 ~min_cert:4));
  check Alcotest.bool "out-of-range certifier rejected" true
    (Result.is_error (Contract.validate contract ~n:2 ~min_cert:2))

let test_contract_msg_roundtrip () =
  let contract =
    Contract.build ~round:9 ~accepted:(fun x -> Some (batch x, [ 0; 1 ])) ~z:2
  in
  match Contract.of_msg (Contract.to_msg contract) with
  | Some c ->
      check Alcotest.int "round survives" 9 c.Contract.round;
      check Alcotest.int "entries survive" 2 (List.length c.Contract.entries)
  | None -> Alcotest.fail "roundtrip failed"

let test_contract_of_msg_other () =
  check Alcotest.bool "non-contract message" true
    (Option.is_none
       (Contract.of_msg (Msg.Prepare { instance = 0; view = 0; seq = 0; digest = "" })))

let test_contract_round_mismatch () =
  let entry =
    { Msg.ce_instance = 0; ce_round = 3; ce_batch = batch 0; ce_cert_replicas = [ 0; 1 ] }
  in
  let contract = { Contract.round = 4; entries = [ entry ] } in
  check Alcotest.bool "round mismatch rejected" true
    (Result.is_error (Contract.validate contract ~n:4 ~min_cert:1))

let suite =
  ( "core",
    [
      Alcotest.test_case "factorial" `Quick test_factorial;
      Alcotest.test_case "of_index bijective (len 4)" `Quick test_of_index_bijective_len4;
      Alcotest.test_case "base cases" `Quick test_identity_and_base_cases;
      index_roundtrip;
      Alcotest.test_case "of_index validation" `Quick test_of_index_validation;
      seed_in_range;
      Alcotest.test_case "order_of_round" `Quick test_order_of_round_deterministic;
      Alcotest.test_case "order distribution" `Quick test_order_distribution_covers_all;
      Alcotest.test_case "client map home" `Quick test_client_map_home;
      Alcotest.test_case "client map change/cap" `Quick test_client_map_change_and_cap;
      client_map_population_invariant;
      Alcotest.test_case "contract build/validate" `Quick test_contract_build_and_validate;
      Alcotest.test_case "contract msg roundtrip" `Quick test_contract_msg_roundtrip;
      Alcotest.test_case "contract of_msg other" `Quick test_contract_of_msg_other;
      Alcotest.test_case "contract round mismatch" `Quick test_contract_round_mismatch;
    ] )
