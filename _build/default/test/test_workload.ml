(* Workload tests: Zipfian distribution, YCSB generator, transactions. *)

module Zipf = Rcc_workload.Zipf
module Ycsb = Rcc_workload.Ycsb
module Txn = Rcc_workload.Txn
module Kv = Rcc_storage.Kv_store

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let zipf_bounds =
  qtest "zipf: draws within [0, n)"
    QCheck2.Gen.(pair (int_range 1 10_000) small_int)
    (fun (n, seed) ->
      let z = Zipf.create ~n ~theta:0.9 in
      let rng = Rcc_common.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let k = Zipf.next z rng in
        if k < 0 || k >= n then ok := false
      done;
      !ok)

let test_zipf_skew () =
  (* With theta = 0.9 the most popular key vastly exceeds uniform share. *)
  let n = 10_000 in
  let z = Zipf.create ~n ~theta:0.9 in
  let rng = Rcc_common.Rng.create 3 in
  let hits = Array.make n 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let k = Zipf.next z rng in
    hits.(k) <- hits.(k) + 1
  done;
  let top = Array.fold_left max 0 hits in
  let uniform_share = draws / n in
  check Alcotest.bool "skewed head" true (top > 50 * uniform_share);
  (* And the tail is still populated: at least 10% of keys are touched. *)
  let touched = Array.fold_left (fun acc h -> if h > 0 then acc + 1 else acc) 0 hits in
  check Alcotest.bool "long tail exists" true (touched > n / 10)

let test_zipf_determinism () =
  let z = Zipf.create ~n:1000 ~theta:0.9 in
  let a = Rcc_common.Rng.create 5 and b = Rcc_common.Rng.create 5 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Zipf.next z a) (Zipf.next z b)
  done

let test_zipf_validation () =
  Alcotest.check_raises "bad n" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~theta:0.5));
  Alcotest.check_raises "bad theta" (Invalid_argument "Zipf.create: theta in [0,1)")
    (fun () -> ignore (Zipf.create ~n:10 ~theta:1.0))

let test_zipf_skew_monotone_in_theta () =
  let top_share theta =
    let n = 1000 in
    let z = Zipf.create ~n ~theta in
    let rng = Rcc_common.Rng.create 9 in
    let hits = Array.make n 0 in
    for _ = 1 to 20_000 do
      let k = Zipf.next z rng in
      hits.(k) <- hits.(k) + 1
    done;
    Array.fold_left max 0 hits
  in
  let low = top_share 0.01 and mid = top_share 0.5 and high = top_share 0.99 in
  check Alcotest.bool
    (Printf.sprintf "skew grows with theta (%d < %d < %d)" low mid high)
    true
    (low < mid && mid < high)

let test_ycsb_write_ratio () =
  let gen = Ycsb.create ~records:1000 ~write_ratio:0.9 ~theta:0.9 ~seed:7 () in
  let writes = ref 0 in
  let total = 10_000 in
  for _ = 1 to total do
    match (Ycsb.next_txn gen).Txn.op with
    | Txn.Write _ -> incr writes
    | Txn.Read -> ()
  done;
  let ratio = float_of_int !writes /. float_of_int total in
  check Alcotest.bool "~90% writes" true (ratio > 0.88 && ratio < 0.92)

let test_ycsb_batch_and_store () =
  let gen = Ycsb.create ~records:100 ~write_ratio:1.0 ~theta:0.5 ~seed:1 () in
  let batch = Ycsb.batch gen ~size:25 in
  check Alcotest.int "batch size" 25 (Array.length batch);
  let store = Kv.create () in
  Ycsb.init_store gen store;
  check Alcotest.int "store populated" 100 (Kv.size store);
  Array.iter (fun txn -> ignore (Txn.apply store txn)) batch;
  check Alcotest.int "writes applied" 25 (Kv.writes_performed store)

let test_txn_apply () =
  let store = Kv.create () in
  Kv.init_records store ~count:4;
  let w = Txn.{ key = 2; op = Write 55 } in
  check Alcotest.int "write returns value" 55 (Txn.apply store w);
  let r = Txn.{ key = 2; op = Read } in
  check Alcotest.int "read returns stored" 55 (Txn.apply store r);
  check Alcotest.int "read of missing key is 0" 0
    (Txn.apply store Txn.{ key = 77; op = Read })

let txn_encode_distinct =
  qtest "txn: encode is injective"
    QCheck2.Gen.(pair (pair small_int (option small_int)) (pair small_int (option small_int)))
    (fun ((k1, v1), (k2, v2)) ->
      let txn k v =
        Txn.{ key = k; op = (match v with Some v -> Write v | None -> Read) }
      in
      let a = txn k1 v1 and b = txn k2 v2 in
      Txn.equal a b || Txn.encode a <> Txn.encode b)

let test_txn_equal_pp () =
  let a = Txn.{ key = 1; op = Write 2 } in
  check Alcotest.bool "equal self" true (Txn.equal a a);
  check Alcotest.bool "read <> write" false (Txn.equal a Txn.{ key = 1; op = Read });
  check Alcotest.string "pp write" "W(1:=2)" (Format.asprintf "%a" Txn.pp a);
  check Alcotest.string "pp read" "R(3)"
    (Format.asprintf "%a" Txn.pp Txn.{ key = 3; op = Read })

let suite =
  ( "workload",
    [
      zipf_bounds;
      Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
      Alcotest.test_case "zipf determinism" `Quick test_zipf_determinism;
      Alcotest.test_case "zipf validation" `Quick test_zipf_validation;
      Alcotest.test_case "zipf skew monotone" `Quick test_zipf_skew_monotone_in_theta;
      Alcotest.test_case "ycsb write ratio" `Quick test_ycsb_write_ratio;
      Alcotest.test_case "ycsb batch/store" `Quick test_ycsb_batch_and_store;
      Alcotest.test_case "txn apply" `Quick test_txn_apply;
      txn_encode_distinct;
      Alcotest.test_case "txn equal/pp" `Quick test_txn_equal_pp;
    ] )
