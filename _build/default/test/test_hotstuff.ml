(* HotStuff tests: 4-phase decide, parallel leaders with in-order
   execution, the skip pacemaker, blacklisting. *)

module H = Harness.Make (Rcc_hotstuff.Hotstuff_replica)
module Hs = Rcc_hotstuff.Hotstuff_replica

let check = Alcotest.check

let test_four_phase_decide () =
  let t = H.create ~n:4 () in
  (* Replica 0 leads seq 0. *)
  H.submit t ~replica:0 (Harness.make_batch 1);
  H.run t 0.01;
  for r = 0 to 3 do
    check Alcotest.(option int)
      (Printf.sprintf "replica %d decided" r)
      (Some 1)
      (H.accepted_batch_id t ~replica:r ~round:0)
  done

let test_parallel_leaders_round_robin () =
  let t = H.create ~n:4 () in
  (* Each replica leads its own residue class: batches from leaders 0..3
     land in seqs 0..3. *)
  for leader = 0 to 3 do
    H.submit t ~replica:leader (Harness.make_batch (100 + leader))
  done;
  H.run t 0.05;
  for seq = 0 to 3 do
    check Alcotest.(option int)
      (Printf.sprintf "seq %d from leader %d" seq seq)
      (Some (100 + seq))
      (H.accepted_batch_id t ~replica:0 ~round:seq)
  done;
  check Alcotest.int "frontier advanced" 3 (Hs.decided_upto (H.inst t 0))

let test_second_round_of_leader () =
  let t = H.create ~n:4 () in
  for leader = 0 to 3 do
    H.submit t ~replica:leader (Harness.make_batch leader)
  done;
  H.submit t ~replica:1 (Harness.make_batch 55);
  H.run t 0.05;
  check Alcotest.(option int) "leader 1's second batch at seq 5" (Some 55)
    (H.accepted_batch_id t ~replica:2 ~round:5)

let test_skip_dead_leader () =
  let t = H.create ~n:4 ~timeout:(Rcc_sim.Engine.ms 20) () in
  H.kill t 2;
  (* Leaders 0,1,3 propose; leader 2's seq 2 must be skipped by quorum. *)
  List.iter (fun l -> H.submit t ~replica:l (Harness.make_batch (10 + l))) [ 0; 1; 3 ];
  H.run t 0.5;
  check Alcotest.(option int) "seq 0 decided" (Some 10)
    (H.accepted_batch_id t ~replica:0 ~round:0);
  check Alcotest.(option int) "seq 3 decided after skip" (Some 13)
    (H.accepted_batch_id t ~replica:0 ~round:3);
  (* The skipped round decided as a null batch. *)
  (match Hashtbl.find_opt (H.node t 0).H.accepted 2 with
  | Some acc ->
      check Alcotest.bool "null fill for dead leader" true
        (Rcc_messages.Batch.is_null acc.Rcc_replica.Acceptance.batch)
  | None -> Alcotest.fail "seq 2 was not skipped");
  check Alcotest.bool "dead leader blacklisted" true
    (Hs.blacklisted (H.inst t 0) 2)

let test_blacklisted_leader_rounds_skip_fast () =
  let t = H.create ~n:4 ~timeout:(Rcc_sim.Engine.ms 20) () in
  H.kill t 2;
  List.iter (fun l -> H.submit t ~replica:l (Harness.make_batch l)) [ 0; 1; 3 ];
  H.run t 0.3;
  (* Next wave: leader 2's second round (seq 6) should be skipped eagerly
     without another full timeout. *)
  List.iter (fun l -> H.submit t ~replica:l (Harness.make_batch (20 + l))) [ 0; 1; 3 ];
  H.run t 0.6;
  check Alcotest.(option int) "seq 7 decided (past second gap)" (Some 23)
    (H.accepted_batch_id t ~replica:1 ~round:7)

let test_votes_require_leader () =
  let t = H.create ~n:4 () in
  (* A proposal claiming a seq whose leader is another replica is ignored. *)
  let b = Harness.make_batch 9 in
  Hs.handle (H.inst t 1) ~src:3
    (Rcc_messages.Msg.Hs_proposal
       { view = 0; phase = 0; seq = 0; batch = Some b; digest = b.Rcc_messages.Batch.digest });
  H.run t 0.01;
  check Alcotest.(option int) "wrong leader ignored" None
    (H.accepted_batch_id t ~replica:1 ~round:0)

let suite =
  ( "hotstuff",
    [
      Alcotest.test_case "four-phase decide" `Quick test_four_phase_decide;
      Alcotest.test_case "parallel leaders" `Quick test_parallel_leaders_round_robin;
      Alcotest.test_case "leader's second round" `Quick test_second_round_of_leader;
      Alcotest.test_case "skip dead leader" `Quick test_skip_dead_leader;
      Alcotest.test_case "eager skip after blacklist" `Quick test_blacklisted_leader_rounds_skip_fast;
      Alcotest.test_case "wrong leader ignored" `Quick test_votes_require_leader;
    ] )
