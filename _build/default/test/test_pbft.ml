(* PBFT instance tests over the direct-delivery harness: normal case,
   agreement (R3), dark-replica detection (R2), view changes (R4),
   checkpoint garbage collection, pipelining. *)

module H = Harness.Make (Rcc_pbft.Pbft_instance)
module P = Rcc_pbft.Pbft_instance
module Byz = Rcc_replica.Byz

let check = Alcotest.check

let test_normal_case () =
  let t = H.create ~n:4 () in
  H.submit t ~replica:0 (Harness.make_batch 1);
  H.run t 0.01;
  for r = 0 to 3 do
    check Alcotest.(option int)
      (Printf.sprintf "replica %d accepted round 0" r)
      (Some 1)
      (H.accepted_batch_id t ~replica:r ~round:0)
  done

let test_pipelined_rounds () =
  let t = H.create ~n:4 () in
  (* The primary proposes ten batches back-to-back without waiting. *)
  for id = 0 to 9 do
    H.submit t ~replica:0 (Harness.make_batch id)
  done;
  H.run t 0.05;
  for round = 0 to 9 do
    check Alcotest.(option int)
      (Printf.sprintf "round %d" round)
      (Some round)
      (H.accepted_batch_id t ~replica:2 ~round)
  done

let test_agreement_r3 () =
  let t = H.create ~n:7 () in
  for id = 0 to 4 do
    H.submit t ~replica:0 (Harness.make_batch id)
  done;
  H.run t 0.05;
  (* All replicas agree on the batch of every round. *)
  for round = 0 to 4 do
    let reference = H.accepted_batch_id t ~replica:0 ~round in
    check Alcotest.bool "reference exists" true (Option.is_some reference);
    for r = 1 to 6 do
      check Alcotest.(option int) "same decision" reference
        (H.accepted_batch_id t ~replica:r ~round)
    done
  done

let test_backup_ignores_non_primary_proposal () =
  let t = H.create ~n:4 () in
  (* Replica 2 is not the primary; its proposal must be ignored. *)
  H.submit t ~replica:2 (Harness.make_batch 5);
  H.run t 0.01;
  check Alcotest.(option int) "no acceptance" None
    (H.accepted_batch_id t ~replica:1 ~round:0)

let test_dark_replica_detects_failure () =
  (* The primary excludes replica 3 from PRE-PREPAREs: replica 3 sees the
     other backups' PREPAREs but cannot accept, and must blame the primary
     within the timeout (requirement R2). *)
  let byz self =
    if self = 0 then Byz.dark_primary ~victims:[ 3 ] () else Byz.honest
  in
  let t = H.create ~n:4 ~byz ~timeout:(Rcc_sim.Engine.ms 50) ~unified:true () in
  H.submit t ~replica:0 (Harness.make_batch 1);
  H.run t 0.5;
  check Alcotest.(option int) "victim did not accept" None
    (H.accepted_batch_id t ~replica:3 ~round:0);
  check Alcotest.(option int) "others accepted" (Some 1)
    (H.accepted_batch_id t ~replica:1 ~round:0);
  check Alcotest.bool "victim blamed the primary" true
    (List.exists (fun (_, blamed) -> blamed = 0) (H.node t 3).H.failures)

let test_standalone_view_change () =
  (* A malicious primary keeps backups 2 and 3 in the dark. They see the
     other backup's PREPAREs, stall, time out, and the cluster elects
     replica 1 (view 1 mod n), which re-proposes from its log (R4). *)
  let byz self =
    if self = 0 then Byz.dark_primary ~victims:[ 2; 3 ] () else Byz.honest
  in
  let t = H.create ~n:4 ~byz ~timeout:(Rcc_sim.Engine.ms 50) () in
  H.submit t ~replica:0 (Harness.make_batch 1);
  H.run t 1.0;
  check Alcotest.int "new primary is replica 1" 1 (P.primary (H.inst t 1));
  check Alcotest.int "backups agree on primary" 1 (P.primary (H.inst t 2));
  check Alcotest.bool "new view installed" true (P.view (H.inst t 2) >= 1);
  (* The re-proposal delivered the round to the dark replicas. *)
  check Alcotest.(option int) "victim completed round 0 after re-proposal"
    (Some 1)
    (H.accepted_batch_id t ~replica:3 ~round:0)

let test_view_change_reproposes () =
  let byz self =
    if self = 0 then Byz.dark_primary ~victims:[ 2; 3 ] () else Byz.honest
  in
  let t = H.create ~n:4 ~byz ~timeout:(Rcc_sim.Engine.ms 50) () in
  for id = 0 to 2 do
    H.submit t ~replica:0 (Harness.make_batch id)
  done;
  (* Wait out the view change, then the new primary leads fresh rounds. *)
  H.run t 1.0;
  H.submit t ~replica:1 (Harness.make_batch 77);
  H.run t 1.5;
  let accepted_new =
    List.exists
      (fun round -> H.accepted_batch_id t ~replica:2 ~round = Some 77)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  check Alcotest.bool "new primary's batch accepted" true accepted_new

let test_unified_set_primary () =
  let t = H.create ~n:4 ~unified:true ~timeout:(Rcc_sim.Engine.ms 50) () in
  H.submit t ~replica:0 (Harness.make_batch 1);
  H.run t 0.01;
  (* The coordinator (simulated here) installs replica 2 as primary. *)
  for r = 0 to 3 do
    P.set_primary (H.inst t r) 2 ~view:1
  done;
  H.run t 0.02;
  check Alcotest.int "primary installed" 2 (P.primary (H.inst t 1));
  H.submit t ~replica:2 (Harness.make_batch 9);
  H.run t 0.05;
  let found =
    List.exists
      (fun round -> H.accepted_batch_id t ~replica:0 ~round = Some 9)
      [ 0; 1; 2; 3 ]
  in
  check Alcotest.bool "new primary proposes" true found

let test_adopt_via_contract () =
  let byz self =
    if self = 0 then Byz.dark_primary ~victims:[ 3 ] () else Byz.honest
  in
  let t = H.create ~n:4 ~byz ~unified:true () in
  H.submit t ~replica:0 (Harness.make_batch 4);
  H.run t 0.01;
  check Alcotest.(option int) "victim in the dark" None
    (H.accepted_batch_id t ~replica:3 ~round:0);
  (* Recovery: adopt the batch with another replica's accept proof. *)
  (match P.accepted_batch (H.inst t 1) ~round:0 with
  | Some (batch, cert) -> P.adopt (H.inst t 3) ~round:0 batch ~cert
  | None -> Alcotest.fail "replica 1 should have the batch");
  check Alcotest.(option int) "victim recovered" (Some 4)
    (H.accepted_batch_id t ~replica:3 ~round:0)

let test_equivocating_primary_never_commits () =
  let byz self = if self = 0 then Byz.equivocator else Byz.honest in
  let t = H.create ~n:4 ~byz ~timeout:(Rcc_sim.Engine.ms 50) ~unified:true () in
  H.submit t ~replica:0 (Harness.make_batch 1);
  H.run t 0.4;
  (* Safety: conflicting proposals split the PREPAREs; no honest replica
     can reach a 2f+1 quorum on either digest. *)
  for r = 1 to 3 do
    check Alcotest.(option int)
      (Printf.sprintf "replica %d accepted nothing" r)
      None
      (H.accepted_batch_id t ~replica:r ~round:0)
  done;
  (* Liveness: the backups blame the primary. *)
  check Alcotest.bool "equivocator blamed" true
    (List.exists
       (fun r -> List.exists (fun (_, blamed) -> blamed = 0) (H.node t r).H.failures)
       [ 1; 2; 3 ])

let test_checkpoint_gc () =
  let t = H.create ~n:4 () in
  (* checkpoint_interval is 64 in the harness; push well past it. *)
  for id = 0 to 150 do
    H.submit t ~replica:0 (Harness.make_batch id)
  done;
  H.run t 0.5;
  check Alcotest.bool "stable checkpoint advanced" true
    (P.stable_checkpoint (H.inst t 1) >= 64);
  check Alcotest.(option int) "recent rounds still accepted" (Some 150)
    (H.accepted_batch_id t ~replica:1 ~round:150);
  (* The checkpoint log retains the proofs with f+1 attesters. *)
  let log = P.checkpoint_log (H.inst t 1) in
  check Alcotest.bool "checkpoint log populated" true
    (Rcc_storage.Checkpoint_store.count log >= 2);
  (match Rcc_storage.Checkpoint_store.stable log with
  | Some proof ->
      check Alcotest.bool "enough attesters" true
        (List.length proof.Rcc_storage.Checkpoint_store.attesters >= 2)
  | None -> Alcotest.fail "no stable checkpoint proof")

let test_incomplete_rounds () =
  let byz self =
    if self = 0 then Byz.dark_primary ~victims:[ 3 ] () else Byz.honest
  in
  let t = H.create ~n:4 ~byz ~unified:true () in
  H.submit t ~replica:0 (Harness.make_batch 0);
  H.run t 0.01;
  check Alcotest.(list int) "victim reports round 0 incomplete" [ 0 ]
    (P.incomplete_rounds (H.inst t 3));
  check Alcotest.(list int) "healthy replica has none" []
    (P.incomplete_rounds (H.inst t 1))

let test_wrong_view_messages_ignored () =
  let t = H.create ~n:4 () in
  let inst = H.inst t 1 in
  let batch = Harness.make_batch 3 in
  (* A pre-prepare claiming a future view is not from the current primary's
     view and must be ignored. *)
  P.handle inst ~src:0
    (Rcc_messages.Msg.Pre_prepare { instance = 0; view = 5; seq = 0; batch });
  check Alcotest.(option int) "future-view proposal ignored" None
    (H.accepted_batch_id t ~replica:1 ~round:0);
  (* Same for a prepare with a mismatched view. *)
  P.handle inst ~src:2
    (Rcc_messages.Msg.Prepare { instance = 0; view = 5; seq = 0; digest = batch.Rcc_messages.Batch.digest });
  check Alcotest.bool "no prepared state from stray view" false
    (P.prepared_round inst ~round:0)

let test_prepared_predicate () =
  let t = H.create ~n:4 () in
  H.submit t ~replica:0 (Harness.make_batch 0);
  H.run t 0.01;
  check Alcotest.bool "round 0 prepared at backup" true
    (P.prepared_round (H.inst t 1) ~round:0);
  check Alcotest.bool "unknown round not prepared" false
    (P.prepared_round (H.inst t 1) ~round:42)

(* Agreement property under random workload shapes: whatever the batch
   count and cluster size, every replica accepts the same sequence. *)
let agreement_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"pbft: agreement over random workloads"
       QCheck2.Gen.(pair (int_range 1 15) (oneofl [ 4; 7 ]))
       (fun (nbatches, n) ->
         let t = H.create ~n () in
         for id = 0 to nbatches - 1 do
           H.submit t ~replica:0 (Harness.make_batch id)
         done;
         H.run t 0.2;
         let ok = ref true in
         for round = 0 to nbatches - 1 do
           let reference = H.accepted_batch_id t ~replica:0 ~round in
           if Option.is_none reference then ok := false;
           for r = 1 to n - 1 do
             if H.accepted_batch_id t ~replica:r ~round <> reference then ok := false
           done
         done;
         !ok))

let suite =
  ( "pbft",
    [
      agreement_property;
      Alcotest.test_case "normal case" `Quick test_normal_case;
      Alcotest.test_case "pipelined rounds" `Quick test_pipelined_rounds;
      Alcotest.test_case "agreement (R3)" `Quick test_agreement_r3;
      Alcotest.test_case "non-primary ignored" `Quick test_backup_ignores_non_primary_proposal;
      Alcotest.test_case "dark replica detection (R2)" `Quick test_dark_replica_detects_failure;
      Alcotest.test_case "standalone view change (R4)" `Quick test_standalone_view_change;
      Alcotest.test_case "view change re-proposes" `Quick test_view_change_reproposes;
      Alcotest.test_case "unified set_primary" `Quick test_unified_set_primary;
      Alcotest.test_case "adopt via contract" `Quick test_adopt_via_contract;
      Alcotest.test_case "equivocation never commits" `Quick
        test_equivocating_primary_never_commits;
      Alcotest.test_case "checkpoint GC" `Quick test_checkpoint_gc;
      Alcotest.test_case "incomplete rounds" `Quick test_incomplete_rounds;
      Alcotest.test_case "wrong-view messages ignored" `Quick
        test_wrong_view_messages_ignored;
      Alcotest.test_case "prepared predicate" `Quick test_prepared_predicate;
    ] )
