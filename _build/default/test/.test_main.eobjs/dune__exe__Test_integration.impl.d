test/test_integration.ml: Alcotest Array List Option Printf Rcc_replica Rcc_runtime Rcc_sim Rcc_storage String
