test/test_coordinator.ml: Alcotest Array List Rcc_common Rcc_core Rcc_crypto Rcc_messages Rcc_replica Rcc_sim Rcc_storage Rcc_workload
