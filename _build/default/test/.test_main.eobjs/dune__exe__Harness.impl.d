test/harness.ml: Array Hashtbl Option Rcc_common Rcc_crypto Rcc_messages Rcc_replica Rcc_sim Rcc_workload
