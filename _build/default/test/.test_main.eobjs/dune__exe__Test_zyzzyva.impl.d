test/test_zyzzyva.ml: Alcotest Harness Hashtbl List Option Printf QCheck2 QCheck_alcotest Rcc_common Rcc_messages Rcc_replica Rcc_sim Rcc_zyzzyva String
