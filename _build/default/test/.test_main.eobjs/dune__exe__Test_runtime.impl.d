test/test_runtime.ml: Alcotest Format List Rcc_replica Rcc_runtime Rcc_sim String
