test/test_crypto.ml: Alcotest Lazy List Printf QCheck2 QCheck_alcotest Rcc_common Rcc_crypto String
