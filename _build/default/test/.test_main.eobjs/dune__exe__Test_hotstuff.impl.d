test/test_hotstuff.ml: Alcotest Harness Hashtbl List Printf Rcc_hotstuff Rcc_messages Rcc_replica Rcc_sim
