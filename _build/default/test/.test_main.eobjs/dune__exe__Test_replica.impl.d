test/test_replica.ml: Alcotest Array List Rcc_common Rcc_crypto Rcc_messages Rcc_replica Rcc_sim Rcc_storage Rcc_workload Result
