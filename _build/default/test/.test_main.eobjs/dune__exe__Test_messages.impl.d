test/test_messages.ml: Alcotest Array Format List QCheck2 QCheck_alcotest Rcc_common Rcc_crypto Rcc_messages Rcc_workload String
