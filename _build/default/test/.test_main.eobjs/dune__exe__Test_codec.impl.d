test/test_codec.ml: Alcotest Array Bytes Char List QCheck2 QCheck_alcotest Rcc_common Rcc_crypto Rcc_messages Rcc_workload Result String
