test/test_cft.ml: Alcotest Harness List Option Printf QCheck2 QCheck_alcotest Rcc_cft Rcc_messages Rcc_replica Rcc_sim
