test/test_storage.ml: Alcotest Bytes Char Filename Fun List Option Printf QCheck2 QCheck_alcotest Rcc_common Rcc_crypto Rcc_storage Result String Sys
