test/test_pbft.ml: Alcotest Harness List Option Printf QCheck2 QCheck_alcotest Rcc_messages Rcc_pbft Rcc_replica Rcc_sim Rcc_storage
