test/test_workload.ml: Alcotest Array Format Printf QCheck2 QCheck_alcotest Rcc_common Rcc_storage Rcc_workload
