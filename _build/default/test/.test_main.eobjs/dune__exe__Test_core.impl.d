test/test_core.ml: Alcotest Array Hashtbl List Option Printf QCheck2 QCheck_alcotest Rcc_common Rcc_core Rcc_crypto Rcc_messages Rcc_workload Result String
