test/test_sim.ml: Alcotest List QCheck2 QCheck_alcotest Rcc_common Rcc_sim
