test/test_common.ml: Alcotest Array List Option QCheck2 QCheck_alcotest Rcc_common String
