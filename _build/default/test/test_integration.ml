(* End-to-end cluster tests: every protocol commits transactions; safety
   (identical ledgers and states across replicas); behaviour under crash,
   dark-primary, collusion and client-DoS faults. *)

module Config = Rcc_runtime.Config
module Cluster = Rcc_runtime.Cluster
module Report = Rcc_runtime.Report
module Ledger = Rcc_storage.Ledger
module Block = Rcc_storage.Block
module Engine = Rcc_sim.Engine

let check = Alcotest.check

let small_cfg ?z ?(fault = Config.No_fault) ?(duration = 0.5) ?replica_timeout
    ?client_timeout ?collusion_wait ?instance_change_after protocol n =
  Config.make ~protocol ~n ?z ~batch_size:10 ~clients:40 ~records:5_000
    ~duration:(Engine.of_seconds duration)
    ~warmup:(Engine.of_seconds (duration /. 4.0))
    ?replica_timeout ?client_timeout ?collusion_wait ?instance_change_after
    ~fault ()

(* Common prefix of two ledgers must consist of identical blocks. A
   replica kept fully in the dark may legitimately have an empty ledger. *)
let check_ledger_prefix_equal cluster n =
  let reference = Cluster.ledger cluster 0 in
  for r = 1 to n - 1 do
    let other = Cluster.ledger cluster r in
    let common = min (Ledger.length reference) (Ledger.length other) in
    for round = 0 to common - 1 do
      let a = Option.get (Ledger.get reference round) in
      let b = Option.get (Ledger.get other round) in
      if not (String.equal (Block.hash a) (Block.hash b)) then
        Alcotest.failf "ledger divergence at round %d between replicas 0 and %d"
          round r
    done
  done

let run_protocol protocol () =
  let cfg = small_cfg protocol 4 in
  let cluster = Cluster.build cfg in
  let report = Cluster.run cluster in
  check Alcotest.bool "throughput > 0" true (report.Report.throughput > 0.0);
  check Alcotest.bool "ledger valid" true report.Report.ledger_valid;
  check Alcotest.bool "rounds executed" true (report.Report.ledger_rounds > 0);
  for r = 1 to 3 do
    check Alcotest.bool
      (Printf.sprintf "replica %d made progress" r)
      true
      (Ledger.length (Cluster.ledger cluster r) > 0)
  done;
  check_ledger_prefix_equal cluster 4;
  (* n=4 materializes state everywhere: stores with equal executed rounds
     must have equal digests. *)
  let rounds r = Ledger.length (Cluster.ledger cluster r) in
  let digest r = Rcc_storage.Kv_store.state_digest (Cluster.store cluster r) in
  for r = 1 to 3 do
    if rounds r = rounds 0 then
      check Alcotest.bool
        (Printf.sprintf "state digest %d = 0" r)
        true
        (String.equal (digest r) (digest 0))
  done

let test_deterministic_runs () =
  let r1 = Cluster.run_config (small_cfg Config.MultiP 4) in
  let r2 = Cluster.run_config (small_cfg Config.MultiP 4) in
  check Alcotest.int "same committed txns" r1.Report.committed_txns
    r2.Report.committed_txns;
  check Alcotest.int "same messages" r1.Report.messages r2.Report.messages

let test_seed_changes_schedule () =
  let base = small_cfg Config.MultiP 4 in
  let r1 = Cluster.run_config base in
  let r2 = Cluster.run_config { base with Config.seed = 99 } in
  check Alcotest.bool "different seeds, different message counts" true
    (r1.Report.messages <> r2.Report.messages)

let test_pbft_crash_tolerance () =
  let cfg = small_cfg ~fault:(Config.Crash [ 3 ]) Config.Pbft 4 in
  let report = Cluster.run_config cfg in
  check Alcotest.bool "commits despite crash" true (report.Report.throughput > 0.0);
  check Alcotest.bool "ledger valid" true report.Report.ledger_valid

let test_multip_crash_tolerance () =
  let cfg = small_cfg ~fault:(Config.Crash [ 3 ]) Config.MultiP 4 in
  let report = Cluster.run_config cfg in
  check Alcotest.bool "multip commits despite crash" true
    (report.Report.throughput > 0.0)

let test_zyzzyva_collapses_under_crash () =
  let cfg = small_cfg ~fault:(Config.Crash [ 3 ]) Config.Zyzzyva 4 in
  let report = Cluster.run_config cfg in
  (* Clients wait for all n until the (unscaled) 15 s timeout: nothing
     completes inside the run. *)
  check (Alcotest.float 0.01) "zero throughput" 0.0 report.Report.throughput

let test_zyzzyva_commit_cert_recovery () =
  (* With a scaled-down client timeout, Zyzzyva clients fall back to the
     commit-certificate phase and make progress despite the crash. *)
  let cfg =
    small_cfg ~duration:1.0
      ~client_timeout:(Engine.ms 100)
      ~fault:(Config.Crash [ 3 ]) Config.Zyzzyva 4
  in
  let report = Cluster.run_config cfg in
  check Alcotest.bool "commit phase recovers clients" true
    (report.Report.throughput > 0.0)

let test_multip_dark_victim_stalls_but_service_lives () =
  let cfg =
    small_cfg ~duration:1.0
      ~replica_timeout:(Engine.ms 150)
      ~fault:(Config.Dark { instance = 1; victims = [ 3 ] })
      Config.MultiP 4
  in
  let cluster = Cluster.build cfg in
  let report = Cluster.run cluster in
  check Alcotest.bool "service keeps committing" true (report.Report.throughput > 0.0);
  (* The victim cannot execute past the darkened instance's rounds. *)
  check Alcotest.bool "victim behind" true
    (Ledger.length (Cluster.ledger cluster 3)
    < Ledger.length (Cluster.ledger cluster 0));
  check_ledger_prefix_equal cluster 4

let test_multip_crashed_primary_replaced () =
  (* A crashed PRIMARY under RCC: the liveness monitor detects the stalled
     instance, coordinators collect f+1 blames, and unified election
     installs a fresh primary; clients of the dead primary resend and the
     service recovers to full throughput. *)
  let cfg =
    Config.make ~protocol:Config.MultiP ~n:7 ~batch_size:10 ~clients:42
      ~records:5_000
      ~duration:(Engine.of_seconds 1.5)
      ~warmup:(Engine.of_seconds 0.3)
      ~replica_timeout:(Engine.ms 250)
      ~client_timeout:(Engine.ms 400)
      ~fault:(Config.Crash [ 1 ])
      ()
  in
  let cluster = Cluster.build cfg in
  let report = Cluster.run cluster in
  check Alcotest.bool "primary replaced" true (report.Report.replacements >= 1);
  check Alcotest.bool "service recovered" true (report.Report.throughput > 0.0);
  check Alcotest.bool "replacement is consistent" true
    (Cluster.primary_of_instance cluster 1 <> 1);
  check Alcotest.bool "ledger valid" true report.Report.ledger_valid;
  check_ledger_prefix_equal cluster 7

let test_collusion_recovery_end_to_end () =
  (* n=7, f=2, z=3: the fig. 12 attack at small scale. *)
  let cfg =
    Config.make ~protocol:Config.MultiP ~n:7 ~batch_size:10 ~clients:42
      ~records:5_000
      ~duration:(Engine.of_seconds 2.0)
      ~warmup:(Engine.of_seconds 0.25)
      ~replica_timeout:(Engine.ms 300)
      ~collusion_wait:(Engine.ms 150)
      ~fault:(Config.Collusion { victim = 4; at_round = 40 })
      ()
  in
  let cluster = Cluster.build cfg in
  let report = Cluster.run cluster in
  check Alcotest.bool "throughput survives the attack" true
    (report.Report.throughput > 0.0);
  check Alcotest.bool "collusion detected" true (report.Report.collusions_detected > 0);
  check Alcotest.bool "contracts exchanged" true (report.Report.contract_bytes > 0);
  check Alcotest.bool "no primary replaced on the false alarm" true
    (report.Report.replacements = 0);
  (* The victim recovered: its ledger eventually catches up close to the
     leader's. *)
  let victim_rounds = Ledger.length (Cluster.ledger cluster 4) in
  let leader_rounds = Ledger.length (Cluster.ledger cluster 1) in
  check Alcotest.bool
    (Printf.sprintf "victim caught up (%d vs %d)" victim_rounds leader_rounds)
    true
    (victim_rounds > leader_rounds / 2);
  check_ledger_prefix_equal cluster 7

let test_client_dos_instance_change () =
  (* Instance 0's primary drops client requests; starved clients defect to
     instance 1 after a timeout and complete there (§3.6). *)
  let cfg =
    small_cfg ~duration:1.5
      ~client_timeout:(Engine.ms 100)
      ~instance_change_after:1
      ~fault:(Config.Client_dos { instance = 0 })
      Config.MultiP 4
  in
  let cluster = Cluster.build cfg in
  let report = Cluster.run cluster in
  ignore report;
  let pool = Cluster.client_pool cluster in
  check Alcotest.bool "instance changes happened" true
    (Rcc_replica.Client_pool.instance_changes pool > 0);
  (* Client 0's home instance is 0; it must have moved. *)
  check Alcotest.bool "client 0 defected" true
    (Rcc_replica.Client_pool.client_instance pool 0 <> 0)

let test_permutation_execution_safe () =
  (* Digest-permuted execution must stay consistent across replicas. *)
  let base = small_cfg Config.MultiP 4 in
  let with_perm = { base with Config.use_permutation = true } in
  let without = { base with Config.use_permutation = false } in
  let c1 = Cluster.build with_perm in
  let r1 = Cluster.run c1 in
  check_ledger_prefix_equal c1 4;
  let c2 = Cluster.build without in
  let r2 = Cluster.run c2 in
  check_ledger_prefix_equal c2 4;
  check Alcotest.bool "both commit" true
    (r1.Report.throughput > 0.0 && r2.Report.throughput > 0.0)

let test_safety_across_seeds () =
  (* Different schedules (seeds) must all preserve ledger agreement; runs
     MultiZ, whose speculative path is the most schedule-sensitive. *)
  List.iter
    (fun seed ->
      let cfg = { (small_cfg Config.MultiZ 4) with Config.seed } in
      let cluster = Cluster.build cfg in
      let report = Cluster.run cluster in
      check Alcotest.bool
        (Printf.sprintf "seed %d commits" seed)
        true
        (report.Report.throughput > 0.0);
      check_ledger_prefix_equal cluster 4)
    [ 7; 1234; 999983 ]

let test_report_fields_consistent () =
  let report = Cluster.run_config (small_cfg Config.Pbft 4) in
  check Alcotest.bool "latency positive" true (report.Report.avg_latency > 0.0);
  check Alcotest.bool "p99 >= p50" true
    (report.Report.p99_latency >= report.Report.p50_latency);
  check Alcotest.bool "timeline non-empty" true
    (Array.length report.Report.timeline > 0);
  check Alcotest.bool "messages flowed" true (report.Report.messages > 0);
  check Alcotest.string "protocol name" "pbft" report.Report.protocol

let suite =
  ( "integration",
    [
      Alcotest.test_case "pbft end-to-end" `Slow (run_protocol Config.Pbft);
      Alcotest.test_case "zyzzyva end-to-end" `Slow (run_protocol Config.Zyzzyva);
      Alcotest.test_case "hotstuff end-to-end" `Slow (run_protocol Config.Hotstuff);
      Alcotest.test_case "multip end-to-end" `Slow (run_protocol Config.MultiP);
      Alcotest.test_case "multiz end-to-end" `Slow (run_protocol Config.MultiZ);
      Alcotest.test_case "cft end-to-end" `Slow (run_protocol Config.Cft);
      Alcotest.test_case "multic end-to-end" `Slow (run_protocol Config.MultiC);
      Alcotest.test_case "deterministic runs" `Slow test_deterministic_runs;
      Alcotest.test_case "seed changes schedule" `Slow test_seed_changes_schedule;
      Alcotest.test_case "pbft crash tolerance" `Slow test_pbft_crash_tolerance;
      Alcotest.test_case "multip crash tolerance" `Slow test_multip_crash_tolerance;
      Alcotest.test_case "zyzzyva collapse" `Slow test_zyzzyva_collapses_under_crash;
      Alcotest.test_case "zyzzyva commit-cert recovery" `Slow
        test_zyzzyva_commit_cert_recovery;
      Alcotest.test_case "dark victim" `Slow test_multip_dark_victim_stalls_but_service_lives;
      Alcotest.test_case "crashed primary replaced" `Slow
        test_multip_crashed_primary_replaced;
      Alcotest.test_case "collusion recovery" `Slow test_collusion_recovery_end_to_end;
      Alcotest.test_case "client DoS instance change" `Slow test_client_dos_instance_change;
      Alcotest.test_case "permutation safety" `Slow test_permutation_execution_safe;
      Alcotest.test_case "safety across seeds" `Slow test_safety_across_seeds;
      Alcotest.test_case "report consistency" `Slow test_report_fields_consistent;
    ] )
