(* Crypto tests against published vectors plus properties. *)

module Sha256 = Rcc_crypto.Sha256
module Hmac = Rcc_crypto.Hmac
module Aes128 = Rcc_crypto.Aes128
module Cmac = Rcc_crypto.Cmac
module Signature = Rcc_crypto.Signature
module Keychain = Rcc_crypto.Keychain
module Bytes_util = Rcc_common.Bytes_util

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- SHA-256 (FIPS 180-4 / NIST CAVS vectors) ----------------------------- *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( String.make 1_000_000 'a',
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
  ]

(* NIST CAVS SHA256ShortMsg samples (hex message -> digest). *)
let sha_cavs_vectors =
  [
    ("d3", "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1");
    ("11af", "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98");
    ("b4190e", "dff2e73091f6c05e528896c4c831b9448653dc2ff043528f6769437bc7b975c2");
    ( "c299209682",
      "f0887fe961c9cd3beab957e8222494abb969b1ce4c6557976df8b0f6d20e9166" );
    ( "7c9c67323a1df1adbfe5ceb415eaef0155ece2820f4d50c1ec22cba4928ac656c83fe585db6a78ce40bc42757aba7e5a3f582428d6ca68d0c3978336a6efb729613e8d9979016204bfd921322fdd5222183554447de5e6e9bbe6edf76d7b71e18dc2e8d6dc89b7398364f652fafc734329aafa3dcd45d4f31e388e4fafd7fc6495f37ca5cbab7f54d586463da4bfeaa3bae09f7b8e9239d832b4f0a733aa609cc1f8d4",
      "7aa559818f437b8c233765891790558ac03eef15c665c9ae7bfed7b65ea48b58" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, expected) ->
      check Alcotest.string "digest" expected (Sha256.hex_digest msg))
    sha_vectors;
  List.iter
    (fun (hex_msg, expected) ->
      check Alcotest.string "cavs" expected
        (Sha256.hex_digest (Bytes_util.of_hex hex_msg)))
    sha_cavs_vectors

let sha_incremental =
  qtest "sha256: incremental = one-shot"
    QCheck2.Gen.(list_size (int_range 0 8) string)
    (fun parts ->
      let ctx = Sha256.init () in
      List.iter (Sha256.update ctx) parts;
      Sha256.finalize ctx = Sha256.digest (String.concat "" parts)
      && Sha256.digest_list parts = Sha256.digest (String.concat "" parts))

let sha_distinct =
  qtest "sha256: injective on samples" QCheck2.Gen.(pair string string)
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

(* --- HMAC-SHA256 (RFC 4231) ------------------------------------------------ *)

let test_hmac_rfc4231 () =
  (* Test case 1 *)
  let key = String.make 20 '\x0b' in
  check Alcotest.string "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Bytes_util.hex (Hmac.mac ~key "Hi There"));
  (* Test case 2 *)
  check Alcotest.string "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Bytes_util.hex (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
  (* Test case 3: 20-byte 0xaa key, 50-byte 0xdd data *)
  let key = String.make 20 '\xaa' and data = String.make 50 '\xdd' in
  check Alcotest.string "tc3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Bytes_util.hex (Hmac.mac ~key data));
  (* Test case 6: oversized key *)
  let key = String.make 131 '\xaa' in
  check Alcotest.string "tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Bytes_util.hex
       (Hmac.mac ~key "Test Using Larger Than Block-Size Key - Hash Key First"))

let hmac_verify_props =
  qtest "hmac: verify accepts valid, rejects tampered"
    QCheck2.Gen.(pair string string)
    (fun (key, msg) ->
      let tag = Hmac.mac ~key msg in
      Hmac.verify ~key msg ~tag
      && (not (Hmac.verify ~key (msg ^ "x") ~tag))
      && not (Hmac.verify ~key:(key ^ "k") msg ~tag))

(* --- AES-128 (FIPS 197 appendix C.1) --------------------------------------- *)

let test_aes_fips197 () =
  let key = Bytes_util.of_hex "000102030405060708090a0b0c0d0e0f" in
  let plain = Bytes_util.of_hex "00112233445566778899aabbccddeeff" in
  let cipher = Aes128.encrypt_block (Aes128.expand_key key) plain in
  check Alcotest.string "C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (Bytes_util.hex cipher)

let test_aes_sp800_38a () =
  (* SP 800-38A F.1.1 AES-128 ECB: all four blocks. *)
  let key = Aes128.expand_key (Bytes_util.of_hex "2b7e151628aed2a6abf7158809cf4f3c") in
  List.iter
    (fun (plain, expected) ->
      check Alcotest.string "ECB block" expected
        (Bytes_util.hex (Aes128.encrypt_block key (Bytes_util.of_hex plain))))
    [
      ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97");
      ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf");
      ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688");
      ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4");
    ]

let test_aes_rejects_bad_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes128.expand_key: need 16 bytes")
    (fun () -> ignore (Aes128.expand_key "short"));
  let key = Aes128.expand_key (String.make 16 'k') in
  Alcotest.check_raises "short block"
    (Invalid_argument "Aes128.encrypt_block: need 16 bytes") (fun () ->
      ignore (Aes128.encrypt_block key "tiny"))

(* --- CMAC-AES128 (NIST SP 800-38B examples) --------------------------------- *)

let cmac_key =
  lazy (Cmac.of_aes_key (Bytes_util.of_hex "2b7e151628aed2a6abf7158809cf4f3c"))

let test_cmac_sp800_38b () =
  let key = Lazy.force cmac_key in
  let cases =
    [
      ("", "bb1d6929e95937287fa37d129b756746");
      ( "6bc1bee22e409f96e93d7e117393172a",
        "070a16b46b4d4144f79bdd9dd04a287c" );
      ( "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
         30c81c46a35ce411",
        "dfa66747de9ae63030ca32611497c827" );
      ( "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
         30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
        "51f0bebf7e3b9d92fc49741779363cfe" );
    ]
  in
  List.iter
    (fun (msg_hex, expected) ->
      let msg = Bytes_util.of_hex msg_hex in
      check Alcotest.string
        (Printf.sprintf "len %d" (String.length msg))
        expected
        (Bytes_util.hex (Cmac.mac key msg)))
    cases

let cmac_verify_props =
  qtest "cmac: verify accepts valid, rejects tampered" QCheck2.Gen.string
    (fun msg ->
      let key = Lazy.force cmac_key in
      let tag = Cmac.mac key msg in
      Cmac.verify key msg ~tag && not (Cmac.verify key (msg ^ "!") ~tag))

(* --- signatures -------------------------------------------------------------- *)

let test_signature_basic () =
  let rng = Rcc_common.Rng.create 31 in
  let sk, pk = Signature.keygen rng in
  let sk2, pk2 = Signature.keygen rng in
  let msg = "order batch 42" in
  let signature = Signature.sign sk msg in
  check Alcotest.int "signature size" Signature.signature_size
    (String.length signature);
  check Alcotest.bool "verifies" true (Signature.verify pk msg signature);
  check Alcotest.bool "wrong message" false (Signature.verify pk "other" signature);
  check Alcotest.bool "wrong key" false (Signature.verify pk2 msg signature);
  check Alcotest.bool "unknown pk" false
    (Signature.verify (String.make 32 'z') msg signature);
  check Alcotest.bool "cross-sign" true
    (Signature.verify pk2 msg (Signature.sign sk2 msg));
  check Alcotest.string "public_key accessor" pk (Signature.public_key sk)

let signature_props =
  qtest "signature: sign/verify roundtrip" QCheck2.Gen.(pair small_int string)
    (fun (seed, msg) ->
      let rng = Rcc_common.Rng.create seed in
      let sk, pk = Signature.keygen rng in
      Signature.verify pk msg (Signature.sign sk msg))

(* --- keychain ----------------------------------------------------------------- *)

let test_keychain () =
  let kc = Keychain.create ~seed:5 ~n:7 ~clients:3 in
  check Alcotest.int "n" 7 (Keychain.n kc);
  (* pairwise MAC keys are symmetric *)
  let tag = Keychain.mac kc ~src:2 ~dst:5 "hello" in
  check Alcotest.bool "verify src->dst" true
    (Keychain.mac_verify kc ~src:2 ~dst:5 "hello" ~tag);
  check Alcotest.bool "verify reversed pair" true
    (Keychain.mac_verify kc ~src:5 ~dst:2 "hello" ~tag);
  check Alcotest.bool "other pair rejects" false
    (Keychain.mac_verify kc ~src:2 ~dst:4 "hello" ~tag);
  (* replica and client signing keys are usable *)
  let msg = "m" in
  check Alcotest.bool "replica key" true
    (Signature.verify (Keychain.replica_public kc 3) msg
       (Signature.sign (Keychain.replica_secret kc 3) msg));
  check Alcotest.bool "client key" true
    (Signature.verify (Keychain.client_public kc 1) msg
       (Signature.sign (Keychain.client_secret kc 1) msg))

(* Every unordered replica pair shares exactly one MAC key: tags verify
   in both directions and never across pairs. *)
let keychain_pairwise_symmetric =
  qtest ~count:20 "keychain: pairwise MAC keys symmetric and distinct"
    QCheck2.Gen.(int_range 4 9)
    (fun n ->
      let kc = Keychain.create ~seed:3 ~n ~clients:1 in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            let tag = Keychain.mac kc ~src:i ~dst:j "m" in
            if not (Keychain.mac_verify kc ~src:j ~dst:i "m" ~tag) then ok := false;
            (* A third replica's pair key must not verify it. *)
            let k = (j + 1) mod n in
            if k <> i && k <> j && Keychain.mac_verify kc ~src:i ~dst:k "m" ~tag
            then ok := false
          end
        done
      done;
      !ok)

let test_keychain_deterministic () =
  let a = Keychain.create ~seed:9 ~n:4 ~clients:2 in
  let b = Keychain.create ~seed:9 ~n:4 ~clients:2 in
  check Alcotest.string "same public keys from same seed"
    (Keychain.replica_public a 2)
    (Keychain.replica_public b 2)

let suite =
  ( "crypto",
    [
      Alcotest.test_case "sha256 FIPS vectors" `Quick test_sha256_vectors;
      sha_incremental;
      sha_distinct;
      Alcotest.test_case "hmac RFC 4231" `Quick test_hmac_rfc4231;
      hmac_verify_props;
      Alcotest.test_case "aes FIPS 197" `Quick test_aes_fips197;
      Alcotest.test_case "aes SP800-38A blocks" `Quick test_aes_sp800_38a;
      Alcotest.test_case "aes input validation" `Quick test_aes_rejects_bad_sizes;
      keychain_pairwise_symmetric;
      Alcotest.test_case "cmac SP800-38B" `Quick test_cmac_sp800_38b;
      cmac_verify_props;
      Alcotest.test_case "signature basics" `Quick test_signature_basic;
      signature_props;
      Alcotest.test_case "keychain" `Quick test_keychain;
      Alcotest.test_case "keychain determinism" `Quick test_keychain_deterministic;
    ] )
