(* Storage tests: KV store, blocks, ledger hash chain, txn table. *)

module Kv = Rcc_storage.Kv_store
module Block = Rcc_storage.Block
module Ledger = Rcc_storage.Ledger
module Txn_table = Rcc_storage.Txn_table

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- kv store ----------------------------------------------------------------- *)

let test_kv_basic () =
  let store = Kv.create () in
  Kv.init_records store ~count:10;
  check Alcotest.int "size" 10 (Kv.size store);
  check Alcotest.(option int) "initial value" (Some 21) (Kv.read store 3);
  Kv.write store ~key:3 ~value:99;
  check Alcotest.(option int) "after write" (Some 99) (Kv.read store 3);
  check Alcotest.int "version bumped" 1 (Kv.version store 3);
  check Alcotest.int "untouched version" 0 (Kv.version store 4);
  check Alcotest.(option int) "missing key" None (Kv.read store 1000);
  check Alcotest.int "reads counted" 3 (Kv.reads_performed store);
  check Alcotest.int "writes counted" 1 (Kv.writes_performed store)

let test_kv_insert_new_key () =
  let store = Kv.create () in
  Kv.write store ~key:42 ~value:7;
  check Alcotest.(option int) "insert" (Some 7) (Kv.read store 42);
  check Alcotest.int "version of fresh insert" 1 (Kv.version store 42)

let kv_state_digest =
  qtest "kv: equal write sequences give equal digests"
    QCheck2.Gen.(list_size (int_range 0 30) (pair (int_range 0 20) small_int))
    (fun writes ->
      let a = Kv.create () and b = Kv.create () in
      List.iter
        (fun (key, value) ->
          Kv.write a ~key ~value;
          Kv.write b ~key ~value)
        writes;
      String.equal (Kv.state_digest a) (Kv.state_digest b))

let test_kv_digest_differs () =
  let a = Kv.create () and b = Kv.create () in
  Kv.write a ~key:1 ~value:1;
  Kv.write b ~key:1 ~value:2;
  check Alcotest.bool "different states, different digests" false
    (String.equal (Kv.state_digest a) (Kv.state_digest b))

(* --- blocks & ledger -------------------------------------------------------------- *)

let proof i =
  {
    Block.instance = i;
    batch_digest = Rcc_crypto.Sha256.digest (Printf.sprintf "batch-%d" i);
    certificate_digest = Rcc_crypto.Sha256.digest (Printf.sprintf "cert-%d" i);
  }

let block ~round ~prev =
  {
    Block.round;
    prev_hash = prev;
    proofs = [ proof 0; proof 1 ];
    primaries = [ 0; 1 ];
    clients = [ 5; 9 ];
  }

let test_block_hash_deterministic () =
  let b = block ~round:0 ~prev:(String.make 32 '\x00') in
  check Alcotest.string "same hash" (Rcc_common.Bytes_util.hex (Block.hash b))
    (Rcc_common.Bytes_util.hex (Block.hash b));
  let b' = { b with Block.clients = [ 5 ] } in
  check Alcotest.bool "different content, different hash" false
    (String.equal (Block.hash b) (Block.hash b'))

let test_genesis_depends_on_primaries () =
  check Alcotest.bool "genesis differs" false
    (String.equal
       (Block.genesis_hash ~primaries:[ 0; 1 ])
       (Block.genesis_hash ~primaries:[ 0; 2 ]))

let test_ledger_append_validate () =
  let ledger = Ledger.create ~primaries:[ 0; 1 ] in
  check Alcotest.int "empty" 0 (Ledger.length ledger);
  for round = 0 to 9 do
    Ledger.append_exn ledger (block ~round ~prev:(Ledger.head_hash ledger))
  done;
  check Alcotest.int "length" 10 (Ledger.length ledger);
  check Alcotest.int "next round" 10 (Ledger.next_round ledger);
  check Alcotest.bool "validates" true (Result.is_ok (Ledger.validate ledger));
  check Alcotest.bool "get round 5" true (Option.is_some (Ledger.get ledger 5));
  check Alcotest.bool "get round 99" true (Option.is_none (Ledger.get ledger 99))

let test_ledger_rejects_bad_blocks () =
  let ledger = Ledger.create ~primaries:[ 0 ] in
  Ledger.append_exn ledger (block ~round:0 ~prev:(Ledger.head_hash ledger));
  check Alcotest.bool "wrong round" true
    (Result.is_error (Ledger.append ledger (block ~round:5 ~prev:(Ledger.head_hash ledger))));
  check Alcotest.bool "wrong prev hash" true
    (Result.is_error (Ledger.append ledger (block ~round:1 ~prev:(String.make 32 'x'))))

let test_ledger_iter () =
  let ledger = Ledger.create ~primaries:[ 0 ] in
  for round = 0 to 4 do
    Ledger.append_exn ledger (block ~round ~prev:(Ledger.head_hash ledger))
  done;
  let rounds = ref [] in
  Ledger.iter ledger (fun b -> rounds := b.Block.round :: !rounds);
  check Alcotest.(list int) "iterates in order" [ 0; 1; 2; 3; 4 ] (List.rev !rounds)

(* --- txn table ---------------------------------------------------------------------- *)

let entry ~round ~instance =
  {
    Txn_table.round;
    instance;
    client = instance * 10;
    batch_digest = "d";
    response_digest = "r";
    txn_count = 7;
  }

let test_txn_table () =
  let table = Txn_table.create () in
  Txn_table.record table (entry ~round:0 ~instance:1);
  Txn_table.record table (entry ~round:0 ~instance:0);
  Txn_table.record table (entry ~round:2 ~instance:0);
  check Alcotest.int "total txns" 21 (Txn_table.total_txns table);
  check Alcotest.int "rounds" 2 (Txn_table.rounds table);
  let round0 = Txn_table.find table ~round:0 in
  check
    Alcotest.(list int)
    "instance order" [ 0; 1 ]
    (List.map (fun e -> e.Txn_table.instance) round0);
  check Alcotest.(list int) "missing round" []
    (List.map (fun e -> e.Txn_table.instance) (Txn_table.find table ~round:7))

(* --- ledger persistence ----------------------------------------------------- *)

module Ledger_io = Rcc_storage.Ledger_io

let sample_ledger () =
  let ledger = Ledger.create ~primaries:[ 0; 1 ] in
  for round = 0 to 9 do
    Ledger.append_exn ledger (block ~round ~prev:(Ledger.head_hash ledger))
  done;
  ledger

let test_ledger_io_roundtrip () =
  let ledger = sample_ledger () in
  let saved = Ledger_io.save ledger ~primaries:[ 0; 1 ] in
  match Ledger_io.load saved with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok loaded ->
      check Alcotest.int "length" (Ledger.length ledger) (Ledger.length loaded);
      check Alcotest.string "head hash"
        (Rcc_common.Bytes_util.hex (Ledger.head_hash ledger))
        (Rcc_common.Bytes_util.hex (Ledger.head_hash loaded));
      (* The loaded ledger accepts further appends. *)
      Ledger.append_exn loaded (block ~round:10 ~prev:(Ledger.head_hash loaded));
      check Alcotest.int "appendable" 11 (Ledger.length loaded)

let test_ledger_io_rejects_corruption () =
  let ledger = sample_ledger () in
  let saved = Ledger_io.save ledger ~primaries:[ 0; 1 ] in
  check Alcotest.bool "bad magic" true
    (Result.is_error (Ledger_io.load ("XXXX" ^ saved)));
  check Alcotest.bool "truncated" true
    (Result.is_error (Ledger_io.load (String.sub saved 0 (String.length saved / 2))));
  check Alcotest.bool "trailing garbage" true
    (Result.is_error (Ledger_io.load (saved ^ "z")));
  (* Flip one byte inside a block body: the hash chain must catch it. *)
  let corrupted = Bytes.of_string saved in
  let mid = String.length saved / 2 in
  Bytes.set corrupted mid
    (Char.chr (Char.code (Bytes.get corrupted mid) lxor 0x01));
  check Alcotest.bool "bit flip detected" true
    (Result.is_error (Ledger_io.load (Bytes.to_string corrupted)));
  (* Wrong genesis parameters break the chain root. *)
  let wrong_genesis =
    Ledger_io.save ledger ~primaries:[ 0; 2 ]
  in
  check Alcotest.bool "wrong genesis rejected" true
    (Result.is_error (Ledger_io.load wrong_genesis))

let test_ledger_io_files () =
  let ledger = sample_ledger () in
  let path = Filename.temp_file "rcc-ledger" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ledger_io.save_file ledger ~primaries:[ 0; 1 ] ~path;
      match Ledger_io.load_file ~path with
      | Ok loaded -> check Alcotest.int "file roundtrip" 10 (Ledger.length loaded)
      | Error e -> Alcotest.failf "file load failed: %s" e);
  check Alcotest.bool "missing file is an error" true
    (Result.is_error (Ledger_io.load_file ~path:"/nonexistent/rcc.bin"))

(* --- checkpoint store ----------------------------------------------------- *)

module Ckpt = Rcc_storage.Checkpoint_store

let ckpt seq =
  { Ckpt.seq; state_digest = Printf.sprintf "d%d" seq; attesters = [ 0; 1 ] }

let test_checkpoint_store_basic () =
  let store = Ckpt.create ~capacity:4 () in
  check Alcotest.int "empty stable_seq" (-1) (Ckpt.stable_seq store);
  Ckpt.record store (ckpt 10);
  Ckpt.record store (ckpt 20);
  check Alcotest.int "stable advances" 20 (Ckpt.stable_seq store);
  (* Stale checkpoints are ignored. *)
  Ckpt.record store (ckpt 15);
  check Alcotest.int "stale ignored" 20 (Ckpt.stable_seq store);
  check Alcotest.int "count" 2 (Ckpt.count store);
  check Alcotest.bool "find 10" true (Option.is_some (Ckpt.find store ~seq:10));
  check Alcotest.bool "find missing" true (Option.is_none (Ckpt.find store ~seq:11))

let test_checkpoint_store_ring_eviction () =
  let store = Ckpt.create ~capacity:3 () in
  List.iter (fun s -> Ckpt.record store (ckpt s)) [ 1; 2; 3; 4; 5 ];
  check Alcotest.bool "oldest evicted" true (Option.is_none (Ckpt.find store ~seq:1));
  check Alcotest.bool "recent kept" true (Option.is_some (Ckpt.find store ~seq:4));
  check
    Alcotest.(list int)
    "recent newest-first" [ 5; 4 ]
    (List.map (fun p -> p.Ckpt.seq) (Ckpt.recent store 2))

let suite =
  ( "storage",
    [
      Alcotest.test_case "ledger io roundtrip" `Quick test_ledger_io_roundtrip;
      Alcotest.test_case "ledger io corruption" `Quick test_ledger_io_rejects_corruption;
      Alcotest.test_case "ledger io files" `Quick test_ledger_io_files;
      Alcotest.test_case "checkpoint store" `Quick test_checkpoint_store_basic;
      Alcotest.test_case "checkpoint ring" `Quick test_checkpoint_store_ring_eviction;
      Alcotest.test_case "kv basic" `Quick test_kv_basic;
      Alcotest.test_case "kv insert" `Quick test_kv_insert_new_key;
      kv_state_digest;
      Alcotest.test_case "kv digest differs" `Quick test_kv_digest_differs;
      Alcotest.test_case "block hash" `Quick test_block_hash_deterministic;
      Alcotest.test_case "genesis primaries" `Quick test_genesis_depends_on_primaries;
      Alcotest.test_case "ledger append/validate" `Quick test_ledger_append_validate;
      Alcotest.test_case "ledger rejects bad" `Quick test_ledger_rejects_bad_blocks;
      Alcotest.test_case "ledger iter" `Quick test_ledger_iter;
      Alcotest.test_case "txn table" `Quick test_txn_table;
    ] )
