bench/main.ml: Ablation Array Fig10 Fig11 Fig12 Fig9 Gc List Micro Printf Rcc_runtime Sizes String Sys
