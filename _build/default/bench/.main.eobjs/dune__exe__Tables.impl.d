bench/tables.ml: Array List Printf Rcc_runtime
