bench/fig12.ml: Printf Rcc_runtime Tables
