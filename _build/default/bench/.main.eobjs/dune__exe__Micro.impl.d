bench/micro.ml: Analyze Bechamel Benchmark Char Hashtbl Instance List Measure Printf Rcc_common Rcc_crypto Rcc_sim Rcc_workload Staged String Test Time Toolkit
