bench/main.mli:
