bench/fig10.ml: Rcc_runtime Tables
