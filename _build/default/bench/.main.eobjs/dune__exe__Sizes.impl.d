bench/sizes.ml: Array List Printf Rcc_common Rcc_crypto Rcc_messages Rcc_workload String
