bench/fig11.ml: List Rcc_runtime Tables
