bench/ablation.ml: List Printf Rcc_core Rcc_runtime Rcc_sim
