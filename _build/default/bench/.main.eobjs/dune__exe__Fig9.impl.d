bench/fig9.ml: Printf Rcc_runtime Tables
