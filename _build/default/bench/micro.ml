(* Substrate microbenchmarks (Bechamel): the crypto primitives whose
   relative costs drive the protocol cost model, the Zipfian generator,
   and the simulation engine's event loop. *)

open Bechamel
open Toolkit

let payload = String.init 5400 (fun i -> Char.chr (i land 0xff))
let small = String.init 250 (fun i -> Char.chr ((i * 7) land 0xff))

let cmac_key = Rcc_crypto.Cmac.of_aes_key (String.init 16 Char.chr)

let signing_key, public_key =
  Rcc_crypto.Signature.keygen (Rcc_common.Rng.create 99)

let signature = Rcc_crypto.Signature.sign signing_key small

let zipf = Rcc_workload.Zipf.create ~n:500_000 ~theta:0.9
let zipf_rng = Rcc_common.Rng.create 5

let engine_events () =
  let engine = Rcc_sim.Engine.create () in
  let rec tick i =
    if i < 1000 then
      Rcc_sim.Engine.schedule_after engine 10 (fun () -> tick (i + 1))
  in
  tick 0;
  Rcc_sim.Engine.run engine ~until:max_int

let tests =
  [
    Test.make ~name:"sha256-5400B"
      (Staged.stage (fun () -> ignore (Rcc_crypto.Sha256.digest payload)));
    Test.make ~name:"sha256-250B"
      (Staged.stage (fun () -> ignore (Rcc_crypto.Sha256.digest small)));
    Test.make ~name:"cmac-aes-250B"
      (Staged.stage (fun () -> ignore (Rcc_crypto.Cmac.mac cmac_key small)));
    Test.make ~name:"hmac-sha256-250B"
      (Staged.stage (fun () -> ignore (Rcc_crypto.Hmac.mac ~key:"k" small)));
    Test.make ~name:"sign-250B"
      (Staged.stage (fun () ->
           ignore (Rcc_crypto.Signature.sign signing_key small)));
    Test.make ~name:"verify-250B"
      (Staged.stage (fun () ->
           ignore (Rcc_crypto.Signature.verify public_key small signature)));
    Test.make ~name:"zipf-draw"
      (Staged.stage (fun () -> ignore (Rcc_workload.Zipf.next zipf zipf_rng)));
    Test.make ~name:"engine-1000-events"
      (Staged.stage engine_events);
  ]

let run _profile =
  Printf.printf "\n## Substrate microbenchmarks (Bechamel)\n\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-24s %12.0f ns/op\n" name est
          | Some _ | None -> Printf.printf "%-24s %12s\n" name "n/a")
        analyzed)
    tests
