(* Figure 12: the collusion / false-alarm attack timeline on MultiP, n=32.

   Instance 0's (malicious) primary skips one replica for a single round;
   the remaining byzantine replicas falsely blame non-faulty primaries, so
   f+1 view-change messages arrive from distinct replicas without any
   single primary collecting f+1 accusers. Paper shape: the coordinator
   waits out its timer, detects the attack, replicas exchange ~175 KB
   contracts, the affected replica recovers, and MultiP's client-side
   throughput stays high throughout (a plain PBFT-style view-change would
   have stalled on the false alarm). The replica watchdog (10 s) and the
   coordinator wait (5 s) are scaled into the simulated window; see
   EXPERIMENTS.md. *)

let run profile =
  let n = match profile with `Full -> 32 | `Quick -> 16 in
  let report =
    Rcc_runtime.Experiment.collusion_run profile ~n ~batch_size:100
      Rcc_runtime.Config.MultiP
  in
  Tables.print_timeline
    ~title:
      (Printf.sprintf
         "Figure 12: client throughput over time under the collusion attack (multip n=%d)"
         n)
    report.Rcc_runtime.Report.timeline;
  Tables.print_timeline
    ~title:"Figure 12 (aux): execution rate at the attacked replica"
    report.Rcc_runtime.Report.exec_timeline;
  Printf.printf
    "\ncollusion detections (all replicas): %d; contract bytes (all replicas): %d; unified primary replacements: %d\n"
    report.Rcc_runtime.Report.collusions_detected
    report.Rcc_runtime.Report.contract_bytes
    report.Rcc_runtime.Report.view_changes
