(* Figure 10: system performance as a function of the number of replicas,
   batch size 100.

   Paper-reported shape (§7.4): throughput decreases with n for every
   protocol (quadratic message growth); the MultiBFT variants lose the
   least (32 -> 46: PBFT -41%, Zyzzyva -43% vs MultiP -22%, MultiZ -26%);
   HotStuff is slow but scales flatter than PBFT (linear communication);
   MultiP@46 reaches the 210K txn/s headline scale. *)

let ns profile =
  match profile with `Full -> [ 4; 8; 16; 32; 46 ] | `Quick -> [ 4; 16 ]

let run profile =
  let ns = ns profile in
  let results =
    Rcc_runtime.Experiment.sweep_replicas profile
      ~protocols:Rcc_runtime.Config.all_protocols ~ns ~batch_size:100
  in
  Tables.print_matrix
    ~title:"Figure 10(a): throughput vs number of replicas (batch=100)"
    ~row_name:"n" ~rows:ns ~value:Tables.ktxn results;
  Tables.print_matrix
    ~title:"Figure 10(b): avg client latency vs number of replicas (batch=100)"
    ~row_name:"n" ~rows:ns ~value:Tables.ms results
