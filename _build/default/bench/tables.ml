(* Matrix printing shared by the figure benches: protocols as columns,
   sweep variable as rows — the same series the paper plots. *)

let protocol_columns = [ "multiz"; "multip"; "zyzzyva"; "pbft"; "hotstuff" ]

let print_matrix ~title ~row_name ~rows ~value
    (results : (Rcc_runtime.Config.protocol * int * Rcc_runtime.Report.t) list) =
  Printf.printf "\n## %s\n\n" title;
  Printf.printf "%-8s" row_name;
  List.iter (Printf.printf " %12s") protocol_columns;
  print_newline ();
  List.iter
    (fun row ->
      Printf.printf "%-8d" row;
      List.iter
        (fun col ->
          let cell =
            List.find_opt
              (fun (p, r, _) ->
                r = row && Rcc_runtime.Config.protocol_name p = col)
              results
          in
          match cell with
          | Some (_, _, report) -> Printf.printf " %12s" (value report)
          | None -> Printf.printf " %12s" "-")
        protocol_columns;
      print_newline ())
    rows

let ktxn report = Printf.sprintf "%.1fK" (report.Rcc_runtime.Report.throughput /. 1e3)

let ms report = Printf.sprintf "%.1fms" (report.Rcc_runtime.Report.avg_latency *. 1e3)

let print_timeline ~title series =
  Printf.printf "\n## %s\n\n%-8s %12s\n" title "t(s)" "txn/s";
  Array.iter
    (fun (t, rate) -> Printf.printf "%-8.1f %12.0f\n" t rate)
    series
