(* Ablations over RCC's design decisions (DESIGN.md):

   - abl-z: number of concurrent instances. §3.1 argues z = f+1 balances
     parallelism against core contention and byzantine exposure; the sweep
     shows throughput rising with z until contention flattens it.
   - abl-order: fixed instance-order execution vs the digest-seeded
     permutation of §3.4.1. The permutation removes any instance's control
     over execution order at (near) zero throughput cost.
   - abl-recovery: optimistic vs pessimistic recovery vs view-shifting
     under the fig. 12 attack. Pessimistic pays contract traffic every
     round; view-shifting restarts every instance and loses continuous
     ordering (why the paper rejects it). *)

module Config = Rcc_runtime.Config
module Experiment = Rcc_runtime.Experiment
module Report = Rcc_runtime.Report

let run_z profile =
  let n = match profile with `Full -> 32 | `Quick -> 16 in
  let zs =
    match profile with `Full -> [ 1; 2; 4; 8; 11; 16 ] | `Quick -> [ 1; 4 ]
  in
  let zs = List.filter (fun z -> z <= ((n - 1) / 3) + 1 + 5 && z < n) zs in
  let results = Experiment.z_sweep profile ~n ~batch_size:100 ~zs in
  Printf.printf "\n## Ablation: instances per replica (multip, n=%d, f+1=%d)\n\n"
    n (((n - 1) / 3) + 1);
  Printf.printf "%-6s %12s %12s\n" "z" "tput" "avg_lat";
  List.iter
    (fun (z, (r : Report.t)) ->
      Printf.printf "%-6d %11.1fK %10.1fms\n" z (r.Report.throughput /. 1e3)
        (r.Report.avg_latency *. 1e3))
    results

let run_order profile =
  let n = match profile with `Full -> 32 | `Quick -> 16 in
  Printf.printf
    "\n## Ablation: execution order (multip, n=%d, batch=100)\n\n" n;
  Printf.printf "%-22s %12s %12s\n" "order" "tput" "avg_lat";
  List.iter
    (fun (name, use_permutation) ->
      let cfg =
        Config.make ~protocol:Config.MultiP ~n ~batch_size:100
          ~duration:(Experiment.duration profile)
          ~warmup:(Experiment.warmup profile) ~use_permutation ()
      in
      let r = Experiment.run_one ~label:("order=" ^ name) cfg in
      Printf.printf "%-22s %11.1fK %10.1fms\n" name
        (r.Report.throughput /. 1e3)
        (r.Report.avg_latency *. 1e3))
    [ ("instance-order", false); ("digest-permutation", true) ]

let run_recovery profile =
  let n = match profile with `Full -> 32 | `Quick -> 16 in
  let results = Experiment.recovery_comparison profile ~n ~batch_size:100 in
  Printf.printf
    "\n## Ablation: recovery strategy under the collusion attack (multip, n=%d)\n\n"
    n;
  Printf.printf "%-14s %12s %14s %14s %12s\n" "strategy" "tput" "contractB"
    "collusions" "replacements";
  List.iter
    (fun (mode, (r : Report.t)) ->
      let name =
        match mode with
        | Rcc_core.Coordinator.Optimistic -> "optimistic"
        | Rcc_core.Coordinator.Pessimistic -> "pessimistic"
        | Rcc_core.Coordinator.View_shift -> "view-shift"
      in
      Printf.printf "%-14s %11.1fK %14d %14d %12d\n" name
        (r.Report.throughput /. 1e3)
        r.Report.contract_bytes r.Report.collusions_detected
        r.Report.replacements)
    results

(* The byzantine premium: the same RCC machinery over a crash-fault
   primary-backup protocol (§8's extension) versus MultiP, and the
   standalone pair. CFT's two linear phases versus PBFT's two quadratic
   ones measure what byzantine tolerance costs on this workload. *)
let run_cft profile =
  let n = match profile with `Full -> 32 | `Quick -> 16 in
  Printf.printf "\n## Ablation: crash-fault vs byzantine (n=%d, batch=100)\n\n" n;
  Printf.printf "%-10s %12s %12s\n" "protocol" "tput" "avg_lat";
  List.iter
    (fun protocol ->
      let cfg =
        Config.make ~protocol ~n ~batch_size:100
          ~duration:(Experiment.duration profile)
          ~warmup:(Experiment.warmup profile) ()
      in
      let r = Experiment.run_one cfg in
      Printf.printf "%-10s %11.1fK %10.1fms\n"
        (Config.protocol_name protocol)
        (r.Report.throughput /. 1e3)
        (r.Report.avg_latency *. 1e3))
    [ Config.MultiC; Config.MultiP; Config.Cft; Config.Pbft ]

(* Link-latency sweep: RCC's pipelined instances keep the execute thread
   fed even on slow links, so throughput should hold while client latency
   grows — until in-flight concurrency (Little's law) becomes the limit. *)
let run_wan profile =
  let n = match profile with `Full -> 32 | `Quick -> 16 in
  Printf.printf "\n## Ablation: link latency (n=%d, batch=100)\n\n" n;
  Printf.printf "%-10s %10s %12s %12s\n" "protocol" "latency" "tput" "avg_lat";
  List.iter
    (fun protocol ->
      List.iter
        (fun latency_us ->
          let base =
            Config.make ~protocol ~n ~batch_size:100
              ~duration:(Experiment.duration profile)
              ~warmup:(Experiment.warmup profile) ()
          in
          let cfg =
            { base with Config.latency = Rcc_sim.Engine.us latency_us }
          in
          let r =
            Experiment.run_one
              ~label:
                (Printf.sprintf "%s link=%dus"
                   (Config.protocol_name protocol)
                   latency_us)
              cfg
          in
          Printf.printf "%-10s %8dus %11.1fK %10.1fms\n"
            (Config.protocol_name protocol)
            latency_us
            (r.Report.throughput /. 1e3)
            (r.Report.avg_latency *. 1e3))
        (match profile with
        | `Full -> [ 100; 1_000; 5_000 ]
        | `Quick -> [ 100; 1_000 ]))
    [ Config.MultiP; Config.Pbft ]

let run profile =
  run_z profile;
  run_order profile;
  run_recovery profile;
  run_cft profile;
  run_wan profile
