(* §7.2 message-size table: with a batch of 100 transactions the paper
   reports PRE-PREPARE = 5400 B, RESPONSE = 1748 B, other messages 250 B,
   and ~175 KB recovery contracts in the fig. 12 setup. This bench prints
   the sizes our wire model produces for the same messages. *)

module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch

let sample_batch ntxns =
  let rng = Rcc_common.Rng.create 7 in
  let txns =
    Array.init ntxns (fun i ->
        Rcc_workload.Txn.
          { key = Rcc_common.Rng.int rng 1000; op = Write i })
  in
  let secret, _ = Rcc_crypto.Signature.keygen rng in
  Batch.create ~id:0 ~client:0 ~txns ~secret

let run _profile =
  let batch = sample_batch 100 in
  let pre_prepare = Msg.Pre_prepare { instance = 0; view = 0; seq = 0; batch } in
  let response =
    Msg.Response
      {
        client = 0;
        batch_id = 0;
        round = 0;
        result_digest = String.make 32 'x';
        txn_count = 100;
        speculative = false;
        history = "";
      }
  in
  let prepare =
    Msg.Prepare { instance = 0; view = 0; seq = 0; digest = String.make 32 'x' }
  in
  (* The fig. 12 contract: z = 11 instances, each with a batch of 100 and a
     2f+1 = 21-replica accept proof. *)
  let entry i =
    {
      Msg.ce_instance = i;
      ce_round = 0;
      ce_batch = sample_batch 100;
      ce_cert_replicas = List.init 21 (fun r -> r);
    }
  in
  let contract = Msg.Contract { round = 0; entries = List.init 11 entry } in
  Printf.printf "\n## Message sizes at batch=100 (paper: §7.2)\n\n";
  Printf.printf "%-22s %10s %10s\n" "message" "bytes" "paper";
  Printf.printf "%-22s %10d %10s\n" "PRE-PREPARE" (Msg.size pre_prepare) "5400";
  Printf.printf "%-22s %10d %10s\n" "RESPONSE" (Msg.size response) "1748";
  Printf.printf "%-22s %10d %10s\n" "PREPARE/COMMIT/other" (Msg.size prepare) "250";
  Printf.printf "%-22s %10d %10s\n" "recovery contract" (Msg.size contract)
    "~175000"
