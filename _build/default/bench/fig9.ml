(* Figure 9: system performance as a function of the batch size, n = 32.

   Paper-reported shape (§7.3): MultiZ highest throughput at every batch
   size, up to 74% over Zyzzyva; MultiP up to 2x PBFT and 3.2x HotStuff;
   MultiP and MultiZ converge at large batches (execute-thread ceiling);
   throughput rises with batch size and saturates. Latency: MultiP lowest;
   PBFT highest at small batches, dropping steeply as batches grow;
   HotStuff ~3.2x MultiP. *)

let batch_sizes profile =
  match profile with
  | `Full -> [ 10; 50; 100; 200; 400; 800 ]
  | `Quick -> [ 10; 100 ]

let n profile = match profile with `Full -> 32 | `Quick -> 16

let run profile =
  let n = n profile in
  let batch_sizes = batch_sizes profile in
  let results =
    Rcc_runtime.Experiment.sweep_batch profile
      ~protocols:Rcc_runtime.Config.all_protocols ~n ~batch_sizes
  in
  Tables.print_matrix
    ~title:
      (Printf.sprintf "Figure 9(a): throughput vs batch size (n=%d)" n)
    ~row_name:"batch" ~rows:batch_sizes ~value:Tables.ktxn results;
  Tables.print_matrix
    ~title:
      (Printf.sprintf "Figure 9(b): avg client latency vs batch size (n=%d)" n)
    ~row_name:"batch" ~rows:batch_sizes ~value:Tables.ms results
