(* Figure 11: throughput under failures, batch size 100.

   (a) One non-primary replica fails (crash, or kept in the dark by a
       malicious primary). Paper shape: MultiP / PBFT / HotStuff
       unaffected; Zyzzyva and MultiZ collapse to ~zero because their
       clients wait on responses from all n replicas until the 15 s client
       timeout.

   (b) f replicas fail simultaneously. Paper shape: every protocol slows
       (quorums now need the slowest surviving replicas); the Zyzzyva
       family stays collapsed. *)

let ns profile =
  match profile with `Full -> [ 8; 16; 32; 46 ] | `Quick -> [ 8; 16 ]

(* The failed replica must not host a primary: primaries start on replicas
   0..z-1 and z <= f+1 <= (n-1)/3 + 1 < n-1, so replica n-1 is free. *)
let one_crash ~n ~f:_ = Rcc_runtime.Config.Crash [ n - 1 ]

let f_crashes ~n ~f =
  Rcc_runtime.Config.Crash (List.init f (fun i -> n - 1 - i))

let run profile =
  let ns = ns profile in
  let one =
    Rcc_runtime.Experiment.sweep_failures profile
      ~protocols:Rcc_runtime.Config.all_protocols ~ns ~batch_size:100
      ~failures:one_crash
  in
  Tables.print_matrix
    ~title:"Figure 11(a): throughput with one failed replica (batch=100)"
    ~row_name:"n" ~rows:ns ~value:Tables.ktxn one;
  let many =
    Rcc_runtime.Experiment.sweep_failures profile
      ~protocols:Rcc_runtime.Config.all_protocols ~ns ~batch_size:100
      ~failures:f_crashes
  in
  Tables.print_matrix
    ~title:"Figure 11(b): throughput with f failed replicas (batch=100)"
    ~row_name:"n" ~rows:ns ~value:Tables.ktxn many
