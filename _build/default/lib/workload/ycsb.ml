type t = {
  write_ratio : float;
  zipf : Zipf.t;
  rng : Rcc_common.Rng.t;
  mutable counter : int;
}

let create_shared ~zipf ~write_ratio ~seed =
  { write_ratio; zipf; rng = Rcc_common.Rng.create seed; counter = 0 }

let create ?(records = 500_000) ?(write_ratio = 0.9) ?(theta = 0.9) ~seed () =
  create_shared ~zipf:(Zipf.create ~n:records ~theta) ~write_ratio ~seed

let records t = Zipf.n t.zipf
let write_ratio t = t.write_ratio

let init_store t store =
  Rcc_storage.Kv_store.init_records store ~count:(records t)

let next_txn t =
  let key = Zipf.next t.zipf t.rng in
  t.counter <- t.counter + 1;
  if Rcc_common.Rng.float t.rng 1.0 < t.write_ratio then
    Txn.{ key; op = Write t.counter }
  else Txn.{ key; op = Read }

let batch t ~size = Array.init size (fun _ -> next_txn t)
