(** Zipfian key-distribution generator (Gray et al., as used by YCSB).

    Draws integers in [0, n) where the k-th most popular item has
    probability proportional to 1 / k^theta. The paper's workload uses
    theta = 0.9 ("heavily skewed"). *)

type t

val create : n:int -> theta:float -> t
(** Precomputes the zeta constants; O(n) once per generator. Requires
    [n > 0] and [0 <= theta < 1]. *)

val next : t -> Rcc_common.Rng.t -> int
(** Draw one key. *)

val n : t -> int
val theta : t -> float
