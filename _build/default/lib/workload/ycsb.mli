(** YCSB-style workload generator (§7.2).

    Defaults match the paper: a table of half a million active records,
    90% write operations, Zipfian key skew with theta 0.9.

    The Zipf table is O(records) to build, so generators meant to be
    created in bulk (one per client machine) should share one via
    {!create_shared}. *)

type t

val create :
  ?records:int -> ?write_ratio:float -> ?theta:float -> seed:int -> unit -> t

val create_shared : zipf:Zipf.t -> write_ratio:float -> seed:int -> t
(** Same behaviour, reusing a prebuilt key distribution. *)

val records : t -> int
val write_ratio : t -> float

val init_store : t -> Rcc_storage.Kv_store.t -> unit
(** Populate a replica's store with the identical initial table. *)

val next_txn : t -> Txn.t
(** Draw the next operation. *)

val batch : t -> size:int -> Txn.t array
(** Draw a client batch of [size] operations. *)
