lib/workload/ycsb.ml: Array Rcc_common Rcc_storage Txn Zipf
