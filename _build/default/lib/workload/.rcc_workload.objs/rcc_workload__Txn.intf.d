lib/workload/txn.mli: Format Rcc_storage
