lib/workload/ycsb.mli: Rcc_storage Txn Zipf
