lib/workload/txn.ml: Format Int64 Printf Rcc_common Rcc_storage String
