lib/workload/zipf.mli: Rcc_common
