lib/workload/zipf.ml: Rcc_common
