(** Build and run one simulated deployment: n replicas, the client fleet,
    the network, the fault injection — then collect a {!Report}. *)

type t

val build : Config.t -> t
(** Constructs everything but does not start the clock. *)

val run : t -> Report.t
(** Starts replicas and clients, runs the simulation for the configured
    duration and returns the measurements. *)

val run_config : Config.t -> Report.t
(** [build] + [run]. *)

(* Introspection for tests and examples (valid after [run]). *)

val config : t -> Config.t
val metrics : t -> Rcc_replica.Metrics.t
val ledger : t -> Rcc_common.Ids.replica_id -> Rcc_storage.Ledger.t
val store : t -> Rcc_common.Ids.replica_id -> Rcc_storage.Kv_store.t
val txn_table : t -> Rcc_common.Ids.replica_id -> Rcc_storage.Txn_table.t
val primary_of_instance :
  t -> Rcc_common.Ids.instance_id -> Rcc_common.Ids.replica_id
val replacements : t -> int
val client_pool : t -> Rcc_replica.Client_pool.t
val engine : t -> Rcc_sim.Engine.t
