lib/runtime/cluster.mli: Config Rcc_common Rcc_replica Rcc_sim Rcc_storage Report
