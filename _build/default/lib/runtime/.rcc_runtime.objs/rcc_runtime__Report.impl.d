lib/runtime/report.ml: Format Printf
