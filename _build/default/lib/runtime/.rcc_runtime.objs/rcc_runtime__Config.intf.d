lib/runtime/config.mli: Rcc_common Rcc_core Rcc_replica Rcc_sim
