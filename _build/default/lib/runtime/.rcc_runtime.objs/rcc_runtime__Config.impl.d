lib/runtime/config.ml: Rcc_common Rcc_core Rcc_replica Rcc_sim
