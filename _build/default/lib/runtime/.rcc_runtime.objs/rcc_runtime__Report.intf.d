lib/runtime/report.mli: Format
