lib/runtime/experiment.ml: Cluster Config List Printf Rcc_core Rcc_sim Report
