lib/runtime/cluster.ml: Array Config List Rcc_cft Rcc_common Rcc_core Rcc_crypto Rcc_hotstuff Rcc_messages Rcc_pbft Rcc_replica Rcc_sim Rcc_storage Rcc_zyzzyva Report Sys
