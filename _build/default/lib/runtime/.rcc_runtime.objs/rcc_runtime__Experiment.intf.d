lib/runtime/experiment.mli: Config Rcc_core Rcc_sim Report
