(** Result of one experiment run, with printers for the bench tables. *)

type t = {
  protocol : string;
  n : int;
  batch_size : int;
  throughput : float;  (** committed client txns / s, post-warmup *)
  avg_latency : float;  (** seconds *)
  p50_latency : float;
  p99_latency : float;
  committed_txns : int;
  timeline : (float * float) array;  (** client throughput per 100 ms *)
  exec_timeline : (float * float) array;  (** affected replica, fig. 12 *)
  view_changes : int;
  collusions_detected : int;
  contract_bytes : int;
  replacements : int;
  messages : int;
  bytes_sent : int;
  ledger_rounds : int;
  ledger_valid : bool;
  exec_utilization : float;  (** replica 0's execute thread busy fraction *)
  worker_utilization : float;  (** replica 0's instance-0 worker busy fraction *)
  sim_events : int;
  wall_seconds : float;
}

val header : unit -> string
val row : t -> string
val pp : Format.formatter -> t -> unit
