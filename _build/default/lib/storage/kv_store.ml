type record = { mutable value : int; mutable version : int }

type t = {
  table : (int, record) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
}

let create () = { table = Hashtbl.create 4096; reads = 0; writes = 0 }

let init_records t ~count =
  for key = 0 to count - 1 do
    Hashtbl.replace t.table key { value = key * 7; version = 0 }
  done

let read t key =
  t.reads <- t.reads + 1;
  match Hashtbl.find_opt t.table key with
  | Some r -> Some r.value
  | None -> None

let write t ~key ~value =
  t.writes <- t.writes + 1;
  match Hashtbl.find_opt t.table key with
  | Some r ->
      r.value <- value;
      r.version <- r.version + 1
  | None -> Hashtbl.replace t.table key { value; version = 1 }

let version t key =
  match Hashtbl.find_opt t.table key with Some r -> r.version | None -> 0

let size t = Hashtbl.length t.table
let reads_performed t = t.reads
let writes_performed t = t.writes

let state_digest t =
  (* Xor of per-entry digests is order-insensitive over the hash table. *)
  let acc = Bytes.make 32 '\x00' in
  Hashtbl.iter
    (fun key r ->
      let entry =
        Rcc_common.Bytes_util.u64_string (Int64.of_int key)
        ^ Rcc_common.Bytes_util.u64_string (Int64.of_int r.value)
        ^ Rcc_common.Bytes_util.u64_string (Int64.of_int r.version)
      in
      let d = Rcc_crypto.Sha256.digest entry in
      for i = 0 to 31 do
        Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lxor Char.code d.[i]))
      done)
    t.table;
  Bytes.unsafe_to_string acc
