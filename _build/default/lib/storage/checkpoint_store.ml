type proof = {
  seq : Rcc_common.Ids.round;
  state_digest : string;
  attesters : Rcc_common.Ids.replica_id list;
}

type t = {
  capacity : int;
  ring : proof option array;
  mutable used : int;  (* total recorded *)
  mutable latest : proof option;
}

let create ?(capacity = 64) () =
  { capacity = max 1 capacity; ring = Array.make (max 1 capacity) None; used = 0; latest = None }

let stable t = t.latest

let stable_seq t = match t.latest with Some p -> p.seq | None -> -1

let record t proof =
  if proof.seq > stable_seq t then begin
    t.ring.(t.used mod t.capacity) <- Some proof;
    t.used <- t.used + 1;
    t.latest <- Some proof
  end

(* Slot [i] (0 <= i < used) is retrievable while it is among the last
   [capacity] recordings. *)
let in_window t i = i >= 0 && t.used - i <= t.capacity

let find t ~seq =
  let rec scan i =
    if not (in_window t i) then None
    else
      match t.ring.(i mod t.capacity) with
      | Some p when p.seq = seq -> Some p
      | Some _ | None -> scan (i - 1)
  in
  scan (t.used - 1)

(* Newest first. *)
let recent t k =
  let rec collect i n acc =
    if n = 0 || not (in_window t i) then List.rev acc
    else
      match t.ring.(i mod t.capacity) with
      | Some p -> collect (i - 1) (n - 1) (p :: acc)
      | None -> List.rev acc
  in
  collect (t.used - 1) k []

let count t = t.used
