type entry = {
  round : Rcc_common.Ids.round;
  instance : Rcc_common.Ids.instance_id;
  client : Rcc_common.Ids.client_id;
  batch_digest : string;
  response_digest : string;
  txn_count : int;
}

type t = {
  by_round : (int, entry list ref) Hashtbl.t;
  mutable txns : int;
}

let create () = { by_round = Hashtbl.create 1024; txns = 0 }

let record t entry =
  t.txns <- t.txns + entry.txn_count;
  match Hashtbl.find_opt t.by_round entry.round with
  | Some l -> l := entry :: !l
  | None -> Hashtbl.replace t.by_round entry.round (ref [ entry ])

let find t ~round =
  match Hashtbl.find_opt t.by_round round with
  | None -> []
  | Some l -> List.sort (fun a b -> compare a.instance b.instance) !l

let total_txns t = t.txns
let rounds t = Hashtbl.length t.by_round
