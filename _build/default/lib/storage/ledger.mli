(** An append-only blockchain of {!Block}s with hash-chain validation. *)

type t

val create : primaries:Rcc_common.Ids.replica_id list -> t
(** Starts from the genesis hash derived from the initial primaries. *)

val append : t -> Block.t -> (unit, string) result
(** Fails if the block's round is not the next round or its [prev_hash]
    does not match the current head. *)

val append_exn : t -> Block.t -> unit

val length : t -> int
(** Number of non-genesis blocks. *)

val head_hash : t -> string

val next_round : t -> Rcc_common.Ids.round

val get : t -> Rcc_common.Ids.round -> Block.t option

val validate : t -> (unit, string) result
(** Re-checks the whole hash chain. *)

val iter : t -> (Block.t -> unit) -> unit
