lib/storage/ledger.ml: Array Block Printf String
