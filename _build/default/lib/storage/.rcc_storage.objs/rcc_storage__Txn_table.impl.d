lib/storage/txn_table.ml: Hashtbl List Rcc_common
