lib/storage/block.mli: Format Rcc_common
