lib/storage/ledger.mli: Block Rcc_common
