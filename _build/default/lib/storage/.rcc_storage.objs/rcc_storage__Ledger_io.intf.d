lib/storage/ledger_io.mli: Ledger Rcc_common
