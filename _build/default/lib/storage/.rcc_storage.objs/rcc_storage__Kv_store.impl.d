lib/storage/kv_store.ml: Bytes Char Hashtbl Int64 Rcc_common Rcc_crypto String
