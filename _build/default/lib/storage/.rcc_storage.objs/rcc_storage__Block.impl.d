lib/storage/block.ml: Format Int64 List Rcc_common Rcc_crypto String
