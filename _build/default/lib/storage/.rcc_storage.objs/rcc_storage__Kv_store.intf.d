lib/storage/kv_store.mli:
