lib/storage/checkpoint_store.ml: Array List Rcc_common
