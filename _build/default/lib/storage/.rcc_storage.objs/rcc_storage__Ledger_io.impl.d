lib/storage/ledger_io.ml: Block Buffer Fun Int64 Ledger List Rcc_common String
