lib/storage/checkpoint_store.mli: Rcc_common
