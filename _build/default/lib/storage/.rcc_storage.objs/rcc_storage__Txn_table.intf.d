lib/storage/txn_table.mli: Rcc_common
