(** Recovery contracts (§3.4.3).

    A contract for round [r] carries, per instance, the request replicated
    in [r] together with the accept proof (the replicas backing the
    prepare/commit certificate). Sending contracts on collusion detection
    is optimistic recovery; sending them every round is pessimistic
    recovery. *)

type t = {
  round : Rcc_common.Ids.round;
  entries : Rcc_messages.Msg.contract_entry list;
}

val build :
  round:Rcc_common.Ids.round ->
  accepted:(Rcc_common.Ids.instance_id ->
           (Rcc_messages.Batch.t * int list) option) ->
  z:int ->
  t
(** Collect this replica's accepted batches for [round] across all [z]
    instances; instances this replica did not complete are absent (other
    replicas' contracts cover them). *)

val to_msg : t -> Rcc_messages.Msg.t

val of_msg : Rcc_messages.Msg.t -> t option

val validate : t -> n:int -> min_cert:int -> (unit, string) result
(** Structural check: instances in range and each entry's proof backed by
    at least [min_cert] replicas. PBFT-backed instances use
    [min_cert = n - 2f] (the non-faulty majority any accepted request must
    reach, requirement R1); speculative instances carry thinner proofs. *)

val size : t -> int
(** Wire size (≈175 KB for the paper's 32-replica, batch-100 setup). *)
