lib/core/client_map.ml: Array Hashtbl Rcc_common
