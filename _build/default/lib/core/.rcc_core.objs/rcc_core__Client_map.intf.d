lib/core/client_map.mli: Rcc_common
