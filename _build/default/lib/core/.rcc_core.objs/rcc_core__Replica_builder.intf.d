lib/core/replica_builder.mli: Coordinator Rcc_common Rcc_crypto Rcc_messages Rcc_replica Rcc_sim Rcc_storage
