lib/core/coordinator.ml: Array Contract List Option Rcc_common Rcc_messages Rcc_replica Rcc_sim
