lib/core/contract.ml: List Rcc_common Rcc_messages
