lib/core/permutation.mli:
