lib/core/coordinator.mli: Rcc_common Rcc_messages Rcc_replica Rcc_sim
