lib/core/permutation.ml: Array Int64 List Rcc_common Rcc_crypto String
