lib/core/replica_builder.ml: Array Client_map Coordinator List Permutation Rcc_common Rcc_crypto Rcc_messages Rcc_replica Rcc_sim Rcc_storage
