lib/core/contract.mli: Rcc_common Rcc_messages
