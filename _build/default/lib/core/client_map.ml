type t = {
  z : int;
  cap : int;
  moved : (Rcc_common.Ids.client_id, Rcc_common.Ids.instance_id) Hashtbl.t;
  adopted : int array;  (* non-home clients per instance *)
}

let create ~z ~cap_per_instance =
  assert (z > 0 && cap_per_instance >= 0);
  { z; cap = cap_per_instance; moved = Hashtbl.create 64; adopted = Array.make z 0 }

let home_instance t c = c mod t.z

let current_instance t c =
  match Hashtbl.find_opt t.moved c with
  | Some x -> x
  | None -> home_instance t c

let population t x = t.adopted.(x)

let request_change t ~client ~target =
  let current = current_instance t client in
  if target = current then Error `Same_instance
  else if target <> home_instance t client && t.adopted.(target) >= t.cap then
    Error `At_capacity
  else begin
    (* Release the slot held at the previous non-home instance. *)
    if current <> home_instance t client then
      t.adopted.(current) <- t.adopted.(current) - 1;
    if target = home_instance t client then Hashtbl.remove t.moved client
    else begin
      Hashtbl.replace t.moved client target;
      t.adopted.(target) <- t.adopted.(target) + 1
    end;
    Ok ()
  end
