(** Client-to-instance mapping (§3.1) and instance-change (§3.6).

    Clients are deterministically partitioned over the [z] instances
    ([instance = id(C) mod z]) to prevent request-duplication attacks. A
    client being starved by a malicious primary may defect to another
    instance, which accepts it only while below a per-instance cap
    (preventing targeted flooding by malicious clients). *)

type t

val create : z:int -> cap_per_instance:int -> t

val home_instance : t -> Rcc_common.Ids.client_id -> Rcc_common.Ids.instance_id
(** The deterministic initial assignment, [id mod z]. *)

val current_instance : t -> Rcc_common.Ids.client_id -> Rcc_common.Ids.instance_id

val request_change :
  t ->
  client:Rcc_common.Ids.client_id ->
  target:Rcc_common.Ids.instance_id ->
  (unit, [ `At_capacity | `Same_instance ]) result
(** Move a client to [target] if the target still has room. *)

val population : t -> Rcc_common.Ids.instance_id -> int
(** Adopted (non-home) clients currently assigned to the instance. *)
