(** Identifier vocabulary shared by every layer of the system.

    Replicas, clients, protocol instances, rounds and sequence numbers are
    all integers at runtime (the simulator is hot-path sensitive), but each
    gets a named alias and a printer so signatures stay self-documenting. *)

type replica_id = int
(** Index of a replica, [0 .. n-1]. *)

type client_id = int
(** Index of a client, [0 .. |C|-1]. *)

type instance_id = int
(** Index of an RCC instance, [0 .. z-1]. *)

type round = int
(** RCC round number (one consensus per instance per round). *)

type seqno = int
(** Per-instance consensus sequence number (equals the round in RCC). *)

type view = int
(** Per-instance view number; the primary is a function of the view. *)

val pp_replica : Format.formatter -> replica_id -> unit
val pp_client : Format.formatter -> client_id -> unit
val pp_instance : Format.formatter -> instance_id -> unit
val pp_round : Format.formatter -> round -> unit
val pp_view : Format.formatter -> view -> unit
