(** Streaming statistics: summaries, latency histograms, time series.

    The experiment harness feeds these from the simulator and the benches
    print them as the rows/series of the paper's figures. *)

module Summary : sig
  (** Count / mean / min / max / variance in O(1) memory (Welford). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val stddev : t -> float
  val merge : t -> t -> t
end

module Histogram : sig
  (** Log-bucketed histogram for latency percentiles. Values are
      non-negative; resolution is ~1% per bucket. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t 0.99] approximates the 99th percentile. Returns 0 when
      empty. *)

  val mean : t -> float
end

module Series : sig
  (** Fixed-width time buckets accumulating a counter; used for
      throughput-over-time plots (Figure 12). *)

  type t

  val create : bucket_width:float -> unit -> t
  (** [bucket_width] is in seconds. *)

  val add : t -> time:float -> float -> unit
  val buckets : t -> (float * float) array
  (** [(bucket_start_time, total)] pairs in time order, including empty
      intermediate buckets. *)

  val rates : t -> (float * float) array
  (** Like {!buckets} but each total divided by the bucket width, i.e. a
      rate per second. *)
end
