(** Deterministic pseudo-random number generation (SplitMix64).

    Every source of nondeterminism in the reproduction — network jitter,
    Zipfian draws, byzantine scheduling — is derived from one of these
    generators, so experiments are exactly reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each replica / client / link its own stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp(1/mean). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
