type 'a t = {
  mutable size : int;
  mutable prio : int array;
  mutable seq : int array;
  mutable data : 'a option array;
  mutable next_seq : int;
}

let create ?(capacity = 256) () =
  let capacity = max capacity 16 in
  {
    size = 0;
    prio = Array.make capacity 0;
    seq = Array.make capacity 0;
    data = Array.make capacity None;
    next_seq = 0;
  }

let is_empty t = t.size = 0

let size t = t.size

let grow t =
  let n = Array.length t.prio in
  let n' = n * 2 in
  let prio = Array.make n' 0 in
  let seq = Array.make n' 0 in
  let data = Array.make n' None in
  Array.blit t.prio 0 prio 0 n;
  Array.blit t.seq 0 seq 0 n;
  Array.blit t.data 0 data 0 n;
  t.prio <- prio;
  t.seq <- seq;
  t.data <- data

(* (p1, s1) < (p2, s2) lexicographically. *)
let less t i j =
  let pi = t.prio.(i) and pj = t.prio.(j) in
  pi < pj || (pi = pj && t.seq.(i) < t.seq.(j))

let swap t i j =
  let p = t.prio.(i) in
  t.prio.(i) <- t.prio.(j);
  t.prio.(j) <- p;
  let s = t.seq.(i) in
  t.seq.(i) <- t.seq.(j);
  t.seq.(j) <- s;
  let d = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = if l < t.size && less t l i then l else i in
  let smallest = if r < t.size && less t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let push t ~priority v =
  if t.size = Array.length t.prio then grow t;
  let i = t.size in
  t.prio.(i) <- priority;
  t.seq.(i) <- t.next_seq;
  t.data.(i) <- Some v;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let pop t =
  if t.size = 0 then None
  else begin
    let p = t.prio.(0) in
    let v =
      match t.data.(0) with
      | Some v -> v
      | None -> assert false
    in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prio.(0) <- t.prio.(t.size);
      t.seq.(0) <- t.seq.(t.size);
      t.data.(0) <- t.data.(t.size)
    end;
    t.data.(t.size) <- None;
    sift_down t 0;
    Some (p, v)
  end

let peek_priority t = if t.size = 0 then None else Some t.prio.(0)

let clear t =
  Array.fill t.data 0 t.size None;
  t.size <- 0
