let hex s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  let digit k = "0123456789abcdef".[k] in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set out (2 * i) (digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (digit (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytes_util.of_hex: odd length";
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytes_util.of_hex: bad digit"
  in
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.set out i
      (Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  done;
  Bytes.unsafe_to_string out

let xor a b =
  let n = String.length a in
  if String.length b <> n then invalid_arg "Bytes_util.xor: length mismatch";
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (Char.code a.[i] lxor Char.code b.[i]))
  done;
  Bytes.unsafe_to_string out

let put_u32be b off v =
  Bytes.set b off (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (Int32.to_int v land 0xff))

let get_u32be s off =
  let b i = Int32.of_int (Char.code s.[off + i]) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor
       (Int32.shift_left (b 1) 16)
       (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

let put_u64be b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * (7 - i))) land 0xff))
  done

let get_u64be s off =
  let rec go i acc =
    if i = 8 then acc
    else
      go (i + 1)
        (Int64.logor (Int64.shift_left acc 8) (Int64.of_int (Char.code s.[off + i])))
  in
  go 0 0L

let u64_string v =
  let b = Bytes.create 8 in
  put_u64be b 0 v;
  Bytes.unsafe_to_string b
