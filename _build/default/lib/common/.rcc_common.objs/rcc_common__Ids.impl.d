lib/common/ids.ml: Format
