lib/common/binary_heap.mli:
