lib/common/bitset.ml: Array
