lib/common/stats.ml: Array Stdlib
