lib/common/ids.mli: Format
