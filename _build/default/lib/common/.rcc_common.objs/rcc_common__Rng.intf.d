lib/common/rng.mli:
