lib/common/bitset.mli:
