lib/common/stats.mli:
