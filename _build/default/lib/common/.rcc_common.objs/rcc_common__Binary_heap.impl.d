lib/common/binary_heap.ml: Array
