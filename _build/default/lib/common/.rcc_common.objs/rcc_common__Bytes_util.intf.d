lib/common/bytes_util.mli:
