lib/common/bytes_util.ml: Bytes Char Int32 Int64 String
