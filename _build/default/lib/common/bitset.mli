(** Fixed-capacity bitsets for quorum tracking (one bit per replica). *)

type t

val create : int -> t
(** [create n] supports members [0 .. n-1]. *)

val add : t -> int -> bool
(** [add t i] sets bit [i]; returns [true] iff it was newly set. *)

val mem : t -> int -> bool
val count : t -> int
val capacity : t -> int
val clear : t -> unit
val iter : t -> (int -> unit) -> unit
val to_list : t -> int list
