type replica_id = int
type client_id = int
type instance_id = int
type round = int
type seqno = int
type view = int

let pp_replica fmt r = Format.fprintf fmt "R%d" r
let pp_client fmt c = Format.fprintf fmt "C%d" c
let pp_instance fmt i = Format.fprintf fmt "I%d" i
let pp_round fmt r = Format.fprintf fmt "r%d" r
let pp_view fmt v = Format.fprintf fmt "v%d" v
