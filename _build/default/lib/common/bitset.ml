type t = { words : int array; capacity : int; mutable count : int }

let create n =
  assert (n >= 0);
  { words = Array.make ((n + 62) / 63) 0; capacity = n; count = 0 }

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let w = i / 63 and b = i mod 63 in
  let mask = 1 lsl b in
  if t.words.(w) land mask <> 0 then false
  else begin
    t.words.(w) <- t.words.(w) lor mask;
    t.count <- t.count + 1;
    true
  end

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let count t = t.count
let capacity t = t.capacity

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.count <- 0

let iter t f =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc
