(** Array-backed min-heap keyed by [(priority, sequence)].

    The sequence number is assigned at insertion time, making extraction
    order deterministic among equal priorities (FIFO among ties). This is
    the event queue of the simulator, so determinism here is load-bearing. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> priority:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum [(priority, value)]. *)

val peek_priority : 'a t -> int option

val clear : 'a t -> unit
