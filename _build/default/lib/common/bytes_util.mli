(** Byte-string helpers used by the crypto layer and wire encoding. *)

val hex : string -> string
(** Lowercase hex encoding. *)

val of_hex : string -> string
(** Inverse of {!hex}. Raises [Invalid_argument] on malformed input. *)

val xor : string -> string -> string
(** Byte-wise xor of equal-length strings. *)

val put_u32be : bytes -> int -> int32 -> unit
val get_u32be : string -> int -> int32
val put_u64be : bytes -> int -> int64 -> unit
val get_u64be : string -> int -> int64

val u64_string : int64 -> string
(** Big-endian 8-byte encoding. *)
