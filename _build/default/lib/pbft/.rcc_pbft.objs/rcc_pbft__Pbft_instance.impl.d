lib/pbft/pbft_instance.ml: Hashtbl List Option Rcc_common Rcc_messages Rcc_replica Rcc_sim Rcc_storage String
