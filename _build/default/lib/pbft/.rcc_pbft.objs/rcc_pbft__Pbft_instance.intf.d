lib/pbft/pbft_instance.mli: Rcc_common Rcc_replica Rcc_storage
