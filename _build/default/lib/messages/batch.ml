type t = {
  id : int;
  client : Rcc_common.Ids.client_id;
  txns : Rcc_workload.Txn.t array;
  digest : string;
  signature : Rcc_crypto.Signature.signature;
}

let digest_of_txns txns =
  let parts = Array.to_list (Array.map Rcc_workload.Txn.encode txns) in
  Rcc_crypto.Sha256.digest_list parts

let create ~id ~client ~txns ~secret =
  let digest = digest_of_txns txns in
  { id; client; txns; digest; signature = Rcc_crypto.Signature.sign secret digest }

let null_client = -1

let null ~round =
  {
    id = -round - 1;
    client = null_client;
    txns = [||];
    digest = Rcc_crypto.Sha256.digest ("rcc-null" ^ string_of_int round);
    signature = String.make Rcc_crypto.Signature.signature_size '\x00';
  }

let is_null t = t.client = null_client

let verify t ~public =
  String.equal t.digest (digest_of_txns t.txns)
  && Rcc_crypto.Signature.verify public t.digest t.signature

let wire_size ~ntxns = ntxns * Rcc_workload.Txn.wire_size

let size t = wire_size ~ntxns:(Array.length t.txns)
