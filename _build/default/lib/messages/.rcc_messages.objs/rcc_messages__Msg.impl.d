lib/messages/msg.ml: Batch Format List Rcc_common
