lib/messages/codec.ml: Array Batch Buffer Char Int64 List Msg Printf Rcc_common Rcc_workload String
