lib/messages/batch.mli: Rcc_common Rcc_crypto Rcc_workload
