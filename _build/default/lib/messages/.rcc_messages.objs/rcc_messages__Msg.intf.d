lib/messages/msg.mli: Batch Format Rcc_common
