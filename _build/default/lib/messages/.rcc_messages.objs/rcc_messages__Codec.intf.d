lib/messages/codec.mli: Msg
