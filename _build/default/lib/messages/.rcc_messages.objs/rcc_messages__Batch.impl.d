lib/messages/batch.ml: Array Rcc_common Rcc_crypto Rcc_workload String
