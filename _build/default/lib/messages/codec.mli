(** Binary wire format for {!Msg.t}.

    The simulator passes messages as OCaml values and models sizes with
    {!Msg.size}; this codec is the real serialization a deployment would
    put on the wire — used by the persistence/audit tooling and validated
    by round-trip property tests. The format is self-describing enough to
    reject truncated or corrupted input with an error rather than an
    exception. *)

val encode : Msg.t -> string

val decode : string -> (Msg.t, string) result
(** Inverse of {!encode}: [decode (encode m) = Ok m]. *)

val encoded_size : Msg.t -> int
(** [String.length (encode m)], without materializing the encoding. *)
