lib/zyzzyva/zyzzyva_instance.mli: Rcc_common Rcc_replica
