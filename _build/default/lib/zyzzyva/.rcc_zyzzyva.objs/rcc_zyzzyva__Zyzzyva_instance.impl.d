lib/zyzzyva/zyzzyva_instance.ml: Hashtbl List Option Rcc_common Rcc_crypto Rcc_messages Rcc_replica Rcc_sim
