(** Zyzzyva (Kotla et al., SOSP '07) as a pluggable instance.

    Speculative single-phase replication: the primary orders a batch with
    an ORDER-REQUEST carrying a chained history digest; backups accept
    speculatively in sequence order and respond to the client immediately.
    Agreement is finished client-side: all [n] matching responses complete
    a request on the fast path; otherwise the client assembles a
    2f+1 commit certificate and gathers LOCAL-COMMIT acks (that logic
    lives in {!Rcc_replica.Client_pool}).

    Failure detection: out-of-order holes, equivocating histories, and
    commit certificates for unaccepted sequence numbers (evidence from
    retrying clients) raise a view-change / coordinator report. As the
    paper notes, the Zyzzyva family keeps requirements R1–R4 only with a
    correct client's help, and its throughput collapses when the fast path
    dies — which is exactly what Figure 11 measures. *)

include Rcc_replica.Instance_intf.S

val committed_upto : t -> Rcc_common.Ids.round
(** Highest round covered by a client commit certificate. *)

val history_digest : t -> string
(** Current speculative history chain head. *)
