module Stats = Rcc_common.Stats
module Engine = Rcc_sim.Engine

type t = {
  warmup : Engine.time;
  mutable txns : int;
  mutable batches : int;
  latency : Stats.Histogram.t;
  throughput : Stats.Series.t;
  exec_per_replica : Stats.Series.t array;
  mutable view_changes : int;
  mutable collusions : int;
  mutable contract_bytes : int;
}

let bucket = 0.1 (* seconds *)

let create ~n ~warmup =
  {
    warmup;
    txns = 0;
    batches = 0;
    latency = Stats.Histogram.create ();
    throughput = Stats.Series.create ~bucket_width:bucket ();
    exec_per_replica =
      Array.init n (fun _ -> Stats.Series.create ~bucket_width:bucket ());
    view_changes = 0;
    collusions = 0;
    contract_bytes = 0;
  }

let warmup t = t.warmup

let record_completion t ~now ~ntxns ~latency =
  Stats.Series.add t.throughput ~time:(Engine.to_seconds now) (float_of_int ntxns);
  if now >= t.warmup then begin
    t.txns <- t.txns + ntxns;
    t.batches <- t.batches + 1;
    Stats.Histogram.add t.latency (Engine.to_seconds latency)
  end

let record_exec t ~replica ~now ~ntxns =
  Stats.Series.add t.exec_per_replica.(replica) ~time:(Engine.to_seconds now)
    (float_of_int ntxns)

let record_view_change t = t.view_changes <- t.view_changes + 1
let record_collusion_detected t = t.collusions <- t.collusions + 1
let record_contract_bytes t b = t.contract_bytes <- t.contract_bytes + b

let committed_txns t = t.txns
let committed_batches t = t.batches

let throughput t ~duration =
  let span = Engine.to_seconds (duration - t.warmup) in
  if span <= 0.0 then 0.0 else float_of_int t.txns /. span

let avg_latency t = Stats.Histogram.mean t.latency
let latency_percentile t p = Stats.Histogram.percentile t.latency p
let timeline t = Stats.Series.rates t.throughput
let exec_timeline t ~replica = Stats.Series.rates t.exec_per_replica.(replica)
let view_changes t = t.view_changes
let collusions_detected t = t.collusions
let contract_bytes t = t.contract_bytes
