lib/replica/byz.ml: List Rcc_common
