lib/replica/acceptance.ml: Rcc_common Rcc_messages
