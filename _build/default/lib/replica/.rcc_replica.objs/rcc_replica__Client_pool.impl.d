lib/replica/client_pool.ml: Array List Metrics Option Rcc_common Rcc_crypto Rcc_messages Rcc_sim Rcc_workload String
