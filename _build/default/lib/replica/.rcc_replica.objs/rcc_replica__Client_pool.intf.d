lib/replica/client_pool.mli: Metrics Rcc_common Rcc_crypto Rcc_messages Rcc_sim
