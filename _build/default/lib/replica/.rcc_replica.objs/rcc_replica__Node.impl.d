lib/replica/node.ml: Array List Printf Rcc_common Rcc_messages Rcc_sim
