lib/replica/metrics.ml: Array Rcc_common Rcc_sim
