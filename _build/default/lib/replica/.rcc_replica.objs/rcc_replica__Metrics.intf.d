lib/replica/metrics.mli: Rcc_common Rcc_sim
