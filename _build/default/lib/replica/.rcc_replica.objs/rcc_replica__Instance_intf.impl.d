lib/replica/instance_intf.ml: Instance_env Rcc_common Rcc_messages Rcc_sim
