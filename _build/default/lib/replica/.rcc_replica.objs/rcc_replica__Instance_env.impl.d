lib/replica/instance_env.ml: Acceptance Byz Rcc_common Rcc_messages Rcc_sim
