lib/replica/exec.ml: Acceptance Array Hashtbl Int64 List Metrics Option Rcc_common Rcc_crypto Rcc_messages Rcc_sim Rcc_storage Rcc_workload
