lib/replica/exec.mli: Acceptance Metrics Rcc_common Rcc_messages Rcc_sim Rcc_storage
