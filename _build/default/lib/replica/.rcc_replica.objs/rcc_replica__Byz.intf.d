lib/replica/byz.mli: Rcc_common
