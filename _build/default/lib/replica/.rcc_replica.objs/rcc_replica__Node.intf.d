lib/replica/node.mli: Rcc_common Rcc_messages Rcc_sim
