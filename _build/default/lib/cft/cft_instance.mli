(** A primary-backup crash-fault-tolerant protocol (viewstamped-
    replication style) as a pluggable instance.

    The paper notes (§8) that the RCC/MultiBFT paradigm "can easily
    incorporate crash-fault tolerant protocols"; this instance demonstrates
    it. Two linear phases: the primary PROPOSEs a batch, backups ACK to the
    primary, and once a majority acknowledges, the primary broadcasts
    COMMIT-NOTIFY and everyone accepts — 3n messages per consensus instead
    of PBFT's O(n^2), at the price of tolerating only crash faults.

    On the wire it reuses the PBFT message constructors (PRE-PREPARE =
    propose, PREPARE = ack, COMMIT = commit-notify). Composed under RCC
    ([Replica_builder.Make (Cft_instance)]) it yields the "MultiCFT"
    configuration benchmarked in the ablations. *)

include Rcc_replica.Instance_intf.S

val acked_round : t -> round:Rcc_common.Ids.round -> bool
(** Whether this replica acknowledged the round (backup-side log). *)
