lib/cft/cft_instance.ml: Hashtbl List Option Rcc_common Rcc_messages Rcc_replica Rcc_sim
