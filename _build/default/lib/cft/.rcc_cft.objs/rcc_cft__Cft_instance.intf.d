lib/cft/cft_instance.mli: Rcc_common Rcc_replica
