lib/sim/costs.mli: Engine
