lib/sim/engine.ml: Rcc_common
