lib/sim/cpu.ml: Array Engine Printf
