lib/sim/engine.mli:
