lib/sim/net.ml: Array Cpu Engine Printf Rcc_common
