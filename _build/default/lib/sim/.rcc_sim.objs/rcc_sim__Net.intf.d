lib/sim/net.mli: Engine Rcc_common
