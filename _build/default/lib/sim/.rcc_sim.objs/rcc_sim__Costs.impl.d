lib/sim/costs.ml: Engine
