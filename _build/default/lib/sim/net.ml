type 'msg t = {
  engine : Engine.t;
  nics : Cpu.server array;
  handlers : (src:int -> size:int -> 'msg -> unit) array;
  dead : bool array;
  latency : Engine.time;
  jitter : Engine.time;
  ns_per_byte : float;
  rng : Rcc_common.Rng.t;
  mutable drop_rule : (src:int -> dst:int -> 'msg -> bool) option;
  mutable messages : int;
  mutable bytes : int;
}

let no_handler ~src:_ ~size:_ _ = ()

let create engine ~nodes ~latency ~jitter ~gbps ~rng =
  assert (nodes > 0 && gbps > 0.0);
  {
    engine;
    nics = Array.init nodes (fun i -> Cpu.server engine ~name:(Printf.sprintf "nic-%d" i));
    handlers = Array.make nodes no_handler;
    dead = Array.make nodes false;
    latency;
    jitter;
    (* gbps is Gbit/s; 8 bits per byte. *)
    ns_per_byte = 8.0 /. gbps;
    rng;
    drop_rule = None;
    messages = 0;
    bytes = 0;
  }

let engine t = t.engine
let register t node handler = t.handlers.(node) <- handler
let set_dead t node dead = t.dead.(node) <- dead
let is_dead t node = t.dead.(node)
let set_drop_rule t rule = t.drop_rule <- rule
let messages_sent t = t.messages
let bytes_sent t = t.bytes

let loopback_delay = Engine.us 2

let deliver t ~src ~dst ~size msg =
  if not t.dead.(dst) then t.handlers.(dst) ~src ~size msg

let send t ~src ~dst ~size msg =
  if t.dead.(src) || t.dead.(dst) then ()
  else
    let dropped =
      match t.drop_rule with None -> false | Some rule -> rule ~src ~dst msg
    in
    if not dropped then begin
      t.messages <- t.messages + 1;
      t.bytes <- t.bytes + size;
      if src = dst then
        Engine.schedule_after t.engine loopback_delay (fun () ->
            deliver t ~src ~dst ~size msg)
      else begin
        (* Virtual NIC: serialization queues on the sender's egress; one
           event fires at arrival time. *)
        let serialize = int_of_float (float_of_int size *. t.ns_per_byte) in
        let serialized =
          Cpu.reserve t.nics.(src) ~ready:(Engine.now t.engine) ~cost:serialize
        in
        let propagation =
          t.latency + if t.jitter > 0 then Rcc_common.Rng.int t.rng t.jitter else 0
        in
        Engine.schedule_at t.engine (serialized + propagation) (fun () ->
            deliver t ~src ~dst ~size msg)
      end
    end
