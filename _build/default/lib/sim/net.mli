(** Simulated datacenter network.

    Each node owns an egress NIC (a {!Cpu.server} whose job cost is
    transmission time = size / bandwidth); after serialization a message
    propagates for latency + jitter and is handed to the destination's
    registered handler. Per-destination copies of a broadcast each pay
    serialization, so large batches at high fan-out saturate the sender's
    NIC exactly as in the paper's setup.

    Node address space is the caller's: the runtime uses [0, n) for
    replicas and [n, n + client_machines) for client machines. *)

type 'msg t

val create :
  Engine.t ->
  nodes:int ->
  latency:Engine.time ->
  jitter:Engine.time ->
  gbps:float ->
  rng:Rcc_common.Rng.t ->
  'msg t

val engine : 'msg t -> Engine.t

val register : 'msg t -> int -> (src:int -> size:int -> 'msg -> unit) -> unit
(** Install the delivery handler for a node. Replaces any previous one. *)

val send : 'msg t -> src:int -> dst:int -> size:int -> 'msg -> unit
(** Transmit one message. Silently dropped if either endpoint is dead or a
    drop rule matches. Sending to self delivers after a small loopback
    delay without using the NIC. *)

val set_dead : 'msg t -> int -> bool -> unit
(** A dead node neither sends nor receives (crash fault). *)

val is_dead : 'msg t -> int -> bool

val set_drop_rule : 'msg t -> (src:int -> dst:int -> 'msg -> bool) option -> unit
(** Drop rule consulted on every send; [true] means drop. Used for
    partition and in-the-dark experiments. *)

val messages_sent : 'msg t -> int
val bytes_sent : 'msg t -> int
