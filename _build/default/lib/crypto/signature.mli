(** Digital signatures with the shape and cost profile of ED25519.

    SUBSTITUTION (see DESIGN.md): the paper uses ED25519 for client–replica
    authentication. Curve arithmetic is not exercised by any experiment —
    what matters is (a) unforgeability within the simulation, (b) the 64-byte
    signature size, and (c) the large sign/verify CPU cost, which the
    simulator charges separately. We therefore implement signatures as
    HMAC-SHA256 tags under the signer's secret key, with a process-local
    registry mapping public keys to their secrets standing in for the curve
    equations during verification. Only code holding the [secret_key] can
    produce a tag that verifies, so the byzantine-behaviour semantics are
    exactly those of real signatures. *)

type secret_key
type public_key = string (** 32 bytes *)

type signature = string (** 64 bytes, like ED25519 *)

val signature_size : int

val keygen : Rcc_common.Rng.t -> secret_key * public_key
(** Deterministic from the generator state; registers the pair for
    verification. *)

val public_key : secret_key -> public_key

val sign : secret_key -> string -> signature

val verify : public_key -> string -> signature -> bool
(** [verify pk msg sig] holds iff [sig] was produced by [sign sk msg] for
    the [sk] matching [pk]. Unknown public keys never verify. *)
