(** HMAC-SHA256 (RFC 2104), built on {!Sha256}.

    Used as the core of the simulated digital signatures; verified against
    the RFC 4231 test vectors. *)

val mac : key:string -> string -> string
(** 32-byte binary tag. *)

val mac_list : key:string -> string list -> string
(** Tag over the concatenation of the parts. *)

val verify : key:string -> string -> tag:string -> bool
