lib/crypto/keychain.ml: Array Cmac Rcc_common Signature
