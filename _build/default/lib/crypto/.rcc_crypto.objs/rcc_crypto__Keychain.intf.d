lib/crypto/keychain.mli: Cmac Rcc_common Signature
