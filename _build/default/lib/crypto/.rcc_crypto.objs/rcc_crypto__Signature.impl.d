lib/crypto/signature.ml: Hashtbl Hmac Rcc_common Sha256 String
