lib/crypto/hmac.ml: Char Rcc_common Sha256 String
