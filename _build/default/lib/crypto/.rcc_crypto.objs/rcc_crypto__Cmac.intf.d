lib/crypto/cmac.mli:
