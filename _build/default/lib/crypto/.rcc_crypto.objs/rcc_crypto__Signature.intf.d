lib/crypto/signature.mli: Rcc_common
