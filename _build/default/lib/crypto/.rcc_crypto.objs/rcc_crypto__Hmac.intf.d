lib/crypto/hmac.mli:
