lib/crypto/cmac.ml: Aes128 Bytes Char Rcc_common String
