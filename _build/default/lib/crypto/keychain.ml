type t = {
  n : int;
  replica_keys : (Signature.secret_key * Signature.public_key) array;
  client_keys : (Signature.secret_key * Signature.public_key) array;
  mac_keys : Cmac.key array; (* upper-triangular pair index *)
}

(* Index of the unordered pair {i, j}, i <> j, in a triangular array. *)
let pair_index n i j =
  let i, j = if i < j then (i, j) else (j, i) in
  assert (i <> j && j < n);
  (i * n) - (i * (i + 1) / 2) + (j - i - 1)

let create ~seed ~n ~clients =
  let rng = Rcc_common.Rng.create seed in
  let replica_keys = Array.init n (fun _ -> Signature.keygen rng) in
  let client_keys = Array.init clients (fun _ -> Signature.keygen rng) in
  let npairs = n * (n - 1) / 2 in
  let mac_keys =
    Array.init npairs (fun _ ->
        let raw =
          Rcc_common.Bytes_util.u64_string (Rcc_common.Rng.next_int64 rng)
          ^ Rcc_common.Bytes_util.u64_string (Rcc_common.Rng.next_int64 rng)
        in
        Cmac.of_aes_key raw)
  in
  { n; replica_keys; client_keys; mac_keys }

let n t = t.n
let replica_secret t r = fst t.replica_keys.(r)
let replica_public t r = snd t.replica_keys.(r)
let client_secret t c = fst t.client_keys.(c)
let client_public t c = snd t.client_keys.(c)
let mac_key t i j = t.mac_keys.(pair_index t.n i j)
let mac t ~src ~dst msg = Cmac.mac (mac_key t src dst) msg
let mac_verify t ~src ~dst msg ~tag = Cmac.verify (mac_key t src dst) msg ~tag
