(** AES-128 block cipher (FIPS 197), encryption direction only.

    Only encryption is needed: {!Cmac} (the paper's CMAC-AES replica-to-
    replica authenticator) uses the forward permutation exclusively.
    Verified against the FIPS 197 appendix vectors. *)

type key

val expand_key : string -> key
(** [expand_key k] expands a 16-byte key. Raises [Invalid_argument] on any
    other length. *)

val encrypt_block : key -> string -> string
(** [encrypt_block key block] encrypts one 16-byte block. *)
