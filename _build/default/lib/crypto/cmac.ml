type key = { aes : Aes128.key; k1 : string; k2 : string }

(* Doubling in GF(2^128) with the CMAC polynomial. *)
let dbl block =
  let n = String.length block in
  let out = Bytes.create n in
  let carry = ref 0 in
  for i = n - 1 downto 0 do
    let b = Char.code block.[i] in
    Bytes.set out i (Char.chr (((b lsl 1) land 0xff) lor !carry));
    carry := b lsr 7
  done;
  if !carry = 1 then
    Bytes.set out (n - 1) (Char.chr (Char.code (Bytes.get out (n - 1)) lxor 0x87));
  Bytes.unsafe_to_string out

let of_aes_key k =
  let aes = Aes128.expand_key k in
  let l = Aes128.encrypt_block aes (String.make 16 '\x00') in
  let k1 = dbl l in
  let k2 = dbl k1 in
  { aes; k1; k2 }

let mac key msg =
  let len = String.length msg in
  let nblocks = if len = 0 then 1 else (len + 15) / 16 in
  let complete = len > 0 && len mod 16 = 0 in
  let last =
    if complete then
      Rcc_common.Bytes_util.xor (String.sub msg ((nblocks - 1) * 16) 16) key.k1
    else begin
      let rem = len - ((nblocks - 1) * 16) in
      let padded = Bytes.make 16 '\x00' in
      Bytes.blit_string msg ((nblocks - 1) * 16) padded 0 rem;
      Bytes.set padded rem '\x80';
      Rcc_common.Bytes_util.xor (Bytes.unsafe_to_string padded) key.k2
    end
  in
  let x = ref (String.make 16 '\x00') in
  for i = 0 to nblocks - 2 do
    let block = String.sub msg (16 * i) 16 in
    x := Aes128.encrypt_block key.aes (Rcc_common.Bytes_util.xor !x block)
  done;
  Aes128.encrypt_block key.aes (Rcc_common.Bytes_util.xor !x last)

let verify key msg ~tag =
  let expected = mac key msg in
  String.length expected = String.length tag
  &&
  let acc = ref 0 in
  String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code tag.[i])) expected;
  !acc = 0
