(** Key material for a replicated service (§6 "Cryptographic Constructs").

    One keychain holds, for a service with [n] replicas and [clients]
    clients: an ED25519-style signing pair per replica and per client, and a
    pairwise CMAC-AES key per replica pair, all derived deterministically
    from a seed. *)

type t

val create : seed:int -> n:int -> clients:int -> t

val n : t -> int

val replica_secret : t -> Rcc_common.Ids.replica_id -> Signature.secret_key
val replica_public : t -> Rcc_common.Ids.replica_id -> Signature.public_key
val client_secret : t -> Rcc_common.Ids.client_id -> Signature.secret_key
val client_public : t -> Rcc_common.Ids.client_id -> Signature.public_key

val mac_key : t -> Rcc_common.Ids.replica_id -> Rcc_common.Ids.replica_id -> Cmac.key
(** [mac_key t i j] is the shared CMAC key between replicas [i] and [j];
    symmetric in its arguments. *)

val mac : t -> src:Rcc_common.Ids.replica_id -> dst:Rcc_common.Ids.replica_id -> string -> string
val mac_verify :
  t -> src:Rcc_common.Ids.replica_id -> dst:Rcc_common.Ids.replica_id -> string -> tag:string -> bool
