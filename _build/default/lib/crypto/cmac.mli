(** CMAC-AES128 (NIST SP 800-38B) — the paper's replica-to-replica message
    authenticator. Verified against the SP 800-38B example vectors. *)

type key

val of_aes_key : string -> key
(** [of_aes_key k] derives the CMAC subkeys from a 16-byte AES key. *)

val mac : key -> string -> string
(** 16-byte binary tag over an arbitrary-length message. *)

val verify : key -> string -> tag:string -> bool
