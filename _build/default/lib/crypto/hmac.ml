let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\x00'

let pads key =
  let k = normalize_key key in
  let ipad = Rcc_common.Bytes_util.xor k (String.make block_size '\x36') in
  let opad = Rcc_common.Bytes_util.xor k (String.make block_size '\x5c') in
  (ipad, opad)

let mac_list ~key parts =
  let ipad, opad = pads key in
  let inner = Sha256.digest_list (ipad :: parts) in
  Sha256.digest_list [ opad; inner ]

let mac ~key msg = mac_list ~key [ msg ]

(* Constant-time-style comparison; timing channels are irrelevant in the
   simulator but the discipline costs nothing. *)
let verify ~key msg ~tag =
  let expected = mac ~key msg in
  String.length expected = String.length tag
  &&
  let acc = ref 0 in
  String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code tag.[i])) expected;
  !acc = 0
