(** HotStuff (Yin et al., PODC '19), in the paper's optimistic
    configuration (§7.1).

    Four phases (PREPARE, PRE-COMMIT, COMMIT, DECIDE), each a
    leader-broadcast / replica-vote exchange. Every message carries a
    digital signature — the CPU asymmetry versus the MAC-based protocols
    that bounds HotStuff's throughput in the evaluation. Following the
    paper's implementation: no threshold signatures, quorum certificates
    cost one verification, no proof summaries, and all replicas act as
    leaders in parallel (the leader of consensus [s] is [s mod n];
    consensuses pipeline freely and execute in sequence order).

    Pacemaker: a stalled frontier round (dead or silent leader) is skipped
    by a quorum of SKIP votes after a timeout, and the offending leader is
    blacklisted so its later rounds skip immediately.

    Implements the common instance interface with [z = 1], [instance = 0]
    and round = sequence number, so the runtime drives it like any other
    protocol. *)

include Rcc_replica.Instance_intf.S

val decided_upto : t -> Rcc_common.Ids.round
val blacklisted : t -> Rcc_common.Ids.replica_id -> bool
