lib/hotstuff/hotstuff_replica.mli: Rcc_common Rcc_replica
