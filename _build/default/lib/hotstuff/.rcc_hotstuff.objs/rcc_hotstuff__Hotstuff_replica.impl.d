lib/hotstuff/hotstuff_replica.ml: Array Hashtbl List Option Rcc_common Rcc_messages Rcc_replica Rcc_sim
