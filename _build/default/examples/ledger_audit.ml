(* Auditing the blockchain after a run: validate the hash chain, check
   that all replicas agree block-by-block, inspect the per-round proof
   structure, and archive blocks through the wire codec (what a cold
   -storage / audit pipeline would persist).

     dune exec examples/ledger_audit.exe
*)

module Config = Rcc_runtime.Config
module Cluster = Rcc_runtime.Cluster
module Ledger = Rcc_storage.Ledger
module Block = Rcc_storage.Block
module Txn_table = Rcc_storage.Txn_table
module Msg = Rcc_messages.Msg
module Codec = Rcc_messages.Codec

let () =
  let n = 4 in
  let cfg =
    Config.make ~protocol:Config.MultiP ~n ~batch_size:20 ~clients:40
      ~records:10_000
      ~duration:(Rcc_sim.Engine.of_seconds 0.5)
      ~warmup:(Rcc_sim.Engine.of_seconds 0.1)
      ()
  in
  let cluster = Cluster.build cfg in
  let _report = Cluster.run cluster in

  Printf.printf "== ledger audit (MultiP, n=%d) ==\n\n" n;

  (* 1. Hash-chain validation on every replica. *)
  for r = 0 to n - 1 do
    let ledger = Cluster.ledger cluster r in
    let verdict =
      match Ledger.validate ledger with Ok () -> "valid" | Error e -> e
    in
    Printf.printf "replica %d: %5d blocks, chain %s\n" r (Ledger.length ledger)
      verdict
  done;

  (* 2. Cross-replica agreement over the common prefix. *)
  let common =
    let lengths = List.init n (fun r -> Ledger.length (Cluster.ledger cluster r)) in
    List.fold_left min max_int lengths
  in
  let divergent = ref 0 in
  for round = 0 to common - 1 do
    let h r = Block.hash (Option.get (Ledger.get (Cluster.ledger cluster r) round)) in
    for r = 1 to n - 1 do
      if not (String.equal (h 0) (h r)) then incr divergent
    done
  done;
  Printf.printf "\ncommon prefix: %d rounds; divergent blocks: %d\n" common !divergent;

  (* 3. Inspect one block's proof structure. *)
  let sample = common / 2 in
  (match Ledger.get (Cluster.ledger cluster 0) sample with
  | Some block ->
      Printf.printf "\nblock %d: %d instance proofs, primaries [%s], clients [%s]\n"
        sample
        (List.length block.Block.proofs)
        (String.concat ";" (List.map string_of_int block.Block.primaries))
        (String.concat ";" (List.map string_of_int block.Block.clients))
  | None -> ());

  (* 4. The txn side table indexed by round (§6: payloads live outside the
     chain). *)
  let table = Cluster.txn_table cluster 0 in
  Printf.printf "\ntxn table: %d rounds, %d transactions recorded\n"
    (Txn_table.rounds table) (Txn_table.total_txns table);
  List.iter
    (fun e ->
      Printf.printf "  round %d instance %d client %d: %d txns\n"
        e.Txn_table.round e.Txn_table.instance e.Txn_table.client
        e.Txn_table.txn_count)
    (Txn_table.find table ~round:sample);

  (* 5. Archive a round through the wire codec, as an audit pipeline
     would, and prove it round-trips. *)
  let archived =
    Codec.encode
      (Msg.Contract_request { round = sample; instance = 0 })
  in
  (match Codec.decode archived with
  | Ok (Msg.Contract_request { round; _ }) ->
      Printf.printf "\narchived round marker round-trips: round=%d (%d bytes)\n"
        round (String.length archived)
  | Ok _ | Error _ -> Printf.printf "\narchive round-trip FAILED\n");

  (* 6. Persist the whole chain to disk and reload it cold, re-validating
     every hash link on the way in. *)
  let path = Filename.temp_file "rcc-audit" ".ledger" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let ledger0 = Cluster.ledger cluster 0 in
      Rcc_storage.Ledger_io.save_file ledger0 ~primaries:[ 0; 1 ] ~path;
      let bytes =
        String.length (Rcc_storage.Ledger_io.save ledger0 ~primaries:[ 0; 1 ])
      in
      match Rcc_storage.Ledger_io.load_file ~path with
      | Ok reloaded ->
          Printf.printf
            "\npersisted %d blocks to disk (%d bytes), reloaded and re-validated: %b\n"
            (Ledger.length reloaded) bytes
            (String.equal (Ledger.head_hash reloaded) (Ledger.head_hash ledger0))
      | Error e -> Printf.printf "\nreload FAILED: %s\n" e);
  Printf.printf "\naudit complete.\n"
