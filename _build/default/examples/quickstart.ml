(* Quickstart: stand up a 4-replica RCC (MultiP) deployment, push YCSB
   traffic through it for half a simulated second, and inspect the results
   — throughput, the blockchain ledger, and the replicated key-value
   state.

     dune exec examples/quickstart.exe
*)

module Config = Rcc_runtime.Config
module Cluster = Rcc_runtime.Cluster
module Report = Rcc_runtime.Report
module Ledger = Rcc_storage.Ledger

let () =
  (* n = 4 replicas tolerate f = 1 byzantine fault and run z = f+1 = 2
     concurrent PBFT instances under the RCC paradigm. *)
  let cfg =
    Config.make ~protocol:Config.MultiP ~n:4 ~batch_size:50 ~clients:40
      ~records:10_000
      ~duration:(Rcc_sim.Engine.of_seconds 0.5)
      ~warmup:(Rcc_sim.Engine.of_seconds 0.1)
      ()
  in
  let cluster = Cluster.build cfg in
  let report = Cluster.run cluster in

  Printf.printf "== RCC quickstart: MultiP on %d replicas ==\n\n" cfg.Config.n;
  Printf.printf "throughput:      %.0f txn/s\n" report.Report.throughput;
  Printf.printf "avg latency:     %.2f ms\n" (report.Report.avg_latency *. 1e3);
  Printf.printf "rounds executed: %d\n" report.Report.ledger_rounds;
  Printf.printf "ledger valid:    %b\n\n" report.Report.ledger_valid;

  (* Every replica holds the same blockchain; show the head of replica 0's. *)
  let ledger = Cluster.ledger cluster 0 in
  Printf.printf "first three blocks of replica 0's ledger:\n";
  for round = 0 to min 2 (Ledger.length ledger - 1) do
    match Ledger.get ledger round with
    | Some block -> Format.printf "  %a@." Rcc_storage.Block.pp block
    | None -> ()
  done;

  (* Replicas may be a round or two apart at the instant the clock stops;
     compare the chain at the deepest round they all share. *)
  let common =
    let len r = Ledger.length (Cluster.ledger cluster r) in
    min (min (len 0) (len 1)) (min (len 2) (len 3)) - 1
  in
  let hash r =
    match Ledger.get (Cluster.ledger cluster r) common with
    | Some block -> Rcc_common.Bytes_util.hex (Rcc_storage.Block.hash block)
    | None -> "<none>"
  in
  Printf.printf "\nblock %d hash at replica 0: %s...\n" common
    (String.sub (hash 0) 0 16);
  Printf.printf "block %d hash at replica 3: %s...\n" common
    (String.sub (hash 3) 0 16);
  Printf.printf "agreement: %b\n" (String.equal (hash 0) (hash 3));
  Printf.printf "\ndone.\n"
