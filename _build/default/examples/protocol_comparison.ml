(* Compare all five protocols on the same deployment — the shape of the
   paper's Figure 9 at one point: the RCC variants lead, PBFT pays its
   quadratic phases, HotStuff pays its signatures.

     dune exec examples/protocol_comparison.exe
*)

module Config = Rcc_runtime.Config
module Cluster = Rcc_runtime.Cluster
module Report = Rcc_runtime.Report

let () =
  let n = 8 in
  Printf.printf "== protocol comparison: n=%d, batch=50, YCSB ==\n\n" n;
  Printf.printf "%-10s %14s %12s %10s\n" "protocol" "tput(txn/s)" "avg lat" "rounds";
  List.iter
    (fun protocol ->
      let cfg =
        Config.make ~protocol ~n ~batch_size:50 ~clients:64 ~records:10_000
          ~duration:(Rcc_sim.Engine.of_seconds 0.5)
          ~warmup:(Rcc_sim.Engine.of_seconds 0.1)
          ()
      in
      let report = Cluster.run_config cfg in
      Printf.printf "%-10s %14.0f %10.2fms %10d\n"
        (Config.protocol_name protocol)
        report.Report.throughput
        (report.Report.avg_latency *. 1e3)
        report.Report.ledger_rounds)
    Config.all_protocols
