(* §3.6 client denial-of-service: a malicious primary silently drops the
   requests of its assigned clients. The starved clients time out, resend,
   and finally defect to another instance with an INSTANCE-CHANGE — after
   which their requests commit normally.

     dune exec examples/client_dos.exe
*)

module Config = Rcc_runtime.Config
module Cluster = Rcc_runtime.Cluster
module Report = Rcc_runtime.Report
module Client_pool = Rcc_replica.Client_pool
module Engine = Rcc_sim.Engine

let () =
  let cfg =
    Config.make ~protocol:Config.MultiP ~n:4 ~batch_size:10 ~clients:40
      ~records:5_000
      ~duration:(Engine.of_seconds 1.5)
      ~warmup:(Engine.of_seconds 0.1)
      ~client_timeout:(Engine.ms 100)
      ~instance_change_after:1
      ~fault:(Config.Client_dos { instance = 0 })
      ()
  in
  let cluster = Cluster.build cfg in
  let report = Cluster.run cluster in
  let pool = Cluster.client_pool cluster in

  Printf.printf "== client denial-of-service and instance-change (n=4, z=2) ==\n\n";
  Printf.printf "instance 0's primary drops all client requests.\n";
  Printf.printf "clients of instance 0 defect after one resend (100 ms timeout).\n\n";
  Printf.printf "throughput:        %.0f txn/s\n" report.Report.throughput;
  Printf.printf "instance changes:  %d\n" (Client_pool.instance_changes pool);
  Printf.printf "client 0 now maps to instance %d (home was 0)\n"
    (Client_pool.client_instance pool 0);
  Printf.printf "client 2 now maps to instance %d (home was 0)\n"
    (Client_pool.client_instance pool 2);
  Printf.printf "client 1 still maps to instance %d (home was 1, unaffected)\n"
    (Client_pool.client_instance pool 1)
