(* The paper's Figure 12 scenario in miniature: a malicious primary keeps
   one replica in the dark for a single round while the remaining
   byzantine replicas falsely accuse non-faulty primaries. RCC detects the
   inconsistent accusations as a collusion attack, replicas exchange
   recovery contracts, the victim catches up — and client throughput never
   dips, because the f+1 concurrent instances keep ordering.

     dune exec examples/collusion_attack.exe
*)

module Config = Rcc_runtime.Config
module Cluster = Rcc_runtime.Cluster
module Report = Rcc_runtime.Report
module Engine = Rcc_sim.Engine

let () =
  let n = 7 in
  let victim = 4 in
  let cfg =
    Config.make ~protocol:Config.MultiP ~n ~batch_size:10 ~clients:42
      ~records:5_000
      ~duration:(Engine.of_seconds 2.0)
      ~warmup:(Engine.of_seconds 0.2)
      ~replica_timeout:(Engine.ms 300)
      ~collusion_wait:(Engine.ms 150)
      ~fault:(Config.Collusion { victim; at_round = 40 })
      ()
  in
  let cluster = Cluster.build cfg in
  let report = Cluster.run cluster in

  Printf.printf "== collusion attack on MultiP (n=%d, f=%d, z=%d) ==\n\n" n
    cfg.Config.f cfg.Config.z;
  Printf.printf "victim replica %d was skipped by instance 0's primary at round 40\n"
    victim;
  Printf.printf "while %d byzantine replicas blamed non-faulty primaries.\n\n"
    (cfg.Config.f - 1);

  Printf.printf "client throughput over time (should stay flat):\n";
  Array.iter
    (fun (t, rate) ->
      if Float.rem t 0.2 < 0.05 then Printf.printf "  t=%.1fs  %8.0f txn/s\n" t rate)
    report.Report.timeline;

  Printf.printf "\nexecution rate at the victim (stall + catch-up burst):\n";
  Array.iter
    (fun (t, rate) ->
      if Float.rem t 0.2 < 0.05 then Printf.printf "  t=%.1fs  %8.0f txn/s\n" t rate)
    report.Report.exec_timeline;

  Printf.printf "\ncollusion detections: %d\n" report.Report.collusions_detected;
  Printf.printf "recovery contract bytes: %d\n" report.Report.contract_bytes;
  Printf.printf "primaries replaced (false alarm avoided if 0): %d\n"
    report.Report.replacements;
  Printf.printf "victim ledger rounds: %d (leader: %d)\n"
    (Rcc_storage.Ledger.length (Cluster.ledger cluster victim))
    (Rcc_storage.Ledger.length (Cluster.ledger cluster 0))
