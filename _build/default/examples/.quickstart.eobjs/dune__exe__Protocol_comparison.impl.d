examples/protocol_comparison.ml: List Printf Rcc_runtime Rcc_sim
