examples/ledger_audit.ml: Filename Fun List Option Printf Rcc_messages Rcc_runtime Rcc_sim Rcc_storage String Sys
