examples/quickstart.mli:
