examples/ledger_audit.mli:
