examples/collusion_attack.ml: Array Float Printf Rcc_runtime Rcc_sim Rcc_storage
