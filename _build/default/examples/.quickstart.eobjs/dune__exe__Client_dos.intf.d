examples/client_dos.mli:
