examples/quickstart.ml: Format Printf Rcc_common Rcc_runtime Rcc_sim Rcc_storage String
