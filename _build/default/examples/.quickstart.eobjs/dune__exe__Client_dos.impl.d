examples/client_dos.ml: Printf Rcc_replica Rcc_runtime Rcc_sim
