(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md's experiment index).

     dune exec bench/main.exe                 # everything, full profile
     dune exec bench/main.exe -- --quick      # smaller, faster sweep
     dune exec bench/main.exe -- --only fig9  # one experiment
*)

let sections : (string * (Rcc_runtime.Experiment.profile -> unit)) list =
  [
    ("sizes", Sizes.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("ablation", Ablation.run);
    ("exec", Exec_sweep.run);
    ("micro", Micro.run);
  ]

let () =
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 16 * 1024 * 1024; space_overhead = 200 };
  let quick = ref false in
  let only = ref None in
  let trace = ref None in
  let trace_ring = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--only" :: name :: rest ->
        only := Some name;
        parse rest
    | "--trace" :: path :: rest ->
        trace := Some path;
        parse rest
    | "--trace-ring" :: n :: rest ->
        trace_ring := Some (int_of_string n);
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %S\n\
           usage: main.exe [--quick] [--only SECTION] [--trace FILE] \
           [--trace-ring N]\n\
           sections: %s\n"
          arg
          (String.concat " " (List.map fst sections));
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Trace every run (the file is overwritten per run, so a sweep leaves
     the last configuration's trace — use --only for a single run). *)
  Option.iter
    (fun path -> Rcc_runtime.Experiment.trace_spec := Some (path, !trace_ring))
    !trace;
  let profile = if !quick then `Quick else `Full in
  Printf.printf "RCC / MultiBFT benchmark harness (%s profile)\n"
    (if !quick then "quick" else "full");
  let selected =
    match !only with
    | None -> sections
    | Some name -> (
        match List.assoc_opt name sections with
        | Some f -> [ (name, f) ]
        | None ->
            Printf.eprintf "unknown section %S; sections: %s\n" name
              (String.concat " " (List.map fst sections));
            exit 2)
  in
  List.iter (fun (_, f) -> f profile) selected
