(* Execute-thread sweep: the conflict-aware parallel scheduler vs the
   serial execute-thread ceiling (§6's single-execute-thread bottleneck).

   MultiP under a moderately-skewed YCSB workload (theta 0.3, 2M records)
   with enough closed-loop clients that the offered load exceeds what one
   execute thread can retire. Serial saturates around the paper's ~340K
   txn/s ceiling; the parallel scheduler breaks it and keeps rising with
   the pool size. A high-contention row (theta 0.9, 500K records — the
   default workload) is included as the honest ablation: when nearly
   every batch touches the hot keys the dependency groups collapse into
   one chain and parallel execution cannot beat serial.

   Writes one row per configuration to BENCH_exec_sweep.json (overwritten
   per run; CI uploads it as a non-gating artifact). *)

module Config = Rcc_runtime.Config
module Report = Rcc_runtime.Report
module Experiment = Rcc_runtime.Experiment

type row = {
  r_label : string;
  r_mode : Config.exec_mode;
  r_threads : int;  (* pool size; 1 in serial mode *)
  r_theta : float;
  r_report : Report.t;
}

let config profile ~exec_mode ~exec_threads ~theta ~records =
  Config.make ~protocol:Config.MultiP ~n:16 ~batch_size:100 ~clients:480
    ~duration:(Experiment.duration profile)
    ~warmup:(Experiment.warmup profile)
    ~theta ~records ~seed:42 ~exec_mode ~exec_threads ~exec_window:8 ()

let run_row profile ~label ~exec_mode ~exec_threads ~theta ~records =
  let cfg = config profile ~exec_mode ~exec_threads ~theta ~records in
  let report = Experiment.run_one ~label cfg in
  {
    r_label = label;
    r_mode = exec_mode;
    r_threads = exec_threads;
    r_theta = theta;
    r_report = report;
  }

let json_of_rows rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i r ->
      let rep = r.r_report in
      Printf.bprintf b
        "  { \"label\": %S, \"exec_mode\": %S, \"exec_threads\": %d,\n\
        \    \"theta\": %.2f, \"throughput_txn_s\": %.0f,\n\
        \    \"avg_latency_ms\": %.2f, \"p99_latency_ms\": %.2f,\n\
        \    \"exec_utilization\": %.3f, \"exec_pool_utilization\": %.3f,\n\
        \    \"ledger_rounds\": %d, \"ledger_valid\": %b }%s\n"
        r.r_label
        (Config.exec_mode_name r.r_mode)
        r.r_threads r.r_theta rep.Report.throughput
        (rep.Report.avg_latency *. 1e3)
        (rep.Report.p99_latency *. 1e3)
        rep.Report.exec_utilization rep.Report.exec_pool_utilization
        rep.Report.ledger_rounds rep.Report.ledger_valid
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "]\n";
  Buffer.contents b

let out_path = "BENCH_exec_sweep.json"

let run profile =
  let threads =
    match profile with `Full -> [ 1; 2; 4; 8 ] | `Quick -> [ 2; 4 ]
  in
  let low_contention = (0.3, 2_000_000) in
  let theta, records = low_contention in
  let serial =
    run_row profile ~label:"serial" ~exec_mode:Config.Exec_serial
      ~exec_threads:1 ~theta ~records
  in
  let parallel =
    List.map
      (fun t ->
        run_row profile
          ~label:(Printf.sprintf "parallel t=%d" t)
          ~exec_mode:Config.Exec_parallel ~exec_threads:t ~theta ~records)
      threads
  in
  (* Honest ablation: the default hot-key workload, where conflict
     chaining denies the scheduler any parallelism. *)
  let contended =
    [
      run_row profile ~label:"serial theta=0.9" ~exec_mode:Config.Exec_serial
        ~exec_threads:1 ~theta:0.9 ~records:500_000;
      run_row profile ~label:"parallel t=4 theta=0.9"
        ~exec_mode:Config.Exec_parallel ~exec_threads:4 ~theta:0.9
        ~records:500_000;
    ]
  in
  let rows = (serial :: parallel) @ contended in
  Printf.printf
    "\nExec sweep: MultiP n=16 batch=100 clients=480 (theta %.1f, %dK \
     records)\n"
    theta (snd low_contention / 1000);
  Printf.printf "  %-24s %10s %10s %8s %8s\n" "config" "ktxn/s" "p99 ms"
    "exec%" "pool%";
  List.iter
    (fun r ->
      let rep = r.r_report in
      Printf.printf "  %-24s %10.1f %10.2f %8.0f %8.0f\n" r.r_label
        (rep.Report.throughput /. 1e3)
        (rep.Report.p99_latency *. 1e3)
        (rep.Report.exec_utilization *. 100.)
        (rep.Report.exec_pool_utilization *. 100.))
    rows;
  let oc = open_out_bin out_path in
  output_string oc (json_of_rows rows);
  close_out oc;
  Printf.printf "  wrote %s\n%!" out_path
