(* Substrate microbenchmarks (Bechamel): the crypto primitives whose
   relative costs drive the protocol cost model, the Zipfian generator,
   and the simulation engine's event loop. *)

open Bechamel
open Toolkit

let payload = String.init 5400 (fun i -> Char.chr (i land 0xff))
let small = String.init 250 (fun i -> Char.chr ((i * 7) land 0xff))

let cmac_key = Rcc_crypto.Cmac.of_aes_key (String.init 16 Char.chr)

let signing_key, public_key =
  Rcc_crypto.Signature.keygen (Rcc_common.Rng.create 99)

let signature = Rcc_crypto.Signature.sign signing_key small

let zipf = Rcc_workload.Zipf.create ~n:500_000 ~theta:0.9
let zipf_rng = Rcc_common.Rng.create 5

let engine_events () =
  let engine = Rcc_sim.Engine.create () in
  let rec tick i =
    if i < 1000 then
      Rcc_sim.Engine.schedule_after engine 10 (fun () -> tick (i + 1))
  in
  tick 0;
  Rcc_sim.Engine.run engine ~until:max_int

(* One op = a 15-destination broadcast, drained to a bounded horizon so
   [now] never parks at the end of time. The rules are no-ops: the 0-rule
   case exercises the compiled fast path, the 3-rule case the rule scan. *)
let net_broadcast ~rules =
  let engine = Rcc_sim.Engine.create () in
  let rng = Rcc_common.Rng.create 7 in
  let net =
    Rcc_sim.Net.create engine ~nodes:16 ~latency:(Rcc_sim.Engine.us 50)
      ~jitter:0 ~gbps:10.0 ~rng ()
  in
  for i = 0 to 15 do
    Rcc_sim.Net.register net i (fun ~src:_ ~size:_ _ -> ())
  done;
  if rules then begin
    ignore (Rcc_sim.Net.add_drop_rule net (fun ~src:_ ~dst:_ _ -> false));
    ignore (Rcc_sim.Net.add_delay_rule net (fun ~src:_ ~dst:_ -> 0));
    ignore (Rcc_sim.Net.add_dup_rule net (fun ~src:_ ~dst:_ _ -> 0))
  end;
  fun () ->
    for dst = 1 to 15 do
      Rcc_sim.Net.send net ~src:0 ~dst ~size:5400 ()
    done;
    Rcc_sim.Engine.run engine
      ~until:(Rcc_sim.Engine.now engine + Rcc_sim.Engine.ms 10)

let codec_msg =
  let secret, _ = Rcc_crypto.Signature.keygen (Rcc_common.Rng.create 3) in
  let txns =
    Array.init 100 (fun i -> Rcc_workload.Txn.{ key = i; op = Write (i * 31) })
  in
  let batch = Rcc_messages.Batch.create ~id:1 ~client:0 ~txns ~secret in
  Rcc_messages.Msg.Pre_prepare { instance = 0; view = 0; seq = 9; batch }

let codec_roundtrip () =
  let wire = Rcc_messages.Codec.encode codec_msg in
  match Rcc_messages.Codec.decode wire with
  | Ok _ -> ()
  | Error e -> failwith e

let tests =
  [
    Test.make ~name:"sha256-5400B"
      (Staged.stage (fun () -> ignore (Rcc_crypto.Sha256.digest payload)));
    Test.make ~name:"sha256-250B"
      (Staged.stage (fun () -> ignore (Rcc_crypto.Sha256.digest small)));
    Test.make ~name:"cmac-aes-250B"
      (Staged.stage (fun () -> ignore (Rcc_crypto.Cmac.mac cmac_key small)));
    Test.make ~name:"hmac-sha256-250B"
      (Staged.stage (fun () -> ignore (Rcc_crypto.Hmac.mac ~key:"k" small)));
    Test.make ~name:"sign-250B"
      (Staged.stage (fun () ->
           ignore (Rcc_crypto.Signature.sign signing_key small)));
    Test.make ~name:"verify-250B"
      (Staged.stage (fun () ->
           ignore (Rcc_crypto.Signature.verify public_key small signature)));
    Test.make ~name:"zipf-draw"
      (Staged.stage (fun () -> ignore (Rcc_workload.Zipf.next zipf zipf_rng)));
    Test.make ~name:"engine-1000-events"
      (Staged.stage engine_events);
    Test.make ~name:"net-broadcast-0rules"
      (Staged.stage (net_broadcast ~rules:false));
    Test.make ~name:"net-broadcast-3rules"
      (Staged.stage (net_broadcast ~rules:true));
    Test.make ~name:"codec-roundtrip-100txn"
      (Staged.stage codec_roundtrip);
  ]

let run _profile =
  Printf.printf "\n## Substrate microbenchmarks (Bechamel)\n\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-24s %12.0f ns/op\n" name est
          | Some _ | None -> Printf.printf "%-24s %12s\n" name "n/a")
        analyzed)
    tests
