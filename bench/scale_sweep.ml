(* Paper-scale load sweep (§VII testbed shape: up to 46 replicas, up to
   1M clients): clients ∈ {240, 10K, 100K, 1M} × n ∈ {4, 16, 31, 46, 64}
   for multip and multiz, writing BENCH_scale.json. This is the
   experiment that locates the coordinator-cost knee the paper claims
   RCC flattens: as n grows, events and contract bytes per committed
   transaction rise, and the knee is where throughput stops tracking the
   offered load.

     dune exec bench/scale_sweep.exe                      # full grid
     dune exec bench/scale_sweep.exe -- --smoke           # CI: 10K × n=16
     dune exec bench/scale_sweep.exe -- --out other.json

   Load model per cell:
   - 240 clients run closed-loop (one outstanding request each), exactly
     the historical sweep methodology.
   - 10K/100K/1M clients run open-loop at a fixed offered load above the
     n=16 saturation point, uniform arrivals, with a bounded in-flight
     cap. The pool footprint scales with the client count while message
     memory stays bounded by the cap, so the 1M-client cells measure the
     flat-array pool, not a million in-flight batches.

   Besides the per-cell run metrics, the sweep measures the pool's
   resident footprint directly: a standalone pool per population size,
   major-collected before and after construction, reported as live
   words per client (the ≤ ~60 words/client acceptance bound). *)

module Engine = Rcc_sim.Engine
module Net = Rcc_sim.Net
module Config = Rcc_runtime.Config
module Report = Rcc_runtime.Report
module Client_pool = Rcc_replica.Client_pool

(* Offered load for the open-loop cells: comfortably above the ~380K
   txn/s the n=16 smoke sustains, so throughput is capacity-bound and
   the knee shows as the gap between offered and committed. *)
let open_loop_rate = 500_000.0
let max_in_flight = 10_000

type cell = {
  c_protocol : Config.protocol;
  c_n : int;
  c_clients : int;
}

type measured = {
  m_cell : cell;
  m_mode : string;
  m_report : Report.t;
  m_minor_words : float;
  m_live_words : int;  (* major-collected live heap after the run *)
}

let protocols = [ Config.MultiP; Config.MultiZ ]
let ns = [ 4; 16; 31; 46; 64 ]
let populations = [ 240; 10_000; 100_000; 1_000_000 ]

let config_of_cell ~duration ~warmup { c_protocol; c_n; c_clients } =
  if c_clients <= 240 then
    Config.make ~protocol:c_protocol ~n:c_n ~batch_size:100
      ~clients:c_clients ~duration ~warmup ~seed:42 ()
  else
    Config.make ~protocol:c_protocol ~n:c_n ~batch_size:100
      ~clients:c_clients ~duration ~warmup ~seed:42
      ~arrival_rate:open_loop_rate ~arrival_process:Config.Uniform
      ~max_in_flight ()

let run_cell ~duration ~warmup cell =
  let cfg = config_of_cell ~duration ~warmup cell in
  Gc.full_major ();
  let words0 = Gc.minor_words () in
  let cluster = Rcc_runtime.Cluster.build cfg in
  let report = Rcc_runtime.Cluster.run cluster in
  let minor = Gc.minor_words () -. words0 in
  (* Live words while the cluster is still rooted: replica state, slot
     logs, and the client pool — the resident cost of the cell. *)
  Gc.full_major ();
  let live = (Gc.stat ()).Gc.live_words in
  ignore (Sys.opaque_identity cluster);
  {
    m_cell = cell;
    m_mode = (if Config.open_loop cfg then "open" else "closed");
    m_report = report;
    m_minor_words = minor;
    m_live_words = live;
  }

(* --- pool footprint ------------------------------------------------------ *)

(* Live words one pool pins per client, measured on a standalone pool
   (no replicas, no cluster) so the number is pool-attributable. *)
let pool_words_per_client clients =
  let n = 4 in
  let machines = max 1 (min 1024 ((clients + 19) / 20)) in
  let engine = Engine.create () in
  let net =
    Net.create engine ~nodes:(n + machines) ~latency:(Engine.us 10) ~jitter:0
      ~gbps:10.0 ~rng:(Rcc_common.Rng.create 3) ()
  in
  for replica = 0 to n - 1 do
    Net.register net replica (fun ~src:_ ~size:_ _ -> ())
  done;
  let keychain = Rcc_crypto.Keychain.create ~seed:8 ~n ~clients in
  let metrics = Rcc_replica.Metrics.create ~n ~warmup:0 () in
  Gc.full_major ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let pool =
    Client_pool.create ~engine ~net ~keychain ~metrics
      ~primary_of_instance:(fun i -> i mod n)
      {
        Client_pool.n;
        f = (n - 1) / 3;
        z = 2;
        clients;
        machines;
        batch_size = 100;
        quorum = Client_pool.Majority_fplus1;
        request_timeout = Engine.of_seconds 15.0;
        instance_change_after = 2;
        first_node = n;
        records = 500_000;
        write_ratio = 0.9;
        theta = 0.9;
        seed = 42;
        arrival =
          Client_pool.Open_loop
            {
              rate = open_loop_rate;
              process = Client_pool.Uniform;
              max_in_flight;
            };
      }
  in
  Gc.full_major ();
  let live1 = (Gc.stat ()).Gc.live_words in
  ignore (Client_pool.completed_batches pool);
  float_of_int (live1 - live0) /. float_of_int clients

(* --- JSON ---------------------------------------------------------------- *)

let json_of_measured m =
  let r = m.m_report in
  let b = Buffer.create 512 in
  Printf.bprintf b
    "    { \"protocol\": %S, \"n\": %d, \"clients\": %d, \"mode\": %S,\n"
    r.Report.protocol m.m_cell.c_n m.m_cell.c_clients m.m_mode;
  Printf.bprintf b
    "      \"sim_events\": %d, \"wall_seconds\": %.3f, \"events_per_sec\": \
     %.0f, \"words_per_event\": %.2f,\n"
    r.Report.sim_events r.Report.wall_seconds
    (float_of_int r.Report.sim_events /. r.Report.wall_seconds)
    (m.m_minor_words /. float_of_int (max 1 r.Report.sim_events));
  Printf.bprintf b
    "      \"throughput_txn_s\": %.0f, \"committed_txns\": %d, \
     \"avg_latency_s\": %.6f, \"p50_latency_s\": %.6f, \"p99_latency_s\": \
     %.6f,\n"
    r.Report.throughput r.Report.committed_txns r.Report.avg_latency
    r.Report.p50_latency r.Report.p99_latency;
  (match r.Report.open_loop with
  | Some o ->
      Printf.bprintf b
        "      \"offered_txn_s\": %.0f, \"offered_txns\": %d, \
         \"injected_txns\": %d, \"dropped_txns\": %d, \"queue_p99\": %.0f,\n"
        o.Report.offered_rate o.Report.offered_txns o.Report.injected_txns
        o.Report.dropped_txns o.Report.queue_p99
  | None -> ());
  Printf.bprintf b "      \"live_words\": %d }" m.m_live_words;
  Buffer.contents b

let write_json ~path ~footprints ~cells =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"pool_footprint\": [\n";
  List.iteri
    (fun i (clients, wpc) ->
      Printf.bprintf b "    { \"clients\": %d, \"words_per_client\": %.2f }%s\n"
        clients wpc
        (if i = List.length footprints - 1 then "" else ","))
    footprints;
  Buffer.add_string b "  ],\n  \"grid\": [\n";
  List.iteri
    (fun i m ->
      Buffer.add_string b (json_of_measured m);
      Buffer.add_string b (if i = List.length cells - 1 then "\n" else ",\n"))
    cells;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out_bin path in
  Buffer.output_buffer oc b;
  close_out oc

(* --- main ---------------------------------------------------------------- *)

let () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 16 * 1024 * 1024 };
  let smoke = ref false in
  let out = ref "BENCH_scale.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\nusage: scale_sweep.exe [--smoke] [--out FILE]\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let duration = Engine.of_seconds (if !smoke then 0.2 else 0.3) in
  let warmup = Engine.of_seconds (if !smoke then 0.05 else 0.1) in
  let grid =
    if !smoke then
      List.map
        (fun p -> { c_protocol = p; c_n = 16; c_clients = 10_000 })
        protocols
    else
      (* Smallest cells first: live-heap growth then stays monotone with
         the cell size rather than whipsawing the allocator. *)
      List.concat_map
        (fun c_clients ->
          List.concat_map
            (fun c_n ->
              List.map
                (fun c_protocol -> { c_protocol; c_n; c_clients })
                protocols)
            ns)
        populations
  in
  let footprint_sizes = if !smoke then [ 10_000 ] else populations in
  Printf.eprintf "[scale] pool footprint (standalone pools)...\n%!";
  let footprints =
    List.map
      (fun clients ->
        let wpc = pool_words_per_client clients in
        Printf.eprintf "[scale]   %8d clients: %6.2f words/client\n%!" clients
          wpc;
        (clients, wpc))
      footprint_sizes
  in
  let total = List.length grid in
  let cells =
    List.mapi
      (fun i cell ->
        Printf.eprintf "[scale] (%d/%d) %s n=%d clients=%d...\n%!" (i + 1)
          total
          (Config.protocol_name cell.c_protocol)
          cell.c_n cell.c_clients;
        let m = run_cell ~duration ~warmup cell in
        Printf.eprintf
          "[scale]   tput=%.0f txn/s p99=%.1fms events=%d wall=%.1fs \
           live=%.1fMw\n\
           %!"
          m.m_report.Report.throughput
          (m.m_report.Report.p99_latency *. 1e3)
          m.m_report.Report.sim_events m.m_report.Report.wall_seconds
          (float_of_int m.m_live_words /. 1e6);
        m)
      grid
  in
  write_json ~path:!out ~footprints ~cells;
  Printf.eprintf "[scale] wrote %s (%d cells)\n%!" !out total
