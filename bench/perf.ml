(* Wall-clock performance harness for the simulator's hot paths.

   Runs a fixed-seed smoke cluster plus allocation-counting microbenches
   over the three inner loops (event heap, Net.send, codec) and appends
   one entry to BENCH_simperf.json, so the repository carries a perf
   trajectory across PRs:

     dune exec bench/perf.exe -- --smoke --label "PR 4 baseline"
     dune exec bench/perf.exe -- --smoke --digest-only   # CI determinism gate

   Reported per entry:
   - events/sec            simulator events retired per wall-clock second
   - sim_ns_per_wall_ms    simulated nanoseconds advanced per wall millisecond
   - words_per_event       minor-heap words allocated per event (Gc.minor_words)
   - report_digest         SHA-256 over the deterministic report fields
                           (excludes wall time), the fixed-seed determinism
                           fingerprint CI compares against bench/simperf.digest
   - heap/net/codec microbench rows (ns/op and words/op)

   Wall time is [Sys.time] (process CPU time): the simulator is
   single-threaded and this keeps the harness dependency-free. *)

module Engine = Rcc_sim.Engine
module Net = Rcc_sim.Net
module Config = Rcc_runtime.Config
module Report = Rcc_runtime.Report
module Heap = Rcc_common.Binary_heap
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Codec = Rcc_messages.Codec

(* --- deterministic report fingerprint ---------------------------------- *)

(* Every field that is a pure function of the seed; wall_seconds is the
   one measurement that may (and should) change across optimizations. *)
let canonical_report (r : Report.t) =
  let b = Buffer.create 512 in
  Printf.bprintf b "%s n=%d batch=%d tput=%.3f avg=%.6f p50=%.6f p99=%.6f\n"
    r.Report.protocol r.Report.n r.Report.batch_size r.Report.throughput
    r.Report.avg_latency r.Report.p50_latency r.Report.p99_latency;
  Printf.bprintf b
    "committed=%d rounds=%d valid=%b vc=%d collusions=%d contracts=%d \
     repl=%d msgs=%d bytes=%d events=%d\n"
    r.Report.committed_txns r.Report.ledger_rounds r.Report.ledger_valid
    r.Report.view_changes r.Report.collusions_detected r.Report.contract_bytes
    r.Report.replacements r.Report.messages r.Report.bytes_sent
    r.Report.sim_events;
  Array.iter
    (fun (t, v) -> Printf.bprintf b "tl %.4f %.4f\n" t v)
    r.Report.timeline;
  Array.iter
    (fun (s : Report.instance_stats) ->
      Printf.bprintf b "i%d tput=%.3f avg=%.6f p50=%.6f p99=%.6f txns=%d vc=%d\n"
        s.Report.instance s.Report.i_throughput s.Report.i_avg_latency
        s.Report.i_p50_latency s.Report.i_p99_latency s.Report.i_txns
        s.Report.i_view_changes)
    r.Report.per_instance;
  Buffer.contents b

let report_digest r = Rcc_crypto.Sha256.hex_digest (canonical_report r)

(* --- smoke cluster ------------------------------------------------------ *)

type smoke = {
  s_events : int;
  s_wall : float;
  s_sim_ns : int;
  s_minor_words : float;
  s_throughput : float;
  s_digest : string;
}

let smoke_config ~duration ~clients =
  Config.make ~protocol:Config.MultiP ~n:16 ~batch_size:100 ~clients
    ~duration ~warmup:(Engine.of_seconds 0.15) ~seed:42 ()

let run_smoke ~duration ~clients =
  let cfg = smoke_config ~duration ~clients in
  Gc.full_major ();
  let words0 = Gc.minor_words () in
  let report = Rcc_runtime.Cluster.run_config cfg in
  let words1 = Gc.minor_words () in
  {
    s_events = report.Report.sim_events;
    s_wall = report.Report.wall_seconds;
    s_sim_ns = duration;
    s_minor_words = words1 -. words0;
    s_throughput = report.Report.throughput;
    s_digest = report_digest report;
  }

(* --- microbenches ------------------------------------------------------- *)

(* ns/op and minor-words/op over [iters] calls of [f], called once per op.
   Coarse by design: this is an allocation regression tripwire and a
   trajectory row, not a Bechamel-grade estimate (bench/micro.ml has
   those). *)
let measure ~iters f =
  Gc.full_major ();
  let words0 = Gc.minor_words () in
  let t0 = Sys.time () in
  for _ = 1 to iters do
    f ()
  done;
  let wall = Sys.time () -. t0 in
  let words = Gc.minor_words () -. words0 in
  let n = float_of_int iters in
  (wall *. 1e9 /. n, words /. n)

type micro_row = { m_name : string; m_ns : float; m_words : float }

let bench_heap () =
  let n = 1024 in
  let h = Heap.create ~capacity:(2 * n) ~dummy:0 () in
  let prios = Array.init n (fun i -> (i * 7919) land 0xffff) in
  (* One op = push n then pop n; report per push+pop pair. *)
  let ns, words =
    measure ~iters:200 (fun () ->
        for i = 0 to n - 1 do
          Heap.push h ~priority:prios.(i) i
        done;
        while not (Heap.is_empty h) do
          ignore (Heap.min_priority h);
          ignore (Heap.pop_min_exn h)
        done)
  in
  let per = float_of_int n in
  { m_name = "heap-push-pop"; m_ns = ns /. per; m_words = words /. per }

let make_net ~rules =
  let engine = Engine.create () in
  let rng = Rcc_common.Rng.create 7 in
  let net =
    Net.create engine ~nodes:16 ~latency:(Engine.us 50) ~jitter:0 ~gbps:10.0
      ~rng ()
  in
  for i = 0 to 15 do
    Net.register net i (fun ~src:_ ~size:_ _ -> ())
  done;
  if rules then begin
    ignore (Net.add_drop_rule net (fun ~src:_ ~dst:_ _ -> false));
    ignore (Net.add_delay_rule net (fun ~src:_ ~dst:_ -> 0));
    ignore (Net.add_dup_rule net (fun ~src:_ ~dst:_ _ -> 0))
  end;
  (engine, net)

let bench_net ~rules =
  let engine, net = make_net ~rules in
  (* One op = a 15-destination broadcast, drained to a bounded horizon
     (running to [max_int] would park [now] there and overflow the next
     send's schedule). *)
  let ns, words =
    measure ~iters:2000 (fun () ->
        for dst = 1 to 15 do
          Net.send net ~src:0 ~dst ~size:5400 ()
        done;
        Engine.run engine ~until:(Engine.now engine + Engine.ms 10))
  in
  let per = 15.0 in
  {
    m_name = (if rules then "net-send-3rules" else "net-send-0rules");
    m_ns = ns /. per;
    m_words = words /. per;
  }

let bench_txns () =
  Array.init 100 (fun i -> Rcc_workload.Txn.{ key = i; op = Write (i * 31) })

let bench_codec () =
  let secret, _ = Rcc_crypto.Signature.keygen (Rcc_common.Rng.create 3) in
  let batch = Batch.create ~id:1 ~client:0 ~txns:(bench_txns ()) ~secret in
  let msg = Msg.Pre_prepare { instance = 0; view = 0; seq = 9; batch } in
  let ns, words =
    measure ~iters:2000 (fun () ->
        let wire = Codec.encode msg in
        match Codec.decode wire with Ok _ -> () | Error e -> failwith e)
  in
  { m_name = "codec-roundtrip-100txn"; m_ns = ns; m_words = words }

let bench_msg_size () =
  let secret, _ = Rcc_crypto.Signature.keygen (Rcc_common.Rng.create 3) in
  let batch = Batch.create ~id:1 ~client:0 ~txns:(bench_txns ()) ~secret in
  let entries =
    List.init 4 (fun x ->
        {
          Msg.ce_instance = x;
          ce_round = 12;
          ce_batch = batch;
          ce_cert_replicas = List.init 11 (fun r -> r);
        })
  in
  let msg = Msg.Contract { round = 12; entries } in
  let ns, words = measure ~iters:200_000 (fun () -> ignore (Msg.size msg)) in
  { m_name = "msg-size-contract"; m_ns = ns; m_words = words }

(* --- JSON output -------------------------------------------------------- *)

let json_of_entry ~label smoke micros =
  let b = Buffer.create 1024 in
  Printf.bprintf b "  {\n    \"label\": %S,\n" label;
  Printf.bprintf b "    \"smoke\": {\n";
  Printf.bprintf b "      \"sim_events\": %d,\n" smoke.s_events;
  Printf.bprintf b "      \"wall_seconds\": %.4f,\n" smoke.s_wall;
  Printf.bprintf b "      \"events_per_sec\": %.0f,\n"
    (float_of_int smoke.s_events /. smoke.s_wall);
  Printf.bprintf b "      \"sim_ns_per_wall_ms\": %.0f,\n"
    (float_of_int smoke.s_sim_ns /. (smoke.s_wall *. 1e3));
  Printf.bprintf b "      \"words_per_event\": %.2f,\n"
    (smoke.s_minor_words /. float_of_int smoke.s_events);
  Printf.bprintf b "      \"throughput_txn_s\": %.0f,\n" smoke.s_throughput;
  Printf.bprintf b "      \"report_digest\": %S\n" smoke.s_digest;
  Printf.bprintf b "    },\n    \"micro\": {\n";
  List.iteri
    (fun i { m_name; m_ns; m_words } ->
      Printf.bprintf b "      %S: { \"ns_per_op\": %.1f, \"words_per_op\": %.2f }%s\n"
        m_name m_ns m_words
        (if i = List.length micros - 1 then "" else ","))
    micros;
  Printf.bprintf b "    }\n  }";
  Buffer.contents b

(* BENCH_simperf.json is a JSON array of entries; appending keeps the
   trajectory. Text-level splice so we need no JSON parser. *)
let append_entry ~path entry =
  let existing =
    if Sys.file_exists path then (
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      String.trim s)
    else ""
  in
  let body =
    if existing = "" || existing = "[]" then Printf.sprintf "[\n%s\n]\n" entry
    else begin
      let len = String.length existing in
      if existing.[len - 1] <> ']' then
        failwith (path ^ ": not a JSON array; refusing to append");
      Printf.sprintf "%s,\n%s\n]\n"
        (String.trim (String.sub existing 0 (len - 1)))
        entry
    end
  in
  let oc = open_out_bin path in
  output_string oc body;
  close_out oc

(* --- main ---------------------------------------------------------------- *)

let () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 16 * 1024 * 1024 };
  let smoke_only = ref false in
  let digest_only = ref false in
  let label = ref "" in
  let out = ref "BENCH_simperf.json" in
  (* 120 is the historical smoke population; --clients 240 is the second
     determinism gate (the default closed-loop sweep population). *)
  let clients = ref 120 in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke_only := true;
        parse rest
    | "--digest-only" :: rest ->
        digest_only := true;
        parse rest
    | "--label" :: l :: rest ->
        label := l;
        parse rest
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | "--clients" :: c :: rest ->
        clients := int_of_string c;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %S\n\
           usage: perf.exe [--smoke] [--digest-only] [--clients N] \
           [--label STR] [--out FILE]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let duration =
    Engine.of_seconds (if !smoke_only || !digest_only then 0.5 else 2.0)
  in
  if !digest_only then begin
    (* CI determinism gate: print only the fixed-seed report digest. *)
    let smoke = run_smoke ~duration ~clients:!clients in
    print_string smoke.s_digest;
    print_newline ()
  end
  else begin
    let label =
      if !label <> "" then !label
      else if !smoke_only then "smoke"
      else "full"
    in
    Printf.eprintf "[simperf] smoke cluster (%.1fs simulated)...\n%!"
      (Engine.to_seconds duration);
    let smoke = run_smoke ~duration ~clients:!clients in
    Printf.eprintf
      "[simperf]   %d events in %.2fs wall = %.0f events/s, %.2f words/event\n%!"
      smoke.s_events smoke.s_wall
      (float_of_int smoke.s_events /. smoke.s_wall)
      (smoke.s_minor_words /. float_of_int smoke.s_events);
    Printf.eprintf "[simperf]   report digest %s\n%!" smoke.s_digest;
    Printf.eprintf "[simperf] microbenches...\n%!";
    let micros =
      [
        bench_heap ();
        bench_net ~rules:false;
        bench_net ~rules:true;
        bench_codec ();
        bench_msg_size ();
      ]
    in
    List.iter
      (fun { m_name; m_ns; m_words } ->
        Printf.eprintf "[simperf]   %-24s %10.1f ns/op %8.2f words/op\n%!"
          m_name m_ns m_words)
      micros;
    let entry = json_of_entry ~label smoke micros in
    append_entry ~path:!out entry;
    Printf.eprintf "[simperf] appended %S -> %s\n%!" label !out
  end
