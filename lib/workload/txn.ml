type op = Read | Write of int

type t = { key : int; op : op }

(* A 100-txn PRE-PREPARE is 5400 B (§7.2) and protocol headers are 250 B,
   plus ~150 B of batch framing/signature: 50 B per transaction. *)
let wire_size = 50

let encoded_size = 24

let encode_into buf off t =
  let tag, v = match t.op with Read -> (0L, 0L) | Write v -> (1L, Int64.of_int v) in
  Rcc_common.Bytes_util.put_u64be buf off (Int64.of_int t.key);
  Rcc_common.Bytes_util.put_u64be buf (off + 8) tag;
  Rcc_common.Bytes_util.put_u64be buf (off + 16) v

let encode t =
  let buf = Bytes.create encoded_size in
  encode_into buf 0 t;
  Bytes.unsafe_to_string buf

let decode buf off =
  if String.length buf < off + encoded_size then Error "txn: truncated"
  else
    let u64 i = Int64.to_int (Rcc_common.Bytes_util.get_u64be buf (off + i)) in
    let key = u64 0 in
    match u64 8 with
    | 0 -> Ok { key; op = Read }
    | 1 -> Ok { key; op = Write (u64 16) }
    | tag -> Error (Printf.sprintf "txn: bad op tag %d" tag)

let apply store t =
  match t.op with
  | Read -> (match Rcc_storage.Kv_store.read store t.key with Some v -> v | None -> 0)
  | Write v ->
      Rcc_storage.Kv_store.write store ~key:t.key ~value:v;
      v

let equal a b =
  a.key = b.key
  && match (a.op, b.op) with
     | Read, Read -> true
     | Write x, Write y -> x = y
     | Read, Write _ | Write _, Read -> false

let pp fmt t =
  match t.op with
  | Read -> Format.fprintf fmt "R(%d)" t.key
  | Write v -> Format.fprintf fmt "W(%d:=%d)" t.key v
