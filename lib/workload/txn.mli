(** Client transactions: single-key YCSB operations. *)

type op =
  | Read
  | Write of int  (** value to store *)

type t = { key : int; op : op }

val encode : t -> string
(** Compact binary encoding (24 bytes), input to batch digests and the
    wire codec. *)

val encode_into : Bytes.t -> int -> t -> unit
(** Write the 24-byte encoding at the given offset — the allocation-free
    form of {!encode} used when digesting whole batches. *)

val encoded_size : int

val decode : string -> int -> (t, string) result
(** [decode buf off] parses the encoding written by {!encode}. *)

val wire_size : int
(** Bytes one transaction occupies inside a request batch. Calibrated so a
    100-transaction PRE-PREPARE is 5400 bytes as reported in §7.2. *)

val apply : Rcc_storage.Kv_store.t -> t -> int
(** Execute against the store; returns the read value or the written
    value. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
