module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Env = Rcc_replica.Instance_env
module SL = Rcc_proto_core.Slot_log
module Quorum = Rcc_proto_core.Quorum
module Held_batches = Rcc_proto_core.Held_batches
module Checkpointing = Rcc_proto_core.Checkpointing

(* Protocol-specific slot state; batch / accepted / created_at live in
   the shared {!Rcc_proto_core.Slot_log}. *)
type spec = { mutable history : string (* chain head after accepting *) }

type t = {
  env : Env.t;
  mutable view : int;
  mutable primary : int;
  mutable next_seq : int;  (* primary: next round to order *)
  log : spec SL.t;  (* frontier = next_accept - 1: accepts strictly in order *)
  mutable history : string;  (* running history digest *)
  mutable committed : int;  (* highest round with a client commit cert *)
  vc_votes : Quorum.Tally.t;
  mutable vc_sent_for : int;
  mutable last_failure_report : int;
  mutable recovering : bool;  (* new primary syncing in-flight slots *)
  ckpt : Checkpointing.t;
  held : Held_batches.t;  (* submitted while recovering *)
  ordered : (Rcc_common.Ids.client_id, string * int) Hashtbl.t;
      (* primary only: each client's last ordered (digest, seq), so a
         retransmitted batch is re-announced at its original slot instead
         of being ordered — and executed — a second time *)
  mutable running : bool;
}

let create env =
  let n = env.Env.n and f = env.Env.f in
  {
    env;
    view = 0;
    primary = env.Env.instance;
    next_seq = 0;
    log =
      SL.create ~tag:(env.Env.self, env.Env.instance) ~engine:env.Env.engine
        ~init:(fun _ -> { history = "" })
        ();
    history = "";
    committed = -1;
    vc_votes = Quorum.Tally.create ~n ~f;
    vc_sent_for = 0;
    last_failure_report = -1;
    recovering = false;
    ckpt = Checkpointing.create ~n ~f ~interval:env.Env.checkpoint_interval ();
    held = Held_batches.create ();
    ordered = Hashtbl.create 64;
    running = false;
  }

let primary t = t.primary
let view t = t.view
let committed_upto t = t.committed
let history_digest t = t.history
let is_primary t = t.primary = t.env.Env.self
let slot t seq = SL.get t.log seq
let next_accept t = SL.frontier t.log + 1

let extend_history t digest =
  t.history <- Rcc_crypto.Sha256.digest_list [ t.history; digest ];
  t.history

(* --- checkpointing ---------------------------------------------------- *)

(* Slots covered by a stable checkpoint are only needed for contracts,
   which the coordinator serves from its own history — collect them. The
   checkpoint digest is the chained speculative history at the boundary,
   so any two replicas voting for one boundary vouch for the same
   execution prefix. *)
let advance_ckpt t =
  (match Checkpointing.try_stabilize t.ckpt ~exec_upto:(SL.frontier t.log) with
  | Some stable ->
      SL.gc_upto t.log (stable - 1);
      t.env.Env.on_stable ~seq:stable
  | None -> ());
  match Checkpointing.due t.ckpt ~exec_upto:(SL.frontier t.log) with
  | Some target ->
      let digest =
        match SL.find_opt t.log target with
        | Some { SL.state = { history }; _ } -> history
        | None -> ""
      in
      t.env.Env.broadcast
        (Msg.Checkpoint
           { instance = t.env.Env.instance; seq = target; state_digest = digest })
  | None -> ()

let on_checkpoint t ~src seq digest =
  match
    Checkpointing.on_vote t.ckpt ~src ~seq ~digest
      ~exec_upto:(SL.frontier t.log)
  with
  | Some stable ->
      SL.gc_upto t.log (stable - 1);
      t.env.Env.on_stable ~seq:stable
  | None -> ()

(* Accept pending slots strictly in sequence order, chaining the history
   digest (speculative execution). *)
let drain_accepts t =
  let advanced =
    SL.drain t.log ~accept:(fun s ->
         match s.SL.batch with
         | Some batch when not s.SL.accepted ->
             s.SL.accepted <- true;
             s.SL.state.history <- extend_history t batch.Batch.digest;
             t.env.Env.accept
               {
                 Rcc_replica.Acceptance.instance = t.env.Env.instance;
                 round = s.SL.round;
                 batch;
                 cert = [ t.primary; t.env.Env.self ];
                 speculative = true;
                 history = s.SL.state.history;
               };
             true
         | Some _ | None -> false)
  in
  if advanced then advance_ckpt t

(* A certified new view re-ordered [seq] with a different batch than the
   one this replica speculatively accepted — and, accepts being strictly
   in order, possibly executed: the Zyzzyva fork. Unwind every
   speculative slot at or above [seq], re-seed the history chain from the
   last surviving slot, tell the execute stage to roll its state back
   (KV undo, ledger truncation), and install the new authoritative batch
   so the drain re-accepts — and re-executes — the corrected suffix.
   Rounds at or below a commit certificate or stable checkpoint are
   attested: a conflict there means this replica's whole prefix lost,
   which is state transfer's job, not rollback's. Returns whether the
   rollback ran (the new batch only installs when it did). *)
let conflict_rollback t ~seq batch =
  if seq > t.committed && seq > Checkpointing.stable t.ckpt then begin
    let reseed =
      if seq = 0 then Some ""
      else
        match SL.find_opt t.log (seq - 1) with
        | Some { SL.accepted = true; state = { history }; _ } -> Some history
        | Some _ | None -> None
    in
    match reseed with
    | None ->
        (* Predecessor slot collected (snapshot jump landed between the
           checkpoint and this conflict): no chain head to rebuild from,
           so leave the repair to state transfer. *)
        false
    | Some h ->
        SL.unwind t.log ~round:seq;
        t.history <- h;
        t.env.Env.rollback ~frontier:seq;
        (slot t seq).SL.batch <- Some batch;
        true
  end
  else false

let on_order_request t ~src ~view ~seq batch ~history:_ =
  if src = t.primary && view = t.view then begin
    let s = slot t seq in
    match s.SL.batch with
    | None ->
        s.SL.batch <- Some batch;
        drain_accepts t
    | Some prev when prev.Batch.digest = batch.Batch.digest -> ()
    | Some _ when not s.SL.accepted ->
        (* A buffered order the deposed primary never got accepted: the
           new view's order simply replaces it. *)
        s.SL.batch <- Some batch;
        drain_accepts t
    | Some _ -> if conflict_rollback t ~seq batch then drain_accepts t
  end

(* A client retransmission of a batch this primary already ordered must
   not burn a fresh slot: once the duplicate-reply cache entry for the
   first slot ages past the checkpoint floor, the second slot would
   re-execute the batch. Re-announce the original order instead — replicas
   that missed it catch up, the rest treat it as the duplicate it is. *)
let already_ordered t (batch : Batch.t) =
  match Hashtbl.find_opt t.ordered batch.Batch.client with
  | Some (digest, seq) when String.equal digest batch.Batch.digest -> (
      match SL.find_opt t.log seq with
      | Some { SL.batch = Some b; _ } when String.equal b.Batch.digest digest ->
          Some (Some seq)
      | None when seq < next_accept t ->
          (* Stable and collected: every correct replica executed and
             replied; nothing to re-order. *)
          Some None
      | Some _ | None -> None (* slot unwound or replaced: order afresh *))
  | Some _ | None -> None

let propose t batch =
  match already_ordered t batch with
  | Some None -> ()
  | Some (Some seq) ->
      t.env.Env.broadcast
        (Msg.Order_request
           {
             instance = t.env.Env.instance;
             view = t.view;
             seq;
             batch;
             history = t.history;
           })
  | None ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      let s = slot t seq in
      s.SL.batch <- Some batch;
      Hashtbl.replace t.ordered batch.Batch.client (batch.Batch.digest, seq);
      let exclude dst = Rcc_replica.Byz.excludes t.env.Env.byz ~round:seq dst in
      t.env.Env.broadcast ~exclude
        (Msg.Order_request
           {
             instance = t.env.Env.instance;
             view = t.view;
             seq;
             batch;
             history = t.history;
           });
      drain_accepts t

let submit_batch t batch =
  if is_primary t then
    if t.recovering then Held_batches.hold t.held batch else propose t batch

(* --- failure detection / view change --------------------------------- *)

let broadcast_view_change t ~round =
  let new_view = t.view + 1 in
  t.vc_sent_for <- max t.vc_sent_for new_view;
  t.env.Env.broadcast
    (Msg.View_change
       {
         instance = t.env.Env.instance;
         new_view;
         blamed = t.primary;
         round;
         last_exec = SL.frontier t.log;
         signature = t.env.Env.sign_blame ~view:t.view ~blamed:t.primary ~round;
       });
  if not t.env.Env.unified then
    ignore (Quorum.vote (Quorum.Tally.votes t.vc_votes new_view) t.env.Env.self)

let detect_failure t ~round =
  if t.last_failure_report < round then begin
    t.last_failure_report <- round;
    broadcast_view_change t ~round;
    t.env.Env.report_failure ~round ~blamed:t.primary
  end

(* A commit certificate for a sequence number we never accepted is proof
   (relayed through a retrying client) that the primary skipped us. *)
let on_commit_cert t ~seq ~client ~replicas:_ =
  if seq >= 0 && seq < next_accept t then begin
    if seq > t.committed then t.committed <- seq;
    (* Ack the certificate holder directly: the slot may already be
       collected under a stable checkpoint (the cluster raced far ahead
       of this client), and a certificate of 2f+1 matching responses is
       proof enough that the round both executed and committed. Reading
       the client out of the slot would resurrect an empty slot and
       silently drop the ack, wedging the client into resending a batch
       nobody will re-order. *)
    t.env.Env.respond client
      (Msg.Local_commit { instance = t.env.Env.instance; seq; client })
  end
  else if seq >= next_accept t then detect_failure t ~round:(next_accept t)

let reorder t seq batch =
  t.env.Env.broadcast
    (Msg.Order_request
       {
         instance = t.env.Env.instance;
         view = t.view;
         seq;
         batch;
         history = t.history;
       })

(* How long a new primary waits for peers to vouch for in-flight slots
   before hole-filling them with nulls. *)
let recover_grace t = max (Engine.ms 1) (t.env.Env.timeout / 8)

(* Finish taking over the instance: re-order in the new view everything
   between our accept frontier and the highest slot we know about,
   hole-filling the rest with nulls, then resume fresh proposals past the
   frontier. Only safe once [max_seen] reflects the cluster-wide in-flight
   frontier — see [repropose_incomplete]. *)
let finish_repropose t =
  t.recovering <- false;
  t.next_seq <- max t.next_seq (SL.max_seen t.log + 1);
  for seq = next_accept t to SL.max_seen t.log do
    let s = slot t seq in
    match s.SL.batch with
    | Some batch -> reorder t seq batch
    | None ->
        s.SL.batch <- Some (Batch.null ~round:seq);
        reorder t seq (Batch.null ~round:seq)
  done;
  drain_accepts t;
  Held_batches.flush t.held ~propose:(propose t)

let repropose_incomplete t =
  (* Announce the new view so backups adopt the new primary even when
     there is nothing to re-order. *)
  t.env.Env.broadcast
    (Msg.New_view { instance = t.env.Env.instance; view = t.view; reproposals = [] });
  if t.env.Env.unified then begin
    (* A primary taking over an instance it was cut off from (partition,
       dark attack) does not know how far the deposed primary ran: peers
       may have speculatively executed slots far past our [max_seen], and
       proposing a fresh batch — or a null — at such a slot forks the
       ledgers. First recover the cluster-wide in-flight frontier from
       peers (§3.3 state exchange; the contract reply covers the whole
       contiguous window above the requested round), and only propose
       once the grace period has let the answers arrive. *)
    t.recovering <- true;
    t.env.Env.broadcast
      (Msg.Contract_request
         { round = next_accept t; instance = t.env.Env.instance });
    let view = t.view in
    Engine.schedule_after t.env.Env.engine (recover_grace t) (fun () ->
        if t.view = view && is_primary t then finish_repropose t)
  end
  else begin
    (* Standalone Zyzzyva: no contract machinery; null-fill immediately. *)
    t.recovering <- false;
    finish_repropose t
  end

let install_view t ~view ~primary =
  t.view <- view;
  t.primary <- primary;
  t.recovering <- false;
  Hashtbl.reset t.ordered;
  Held_batches.clear t.held;
  t.last_failure_report <- -1;
  Quorum.Tally.prune t.vc_votes ~upto:view;
  if is_primary t then repropose_incomplete t

let set_primary t replica ~view = install_view t ~view ~primary:replica

(* Restart-from-disk: the lost incarnation may have ordered slots past
   the durable frontier; re-assigning them would fork the speculative
   histories. Hold everything until a view change re-elects sequencing. *)
let resign_primary t = if is_primary t then t.recovering <- true

let on_view_change t ~src ~new_view =
  if (not t.env.Env.unified) && new_view > t.view then begin
    let votes = Quorum.Tally.votes t.vc_votes new_view in
    ignore (Quorum.vote votes src);
    if Quorum.has_weak votes && t.vc_sent_for < new_view then begin
      broadcast_view_change t ~round:(next_accept t);
      ignore (Quorum.vote votes t.env.Env.self)
    end;
    if Quorum.has_quorum votes then begin
      let primary = new_view mod t.env.Env.n in
      if primary = t.env.Env.self then install_view t ~view:new_view ~primary
    end
  end

let on_new_view t ~src ~view reproposals =
  if view > t.view then begin
    t.view <- view;
    t.primary <- src;
    t.recovering <- false;
    Hashtbl.reset t.ordered;
    Held_batches.clear t.held;
    t.last_failure_report <- -1;
    List.iter
      (fun (seq, batch) -> on_order_request t ~src ~view ~seq batch ~history:"")
      reproposals
  end

(* --- recovery --------------------------------------------------------- *)

let adopt t ~round batch ~cert:_ =
  let s = slot t round in
  if not s.SL.accepted then begin
    s.SL.batch <- Some batch;
    drain_accepts t
  end
  else
    match s.SL.batch with
    | Some prev when prev.Batch.digest <> batch.Batch.digest ->
        (* Contract-driven recovery surfaced an attested order conflicting
           with our speculative acceptance — same fork as a conflicting
           re-order, same repair. *)
        if conflict_rollback t ~seq:round batch then drain_accepts t
    | Some _ | None -> ()

let proposed_upto t = t.next_seq - 1

let fast_forward t ~proof =
  let round = proof.Rcc_storage.Checkpoint_store.seq in
  SL.fast_forward t.log ~round;
  Checkpointing.install t.ckpt proof;
  (* Re-seed the speculative history chain from the attested state digest:
     every replica installing this snapshot chains identically from here.
     (Never-lagged peers keep their longer chain, so this replica's
     responses stop counting toward speculative certificates — clients
     fall back to the commit-certificate path, a liveness nuance only.) *)
  t.history <- proof.Rcc_storage.Checkpoint_store.state_digest;
  if t.committed < round - 1 then t.committed <- round - 1;
  if t.next_seq < round then t.next_seq <- round

let log_stats t = (SL.retained_slots t.log, SL.live_words t.log)
let checkpoint_log t = Checkpointing.log t.ckpt

let accepted_batch t ~round =
  match SL.find_opt t.log round with
  | Some { SL.accepted = true; batch = Some b; _ } ->
      Some (b, [ t.primary; t.env.Env.self ])
  | Some _ | None -> None

let incomplete_rounds t =
  let acc = ref [] in
  for seq = SL.max_seen t.log downto next_accept t do
    acc := seq :: !acc
  done;
  !acc

(* The frontier slot (created on demand so a round we only heard about
   indirectly still gets a stall clock). *)
let oldest_incomplete t =
  if next_accept t > SL.max_seen t.log then None
  else Some (slot t (next_accept t))

let rec watchdog t =
  if t.running then begin
    let timeout = t.env.Env.timeout in
    (match oldest_incomplete t with
    | Some s when Engine.now t.env.Env.engine - s.SL.created_at > timeout ->
        detect_failure t ~round:s.SL.round
    | Some _ | None -> ());
    Engine.schedule_after t.env.Env.engine (timeout / 2) (fun () -> watchdog t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.schedule_after t.env.Env.engine t.env.Env.timeout (fun () -> watchdog t)
  end

let handle t ~src msg =
  match msg with
  | Msg.Order_request { view; seq; batch; history; _ } ->
      on_order_request t ~src ~view ~seq batch ~history
  | Msg.Commit_cert { cc_seq; cc_client; cc_replicas; _ } ->
      on_commit_cert t ~seq:cc_seq ~client:cc_client ~replicas:cc_replicas
  | Msg.View_change { new_view; _ } -> on_view_change t ~src ~new_view
  | Msg.New_view { view; reproposals; _ } -> on_new_view t ~src ~view reproposals
  | Msg.Checkpoint { seq; state_digest; _ } -> on_checkpoint t ~src seq state_digest
  | Msg.Pre_prepare _ | Msg.Prepare _ | Msg.Commit _
  | Msg.Client_request _ | Msg.Local_commit _ | Msg.Hs_proposal _
  | Msg.Hs_vote _ | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ | Msg.Snapshot_request _
  | Msg.Snapshot_reply _ ->
      ()

let cost_of (costs : Costs.t) msg =
  match msg with
  | Msg.Order_request { batch; _ } ->
      (* Speculative execution leaves no later phase to catch an invalid
         request, so every replica validates the client signature before
         accepting an ordering — unlike PBFT, where the primary's
         batch-threads validate (§6). *)
      costs.Costs.worker_msg + costs.Costs.mac_verify + costs.Costs.sig_verify
      + Costs.hash_cost costs (Batch.size batch)
  | Msg.Commit_cert { cc_replicas; _ } ->
      costs.Costs.worker_msg
      + (costs.Costs.mac_verify * List.length cc_replicas)
  | Msg.View_change _ | Msg.New_view _ | Msg.Local_commit _ | Msg.Checkpoint _ ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
  | Msg.Pre_prepare _ | Msg.Prepare _ | Msg.Commit _
  | Msg.Client_request _ | Msg.Hs_proposal _ | Msg.Hs_vote _ | Msg.Response _
  | Msg.Contract _ | Msg.Contract_request _ | Msg.Instance_change _ | Msg.View_sync _ | Msg.Snapshot_request _
  | Msg.Snapshot_reply _ ->
      costs.Costs.worker_msg
