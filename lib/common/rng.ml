type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let skip t k =
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int k) golden_gamma)

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

(* Top 62 bits as a non-negative OCaml int. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias; bias is negligible for the
     small bounds used here, but correctness is cheap. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let v = next_nonneg t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let float t bound =
  let v = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
