module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let min t = if t.count = 0 then 0.0 else t.min
  let max t = if t.count = 0 then 0.0 else t.max

  let stddev t =
    if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.count - 1))

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let n = a.count + b.count in
      let fa = float_of_int a.count and fb = float_of_int b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. fb /. float_of_int n) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
      {
        count = n;
        mean;
        m2;
        min = Stdlib.min a.min b.min;
        max = Stdlib.max a.max b.max;
      }
    end
end

module Histogram = struct
  (* Buckets grow geometrically by [growth]; bucket i covers
     [base * growth^i, base * growth^(i+1)). Values below [base] land in
     bucket 0. *)
  let base = 1e-9
  let growth = 1.02
  let log_growth = log growth
  let nbuckets = 2048

  type t = {
    counts : int array;
    mutable total : int;
    mutable sum : float;
  }

  let create () = { counts = Array.make nbuckets 0; total = 0; sum = 0.0 }

  let bucket_of x =
    if x <= base then 0
    else
      let i = int_of_float (log (x /. base) /. log_growth) in
      if i >= nbuckets then nbuckets - 1 else i

  let value_of i = base *. (growth ** float_of_int i)

  (* Representative value of bucket i: the geometric midpoint of
     [value_of i, value_of (i+1)), i.e. value_of i * sqrt growth. Using
     the lower bound instead biases every percentile low by up to a full
     bucket width (~2%). *)
  let sqrt_growth = sqrt growth
  let midpoint_of i = value_of i *. sqrt_growth

  let add t x =
    let x = if x < 0.0 then 0.0 else x in
    let i = bucket_of x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. x

  let count t = t.total

  let percentile t p =
    if t.total = 0 then 0.0
    else begin
      let target = int_of_float (ceil (p *. float_of_int t.total)) in
      let target = if target < 1 then 1 else target in
      let rec scan i acc =
        if i >= nbuckets then midpoint_of (nbuckets - 1)
        else
          let acc = acc + t.counts.(i) in
          if acc >= target then midpoint_of i else scan (i + 1) acc
      in
      scan 0 0
    end

  let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
end

module Series = struct
  type t = {
    width : float;
    mutable totals : float array;
    mutable used : int;
  }

  let create ~bucket_width () =
    assert (bucket_width > 0.0);
    { width = bucket_width; totals = Array.make 64 0.0; used = 0 }

  let ensure t i =
    if i >= Array.length t.totals then begin
      let n = max (i + 1) (2 * Array.length t.totals) in
      let totals = Array.make n 0.0 in
      Array.blit t.totals 0 totals 0 t.used;
      t.totals <- totals
    end;
    if i >= t.used then t.used <- i + 1

  let add t ~time v =
    let i = int_of_float (time /. t.width) in
    let i = if i < 0 then 0 else i in
    ensure t i;
    t.totals.(i) <- t.totals.(i) +. v

  let buckets t =
    Array.init t.used (fun i -> (float_of_int i *. t.width, t.totals.(i)))

  let rates t =
    Array.init t.used (fun i ->
        (float_of_int i *. t.width, t.totals.(i) /. t.width))
end
