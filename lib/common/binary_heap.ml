(* 4-ary min-heap in three parallel unboxed arrays, keyed by
   (priority, sequence).

   [data] is a plain ['a array] backed by a caller-supplied [dummy]
   element filling the unused slots — no [Some] box per push, and the
   hot-path accessors ([min_priority]/[pop_min_exn]) return the parts
   separately so the event loop pops without allocating. The 4-ary
   layout keeps a sift-down's child scan inside one cache line of the
   [prio] array. Siftings move the hole instead of swapping, so each
   level costs three array writes rather than nine. *)

type 'a t = {
  mutable size : int;
  mutable prio : int array;
  mutable seq : int array;
  mutable data : 'a array;
  mutable next_seq : int;
  dummy : 'a;
}

let create ?(capacity = 256) ~dummy () =
  let capacity = max capacity 16 in
  {
    size = 0;
    prio = Array.make capacity 0;
    seq = Array.make capacity 0;
    data = Array.make capacity dummy;
    next_seq = 0;
    dummy;
  }

let is_empty t = t.size = 0

let size t = t.size

let grow t =
  let n = Array.length t.prio in
  let n' = n * 2 in
  let prio = Array.make n' 0 in
  let seq = Array.make n' 0 in
  let data = Array.make n' t.dummy in
  Array.blit t.prio 0 prio 0 n;
  Array.blit t.seq 0 seq 0 n;
  Array.blit t.data 0 data 0 n;
  t.prio <- prio;
  t.seq <- seq;
  t.data <- data

let push t ~priority v =
  if t.size = Array.length t.prio then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.size <- t.size + 1;
  (* Bubble the hole up. The fresh element holds the largest sequence
     number ever issued, so on a priority tie the parent stays put —
     only a strictly greater parent priority moves down. *)
  let i = ref (t.size - 1) in
  let continue = ref (!i > 0) in
  while !continue do
    let parent = (!i - 1) / 4 in
    if t.prio.(parent) > priority then begin
      t.prio.(!i) <- t.prio.(parent);
      t.seq.(!i) <- t.seq.(parent);
      t.data.(!i) <- t.data.(parent);
      i := parent;
      continue := parent > 0
    end
    else continue := false
  done;
  t.prio.(!i) <- priority;
  t.seq.(!i) <- seq;
  t.data.(!i) <- v

(* Drop the root, refill the hole with the last element sifted down.
   The (priority, seq) comparison is written out inline on locally bound
   arrays — this loop is the busiest spot of the whole simulator, and
   without flambda a [less t i j] helper stays an outlined call. Indices
   are in [0, n) by construction, so the unsafe accesses are in bounds. *)
let remove_min t =
  let n = t.size - 1 in
  t.size <- n;
  if n = 0 then t.data.(0) <- t.dummy
  else begin
    let prio = t.prio and seq = t.seq and data = t.data in
    let p = prio.(n) and s = seq.(n) and v = data.(n) in
    data.(n) <- t.dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let c1 = (4 * !i) + 1 in
      if c1 >= n then continue := false
      else begin
        let last = c1 + 3 in
        let last = if last > n - 1 then n - 1 else last in
        (* Smallest (priority, seq) among the children of !i. *)
        let m = ref c1 in
        let mp = ref (Array.unsafe_get prio c1) in
        let ms = ref (Array.unsafe_get seq c1) in
        for c = c1 + 1 to last do
          let cp = Array.unsafe_get prio c in
          if
            cp < !mp
            || (cp = !mp && Array.unsafe_get seq c < !ms)
          then begin
            m := c;
            mp := cp;
            ms := Array.unsafe_get seq c
          end
        done;
        if !mp < p || (!mp = p && !ms < s) then begin
          Array.unsafe_set prio !i !mp;
          Array.unsafe_set seq !i !ms;
          Array.unsafe_set data !i (Array.unsafe_get data !m);
          i := !m
        end
        else continue := false
      end
    done;
    Array.unsafe_set prio !i p;
    Array.unsafe_set seq !i s;
    Array.unsafe_set data !i v
  end

let min_priority t =
  if t.size = 0 then invalid_arg "Binary_heap.min_priority: empty heap";
  t.prio.(0)

let pop_min_exn t =
  if t.size = 0 then invalid_arg "Binary_heap.pop_min_exn: empty heap";
  let v = t.data.(0) in
  remove_min t;
  v

let pop t =
  if t.size = 0 then None
  else begin
    let p = t.prio.(0) in
    let v = t.data.(0) in
    remove_min t;
    Some (p, v)
  end

let peek_priority t = if t.size = 0 then None else Some t.prio.(0)

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0
