(** Array-backed 4-ary min-heap keyed by [(priority, sequence)].

    The sequence number is assigned at insertion time, making extraction
    order deterministic among equal priorities (FIFO among ties). This is
    the event queue of the simulator, so determinism here is load-bearing.

    Storage is three parallel unboxed arrays; the unused slots of the
    payload array hold the [dummy] element given at creation, so neither
    {!push} nor the {!min_priority}/{!pop_min_exn} pair allocates. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills vacant payload slots (and is what {!clear} resets them
    to, so popped payloads are not retained). It is never returned by the
    accessors unless it was itself pushed. *)

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> priority:int -> 'a -> unit

val min_priority : 'a t -> int
(** Priority of the minimum element, without allocating.
    @raise Invalid_argument on an empty heap. *)

val pop_min_exn : 'a t -> 'a
(** Remove the minimum element and return its payload, without
    allocating. Use with {!min_priority} when the caller needs both.
    @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum [(priority, value)]. Allocating
    convenience over {!min_priority}/{!pop_min_exn}. *)

val peek_priority : 'a t -> int option

val clear : 'a t -> unit
