(* Hashed timing wheel: a ring of buckets, each covering [granularity]
   time units. Entry [e] lives in bucket [(deadline / granularity) mod
   slots]; the sweep walks the ring one tick at a time and fires
   everything that came due, keeping entries that belong to a later lap
   in place. Buckets are parallel int arrays grown geometrically, so a
   sweep allocates nothing in steady state. *)

type bucket = {
  mutable deadlines : int array;
  mutable payloads : int array;
  mutable len : int;
}

type t = {
  granularity : int;
  slots : int;
  buckets : bucket array;
  head : bucket;
      (* Entries scheduled at or behind the sweep position. They cannot
         go into the ring: mid-sweep the head may already have passed
         their bucket, which would strand them for a full lap. The head
         bucket is swept first on every [advance]. *)
  mutable current_tick : int;  (* deadline / granularity of the sweep head *)
  mutable pending : int;
}

let create ?(slots = 256) ~granularity () =
  if granularity <= 0 then invalid_arg "Timing_wheel.create: granularity <= 0";
  if slots <= 0 then invalid_arg "Timing_wheel.create: slots <= 0";
  {
    granularity;
    slots;
    buckets =
      Array.init slots (fun _ ->
          { deadlines = [||]; payloads = [||]; len = 0 });
    head = { deadlines = [||]; payloads = [||]; len = 0 };
    current_tick = 0;
    pending = 0;
  }

let granularity t = t.granularity
let pending t = t.pending
let is_empty t = t.pending = 0

let push b ~deadline payload =
  let cap = Array.length b.deadlines in
  if b.len = cap then begin
    let cap' = if cap = 0 then 8 else cap * 2 in
    let d = Array.make cap' 0 and p = Array.make cap' 0 in
    Array.blit b.deadlines 0 d 0 b.len;
    Array.blit b.payloads 0 p 0 b.len;
    b.deadlines <- d;
    b.payloads <- p
  end;
  b.deadlines.(b.len) <- deadline;
  b.payloads.(b.len) <- payload;
  b.len <- b.len + 1

let schedule t ~deadline payload =
  let tick = deadline / t.granularity in
  if tick <= t.current_tick then push t.head ~deadline payload
  else push t.buckets.(tick mod t.slots) ~deadline payload;
  t.pending <- t.pending + 1

(* Detach a bucket's arrays and fire every due entry. Detaching before
   firing matters: callbacks may [schedule] back into this same slot (a
   retry one full lap ahead, or a past-due deadline going to [head]),
   and those must not be swept — or worse, clobbered — mid-iteration.
   Returns entries that are not due yet to [keep]. *)
let sweep_bucket t b ~now ~tick ~keep fire =
  if b.len > 0 then begin
    let deadlines = b.deadlines and payloads = b.payloads and len = b.len in
    b.deadlines <- [||];
    b.payloads <- [||];
    b.len <- 0;
    for i = 0 to len - 1 do
      let deadline = deadlines.(i) in
      if deadline / t.granularity <= tick && deadline <= now then begin
        t.pending <- t.pending - 1;
        fire payloads.(i)
      end
      else
        (* Later lap, or same tick but not yet due (partial tick):
           keep for a later sweep. *)
        push keep ~deadline payloads.(i)
    done
  end

let advance t ~now fire =
  let target_tick = now / t.granularity in
  (* Past-due parkings first; anything [fire] re-parks lands in the
     fresh head arrays and waits for the next advance. *)
  sweep_bucket t t.head ~now ~tick:t.current_tick ~keep:t.head fire;
  let continue = ref true in
  while !continue && t.current_tick <= target_tick do
    let b = t.buckets.(t.current_tick mod t.slots) in
    sweep_bucket t b ~now ~tick:t.current_tick ~keep:b fire;
    if t.current_tick < target_tick then
      t.current_tick <- t.current_tick + 1
    else continue := false
  done
