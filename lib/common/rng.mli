(** Deterministic pseudo-random number generation (SplitMix64).

    Every source of nondeterminism in the reproduction — network jitter,
    Zipfian draws, byzantine scheduling — is derived from one of these
    generators, so experiments are exactly reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each replica / client / link its own stream. *)

val copy : t -> t
(** [copy t] is an independent generator frozen at [t]'s current state;
    advancing one does not affect the other. *)

val skip : t -> int -> unit
(** [skip t k] advances [t] past the next [k] draws in O(1), leaving it
    in exactly the state [k] calls to {!next_int64} would. SplitMix64's
    state moves by a fixed increment per draw, so lazily-derived
    consumers (e.g. per-client keys) can jump straight to their slice of
    the stream and still reproduce the eager values bit-for-bit. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp(1/mean). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
