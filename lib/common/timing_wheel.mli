(** Hashed timing wheel for batched deadline scanning.

    Designed for client pools with hundreds of thousands of outstanding
    timeouts: instead of one simulator timer per client, entries hash
    into a ring of coarse-granularity buckets and a single periodic
    sweep fires everything that came due. Payloads are plain [int]s
    (callers pack a generation counter next to an index for lazy
    cancellation — a stale generation is simply ignored when it fires).

    The wheel itself never talks to a clock or an engine; the owner
    drives it by calling {!advance} with the current time. *)

type t

val create : ?slots:int -> granularity:int -> unit -> t
(** [create ~granularity ()] makes an empty wheel whose buckets each
    cover [granularity] time units. [slots] (default 256) is the ring
    size; entries further than [slots * granularity] ahead simply stay
    in their bucket for a later lap. [granularity] must be positive. *)

val schedule : t -> deadline:int -> int -> unit
(** [schedule t ~deadline payload] registers [payload] to fire once
    [advance] passes [deadline]. Deadlines at or before the wheel's
    current position fire on the very next {!advance}. *)

val advance : t -> now:int -> (int -> unit) -> unit
(** [advance t ~now fire] calls [fire payload] for every entry whose
    deadline is [<= now]. Entries fire in non-decreasing bucket order;
    within one bucket, in insertion order. [fire] may call {!schedule}
    (e.g. to arm a retry): a deadline at or behind the sweep position
    fires on the next [advance] — never recursively within the same
    sweep — while a due deadline ahead of the position may still fire
    later in the same [advance] when its bucket is reached. [now] must
    not go backwards across calls. *)

val pending : t -> int
(** Entries scheduled and not yet fired. *)

val granularity : t -> int
val is_empty : t -> bool
