module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Bitset = Rcc_common.Bitset
module Env = Rcc_replica.Instance_env

type slot = {
  seq : int;
  mutable batch : Batch.t option;
  acks : Bitset.t;  (* primary side *)
  mutable acked : bool;  (* backup side: we logged and acked *)
  mutable notified : bool;  (* primary side: commit-notify sent *)
  mutable accepted : bool;
  created_at : Engine.time;
}

type t = {
  env : Env.t;
  mutable view : int;
  mutable primary : int;
  mutable next_seq : int;
  mutable max_seen : int;
  slots : (int, slot) Hashtbl.t;
  mutable exec_upto : int;
  mutable last_progress : Engine.time;
  vc_votes : (int, Bitset.t) Hashtbl.t;
  mutable vc_sent_for : int;
  mutable last_failure_report : int;
  mutable running : bool;
}

let create env =
  {
    env;
    view = 0;
    primary = env.Env.instance;
    next_seq = 0;
    max_seen = -1;
    slots = Hashtbl.create 512;
    exec_upto = -1;
    last_progress = 0;
    vc_votes = Hashtbl.create 8;
    vc_sent_for = 0;
    last_failure_report = -1;
    running = false;
  }

let primary t = t.primary
let view t = t.view
let proposed_upto t = t.next_seq - 1
let is_primary t = t.primary = t.env.Env.self

(* Crash-fault majority. *)
let majority t = (t.env.Env.n / 2) + 1

let slot t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
      let s =
        {
          seq;
          batch = None;
          acks = Bitset.create t.env.Env.n;
          acked = false;
          notified = false;
          accepted = false;
          created_at = Engine.now t.env.Env.engine;
        }
      in
      Hashtbl.replace t.slots seq s;
      if seq > t.max_seen then t.max_seen <- seq;
      s

let acked_round t ~round =
  match Hashtbl.find_opt t.slots round with
  | Some s -> s.acked
  | None -> false

let advance_exec_upto t =
  let rec go seq =
    match Hashtbl.find_opt t.slots seq with
    | Some s when s.accepted ->
        t.exec_upto <- seq;
        Hashtbl.remove t.slots (seq - 4096);
        go (seq + 1)
    | Some _ | None -> ()
  in
  go (t.exec_upto + 1);
  t.last_progress <- Engine.now t.env.Env.engine

let accept t s =
  if not s.accepted then
    match s.batch with
    | None -> ()
    | Some batch ->
        s.accepted <- true;
        advance_exec_upto t;
        t.env.Env.accept
          {
            Rcc_replica.Acceptance.instance = t.env.Env.instance;
            round = s.seq;
            batch;
            cert = Bitset.to_list s.acks;
            speculative = false;
            history = "";
          }

(* --- primary side -------------------------------------------------------- *)

let on_ack t ~src ~seq =
  if is_primary t then begin
    let s = slot t seq in
    Bitset.add s.acks src |> ignore;
    if (not s.notified) && Bitset.count s.acks >= majority t then begin
      s.notified <- true;
      t.env.Env.broadcast
        (Msg.Commit
           {
             instance = t.env.Env.instance;
             view = t.view;
             seq;
             digest = (match s.batch with Some b -> b.Batch.digest | None -> "");
           });
      accept t s
    end
  end

let propose t batch =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let s = slot t seq in
  s.batch <- Some batch;
  Bitset.add s.acks t.env.Env.self |> ignore;
  let exclude dst = Rcc_replica.Byz.excludes t.env.Env.byz ~round:seq dst in
  t.env.Env.broadcast ~exclude
    (Msg.Pre_prepare { instance = t.env.Env.instance; view = t.view; seq; batch })

let submit_batch t batch = if is_primary t then propose t batch

(* --- backup side ----------------------------------------------------------- *)

let on_propose t ~src ~view ~seq batch =
  if src = t.primary && view = t.view then begin
    let s = slot t seq in
    if Option.is_none s.batch then begin
      s.batch <- Some batch;
      if not s.acked then begin
        s.acked <- true;
        (* Linear: the ack goes only to the primary. *)
        t.env.Env.send ~dst:t.primary
          (Msg.Prepare
             { instance = t.env.Env.instance; view; seq; digest = batch.Batch.digest })
      end
    end
  end

let on_commit_notify t ~src ~view ~seq =
  if src = t.primary && view = t.view then begin
    let s = slot t seq in
    (* Commit-notify implies a majority logged the batch. *)
    Bitset.add s.acks src |> ignore;
    accept t s
  end

(* --- view change -------------------------------------------------------------- *)

let broadcast_view_change t ~round =
  let new_view = t.view + 1 in
  t.vc_sent_for <- max t.vc_sent_for new_view;
  t.env.Env.broadcast
    (Msg.View_change
       {
         instance = t.env.Env.instance;
         new_view;
         blamed = t.primary;
         round;
         last_exec = t.exec_upto;
       });
  if not t.env.Env.unified then begin
    let votes =
      match Hashtbl.find_opt t.vc_votes new_view with
      | Some v -> v
      | None ->
          let v = Bitset.create t.env.Env.n in
          Hashtbl.replace t.vc_votes new_view v;
          v
    in
    Bitset.add votes t.env.Env.self |> ignore
  end

let detect_failure t ~round =
  if t.last_failure_report < round then begin
    t.last_failure_report <- round;
    broadcast_view_change t ~round;
    t.env.Env.report_failure ~round ~blamed:t.primary
  end

let repropose_incomplete t =
  t.next_seq <- max t.next_seq (t.max_seen + 1);
  let reproposals = ref [] in
  for seq = t.exec_upto + 1 to t.max_seen do
    let batch =
      match Hashtbl.find_opt t.slots seq with
      | Some { batch = Some b; _ } -> b
      | Some _ | None -> Batch.null ~round:seq
    in
    reproposals := (seq, batch) :: !reproposals
  done;
  let reproposals = List.rev !reproposals in
  (* Announce the new view even with nothing to re-propose, so backups
     adopt the new primary and accept its future proposals. *)
  t.env.Env.broadcast
    (Msg.New_view { instance = t.env.Env.instance; view = t.view; reproposals });
  List.iter
    (fun (seq, batch) ->
      let s = slot t seq in
      s.batch <- Some batch;
      s.notified <- false;
      Bitset.clear s.acks;
      Bitset.add s.acks t.env.Env.self |> ignore;
      t.env.Env.broadcast
        (Msg.Pre_prepare { instance = t.env.Env.instance; view = t.view; seq; batch }))
    reproposals

let install_view t ~view ~primary =
  t.view <- view;
  t.primary <- primary;
  t.last_failure_report <- -1;
  t.last_progress <- Engine.now t.env.Env.engine;
  Hashtbl.filter_map_inplace
    (fun v votes -> if v <= view then None else Some votes)
    t.vc_votes;
  if is_primary t then repropose_incomplete t

let set_primary t replica ~view = install_view t ~view ~primary:replica

let on_view_change t ~src ~new_view =
  if (not t.env.Env.unified) && new_view > t.view then begin
    let votes =
      match Hashtbl.find_opt t.vc_votes new_view with
      | Some v -> v
      | None ->
          let v = Bitset.create t.env.Env.n in
          Hashtbl.replace t.vc_votes new_view v;
          v
    in
    Bitset.add votes src |> ignore;
    if Bitset.count votes >= majority t then begin
      let primary = new_view mod t.env.Env.n in
      if primary = t.env.Env.self then install_view t ~view:new_view ~primary
    end
  end

let on_new_view t ~src ~view reproposals =
  if view > t.view then begin
    t.view <- view;
    t.primary <- src;
    t.last_failure_report <- -1;
    List.iter (fun (seq, batch) -> on_propose t ~src ~view ~seq batch) reproposals
  end

(* --- recovery ------------------------------------------------------------------- *)

let adopt t ~round batch ~cert =
  let s = slot t round in
  if not s.accepted then begin
    s.batch <- Some batch;
    List.iter (fun r -> Bitset.add s.acks r |> ignore) cert;
    accept t s
  end

let accepted_batch t ~round =
  match Hashtbl.find_opt t.slots round with
  | Some ({ accepted = true; batch = Some b; _ } as s) ->
      Some (b, Bitset.to_list s.acks)
  | Some _ | None -> None

let incomplete_rounds t =
  let acc = ref [] in
  for seq = t.max_seen downto t.exec_upto + 1 do
    match Hashtbl.find_opt t.slots seq with
    | Some s when not s.accepted -> acc := seq :: !acc
    | Some _ -> ()
    | None -> acc := seq :: !acc
  done;
  !acc

(* --- watchdog --------------------------------------------------------------------- *)

let oldest_incomplete t =
  let rec go seq =
    if seq > t.max_seen then None
    else
      match Hashtbl.find_opt t.slots seq with
      | Some s when not s.accepted -> Some (seq, s.created_at)
      | Some _ -> go (seq + 1)
      | None -> Some (seq, t.last_progress)
  in
  go (t.exec_upto + 1)

let rec watchdog t =
  if t.running then begin
    let timeout = t.env.Env.timeout in
    (match oldest_incomplete t with
    | Some (round, since) when Engine.now t.env.Env.engine - since > timeout ->
        detect_failure t ~round
    | Some _ | None -> ());
    Engine.schedule_after t.env.Env.engine (timeout / 2) (fun () -> watchdog t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.schedule_after t.env.Env.engine t.env.Env.timeout (fun () -> watchdog t)
  end

let handle t ~src msg =
  match msg with
  | Msg.Pre_prepare { view; seq; batch; _ } -> on_propose t ~src ~view ~seq batch
  | Msg.Prepare { seq; _ } -> on_ack t ~src ~seq
  | Msg.Commit { view; seq; _ } -> on_commit_notify t ~src ~view ~seq
  | Msg.View_change { new_view; _ } -> on_view_change t ~src ~new_view
  | Msg.New_view { view; reproposals; _ } -> on_new_view t ~src ~view reproposals
  | Msg.Checkpoint _ | Msg.Client_request _ | Msg.Order_request _
  | Msg.Commit_cert _ | Msg.Local_commit _ | Msg.Hs_proposal _ | Msg.Hs_vote _
  | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ ->
      ()

let cost_of (costs : Costs.t) msg =
  match msg with
  | Msg.Pre_prepare { batch; _ } ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
      + Costs.hash_cost costs (Batch.size batch)
  | Msg.New_view { reproposals; _ } ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
      + List.fold_left
          (fun acc (_, b) -> acc + Costs.hash_cost costs (Batch.size b))
          0 reproposals
  | Msg.Prepare _ | Msg.Commit _ | Msg.View_change _ ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
  | Msg.Checkpoint _ | Msg.Client_request _ | Msg.Order_request _
  | Msg.Commit_cert _ | Msg.Local_commit _ | Msg.Hs_proposal _ | Msg.Hs_vote _
  | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ ->
      costs.Costs.worker_msg
