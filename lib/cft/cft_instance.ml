module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Env = Rcc_replica.Instance_env
module SL = Rcc_proto_core.Slot_log
module Quorum = Rcc_proto_core.Quorum
module Held_batches = Rcc_proto_core.Held_batches
module Checkpointing = Rcc_proto_core.Checkpointing

(* Protocol-specific slot state; batch / accepted / created_at live in
   the shared {!Rcc_proto_core.Slot_log}. *)
type ack_state = {
  acks : Quorum.t;  (* primary side *)
  mutable acked : bool;  (* backup side: we logged and acked *)
  mutable notified : bool;  (* primary side: commit-notify sent *)
}

type t = {
  env : Env.t;
  mutable view : int;
  mutable primary : int;
  mutable next_seq : int;
  log : ack_state SL.t;
  vc_votes : Quorum.Tally.t;
  mutable vc_sent_for : int;
  mutable last_failure_report : int;
  mutable in_transfer : bool;  (* new primary syncing in-flight slots *)
  ckpt : Checkpointing.t;
  held : Held_batches.t;
  mutable running : bool;
}

let create env =
  let n = env.Env.n and f = env.Env.f in
  {
    env;
    view = 0;
    primary = env.Env.instance;
    next_seq = 0;
    log =
      SL.create ~tag:(env.Env.self, env.Env.instance) ~engine:env.Env.engine
        ~init:(fun _ ->
          { acks = Quorum.create ~n ~f; acked = false; notified = false })
        ();
    vc_votes = Quorum.Tally.create ~n ~f;
    vc_sent_for = 0;
    last_failure_report = -1;
    in_transfer = false;
    ckpt = Checkpointing.create ~n ~f ~interval:env.Env.checkpoint_interval ();
    held = Held_batches.create ();
    running = false;
  }

let primary t = t.primary
let view t = t.view
let proposed_upto t = t.next_seq - 1
let is_primary t = t.primary = t.env.Env.self
let slot t seq = SL.get t.log seq
let ph (s : ack_state SL.slot) = s.SL.state

let acked_round t ~round =
  match SL.find_opt t.log round with Some s -> (ph s).acked | None -> false

(* --- checkpointing ---------------------------------------------------- *)

(* Crash-fault slots covered by a stable checkpoint are only needed for
   contracts, which the coordinator serves from its own history. The vote
   digest is the batch digest at the boundary round. *)
let maybe_checkpoint t =
  match Checkpointing.due t.ckpt ~exec_upto:(SL.frontier t.log) with
  | Some target ->
      let digest =
        match SL.find_opt t.log target with
        | Some { SL.batch = Some b; _ } -> b.Batch.digest
        | Some _ | None -> ""
      in
      t.env.Env.broadcast
        (Msg.Checkpoint
           { instance = t.env.Env.instance; seq = target; state_digest = digest })
  | None -> ()

let on_checkpoint t ~src seq digest =
  match
    Checkpointing.on_vote t.ckpt ~src ~seq ~digest
      ~exec_upto:(SL.frontier t.log)
  with
  | Some stable ->
      SL.gc_upto t.log (stable - 1);
      t.env.Env.on_stable ~seq:stable
  | None -> ()

let advance_exec_upto t =
  ignore (SL.drain t.log ~accept:(fun s -> s.SL.accepted));
  SL.touch t.log;
  match Checkpointing.try_stabilize t.ckpt ~exec_upto:(SL.frontier t.log) with
  | Some stable ->
      SL.gc_upto t.log (stable - 1);
      t.env.Env.on_stable ~seq:stable
  | None -> ()

let accept t s =
  if not s.SL.accepted then
    match s.SL.batch with
    | None -> ()
    | Some batch ->
        s.SL.accepted <- true;
        advance_exec_upto t;
        t.env.Env.accept
          {
            Rcc_replica.Acceptance.instance = t.env.Env.instance;
            round = s.SL.round;
            batch;
            cert = Quorum.to_list (ph s).acks;
            speculative = false;
            history = "";
          };
        maybe_checkpoint t

(* --- primary side -------------------------------------------------------- *)

let on_ack t ~src ~seq =
  if is_primary t then begin
    let s = slot t seq in
    ignore (Quorum.vote (ph s).acks src);
    if (not (ph s).notified) && Quorum.has_majority (ph s).acks then
      match s.SL.batch with
      | None ->
          (* A majority acked a round we hold no batch for (stale acks
             from a deposed view). An empty digest must not certify, so
             do not notify; the batch arrives via repropose / adopt and a
             later ack completes the round. *)
          ()
      | Some batch ->
          (ph s).notified <- true;
          t.env.Env.broadcast
            (Msg.Commit
               {
                 instance = t.env.Env.instance;
                 view = t.view;
                 seq;
                 digest = batch.Batch.digest;
               });
          accept t s
  end

let propose t batch =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let s = slot t seq in
  s.SL.batch <- Some batch;
  ignore (Quorum.vote (ph s).acks t.env.Env.self);
  let exclude dst = Rcc_replica.Byz.excludes t.env.Env.byz ~round:seq dst in
  t.env.Env.broadcast ~exclude
    (Msg.Pre_prepare { instance = t.env.Env.instance; view = t.view; seq; batch })

let submit_batch t batch =
  if is_primary t then
    if t.in_transfer then
      (* Hold rather than drop: fresh client batches and the liveness
         monitor's one-shot null fills arriving inside the transfer
         window flush once the takeover completes. *)
      Held_batches.hold t.held batch
    else propose t batch

(* --- backup side ----------------------------------------------------------- *)

let on_propose t ~src ~view ~seq batch =
  if src = t.primary && view = t.view then begin
    let s = slot t seq in
    if Option.is_none s.SL.batch then begin
      s.SL.batch <- Some batch;
      if not (ph s).acked then begin
        (ph s).acked <- true;
        (* Linear: the ack goes only to the primary. *)
        t.env.Env.send ~dst:t.primary
          (Msg.Prepare
             { instance = t.env.Env.instance; view; seq; digest = batch.Batch.digest })
      end
    end
  end

let on_commit_notify t ~src ~view ~seq =
  if src = t.primary && view = t.view then begin
    let s = slot t seq in
    (* Commit-notify implies a majority logged the batch. *)
    ignore (Quorum.vote (ph s).acks src);
    accept t s
  end

(* --- view change -------------------------------------------------------------- *)

let broadcast_view_change t ~round =
  let new_view = t.view + 1 in
  t.vc_sent_for <- max t.vc_sent_for new_view;
  t.env.Env.broadcast
    (Msg.View_change
       {
         instance = t.env.Env.instance;
         new_view;
         blamed = t.primary;
         round;
         last_exec = SL.frontier t.log;
         signature = t.env.Env.sign_blame ~view:t.view ~blamed:t.primary ~round;
       });
  if not t.env.Env.unified then
    ignore (Quorum.vote (Quorum.Tally.votes t.vc_votes new_view) t.env.Env.self)

let detect_failure t ~round =
  if t.last_failure_report < round then begin
    t.last_failure_report <- round;
    broadcast_view_change t ~round;
    t.env.Env.report_failure ~round ~blamed:t.primary
  end

(* How long a new primary waits for peers to vouch for in-flight slots
   before re-proposing over them. *)
let recover_grace t = max (Engine.ms 1) (t.env.Env.timeout / 8)

(* Finish taking over: re-propose every slot between the accept frontier
   and the highest round we know about (null-filling holes), then flush
   batches held through the transfer. *)
let finish_repropose t =
  t.in_transfer <- false;
  t.next_seq <- max t.next_seq (SL.max_seen t.log + 1);
  let reproposals = ref [] in
  for seq = SL.max_seen t.log downto SL.frontier t.log + 1 do
    let batch =
      match SL.find_opt t.log seq with
      | Some { SL.batch = Some b; _ } -> b
      | Some _ | None -> Batch.null ~round:seq
    in
    reproposals := (seq, batch) :: !reproposals
  done;
  (* Announce the new view even with nothing to re-propose, so backups
     adopt the new primary and accept its future proposals. *)
  t.env.Env.broadcast
    (Msg.New_view
       { instance = t.env.Env.instance; view = t.view; reproposals = !reproposals });
  List.iter
    (fun (seq, batch) ->
      let s = slot t seq in
      s.SL.batch <- Some batch;
      (ph s).notified <- false;
      Quorum.clear (ph s).acks;
      ignore (Quorum.vote (ph s).acks t.env.Env.self);
      t.env.Env.broadcast
        (Msg.Pre_prepare { instance = t.env.Env.instance; view = t.view; seq; batch }))
    !reproposals;
  Held_batches.flush t.held ~propose:(propose t)

let repropose_incomplete t =
  if t.env.Env.unified then begin
    (* A primary taking over an instance it was cut off from does not
       know how far the deposed primary ran; recover the cluster-wide
       in-flight frontier from peers first (§3.3 state exchange) and
       re-propose only after the grace window, holding fresh submissions
       back meanwhile. *)
    t.in_transfer <- true;
    t.env.Env.broadcast
      (Msg.New_view
         { instance = t.env.Env.instance; view = t.view; reproposals = [] });
    t.env.Env.broadcast
      (Msg.Contract_request
         { round = SL.frontier t.log + 1; instance = t.env.Env.instance });
    let view = t.view in
    Engine.schedule_after t.env.Env.engine (recover_grace t) (fun () ->
        if t.view = view && is_primary t && t.in_transfer then
          finish_repropose t)
  end
  else
    (* Standalone: no contract machinery; re-propose immediately. *)
    finish_repropose t

let install_view t ~view ~primary =
  t.view <- view;
  t.primary <- primary;
  t.in_transfer <- false;
  (* Held batches flush at the end of [finish_repropose] if we lead the
     new view; a backup must not sit on them — its clients' requests are
     the new primary's job. *)
  if primary <> t.env.Env.self then Held_batches.clear t.held;
  t.last_failure_report <- -1;
  SL.touch t.log;
  Quorum.Tally.prune t.vc_votes ~upto:view;
  if is_primary t then repropose_incomplete t

let set_primary t replica ~view = install_view t ~view ~primary:replica

(* Restart-from-disk: hold proposals until a leader change re-establishes
   the in-flight frontier; the lost incarnation may have replicated
   entries past what the disk proves. *)
let resign_primary t = if is_primary t then t.in_transfer <- true

let on_view_change t ~src ~new_view =
  if (not t.env.Env.unified) && new_view > t.view then begin
    let votes = Quorum.Tally.votes t.vc_votes new_view in
    ignore (Quorum.vote votes src);
    if Quorum.has_majority votes then begin
      let primary = new_view mod t.env.Env.n in
      if primary = t.env.Env.self then install_view t ~view:new_view ~primary
    end
  end

let on_new_view t ~src ~view reproposals =
  if view > t.view then begin
    t.view <- view;
    t.primary <- src;
    t.in_transfer <- false;
    Held_batches.clear t.held;
    t.last_failure_report <- -1;
    List.iter (fun (seq, batch) -> on_propose t ~src ~view ~seq batch) reproposals
  end

(* --- recovery ------------------------------------------------------------------- *)

let adopt t ~round batch ~cert =
  let s = slot t round in
  if not s.SL.accepted then begin
    s.SL.batch <- Some batch;
    List.iter (fun r -> ignore (Quorum.vote (ph s).acks r)) cert;
    accept t s
  end

let accepted_batch t ~round =
  match SL.find_opt t.log round with
  | Some ({ SL.accepted = true; batch = Some b; _ } as s) ->
      Some (b, Quorum.to_list (ph s).acks)
  | Some _ | None -> None

let incomplete_rounds t = SL.incomplete_rounds t.log

let fast_forward t ~proof =
  let round = proof.Rcc_storage.Checkpoint_store.seq in
  SL.fast_forward t.log ~round;
  Checkpointing.install t.ckpt proof;
  (* A lagging primary must not re-propose rounds the snapshot covers. *)
  if t.next_seq < round then t.next_seq <- round

let log_stats t = (SL.retained_slots t.log, SL.live_words t.log)
let checkpoint_log t = Checkpointing.log t.ckpt

(* --- watchdog --------------------------------------------------------------------- *)

let rec watchdog t =
  if t.running then begin
    let timeout = t.env.Env.timeout in
    (match SL.oldest_incomplete t.log with
    | Some (round, since) when Engine.now t.env.Env.engine - since > timeout ->
        detect_failure t ~round
    | Some _ | None -> ());
    Engine.schedule_after t.env.Env.engine (timeout / 2) (fun () -> watchdog t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.schedule_after t.env.Env.engine t.env.Env.timeout (fun () -> watchdog t)
  end

let handle t ~src msg =
  match msg with
  | Msg.Pre_prepare { view; seq; batch; _ } -> on_propose t ~src ~view ~seq batch
  | Msg.Prepare { seq; _ } -> on_ack t ~src ~seq
  | Msg.Commit { view; seq; _ } -> on_commit_notify t ~src ~view ~seq
  | Msg.View_change { new_view; _ } -> on_view_change t ~src ~new_view
  | Msg.New_view { view; reproposals; _ } -> on_new_view t ~src ~view reproposals
  | Msg.Checkpoint { seq; state_digest; _ } -> on_checkpoint t ~src seq state_digest
  | Msg.Client_request _ | Msg.Order_request _
  | Msg.Commit_cert _ | Msg.Local_commit _ | Msg.Hs_proposal _ | Msg.Hs_vote _
  | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ | Msg.Snapshot_request _
  | Msg.Snapshot_reply _ ->
      ()

let cost_of (costs : Costs.t) msg =
  match msg with
  | Msg.Pre_prepare { batch; _ } ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
      + Costs.hash_cost costs (Batch.size batch)
  | Msg.New_view { reproposals; _ } ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
      + List.fold_left
          (fun acc (_, b) -> acc + Costs.hash_cost costs (Batch.size b))
          0 reproposals
  | Msg.Prepare _ | Msg.Commit _ | Msg.View_change _ | Msg.Checkpoint _ ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
  | Msg.Client_request _ | Msg.Order_request _
  | Msg.Commit_cert _ | Msg.Local_commit _ | Msg.Hs_proposal _ | Msg.Hs_vote _
  | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ | Msg.Snapshot_request _
  | Msg.Snapshot_reply _ ->
      costs.Costs.worker_msg
