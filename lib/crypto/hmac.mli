(** HMAC-SHA256 (RFC 2104), built on {!Sha256}.

    Used as the core of the simulated digital signatures; verified against
    the RFC 4231 test vectors. *)

val mac : key:string -> string -> string
(** 32-byte binary tag. *)

val mac_list : key:string -> string list -> string
(** Tag over the concatenation of the parts. *)

val verify : key:string -> string -> tag:string -> bool

type keyed
(** Precomputed pad midstates for one key; macs under a [keyed] skip the
    per-call pad construction and pad-block hashing. *)

val derive : key:string -> keyed

val mac_keyed : keyed -> string list -> string
(** [mac_keyed (derive ~key) parts] = [mac_list ~key parts]. *)

val verify_keyed : keyed -> string list -> tag:string -> bool
