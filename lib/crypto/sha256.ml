(* FIPS 180-4 over native [int] arithmetic.

   Words are kept in the low 32 bits of OCaml's 63-bit int and masked
   after additions. This keeps the compression loop allocation-free —
   the original [int32]-based version boxed every intermediate (about
   4.7 minor-heap words per message byte), and hashing dominates the
   simulator's wall-clock profile (batch digests are recomputed at every
   replica). Digests are bit-identical to the boxed implementation;
   verified against the FIPS vectors in the test suite. *)

let mask = 0xffffffff

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
    0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
    0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
    0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
    0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
    0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
    0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
    0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
    0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
    0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
    0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total message bytes *)
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
  }

let[@inline] rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress ctx block off =
  let w = ctx.w in
  for t = 0 to 15 do
    let i = off + (4 * t) in
    Array.unsafe_set w t
      ((Char.code (Bytes.unsafe_get block i) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (i + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (i + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (i + 3)))
  done;
  for t = 16 to 63 do
    let x15 = Array.unsafe_get w (t - 15) in
    let x2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr x15 7 lxor rotr x15 18 lxor (x15 lsr 3) in
    let s1 = rotr x2 17 lxor rotr x2 19 lxor (x2 lsr 10) in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
      land mask)
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    (* [lnot !e] sets the bits above 32 too; [land !g] clears them. *)
    let ch = (!e land !f) lxor (lnot !e land !g) in
    (* [t1]/[t2] are sums of a few 32-bit values, so they fit a native
       int unmasked; masking happens once where they land in [e]/[a]
       (whose bits feed the next round's rotations). *)
    let t1 = !hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = s0 + maj in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let update ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let room = 64 - ctx.buf_len in
    let take = if room < len then room else len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  (* Whole blocks straight from the input, no copy. *)
  let block = Bytes.unsafe_of_string s in
  while len - !pos >= 64 do
    compress ctx block !pos;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let finalize ctx =
  let bits = Int64.of_int (8 * ctx.total) in
  (* Append 0x80, zero-pad to 56 mod 64, append 64-bit length. *)
  Bytes.set ctx.buf ctx.buf_len '\x80';
  ctx.buf_len <- ctx.buf_len + 1;
  if ctx.buf_len > 56 then begin
    Bytes.fill ctx.buf ctx.buf_len (64 - ctx.buf_len) '\x00';
    compress ctx ctx.buf 0;
    ctx.buf_len <- 0
  end;
  Bytes.fill ctx.buf ctx.buf_len (56 - ctx.buf_len) '\x00';
  Rcc_common.Bytes_util.put_u64be ctx.buf 56 bits;
  compress ctx ctx.buf 0;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Rcc_common.Bytes_util.put_u32be out (4 * i) (Int32.of_int ctx.h.(i))
  done;
  Bytes.unsafe_to_string out

(* One-shot digests run through a reused scratch context: small digests
   (40–120 byte certificate/result hashes) are frequent enough in the
   simulator that the per-call context allocation shows up. [finalize]
   leaves the context dirty, so it is re-initialized on entry. The
   simulator is single-threaded; nested use is impossible because these
   functions never call out. *)
let scratch = init ()

let reset ctx =
  ctx.h.(0) <- 0x6a09e667;
  ctx.h.(1) <- 0xbb67ae85;
  ctx.h.(2) <- 0x3c6ef372;
  ctx.h.(3) <- 0xa54ff53a;
  ctx.h.(4) <- 0x510e527f;
  ctx.h.(5) <- 0x9b05688c;
  ctx.h.(6) <- 0x1f83d9ab;
  ctx.h.(7) <- 0x5be0cd19;
  ctx.buf_len <- 0;
  ctx.total <- 0

let digest s =
  reset scratch;
  update scratch s;
  finalize scratch

let digest_list parts =
  reset scratch;
  List.iter (update scratch) parts;
  finalize scratch

(* Midstates let HMAC skip re-hashing its 64-byte pad blocks: the state
   after absorbing one full block is captured once per key and splices
   into the scratch context per call. Digests are byte-identical — the
   midstate is exactly what [update] would have produced. *)
type midstate = int array

let block_midstate block =
  if String.length block <> 64 then
    invalid_arg "Sha256.block_midstate: block must be 64 bytes";
  let ctx = init () in
  update ctx block;
  Array.copy ctx.h

let digest_list_from ms parts =
  Array.blit ms 0 scratch.h 0 8;
  scratch.buf_len <- 0;
  scratch.total <- 64;
  List.iter (update scratch) parts;
  finalize scratch

let hex_digest s = Rcc_common.Bytes_util.hex (digest s)
