type secret_key = { secret : string; public : string; keyed : Hmac.keyed }
type public_key = string
type signature = string

let signature_size = 64

(* Process-local stand-in for the curve equations: verification looks up the
   keyed mac state matching a public key. Signing code never touches this
   table. *)
let registry : (public_key, Hmac.keyed) Hashtbl.t = Hashtbl.create 64

let keygen rng =
  let secret =
    String.concat ""
      [
        Rcc_common.Bytes_util.u64_string (Rcc_common.Rng.next_int64 rng);
        Rcc_common.Bytes_util.u64_string (Rcc_common.Rng.next_int64 rng);
        Rcc_common.Bytes_util.u64_string (Rcc_common.Rng.next_int64 rng);
        Rcc_common.Bytes_util.u64_string (Rcc_common.Rng.next_int64 rng);
      ]
  in
  let public = Sha256.digest ("rcc-pk" ^ secret) in
  let keyed = Hmac.derive ~key:secret in
  Hashtbl.replace registry public keyed;
  ({ secret; public; keyed }, public)

let public_key sk = sk.public

let sign sk msg =
  let t1 = Hmac.mac_keyed sk.keyed [ msg ] in
  let t2 = Hmac.mac_keyed sk.keyed [ t1; msg ] in
  t1 ^ t2

let verify pk msg signature =
  String.length signature = signature_size
  &&
  match Hashtbl.find_opt registry pk with
  | None -> false
  | Some keyed ->
      let t1 = String.sub signature 0 32 in
      let t2 = String.sub signature 32 32 in
      Hmac.verify_keyed keyed [ msg ] ~tag:t1
      && Hmac.verify_keyed keyed [ t1; msg ] ~tag:t2
