type t = {
  n : int;
  clients : int;
  replica_keys : (Signature.secret_key * Signature.public_key) array;
  client_rng_base : Rcc_common.Rng.t;
      (* frozen at the stream position where eager client keygen used to
         start; client [c]'s key occupies draws [4c, 4c+4) from here *)
  client_cache :
    (Rcc_common.Ids.client_id, Signature.secret_key * Signature.public_key)
    Hashtbl.t;
  mac_keys : Cmac.key array; (* upper-triangular pair index *)
}

(* Index of the unordered pair {i, j}, i <> j, in a triangular array. *)
let pair_index n i j =
  let i, j = if i < j then (i, j) else (j, i) in
  assert (i <> j && j < n);
  (i * n) - (i * (i + 1) / 2) + (j - i - 1)

let create ~seed ~n ~clients =
  let rng = Rcc_common.Rng.create seed in
  let replica_keys = Array.init n (fun _ -> Signature.keygen rng) in
  (* Client keys are derived on demand: eagerly materializing 1M keygens
     (SHA-256 + HMAC state each) costs hundreds of MB and seconds of
     startup. Freeze the stream position they would have consumed and
     skip the main generator past it so the MAC keys below — and every
     lazily derived client key — come out bit-identical to the old eager
     draw order. *)
  let client_rng_base = Rcc_common.Rng.copy rng in
  Rcc_common.Rng.skip rng (4 * clients);
  let npairs = n * (n - 1) / 2 in
  let mac_keys =
    Array.init npairs (fun _ ->
        let raw =
          Rcc_common.Bytes_util.u64_string (Rcc_common.Rng.next_int64 rng)
          ^ Rcc_common.Bytes_util.u64_string (Rcc_common.Rng.next_int64 rng)
        in
        Cmac.of_aes_key raw)
  in
  {
    n;
    clients;
    replica_keys;
    client_rng_base;
    client_cache = Hashtbl.create 256;
    mac_keys;
  }

let n t = t.n

let client_key t c =
  match Hashtbl.find_opt t.client_cache c with
  | Some kp -> kp
  | None ->
      if c < 0 || c >= t.clients then
        invalid_arg "Keychain.client_key: client out of range";
      let rng = Rcc_common.Rng.copy t.client_rng_base in
      Rcc_common.Rng.skip rng (4 * c);
      let kp = Signature.keygen rng in
      Hashtbl.replace t.client_cache c kp;
      kp

let replica_secret t r = fst t.replica_keys.(r)
let replica_public t r = snd t.replica_keys.(r)
let client_secret t c = fst (client_key t c)
let client_public t c = snd (client_key t c)
let mac_key t i j = t.mac_keys.(pair_index t.n i j)
let mac t ~src ~dst msg = Cmac.mac (mac_key t src dst) msg
let mac_verify t ~src ~dst msg ~tag = Cmac.verify (mac_key t src dst) msg ~tag
