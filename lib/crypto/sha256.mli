(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for message digests, the blockchain hash links, and as the
    compression function of {!Hmac}. Verified against the FIPS test
    vectors in the test suite. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
(** 32-byte binary digest. The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot digest of a full message. *)

val digest_list : string list -> string
(** Digest of the concatenation, without materializing it. *)

val hex_digest : string -> string
(** Hex-encoded one-shot digest, for display and tests. *)

type midstate
(** Compression state after absorbing one full 64-byte block. *)

val block_midstate : string -> midstate
(** [block_midstate block] precomputes the state after hashing the
    64-byte [block]. Raises [Invalid_argument] on other lengths. *)

val digest_list_from : midstate -> string list -> string
(** [digest_list_from ms parts] = [digest_list (block :: parts)] where
    [ms = block_midstate block], without re-hashing the block. *)
