let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\x00'

let pads key =
  let k = normalize_key key in
  let ipad = Rcc_common.Bytes_util.xor k (String.make block_size '\x36') in
  let opad = Rcc_common.Bytes_util.xor k (String.make block_size '\x5c') in
  (ipad, opad)

(* The pads are full 64-byte blocks, so their compression states can be
   captured once per key — a keyed mac then skips two block hashes and
   the pad construction entirely. *)
type keyed = { imid : Sha256.midstate; omid : Sha256.midstate }

let derive ~key =
  let ipad, opad = pads key in
  { imid = Sha256.block_midstate ipad; omid = Sha256.block_midstate opad }

let mac_keyed k parts =
  let inner = Sha256.digest_list_from k.imid parts in
  Sha256.digest_list_from k.omid [ inner ]

let mac_list ~key parts = mac_keyed (derive ~key) parts

let mac ~key msg = mac_list ~key [ msg ]

(* Constant-time-style comparison; timing channels are irrelevant in the
   simulator but the discipline costs nothing. *)
let equal_ct expected tag =
  String.length expected = String.length tag
  &&
  let acc = ref 0 in
  String.iteri
    (fun i c -> acc := !acc lor (Char.code c lxor Char.code tag.[i]))
    expected;
  !acc = 0

let verify_keyed k parts ~tag = equal_ct (mac_keyed k parts) tag

let verify ~key msg ~tag = equal_ct (mac ~key msg) tag
