module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Bitset = Rcc_common.Bitset
module Env = Rcc_replica.Instance_env
module SL = Rcc_proto_core.Slot_log
module Quorum = Rcc_proto_core.Quorum
module Checkpointing = Rcc_proto_core.Checkpointing

let skip_phase = 9

(* Protocol-specific slot state; batch / digest / accepted (= decided)
   live in the shared {!Rcc_proto_core.Slot_log}. *)
type hs = {
  votes : Quorum.t array;  (* leader side, phases 0-2 *)
  mutable phase_sent : int;  (* leader: highest phase broadcast *)
  mutable voted_upto : int;  (* replica: highest phase voted *)
  skip_votes : Quorum.t;
  mutable skip_voted : bool;
  mutable stall_since : Engine.time;  (* frontier arrival time *)
}

type t = {
  env : Env.t;
  mutable next_propose : int;  (* next seq in our residue class *)
  log : hs SL.t;  (* frontier = next_decide - 1: the execution frontier *)
  blacklist : Bitset.t;
  mutable last_skip : Engine.time;  (* most recent successful skip *)
  ckpt : Checkpointing.t;
  mutable running : bool;
}

let create env =
  let n = env.Env.n and f = env.Env.f in
  {
    env;
    next_propose = env.Env.self;
    log =
      SL.create ~tag:(env.Env.self, env.Env.instance) ~engine:env.Env.engine
        ~init:(fun _ ->
          {
            votes = Array.init 3 (fun _ -> Quorum.create ~n ~f);
            phase_sent = -1;
            voted_upto = -1;
            skip_votes = Quorum.create ~n ~f;
            skip_voted = false;
            stall_since = Engine.now env.Env.engine;
          })
        ();
    blacklist = Bitset.create env.Env.n;
    last_skip = min_int / 2;
    ckpt = Checkpointing.create ~n ~f ~interval:env.Env.checkpoint_interval ();
    running = false;
  }

let leader_of t seq = seq mod t.env.Env.n
let next_decide t = SL.frontier t.log + 1
let decided_upto t = SL.frontier t.log
let blacklisted t r = Bitset.mem t.blacklist r

(* The instance interface's notion of primary: ourselves (every replica
   leads its own residue class). *)
let primary t = t.env.Env.self
let view _ = 0
let slot t seq = SL.get t.log seq
let hs (s : hs SL.slot) = s.SL.state

(* Consecutive failures accelerate the pacemaker: shortly after a
   successful skip, a stalled frontier is re-suspected after timeout/8
   instead of a full timeout (PBFT's growing-view-change analogue, in the
   other direction: we expect a batch of dead leaders at once). *)
let stall_threshold t =
  if Engine.now t.env.Env.engine - t.last_skip < 2 * t.env.Env.timeout then
    t.env.Env.timeout / 8
  else t.env.Env.timeout

let decide t s null =
  if not s.SL.accepted then begin
    s.SL.accepted <- true;
    let batch =
      match (null, s.SL.batch) with
      | false, Some b -> b
      | true, _ | false, None -> Batch.null ~round:s.SL.round
    in
    t.env.Env.accept
      {
        Rcc_replica.Acceptance.instance = 0;
        round = s.SL.round;
        batch;
        cert = Quorum.to_list (hs s).votes.(2);
        speculative = false;
        history = "";
      }
  end

(* --- checkpointing ---------------------------------------------------- *)

(* Decided slots covered by a stable checkpoint are only needed for
   contracts, which the coordinator serves from its own history. The vote
   digest is the decided batch digest at the boundary round. *)
let advance_ckpt t =
  (match Checkpointing.try_stabilize t.ckpt ~exec_upto:(SL.frontier t.log) with
  | Some stable ->
      SL.gc_upto t.log (stable - 1);
      t.env.Env.on_stable ~seq:stable
  | None -> ());
  match Checkpointing.due t.ckpt ~exec_upto:(SL.frontier t.log) with
  | Some target ->
      let digest =
        match SL.find_opt t.log target with
        | Some { SL.digest = Some d; _ } -> d
        | Some _ | None -> ""
      in
      t.env.Env.broadcast
        (Msg.Checkpoint
           { instance = t.env.Env.instance; seq = target; state_digest = digest })
  | None -> ()

let on_checkpoint t ~src seq digest =
  match
    Checkpointing.on_vote t.ckpt ~src ~seq ~digest
      ~exec_upto:(SL.frontier t.log)
  with
  | Some stable ->
      SL.gc_upto t.log (stable - 1);
      t.env.Env.on_stable ~seq:stable
  | None -> ()

(* Advance the frontier; blacklisted leaders' pending rounds are skip-voted
   without waiting for the timeout. *)
let rec advance_frontier t =
  if SL.drain t.log ~accept:(fun s -> s.SL.accepted) then advance_ckpt t;
  let nd = next_decide t in
  if nd <= SL.max_seen t.log then begin
    let s = slot t nd in
    (hs s).stall_since <- min (hs s).stall_since (Engine.now t.env.Env.engine);
    maybe_auto_skip t s
  end

and send_skip_vote t s =
  if not (hs s).skip_voted then begin
    (hs s).skip_voted <- true;
    ignore (Quorum.vote (hs s).skip_votes t.env.Env.self);
    t.env.Env.broadcast ~sign:true
      (Msg.Hs_vote { view = 0; phase = skip_phase; seq = s.SL.round; digest = "" });
    check_skip t s
  end

and check_skip t s =
  if (not s.SL.accepted) && Quorum.has_all_but_f (hs s).skip_votes then begin
    Bitset.add t.blacklist (leader_of t s.SL.round) |> ignore;
    t.last_skip <- Engine.now t.env.Env.engine;
    decide t s true;
    advance_frontier t;
    eager_skip t
  end

and maybe_auto_skip t s =
  if (not s.SL.accepted) && Bitset.mem t.blacklist (leader_of t s.SL.round)
  then send_skip_vote t s

(* Skip-vote every known round of a blacklisted leader at once, rather than
   paying a round trip per round as each reaches the frontier. *)
and eager_skip t =
  let horizon = min (SL.max_seen t.log) (next_decide t + 2048) in
  for seq = next_decide t to horizon do
    if Bitset.mem t.blacklist (leader_of t seq) then begin
      let s = slot t seq in
      if not s.SL.accepted then send_skip_vote t s
    end
  done

(* --- leader side ------------------------------------------------------ *)

let broadcast_phase t s phase =
  if (hs s).phase_sent < phase then begin
    (hs s).phase_sent <- phase;
    let batch = if phase = 0 then s.SL.batch else None in
    let digest = Option.value ~default:"" s.SL.digest in
    t.env.Env.broadcast ~sign:true
      (Msg.Hs_proposal { view = 0; phase; seq = s.SL.round; batch; digest });
    if phase = 3 then begin
      (* The leader's own decide: it does not receive its broadcasts. *)
      decide t s false;
      advance_frontier t
    end
  end

let on_vote t ~src ~phase ~seq =
  if phase = skip_phase then begin
    let s = slot t seq in
    ignore (Quorum.vote (hs s).skip_votes src);
    (* Join a skip that another replica initiated if we too see the round
       stalled: its leader is blacklisted, or it is our frontier round and
       has been stuck for at least half the timeout. *)
    let stalled =
      Bitset.mem t.blacklist (leader_of t seq)
      || (seq = next_decide t
         && Engine.now t.env.Env.engine - (hs s).stall_since
            > stall_threshold t / 2)
    in
    if (not s.SL.accepted) && seq >= next_decide t && stalled then
      send_skip_vote t s;
    check_skip t s
  end
  else if phase >= 0 && phase < 3 then begin
    let s = slot t seq in
    if leader_of t seq = t.env.Env.self && not s.SL.accepted then begin
      ignore (Quorum.vote (hs s).votes.(phase) src);
      if Quorum.has_all_but_f (hs s).votes.(phase) && (hs s).phase_sent = phase
      then broadcast_phase t s (phase + 1)
    end
  end

let submit_batch t batch =
  let seq = t.next_propose in
  t.next_propose <- seq + t.env.Env.n;
  let s = slot t seq in
  s.SL.batch <- Some batch;
  s.SL.digest <- Some batch.Batch.digest;
  (* Leader votes for itself in every phase. *)
  Array.iter (fun v -> ignore (Quorum.vote v t.env.Env.self)) (hs s).votes;
  broadcast_phase t s 0

(* --- replica side ----------------------------------------------------- *)

let on_proposal t ~src ~phase ~seq batch digest =
  if src = leader_of t seq && phase >= 0 && phase <= 3 then begin
    let s = slot t seq in
    (match batch with
    | Some b when Option.is_none s.SL.batch ->
        s.SL.batch <- Some b;
        s.SL.digest <- Some b.Batch.digest
    | Some _ | None -> ());
    if Option.is_none s.SL.digest then s.SL.digest <- Some digest;
    if phase < 3 then begin
      if (hs s).voted_upto < phase then begin
        (hs s).voted_upto <- phase;
        t.env.Env.send ~sign:true ~dst:src
          (Msg.Hs_vote
             {
               view = 0;
               phase;
               seq;
               digest = Option.value ~default:"" s.SL.digest;
             })
      end
    end
    else begin
      decide t s false;
      advance_frontier t
    end
  end

(* --- pacemaker -------------------------------------------------------- *)

let rec watchdog t =
  if t.running then begin
    (if next_decide t <= SL.max_seen t.log then
       let s = slot t (next_decide t) in
       if
         (not s.SL.accepted)
         && Engine.now t.env.Env.engine - (hs s).stall_since
            > stall_threshold t
       then send_skip_vote t s);
    eager_skip t;
    Engine.schedule_after t.env.Env.engine
      (max 1 (t.env.Env.timeout / 8))
      (fun () -> watchdog t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.schedule_after t.env.Env.engine t.env.Env.timeout (fun () -> watchdog t)
  end

(* --- instance interface ----------------------------------------------- *)

let set_primary _ _ ~view:_ = ()

let adopt t ~round batch ~cert =
  let s = slot t round in
  if not s.SL.accepted then begin
    s.SL.batch <- Some batch;
    List.iter (fun r -> ignore (Quorum.vote (hs s).votes.(2) r)) cert;
    decide t s false;
    advance_frontier t
  end

(* HotStuff has its own skip-based pacemaker; opt out of the RCC
   null-batch heartbeat. *)
let proposed_upto _ = max_int

let accepted_batch t ~round =
  match SL.find_opt t.log round with
  | Some { SL.accepted = true; batch = Some b; _ } -> Some (b, [])
  | Some _ | None -> None

let incomplete_rounds t = SL.incomplete_rounds t.log

(* Rotating leadership: proposals derive from the vote chain, not a
   volatile per-primary sequence counter, so a restarted replica has
   nothing stale to resign. *)
let resign_primary _ = ()

let fast_forward t ~proof =
  let round = proof.Rcc_storage.Checkpoint_store.seq in
  SL.fast_forward t.log ~round;
  Checkpointing.install t.ckpt proof;
  (* Resume proposing in our residue class at or above the boundary. *)
  if t.next_propose < round then begin
    let n = t.env.Env.n in
    let residue = (((t.env.Env.self - round) mod n) + n) mod n in
    t.next_propose <- round + residue
  end

let log_stats t = (SL.retained_slots t.log, SL.live_words t.log)
let checkpoint_log t = Checkpointing.log t.ckpt

let handle t ~src msg =
  match msg with
  | Msg.Hs_proposal { phase; seq; batch; digest; _ } ->
      on_proposal t ~src ~phase ~seq batch digest
  | Msg.Hs_vote { phase; seq; _ } -> on_vote t ~src ~phase ~seq
  | Msg.Checkpoint { seq; state_digest; _ } -> on_checkpoint t ~src seq state_digest
  | Msg.Pre_prepare _ | Msg.Prepare _ | Msg.Commit _
  | Msg.View_change _ | Msg.New_view _ | Msg.Order_request _
  | Msg.Commit_cert _ | Msg.Local_commit _ | Msg.Client_request _
  | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ | Msg.Snapshot_request _
  | Msg.Snapshot_reply _ ->
      ()

let cost_of (costs : Costs.t) msg =
  match msg with
  | Msg.Hs_proposal { phase; batch; _ } ->
      (* Verify the leader's signature, plus (from PRE-COMMIT onward) the
         carried quorum certificate. Matching the paper's optimistic
         HotStuff setup — no threshold signatures — certificate checking
         costs a few individual verifications rather than n - f. *)
      let qc = if phase > 0 then 3 else 0 in
      costs.Costs.worker_msg + ((1 + qc) * costs.Costs.sig_verify)
      + (match batch with
        | Some b -> Costs.hash_cost costs (Batch.size b)
        | None -> 0)
  | Msg.Hs_vote _ -> costs.Costs.worker_msg + costs.Costs.sig_verify
  | Msg.Checkpoint _ -> costs.Costs.worker_msg + costs.Costs.mac_verify
  | Msg.Pre_prepare _ | Msg.Prepare _ | Msg.Commit _
  | Msg.View_change _ | Msg.New_view _ | Msg.Order_request _
  | Msg.Commit_cert _ | Msg.Local_commit _ | Msg.Client_request _
  | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ | Msg.Snapshot_request _
  | Msg.Snapshot_reply _ ->
      costs.Costs.worker_msg
