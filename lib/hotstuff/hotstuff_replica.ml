module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Bitset = Rcc_common.Bitset
module Env = Rcc_replica.Instance_env

let skip_phase = 9

type slot = {
  seq : int;
  mutable batch : Batch.t option;
  mutable digest : string;
  votes : Bitset.t array;  (* leader side, phases 0-2 *)
  mutable phase_sent : int;  (* leader: highest phase broadcast *)
  mutable voted_upto : int;  (* replica: highest phase voted *)
  mutable decided : bool;
  skip_votes : Bitset.t;
  mutable skip_voted : bool;
  mutable stall_since : Engine.time;  (* frontier arrival time *)
}

type t = {
  env : Env.t;
  mutable next_propose : int;  (* next seq in our residue class *)
  slots : (int, slot) Hashtbl.t;
  mutable next_decide : int;  (* execution frontier *)
  mutable max_seen : int;
  blacklist : Bitset.t;
  mutable last_skip : Engine.time;  (* most recent successful skip *)
  mutable running : bool;
}

let create env =
  {
    env;
    next_propose = env.Env.self;
    slots = Hashtbl.create 512;
    next_decide = 0;
    max_seen = -1;
    blacklist = Bitset.create env.Env.n;
    last_skip = min_int / 2;
    running = false;
  }

let leader_of t seq = seq mod t.env.Env.n
let decided_upto t = t.next_decide - 1
let blacklisted t r = Bitset.mem t.blacklist r

(* The instance interface's notion of primary: ourselves (every replica
   leads its own residue class). *)
let primary t = t.env.Env.self
let view _ = 0

let slot t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
      let s =
        {
          seq;
          batch = None;
          digest = "";
          votes = Array.init 3 (fun _ -> Bitset.create t.env.Env.n);
          phase_sent = -1;
          voted_upto = -1;
          decided = false;
          skip_votes = Bitset.create t.env.Env.n;
          skip_voted = false;
          stall_since = Engine.now t.env.Env.engine;
        }
      in
      Hashtbl.replace t.slots seq s;
      if seq > t.max_seen then t.max_seen <- seq;
      s

let quorum t = t.env.Env.n - t.env.Env.f

(* Consecutive failures accelerate the pacemaker: shortly after a
   successful skip, a stalled frontier is re-suspected after timeout/8
   instead of a full timeout (PBFT's growing-view-change analogue, in the
   other direction: we expect a batch of dead leaders at once). *)
let stall_threshold t =
  if Engine.now t.env.Env.engine - t.last_skip < 2 * t.env.Env.timeout then
    t.env.Env.timeout / 8
  else t.env.Env.timeout

let decide t s null =
  if not s.decided then begin
    s.decided <- true;
    let batch =
      match (null, s.batch) with
      | false, Some b -> b
      | true, _ | false, None -> Batch.null ~round:s.seq
    in
    t.env.Env.accept
      {
        Rcc_replica.Acceptance.instance = 0;
        round = s.seq;
        batch;
        cert = Bitset.to_list s.votes.(2);
        speculative = false;
        history = "";
      }
  end

(* Advance the frontier; blacklisted leaders' pending rounds are skip-voted
   without waiting for the timeout. *)
let rec advance_frontier t =
  match Hashtbl.find_opt t.slots t.next_decide with
  | Some s when s.decided ->
      t.next_decide <- t.next_decide + 1;
      advance_frontier t
  | Some s ->
      s.stall_since <- min s.stall_since (Engine.now t.env.Env.engine);
      maybe_auto_skip t s
  | None ->
      if t.next_decide <= t.max_seen then begin
        let s = slot t t.next_decide in
        maybe_auto_skip t s
      end

and send_skip_vote t s =
  if not s.skip_voted then begin
    s.skip_voted <- true;
    Bitset.add s.skip_votes t.env.Env.self |> ignore;
    t.env.Env.broadcast ~sign:true
      (Msg.Hs_vote { view = 0; phase = skip_phase; seq = s.seq; digest = "" });
    check_skip t s
  end

and check_skip t s =
  if (not s.decided) && Bitset.count s.skip_votes >= quorum t then begin
    Bitset.add t.blacklist (leader_of t s.seq) |> ignore;
    t.last_skip <- Engine.now t.env.Env.engine;
    decide t s true;
    advance_frontier t;
    eager_skip t
  end

and maybe_auto_skip t s =
  if (not s.decided) && Bitset.mem t.blacklist (leader_of t s.seq) then
    send_skip_vote t s

(* Skip-vote every known round of a blacklisted leader at once, rather than
   paying a round trip per round as each reaches the frontier. *)
and eager_skip t =
  let horizon = min t.max_seen (t.next_decide + 2048) in
  for seq = t.next_decide to horizon do
    if Bitset.mem t.blacklist (leader_of t seq) then begin
      let s = slot t seq in
      if not s.decided then send_skip_vote t s
    end
  done

(* --- leader side ------------------------------------------------------ *)

let broadcast_phase t s phase =
  if s.phase_sent < phase then begin
    s.phase_sent <- phase;
    let batch = if phase = 0 then s.batch else None in
    t.env.Env.broadcast ~sign:true
      (Msg.Hs_proposal { view = 0; phase; seq = s.seq; batch; digest = s.digest });
    if phase = 3 then begin
      (* The leader's own decide: it does not receive its broadcasts. *)
      decide t s false;
      advance_frontier t
    end
  end

let on_vote t ~src ~phase ~seq =
  if phase = skip_phase then begin
    let s = slot t seq in
    Bitset.add s.skip_votes src |> ignore;
    (* Join a skip that another replica initiated if we too see the round
       stalled: its leader is blacklisted, or it is our frontier round and
       has been stuck for at least half the timeout. *)
    let stalled =
      Bitset.mem t.blacklist (leader_of t seq)
      || (seq = t.next_decide
         && Engine.now t.env.Env.engine - s.stall_since > stall_threshold t / 2)
    in
    if (not s.decided) && seq >= t.next_decide && stalled then
      send_skip_vote t s;
    check_skip t s
  end
  else if phase >= 0 && phase < 3 then begin
    let s = slot t seq in
    if leader_of t seq = t.env.Env.self && not s.decided then begin
      Bitset.add s.votes.(phase) src |> ignore;
      if Bitset.count s.votes.(phase) >= quorum t && s.phase_sent = phase then
        broadcast_phase t s (phase + 1)
    end
  end

let submit_batch t batch =
  let seq = t.next_propose in
  t.next_propose <- seq + t.env.Env.n;
  let s = slot t seq in
  s.batch <- Some batch;
  s.digest <- batch.Batch.digest;
  (* Leader votes for itself in every phase. *)
  Array.iter (fun v -> Bitset.add v t.env.Env.self |> ignore) s.votes;
  broadcast_phase t s 0

(* --- replica side ----------------------------------------------------- *)

let on_proposal t ~src ~phase ~seq batch digest =
  if src = leader_of t seq && phase >= 0 && phase <= 3 then begin
    let s = slot t seq in
    (match batch with
    | Some b when Option.is_none s.batch ->
        s.batch <- Some b;
        s.digest <- b.Batch.digest
    | Some _ | None -> ());
    if s.digest = "" then s.digest <- digest;
    if phase < 3 then begin
      if s.voted_upto < phase then begin
        s.voted_upto <- phase;
        t.env.Env.send ~sign:true ~dst:src
          (Msg.Hs_vote { view = 0; phase; seq; digest = s.digest })
      end
    end
    else begin
      decide t s false;
      advance_frontier t
    end
  end

(* --- pacemaker -------------------------------------------------------- *)

let rec watchdog t =
  if t.running then begin
    (if t.next_decide <= t.max_seen then
       let s = slot t t.next_decide in
       if
         (not s.decided)
         && Engine.now t.env.Env.engine - s.stall_since > stall_threshold t
       then send_skip_vote t s);
    eager_skip t;
    Engine.schedule_after t.env.Env.engine
      (max 1 (t.env.Env.timeout / 8))
      (fun () -> watchdog t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.schedule_after t.env.Env.engine t.env.Env.timeout (fun () -> watchdog t)
  end

(* --- instance interface ----------------------------------------------- *)

let set_primary _ _ ~view:_ = ()

let adopt t ~round batch ~cert =
  let s = slot t round in
  if not s.decided then begin
    s.batch <- Some batch;
    List.iter (fun r -> Bitset.add s.votes.(2) r |> ignore) cert;
    decide t s false;
    advance_frontier t
  end

(* HotStuff has its own skip-based pacemaker; opt out of the RCC
   null-batch heartbeat. *)
let proposed_upto _ = max_int

let accepted_batch t ~round =
  match Hashtbl.find_opt t.slots round with
  | Some { decided = true; batch = Some b; _ } as slot_opt ->
      ignore slot_opt;
      Some (b, [])
  | Some _ | None -> None

let incomplete_rounds t =
  let acc = ref [] in
  for seq = t.max_seen downto t.next_decide do
    match Hashtbl.find_opt t.slots seq with
    | Some s when not s.decided -> acc := seq :: !acc
    | Some _ -> ()
    | None -> acc := seq :: !acc
  done;
  !acc

let handle t ~src msg =
  match msg with
  | Msg.Hs_proposal { phase; seq; batch; digest; _ } ->
      on_proposal t ~src ~phase ~seq batch digest
  | Msg.Hs_vote { phase; seq; _ } -> on_vote t ~src ~phase ~seq
  | Msg.Pre_prepare _ | Msg.Prepare _ | Msg.Commit _ | Msg.Checkpoint _
  | Msg.View_change _ | Msg.New_view _ | Msg.Order_request _
  | Msg.Commit_cert _ | Msg.Local_commit _ | Msg.Client_request _
  | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ ->
      ()

let cost_of (costs : Costs.t) msg =
  match msg with
  | Msg.Hs_proposal { phase; batch; _ } ->
      (* Verify the leader's signature, plus (from PRE-COMMIT onward) the
         carried quorum certificate. Matching the paper's optimistic
         HotStuff setup — no threshold signatures — certificate checking
         costs a few individual verifications rather than n - f. *)
      let qc = if phase > 0 then 3 else 0 in
      costs.Costs.worker_msg + ((1 + qc) * costs.Costs.sig_verify)
      + (match batch with
        | Some b -> Costs.hash_cost costs (Batch.size b)
        | None -> 0)
  | Msg.Hs_vote _ -> costs.Costs.worker_msg + costs.Costs.sig_verify
  | Msg.Pre_prepare _ | Msg.Prepare _ | Msg.Commit _ | Msg.Checkpoint _
  | Msg.View_change _ | Msg.New_view _ | Msg.Order_request _
  | Msg.Commit_cert _ | Msg.Local_commit _ | Msg.Client_request _
  | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ ->
      costs.Costs.worker_msg
