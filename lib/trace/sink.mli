(** Trace serialization: JSONL and Chrome [trace_event] JSON.

    Chrome output loads directly in Perfetto ({:https://ui.perfetto.dev})
    or chrome://tracing: each simulated node is a process, protocol
    instances and CPU/NIC tracks are threads, {!Event.Span}s render as
    duration slices and everything else as instant markers. Timestamps
    are microseconds in Chrome output (the format's convention) and
    simulated nanoseconds in JSONL. *)

val jsonl_line : Event.t -> string
(** One event as a single-line JSON object (no trailing newline). *)

val jsonl : Recorder.t -> string
(** All surviving events, one JSON object per line, oldest first. *)

val chrome : Recorder.t -> string
(** The full Chrome [trace_event] document (JSON object format). *)

val write_jsonl : Recorder.t -> path:string -> unit
val write_chrome : Recorder.t -> path:string -> unit
