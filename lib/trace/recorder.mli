(** Bounded ring buffer of trace events, with pinning of rare ones.

    Recording is O(1) and allocation-free (beyond the event itself).
    High-volume payloads (network, spans, per-slot events) go to a ring:
    once [capacity] of them have been recorded the oldest are silently
    overwritten, keeping the trailing window. Rare protocol-level
    payloads (primary changes, blames, violations, the state-transfer
    family) are pinned in a separate bounded store that never wraps, so
    post-mortem dumps and assertions still see them even when the ring
    has turned over many times; should the pinned store ever fill, later
    rare events degrade to ring recording instead of being dropped.
    {!iter} and {!to_list} merge both streams back into time order. *)

type t

val default_capacity : int
(** 65536 ring events. *)

val pinned_capacity : int
(** 16384 pinned events. *)

val create : ?capacity:int -> unit -> t

val record : t -> Event.t -> unit

val capacity : t -> int

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring wrap-around: ring recordings minus capacity
    (pinned events are never dropped). *)

val stored : t -> int
(** Events currently held, ring window plus pinned. *)

val pinned : t -> int
(** Rare events currently pinned. *)

val iter : t -> (Event.t -> unit) -> unit
(** Surviving events in time order (ring window merged with pinned). *)

val to_list : t -> Event.t list
