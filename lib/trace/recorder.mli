(** Bounded ring buffer of trace events.

    Recording is O(1) and allocation-free (beyond the event itself);
    once [capacity] events have been recorded the oldest are silently
    overwritten, keeping the trailing window. *)

type t

val default_capacity : int
(** 65536 events. *)

val create : ?capacity:int -> unit -> t

val record : t -> Event.t -> unit

val capacity : t -> int

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring wrap-around: [max 0 (recorded - capacity)]. *)

val stored : t -> int
(** Events currently held: [min recorded capacity]. *)

val iter : t -> (Event.t -> unit) -> unit
(** Oldest surviving event first. *)

val to_list : t -> Event.t list
