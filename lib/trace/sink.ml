(* Trace serialization. Two formats, both hand-rolled (the repo carries
   no JSON library): line-oriented JSONL for ad-hoc grepping, and the
   Chrome trace_event array format that Perfetto / chrome://tracing load
   directly. Timestamps are simulated nanoseconds in JSONL and
   microseconds (the trace_event convention) in Chrome output. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Payload-specific fields as JSON members, shared by both sinks. *)
let payload_args (p : Event.payload) =
  match p with
  | Event.Net_send { kind; size; src; dst } | Event.Net_deliver { kind; size; src; dst }
    ->
      Printf.sprintf "\"kind\":\"%s\",\"size\":%d,\"src\":%d,\"dst\":%d"
        (escape kind) size src dst
  | Event.Span { track; dur } ->
      Printf.sprintf "\"track\":\"%s\",\"dur_ns\":%d" (escape track) dur
  | Event.Slot_propose { round } -> Printf.sprintf "\"round\":%d" round
  | Event.Slot_accept { round; batch; txns } | Event.Slot_exec { round; batch; txns }
    ->
      Printf.sprintf "\"round\":%d,\"batch\":%d,\"txns\":%d" round batch txns
  | Event.Exec_group { group; members; txns; rounds } ->
      Printf.sprintf "\"group\":%d,\"members\":%d,\"txns\":%d,\"rounds\":%d"
        group members txns rounds
  | Event.Exec_conflict { group; keys } ->
      Printf.sprintf "\"group\":%d,\"keys\":%d" group keys
  | Event.Primary_change { primary; view } ->
      Printf.sprintf "\"primary\":%d,\"view\":%d" primary view
  | Event.Kmal { culprit } -> Printf.sprintf "\"culprit\":%d" culprit
  | Event.Blame { round; blamed; accuser } ->
      Printf.sprintf "\"round\":%d,\"blamed\":%d,\"accuser\":%d" round blamed
        accuser
  | Event.Contract_sent { round; entries; bytes } ->
      Printf.sprintf "\"round\":%d,\"entries\":%d,\"bytes\":%d" round entries
        bytes
  | Event.Contract_adopted { round; entries } ->
      Printf.sprintf "\"round\":%d,\"entries\":%d" round entries
  | Event.Checkpoint_stable { upto } -> Printf.sprintf "\"upto\":%d" upto
  | Event.Collusion -> ""
  | Event.Violation { name } -> Printf.sprintf "\"name\":\"%s\"" (escape name)
  | Event.St_gap { behind; target } ->
      Printf.sprintf "\"behind\":%d,\"target\":%d" behind target
  | Event.St_request { seq; fetch } ->
      Printf.sprintf "\"seq\":%d,\"fetch\":%b" seq fetch
  | Event.St_served { seq; bytes; dst } ->
      Printf.sprintf "\"seq\":%d,\"bytes\":%d,\"dst\":%d" seq bytes dst
  | Event.St_verified { seq } -> Printf.sprintf "\"seq\":%d" seq
  | Event.St_installed { seq; rounds; bytes } ->
      Printf.sprintf "\"seq\":%d,\"rounds\":%d,\"bytes\":%d" seq rounds bytes
  | Event.St_rejected { seq; donor; reason } ->
      Printf.sprintf "\"seq\":%d,\"donor\":%d,\"reason\":\"%s\"" seq donor
        (escape reason)
  | Event.Rollback_begin { frontier; from } ->
      Printf.sprintf "\"frontier\":%d,\"from\":%d" frontier from
  | Event.Rollback_round { round; txns } ->
      Printf.sprintf "\"round\":%d,\"txns\":%d" round txns
  | Event.Rollback_complete { frontier; rounds; txns } ->
      Printf.sprintf "\"frontier\":%d,\"rounds\":%d,\"txns\":%d" frontier
        rounds txns
  | Event.Journal_flush { records; bytes; durable } ->
      Printf.sprintf "\"records\":%d,\"bytes\":%d,\"durable\":%d" records
        bytes durable
  | Event.Journal_snapshot { seq; bytes } ->
      Printf.sprintf "\"seq\":%d,\"bytes\":%d" seq bytes
  | Event.Journal_fault { kind } ->
      Printf.sprintf "\"kind\":\"%s\"" (escape kind)
  | Event.Journal_truncated { durable; dropped } ->
      Printf.sprintf "\"durable\":%d,\"dropped\":%d" durable dropped
  | Event.Journal_replay_begin { seq } -> Printf.sprintf "\"seq\":%d" seq
  | Event.Journal_replay_round { round; txns } ->
      Printf.sprintf "\"round\":%d,\"txns\":%d" round txns
  | Event.Journal_replay_complete { frontier; rounds; txns } ->
      Printf.sprintf "\"frontier\":%d,\"rounds\":%d,\"txns\":%d" frontier
        rounds txns

(* --- JSONL --------------------------------------------------------------- *)

let jsonl_line (ev : Event.t) =
  let args = payload_args ev.payload in
  Printf.sprintf "{\"ts\":%d,\"replica\":%d,\"instance\":%d,\"ev\":\"%s\"%s%s}"
    ev.at ev.replica ev.instance
    (Event.name ev.payload)
    (if args = "" then "" else ",")
    args

let jsonl recorder =
  let buf = Buffer.create 4096 in
  Recorder.iter recorder (fun ev ->
      Buffer.add_string buf (jsonl_line ev);
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* --- Chrome trace_event -------------------------------------------------- *)

(* pid = node (replica or client machine); events with no node land in a
   synthetic "global" process. tid 0 carries instance-less events, tid
   x+1 carries instance x, and CPU/NIC spans get their own named thread
   per track so Perfetto renders them as busy timelines. *)
let global_pid = 9_999
let pid_of (ev : Event.t) = if ev.replica < 0 then global_pid else ev.replica

let us_of_ns ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e3)

let chrome recorder =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  (* (pid, track) -> tid for span threads; plain events use tid 0 / x+1. *)
  let span_tids : (int * string, int) Hashtbl.t = Hashtbl.create 32 in
  let next_span_tid = ref 100 in
  let named_threads = ref [] in
  let name_thread pid tid label =
    named_threads := (pid, tid, label) :: !named_threads
  in
  let pids = Hashtbl.create 32 in
  let note_pid pid =
    if not (Hashtbl.mem pids pid) then Hashtbl.replace pids pid ()
  in
  let instance_tids = Hashtbl.create 32 in
  Recorder.iter recorder (fun ev ->
      let pid = pid_of ev in
      note_pid pid;
      let name = Event.name ev.payload in
      let args = payload_args ev.payload in
      let args = if args = "" then "{}" else "{" ^ args ^ "}" in
      match ev.payload with
      | Event.Span { track; dur } ->
          let tid =
            match Hashtbl.find_opt span_tids (pid, track) with
            | Some tid -> tid
            | None ->
                let tid = !next_span_tid in
                incr next_span_tid;
                Hashtbl.replace span_tids (pid, track) tid;
                name_thread pid tid track;
                tid
          in
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":%s}"
               (escape track) (us_of_ns ev.at) (us_of_ns dur) pid tid args)
      | _ ->
          let tid = ev.instance + 1 in
          if not (Hashtbl.mem instance_tids (pid, tid)) then begin
            Hashtbl.replace instance_tids (pid, tid) ();
            name_thread pid tid
              (if tid = 0 then "events"
               else Printf.sprintf "instance %d" ev.instance)
          end;
          let scope =
            match ev.payload with Event.Violation _ -> "g" | _ -> "t"
          in
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":%s}"
               name scope (us_of_ns ev.at) pid tid args));
  Hashtbl.iter
    (fun pid () ->
      let label = if pid = global_pid then "global" else Printf.sprintf "node %d" pid in
      emit
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid label))
    pids;
  List.iter
    (fun (pid, tid, label) ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           pid tid (escape label)))
    (List.rev !named_threads);
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- files --------------------------------------------------------------- *)

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_jsonl recorder ~path = write_file ~path (jsonl recorder)
let write_chrome recorder ~path = write_file ~path (chrome recorder)
