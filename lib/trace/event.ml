(* One structured trace event. Events are plain values so recording is a
   single array store; everything that needs formatting lives in Sink. *)

type payload =
  | Net_send of { kind : string; size : int; src : int; dst : int }
  | Net_deliver of { kind : string; size : int; src : int; dst : int }
  | Span of { track : string; dur : int }
      (* busy interval on a CPU/NIC server; [at] is the start time *)
  | Slot_propose of { round : int }
  | Slot_accept of { round : int; batch : int; txns : int }
  | Slot_exec of { round : int; batch : int; txns : int }
  (* Parallel-execution family: the conflict scheduler dispatched a
     dependency group to the execute pool ([Exec_group]); groups glued
     together by key overlaps also stamp the conflict size
     ([Exec_conflict]). Group ids are per-replica monotonic, so Chrome
     traces correlate a group's dispatch with its pool span. *)
  | Exec_group of { group : int; members : int; txns : int; rounds : int }
  | Exec_conflict of { group : int; keys : int }
  | Primary_change of { primary : int; view : int }
  | Kmal of { culprit : int }
  | Blame of { round : int; blamed : int; accuser : int }
  | Contract_sent of { round : int; entries : int; bytes : int }
  | Contract_adopted of { round : int; entries : int }
  | Checkpoint_stable of { upto : int }
  | Collusion
  | Violation of { name : string }
  (* State-transfer family: a lagging replica detecting and closing a gap
     via snapshot install (events carry the snapshot boundary [seq]). *)
  | St_gap of { behind : int; target : int }
  | St_request of { seq : int; fetch : bool }
  | St_served of { seq : int; bytes : int; dst : int }
  | St_verified of { seq : int }
  | St_installed of { seq : int; rounds : int; bytes : int }
  | St_rejected of { seq : int; donor : int; reason : string }
  (* Speculative-rollback family: a view change exposed a conflicting
     ordering, so uncommitted speculative rounds above the attested
     frontier [frontier] are unwound — one [Rollback_round] per undone
     ledger round — and re-executed as the new view re-orders them. *)
  | Rollback_begin of { frontier : int; from : int }
  | Rollback_round of { round : int; txns : int }
  | Rollback_complete of { frontier : int; rounds : int; txns : int }
  (* Durable-journal family: group-commit flushes to the simulated disk,
     checkpoint snapshot writes, injected storage faults, and
     restart-from-disk recovery (scan, per-round replay, completion). *)
  | Journal_flush of { records : int; bytes : int; durable : int }
  | Journal_snapshot of { seq : int; bytes : int }
  | Journal_fault of { kind : string }
  | Journal_truncated of { durable : int; dropped : int }
  | Journal_replay_begin of { seq : int }
  | Journal_replay_round of { round : int; txns : int }
  | Journal_replay_complete of { frontier : int; rounds : int; txns : int }

type t = {
  at : int;  (* simulated ns *)
  replica : int;  (* -1 when not tied to a replica *)
  instance : int;  (* -1 when not tied to an instance *)
  payload : payload;
}

let name = function
  | Net_send _ -> "net_send"
  | Net_deliver _ -> "net_deliver"
  | Span _ -> "span"
  | Slot_propose _ -> "slot_propose"
  | Slot_accept _ -> "slot_accept"
  | Slot_exec _ -> "slot_exec"
  | Exec_group _ -> "exec_group"
  | Exec_conflict _ -> "exec_conflict"
  | Primary_change _ -> "primary_change"
  | Kmal _ -> "kmal"
  | Blame _ -> "blame"
  | Contract_sent _ -> "contract_sent"
  | Contract_adopted _ -> "contract_adopted"
  | Checkpoint_stable _ -> "checkpoint_stable"
  | Collusion -> "collusion"
  | Violation _ -> "violation"
  | St_gap _ -> "st_gap"
  | St_request _ -> "st_request"
  | St_served _ -> "st_served"
  | St_verified _ -> "st_verified"
  | St_installed _ -> "st_installed"
  | St_rejected _ -> "st_rejected"
  | Rollback_begin _ -> "rollback_begin"
  | Rollback_round _ -> "rollback_round"
  | Rollback_complete _ -> "rollback_complete"
  | Journal_flush _ -> "journal_flush"
  | Journal_snapshot _ -> "journal_snapshot"
  | Journal_fault _ -> "journal_fault"
  | Journal_truncated _ -> "journal_truncated"
  | Journal_replay_begin _ -> "journal_replay_begin"
  | Journal_replay_round _ -> "journal_replay_round"
  | Journal_replay_complete _ -> "journal_replay_complete"
