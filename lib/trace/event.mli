(** Typed trace events.

    Every event is stamped with the simulated time it happened at plus
    the replica and protocol instance it belongs to ([-1] = none, e.g. a
    client-machine NIC span or a cluster-wide violation marker). The
    payloads cover the seams the rest of the system already flows
    through: the network ({!Net_send}/{!Net_deliver}), the virtual CPU
    servers ({!Span}), the shared slot log ({!Slot_propose}), the
    acceptance path ({!Slot_accept}), round execution ({!Slot_exec}),
    and the RCC coordinator (primary replacement, kmal, blames,
    contracts, collusion). *)

type payload =
  | Net_send of { kind : string; size : int; src : int; dst : int }
  | Net_deliver of { kind : string; size : int; src : int; dst : int }
  | Span of { track : string; dur : int }
      (** busy interval on a CPU/NIC server; [at] is the start time *)
  | Slot_propose of { round : int }
      (** a round opened in the instance's slot log *)
  | Slot_accept of { round : int; batch : int; txns : int }
      (** the instance reported the round accepted upward *)
  | Slot_exec of { round : int; batch : int; txns : int }
      (** the execute stage ran the round's batch for this instance *)
  | Exec_group of { group : int; members : int; txns : int; rounds : int }
      (** parallel exec: dependency group [group] dispatched to the
          execute pool with [members] batches spanning [rounds] rounds *)
  | Exec_conflict of { group : int; keys : int }
      (** the conflict scan glued [group] together over [keys]
          overlapping read/write key relations *)
  | Primary_change of { primary : int; view : int }
  | Kmal of { culprit : int }  (** replica marked known-malicious *)
  | Blame of { round : int; blamed : int; accuser : int }
  | Contract_sent of { round : int; entries : int; bytes : int }
  | Contract_adopted of { round : int; entries : int }
  | Checkpoint_stable of { upto : int }
      (** slots [<= upto] collected under a stable checkpoint *)
  | Collusion  (** coordinator's collusion detector fired *)
  | Violation of { name : string }  (** chaos invariant violation *)
  | St_gap of { behind : int; target : int }
      (** gap detected: this replica's frontier [behind] vs. the
          cluster's attested snapshot boundary [target] *)
  | St_request of { seq : int; fetch : bool }
      (** snapshot requested: an offer probe ([fetch = false]) or the
          full fetch from the chosen donor *)
  | St_served of { seq : int; bytes : int; dst : int }
      (** this replica served a full snapshot to [dst] *)
  | St_verified of { seq : int }
      (** fetched snapshot passed digest + chain verification *)
  | St_installed of { seq : int; rounds : int; bytes : int }
      (** snapshot installed wholesale, skipping [rounds] rounds of
          consensus replay for [bytes] transferred *)
  | St_rejected of { seq : int; donor : int; reason : string }
      (** snapshot from [donor] rejected; recovery proceeds via the next
          candidate donor *)
  | Rollback_begin of { frontier : int; from : int }
      (** a view change exposed a conflicting ordering: speculative
          rounds [frontier .. from - 1] are about to be unwound *)
  | Rollback_round of { round : int; txns : int }
      (** one speculative ledger round undone ([txns] effects reverted) *)
  | Rollback_complete of { frontier : int; rounds : int; txns : int }
      (** rollback finished; execution resumes at [frontier] *)
  | Journal_flush of { records : int; bytes : int; durable : int }
      (** a group-commit flush made [records] journal records durable;
          [durable] is the highest round the disk now proves *)
  | Journal_snapshot of { seq : int; bytes : int }
      (** a checkpoint snapshot covering rounds [< seq] was written to a
          disk snapshot slot *)
  | Journal_fault of { kind : string }
      (** the fault-injecting disk model corrupted a write
          ([kind] = torn | corrupt | lost) *)
  | Journal_truncated of { durable : int; dropped : int }
      (** recovery hit a torn/corrupt record: the journal is truncated to
          the last valid record ([durable] rounds provable, [dropped]
          bytes discarded) *)
  | Journal_replay_begin of { seq : int }
      (** restart-from-disk recovery started from snapshot boundary
          [seq] (0 = no usable snapshot) *)
  | Journal_replay_round of { round : int; txns : int }
      (** one journaled round re-executed during recovery *)
  | Journal_replay_complete of { frontier : int; rounds : int; txns : int }
      (** recovery finished: the replica's frontier is [frontier] after
          replaying [rounds] journaled rounds; anything beyond is state
          transfer's job *)

type t = { at : int; replica : int; instance : int; payload : payload }

val name : payload -> string
(** Stable snake_case tag, used as the JSON event name by both sinks. *)
