(* Bounded ring of events, plus a pinned side-store for rare ones.

   Recording is one array store and two integer updates, so a tracer can
   stay attached to hot paths; when the ring wraps, the oldest events are
   overwritten and only the trailing window survives — which is exactly
   what a post-mortem dump wants for the high-volume traffic (spans,
   network sends, per-slot events).

   Rare protocol-level events — primary changes, blames, violations, the
   state-transfer family — are different: a 2 s chaos run records tens of
   thousands of events per simulated second, so a snapshot install at 70%
   of the run would be long evicted by the end. Those events are routed
   to a separate bounded store that never wraps; dumps merge the two
   streams back into time order. *)

type t = {
  capacity : int;
  events : Event.t array;
  mutable next : int;  (* total ring events ever recorded *)
  pinned : Event.t array;  (* rare events, never overwritten *)
  mutable pinned_n : int;
}

let dummy =
  { Event.at = 0; replica = -1; instance = -1; payload = Event.Collusion }

let default_capacity = 65_536

(* Generously above what any scenario emits; if a run somehow exceeds it,
   overflow degrades to ring recording rather than being lost outright. *)
let pinned_capacity = 16_384

(* High-volume payloads stay in the ring; everything else is worth
   pinning. The match is total so a new payload kind must pick a side. *)
let is_rare = function
  | Event.Net_send _ | Event.Net_deliver _ | Event.Span _
  | Event.Slot_propose _ | Event.Slot_accept _ | Event.Slot_exec _
  | Event.Exec_group _ | Event.Exec_conflict _
  | Event.Journal_flush _ | Event.Journal_replay_round _ ->
      false
  | Event.Primary_change _ | Event.Kmal _ | Event.Blame _
  | Event.Contract_sent _ | Event.Contract_adopted _
  | Event.Checkpoint_stable _ | Event.Collusion | Event.Violation _
  | Event.St_gap _ | Event.St_request _ | Event.St_served _
  | Event.St_verified _ | Event.St_installed _ | Event.St_rejected _
  | Event.Rollback_begin _ | Event.Rollback_round _
  | Event.Rollback_complete _ | Event.Journal_snapshot _
  | Event.Journal_fault _ | Event.Journal_truncated _
  | Event.Journal_replay_begin _ | Event.Journal_replay_complete _ ->
      true

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  {
    capacity;
    events = Array.make capacity dummy;
    next = 0;
    pinned = Array.make pinned_capacity dummy;
    pinned_n = 0;
  }

let record t ev =
  if is_rare ev.Event.payload && t.pinned_n < pinned_capacity then begin
    t.pinned.(t.pinned_n) <- ev;
    t.pinned_n <- t.pinned_n + 1
  end
  else begin
    t.events.(t.next mod t.capacity) <- ev;
    t.next <- t.next + 1
  end

let capacity t = t.capacity
let recorded t = t.next + t.pinned_n
let dropped t = max 0 (t.next - t.capacity)
let stored t = min t.next t.capacity + t.pinned_n
let pinned t = t.pinned_n

(* Merge the surviving ring window and the pinned store by timestamp.
   Both are recorded in nondecreasing [at] order, so this is a linear
   two-pointer merge; ring events win ties to preserve the relative
   order of same-instant recordings as closely as possible. *)
let iter t f =
  let n = min t.next t.capacity in
  let first = t.next - n in
  let ring i = t.events.((first + i) mod t.capacity) in
  let ri = ref 0 and pi = ref 0 in
  while !ri < n || !pi < t.pinned_n do
    if
      !pi >= t.pinned_n
      || (!ri < n && (ring !ri).Event.at <= t.pinned.(!pi).Event.at)
    then begin
      f (ring !ri);
      incr ri
    end
    else begin
      f t.pinned.(!pi);
      incr pi
    end
  done

let to_list t =
  let acc = ref [] in
  iter t (fun ev -> acc := ev :: !acc);
  List.rev !acc
