(* Bounded ring of events. Recording is one array store and two integer
   updates, so a tracer can stay attached to hot paths; when the ring
   wraps, the oldest events are overwritten and only the trailing window
   survives — which is exactly what a post-mortem dump wants. *)

type t = {
  capacity : int;
  events : Event.t array;
  mutable next : int;  (* total events ever recorded *)
}

let dummy =
  { Event.at = 0; replica = -1; instance = -1; payload = Event.Collusion }

let default_capacity = 65_536

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  { capacity; events = Array.make capacity dummy; next = 0 }

let record t ev =
  t.events.(t.next mod t.capacity) <- ev;
  t.next <- t.next + 1

let capacity t = t.capacity
let recorded t = t.next
let dropped t = max 0 (t.next - t.capacity)
let stored t = min t.next t.capacity

let iter t f =
  let n = stored t in
  let first = t.next - n in
  for i = first to t.next - 1 do
    f t.events.(i mod t.capacity)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun ev -> acc := ev :: !acc);
  List.rev !acc
