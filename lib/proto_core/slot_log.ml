module Engine = Rcc_sim.Engine
module Batch = Rcc_messages.Batch

type 'a slot = {
  round : int;
  mutable batch : Batch.t option;
  mutable digest : string option;
  mutable accepted : bool;
  created_at : Engine.time;
  state : 'a;
}

(* Rounds are dense, so the live window [base, max_seen] lives in a
   power-of-two ring indexed by [round land (capacity - 1)] — the hottest
   lookups (every prepare/commit/accept touches its slot) cost one array
   read instead of a generic Hashtbl probe, and [find_opt] returns the
   stored option box without allocating. Rounds below [base] (stale
   traffic resurrecting a collected slot) fall back to a side table so
   behaviour is identical to the old Hashtbl-backed log. *)
type 'a t = {
  engine : Engine.t;
  init : int -> 'a;
  replica : int;  (* trace identity; -1 when untagged *)
  instance : int;
  mutable ring : 'a slot option array;  (* length is a power of two *)
  mutable base : int;  (* lowest round the ring may hold *)
  stale : (int, 'a slot) Hashtbl.t;  (* resurrected rounds below base *)
  mutable max_seen : int;
  mutable frontier : int;
  mutable last_progress : Engine.time;
}

let create ?(tag = (-1, -1)) ~engine ~init () =
  let replica, instance = tag in
  {
    engine;
    init;
    replica;
    instance;
    ring = Array.make 1024 None;
    base = 0;
    stale = Hashtbl.create 16;
    max_seen = -1;
    frontier = -1;
    last_progress = 0;
  }

let trace t payload =
  Engine.trace t.engine ~replica:t.replica ~instance:t.instance payload

let[@inline] idx t round = round land (Array.length t.ring - 1)

(* Double the ring until [round] fits in the [base .. base+capacity)
   window. Ring positions depend on the capacity mask, so live slots are
   rehomed. *)
let grow t round =
  let cap = ref (Array.length t.ring) in
  while round - t.base >= !cap do
    cap := !cap * 2
  done;
  let ring' = Array.make !cap None in
  let mask' = !cap - 1 in
  for r = t.base to t.max_seen do
    ring'.(r land mask') <- t.ring.(idx t r)
  done;
  t.ring <- ring'

let find_opt t round =
  if round >= t.base then
    if round > t.max_seen then None else t.ring.(idx t round)
  else Hashtbl.find_opt t.stale round

let new_slot t round =
  {
    round;
    batch = None;
    digest = None;
    accepted = false;
    created_at = Engine.now t.engine;
    state = t.init round;
  }

let get t round =
  if round >= t.base then begin
    if round - t.base >= Array.length t.ring then grow t round;
    match t.ring.(idx t round) with
    | Some s -> s
    | None ->
        let s = new_slot t round in
        t.ring.(idx t round) <- Some s;
        if round > t.max_seen then t.max_seen <- round;
        if Engine.tracing t.engine then
          trace t (Rcc_trace.Event.Slot_propose { round });
        s
  end
  else
    match Hashtbl.find_opt t.stale round with
    | Some s -> s
    | None ->
        let s = new_slot t round in
        Hashtbl.replace t.stale round s;
        if Engine.tracing t.engine then
          trace t (Rcc_trace.Event.Slot_propose { round });
        s

let remove t round =
  if round >= t.base then begin
    if round <= t.max_seen then t.ring.(idx t round) <- None
  end
  else Hashtbl.remove t.stale round

let max_seen t = t.max_seen
let frontier t = t.frontier
let last_progress t = t.last_progress
let touch t = t.last_progress <- Engine.now t.engine

let drain t ~accept =
  let advanced = ref false in
  let continue = ref true in
  while !continue do
    match find_opt t (t.frontier + 1) with
    | Some s when accept s ->
        t.frontier <- t.frontier + 1;
        advanced := true
    | Some _ | None -> continue := false
  done;
  if !advanced then touch t;
  !advanced

let gc_upto t upto =
  (* Never collect past the accept frontier: a slot above it is not
     covered by any stable checkpoint yet, and dropping it would make
     [incomplete_rounds]/[oldest_incomplete] re-report the round as
     missing — re-arming stall escalation against an innocent primary. *)
  let upto = if upto > t.frontier then t.frontier else upto in
  if Engine.tracing t.engine then
    trace t (Rcc_trace.Event.Checkpoint_stable { upto });
  if upto >= t.base then begin
    let hi = if upto < t.max_seen then upto else t.max_seen in
    for r = t.base to hi do
      t.ring.(idx t r) <- None
    done;
    t.base <- upto + 1
  end;
  if Hashtbl.length t.stale > 0 then
    Hashtbl.filter_map_inplace
      (fun round s -> if round <= upto then None else Some s)
      t.stale

(* Jump the whole log past an installed snapshot: rounds [< round] are
   covered by the transferred state, so they are collected AND the accept
   frontier moves to [round - 1] — unlike [gc_upto], which never advances
   the frontier. Slots at or above [round] (live traffic that arrived
   while this replica lagged) are kept; the ring window invariant holds
   because every live slot below the new base is cleared first. *)
let fast_forward t ~round =
  let upto = round - 1 in
  if upto > t.frontier then begin
    if upto >= t.base then begin
      let hi = if upto < t.max_seen then upto else t.max_seen in
      for r = t.base to hi do
        t.ring.(idx t r) <- None
      done;
      t.base <- upto + 1
    end;
    if Hashtbl.length t.stale > 0 then
      Hashtbl.filter_map_inplace
        (fun r s -> if r <= upto then None else Some s)
        t.stale;
    t.frontier <- upto;
    if t.max_seen < upto then t.max_seen <- upto;
    touch t
  end

(* Speculative rollback: clear every slot at or above [round] and retreat
   both watermarks so the new view's authoritative orders rebuild them
   from scratch. The inverse of [drain] progress; rounds below [round]
   (attested at the caller by a commit certificate or stable checkpoint)
   are untouched. The stale table only holds rounds below [base], which
   the caller guarantees is at most [round], so it needs no sweep. *)
let unwind t ~round =
  if round <= t.max_seen then begin
    let lo = if round > t.base then round else t.base in
    for r = lo to t.max_seen do
      t.ring.(idx t r) <- None
    done;
    t.max_seen <- round - 1;
    if t.frontier >= round then t.frontier <- round - 1;
    touch t
  end

let retained_slots t =
  let n = ref (Hashtbl.length t.stale) in
  Array.iter (function Some _ -> incr n | None -> ()) t.ring;
  !n

(* Coarse live-memory estimate for reports: ring boxes plus, per live
   slot, its record fields and the dominant payload (the batch's txn
   array at 2 words each). Not Obj.reachable_words — an O(retained)
   arithmetic walk with no sharing surprises. *)
let live_words t =
  let words = ref (Array.length t.ring + (4 * Hashtbl.length t.stale)) in
  let slot (s : 'a slot) =
    words :=
      !words + 16
      + (match s.batch with
        | Some b -> 8 + (2 * Array.length b.Batch.txns)
        | None -> 0)
  in
  Array.iter (function Some s -> slot s | None -> ()) t.ring;
  Hashtbl.iter (fun _ s -> slot s) t.stale;
  !words

let incomplete_rounds t =
  let acc = ref [] in
  for round = t.max_seen downto t.frontier + 1 do
    match find_opt t round with
    | Some s when not s.accepted -> acc := round :: !acc
    | Some _ -> ()
    | None -> acc := round :: !acc
  done;
  !acc

let oldest_incomplete t =
  let rec go round =
    if round > t.max_seen then None
    else
      match find_opt t round with
      | Some s when not s.accepted -> Some (round, s.created_at)
      | Some _ -> go (round + 1)
      | None -> Some (round, t.last_progress)
  in
  go (t.frontier + 1)
