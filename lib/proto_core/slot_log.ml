module Engine = Rcc_sim.Engine
module Batch = Rcc_messages.Batch

type 'a slot = {
  round : int;
  mutable batch : Batch.t option;
  mutable digest : string option;
  mutable accepted : bool;
  created_at : Engine.time;
  state : 'a;
}

type 'a t = {
  engine : Engine.t;
  init : int -> 'a;
  replica : int;  (* trace identity; -1 when untagged *)
  instance : int;
  slots : (int, 'a slot) Hashtbl.t;
  mutable max_seen : int;
  mutable frontier : int;
  mutable last_progress : Engine.time;
}

let create ?(tag = (-1, -1)) ~engine ~init () =
  let replica, instance = tag in
  {
    engine;
    init;
    replica;
    instance;
    slots = Hashtbl.create 512;
    max_seen = -1;
    frontier = -1;
    last_progress = 0;
  }

let trace t payload =
  Engine.trace t.engine ~replica:t.replica ~instance:t.instance payload

let find_opt t round = Hashtbl.find_opt t.slots round

let get t round =
  match Hashtbl.find_opt t.slots round with
  | Some s -> s
  | None ->
      let s =
        {
          round;
          batch = None;
          digest = None;
          accepted = false;
          created_at = Engine.now t.engine;
          state = t.init round;
        }
      in
      Hashtbl.replace t.slots round s;
      if round > t.max_seen then t.max_seen <- round;
      if Engine.tracing t.engine then
        trace t (Rcc_trace.Event.Slot_propose { round });
      s

let remove t round = Hashtbl.remove t.slots round
let max_seen t = t.max_seen
let frontier t = t.frontier
let last_progress t = t.last_progress
let touch t = t.last_progress <- Engine.now t.engine

let drain t ~accept =
  let advanced = ref false in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.slots (t.frontier + 1) with
    | Some s when accept s ->
        t.frontier <- t.frontier + 1;
        advanced := true
    | Some _ | None -> continue := false
  done;
  if !advanced then touch t;
  !advanced

let gc_upto t upto =
  (* Never collect past the accept frontier: a slot above it is not
     covered by any stable checkpoint yet, and dropping it would make
     [incomplete_rounds]/[oldest_incomplete] re-report the round as
     missing — re-arming stall escalation against an innocent primary. *)
  let upto = min upto t.frontier in
  if Engine.tracing t.engine then
    trace t (Rcc_trace.Event.Checkpoint_stable { upto });
  Hashtbl.filter_map_inplace
    (fun round s -> if round <= upto then None else Some s)
    t.slots

let incomplete_rounds t =
  let acc = ref [] in
  for round = t.max_seen downto t.frontier + 1 do
    match Hashtbl.find_opt t.slots round with
    | Some s when not s.accepted -> acc := round :: !acc
    | Some _ -> ()
    | None -> acc := round :: !acc
  done;
  !acc

let oldest_incomplete t =
  let rec go round =
    if round > t.max_seen then None
    else
      match Hashtbl.find_opt t.slots round with
      | Some s when not s.accepted -> Some (round, s.created_at)
      | Some _ -> go (round + 1)
      | None -> Some (round, t.last_progress)
  in
  go (t.frontier + 1)
