(** The round-indexed slot store every protocol instance keeps.

    A slot carries the machinery common to all instances — the proposed
    batch, its digest, the accepted flag, and the creation time the
    watchdog blames from — plus a protocol-specific ['a state] (PBFT's
    prepare/commit quorums, CFT's ack quorum, Zyzzyva's chained history,
    HotStuff's phase votes), built by the [init] callback on first touch.

    The log tracks two watermarks. [max_seen] is the highest round with
    any activity. [frontier] is the accept frontier: every round
    [<= frontier] has been accepted (PBFT's [exec_upto]; Zyzzyva's
    [next_accept - 1]; HotStuff's [next_decide - 1]). [drain] advances it
    in strict round order, which is what gives RCC its per-instance
    gap-free prefix (requirement R4, §3.3). *)

type 'a slot = {
  round : Rcc_common.Ids.round;
  mutable batch : Rcc_messages.Batch.t option;
  mutable digest : string option;
  mutable accepted : bool;
  created_at : Rcc_sim.Engine.time;
  state : 'a;  (** protocol-specific per-slot state *)
}

type 'a t

val create :
  ?tag:int * int ->
  engine:Rcc_sim.Engine.t ->
  init:(Rcc_common.Ids.round -> 'a) ->
  unit ->
  'a t
(** [tag] is the [(replica, instance)] identity stamped on the log's
    trace events (slot-propose on first touch, checkpoint collection);
    default [(-1, -1)]. *)

val get : 'a t -> Rcc_common.Ids.round -> 'a slot
(** The slot for [round], created (and [max_seen] bumped) on first use. *)

val find_opt : 'a t -> Rcc_common.Ids.round -> 'a slot option
val remove : 'a t -> Rcc_common.Ids.round -> unit

val max_seen : 'a t -> Rcc_common.Ids.round
(** Highest round with any activity; -1 initially. *)

val frontier : 'a t -> Rcc_common.Ids.round
(** Highest round of the gap-free accepted prefix; -1 initially. *)

val drain : 'a t -> accept:('a slot -> bool) -> bool
(** Walk slots upward from [frontier + 1] while [accept] grants each one,
    advancing the frontier past every granted slot. [accept] may perform
    the protocol's accept side effects (report upward, chain a history
    digest) before granting. Stops at the first missing or refused slot;
    [touch]es the log iff the frontier moved. Returns whether it moved. *)

val incomplete_rounds : 'a t -> Rcc_common.Ids.round list
(** Rounds above the frontier not yet accepted (missing slots included),
    oldest first — the [Instance_intf.S.incomplete_rounds] contract. *)

val oldest_incomplete :
  'a t -> (Rcc_common.Ids.round * Rcc_sim.Engine.time) option
(** The oldest round blocking the frontier, with the time it has been
    stalled since: a slot with partial evidence blames from its creation
    time; a round never heard of at all (replica kept in the dark) falls
    back to [last_progress]. *)

val last_progress : 'a t -> Rcc_sim.Engine.time

val touch : 'a t -> unit
(** Record progress now (accept, view install) for watchdog blaming. *)

val gc_upto : 'a t -> Rcc_common.Ids.round -> unit
(** Drop every slot [<= min upto (frontier t)] (rounds covered by a
    stable checkpoint). The clamp means a caller can never collect
    not-yet-accepted rounds, which would otherwise be re-reported as
    incomplete by {!incomplete_rounds}/{!oldest_incomplete}. *)

val fast_forward : 'a t -> round:Rcc_common.Ids.round -> unit
(** Jump past an installed snapshot: collect every slot [< round] and
    move the accept frontier to [round - 1] (the transferred state covers
    those rounds, so nothing below is incomplete anymore). Slots at or
    above [round] survive. No-op when the frontier is already there. *)

val unwind : 'a t -> round:Rcc_common.Ids.round -> unit
(** Speculative rollback: clear every slot at or above [round] and move
    both [max_seen] and the accept frontier back to [round - 1]. The
    caller must only unwind above its garbage-collection boundary
    ([round >= base]); rounds below [round] are untouched. No-op when
    nothing at or above [round] exists. *)

val retained_slots : 'a t -> int
(** Live slots currently held (ring plus stale table) — the quantity
    checkpoint GC bounds. *)

val live_words : 'a t -> int
(** Coarse estimate of heap words retained by the log (slot records plus
    batch payloads), for {!Rcc_runtime.Report} memory visibility. *)
