module Batch = Rcc_messages.Batch

type t = { mutable held : Batch.t list (* newest first *) }

let create () = { held = [] }
let hold t batch = t.held <- batch :: t.held
let is_empty t = t.held = []
let pending t = List.length t.held
let clear t = t.held <- []

let flush t ~propose =
  let batches = List.rev t.held in
  t.held <- [];
  List.iter propose batches
