module Store = Rcc_storage.Checkpoint_store

type t = {
  interval : int;
  votes : Quorum.Tally.t;  (* seq -> attesters *)
  digests : (int, string) Hashtbl.t;  (* first digest seen per seq *)
  log : Store.t;
  mutable stable : int;
  mutable provable : int;  (* highest seq with f+1 votes *)
}

let create ~n ~f ~interval () =
  {
    interval;
    votes = Quorum.Tally.create ~n ~f;
    digests = Hashtbl.create 8;
    log = Store.create ();
    stable = -1;
    provable = -1;
  }

let stable t = t.stable
let provable_stable t = t.provable
let log t = t.log

let due t ~exec_upto =
  if t.interval <= 0 then None
  else
    let target = exec_upto - (exec_upto mod t.interval) in
    if target > t.stable && target > 0 then Some target else None

let try_stabilize t ~exec_upto =
  if t.provable > t.stable && t.provable <= exec_upto then begin
    t.stable <- t.provable;
    (match Quorum.Tally.find_opt t.votes t.stable with
    | Some votes ->
        Store.record t.log
          {
            Store.seq = t.stable;
            state_digest =
              Option.value ~default:"" (Hashtbl.find_opt t.digests t.stable);
            attesters = Quorum.to_list votes;
          }
    | None -> ());
    Quorum.Tally.prune t.votes ~upto:(t.stable - 1);
    Hashtbl.filter_map_inplace
      (fun seq d -> if seq <= t.stable - 1 then None else Some d)
      t.digests;
    Some t.stable
  end
  else None

(* Adopt a checkpoint this replica just INSTALLED (state transfer) rather
   than voted to stability: record the transferred proof and drop every
   vote and digest the snapshot already covers. Unlike [try_stabilize],
   the boundary needs no local votes — its authority is the f+1-attested
   snapshot the caller verified. *)
let install t (proof : Store.proof) =
  if proof.Store.seq > t.stable then begin
    t.stable <- proof.Store.seq;
    if t.provable < t.stable then t.provable <- t.stable;
    Store.record t.log proof;
    Quorum.Tally.prune t.votes ~upto:(t.stable - 1);
    Hashtbl.filter_map_inplace
      (fun seq d -> if seq <= t.stable - 1 then None else Some d)
      t.digests
  end

let on_vote t ~src ~seq ~digest ~exec_upto =
  if seq > t.stable then begin
    if not (Hashtbl.mem t.digests seq) then Hashtbl.replace t.digests seq digest;
    let votes = Quorum.Tally.votes t.votes seq in
    (* A checkpoint only becomes stable locally once this replica holds
       the state it covers (seq <= exec_upto); a replica kept in the dark
       must keep its incomplete slots so the watchdog can blame the
       primary instead of silently skipping the round. *)
    if Quorum.vote votes src && Quorum.has_weak votes then begin
      if seq > t.provable then t.provable <- seq;
      try_stabilize t ~exec_upto
    end
    else None
  end
  else None
