(** Hold-during-transition discipline for client batches.

    A primary must not propose while its instance is mid-recovery (view
    change, leader transfer, contract grace window) — but dropping the
    batch instead is worse: the liveness monitor's null fills arrive
    through the same path and are only sent once, so a swallowed fill
    stalls the instance forever. Every instance therefore holds batches
    submitted during a transition and flushes them, in submission order,
    once it (re-)installs as primary; a replica that installs as backup
    clears its held batches instead — its clients' requests are the new
    primary's job. *)

type t

val create : unit -> t

val hold : t -> Rcc_messages.Batch.t -> unit

val flush : t -> propose:(Rcc_messages.Batch.t -> unit) -> unit
(** Re-submit every held batch in submission order and empty the queue.
    [propose] may itself call {!hold} (not expected, but safe: it would
    re-queue for the next flush rather than loop). *)

val clear : t -> unit
(** Drop held batches (installing as backup). *)

val is_empty : t -> bool
val pending : t -> int
