module Bitset = Rcc_common.Bitset

type t = { n : int; f : int; votes : Bitset.t }

let create ~n ~f = { n; f; votes = Bitset.create n }
let vote t r = Bitset.add t.votes r
let mem t r = Bitset.mem t.votes r
let count t = Bitset.count t.votes
let clear t = Bitset.clear t.votes
let to_list t = Bitset.to_list t.votes

let quorum_2f1 t = (2 * t.f) + 1
let weak_f1 t = t.f + 1
let majority t = (t.n / 2) + 1
let all_but_f t = t.n - t.f

let reached t k = count t >= k
let has_quorum t = reached t (quorum_2f1 t)
let has_weak t = reached t (weak_f1 t)
let has_majority t = reached t (majority t)
let has_all_but_f t = reached t (all_but_f t)

let create_quorum = create

module Tally = struct
  type quorum = t
  type t = { n : int; f : int; table : (int, quorum) Hashtbl.t }

  let create ~n ~f = { n; f; table = Hashtbl.create 8 }
  let find_opt t key = Hashtbl.find_opt t.table key

  let votes t key =
    match Hashtbl.find_opt t.table key with
    | Some q -> q
    | None ->
        let q = create_quorum ~n:t.n ~f:t.f in
        Hashtbl.replace t.table key q;
        q

  let prune t ~upto =
    Hashtbl.filter_map_inplace
      (fun key q -> if key <= upto then None else Some q)
      t.table
end
