(** PBFT's stable / provable-stable checkpoint logic, lifted out of the
    instance so any protocol with a gap-free accept frontier can reuse it.

    A checkpoint at round [s] is {e provable} once [f+1] replicas voted
    for it (at least one honest), and becomes {e stable} locally only
    once this replica has itself accepted through [s] — a replica kept in
    the dark must not garbage-collect rounds it never executed. Stable
    proofs are recorded in a {!Rcc_storage.Checkpoint_store.t}.

    The caller owns the slot log: whenever a call reports a newly stable
    round [s], the caller should [Slot_log.gc_upto log (s - 1)]. *)

type t

val create : n:int -> f:int -> interval:int -> unit -> t
(** [interval <= 0] disables checkpoint scheduling ({!due} is [None]). *)

val stable : t -> Rcc_common.Ids.round
(** The stable checkpoint round; -1 initially. *)

val provable_stable : t -> Rcc_common.Ids.round
(** Highest round with [f+1] checkpoint votes; -1 initially. *)

val log : t -> Rcc_storage.Checkpoint_store.t
(** The proofs recorded as checkpoints became stable. *)

val due : t -> exec_upto:Rcc_common.Ids.round -> Rcc_common.Ids.round option
(** The checkpoint boundary the caller should announce (broadcast a
    CHECKPOINT vote for), if the executed prefix has crossed one that is
    not yet stable. *)

val on_vote :
  t ->
  src:Rcc_common.Ids.replica_id ->
  seq:Rcc_common.Ids.round ->
  digest:string ->
  exec_upto:Rcc_common.Ids.round ->
  Rcc_common.Ids.round option
(** Count a CHECKPOINT vote (double votes ignored; the first digest seen
    per round wins). Returns the newly stable round, if this vote made
    one stable. *)

val try_stabilize :
  t -> exec_upto:Rcc_common.Ids.round -> Rcc_common.Ids.round option
(** Adopt the provable-stable checkpoint once execution has caught up
    with it (call after the accept frontier advances). Returns the newly
    stable round, if any. *)

val install : t -> Rcc_storage.Checkpoint_store.proof -> unit
(** Adopt a checkpoint installed via state transfer: record the
    transferred (f+1-attested) proof and prune votes and digests it
    covers. Stale proofs (at or below the current stable round) are
    ignored. The caller should [Slot_log.fast_forward] its log to the
    proof's round. *)
