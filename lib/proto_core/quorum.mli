(** Vote accounting for one decision point of a protocol instance.

    Wraps a replica-indexed bitset with the threshold arithmetic every
    instance was hand-rolling: [2f+1] (BFT quorum), [f+1] (at least one
    honest voter), [n/2+1] (crash-fault majority) and [n-f] (HotStuff
    optimistic quorum). [vote] rejects double votes: a replica's second
    vote for the same decision changes nothing and reports [false]. *)

type t

val create : n:int -> f:int -> t

val vote : t -> Rcc_common.Ids.replica_id -> bool
(** Count [src]'s vote; [true] iff it was not already counted. *)

val mem : t -> Rcc_common.Ids.replica_id -> bool
val count : t -> int
val clear : t -> unit

val to_list : t -> Rcc_common.Ids.replica_id list
(** The voters, ascending — the accept certificate. *)

val quorum_2f1 : t -> int
val weak_f1 : t -> int
val majority : t -> int
val all_but_f : t -> int

val reached : t -> int -> bool
(** [reached t k] — at least [k] distinct votes counted. *)

val has_quorum : t -> bool
(** At least [2f+1] votes. *)

val has_weak : t -> bool
(** At least [f+1] votes — one of them honest. *)

val has_majority : t -> bool
(** At least [n/2+1] votes (crash-fault protocols). *)

val has_all_but_f : t -> bool
(** At least [n-f] votes (HotStuff-style optimistic quorum). *)

(** Keyed vote tables (view-change votes per target view, checkpoint
    votes per round): find-or-create plus pruning of decided keys. *)
module Tally : sig
  type quorum := t
  type t

  val create : n:int -> f:int -> t

  val votes : t -> int -> quorum
  (** The quorum tracked under [key], created empty on first use. *)

  val find_opt : t -> int -> quorum option

  val prune : t -> upto:int -> unit
  (** Drop every key [<= upto]. *)
end
