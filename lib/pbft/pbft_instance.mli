(** PBFT (Castro & Liskov, OSDI '99) as a pluggable instance.

    The three normal-case phases (PRE-PREPARE, PREPARE, COMMIT), the
    checkpoint protocol, and the view-change/new-view protocol, satisfying
    requirements R1–R4 of §3.3:

    - R1/R3: a round is accepted only with a 2f+1 commit certificate over a
      single digest per (view, round).
    - R2: a watchdog detects lack of progress on the oldest incomplete
      round and raises a view-change (standalone) or reports to the RCC
      coordinator (unified).
    - R4: standalone view-changes elect [view mod n]; under RCC the
      coordinator installs primaries via [set_primary], and the new primary
      re-proposes its incomplete rounds, filling unknown rounds with null
      batches.

    One consensus per round; consensuses pipeline freely (§6): the primary
    proposes round r+1 without waiting for round r. *)

include Rcc_replica.Instance_intf.S

val in_view_change : t -> bool
val stable_checkpoint : t -> Rcc_common.Ids.round
val prepared_round : t -> round:Rcc_common.Ids.round -> bool

