module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Bitset = Rcc_common.Bitset
module Env = Rcc_replica.Instance_env

type slot = {
  seq : int;
  mutable batch : Batch.t option;
  mutable digest : string option;
  prepares : Bitset.t;
  commits : Bitset.t;
  mutable prepared : bool;
  mutable accepted : bool;
  mutable prepare_sent : bool;
  mutable commit_sent : bool;
  created_at : Engine.time;
}

type t = {
  env : Env.t;
  mutable view : int;
  mutable primary : int;
  mutable next_seq : int;  (* primary: next round to propose *)
  mutable max_seen : int;  (* highest round with any activity *)
  slots : (int, slot) Hashtbl.t;
  mutable exec_upto : int;  (* all rounds <= this accepted *)
  mutable in_view_change : bool;
  vc_votes : (int, Bitset.t) Hashtbl.t;  (* new_view -> voters *)
  mutable vc_sent_for : int;  (* highest new_view we voted for *)
  mutable last_failure_report : int;  (* round of last report, -1 if none *)
  ckpt_votes : (int, Bitset.t) Hashtbl.t;
  ckpt_digests : (int, string) Hashtbl.t;  (* first digest seen per seq *)
  checkpoint_log : Rcc_storage.Checkpoint_store.t;
  mutable stable : int;  (* stable checkpoint round *)
  mutable provable_stable : int;  (* highest seq with f+1 checkpoint votes *)
  mutable last_progress : Engine.time;  (* last accept or view install *)
  mutable held_batches : Batch.t list;  (* submitted during a view change, newest first *)
  mutable running : bool;
}

let create env =
  {
    env;
    view = 0;
    primary = env.Env.instance;  (* P_x initially runs on replica x (§4) *)
    next_seq = 0;
    max_seen = -1;
    slots = Hashtbl.create 512;
    exec_upto = -1;
    in_view_change = false;
    vc_votes = Hashtbl.create 8;
    vc_sent_for = 0;
    last_failure_report = -1;
    ckpt_votes = Hashtbl.create 8;
    ckpt_digests = Hashtbl.create 8;
    checkpoint_log = Rcc_storage.Checkpoint_store.create ();
    stable = -1;
    provable_stable = -1;
    last_progress = 0;
    held_batches = [];
    running = false;
  }

let primary t = t.primary
let view t = t.view
let in_view_change t = t.in_view_change
let stable_checkpoint t = t.stable
let is_primary t = t.primary = t.env.Env.self

let slot t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
      let s =
        {
          seq;
          batch = None;
          digest = None;
          prepares = Bitset.create t.env.Env.n;
          commits = Bitset.create t.env.Env.n;
          prepared = false;
          accepted = false;
          prepare_sent = false;
          commit_sent = false;
          created_at = Engine.now t.env.Env.engine;
        }
      in
      Hashtbl.replace t.slots seq s;
      if seq > t.max_seen then t.max_seen <- seq;
      s

let checkpoint_log t = t.checkpoint_log

let prepared_round t ~round =
  match Hashtbl.find_opt t.slots round with
  | Some s -> s.prepared
  | None -> false

(* --- checkpointing ------------------------------------------------- *)

let rec advance_exec_upto t =
  let rec go seq =
    match Hashtbl.find_opt t.slots seq with
    | Some s when s.accepted ->
        t.exec_upto <- seq;
        go (seq + 1)
    | Some _ | None -> ()
  in
  go (t.exec_upto + 1);
  t.last_progress <- Engine.now t.env.Env.engine;
  adopt_stable t

and adopt_stable t =
  if t.provable_stable > t.stable && t.provable_stable <= t.exec_upto then begin
    t.stable <- t.provable_stable;
    (match Hashtbl.find_opt t.ckpt_votes t.stable with
    | Some votes ->
        Rcc_storage.Checkpoint_store.record t.checkpoint_log
          {
            Rcc_storage.Checkpoint_store.seq = t.stable;
            state_digest =
              Option.value ~default:""
                (Hashtbl.find_opt t.ckpt_digests t.stable);
            attesters = Rcc_common.Bitset.to_list votes;
          }
    | None -> ());
    garbage_collect t (t.stable - 1)
  end

and garbage_collect t upto =
  Hashtbl.filter_map_inplace
    (fun seq s -> if seq <= upto then None else Some s)
    t.slots;
  Hashtbl.filter_map_inplace
    (fun seq v -> if seq <= upto then None else Some v)
    t.ckpt_votes;
  Hashtbl.filter_map_inplace
    (fun seq d -> if seq <= upto then None else Some d)
    t.ckpt_digests

let maybe_checkpoint t =
  let interval = t.env.Env.checkpoint_interval in
  if interval > 0 then begin
    let target = t.exec_upto - (t.exec_upto mod interval) in
    if target > t.stable && t.exec_upto >= target && target > 0 then begin
      let digest =
        match (slot t target).digest with Some d -> d | None -> ""
      in
      t.env.Env.broadcast
        (Msg.Checkpoint
           { instance = t.env.Env.instance; seq = target; state_digest = digest })
    end
  end

let on_checkpoint t ~src seq digest =
  if seq > t.stable then begin
    if not (Hashtbl.mem t.ckpt_digests seq) then
      Hashtbl.replace t.ckpt_digests seq digest;
    let votes =
      match Hashtbl.find_opt t.ckpt_votes seq with
      | Some v -> v
      | None ->
          let v = Bitset.create t.env.Env.n in
          Hashtbl.replace t.ckpt_votes seq v;
          v
    in
    (* A checkpoint only becomes stable locally once this replica holds
       the state it covers (seq <= exec_upto); a replica kept in the dark
       must keep its incomplete slots so the watchdog can blame the
       primary instead of silently skipping the round. *)
    if Bitset.add votes src && Bitset.count votes >= t.env.Env.f + 1 then begin
      if seq > t.provable_stable then t.provable_stable <- seq;
      adopt_stable t
    end
  end

(* --- normal case ---------------------------------------------------- *)

let accept t s =
  if not s.accepted then begin
    match s.batch with
    | None -> ()
    | Some batch ->
        s.accepted <- true;
        advance_exec_upto t;
        t.env.Env.accept
          {
            Rcc_replica.Acceptance.instance = t.env.Env.instance;
            round = s.seq;
            batch;
            cert = Bitset.to_list s.commits;
            speculative = false;
            history = "";
          };
        maybe_checkpoint t
  end

let check_committed t s =
  if
    (not s.accepted)
    && Bitset.count s.commits >= Env.quorum_2f1 t.env
    && Option.is_some s.batch
  then accept t s

let send_commit t s =
  if not s.commit_sent then begin
    s.commit_sent <- true;
    Bitset.add s.commits t.env.Env.self |> ignore;
    match s.digest with
    | Some digest ->
        t.env.Env.broadcast
          (Msg.Commit
             { instance = t.env.Env.instance; view = t.view; seq = s.seq; digest });
        check_committed t s
    | None -> ()
  end

let check_prepared t s =
  if (not s.prepared) && Bitset.count s.prepares >= Env.quorum_2f1 t.env then begin
    s.prepared <- true;
    send_commit t s
  end

let on_pre_prepare t ~src ~view ~seq batch =
  if src = t.primary && view = t.view && (not t.in_view_change) && seq > t.stable
  then begin
    let s = slot t seq in
    match s.digest with
    | Some d when not (String.equal d batch.Batch.digest) ->
        (* Equivocation evidence: the primary proposed two different
           batches for one round. *)
        t.env.Env.report_failure ~round:seq ~blamed:t.primary
    | Some _ | None ->
        if Option.is_none s.batch then begin
          s.batch <- Some batch;
          s.digest <- Some batch.Batch.digest;
          Bitset.add s.prepares src |> ignore;
          if not s.prepare_sent then begin
            s.prepare_sent <- true;
            Bitset.add s.prepares t.env.Env.self |> ignore;
            t.env.Env.broadcast
              (Msg.Prepare
                 {
                   instance = t.env.Env.instance;
                   view;
                   seq;
                   digest = batch.Batch.digest;
                 })
          end;
          check_prepared t s;
          check_committed t s
        end
  end

let on_prepare t ~src ~view ~seq ~digest =
  if view = t.view && seq > t.stable then begin
    let s = slot t seq in
    if Option.is_none s.digest && src <> t.primary then s.digest <- Some digest;
    match s.digest with
    | Some d when String.equal d digest ->
        Bitset.add s.prepares src |> ignore;
        check_prepared t s
    | Some _ | None -> ()
  end

let on_commit t ~src ~view ~seq ~digest =
  if view = t.view && seq > t.stable then begin
    let s = slot t seq in
    if Option.is_none s.digest && src <> t.primary then s.digest <- Some digest;
    match s.digest with
    | Some d when String.equal d digest ->
        Bitset.add s.commits src |> ignore;
        check_committed t s
    | Some _ | None -> ()
  end

(* --- proposing ------------------------------------------------------ *)

let propose t batch =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let s = slot t seq in
  s.batch <- Some batch;
  s.digest <- Some batch.Batch.digest;
  Bitset.add s.prepares t.env.Env.self |> ignore;
  s.prepare_sent <- true;
  if t.env.Env.byz.Rcc_replica.Byz.equivocate then begin
    (* Equivocation: conflicting proposals to the two halves of the
       backups. Neither half can assemble 2f+1 matching PREPAREs, so no
       honest replica accepts and the timeout blames the primary. *)
    let conflicting = Batch.null ~round:seq in
    let lower dst = dst < t.env.Env.n / 2 in
    t.env.Env.broadcast
      ~exclude:(fun dst -> not (lower dst))
      (Msg.Pre_prepare { instance = t.env.Env.instance; view = t.view; seq; batch });
    t.env.Env.broadcast ~exclude:lower
      (Msg.Pre_prepare
         { instance = t.env.Env.instance; view = t.view; seq; batch = conflicting })
  end
  else begin
    (* A byzantine primary may keep selected replicas in the dark
       (Example 3.3): they receive no PRE-PREPARE, only the other backups'
       PREPAREs, which never suffice for them to accept. *)
    let exclude dst = Rcc_replica.Byz.excludes t.env.Env.byz ~round:seq dst in
    t.env.Env.broadcast ~exclude
      (Msg.Pre_prepare { instance = t.env.Env.instance; view = t.view; seq; batch })
  end;
  check_prepared t s

let submit_batch t batch =
  if is_primary t then begin
    if t.in_view_change then
      (* Hold rather than drop: the liveness monitor's null fills and
         fresh client batches arriving inside the recovery grace window
         would otherwise vanish — and the monitor only fills a stalled
         round once, so a swallowed fill stalls the instance forever. *)
      t.held_batches <- batch :: t.held_batches
    else propose t batch
  end

(* --- view changes ---------------------------------------------------- *)

let broadcast_view_change t ~round =
  let new_view = t.view + 1 in
  t.vc_sent_for <- max t.vc_sent_for new_view;
  let msg =
    Msg.View_change
      {
        instance = t.env.Env.instance;
        new_view;
        blamed = t.primary;
        round;
        last_exec = t.exec_upto;
      }
  in
  t.env.Env.broadcast msg;
  (* Count our own vote. *)
  if not t.env.Env.unified then begin
    let votes =
      match Hashtbl.find_opt t.vc_votes new_view with
      | Some v -> v
      | None ->
          let v = Bitset.create t.env.Env.n in
          Hashtbl.replace t.vc_votes new_view v;
          v
    in
    Bitset.add votes t.env.Env.self |> ignore
  end

let detect_failure t ~round =
  if t.last_failure_report < round then begin
    t.last_failure_report <- round;
    t.in_view_change <- not t.env.Env.unified;
    broadcast_view_change t ~round;
    t.env.Env.report_failure ~round ~blamed:t.primary
  end

(* Re-propose every incomplete round in the new view. Rounds this replica
   never learned are recovered from peers first in unified mode (§3.3
   state exchange): another replica may hold — or have executed — the
   deposed primary's in-flight batch for the round, and hole-filling a
   null over it would fork the ledgers. Nulls go out only for rounds
   nobody vouches for within the grace period. Only the new primary
   calls this. *)
let recover_grace t = max (Engine.ms 1) (t.env.Env.timeout / 8)

let repropose_now t reproposals =
  (* Announce the new view even with nothing to re-propose, so backups
     adopt the new primary and accept its future proposals. *)
  t.env.Env.broadcast
    (Msg.New_view { instance = t.env.Env.instance; view = t.view; reproposals });
  (* Treat our own reproposals as fresh proposals in the new view. *)
  List.iter
    (fun (seq, batch) ->
      let s = slot t seq in
      s.batch <- Some batch;
      s.digest <- Some batch.Batch.digest;
      s.prepared <- false;
      s.commit_sent <- false;
      s.prepare_sent <- true;
      Bitset.clear s.prepares;
      Bitset.clear s.commits;
      Bitset.add s.prepares t.env.Env.self |> ignore;
      t.env.Env.broadcast
        (Msg.Pre_prepare { instance = t.env.Env.instance; view = t.view; seq; batch }))
    reproposals

let repropose_incomplete t =
  if t.env.Env.unified then begin
    (* Announce the new view immediately so backups adopt the new
       primary, but defer all re-proposing until the cluster-wide
       in-flight frontier has been recovered from peers (§3.3 state
       exchange): a primary taking over an instance it was cut off from
       does not know how far the deposed primary ran, and proposing a
       fresh batch — or a null — at a slot others already prepared would
       fork the instance. [in_view_change] stays set through the grace
       period, holding fresh proposals back; the contract reply covers
       the whole contiguous window above the requested round. *)
    t.in_view_change <- true;
    t.env.Env.broadcast
      (Msg.New_view
         { instance = t.env.Env.instance; view = t.view; reproposals = [] });
    t.env.Env.broadcast
      (Msg.Contract_request
         { round = t.exec_upto + 1; instance = t.env.Env.instance });
    let view = t.view in
    Engine.schedule_after t.env.Env.engine (recover_grace t) (fun () ->
        if t.view = view && is_primary t && t.in_view_change then begin
          t.in_view_change <- false;
          let reproposals = ref [] in
          for seq = t.max_seen downto t.exec_upto + 1 do
            match Hashtbl.find_opt t.slots seq with
            | Some s when not s.accepted ->
                let b =
                  match s.batch with
                  | Some b -> b
                  | None -> Batch.null ~round:seq
                in
                reproposals := (seq, b) :: !reproposals
            | Some _ -> ()
            | None -> reproposals := (seq, Batch.null ~round:seq) :: !reproposals
          done;
          t.next_seq <- max t.next_seq (t.max_seen + 1);
          repropose_now t !reproposals;
          let held = List.rev t.held_batches in
          t.held_batches <- [];
          List.iter (propose t) held
        end)
  end
  else begin
    (* Standalone PBFT: no contract machinery; re-propose what we have
       and null-fill the rest immediately. *)
    let reproposals = ref [] in
    for seq = t.max_seen downto t.exec_upto + 1 do
      match Hashtbl.find_opt t.slots seq with
      | Some s when not s.accepted ->
          let b =
            match s.batch with Some b -> b | None -> Batch.null ~round:seq
          in
          reproposals := (seq, b) :: !reproposals
      | Some _ -> ()
      | None -> reproposals := (seq, Batch.null ~round:seq) :: !reproposals
    done;
    t.next_seq <- max t.next_seq (t.max_seen + 1);
    repropose_now t !reproposals;
    let held = List.rev t.held_batches in
    t.held_batches <- [];
    List.iter (propose t) held
  end

let install_view t ~view ~primary =
  t.view <- view;
  t.primary <- primary;
  t.in_view_change <- false;
  (* Batches held through the view change flush at the end of
     [repropose_incomplete] if we lead the new view; a backup must not
     sit on them — its clients' requests are the new primary's job. *)
  if primary <> t.env.Env.self then t.held_batches <- [];
  t.last_failure_report <- -1;
  Hashtbl.filter_map_inplace
    (fun v votes -> if v <= view then None else Some votes)
    t.vc_votes;
  if is_primary t then repropose_incomplete t

let set_primary t replica ~view = install_view t ~view ~primary:replica

let on_view_change t ~src ~new_view =
  (* Standalone PBFT election: the new primary is view mod n. Under RCC the
     router sends VIEW-CHANGE messages to the coordinator instead. *)
  if (not t.env.Env.unified) && new_view > t.view then begin
    let votes =
      match Hashtbl.find_opt t.vc_votes new_view with
      | Some v -> v
      | None ->
          let v = Bitset.create t.env.Env.n in
          Hashtbl.replace t.vc_votes new_view v;
          v
    in
    Bitset.add votes src |> ignore;
    let count = Bitset.count votes in
    (* Join a view change supported by f+1 others (one must be honest). *)
    if count >= t.env.Env.f + 1 && t.vc_sent_for < new_view then begin
      t.in_view_change <- true;
      t.view <- new_view - 1;
      broadcast_view_change t ~round:(t.exec_upto + 1);
      Bitset.add votes t.env.Env.self |> ignore
    end;
    if Bitset.count votes >= Env.quorum_2f1 t.env then begin
      let primary = new_view mod t.env.Env.n in
      if primary = t.env.Env.self then install_view t ~view:new_view ~primary
      (* Backups adopt the view when the NEW-VIEW arrives. *)
    end
  end

let on_new_view t ~src ~view reproposals =
  (* Same-view NEW-VIEWs from the current primary carry late hole-filling
     reproposals (rounds it first tried to recover from peers). *)
  if view > t.view || (view = t.view && (t.in_view_change || src = t.primary))
  then begin
    let primary = src in
    t.view <- view;
    t.primary <- primary;
    t.in_view_change <- false;
    t.last_failure_report <- -1;
    List.iter
      (fun (seq, batch) ->
        (match Hashtbl.find_opt t.slots seq with
        | Some s when not s.accepted ->
            s.batch <- None;
            s.digest <- None;
            s.prepared <- false;
            s.prepare_sent <- false;
            s.commit_sent <- false;
            Bitset.clear s.prepares;
            Bitset.clear s.commits
        | Some _ | None -> ());
        on_pre_prepare t ~src ~view ~seq batch)
      reproposals
  end

(* --- recovery (contracts) -------------------------------------------- *)

let adopt t ~round batch ~cert =
  let s = slot t round in
  if not s.accepted then begin
    s.batch <- Some batch;
    s.digest <- Some batch.Batch.digest;
    List.iter (fun r -> Bitset.add s.commits r |> ignore) cert;
    s.accepted <- true;
    advance_exec_upto t;
    t.env.Env.accept
      {
        Rcc_replica.Acceptance.instance = t.env.Env.instance;
        round;
        batch;
        cert;
        speculative = false;
        history = "";
      }
  end

let proposed_upto t = t.next_seq - 1

let accepted_batch t ~round =
  match Hashtbl.find_opt t.slots round with
  | Some ({ accepted = true; batch = Some b; _ } as s) ->
      Some (b, Bitset.to_list s.commits)
  | Some _ | None -> None

let incomplete_rounds t =
  let acc = ref [] in
  for seq = t.max_seen downto t.exec_upto + 1 do
    match Hashtbl.find_opt t.slots seq with
    | Some s when not s.accepted -> acc := seq :: !acc
    | Some _ -> ()
    | None -> acc := seq :: !acc
  done;
  !acc

(* --- failure detection ------------------------------------------------ *)

(* The oldest round blocking progress, with the time since when it has
   been stalled: a slot this replica has partial evidence for uses its
   creation time; a round it never heard of at all (fully in the dark)
   falls back to the instance's last progress. *)
let oldest_incomplete t =
  let rec go seq =
    if seq > t.max_seen then None
    else
      match Hashtbl.find_opt t.slots seq with
      | Some s when not s.accepted -> Some (seq, s.created_at)
      | Some _ -> go (seq + 1)
      | None -> Some (seq, t.last_progress)
  in
  go (t.exec_upto + 1)

let rec watchdog t =
  if t.running then begin
    let timeout = t.env.Env.timeout in
    (match oldest_incomplete t with
    | Some (round, since) when Engine.now t.env.Env.engine - since > timeout ->
        detect_failure t ~round
    | Some _ | None -> ());
    Engine.schedule_after t.env.Env.engine (timeout / 2) (fun () -> watchdog t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.schedule_after t.env.Env.engine t.env.Env.timeout (fun () -> watchdog t)
  end

(* --- dispatch --------------------------------------------------------- *)

let handle t ~src msg =
  match msg with
  | Msg.Pre_prepare { view; seq; batch; _ } -> on_pre_prepare t ~src ~view ~seq batch
  | Msg.Prepare { view; seq; digest; _ } -> on_prepare t ~src ~view ~seq ~digest
  | Msg.Commit { view; seq; digest; _ } -> on_commit t ~src ~view ~seq ~digest
  | Msg.Checkpoint { seq; state_digest; _ } -> on_checkpoint t ~src seq state_digest
  | Msg.View_change { new_view; _ } -> on_view_change t ~src ~new_view
  | Msg.New_view { view; reproposals; _ } -> on_new_view t ~src ~view reproposals
  | Msg.Client_request _ | Msg.Order_request _ | Msg.Commit_cert _
  | Msg.Local_commit _ | Msg.Hs_proposal _ | Msg.Hs_vote _ | Msg.Response _
  | Msg.Contract _ | Msg.Contract_request _ | Msg.Instance_change _ | Msg.View_sync _ ->
      ()

let cost_of (costs : Costs.t) msg =
  match msg with
  | Msg.Pre_prepare { batch; _ } ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
      + Costs.hash_cost costs (Batch.size batch)
  | Msg.New_view { reproposals; _ } ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
      + List.fold_left
          (fun acc (_, b) -> acc + Costs.hash_cost costs (Batch.size b))
          0 reproposals
  | Msg.Prepare _ | Msg.Commit _ | Msg.Checkpoint _ | Msg.View_change _
  | Msg.Commit_cert _ | Msg.Local_commit _ ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
  | Msg.Client_request _ | Msg.Order_request _ | Msg.Hs_proposal _
  | Msg.Hs_vote _ | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ ->
      costs.Costs.worker_msg
