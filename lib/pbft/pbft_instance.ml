module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Env = Rcc_replica.Instance_env
module SL = Rcc_proto_core.Slot_log
module Quorum = Rcc_proto_core.Quorum
module Held_batches = Rcc_proto_core.Held_batches
module Checkpointing = Rcc_proto_core.Checkpointing

(* Protocol-specific slot state; batch / digest / accepted / created_at
   live in the shared {!Rcc_proto_core.Slot_log}. *)
type phase = {
  prepares : Quorum.t;
  commits : Quorum.t;
  mutable prepared : bool;
  mutable prepare_sent : bool;
  mutable commit_sent : bool;
}

type t = {
  env : Env.t;
  mutable view : int;
  mutable primary : int;
  mutable next_seq : int;  (* primary: next round to propose *)
  log : phase SL.t;
  mutable in_view_change : bool;
  vc_votes : Quorum.Tally.t;  (* new_view -> voters *)
  mutable vc_sent_for : int;  (* highest new_view we voted for *)
  mutable last_failure_report : int;  (* round of last report, -1 if none *)
  ckpt : Checkpointing.t;
  held : Held_batches.t;  (* submitted during a view change *)
  ordered : (Rcc_common.Ids.client_id, string * int) Hashtbl.t;
      (* primary only: each client's last ordered (digest, seq), so a
         retransmission of an already-ordered batch has no chance
         of being ordered — and executed — a second time *)
  mutable running : bool;
}

let create env =
  let n = env.Env.n and f = env.Env.f in
  {
    env;
    view = 0;
    primary = env.Env.instance;  (* P_x initially runs on replica x (§4) *)
    next_seq = 0;
    log =
      SL.create ~tag:(env.Env.self, env.Env.instance) ~engine:env.Env.engine
        ~init:(fun _ ->
          {
            prepares = Quorum.create ~n ~f;
            commits = Quorum.create ~n ~f;
            prepared = false;
            prepare_sent = false;
            commit_sent = false;
          })
        ();
    in_view_change = false;
    vc_votes = Quorum.Tally.create ~n ~f;
    vc_sent_for = 0;
    last_failure_report = -1;
    ckpt = Checkpointing.create ~n ~f ~interval:env.Env.checkpoint_interval ();
    held = Held_batches.create ();
    ordered = Hashtbl.create 64;
    running = false;
  }

let primary t = t.primary
let view t = t.view
let in_view_change t = t.in_view_change
let stable_checkpoint t = Checkpointing.stable t.ckpt
let is_primary t = t.primary = t.env.Env.self
let slot t seq = SL.get t.log seq
let ph (s : phase SL.slot) = s.SL.state

let prepared_round t ~round =
  match SL.find_opt t.log round with Some s -> (ph s).prepared | None -> false

(* --- checkpointing ------------------------------------------------- *)

let advance_exec_upto t =
  ignore (SL.drain t.log ~accept:(fun s -> s.SL.accepted));
  SL.touch t.log;
  match Checkpointing.try_stabilize t.ckpt ~exec_upto:(SL.frontier t.log) with
  | Some stable ->
      SL.gc_upto t.log (stable - 1);
      t.env.Env.on_stable ~seq:stable
  | None -> ()

let maybe_checkpoint t =
  match Checkpointing.due t.ckpt ~exec_upto:(SL.frontier t.log) with
  | Some target ->
      let digest =
        match SL.find_opt t.log target with
        | Some { SL.digest = Some d; _ } -> d
        | Some _ | None -> ""
      in
      t.env.Env.broadcast
        (Msg.Checkpoint
           { instance = t.env.Env.instance; seq = target; state_digest = digest })
  | None -> ()

let on_checkpoint t ~src seq digest =
  match
    Checkpointing.on_vote t.ckpt ~src ~seq ~digest
      ~exec_upto:(SL.frontier t.log)
  with
  | Some stable ->
      SL.gc_upto t.log (stable - 1);
      t.env.Env.on_stable ~seq:stable
  | None -> ()

(* --- normal case ---------------------------------------------------- *)

let accept t s =
  if not s.SL.accepted then begin
    match s.SL.batch with
    | None -> ()
    | Some batch ->
        s.SL.accepted <- true;
        advance_exec_upto t;
        t.env.Env.accept
          {
            Rcc_replica.Acceptance.instance = t.env.Env.instance;
            round = s.SL.round;
            batch;
            cert = Quorum.to_list (ph s).commits;
            speculative = false;
            history = "";
          };
        maybe_checkpoint t
  end

let check_committed t s =
  if
    (not s.SL.accepted)
    && Quorum.has_quorum (ph s).commits
    && Option.is_some s.SL.batch
  then accept t s

let send_commit t s =
  if not (ph s).commit_sent then begin
    (ph s).commit_sent <- true;
    ignore (Quorum.vote (ph s).commits t.env.Env.self);
    match s.SL.digest with
    | Some digest ->
        t.env.Env.broadcast
          (Msg.Commit
             {
               instance = t.env.Env.instance;
               view = t.view;
               seq = s.SL.round;
               digest;
             });
        check_committed t s
    | None -> ()
  end

let check_prepared t s =
  if (not (ph s).prepared) && Quorum.has_quorum (ph s).prepares then begin
    (ph s).prepared <- true;
    send_commit t s
  end

let on_pre_prepare t ~src ~view ~seq batch =
  if
    src = t.primary && view = t.view && (not t.in_view_change)
    && seq > Checkpointing.stable t.ckpt
  then begin
    let s = slot t seq in
    match s.SL.digest with
    | Some d when not (String.equal d batch.Batch.digest) ->
        (* Equivocation evidence: the primary proposed two different
           batches for one round. *)
        t.env.Env.report_failure ~round:seq ~blamed:t.primary
    | Some _ | None ->
        if Option.is_none s.SL.batch then begin
          s.SL.batch <- Some batch;
          s.SL.digest <- Some batch.Batch.digest;
          ignore (Quorum.vote (ph s).prepares src);
          if not (ph s).prepare_sent then begin
            (ph s).prepare_sent <- true;
            ignore (Quorum.vote (ph s).prepares t.env.Env.self);
            t.env.Env.broadcast
              (Msg.Prepare
                 {
                   instance = t.env.Env.instance;
                   view;
                   seq;
                   digest = batch.Batch.digest;
                 })
          end;
          check_prepared t s;
          check_committed t s
        end
  end

let on_prepare t ~src ~view ~seq ~digest =
  if view = t.view && seq > Checkpointing.stable t.ckpt then begin
    let s = slot t seq in
    if Option.is_none s.SL.digest && src <> t.primary then
      s.SL.digest <- Some digest;
    match s.SL.digest with
    | Some d when String.equal d digest ->
        ignore (Quorum.vote (ph s).prepares src);
        check_prepared t s
    | Some _ | None -> ()
  end

let on_commit t ~src ~view ~seq ~digest =
  if view = t.view && seq > Checkpointing.stable t.ckpt then begin
    let s = slot t seq in
    if Option.is_none s.SL.digest && src <> t.primary then
      s.SL.digest <- Some digest;
    match s.SL.digest with
    | Some d when String.equal d digest ->
        ignore (Quorum.vote (ph s).commits src);
        check_committed t s
    | Some _ | None -> ()
  end

(* --- proposing ------------------------------------------------------ *)

(* A client retransmission of a batch this primary already ordered must
   not burn a fresh slot: once the duplicate-reply cache entry for the
   first slot ages past the checkpoint floor, the second slot would
   re-execute the batch. Re-announce the original order instead — replicas
   that missed it catch up, the rest treat it as the duplicate it is. *)
let already_ordered t (batch : Batch.t) =
  match Hashtbl.find_opt t.ordered batch.Batch.client with
  | Some (digest, seq) when String.equal digest batch.Batch.digest -> (
      match SL.find_opt t.log seq with
      | Some { SL.batch = Some b; _ } when String.equal b.Batch.digest digest ->
          Some (Some seq)
      | None when seq <= SL.frontier t.log ->
          (* Stable and collected: every correct replica executed and
             replied; nothing to re-order. *)
          Some None
      | Some _ | None -> None (* slot unwound or replaced: order afresh *))
  | Some _ | None -> None

let propose_fresh t batch =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let s = slot t seq in
  s.SL.batch <- Some batch;
  s.SL.digest <- Some batch.Batch.digest;
  Hashtbl.replace t.ordered batch.Batch.client (batch.Batch.digest, seq);
  ignore (Quorum.vote (ph s).prepares t.env.Env.self);
  (ph s).prepare_sent <- true;
  if t.env.Env.byz.Rcc_replica.Byz.equivocate then begin
    (* Equivocation: conflicting proposals to the two halves of the
       backups. Neither half can assemble 2f+1 matching PREPAREs, so no
       honest replica accepts and the timeout blames the primary. *)
    let conflicting = Batch.null ~round:seq in
    let lower dst = dst < t.env.Env.n / 2 in
    t.env.Env.broadcast
      ~exclude:(fun dst -> not (lower dst))
      (Msg.Pre_prepare { instance = t.env.Env.instance; view = t.view; seq; batch });
    t.env.Env.broadcast ~exclude:lower
      (Msg.Pre_prepare
         { instance = t.env.Env.instance; view = t.view; seq; batch = conflicting })
  end
  else begin
    (* A byzantine primary may keep selected replicas in the dark
       (Example 3.3): they receive no PRE-PREPARE, only the other backups'
       PREPAREs, which never suffice for them to accept. *)
    let exclude dst = Rcc_replica.Byz.excludes t.env.Env.byz ~round:seq dst in
    t.env.Env.broadcast ~exclude
      (Msg.Pre_prepare { instance = t.env.Env.instance; view = t.view; seq; batch })
  end;
  check_prepared t s

let propose t batch =
  match already_ordered t batch with
  | Some None -> ()
  | Some (Some seq) ->
      t.env.Env.broadcast
        (Msg.Pre_prepare
           { instance = t.env.Env.instance; view = t.view; seq; batch })
  | None -> propose_fresh t batch

let submit_batch t batch =
  if is_primary t then begin
    if t.in_view_change then
      (* Hold rather than drop: the liveness monitor's null fills and
         fresh client batches arriving inside the recovery grace window
         would otherwise vanish — and the monitor only fills a stalled
         round once, so a swallowed fill stalls the instance forever. *)
      Held_batches.hold t.held batch
    else propose t batch
  end

(* --- view changes ---------------------------------------------------- *)

let broadcast_view_change t ~round =
  let new_view = t.view + 1 in
  t.vc_sent_for <- max t.vc_sent_for new_view;
  let msg =
    Msg.View_change
      {
        instance = t.env.Env.instance;
        new_view;
        blamed = t.primary;
        round;
        last_exec = SL.frontier t.log;
        signature = t.env.Env.sign_blame ~view:t.view ~blamed:t.primary ~round;
      }
  in
  t.env.Env.broadcast msg;
  (* Count our own vote. *)
  if not t.env.Env.unified then
    ignore (Quorum.vote (Quorum.Tally.votes t.vc_votes new_view) t.env.Env.self)

let detect_failure t ~round =
  if t.last_failure_report < round then begin
    t.last_failure_report <- round;
    t.in_view_change <- not t.env.Env.unified;
    broadcast_view_change t ~round;
    t.env.Env.report_failure ~round ~blamed:t.primary
  end

(* Re-propose every incomplete round in the new view. Rounds this replica
   never learned are recovered from peers first in unified mode (§3.3
   state exchange): another replica may hold — or have executed — the
   deposed primary's in-flight batch for the round, and hole-filling a
   null over it would fork the ledgers. Nulls go out only for rounds
   nobody vouches for within the grace period. Only the new primary
   calls this. *)
let recover_grace t = max (Engine.ms 1) (t.env.Env.timeout / 8)

let repropose_now t reproposals =
  (* Announce the new view even with nothing to re-propose, so backups
     adopt the new primary and accept its future proposals. *)
  t.env.Env.broadcast
    (Msg.New_view { instance = t.env.Env.instance; view = t.view; reproposals });
  (* Treat our own reproposals as fresh proposals in the new view. *)
  List.iter
    (fun (seq, batch) ->
      let s = slot t seq in
      s.SL.batch <- Some batch;
      s.SL.digest <- Some batch.Batch.digest;
      (ph s).prepared <- false;
      (ph s).commit_sent <- false;
      (ph s).prepare_sent <- true;
      Quorum.clear (ph s).prepares;
      Quorum.clear (ph s).commits;
      ignore (Quorum.vote (ph s).prepares t.env.Env.self);
      t.env.Env.broadcast
        (Msg.Pre_prepare { instance = t.env.Env.instance; view = t.view; seq; batch }))
    reproposals

let gather_reproposals t =
  let reproposals = ref [] in
  for seq = SL.max_seen t.log downto SL.frontier t.log + 1 do
    match SL.find_opt t.log seq with
    | Some s when not s.SL.accepted ->
        let b =
          match s.SL.batch with Some b -> b | None -> Batch.null ~round:seq
        in
        reproposals := (seq, b) :: !reproposals
    | Some _ -> ()
    | None -> reproposals := (seq, Batch.null ~round:seq) :: !reproposals
  done;
  !reproposals

let finish_repropose t =
  t.in_view_change <- false;
  let reproposals = gather_reproposals t in
  t.next_seq <- max t.next_seq (SL.max_seen t.log + 1);
  repropose_now t reproposals;
  Held_batches.flush t.held ~propose:(propose t)

let repropose_incomplete t =
  if t.env.Env.unified then begin
    (* Announce the new view immediately so backups adopt the new
       primary, but defer all re-proposing until the cluster-wide
       in-flight frontier has been recovered from peers (§3.3 state
       exchange): a primary taking over an instance it was cut off from
       does not know how far the deposed primary ran, and proposing a
       fresh batch — or a null — at a slot others already prepared would
       fork the instance. [in_view_change] stays set through the grace
       period, holding fresh proposals back; the contract reply covers
       the whole contiguous window above the requested round. *)
    t.in_view_change <- true;
    t.env.Env.broadcast
      (Msg.New_view
         { instance = t.env.Env.instance; view = t.view; reproposals = [] });
    t.env.Env.broadcast
      (Msg.Contract_request
         { round = SL.frontier t.log + 1; instance = t.env.Env.instance });
    let view = t.view in
    Engine.schedule_after t.env.Env.engine (recover_grace t) (fun () ->
        if t.view = view && is_primary t && t.in_view_change then
          finish_repropose t)
  end
  else
    (* Standalone PBFT: no contract machinery; re-propose what we have
       and null-fill the rest immediately. *)
    finish_repropose t

let install_view t ~view ~primary =
  t.view <- view;
  t.primary <- primary;
  t.in_view_change <- false;
  Hashtbl.reset t.ordered;
  (* Batches held through the view change flush at the end of
     [finish_repropose] if we lead the new view; a backup must not sit
     on them — its clients' requests are the new primary's job. *)
  if primary <> t.env.Env.self then Held_batches.clear t.held;
  t.last_failure_report <- -1;
  Quorum.Tally.prune t.vc_votes ~upto:view;
  if is_primary t then repropose_incomplete t

let set_primary t replica ~view = install_view t ~view ~primary:replica

(* Restart-from-disk: the lost incarnation may have pre-prepared rounds
   past the durable frontier; re-assigning those seqs would equivocate.
   Hold everything until a view change re-elects sequencing. *)
let resign_primary t = if is_primary t then t.in_view_change <- true

let on_view_change t ~src ~new_view =
  (* Standalone PBFT election: the new primary is view mod n. Under RCC the
     router sends VIEW-CHANGE messages to the coordinator instead. *)
  if (not t.env.Env.unified) && new_view > t.view then begin
    let votes = Quorum.Tally.votes t.vc_votes new_view in
    ignore (Quorum.vote votes src);
    (* Join a view change supported by f+1 others (one must be honest). *)
    if Quorum.has_weak votes && t.vc_sent_for < new_view then begin
      t.in_view_change <- true;
      t.view <- new_view - 1;
      broadcast_view_change t ~round:(SL.frontier t.log + 1);
      ignore (Quorum.vote votes t.env.Env.self)
    end;
    if Quorum.has_quorum votes then begin
      let primary = new_view mod t.env.Env.n in
      if primary = t.env.Env.self then install_view t ~view:new_view ~primary
      (* Backups adopt the view when the NEW-VIEW arrives. *)
    end
  end

let on_new_view t ~src ~view reproposals =
  (* Same-view NEW-VIEWs from the current primary carry late hole-filling
     reproposals (rounds it first tried to recover from peers). *)
  if view > t.view || (view = t.view && (t.in_view_change || src = t.primary))
  then begin
    let primary = src in
    t.view <- view;
    t.primary <- primary;
    t.in_view_change <- false;
    Hashtbl.reset t.ordered;
    t.last_failure_report <- -1;
    List.iter
      (fun (seq, batch) ->
        (match SL.find_opt t.log seq with
        | Some s when not s.SL.accepted ->
            s.SL.batch <- None;
            s.SL.digest <- None;
            (ph s).prepared <- false;
            (ph s).prepare_sent <- false;
            (ph s).commit_sent <- false;
            Quorum.clear (ph s).prepares;
            Quorum.clear (ph s).commits
        | Some _ | None -> ());
        on_pre_prepare t ~src ~view ~seq batch)
      reproposals
  end

(* --- recovery (contracts) -------------------------------------------- *)

let adopt t ~round batch ~cert =
  let s = slot t round in
  if not s.SL.accepted then begin
    s.SL.batch <- Some batch;
    s.SL.digest <- Some batch.Batch.digest;
    List.iter (fun r -> ignore (Quorum.vote (ph s).commits r)) cert;
    s.SL.accepted <- true;
    advance_exec_upto t;
    t.env.Env.accept
      {
        Rcc_replica.Acceptance.instance = t.env.Env.instance;
        round;
        batch;
        cert;
        speculative = false;
        history = "";
      }
  end

let proposed_upto t = t.next_seq - 1

let fast_forward t ~proof =
  let round = proof.Rcc_storage.Checkpoint_store.seq in
  SL.fast_forward t.log ~round;
  Checkpointing.install t.ckpt proof;
  (* A lagging primary must not re-propose rounds the snapshot covers. *)
  if t.next_seq < round then t.next_seq <- round

let log_stats t = (SL.retained_slots t.log, SL.live_words t.log)
let checkpoint_log t = Checkpointing.log t.ckpt

let accepted_batch t ~round =
  match SL.find_opt t.log round with
  | Some ({ SL.accepted = true; batch = Some b; _ } as s) ->
      Some (b, Quorum.to_list (ph s).commits)
  | Some _ | None -> None

let incomplete_rounds t = SL.incomplete_rounds t.log

(* --- failure detection ------------------------------------------------ *)

let rec watchdog t =
  if t.running then begin
    let timeout = t.env.Env.timeout in
    (match SL.oldest_incomplete t.log with
    | Some (round, since) when Engine.now t.env.Env.engine - since > timeout ->
        detect_failure t ~round
    | Some _ | None -> ());
    Engine.schedule_after t.env.Env.engine (timeout / 2) (fun () -> watchdog t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.schedule_after t.env.Env.engine t.env.Env.timeout (fun () -> watchdog t)
  end

(* --- dispatch --------------------------------------------------------- *)

let handle t ~src msg =
  match msg with
  | Msg.Pre_prepare { view; seq; batch; _ } -> on_pre_prepare t ~src ~view ~seq batch
  | Msg.Prepare { view; seq; digest; _ } -> on_prepare t ~src ~view ~seq ~digest
  | Msg.Commit { view; seq; digest; _ } -> on_commit t ~src ~view ~seq ~digest
  | Msg.Checkpoint { seq; state_digest; _ } -> on_checkpoint t ~src seq state_digest
  | Msg.View_change { new_view; _ } -> on_view_change t ~src ~new_view
  | Msg.New_view { view; reproposals; _ } -> on_new_view t ~src ~view reproposals
  | Msg.Client_request _ | Msg.Order_request _ | Msg.Commit_cert _
  | Msg.Local_commit _ | Msg.Hs_proposal _ | Msg.Hs_vote _ | Msg.Response _
  | Msg.Contract _ | Msg.Contract_request _ | Msg.Instance_change _ | Msg.View_sync _ | Msg.Snapshot_request _
  | Msg.Snapshot_reply _ ->
      ()

let cost_of (costs : Costs.t) msg =
  match msg with
  | Msg.Pre_prepare { batch; _ } ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
      + Costs.hash_cost costs (Batch.size batch)
  | Msg.New_view { reproposals; _ } ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
      + List.fold_left
          (fun acc (_, b) -> acc + Costs.hash_cost costs (Batch.size b))
          0 reproposals
  | Msg.Prepare _ | Msg.Commit _ | Msg.Checkpoint _ | Msg.View_change _
  | Msg.Commit_cert _ | Msg.Local_commit _ ->
      costs.Costs.worker_msg + costs.Costs.mac_verify
  | Msg.Client_request _ | Msg.Order_request _ | Msg.Hs_proposal _
  | Msg.Hs_vote _ | Msg.Response _ | Msg.Contract _ | Msg.Contract_request _
  | Msg.Instance_change _ | Msg.View_sync _ | Msg.Snapshot_request _
  | Msg.Snapshot_reply _ ->
      costs.Costs.worker_msg
