(** Conflict analysis for parallel execution.

    The scheduler hands a window of replicated batches (a round's z
    instance slots, plus batches from adjacent complete rounds) to
    {!partition}, which groups them by read/write key-set intersection:
    two batches belong to the same dependency group iff one writes a key
    the other touches — transitively — or they carry the same non-null
    digest (a re-ordered duplicate must observe its first execution).
    Groups are pairwise commutable, so the execute pool may run them in
    any interleaving while every group internally replays its members in
    the deterministic (round, rank) order; the resulting KV state, ledger
    blocks and response digests are identical to strictly serial
    f_S(h)-order execution (see DESIGN.md "Parallel execution"). *)

type item = {
  round : Rcc_common.Ids.round;
  rank : int;
      (** position in the round's execution-order permutation (§3.4.1):
          the tie-break that makes replay order reproducible *)
  acc : Acceptance.t;
}

type group = {
  members : item list;  (** ascending (round, rank) — the replay order *)
  txns : int;  (** total transactions across members *)
  conflict_keys : int;
      (** overlapping key relations that glued the group together; 0 for
          singletons and for duplicate-digest-only merges *)
}

val partition : item array -> group list
(** [partition items] with [items] sorted ascending by (round, rank).
    Deterministic: groups are ordered by their first member, members keep
    (round, rank) order. *)

val total_keys : item array -> int
(** Total read+write key-set cardinality over the window — the size of
    the conflict scan, used for CPU cost accounting. *)

val overlap : Rcc_messages.Batch.t -> Rcc_messages.Batch.t -> int
(** Conflicting key count between two batches (WW + WR + RW overlaps;
    read/read sharing is free). Exposed for tests. *)
