module Batch = Rcc_messages.Batch

type item = {
  round : Rcc_common.Ids.round;
  rank : int;
  acc : Acceptance.t;
}

type group = {
  members : item list;
  txns : int;
  conflict_keys : int;
}

(* Number of common elements of two ascending, deduplicated int arrays
   (linear merge; key sets are small — one batch's worth of keys). *)
let intersect_count a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then 0
  else begin
    let i = ref 0 and j = ref 0 and hits = ref 0 in
    while !i < na && !j < nb do
      let x = Array.unsafe_get a !i and y = Array.unsafe_get b !j in
      if x < y then incr i
      else if x > y then incr j
      else begin
        incr hits;
        incr i;
        incr j
      end
    done;
    !hits
  end

(* Conflicting key count between two batches: write/write and write/read
   overlaps order the pair; read/read sharing commutes and is free. *)
let overlap a b =
  let ka = Batch.key_sets a and kb = Batch.key_sets b in
  intersect_count ka.Batch.wset kb.Batch.wset
  + intersect_count ka.Batch.wset kb.Batch.rset
  + intersect_count ka.Batch.rset kb.Batch.wset

(* A re-ordered duplicate of an earlier batch must observe its first
   execution (the duplicate-reply cache), so identical non-null digests
   are serialized into one group even when read-only. *)
let duplicates a b =
  (not (Batch.is_null a))
  && (not (Batch.is_null b))
  && String.equal a.Batch.digest b.Batch.digest

(* Union-find over item indices, path-halving; [conflicts] accumulates
   the overlapping-key count per root. *)
let rec find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    parent.(i) <- parent.(p);
    find parent parent.(i)
  end

let partition items =
  let n = Array.length items in
  let parent = Array.init n (fun i -> i) in
  let conflicts = Array.make n 0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let a = items.(i).acc.Acceptance.batch
      and b = items.(j).acc.Acceptance.batch in
      let keys = overlap a b in
      if keys > 0 || duplicates a b then begin
        let ri = find parent i and rj = find parent j in
        if ri <> rj then begin
          (* Union by smaller root index: the canonical representative of
             a group is its first member in (round, rank) order, which is
             what makes group numbering deterministic. *)
          let lo = min ri rj and hi = max ri rj in
          parent.(hi) <- lo;
          conflicts.(lo) <- conflicts.(lo) + conflicts.(hi)
        end;
        conflicts.(find parent i) <- conflicts.(find parent i) + keys
      end
    done
  done;
  (* Emit groups ordered by first member; members in (round, rank) order —
     items arrive sorted, so index order is replay order. *)
  let acc : (int, item list ref) Hashtbl.t = Hashtbl.create 16 in
  let roots = ref [] in
  for i = n - 1 downto 0 do
    let r = find parent i in
    match Hashtbl.find_opt acc r with
    | Some l -> l := items.(i) :: !l
    | None ->
        Hashtbl.replace acc r (ref [ items.(i) ]);
        roots := r :: !roots
  done;
  List.map
    (fun r ->
      let members = !(Hashtbl.find acc r) in
      let txns =
        List.fold_left
          (fun t it ->
            t + Array.length it.acc.Acceptance.batch.Batch.txns)
          0 members
      in
      { members; txns; conflict_keys = conflicts.(r) })
    (List.sort Int.compare !roots)

let total_keys items =
  Array.fold_left
    (fun t it ->
      let k = Batch.key_sets it.acc.Acceptance.batch in
      t + Array.length k.Batch.rset + Array.length k.Batch.wset)
    0 items
