(** Simulated clients (§7.2's up-to-1M clients on client machines).

    Per-client state lives in flat parallel arrays (a handful of words
    per client), so pools of 100K–1M clients fit comfortably. Two load
    modes:

    - {b Closed loop} (the default, and the paper's §7 methodology): each
      logical client keeps exactly one batched request outstanding,
      sending the next the moment the previous completes. Timeouts are
      one engine timer per request, exactly as the seed pool scheduled
      them — closed-loop runs are event-for-event identical to it, which
      the perf-digest determinism gate relies on.
    - {b Open loop} ([Open_loop]): requests arrive at a configured
      offered load (txn/s) under a deterministic Poisson or uniform
      process, each arrival claiming the longest-idle client. Arrivals
      beyond [max_in_flight] (or when every client is busy) are counted
      as drops, not queued. Timeouts batch through a
      {!Rcc_common.Timing_wheel} instead of per-request timers.

    Requests go to the primary of the client's assigned instance (§3.1
    client-replica mapping: client [c] is served by instance [c mod z])
    and wait for a completion quorum:

    - [Majority_fplus1] — PBFT / MultiP / HotStuff: f+1 matching responses.
    - [All_n_speculative] — Zyzzyva / MultiZ: n matching speculative
      responses; on timeout with at least 2f+1 matching, fall back to the
      COMMIT-CERTIFICATE phase and wait for 2f+1 LOCAL-COMMIT acks.

    The 15-second client timeout (§7.5) is what collapses the
    Zyzzyva-family throughput under failures. Clients stuck past
    [instance_change_after] resends switch instances (§3.6). *)

type quorum = Majority_fplus1 | All_n_speculative
type arrival_process = Poisson | Uniform

type arrival =
  | Closed_loop
  | Open_loop of {
      rate : float;  (** offered load, txn/s across the whole pool *)
      process : arrival_process;
      max_in_flight : int;
          (** cap on concurrent outstanding requests; [<= 0] means one
              per client (the closed-loop ceiling) *)
    }

type config = {
  n : int;
  f : int;
  z : int;
  clients : int;
  machines : int;  (** client machines = network nodes *)
  batch_size : int;
  quorum : quorum;
  request_timeout : Rcc_sim.Engine.time;
  instance_change_after : int;  (** resends before switching instance; 0 disables *)
  first_node : int;  (** first client-machine node id on the network *)
  records : int;
  write_ratio : float;
  theta : float;
  seed : int;
  arrival : arrival;
}

type open_loop_stats = {
  offered_batches : int;  (** arrival events fired (injected + dropped) *)
  injected_batches : int;
  dropped_batches : int;  (** shed at the in-flight cap / all clients busy *)
  queue_p50 : float;  (** in-flight depth percentiles, sampled per arrival *)
  queue_p99 : float;
  max_depth : int;
}

type t

val create :
  engine:Rcc_sim.Engine.t ->
  net:Rcc_messages.Msg.t Rcc_sim.Net.t ->
  keychain:Rcc_crypto.Keychain.t ->
  metrics:Metrics.t ->
  primary_of_instance:(Rcc_common.Ids.instance_id -> Rcc_common.Ids.replica_id) ->
  config ->
  t
(** Registers the client machines' delivery handlers. *)

val start : t -> unit
(** Closed loop: every client sends its first request (staggered over the
    first millisecond). Open loop: the arrival process starts ticking. *)

val stop : t -> unit
(** Stop injecting load: closed-loop clients send no next request,
    open-loop arrivals cease, and pending retry timers become no-ops.
    Completions of already-issued requests are still recorded. *)

val completed_batches : t -> int
val instance_changes : t -> int

val requests_sent : t -> int
(** Total client requests put on the network, including resends. The
    chaos runner samples this at [stop] to assert the drain phase is
    injection-free. *)

val open_loop_stats : t -> open_loop_stats option
(** [None] for closed-loop pools. *)

val client_instance : t -> Rcc_common.Ids.client_id -> Rcc_common.Ids.instance_id
(** Current instance assignment (visible for the DoS-resolution tests). *)
