(** Closed-loop simulated clients (§7.2's up-to-1M clients on 50 machines).

    Each logical client sends one batched request at a time to the primary
    of its assigned instance (§3.1 client-replica mapping: client [c] is
    served by instance [c mod z]) and waits for its completion quorum:

    - [Majority_fplus1] — PBFT / MultiP / HotStuff: f+1 matching responses.
    - [All_n_speculative] — Zyzzyva / MultiZ: n matching speculative
      responses; on timeout with at least 2f+1 matching, fall back to the
      COMMIT-CERTIFICATE phase and wait for 2f+1 LOCAL-COMMIT acks.

    The 15-second client timeout (§7.5) is what collapses the
    Zyzzyva-family throughput under failures. Clients stuck past
    [instance_change_after] resends switch instances (§3.6). *)

type quorum = Majority_fplus1 | All_n_speculative

type config = {
  n : int;
  f : int;
  z : int;
  clients : int;
  machines : int;  (** client machines = network nodes *)
  batch_size : int;
  quorum : quorum;
  request_timeout : Rcc_sim.Engine.time;
  instance_change_after : int;  (** resends before switching instance; 0 disables *)
  first_node : int;  (** first client-machine node id on the network *)
  records : int;
  write_ratio : float;
  theta : float;
  seed : int;
}

type t

val create :
  engine:Rcc_sim.Engine.t ->
  net:Rcc_messages.Msg.t Rcc_sim.Net.t ->
  keychain:Rcc_crypto.Keychain.t ->
  metrics:Metrics.t ->
  primary_of_instance:(Rcc_common.Ids.instance_id -> Rcc_common.Ids.replica_id) ->
  config ->
  t
(** Registers the client machines' delivery handlers. *)

val start : t -> unit
(** Every client sends its first request (staggered over the first
    millisecond). *)

val stop : t -> unit
(** Stop the closed loop: no new requests are sent and pending retry
    timers become no-ops. Completions of already-issued requests are
    still recorded. *)

val completed_batches : t -> int

val instance_changes : t -> int

val client_instance : t -> Rcc_common.Ids.client_id -> Rcc_common.Ids.instance_id
(** Current instance assignment (visible for the DoS-resolution tests). *)
