(** Replica pipeline skeleton (§6, Figures 7–8).

    A node owns the paper's thread set as simulated CPU servers: an
    input-thread pool, an optional batch-thread pool (primaries only), one
    worker per instance, and the execute thread (which doubles as the
    coordinator). Protocol builders install the routing function that maps
    parsed messages onto the right server with the right CPU cost. *)

type t

val create :
  engine:Rcc_sim.Engine.t ->
  net:Rcc_messages.Msg.t Rcc_sim.Net.t ->
  costs:Rcc_sim.Costs.t ->
  self:Rcc_common.Ids.replica_id ->
  z:int ->
  has_batchers:bool ->
  input_threads:int ->
  batch_threads:int ->
  ?exec_pool_size:int ->
  unit ->
  t
(** Creates the servers and registers the node's delivery handler with the
    network. Routing starts as a no-op; install it with {!set_route}.
    [exec_pool_size > 0] additionally creates the parallel execute pool
    ({!exec_pool}); the scheduler lane {!exec_server} always exists. *)

val engine : t -> Rcc_sim.Engine.t
val costs : t -> Rcc_sim.Costs.t
val self : t -> Rcc_common.Ids.replica_id
val worker : t -> int -> Rcc_sim.Cpu.server
val exec_server : t -> Rcc_sim.Cpu.server

val exec_pool : t -> Rcc_sim.Cpu.pool option
(** The multi-server execute pool, when the node was created with
    [exec_pool_size > 0] (parallel execution mode). *)

val batchers : t -> Rcc_sim.Cpu.pool option

val halt : t -> unit
(** Permanently silence this node object: inbound deliveries are dropped
    before routing and queued/future sends become no-ops. Used when a
    replica restarts from disk — the successor incarnation re-registers
    the network handler, and halting the orphan guarantees its still-
    scheduled CPU jobs can never speak for the replica again. *)

val halted : t -> bool

val set_route :
  t -> (src:int -> ready:Rcc_sim.Engine.time -> Rcc_messages.Msg.t -> unit) -> unit
(** The route function runs at message arrival; [ready] is when the input
    thread finishes parsing it. The route must submit the message to a
    worker/batcher/exec server with [Cpu.submit_ready ~ready]. *)

val sender :
  t ->
  worker:Rcc_sim.Cpu.server ->
  (?sign:bool ->
  ?size:int ->
  dst:Rcc_common.Ids.replica_id ->
  Rcc_messages.Msg.t ->
  unit)
  * (?sign:bool ->
    ?size:int ->
    ?exclude:(Rcc_common.Ids.replica_id -> bool) ->
    n:int ->
    Rcc_messages.Msg.t ->
    unit)
(** [(send, broadcast)] closures that charge marshalling + authentication
    to [worker] before handing the message to the network. [broadcast]
    sends to all replicas in [0, n) except self and exclusions. [size]
    lets a caller that already computed [Msg.size msg] (for metrics or
    tracing) pass it along instead of recomputing per send. *)

val send_direct : t -> dst:int -> Rcc_messages.Msg.t -> unit
(** Raw network send with no CPU charge; for the execute thread, whose
    response cost is part of the execution job. *)
