open Rcc_common.Ids

type dark = {
  victims : replica_id list;
  from_round : round;
  until_round : round option;
}

type t = {
  mutable byzantine : bool;
  mutable dark : dark option;
  mutable false_blame : replica_id list;
  mutable ignore_clients : bool;
  mutable equivocate : bool;
  mutable forge_views : bool;
  mutable corrupt_snapshot : bool;
}

let honest =
  {
    byzantine = false;
    dark = None;
    false_blame = [];
    ignore_clients = false;
    equivocate = false;
    forge_views = false;
    corrupt_snapshot = false;
  }

let dark_primary ~victims ?(from_round = 0) ?until_round () =
  {
    honest with
    byzantine = true;
    dark = Some { victims; from_round; until_round };
  }

let false_blamer ~blames = { honest with byzantine = true; false_blame = blames }

let client_ignorer = { honest with byzantine = true; ignore_clients = true }

let equivocator = { honest with byzantine = true; equivocate = true }

let view_forger = { honest with byzantine = true; forge_views = true }

let snapshot_corruptor = { honest with byzantine = true; corrupt_snapshot = true }

let copy t = { t with byzantine = t.byzantine }

let set dst src =
  dst.byzantine <- src.byzantine;
  dst.dark <- src.dark;
  dst.false_blame <- src.false_blame;
  dst.ignore_clients <- src.ignore_clients;
  dst.equivocate <- src.equivocate;
  dst.forge_views <- src.forge_views;
  dst.corrupt_snapshot <- src.corrupt_snapshot

let excludes t ~round victim =
  match t.dark with
  | None -> false
  | Some d ->
      round >= d.from_round
      && (match d.until_round with None -> true | Some last -> round <= last)
      && List.mem victim d.victims
