open Rcc_common.Ids

type dark = {
  victims : replica_id list;
  from_round : round;
  until_round : round option;
}

type t = {
  mutable byzantine : bool;
  mutable dark : dark option;
  mutable false_blame : replica_id list;
  mutable ignore_clients : bool;
  mutable equivocate : bool;
}

let honest =
  {
    byzantine = false;
    dark = None;
    false_blame = [];
    ignore_clients = false;
    equivocate = false;
  }

let dark_primary ~victims ?(from_round = 0) ?until_round () =
  {
    byzantine = true;
    dark = Some { victims; from_round; until_round };
    false_blame = [];
    ignore_clients = false;
    equivocate = false;
  }

let false_blamer ~blames = { honest with byzantine = true; false_blame = blames }

let client_ignorer = { honest with byzantine = true; ignore_clients = true }

let equivocator = { honest with byzantine = true; equivocate = true }

let copy t = { t with byzantine = t.byzantine }

let set dst src =
  dst.byzantine <- src.byzantine;
  dst.dark <- src.dark;
  dst.false_blame <- src.false_blame;
  dst.ignore_clients <- src.ignore_clients;
  dst.equivocate <- src.equivocate

let excludes t ~round victim =
  match t.dark with
  | None -> false
  | Some d ->
      round >= d.from_round
      && (match d.until_round with None -> true | Some last -> round <= last)
      && List.mem victim d.victims
