(** The environment a protocol instance runs in.

    An instance never touches the network or the execute thread directly;
    it talks through these callbacks, which the node builder wires to the
    simulated pipeline (charging worker CPU for marshalling and MACs on
    every send). This is the seam that makes the protocols reusable both
    standalone and as RCC instances. *)

open Rcc_common.Ids

type t = {
  n : int;
  f : int;
  z : int;
  instance : instance_id;
  self : replica_id;
  engine : Rcc_sim.Engine.t;
  costs : Rcc_sim.Costs.t;
  timeout : Rcc_sim.Engine.time;  (** replica view-change timeout (10 s in §7.5) *)
  checkpoint_interval : int;  (** rounds between checkpoints *)
  send : ?sign:bool -> dst:replica_id -> Rcc_messages.Msg.t -> unit;
      (** Point-to-point send; [sign] charges a digital signature instead
          of a MAC (HotStuff-style protocols). *)
  broadcast :
    ?sign:bool -> ?exclude:(replica_id -> bool) -> Rcc_messages.Msg.t -> unit;
      (** Send to every other replica, minus exclusions (byzantine
          primaries exclude their victims here). *)
  respond : Rcc_common.Ids.client_id -> Rcc_messages.Msg.t -> unit;
      (** Direct reply to a client (Zyzzyva LOCAL-COMMIT acks). *)
  accept : Acceptance.t -> unit;
      (** Replication of a round completed at this replica. *)
  on_stable : seq:round -> unit;
      (** This instance's checkpoint became stable for rounds [< seq];
          the execute stage uses the per-instance frontiers to bound its
          duplicate-reply cache. *)
  report_failure : round:round -> blamed:replica_id -> unit;
      (** Local failure detection; routed to the RCC coordinator (unified
          mode) or handled by the instance's own view-change logic. *)
  rollback : frontier:round -> unit;
      (** A certified view change exposed an ordering conflicting with
          this instance's executed speculative rounds at or above
          [frontier]; the execute stage must unwind them (and the
          coordinator forget its retained copies) before the new view's
          orders re-execute. *)
  sign_blame : view:view -> blamed:replica_id -> round:round -> string;
      (** Sign this replica's accusation against [blamed] for this
          instance with its own key (the coordinator's blame digest), so
          outgoing view-change messages carry verifiable evidence. *)
  byz : Byz.t;  (** how this replica misbehaves when primary *)
  unified : bool;
      (** true under RCC: primary replacement is decided by the
          coordinator (unified multi-leader election, §3.4.2); false for
          the standalone protocol's own view-change. *)
}

val quorum_2f1 : t -> int
(** [2f+1] — the BFT accept quorum. New code inside instances should
    prefer {!Rcc_proto_core.Quorum}, which tracks the votes too. *)

val majority_nf : t -> int
(** [f+1] — at least one honest replica. *)

val tracing : t -> bool
(** Whether the engine carries a trace recorder. *)

val trace : t -> Rcc_trace.Event.payload -> unit
(** Record an event tagged with this env's replica and instance ids.
    No-op without a tracer. *)

val instrument : t -> t
(** The same env with [accept] and [report_failure] wrapped to emit
    {!Rcc_trace.Event.Slot_accept} / {!Rcc_trace.Event.Blame} trace
    events before forwarding. Builders pass [instrument env] to
    [P.create] so every protocol traces its acceptance path without
    per-protocol code. *)
