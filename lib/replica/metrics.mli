(** Experiment metrics.

    Throughput is measured at the clients (a request counts when its
    response quorum is met), which is what makes Zyzzyva's collapse under
    failures visible even though replicas keep executing speculatively.
    Per-replica execution series back the Figure 12 timeline. *)

type t

val create : n:int -> warmup:Rcc_sim.Engine.time -> t

val warmup : t -> Rcc_sim.Engine.time

val record_completion :
  t -> now:Rcc_sim.Engine.time -> ntxns:int -> latency:Rcc_sim.Engine.time -> unit
(** A client's request completed. Counted toward throughput/latency only
    after warmup; always added to the timeline series. *)

val record_exec :
  t -> replica:Rcc_common.Ids.replica_id -> now:Rcc_sim.Engine.time -> ntxns:int -> unit

val record_view_change : t -> unit
val record_collusion_detected : t -> unit
val record_contract_bytes : t -> int -> unit

val committed_txns : t -> int
val committed_batches : t -> int

val throughput : t -> duration:Rcc_sim.Engine.time -> float
(** Post-warmup committed transactions per second, where [duration] is the
    full run length including warmup. *)

val avg_latency : t -> float
(** Seconds. *)

val latency_percentile : t -> float -> float
(** [latency_percentile t p] with [p] a fraction ([0.5] = median,
    [0.99] = p99), in seconds. *)

val timeline : t -> (float * float) array
(** Client-side throughput per 100 ms bucket over the whole run, txns/s. *)

val exec_timeline : t -> replica:Rcc_common.Ids.replica_id -> (float * float) array

val view_changes : t -> int
val collusions_detected : t -> int
val contract_bytes : t -> int
