(** Experiment metrics.

    Throughput is measured at the clients (a request counts when its
    response quorum is met), which is what makes Zyzzyva's collapse under
    failures visible even though replicas keep executing speculatively.
    Per-replica execution series back the Figure 12 timeline.

    Besides the cluster-wide aggregate, every protocol instance keeps
    its own sub-metrics (txns, latency histogram, view changes,
    throughput series): RCC's behaviour under attack is per-instance —
    one straggling primary drags exactly one instance — and the
    aggregate alone cannot show it. *)

type t

val create : n:int -> ?instances:int -> warmup:Rcc_sim.Engine.time -> unit -> t
(** [instances] sizes the per-instance breakdown (default 1). *)

val warmup : t -> Rcc_sim.Engine.time

val instances : t -> int

val record_completion :
  ?instance:int ->
  t ->
  now:Rcc_sim.Engine.time ->
  ntxns:int ->
  latency:Rcc_sim.Engine.time ->
  unit
(** A client's request completed. Counted toward throughput/latency (and
    the [instance]'s sub-metrics, when given) only after warmup;
    completions inside the warmup go to the separate warm-up series that
    only [timeline ~include_warmup:true] shows. *)

val record_exec :
  t -> replica:Rcc_common.Ids.replica_id -> now:Rcc_sim.Engine.time -> ntxns:int -> unit

val record_view_change : ?instance:int -> t -> unit

(** Speculative rollback: [rounds] uncommitted rounds ([txns] executed
    transactions) were unwound because a view change exposed a
    conflicting ordering in [instance]. *)
val record_rollback : ?instance:int -> t -> rounds:int -> txns:int -> unit
val record_collusion_detected : t -> unit
val record_contract_bytes : t -> int -> unit

val committed_txns : t -> int
val committed_batches : t -> int

val throughput : t -> duration:Rcc_sim.Engine.time -> float
(** Post-warmup committed transactions per second, where [duration] is the
    full run length including warmup. *)

val avg_latency : t -> float
(** Seconds. *)

val latency_percentile : t -> float -> float
(** [latency_percentile t p] with [p] a fraction ([0.5] = median,
    [0.99] = p99), in seconds. *)

val timeline : ?include_warmup:bool -> t -> (float * float) array
(** Client-side throughput per 100 ms bucket, txns/s. By default only
    post-warmup completions appear (warmup buckets are zero), so the
    buckets sum to exactly [committed_txns]; [~include_warmup:true]
    merges the warm-up completions back in for full-run figures. *)

val exec_timeline : t -> replica:Rcc_common.Ids.replica_id -> (float * float) array

val view_changes : t -> int
val collusions_detected : t -> int
val contract_bytes : t -> int

(** {2 Per-instance breakdown}

    All accessors return zeros for an instance id outside
    [0, instances). *)

val instance_txns : t -> int -> int
val instance_throughput : t -> int -> duration:Rcc_sim.Engine.time -> float
val instance_avg_latency : t -> int -> float
val instance_latency_percentile : t -> int -> float -> float
val instance_view_changes : t -> int -> int
val instance_rolled_back_rounds : t -> int -> int
val instance_rolled_back_txns : t -> int -> int
val instance_timeline : t -> int -> (float * float) array
