(** Interface every pluggable BFT protocol instance implements.

    RCC treats the protocol as a black box satisfying requirements R1–R4
    (§3.3); this module type is that black box. PBFT and Zyzzyva implement
    it; RCC composes [z] of them per replica. *)

open Rcc_common.Ids

module type S = sig
  type t

  val create : Instance_env.t -> t

  val start : t -> unit
  (** Arm the failure-detection watchdog. *)

  val handle : t -> src:replica_id -> Rcc_messages.Msg.t -> unit
  (** Process one protocol message (already charged to the worker). *)

  val submit_batch : t -> Rcc_messages.Batch.t -> unit
  (** Primary path: order a validated client batch. No-op on backups. *)

  val primary : t -> replica_id

  val view : t -> view

  val set_primary : t -> replica_id -> view:view -> unit
  (** Unified replacement (RCC coordinator) installs a new primary; the
      instance resumes from its incomplete rounds. *)

  val adopt : t -> round:round -> Rcc_messages.Batch.t -> cert:int list -> unit
  (** Accept a round learned through a recovery contract: mark it
      replicated and report it upward without re-running consensus. *)

  val accepted_batch :
    t -> round:round -> (Rcc_messages.Batch.t * int list) option
  (** The batch this replica accepted in [round] with its certifiers, used
      to build contracts. *)

  val incomplete_rounds : t -> round list
  (** Rounds started but not yet accepted, oldest first. *)

  val proposed_upto : t -> round
  (** Highest round this instance's primary has proposed (-1 if none);
      used by the liveness monitor to fill idle instances with null
      batches without double-proposing in-flight rounds. Protocols that
      manage their own pacemaker (HotStuff) return [max_int] to opt out. *)

  val resign_primary : t -> unit
  (** Called on a freshly recovered incarnation (restart-from-disk) whose
      volatile sequencing state is stale: if this replica currently leads
      the instance it must stop proposing — holding submitted batches —
      until a view change re-establishes sequencing through the usual
      state-exchange takeover. The lost incarnation may already have
      assigned (and broadcast) sequence numbers past anything the disk
      proves; re-using them would equivocate. No-op on backups, and for
      rotating-leader protocols with no volatile sequencing state. *)

  val fast_forward : t -> proof:Rcc_storage.Checkpoint_store.proof -> unit
  (** A snapshot covering rounds [< proof.seq] was just installed:
      collect those slots, advance the accept frontier to [proof.seq - 1],
      and adopt the transferred (f+1-attested) checkpoint proof so
      ordinary checkpointing resumes from there. Must not touch rounds
      [>= proof.seq]. *)

  val log_stats : t -> int * int
  (** [(retained slots, estimated live words)] of the instance's slot
      log, surfacing how tightly checkpoint GC is bounding memory. *)

  val checkpoint_log : t -> Rcc_storage.Checkpoint_store.t
  (** The instance's stable-checkpoint proofs — the supporting evidence a
      state-transfer donor attaches to snapshot offers. *)

  val cost_of : Rcc_sim.Costs.t -> Rcc_messages.Msg.t -> Rcc_sim.Engine.time
  (** Worker CPU to charge for receiving a message of this protocol. *)
end
