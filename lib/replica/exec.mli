(** The execute stage (§3.4.1 / §6).

    Collects per-instance acceptances, and once all [z] instances of a
    round have replicated, executes the round's batches in the configured
    deterministic order, appends the block to the ledger, and responds to
    clients. Rounds commit strictly in order even when instances run
    ahead (§3.5 pipelining), which is the only cross-instance coordination
    in the fault-free case.

    Two scheduling modes:

    - {!Serial} (the ablation baseline): one execute thread replays a
      round's batches back-to-back — the global ordering barrier that
      caps MultiP throughput.
    - [Parallel]: a conflict-aware scheduler. Complete consecutive
      rounds are gathered into a window, partitioned into dependency
      groups by read/write key-set intersection ({!Conflict}), and the
      groups run on a multi-server execute pool in any interleaving.
      Group execution applies KV effects and records duplicate replies;
      block building, transaction-table rows, metrics and client
      responses are deferred to an in-order commit stage on the
      scheduler lane, so ledger layout, replay order and the report
      digest are identical to serial execution for any workload. Windows
      are pipelined one at a time: the next window's conflict scan and
      pool execution overlap the previous window's commit jobs. *)

type sched =
  | Serial
  | Parallel of { pool : Rcc_sim.Cpu.pool; window : int }
      (** [window] = max consecutive rounds analyzed per conflict scan;
          larger windows expose more inter-round parallelism at the cost
          of a quadratic (in batches) pairwise scan. *)

type persist = {
  p_round : round:Rcc_common.Ids.round -> Acceptance.t array -> unit;
      (** a round committed to the ledger; acceptances in deterministic
          replay order *)
  p_rollback : frontier:Rcc_common.Ids.round -> unit;
      (** speculative rollback truncated the ledger back to [frontier]
          (the post-truncate next round) *)
  p_stable : floor:Rcc_common.Ids.round -> unit;
      (** the cross-instance stable checkpoint floor advanced to
          [floor] *)
}
(** Observer seam for the durable write-ahead journal: the journal layer
    (which lives above this library) registers callbacks instead of this
    module depending on it. All three fire synchronously on the execute
    lane, after the corresponding state change is applied. *)

type t

val create :
  engine:Rcc_sim.Engine.t ->
  costs:Rcc_sim.Costs.t ->
  server:Rcc_sim.Cpu.server ->
  z:int ->
  self:Rcc_common.Ids.replica_id ->
  store:Rcc_storage.Kv_store.t ->
  ledger:Rcc_storage.Ledger.t ->
  txn_table:Rcc_storage.Txn_table.t ->
  current_primaries:(unit -> Rcc_common.Ids.replica_id list) ->
  respond:(Rcc_common.Ids.client_id -> Rcc_messages.Msg.t -> unit) ->
  metrics:Metrics.t ->
  ?reorder:(Acceptance.t array -> Acceptance.t array) ->
  ?on_executed:(Rcc_common.Ids.round -> Acceptance.t array -> unit) ->
  ?materialize:bool ->
  ?sign_speculative:bool ->
  ?sched:sched ->
  unit ->
  t
(** [reorder] implements §3.4.1's execution-order selection; the default
    is instance order. RCC installs the digest-seeded permutation.
    [on_executed] fires after a round executes (the coordinator retains
    the round for contracts and drives pessimistic recovery from it); in
    parallel mode it receives the round's acceptances in replay order,
    which is safe because the coordinator looks slots up by instance id.
    [materialize = false] (large-scale experiments) charges the CPU cost
    of execution without mutating the KV store, so n replicas need not
    hold n copies of the half-million-record YCSB table; the runtime keeps
    replica 0 materialized.
    [sign_speculative] charges a digital signature per speculative
    response: standalone Zyzzyva clients assemble commit certificates from
    signed responses, whereas under RCC recovery is unification's job and
    responses carry MACs.
    [sched] defaults to {!Serial}, which is byte-identical to the
    pre-scheduler execute thread. *)

val set_on_executed : t -> (Rcc_common.Ids.round -> Acceptance.t array -> unit) -> unit
(** Late wiring for the coordinator, which is constructed after the
    execute thread. *)

val set_persist : t -> persist -> unit
(** Register the durable-journal observer (see {!persist}). *)

val settled : t -> bool
(** No round is mid-execution: always true in serial mode; in parallel
    mode, true between windows once every commit job drained. Durable
    snapshot capture is gated on this so a checkpoint never serializes a
    half-executed window. *)

val certificate_digest : string -> int list -> string
(** [certificate_digest batch_digest cert] is the digest stored in block
    proofs for an acceptance backed by [cert]. Exposed so journal replay
    can rebuild byte-identical blocks from logged acceptances. *)

val notify : t -> Acceptance.t -> unit
(** An instance replicated its round-[r] batch. Idempotent per
    (instance, round). *)

val next_round : t -> Rcc_common.Ids.round
(** The lowest round not yet scheduled for execution. *)

val max_pending_round : t -> Rcc_common.Ids.round
(** Highest round with any acceptance buffered (the pipeline horizon);
    [next_round t - 1] when nothing is pending. O(1): maintained as a
    notify-time watermark rather than a fold over the buffer. *)

val executed_rounds : t -> int

val executed_txns : t -> int

val missing_instances : t -> round:Rcc_common.Ids.round -> Rcc_common.Ids.instance_id list
(** Instances whose acceptance for [round] has not arrived — the
    collusion-detection signal read by the coordinator. *)

val accepted : t -> round:Rcc_common.Ids.round -> instance:Rcc_common.Ids.instance_id -> Acceptance.t option

val on_stable : t -> instance:Rcc_common.Ids.instance_id -> seq:Rcc_common.Ids.round -> unit
(** [instance]'s checkpoint became stable for rounds [< seq]. Once every
    instance's stable frontier passes a round, duplicate-reply entries
    first executed below the common frontier are evicted — bounding the
    cache to the unstable window (a client replaying a batch that old
    would already hold 2f+1 replies). *)

val replied_retained : t -> int array
(** Per-instance count of duplicate-reply entries currently retained
    (donor-merged entries count toward instance 0). *)

val replied_evicted : t -> int
(** Total entries evicted by checkpoint-driven GC since creation. *)

val rollback_to : t -> frontier:Rcc_common.Ids.round -> instance:Rcc_common.Ids.instance_id -> unit
(** Speculative rollback: a certified view change in [instance] exposed
    an ordering that conflicts with locally executed speculative rounds.
    Unwinds every executed-but-unstable round at or above [frontier] —
    KV effects are undone from the per-round write journal, ledger blocks
    above the frontier are dropped, and their transaction-table rows and
    duplicate-reply entries are evicted. The surviving instances'
    acceptances re-enter the pending buffer and re-execute once
    [instance]'s new view re-delivers its orders; an in-flight parallel
    window is fenced the way a snapshot install fences one. The caller
    must keep [frontier] above [instance]'s commit certificate and stable
    checkpoint (conflicts at or below stable are state transfer's job). *)

val replied_entries :
  t ->
  (Rcc_common.Ids.client_id * string * Rcc_common.Ids.round * string) list
(** The duplicate-reply cache as [(client, batch digest, round, result
    digest)] tuples, for bundling into a served snapshot. *)

val install_snapshot :
  t ->
  seq:Rcc_common.Ids.round ->
  replied:(Rcc_common.Ids.client_id * string * Rcc_common.Ids.round * string) list ->
  unit
(** A verified snapshot covering rounds [< seq] was installed into the
    ledger and KV store: jump the execution frontier to [seq], drop
    buffered acceptances the snapshot covers, merge the donor's
    duplicate-reply cache (local entries win), and drain any buffered
    rounds at or past the boundary. In parallel mode, an in-flight window
    overtaken by the install skips its superseded members and commits.
    No-op unless [seq] advances the frontier. *)
