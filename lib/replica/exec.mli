(** The execute thread (§3.4.1 / §6).

    Collects per-instance acceptances, and once all [z] instances of a
    round have replicated, executes the round's batches in the configured
    deterministic order, appends the block to the ledger, and responds to
    clients. Rounds execute strictly in order even when instances run
    ahead (§3.5 pipelining), which is the only cross-instance coordination
    in the fault-free case. *)

type t

val create :
  engine:Rcc_sim.Engine.t ->
  costs:Rcc_sim.Costs.t ->
  server:Rcc_sim.Cpu.server ->
  z:int ->
  self:Rcc_common.Ids.replica_id ->
  store:Rcc_storage.Kv_store.t ->
  ledger:Rcc_storage.Ledger.t ->
  txn_table:Rcc_storage.Txn_table.t ->
  current_primaries:(unit -> Rcc_common.Ids.replica_id list) ->
  respond:(Rcc_common.Ids.client_id -> Rcc_messages.Msg.t -> unit) ->
  metrics:Metrics.t ->
  ?reorder:(Acceptance.t array -> Acceptance.t array) ->
  ?on_executed:(Rcc_common.Ids.round -> Acceptance.t array -> unit) ->
  ?materialize:bool ->
  ?sign_speculative:bool ->
  unit ->
  t
(** [reorder] implements §3.4.1's execution-order selection; the default
    is instance order. RCC installs the digest-seeded permutation.
    [on_executed] fires after a round executes (the coordinator retains
    the round for contracts and drives pessimistic recovery from it).
    [materialize = false] (large-scale experiments) charges the CPU cost
    of execution without mutating the KV store, so n replicas need not
    hold n copies of the half-million-record YCSB table; the runtime keeps
    replica 0 materialized.
    [sign_speculative] charges a digital signature per speculative
    response: standalone Zyzzyva clients assemble commit certificates from
    signed responses, whereas under RCC recovery is unification's job and
    responses carry MACs. *)

val set_on_executed : t -> (Rcc_common.Ids.round -> Acceptance.t array -> unit) -> unit
(** Late wiring for the coordinator, which is constructed after the
    execute thread. *)

val notify : t -> Acceptance.t -> unit
(** An instance replicated its round-[r] batch. Idempotent per
    (instance, round). *)

val next_round : t -> Rcc_common.Ids.round
(** The lowest round not yet scheduled for execution. *)

val max_pending_round : t -> Rcc_common.Ids.round
(** Highest round with any acceptance buffered (the pipeline horizon);
    [next_round t - 1] when nothing is pending. *)

val executed_rounds : t -> int

val executed_txns : t -> int

val missing_instances : t -> round:Rcc_common.Ids.round -> Rcc_common.Ids.instance_id list
(** Instances whose acceptance for [round] has not arrived — the
    collusion-detection signal read by the coordinator. *)

val accepted : t -> round:Rcc_common.Ids.round -> instance:Rcc_common.Ids.instance_id -> Acceptance.t option

val replied_entries :
  t ->
  (Rcc_common.Ids.client_id * string * Rcc_common.Ids.round * string) list
(** The duplicate-reply cache as [(client, batch digest, round, result
    digest)] tuples, for bundling into a served snapshot. *)

val install_snapshot :
  t ->
  seq:Rcc_common.Ids.round ->
  replied:(Rcc_common.Ids.client_id * string * Rcc_common.Ids.round * string) list ->
  unit
(** A verified snapshot covering rounds [< seq] was installed into the
    ledger and KV store: jump the execution frontier to [seq], drop
    buffered acceptances the snapshot covers, merge the donor's
    duplicate-reply cache (local entries win), and drain any buffered
    rounds at or past the boundary. No-op unless [seq] advances the
    frontier. *)
