module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch

type t = {
  engine : Engine.t;
  costs : Costs.t;
  server : Rcc_sim.Cpu.server;
  z : int;
  self : Rcc_common.Ids.replica_id;
  store : Rcc_storage.Kv_store.t;
  ledger : Rcc_storage.Ledger.t;
  txn_table : Rcc_storage.Txn_table.t;
  current_primaries : unit -> Rcc_common.Ids.replica_id list;
  respond : Rcc_common.Ids.client_id -> Msg.t -> unit;
  metrics : Metrics.t;
  reorder : Acceptance.t array -> Acceptance.t array;
  mutable on_executed : int -> Acceptance.t array -> unit;
  materialize : bool;
  sign_speculative : bool;
  pending : (int, Acceptance.t option array) Hashtbl.t;
  (* (client, batch digest) -> (round, result digest) of the first
     execution: duplicate-ordered batches re-send the cached reply
     instead of re-executing (§3.1 request-duplication prevention). *)
  replied : (Rcc_common.Ids.client_id * string, int * string) Hashtbl.t;
  mutable next_round : int;
  mutable executed_rounds : int;
  mutable executed_txns : int;
}

let create ~engine ~costs ~server ~z ~self ~store ~ledger ~txn_table
    ~current_primaries ~respond ~metrics ?(reorder = fun a -> a)
    ?(on_executed = fun _ _ -> ()) ?(materialize = true)
    ?(sign_speculative = false) () =
  {
    engine;
    costs;
    server;
    z;
    self;
    store;
    ledger;
    txn_table;
    current_primaries;
    respond;
    metrics;
    reorder;
    on_executed;
    materialize;
    sign_speculative;
    pending = Hashtbl.create 256;
    replied = Hashtbl.create 256;
    next_round = 0;
    executed_rounds = 0;
    executed_txns = 0;
  }

let set_on_executed t f = t.on_executed <- f

let slots t round =
  match Hashtbl.find_opt t.pending round with
  | Some a -> a
  | None ->
      let a = Array.make t.z None in
      Hashtbl.replace t.pending round a;
      a

let round_cost t accs =
  Array.fold_left
    (fun acc (a : Acceptance.t) ->
      let ntxns = Array.length a.batch.Batch.txns in
      acc
      + t.costs.Costs.exec_batch_overhead
      + (ntxns * t.costs.Costs.txn_exec)
      + t.costs.Costs.response_create
      + if a.speculative && t.sign_speculative then t.costs.Costs.sign else 0)
    (Costs.hash_cost t.costs 256 (* block hash *))
    accs

(* digest(batch_digest ^ u64(r) ^ ...) over one flat buffer —
   byte-identical to the digest_list of the per-voter strings it
   replaces, minus the intermediate allocations. *)
let certificate_digest batch_digest cert =
  let n = String.length batch_digest in
  let buf = Bytes.create (n + (8 * List.length cert)) in
  Bytes.blit_string batch_digest 0 buf 0 n;
  let off = ref n in
  List.iter
    (fun r ->
      Rcc_common.Bytes_util.put_u64be buf !off (Int64.of_int r);
      off := !off + 8)
    cert;
  Rcc_crypto.Sha256.digest (Bytes.unsafe_to_string buf)

let execute_round t round accs =
  (* A snapshot install can supersede a round while its execution sits in
     the CPU queue: its effects are already part of the installed state,
     so replaying it would double-execute (and break the ledger's round
     sequencing). Fault-free, the guard never fires — rounds execute in
     exactly ledger order. *)
  if Rcc_storage.Ledger.next_round t.ledger = round then begin
  let ordered = t.reorder (Array.copy accs) in
  let proofs = ref [] in
  let clients = ref [] in
  Array.iter
    (fun (a : Acceptance.t) ->
      let batch = a.batch in
      let ntxns = Array.length batch.Batch.txns in
      if Engine.tracing t.engine then
        Engine.trace t.engine ~replica:t.self ~instance:a.instance
          (Rcc_trace.Event.Slot_exec
             { round; batch = batch.Batch.id; txns = ntxns });
      let key = (batch.Batch.client, batch.Batch.digest) in
      let dup =
        (not (Batch.is_null batch)) && Hashtbl.mem t.replied key
      in
      (* The proof always enters the block — the batch was agreed in
         sequence — but a duplicate-ordered batch is not re-executed:
         the client gets the cached reply of the first execution. *)
      proofs :=
        {
          Rcc_storage.Block.instance = a.instance;
          batch_digest = batch.Batch.digest;
          certificate_digest = certificate_digest batch.Batch.digest a.cert;
        }
        :: !proofs;
      if not (Batch.is_null batch) then
        clients := batch.Batch.client :: !clients;
      if dup then begin
        let first_round, result_digest = Hashtbl.find t.replied key in
        t.respond batch.Batch.client
          (Msg.Response
             {
               client = batch.Batch.client;
               batch_id = batch.Batch.id;
               round = first_round;
               result_digest;
               txn_count = ntxns;
               speculative = a.speculative;
               history = a.history;
             })
      end
      else begin
        if t.materialize then
          Array.iter
            (fun txn -> ignore (Rcc_workload.Txn.apply t.store txn))
            batch.Batch.txns;
        let result_digest =
          Rcc_crypto.Sha256.digest_list
            [ batch.Batch.digest; Rcc_common.Bytes_util.u64_string (Int64.of_int round) ]
        in
        t.executed_txns <- t.executed_txns + ntxns;
        Rcc_storage.Txn_table.record t.txn_table
          {
            Rcc_storage.Txn_table.round;
            instance = a.instance;
            client = batch.Batch.client;
            batch_digest = batch.Batch.digest;
            response_digest = result_digest;
            txn_count = ntxns;
          };
        if not (Batch.is_null batch) then begin
          Hashtbl.replace t.replied key (round, result_digest);
          t.respond batch.Batch.client
            (Msg.Response
               {
                 client = batch.Batch.client;
                 batch_id = batch.Batch.id;
                 round;
                 result_digest;
                 txn_count = ntxns;
                 speculative = a.speculative;
                 history = a.history;
               })
        end;
        Metrics.record_exec t.metrics ~replica:t.self ~now:(Engine.now t.engine)
          ~ntxns
      end)
    ordered;
  let block =
    {
      Rcc_storage.Block.round;
      prev_hash = Rcc_storage.Ledger.head_hash t.ledger;
      proofs = List.rev !proofs;
      primaries = t.current_primaries ();
      clients = List.rev !clients;
    }
  in
  Rcc_storage.Ledger.append_exn t.ledger block;
  t.executed_rounds <- t.executed_rounds + 1;
  t.on_executed round accs
  end

let rec try_advance t =
  match Hashtbl.find_opt t.pending t.next_round with
  | None -> ()
  | Some slots ->
      if Array.for_all Option.is_some slots then begin
        let round = t.next_round in
        let accs = Array.map Option.get slots in
        Hashtbl.remove t.pending round;
        t.next_round <- round + 1;
        Rcc_sim.Cpu.submit t.server ~cost:(round_cost t accs) (fun () ->
            execute_round t round accs);
        try_advance t
      end

let notify t (a : Acceptance.t) =
  if a.round >= t.next_round then begin
    let slots = slots t a.round in
    if Option.is_none slots.(a.instance) then begin
      slots.(a.instance) <- Some a;
      if a.round = t.next_round then try_advance t
    end
  end

let next_round t = t.next_round

let max_pending_round t =
  Hashtbl.fold (fun round _ acc -> max round acc) t.pending (t.next_round - 1)
let executed_rounds t = t.executed_rounds
let executed_txns t = t.executed_txns

let missing_instances t ~round =
  if round < t.next_round then []
  else
    match Hashtbl.find_opt t.pending round with
    | None -> List.init t.z (fun i -> i)
    | Some slots ->
        let missing = ref [] in
        for i = t.z - 1 downto 0 do
          if Option.is_none slots.(i) then missing := i :: !missing
        done;
        !missing

let accepted t ~round ~instance =
  match Hashtbl.find_opt t.pending round with
  | Some slots when round >= t.next_round -> slots.(instance)
  | Some _ | None -> None

(* --- state transfer --------------------------------------------------- *)

let replied_entries t =
  Hashtbl.fold
    (fun (client, digest) (round, result) acc ->
      (client, digest, round, result) :: acc)
    t.replied []

let install_snapshot t ~seq ~replied =
  if seq > t.next_round then begin
    (* Acceptances buffered for covered rounds are obsolete — the
       snapshot already contains their effects. Buffered rounds at or
       past the boundary stay pending and drain normally below. *)
    let stale =
      Hashtbl.fold
        (fun round _ acc -> if round < seq then round :: acc else acc)
        t.pending []
    in
    List.iter (Hashtbl.remove t.pending) stale;
    t.next_round <- seq;
    (* The donor's duplicate-reply cache keeps §3.1 duplicate suppression
       alive across the jump; existing (newer) local entries win. *)
    List.iter
      (fun (client, digest, round, result) ->
        let key = (client, digest) in
        if not (Hashtbl.mem t.replied key) then
          Hashtbl.replace t.replied key (round, result))
      replied;
    try_advance t
  end
