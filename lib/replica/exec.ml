module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch

type sched =
  | Serial
  | Parallel of { pool : Rcc_sim.Cpu.pool; window : int }

(* Durable-journal seam: the journal (when enabled) observes executed
   rounds in replay order, rollbacks, and stable-floor advances without
   this module depending on the storage layer above it. *)
type persist = {
  p_round : round:int -> Acceptance.t array -> unit;
      (* acceptances in deterministic replay order *)
  p_rollback : frontier:int -> unit;
      (* ledger truncated back to [frontier] *)
  p_stable : floor:int -> unit;
      (* cross-instance stable floor advanced *)
}

(* One round of an in-flight parallel window. [ordered] is the round's
   acceptances in the configured deterministic replay order; the reply
   arrays are filled by group execution (out of commit order) and read by
   the in-order commit stage. *)
type wround = {
  w_round : int;
  ordered : Acceptance.t array;
  reply_round : int array;
  reply_digest : string array;
  did_exec : bool array;  (* false = duplicate, replied from cache *)
}

type window_state = {
  w_base : int;  (* rounds.(i).w_round = w_base + i *)
  rounds : wround array;
  mutable groups_left : int;
  gen : int;  (* rollback fence: stale generations skip themselves *)
}

type t = {
  engine : Engine.t;
  costs : Costs.t;
  server : Rcc_sim.Cpu.server;
  sched : sched;
  z : int;
  self : Rcc_common.Ids.replica_id;
  store : Rcc_storage.Kv_store.t;
  ledger : Rcc_storage.Ledger.t;
  txn_table : Rcc_storage.Txn_table.t;
  current_primaries : unit -> Rcc_common.Ids.replica_id list;
  respond : Rcc_common.Ids.client_id -> Msg.t -> unit;
  metrics : Metrics.t;
  reorder : Acceptance.t array -> Acceptance.t array;
  mutable on_executed : int -> Acceptance.t array -> unit;
  materialize : bool;
  sign_speculative : bool;
  pending : (int, Acceptance.t option array) Hashtbl.t;
  (* (client, batch digest) -> (round, result digest, instance) of the
     first execution: duplicate-ordered batches re-send the cached reply
     instead of re-executing (§3.1 request-duplication prevention). The
     instance tag feeds the per-instance retained-count stat. *)
  replied : (Rcc_common.Ids.client_id * string, int * string * int) Hashtbl.t;
  mutable next_round : int;
  mutable executed_rounds : int;
  mutable executed_txns : int;
  (* Highest round ever notified — an O(1) watermark replacing the
     O(pending) fold over the buffer. Exact: every notified round is
     either still pending (<= high_water by construction), executed
     (< next_round), or dropped by a snapshot install (< next_round
     again), so max(high_water, next_round - 1) equals the max over
     pending U {next_round - 1}. *)
  mutable high_water : int;
  (* Parallel-mode state. [install_horizon]: rounds below it were
     superseded by a snapshot install while their window was in flight;
     queued group members and commit jobs skip them. *)
  mutable install_horizon : int;
  mutable active : window_state option;
  mutable group_seq : int;
  (* Speculative-rollback state. [gen] fences in-flight parallel windows
     (bumped by [rollback_to]; group callbacks and commit jobs compare
     against it). [spec_log] keeps each executed round's acceptances
     (instance-indexed) until the checkpoint frontier passes it, so a
     rollback can re-buffer the surviving instances' batches for
     re-execution. [uncommitted] tracks parallel window rounds that
     executed but have not committed yet — [t.active] alone cannot serve,
     because [complete_window] clears it before the commit jobs run. *)
  mutable gen : int;
  spec_log : (int, Acceptance.t array) Hashtbl.t;
  uncommitted : (int, wround) Hashtbl.t;
  (* Duplicate-reply cache bound: per-instance stable checkpoint seqs;
     entries whose first execution is behind min over instances are
     evicted (clients never replay a batch that old — checkpoint
     stability implies 2f+1 replicas answered it). *)
  stable : int array;
  mutable evict_floor : int;
  mutable replied_evicted : int;
  mutable persist : persist option;
}

let create ~engine ~costs ~server ~z ~self ~store ~ledger ~txn_table
    ~current_primaries ~respond ~metrics ?(reorder = fun a -> a)
    ?(on_executed = fun _ _ -> ()) ?(materialize = true)
    ?(sign_speculative = false) ?(sched = Serial) () =
  (* Rollback needs per-round undo records for every KV write. *)
  if materialize then Rcc_storage.Kv_store.enable_journal store;
  {
    engine;
    costs;
    server;
    sched;
    z;
    self;
    store;
    ledger;
    txn_table;
    current_primaries;
    respond;
    metrics;
    reorder;
    on_executed;
    materialize;
    sign_speculative;
    pending = Hashtbl.create 256;
    replied = Hashtbl.create 256;
    next_round = 0;
    executed_rounds = 0;
    executed_txns = 0;
    high_water = -1;
    install_horizon = 0;
    active = None;
    group_seq = 0;
    gen = 0;
    spec_log = Hashtbl.create 64;
    uncommitted = Hashtbl.create 16;
    stable = Array.make z 0;
    evict_floor = 0;
    replied_evicted = 0;
    persist = None;
  }

let set_on_executed t f = t.on_executed <- f
let set_persist t p = t.persist <- Some p

(* True when no round is mid-execution: serial always (rounds run whole
   on one server job), parallel only between windows with all commits
   drained. Snapshot capture is gated on this so the KV never leaks a
   half-window state into a durable checkpoint. *)
let settled t =
  match t.sched with
  | Serial -> true
  | Parallel _ -> t.active = None && Hashtbl.length t.uncommitted = 0

let slots t round =
  match Hashtbl.find_opt t.pending round with
  | Some a -> a
  | None ->
      let a = Array.make t.z None in
      Hashtbl.replace t.pending round a;
      a

let member_cost t (a : Acceptance.t) =
  let ntxns = Array.length a.batch.Batch.txns in
  t.costs.Costs.exec_batch_overhead
  + (ntxns * t.costs.Costs.txn_exec)
  + t.costs.Costs.response_create
  + if a.speculative && t.sign_speculative then t.costs.Costs.sign else 0

let round_cost t accs =
  Array.fold_left
    (fun acc a -> acc + member_cost t a)
    (Costs.hash_cost t.costs 256 (* block hash *))
    accs

(* digest(batch_digest ^ u64(r) ^ ...) over one flat buffer —
   byte-identical to the digest_list of the per-voter strings it
   replaces, minus the intermediate allocations. *)
let certificate_digest batch_digest cert =
  let n = String.length batch_digest in
  let buf = Bytes.create (n + (8 * List.length cert)) in
  Bytes.blit_string batch_digest 0 buf 0 n;
  let off = ref n in
  List.iter
    (fun r ->
      Rcc_common.Bytes_util.put_u64be buf !off (Int64.of_int r);
      off := !off + 8)
    cert;
  Rcc_crypto.Sha256.digest (Bytes.unsafe_to_string buf)

(* --- serial path (the ablation baseline; kept byte-identical) ---------- *)

let execute_round t round =
  (* The round's acceptances are re-read from the buffer at run time, not
     captured at submit: a rollback between submit and execution replaces
     them (and clears the conflicted instance's slot), so a stale queued
     job either sees an incomplete round and skips, or executes the
     post-rollback ordering — both correct. The ledger guard also covers
     snapshot installs superseding a queued round: its effects are
     already part of the installed state, so replaying it would
     double-execute. Fault-free, neither guard ever fires — rounds
     execute in exactly ledger order. *)
  match Hashtbl.find_opt t.pending round with
  | Some slots
    when Array.for_all Option.is_some slots
         && Rcc_storage.Ledger.next_round t.ledger = round ->
  let accs = Array.map Option.get slots in
  Hashtbl.remove t.pending round;
  if t.materialize then Rcc_storage.Kv_store.journal_round t.store round;
  let ordered = t.reorder (Array.copy accs) in
  let proofs = ref [] in
  let clients = ref [] in
  Array.iter
    (fun (a : Acceptance.t) ->
      let batch = a.batch in
      let ntxns = Array.length batch.Batch.txns in
      if Engine.tracing t.engine then
        Engine.trace t.engine ~replica:t.self ~instance:a.instance
          (Rcc_trace.Event.Slot_exec
             { round; batch = batch.Batch.id; txns = ntxns });
      let key = (batch.Batch.client, batch.Batch.digest) in
      let dup =
        (not (Batch.is_null batch)) && Hashtbl.mem t.replied key
      in
      (* The proof always enters the block — the batch was agreed in
         sequence — but a duplicate-ordered batch is not re-executed:
         the client gets the cached reply of the first execution. *)
      proofs :=
        {
          Rcc_storage.Block.instance = a.instance;
          batch_digest = batch.Batch.digest;
          certificate_digest = certificate_digest batch.Batch.digest a.cert;
        }
        :: !proofs;
      if not (Batch.is_null batch) then
        clients := batch.Batch.client :: !clients;
      if dup then begin
        let first_round, result_digest, _ = Hashtbl.find t.replied key in
        t.respond batch.Batch.client
          (Msg.Response
             {
               client = batch.Batch.client;
               batch_id = batch.Batch.id;
               round = first_round;
               result_digest;
               txn_count = ntxns;
               speculative = a.speculative;
               history = a.history;
             })
      end
      else begin
        if t.materialize then
          Array.iter
            (fun txn -> ignore (Rcc_workload.Txn.apply t.store txn))
            batch.Batch.txns;
        let result_digest =
          Rcc_crypto.Sha256.digest_list
            [ batch.Batch.digest; Rcc_common.Bytes_util.u64_string (Int64.of_int round) ]
        in
        t.executed_txns <- t.executed_txns + ntxns;
        Rcc_storage.Txn_table.record t.txn_table
          {
            Rcc_storage.Txn_table.round;
            instance = a.instance;
            client = batch.Batch.client;
            batch_digest = batch.Batch.digest;
            response_digest = result_digest;
            txn_count = ntxns;
          };
        if not (Batch.is_null batch) then begin
          Hashtbl.replace t.replied key (round, result_digest, a.instance);
          t.respond batch.Batch.client
            (Msg.Response
               {
                 client = batch.Batch.client;
                 batch_id = batch.Batch.id;
                 round;
                 result_digest;
                 txn_count = ntxns;
                 speculative = a.speculative;
                 history = a.history;
               })
        end;
        Metrics.record_exec t.metrics ~replica:t.self ~now:(Engine.now t.engine)
          ~ntxns
      end)
    ordered;
  let block =
    {
      Rcc_storage.Block.round;
      prev_hash = Rcc_storage.Ledger.head_hash t.ledger;
      proofs = List.rev !proofs;
      primaries = t.current_primaries ();
      clients = List.rev !clients;
    }
  in
  Rcc_storage.Ledger.append_exn t.ledger block;
  t.executed_rounds <- t.executed_rounds + 1;
  Hashtbl.replace t.spec_log round accs;
  (match t.persist with
  | Some p -> p.p_round ~round ordered
  | None -> ());
  t.on_executed round accs
  | Some _ | None -> ()

let rec try_advance_serial t =
  match Hashtbl.find_opt t.pending t.next_round with
  | None -> ()
  | Some slots ->
      if Array.for_all Option.is_some slots then begin
        let round = t.next_round in
        let accs = Array.map Option.get slots in
        t.next_round <- round + 1;
        (* The buffer entry stays until execution runs (see
           [execute_round]); [notify] cannot mutate it — its round guard
           rejects rounds below [next_round]. *)
        Rcc_sim.Cpu.submit t.server ~cost:(round_cost t accs) (fun () ->
            execute_round t round);
        try_advance_serial t
      end

(* --- parallel path ----------------------------------------------------- *)

(* Replay one batch at group-execution time: duplicate check, KV apply
   and duplicate-reply recording happen here (other groups of the window
   are disjoint, so state order within the window is the serial one);
   client responses, txn-table rows and the ledger block are deferred to
   the in-order commit stage via the reply arrays. *)
let execute_member t (w : wround) rank (a : Acceptance.t) =
  let batch = a.batch in
  let ntxns = Array.length batch.Batch.txns in
  if Engine.tracing t.engine then
    Engine.trace t.engine ~replica:t.self ~instance:a.instance
      (Rcc_trace.Event.Slot_exec
         { round = w.w_round; batch = batch.Batch.id; txns = ntxns });
  let key = (batch.Batch.client, batch.Batch.digest) in
  if (not (Batch.is_null batch)) && Hashtbl.mem t.replied key then begin
    let first_round, result_digest, _ = Hashtbl.find t.replied key in
    w.reply_round.(rank) <- first_round;
    w.reply_digest.(rank) <- result_digest
  end
  else begin
    if t.materialize then begin
      Rcc_storage.Kv_store.journal_round t.store w.w_round;
      Array.iter
        (fun txn -> ignore (Rcc_workload.Txn.apply t.store txn))
        batch.Batch.txns
    end;
    let result_digest =
      Rcc_crypto.Sha256.digest_list
        [
          batch.Batch.digest;
          Rcc_common.Bytes_util.u64_string (Int64.of_int w.w_round);
        ]
    in
    if not (Batch.is_null batch) then
      Hashtbl.replace t.replied key (w.w_round, result_digest, a.instance);
    w.reply_round.(rank) <- w.w_round;
    w.reply_digest.(rank) <- result_digest;
    w.did_exec.(rank) <- true
  end

(* In-order commit of a fully executed round: block build, txn-table
   rows, metrics, client responses, coordinator callback. Runs on the
   scheduler FIFO, so commits retain round order; the ledger guard skips
   rounds a snapshot install superseded mid-flight. *)
let commit_round t (w : wround) =
  Hashtbl.remove t.uncommitted w.w_round;
  if
    w.w_round >= t.install_horizon
    && Rcc_storage.Ledger.next_round t.ledger = w.w_round
  then begin
    let proofs = ref [] in
    let clients = ref [] in
    Array.iteri
      (fun rank (a : Acceptance.t) ->
        let batch = a.batch in
        let ntxns = Array.length batch.Batch.txns in
        proofs :=
          {
            Rcc_storage.Block.instance = a.instance;
            batch_digest = batch.Batch.digest;
            certificate_digest = certificate_digest batch.Batch.digest a.cert;
          }
          :: !proofs;
        if not (Batch.is_null batch) then
          clients := batch.Batch.client :: !clients;
        if w.did_exec.(rank) then begin
          t.executed_txns <- t.executed_txns + ntxns;
          Rcc_storage.Txn_table.record t.txn_table
            {
              Rcc_storage.Txn_table.round = w.w_round;
              instance = a.instance;
              client = batch.Batch.client;
              batch_digest = batch.Batch.digest;
              response_digest = w.reply_digest.(rank);
              txn_count = ntxns;
            };
          Metrics.record_exec t.metrics ~replica:t.self
            ~now:(Engine.now t.engine) ~ntxns
        end;
        if not (Batch.is_null batch) then
          t.respond batch.Batch.client
            (Msg.Response
               {
                 client = batch.Batch.client;
                 batch_id = batch.Batch.id;
                 round = w.reply_round.(rank);
                 result_digest = w.reply_digest.(rank);
                 txn_count = ntxns;
                 speculative = a.speculative;
                 history = a.history;
               }))
      w.ordered;
    let block =
      {
        Rcc_storage.Block.round = w.w_round;
        prev_hash = Rcc_storage.Ledger.head_hash t.ledger;
        proofs = List.rev !proofs;
        primaries = t.current_primaries ();
        clients = List.rev !clients;
      }
    in
    Rcc_storage.Ledger.append_exn t.ledger block;
    t.executed_rounds <- t.executed_rounds + 1;
    (* Re-index by instance for the speculative log: a rollback
       re-buffers these into the per-instance pending slots. *)
    let by_instance = Array.make t.z w.ordered.(0) in
    Array.iter (fun (a : Acceptance.t) -> by_instance.(a.instance) <- a) w.ordered;
    Hashtbl.replace t.spec_log w.w_round by_instance;
    (match t.persist with
    | Some p -> p.p_round ~round:w.w_round w.ordered
    | None -> ());
    t.on_executed w.w_round w.ordered
  end

let rec try_advance_parallel t pool window =
  match t.active with
  | Some _ -> ()  (* one window in flight; re-triggered on completion *)
  | None ->
      let gathered = ref [] in
      let n = ref 0 in
      let continue_ = ref true in
      while !continue_ && !n < window do
        match Hashtbl.find_opt t.pending t.next_round with
        | Some slots when Array.for_all Option.is_some slots ->
            let round = t.next_round in
            let accs = Array.map Option.get slots in
            Hashtbl.remove t.pending round;
            t.next_round <- round + 1;
            gathered := (round, accs) :: !gathered;
            incr n
        | _ -> continue_ := false
      done;
      if !n > 0 then dispatch_window t pool window (List.rev !gathered)

and dispatch_window t pool window rounds_list =
  let wrounds =
    Array.of_list
      (List.map
         (fun (round, accs) ->
           let ordered = t.reorder (Array.copy accs) in
           let nslots = Array.length ordered in
           {
             w_round = round;
             ordered;
             reply_round = Array.make nslots 0;
             reply_digest = Array.make nslots "";
             did_exec = Array.make nslots false;
           })
         rounds_list)
  in
  let w_base = wrounds.(0).w_round in
  let items =
    Array.concat
      (Array.to_list
         (Array.map
            (fun w ->
              Array.mapi
                (fun rank a -> { Conflict.round = w.w_round; rank; acc = a })
                w.ordered)
            wrounds))
  in
  let groups = Conflict.partition items in
  let ngroups = List.length groups in
  (* The conflict scan and per-group dispatch run on the scheduler lane;
     group execution is chained off its completion time. *)
  let analysis_cost =
    (t.costs.Costs.conflict_scan * Conflict.total_keys items)
    + (t.costs.Costs.exec_dispatch * ngroups)
  in
  let ready =
    Rcc_sim.Cpu.reserve t.server ~ready:(Engine.now t.engine)
      ~cost:analysis_cost
  in
  let ws = { w_base; rounds = wrounds; groups_left = ngroups; gen = t.gen } in
  t.active <- Some ws;
  Array.iter (fun w -> Hashtbl.replace t.uncommitted w.w_round w) wrounds;
  List.iter
    (fun (g : Conflict.group) ->
      let gid = t.group_seq in
      t.group_seq <- t.group_seq + 1;
      if Engine.tracing t.engine then begin
        let distinct_rounds =
          List.sort_uniq Int.compare
            (List.map (fun it -> it.Conflict.round) g.members)
        in
        Engine.trace t.engine ~replica:t.self ~instance:(-1)
          (Rcc_trace.Event.Exec_group
             {
               group = gid;
               members = List.length g.members;
               txns = g.txns;
               rounds = List.length distinct_rounds;
             });
        if g.conflict_keys > 0 then
          Engine.trace t.engine ~replica:t.self ~instance:(-1)
            (Rcc_trace.Event.Exec_conflict
               { group = gid; keys = g.conflict_keys })
      end;
      let cost =
        List.fold_left
          (fun c it -> c + member_cost t it.Conflict.acc)
          0 g.members
      in
      Rcc_sim.Cpu.pool_submit_ready pool ~ready ~cost (fun () ->
          (* A rollback fenced this window: its rounds were re-buffered
             for re-execution, so the stale group must neither apply
             state nor complete the (already released) window. *)
          if ws.gen = t.gen then begin
            List.iter
              (fun (it : Conflict.item) ->
                if it.Conflict.round >= t.install_horizon then
                  execute_member t
                    wrounds.(it.Conflict.round - w_base)
                    it.Conflict.rank it.Conflict.acc)
              g.members;
            ws.groups_left <- ws.groups_left - 1;
            if ws.groups_left = 0 then complete_window t pool window ws
          end))
    groups

and complete_window t pool window ws =
  (* All groups done: queue the in-order commits on the scheduler FIFO
     (one block hash each), release the window, and gather the next one —
     its analysis queues behind the commit costs on the same lane, while
     its group execution overlaps them on the pool. *)
  Array.iter
    (fun w ->
      Rcc_sim.Cpu.submit t.server
        ~cost:(Costs.hash_cost t.costs 256)
        (fun () -> if ws.gen = t.gen then commit_round t w))
    ws.rounds;
  t.active <- None;
  try_advance_parallel t pool window

let try_advance t =
  match t.sched with
  | Serial -> try_advance_serial t
  | Parallel { pool; window } -> try_advance_parallel t pool window

let notify t (a : Acceptance.t) =
  if a.round >= t.next_round then begin
    let slots = slots t a.round in
    if Option.is_none slots.(a.instance) then begin
      slots.(a.instance) <- Some a;
      if a.round > t.high_water then t.high_water <- a.round;
      if a.round = t.next_round then try_advance t
    end
  end

let next_round t = t.next_round

let max_pending_round t =
  if t.high_water > t.next_round - 1 then t.high_water else t.next_round - 1

let executed_rounds t = t.executed_rounds
let executed_txns t = t.executed_txns

let missing_instances t ~round =
  if round < t.next_round then []
  else
    match Hashtbl.find_opt t.pending round with
    | None -> List.init t.z (fun i -> i)
    | Some slots ->
        let missing = ref [] in
        for i = t.z - 1 downto 0 do
          if Option.is_none slots.(i) then missing := i :: !missing
        done;
        !missing

let accepted t ~round ~instance =
  match Hashtbl.find_opt t.pending round with
  | Some slots when round >= t.next_round -> slots.(instance)
  | Some _ | None -> None

(* --- duplicate-reply cache bound --------------------------------------- *)

let evict_replied t floor =
  let dead =
    Hashtbl.fold
      (fun key (round, _, _) acc -> if round < floor then key :: acc else acc)
      t.replied []
  in
  List.iter (Hashtbl.remove t.replied) dead;
  t.replied_evicted <- t.replied_evicted + List.length dead

let on_stable t ~instance ~seq =
  if instance >= 0 && instance < t.z && seq > t.stable.(instance) then begin
    t.stable.(instance) <- seq;
    let floor = Array.fold_left min max_int t.stable in
    if floor > t.evict_floor then begin
      t.evict_floor <- floor;
      evict_replied t floor;
      (* Rounds below the cross-instance stable floor can never be rolled
         back (a conflict at or below an instance's stable checkpoint is
         left to state transfer), so their undo records and speculative
         acceptances are dead weight. *)
      if t.materialize then
        Rcc_storage.Kv_store.forget_below t.store ~round:floor;
      let dead =
        Hashtbl.fold
          (fun round _ acc -> if round < floor then round :: acc else acc)
          t.spec_log []
      in
      List.iter (Hashtbl.remove t.spec_log) dead;
      match t.persist with
      | Some p -> p.p_stable ~floor
      | None -> ()
    end
  end

let replied_retained t =
  let counts = Array.make t.z 0 in
  Hashtbl.iter
    (fun _ (_, _, instance) ->
      if instance >= 0 && instance < t.z then
        counts.(instance) <- counts.(instance) + 1)
    t.replied;
  counts

let replied_evicted t = t.replied_evicted

(* --- speculative rollback ---------------------------------------------- *)

(* Unwind every executed-but-unstable round at or above [frontier]: a
   view change in [instance] exposed a conflicting ordering, so the
   speculative suffix is discarded and rebuilt. KV effects are undone
   from the write journal (reverse order), ledger blocks above the
   frontier are dropped (the head-hash chain re-derives from the
   surviving prefix), their txn-table rows and duplicate-reply entries
   are evicted, and the surviving instances' acceptances re-enter the
   pending buffer for re-execution once [instance]'s new view re-orders
   its slots. The caller guarantees [frontier] is above both the commit
   certificate and the stable checkpoint, so undo records still exist
   (see [on_stable]'s forget floor). *)
let rollback_to t ~frontier ~instance =
  let from = Rcc_storage.Ledger.next_round t.ledger in
  if Engine.tracing t.engine then begin
    Engine.trace t.engine ~replica:t.self ~instance
      (Rcc_trace.Event.Rollback_begin { frontier; from });
    for r = frontier to from - 1 do
      let txns =
        List.fold_left
          (fun acc (e : Rcc_storage.Txn_table.entry) ->
            acc + e.Rcc_storage.Txn_table.txn_count)
          0
          (Rcc_storage.Txn_table.find t.txn_table ~round:r)
      in
      Engine.trace t.engine ~replica:t.self ~instance
        (Rcc_trace.Event.Rollback_round { round = r; txns })
    done
  end;
  (* Fence any in-flight parallel window: stale group callbacks and
     commit jobs compare generations and skip themselves. Rounds that
     already executed inside the fenced window re-enter the buffer below,
     and their KV effects are undone with the committed suffix — so the
     undo point is the lowest in-flight round when one sits below the
     frontier. *)
  t.gen <- t.gen + 1;
  t.active <- None;
  let in_flight = Hashtbl.fold (fun _ w acc -> w :: acc) t.uncommitted [] in
  Hashtbl.reset t.uncommitted;
  let kv_undo =
    List.fold_left (fun m (w : wround) -> min m w.w_round) frontier in_flight
  in
  if t.materialize then Rcc_storage.Kv_store.undo_above t.store ~round:kv_undo;
  Rcc_storage.Ledger.truncate_to t.ledger ~round:frontier;
  let _, rb_txns =
    Rcc_storage.Txn_table.remove_from t.txn_table ~round:frontier
  in
  let resume = Rcc_storage.Ledger.next_round t.ledger in
  let rb_rounds = from - resume in
  t.executed_rounds <- t.executed_rounds - rb_rounds;
  t.executed_txns <- t.executed_txns - rb_txns;
  (* A cached reply whose first execution was just undone would answer a
     future duplicate from state that no longer exists; the re-execution
     below re-records it. *)
  let dead =
    Hashtbl.fold
      (fun key (round, _, _) acc ->
        if round >= kv_undo then key :: acc else acc)
      t.replied []
  in
  List.iter (Hashtbl.remove t.replied) dead;
  t.replied_evicted <- t.replied_evicted + List.length dead;
  (* Re-buffer the unwound rounds' surviving acceptances — committed
     rounds from the speculative log plus fenced in-flight window rounds
     — then clear the conflicted instance's slots at or above the
     frontier: those forked orders are exactly what is being discarded,
     and its new view re-delivers replacements. *)
  let rebuffer round (accs : Acceptance.t array) =
    let sl = slots t round in
    Array.iter (fun (a : Acceptance.t) -> sl.(a.instance) <- Some a) accs;
    if round > t.high_water then t.high_water <- round
  in
  let unwound =
    Hashtbl.fold
      (fun round accs acc ->
        if round >= frontier then (round, accs) :: acc else acc)
      t.spec_log []
  in
  List.iter
    (fun (round, accs) ->
      Hashtbl.remove t.spec_log round;
      rebuffer round accs)
    unwound;
  List.iter (fun (w : wround) -> rebuffer w.w_round w.ordered) in_flight;
  Hashtbl.iter
    (fun round sl -> if round >= frontier then sl.(instance) <- None)
    t.pending;
  t.next_round <- resume;
  (match t.persist with
  | Some p -> p.p_rollback ~frontier:resume
  | None -> ());
  Metrics.record_rollback ~instance t.metrics ~rounds:rb_rounds ~txns:rb_txns;
  if Engine.tracing t.engine then
    Engine.trace t.engine ~replica:t.self ~instance
      (Rcc_trace.Event.Rollback_complete
         { frontier; rounds = rb_rounds; txns = rb_txns });
  try_advance t

(* --- state transfer --------------------------------------------------- *)

let replied_entries t =
  Hashtbl.fold
    (fun (client, digest) (round, result, _) acc ->
      (client, digest, round, result) :: acc)
    t.replied []

let install_snapshot t ~seq ~replied =
  (* Rounds below [seq] are baked into the installed state. In parallel
     mode a window covering them may be mid-execution: raising the
     horizon makes its queued members and commit jobs skip themselves. *)
  (match t.sched with
  | Serial -> ()
  | Parallel _ -> if seq > t.install_horizon then t.install_horizon <- seq);
  if seq > t.next_round then begin
    (* Acceptances buffered for covered rounds are obsolete — the
       snapshot already contains their effects. Buffered rounds at or
       past the boundary stay pending and drain normally below. *)
    let stale =
      Hashtbl.fold
        (fun round _ acc -> if round < seq then round :: acc else acc)
        t.pending []
    in
    List.iter (Hashtbl.remove t.pending) stale;
    (* Speculative state below the boundary is superseded wholesale: the
       install replaced the KV (clearing its undo journal), so covered
       rounds can never be rolled back or re-buffered. *)
    let stale_spec =
      Hashtbl.fold
        (fun round _ acc -> if round < seq then round :: acc else acc)
        t.spec_log []
    in
    List.iter (Hashtbl.remove t.spec_log) stale_spec;
    t.next_round <- seq;
    (* The donor's duplicate-reply cache keeps §3.1 duplicate suppression
       alive across the jump; existing (newer) local entries win. Donor
       entries are attributed to instance 0 in the retained-count stat
       (the wire format does not carry the owning instance). *)
    List.iter
      (fun (client, digest, round, result) ->
        let key = (client, digest) in
        if not (Hashtbl.mem t.replied key) then
          Hashtbl.replace t.replied key (round, result, 0))
      replied;
    try_advance t
  end
