(** The environment a protocol instance runs in.

    An instance never touches the network or the execute thread directly;
    it talks through these callbacks, which the node builder wires to the
    simulated pipeline (charging worker CPU for marshalling and MACs on
    every send). This is the seam that makes the protocols reusable both
    standalone and as RCC instances. *)

open Rcc_common.Ids

type t = {
  n : int;
  f : int;
  z : int;
  instance : instance_id;
  self : replica_id;
  engine : Rcc_sim.Engine.t;
  costs : Rcc_sim.Costs.t;
  timeout : Rcc_sim.Engine.time;  (** replica view-change timeout (10 s in §7.5) *)
  checkpoint_interval : int;  (** rounds between checkpoints *)
  send : ?sign:bool -> dst:replica_id -> Rcc_messages.Msg.t -> unit;
      (** Point-to-point send; [sign] charges a digital signature instead
          of a MAC (HotStuff-style protocols). *)
  broadcast :
    ?sign:bool -> ?exclude:(replica_id -> bool) -> Rcc_messages.Msg.t -> unit;
      (** Send to every other replica, minus exclusions (byzantine
          primaries exclude their victims here). *)
  respond : Rcc_common.Ids.client_id -> Rcc_messages.Msg.t -> unit;
      (** Direct reply to a client (Zyzzyva LOCAL-COMMIT acks). *)
  accept : Acceptance.t -> unit;
      (** Replication of a round completed at this replica. *)
  on_stable : seq:round -> unit;
      (** This instance's checkpoint became stable for rounds [< seq];
          the execute stage uses the per-instance frontiers to bound its
          duplicate-reply cache. *)
  report_failure : round:round -> blamed:replica_id -> unit;
      (** Local failure detection; routed to the RCC coordinator (unified
          mode) or handled by the instance's own view-change logic. *)
  rollback : frontier:round -> unit;
      (** A certified view change exposed an ordering conflicting with
          this instance's executed speculative rounds at or above
          [frontier]; the execute stage must unwind them (and the
          coordinator forget its retained copies) before the new view's
          orders re-execute. *)
  sign_blame : view:view -> blamed:replica_id -> round:round -> string;
      (** Sign this replica's accusation against [blamed] for this
          instance with its own key (the coordinator's blame digest), so
          outgoing view-change messages carry verifiable evidence. *)
  byz : Byz.t;  (** how this replica misbehaves when primary *)
  unified : bool;
      (** true under RCC: primary replacement is decided by the
          coordinator (unified multi-leader election, §3.4.2); false for
          the standalone protocol's own view-change. *)
}

let quorum_2f1 t = (2 * t.f) + 1
let majority_nf t = t.f + 1

let tracing t = Rcc_sim.Engine.tracing t.engine

let trace t payload =
  Rcc_sim.Engine.trace t.engine ~replica:t.self ~instance:t.instance payload

(* Wrap the upward callbacks so every protocol emits accept / blame
   trace events without per-protocol code. Builders call
   [P.create (instrument env)] — the instance never knows. *)
let instrument t =
  {
    t with
    accept =
      (fun (a : Acceptance.t) ->
        if tracing t then
          trace t
            (Rcc_trace.Event.Slot_accept
               {
                 round = a.round;
                 batch = a.batch.Rcc_messages.Batch.id;
                 txns = Array.length a.batch.Rcc_messages.Batch.txns;
               });
        t.accept a);
    report_failure =
      (fun ~round ~blamed ->
        if tracing t then
          trace t (Rcc_trace.Event.Blame { round; blamed; accuser = t.self });
        t.report_failure ~round ~blamed);
  }
