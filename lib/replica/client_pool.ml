module Engine = Rcc_sim.Engine
module Net = Rcc_sim.Net
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Bitset = Rcc_common.Bitset
module Wheel = Rcc_common.Timing_wheel

type quorum = Majority_fplus1 | All_n_speculative
type arrival_process = Poisson | Uniform

type arrival =
  | Closed_loop
  | Open_loop of {
      rate : float;  (* offered load, txn/s across the whole pool *)
      process : arrival_process;
      max_in_flight : int;  (* concurrent outstanding requests; <= 0 = #clients *)
    }

type config = {
  n : int;
  f : int;
  z : int;
  clients : int;
  machines : int;
  batch_size : int;
  quorum : quorum;
  request_timeout : Rcc_sim.Engine.time;
  instance_change_after : int;
  first_node : int;
  records : int;
  write_ratio : float;
  theta : float;
  seed : int;
  arrival : arrival;
}

type open_loop_stats = {
  offered_batches : int;
  injected_batches : int;
  dropped_batches : int;
  queue_p50 : float;
  queue_p99 : float;
  max_depth : int;
}

(* Open-loop machinery, absent in closed-loop runs so their event
   schedule — and thus the perf-digest gate — is untouched. *)
type open_loop = {
  ol_process : arrival_process;
  ol_cap : int;
  ol_gap : float;  (* mean inter-arrival gap, simulated ns per request *)
  ol_rng : Rcc_common.Rng.t;
  wheel : Wheel.t;
  mutable wheel_armed : bool;
  (* FIFO ring of idle client ids: arrivals pick the longest-idle client,
     completions append, so load rotates round-robin over the pool. *)
  idle : int array;
  mutable idle_head : int;
  mutable idle_len : int;
  mutable in_flight : int;
  mutable offered : int;
  mutable injected : int;
  mutable dropped : int;
  queue_depths : Rcc_common.Stats.Histogram.t;
  mutable max_depth : int;
  client_bits : int;  (* wheel payloads pack (gen << client_bits) | client *)
}

(* Per-client state lives in parallel arrays (struct-of-arrays), not one
   heap record per client: at 1M clients the pool's resident footprint is
   a handful of words per client, and idle clients touch nothing but
   their array slots. The seed's per-request [outstanding] record becomes
   the [out_*] columns; its physical-equality staleness guard becomes the
   [gen] counter (bumped per issued request), which timeout callbacks
   carry and re-check on fire. *)
type t = {
  engine : Engine.t;
  net : Msg.t Net.t;
  metrics : Metrics.t;
  cfg : config;
  primary_of_instance : Rcc_common.Ids.instance_id -> Rcc_common.Ids.replica_id;
  keychain : Rcc_crypto.Keychain.t;
  gens : Rcc_workload.Ycsb.t array;  (* one workload stream per machine *)
  instance : int array;
  resends : int array;
  gen : int array;
  degraded : Bytes.t;
      (* All_n_speculative only: a timeout fired while a 2f+1-strong
         response set was already in hand, i.e. some replica is down or
         cut off and the all-n fast path cannot complete. While set, the
         commit-certificate phase starts as soon as 2f+1 matching
         responses arrive instead of waiting out the timer each batch —
         otherwise one dead replica stalls every client to timeout speed.
         Cleared by the next full-speculative completion. *)
  out_batch : Batch.t option array;  (* None = idle *)
  out_sent_at : int array;
  (* response-digest key -> (replicas that sent it, round they reported).
     The round rides with its key: a stale speculative response that
     survived a view change carries a pre-rollback history (its own key),
     and the commit certificate must name the round of the quorum that
     actually matched — not whichever response happened to arrive
     first. *)
  out_responses : (string * Bitset.t * int) list array;
  out_commit_acks : Bitset.t option array;  (* Zyzzyva commit phase *)
  ol : open_loop option;
  mutable next_batch_id : int;
  mutable completed : int;
  mutable instance_changes : int;
  mutable requests_sent : int;
  mutable stopped : bool;
}

let machine_of t c = t.cfg.first_node + (c mod t.cfg.machines)
let is_degraded t c = Bytes.unsafe_get t.degraded c <> '\000'
let set_degraded t c v =
  Bytes.unsafe_set t.degraded c (if v then '\001' else '\000')

let send_request t c (batch : Batch.t) =
  let dst = t.primary_of_instance t.instance.(c) in
  let msg = Msg.Client_request { instance = t.instance.(c); batch } in
  t.requests_sent <- t.requests_sent + 1;
  Net.send t.net ~src:(machine_of t c) ~dst ~size:(Msg.size msg) msg

(* Zyzzyva second phase: enough matching speculative responses to form a
   commit certificate — sequenced at the matching quorum's own round. *)
let begin_commit_phase t c ~key ~set ~round =
  t.out_commit_acks.(c) <- Some (Bitset.create t.cfg.n);
  let cert =
    Msg.Commit_cert
      {
        cc_instance = t.instance.(c);
        cc_seq = round;
        cc_client = c;
        cc_digest = String.sub key 0 (min 32 (String.length key));
        cc_replicas = Bitset.to_list set;
      }
  in
  let size = Msg.size cert in
  let src = machine_of t c in
  for dst = 0 to t.cfg.n - 1 do
    Net.send t.net ~src ~dst ~size cert
  done

let clear_outstanding t c =
  t.gen.(c) <- t.gen.(c) + 1;
  t.out_batch.(c) <- None;
  t.out_responses.(c) <- [];
  t.out_commit_acks.(c) <- None

(* Issue the next request for [c]; shared by both modes. The caller has
   already cleared any previous outstanding state. *)
let issue_request t c =
  let txns =
    Rcc_workload.Ycsb.batch t.gens.(c mod t.cfg.machines) ~size:t.cfg.batch_size
  in
  let id = t.next_batch_id in
  t.next_batch_id <- id + 1;
  let batch =
    Batch.create ~id ~client:c ~txns
      ~secret:(Rcc_crypto.Keychain.client_secret t.keychain c)
  in
  t.gen.(c) <- t.gen.(c) + 1;
  t.out_batch.(c) <- Some batch;
  t.out_sent_at.(c) <- Engine.now t.engine;
  t.out_responses.(c) <- [];
  t.out_commit_acks.(c) <- None;
  batch

(* --- closed-loop timeouts (one engine timer per request) --------------- *)

(* Timers are armed per request and never cancelled: a fired timer checks
   the generation it was armed for and does nothing when stale. This
   matches the seed pool's event schedule exactly — there, [complete]
   cancelled its timer, but a cancelled timer still occupies its heap
   slot and fires as a counted no-op at the same instant — so the
   determinism digest is preserved while the pool stops keeping per-client
   timer handles altogether. *)
let rec arm_timer t c =
  let g = t.gen.(c) in
  ignore
    (Engine.timer_after t.engine t.cfg.request_timeout (fun () ->
         on_timeout t c g))

and on_timeout t c g =
  if t.gen.(c) = g && not t.stopped then
    match t.out_batch.(c) with
    | None -> ()
    | Some batch -> handle_timeout t c batch ~rearm:(fun () -> arm_timer t c)

(* Shared timeout policy. [rearm] re-arms whichever timeout mechanism the
   mode uses (engine timer / wheel entry). *)
and handle_timeout t c batch ~rearm =
  let cc_quorum = (2 * t.cfg.f) + 1 in
  let strong =
    List.find_opt (fun (_, set, _) -> Bitset.count set >= cc_quorum)
  in
  match (t.cfg.quorum, t.out_commit_acks.(c), strong t.out_responses.(c)) with
  | All_n_speculative, None, Some (key, set, round) ->
      (* A strong quorum was in hand yet the all-n set never closed:
         some replica is unreachable. Degrade this client so its next
         batches fall back without eating the timeout again. *)
      set_degraded t c true;
      begin_commit_phase t c ~key ~set ~round;
      rearm ()
  | (Majority_fplus1 | All_n_speculative), _, _ ->
      (* Resend; after enough failures, defect to another instance
         (§3.6 instance-change). *)
      t.resends.(c) <- t.resends.(c) + 1;
      if
        t.cfg.instance_change_after > 0
        && t.resends.(c) mod t.cfg.instance_change_after = 0
        && t.cfg.z > 1
      then begin
        t.instance.(c) <- (t.instance.(c) + 1) mod t.cfg.z;
        t.instance_changes <- t.instance_changes + 1;
        let notice =
          Msg.Instance_change { client = c; instance = t.instance.(c) }
        in
        Net.send t.net ~src:(machine_of t c)
          ~dst:(t.primary_of_instance t.instance.(c))
          ~size:(Msg.size notice) notice
      end;
      send_request t c batch;
      rearm ()

(* --- open-loop timeouts (timing wheel) --------------------------------- *)

let wheel_payload ol c ~gen = (gen lsl ol.client_bits) lor c

let rec wheel_arm t ol c =
  Wheel.schedule ol.wheel
    ~deadline:(Engine.now t.engine + t.cfg.request_timeout)
    (wheel_payload ol c ~gen:t.gen.(c));
  if not ol.wheel_armed then begin
    ol.wheel_armed <- true;
    Engine.schedule_after t.engine (Wheel.granularity ol.wheel) (fun () ->
        wheel_tick t ol)
  end

and wheel_tick t ol =
  ol.wheel_armed <- false;
  Wheel.advance ol.wheel ~now:(Engine.now t.engine) (wheel_fire t ol);
  if (not (Wheel.is_empty ol.wheel)) && not t.stopped then begin
    ol.wheel_armed <- true;
    Engine.schedule_after t.engine (Wheel.granularity ol.wheel) (fun () ->
        wheel_tick t ol)
  end

and wheel_fire t ol payload =
  let c = payload land ((1 lsl ol.client_bits) - 1) in
  let g = payload lsr ol.client_bits in
  if t.gen.(c) = g && not t.stopped then
    match t.out_batch.(c) with
    | None -> ()
    | Some batch ->
        handle_timeout t c batch ~rearm:(fun () -> wheel_arm t ol c)

(* --- request lifecycle ------------------------------------------------- *)

let idle_push ol c =
  let cap = Array.length ol.idle in
  ol.idle.((ol.idle_head + ol.idle_len) mod cap) <- c;
  ol.idle_len <- ol.idle_len + 1

let idle_pop ol =
  let c = ol.idle.(ol.idle_head) in
  ol.idle_head <- (ol.idle_head + 1) mod Array.length ol.idle;
  ol.idle_len <- ol.idle_len - 1;
  c

let rec complete t c =
  match t.out_batch.(c) with
  | None -> ()
  | Some batch ->
      let sent_at = t.out_sent_at.(c) in
      clear_outstanding t c;
      t.resends.(c) <- 0;
      t.completed <- t.completed + 1;
      let now = Engine.now t.engine in
      Metrics.record_completion ~instance:t.instance.(c) t.metrics ~now
        ~ntxns:(Array.length batch.Batch.txns)
        ~latency:(now - sent_at);
      (match t.ol with
      | None -> send_next t c
      | Some ol ->
          ol.in_flight <- ol.in_flight - 1;
          idle_push ol c)

and send_next t c =
  if not t.stopped then begin
    let batch = issue_request t c in
    (* The seed pool initialized each request's timer field with a dummy
       zero-delay timer it cancelled immediately; the cancelled slot
       still fired as a counted no-op event. Keep the same push so the
       closed-loop event schedule — and the report digest — is
       byte-identical. *)
    Engine.cancel (Engine.timer_after t.engine 0 (fun () -> ()));
    send_request t c batch;
    arm_timer t c
  end

(* --- open-loop arrivals ------------------------------------------------ *)

let arrival_gap ol =
  let gap =
    match ol.ol_process with
    | Uniform -> ol.ol_gap
    | Poisson -> Rcc_common.Rng.exponential ol.ol_rng ol.ol_gap
  in
  max 1 (int_of_float gap)

let rec on_arrival t ol =
  if not t.stopped then begin
    ol.offered <- ol.offered + 1;
    let depth = ol.in_flight in
    Rcc_common.Stats.Histogram.add ol.queue_depths (float_of_int depth);
    if depth > ol.max_depth then ol.max_depth <- depth;
    if depth < ol.ol_cap && ol.idle_len > 0 then begin
      let c = idle_pop ol in
      ol.in_flight <- ol.in_flight + 1;
      ol.injected <- ol.injected + 1;
      let batch = issue_request t c in
      send_request t c batch;
      wheel_arm t ol c
    end
    else
      (* Every client is busy (or the in-flight cap is hit): the offered
         request is shed, not queued — open-loop load does not stall the
         arrival process. *)
      ol.dropped <- ol.dropped + 1;
    Engine.schedule_after t.engine (arrival_gap ol) (fun () ->
        on_arrival t ol)
  end

(* --- replica -> client messages ---------------------------------------- *)

let handle_response t c ~src result_digest history batch_id round =
  match t.out_batch.(c) with
  | Some batch when batch_id = batch.Batch.id ->
      (* Responses keep accumulating even after the commit phase starts:
         a degraded client certs at 2f+1, but if the straggler's
         speculative response lands anyway, the full all-n set commits
         on the spot — and proves the cluster healed. *)
      let in_commit_phase = Option.is_some t.out_commit_acks.(c) in
      let key = result_digest ^ history in
      let set, set_round =
        match
          List.find_opt
            (fun (k, _, _) -> String.equal k key)
            t.out_responses.(c)
        with
        | Some (_, set, r) -> (set, r)
        | None ->
            let set = Bitset.create t.cfg.n in
            t.out_responses.(c) <- (key, set, round) :: t.out_responses.(c);
            (set, round)
      in
      if Bitset.add set src then begin
        match t.cfg.quorum with
        | Majority_fplus1 ->
            if (not in_commit_phase) && Bitset.count set >= t.cfg.f + 1 then
              complete t c
        | All_n_speculative ->
            let count = Bitset.count set in
            if count >= t.cfg.n then begin
              (* The fast path closed again: the cluster healed. *)
              set_degraded t c false;
              complete t c
            end
            else if (not in_commit_phase) && is_degraded t c
                    && count >= (2 * t.cfg.f) + 1 then
              (* Known-degraded cluster: go to the commit phase the
                 moment a strong quorum matches, at its own round. *)
              begin_commit_phase t c ~key ~set ~round:set_round
      end
  | Some _ | None -> ()

let handle_local_commit t c ~src =
  match t.out_commit_acks.(c) with
  | Some acks ->
      if Bitset.add acks src && Bitset.count acks >= (2 * t.cfg.f) + 1 then
        complete t c
  | None -> ()

(* --- assembly ---------------------------------------------------------- *)

let bits_for clients =
  let rec go b = if 1 lsl b >= clients then b else go (b + 1) in
  go 1

let create ~engine ~net ~keychain ~metrics ~primary_of_instance cfg =
  let zipf = Rcc_workload.Zipf.create ~n:cfg.records ~theta:cfg.theta in
  let gens =
    Array.init cfg.machines (fun m ->
        Rcc_workload.Ycsb.create_shared ~zipf ~write_ratio:cfg.write_ratio
          ~seed:(cfg.seed + (7919 * m)))
  in
  let ol =
    match cfg.arrival with
    | Closed_loop -> None
    | Open_loop { rate; process; max_in_flight } ->
        if rate <= 0.0 then
          invalid_arg "Client_pool.create: open-loop rate must be positive";
        let cap =
          if max_in_flight <= 0 then cfg.clients
          else min max_in_flight cfg.clients
        in
        Some
          {
            ol_process = process;
            ol_cap = cap;
            ol_gap = 1e9 *. float_of_int cfg.batch_size /. rate;
            ol_rng = Rcc_common.Rng.create (cfg.seed + 7001);
            wheel =
              Wheel.create
                ~granularity:(max 1 (cfg.request_timeout / 8))
                ();
            wheel_armed = false;
            idle = Array.init cfg.clients (fun c -> c);
            idle_head = 0;
            idle_len = cfg.clients;
            in_flight = 0;
            offered = 0;
            injected = 0;
            dropped = 0;
            queue_depths = Rcc_common.Stats.Histogram.create ();
            max_depth = 0;
            client_bits = bits_for cfg.clients;
          }
  in
  let t =
    {
      engine;
      net;
      metrics;
      cfg;
      primary_of_instance;
      keychain;
      gens;
      instance = Array.init cfg.clients (fun c -> c mod cfg.z);
      resends = Array.make cfg.clients 0;
      gen = Array.make cfg.clients 0;
      degraded = Bytes.make cfg.clients '\000';
      out_batch = Array.make cfg.clients None;
      out_sent_at = Array.make cfg.clients 0;
      out_responses = Array.make cfg.clients [];
      out_commit_acks = Array.make cfg.clients None;
      ol;
      next_batch_id = 0;
      completed = 0;
      instance_changes = 0;
      requests_sent = 0;
      stopped = false;
    }
  in
  (* All clients of a machine share its delivery handler; dispatch on the
     client id carried in every replica->client message. *)
  for m = 0 to cfg.machines - 1 do
    Net.register net (cfg.first_node + m) (fun ~src ~size:_ msg ->
        match msg with
        | Msg.Response { client; batch_id; result_digest; history; round; _ } ->
            handle_response t client ~src result_digest history batch_id round
        | Msg.Local_commit { client; _ } -> handle_local_commit t client ~src
        | _ -> ())
  done;
  t

let start t =
  match t.ol with
  | None ->
      for c = 0 to t.cfg.clients - 1 do
        Engine.schedule_after t.engine (Engine.us (c mod 1000)) (fun () ->
            send_next t c)
      done
  | Some ol ->
      Engine.schedule_after t.engine (arrival_gap ol) (fun () ->
          on_arrival t ol)

let stop t = t.stopped <- true

let completed_batches t = t.completed
let instance_changes t = t.instance_changes
let requests_sent t = t.requests_sent
let client_instance t c = t.instance.(c)

let open_loop_stats t =
  Option.map
    (fun ol ->
      {
        offered_batches = ol.offered;
        injected_batches = ol.injected;
        dropped_batches = ol.dropped;
        queue_p50 = Rcc_common.Stats.Histogram.percentile ol.queue_depths 0.5;
        queue_p99 = Rcc_common.Stats.Histogram.percentile ol.queue_depths 0.99;
        max_depth = ol.max_depth;
      })
    t.ol
