(** Byzantine behaviour specifications for experiments.

    A spec describes how a replica misbehaves *when it is a primary* and
    whether it emits false view-change accusations. Honest replicas use
    {!honest}. The attack of the paper's Example 3.3 / Figure 12 is a
    combination: a malicious primary keeps selected replicas in the dark
    while the remaining byzantine replicas blame non-faulty primaries. *)

open Rcc_common.Ids

type dark = {
  victims : replica_id list;  (** replicas excluded from proposals *)
  from_round : round;  (** first affected round *)
  until_round : round option;  (** [Some r]: last affected round; [None]: forever *)
}

type t = {
  mutable byzantine : bool;
  mutable dark : dark option;
  (** As a primary, exclude [victims] from proposals in the round span. *)
  mutable false_blame : replica_id list;
  (** Send view-change messages blaming these (non-faulty) primaries when
      prompted (fig. 12 false-alarm attack). *)
  mutable ignore_clients : bool;
  (** As a primary, silently drop client requests (§3.6 denial of
      service; resolved by instance-change). *)
  mutable equivocate : bool;
  (** As a primary, propose conflicting batches to different halves of
      the backups; honest replicas must never accept either. *)
  mutable forge_views : bool;
  (** Broadcast forged {!Rcc_messages.Msg.View_sync} messages claiming
      inflated views with self as primary, backed by fabricated
      certificates. Honest coordinators must reject them: the votes
      cannot verify under the claimed accusers' keys. *)
  mutable corrupt_snapshot : bool;
  (** As a state-transfer donor, serve bit-flipped snapshot payloads.
      Requesters must reject them by digest and recover from another
      donor. *)
}
(** Fields are mutable so the chaos nemesis can flip a replica's behaviour
    mid-run; a replica reads its spec on every decision. Share one record
    per replica — mutate through {!set}, never the {!honest} constant
    (give each replica its own {!copy}). *)

val honest : t

val dark_primary :
  victims:replica_id list -> ?from_round:round -> ?until_round:round -> unit -> t

val false_blamer : blames:replica_id list -> t

val client_ignorer : t

val equivocator : t

val view_forger : t

val snapshot_corruptor : t

val copy : t -> t

val set : t -> t -> unit
(** [set dst src] overwrites [dst]'s behaviour with [src]'s in place, so
    every closure holding [dst] sees the change. *)

val excludes : t -> round:round -> replica_id -> bool
(** [excludes spec ~round victim] — should a primary with this spec omit
    [victim] from its round-[round] proposal? *)
