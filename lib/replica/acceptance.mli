(** What a protocol instance reports upward when it completes replication
    of a round: the batch, who certified it, and (for speculative
    protocols) the execution-history digest. *)

open Rcc_common.Ids

type t = {
  instance : instance_id;
  round : round;
  batch : Rcc_messages.Batch.t;
  cert : int list;  (** replicas backing the accept proof *)
  speculative : bool;  (** Zyzzyva-style speculative accept *)
  history : string;  (** Zyzzyva history digest; "" elsewhere *)
}
