module Stats = Rcc_common.Stats
module Engine = Rcc_sim.Engine

(* Per-instance sub-metrics: RCC's claims are per-instance claims (each
   of the z concurrent primaries stalls, colludes and gets replaced on
   its own), so the aggregate alone cannot show a straggler. *)
type instance_metrics = {
  mutable i_txns : int;
  mutable i_batches : int;
  i_latency : Stats.Histogram.t;
  i_throughput : Stats.Series.t;
  mutable i_view_changes : int;
  mutable i_rolled_back_rounds : int;
  mutable i_rolled_back_txns : int;
}

type t = {
  warmup : Engine.time;
  mutable txns : int;
  mutable batches : int;
  latency : Stats.Histogram.t;
  throughput : Stats.Series.t;  (* post-warmup completions only *)
  warm_throughput : Stats.Series.t;  (* completions inside the warmup *)
  exec_per_replica : Stats.Series.t array;
  per_instance : instance_metrics array;
  mutable view_changes : int;
  mutable collusions : int;
  mutable contract_bytes : int;
}

let bucket = 0.1 (* seconds *)

let create ~n ?(instances = 1) ~warmup () =
  {
    warmup;
    txns = 0;
    batches = 0;
    latency = Stats.Histogram.create ();
    throughput = Stats.Series.create ~bucket_width:bucket ();
    warm_throughput = Stats.Series.create ~bucket_width:bucket ();
    exec_per_replica =
      Array.init n (fun _ -> Stats.Series.create ~bucket_width:bucket ());
    per_instance =
      Array.init (max 1 instances) (fun _ ->
          {
            i_txns = 0;
            i_batches = 0;
            i_latency = Stats.Histogram.create ();
            i_throughput = Stats.Series.create ~bucket_width:bucket ();
            i_view_changes = 0;
            i_rolled_back_rounds = 0;
            i_rolled_back_txns = 0;
          });
    view_changes = 0;
    collusions = 0;
    contract_bytes = 0;
  }

let warmup t = t.warmup
let instances t = Array.length t.per_instance

let sub t instance =
  if instance >= 0 && instance < Array.length t.per_instance then
    Some t.per_instance.(instance)
  else None

(* Warmup completions go to a separate series so [timeline] and the
   scalar counters agree: by default the timeline only carries what
   [committed_txns]/[throughput] count, and the full-run view (warmup
   merged back in) is explicit. *)
let record_completion ?(instance = -1) t ~now ~ntxns ~latency =
  let time = Engine.to_seconds now in
  if now >= t.warmup then begin
    Stats.Series.add t.throughput ~time (float_of_int ntxns);
    t.txns <- t.txns + ntxns;
    t.batches <- t.batches + 1;
    Stats.Histogram.add t.latency (Engine.to_seconds latency);
    match sub t instance with
    | Some s ->
        Stats.Series.add s.i_throughput ~time (float_of_int ntxns);
        s.i_txns <- s.i_txns + ntxns;
        s.i_batches <- s.i_batches + 1;
        Stats.Histogram.add s.i_latency (Engine.to_seconds latency)
    | None -> ()
  end
  else Stats.Series.add t.warm_throughput ~time (float_of_int ntxns)

let record_exec t ~replica ~now ~ntxns =
  Stats.Series.add t.exec_per_replica.(replica) ~time:(Engine.to_seconds now)
    (float_of_int ntxns)

let record_view_change ?(instance = -1) t =
  t.view_changes <- t.view_changes + 1;
  match sub t instance with
  | Some s -> s.i_view_changes <- s.i_view_changes + 1
  | None -> ()

let record_rollback ?(instance = -1) t ~rounds ~txns =
  match sub t instance with
  | Some s ->
      s.i_rolled_back_rounds <- s.i_rolled_back_rounds + rounds;
      s.i_rolled_back_txns <- s.i_rolled_back_txns + txns
  | None -> ()

let record_collusion_detected t = t.collusions <- t.collusions + 1
let record_contract_bytes t b = t.contract_bytes <- t.contract_bytes + b

let committed_txns t = t.txns
let committed_batches t = t.batches

let measured_span t ~duration =
  Engine.to_seconds (duration - t.warmup)

let throughput t ~duration =
  let span = measured_span t ~duration in
  if span <= 0.0 then 0.0 else float_of_int t.txns /. span

let avg_latency t = Stats.Histogram.mean t.latency
let latency_percentile t p = Stats.Histogram.percentile t.latency p

let timeline ?(include_warmup = false) t =
  let post = Stats.Series.rates t.throughput in
  if not include_warmup then post
  else begin
    let warm = Stats.Series.rates t.warm_throughput in
    let len = max (Array.length post) (Array.length warm) in
    Array.init len (fun i ->
        let time = float_of_int i *. bucket in
        let at (series : (float * float) array) =
          if i < Array.length series then snd series.(i) else 0.0
        in
        (time, at post +. at warm))
  end

let exec_timeline t ~replica = Stats.Series.rates t.exec_per_replica.(replica)
let view_changes t = t.view_changes
let collusions_detected t = t.collusions
let contract_bytes t = t.contract_bytes

let instance_txns t x = match sub t x with Some s -> s.i_txns | None -> 0

let instance_throughput t x ~duration =
  let span = measured_span t ~duration in
  if span <= 0.0 then 0.0
  else match sub t x with
    | Some s -> float_of_int s.i_txns /. span
    | None -> 0.0

let instance_avg_latency t x =
  match sub t x with Some s -> Stats.Histogram.mean s.i_latency | None -> 0.0

let instance_latency_percentile t x p =
  match sub t x with
  | Some s -> Stats.Histogram.percentile s.i_latency p
  | None -> 0.0

let instance_view_changes t x =
  match sub t x with Some s -> s.i_view_changes | None -> 0

let instance_rolled_back_rounds t x =
  match sub t x with Some s -> s.i_rolled_back_rounds | None -> 0

let instance_rolled_back_txns t x =
  match sub t x with Some s -> s.i_rolled_back_txns | None -> 0

let instance_timeline t x =
  match sub t x with Some s -> Stats.Series.rates s.i_throughput | None -> [||]
