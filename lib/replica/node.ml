module Cpu = Rcc_sim.Cpu
module Net = Rcc_sim.Net
module Msg = Rcc_messages.Msg

type t = {
  engine : Rcc_sim.Engine.t;
  net : Msg.t Net.t;
  costs : Rcc_sim.Costs.t;
  self : Rcc_common.Ids.replica_id;
  input : Cpu.pool;
  batchers : Cpu.pool option;
  workers : Cpu.server array;
  exec_server : Cpu.server;
  exec_pool : Cpu.pool option;
  mutable route : src:int -> ready:Rcc_sim.Engine.time -> Msg.t -> unit;
  mutable halted : bool;
}

let create ~engine ~net ~costs ~self ~z ~has_batchers ~input_threads ~batch_threads
    ?exec_pool_size () =
  let name kind = Printf.sprintf "r%d-%s" self kind in
  let t =
    {
      engine;
      net;
      costs;
      self;
      input = Cpu.pool engine ~owner:self ~name:(name "input") ~size:input_threads ();
      batchers =
        (if has_batchers then
           Some (Cpu.pool engine ~owner:self ~name:(name "batch") ~size:batch_threads ())
         else None);
      workers =
        Array.init z (fun i ->
            Cpu.server engine ~owner:self
              ~name:(Printf.sprintf "r%d-worker%d" self i)
              ());
      exec_server = Cpu.server engine ~owner:self ~name:(name "exec") ();
      exec_pool =
        (match exec_pool_size with
        | Some size when size > 0 ->
            Some (Cpu.pool engine ~owner:self ~name:(name "exec-pool") ~size ())
        | Some _ | None -> None);
      route = (fun ~src:_ ~ready:_ _ -> ());
      halted = false;
    }
  in
  Net.register net self (fun ~src ~size:_ msg ->
      if t.halted then () else
      (* Input-thread stage fused into the arrival event: the parse cost
         queues virtually and the route schedules downstream work to start
         no earlier than [ready]. *)
      let ready =
        Cpu.pool_reserve t.input
          ~ready:(Rcc_sim.Engine.now engine)
          ~cost:costs.Rcc_sim.Costs.input_parse
      in
      t.route ~src ~ready msg);
  t

let engine t = t.engine
let costs t = t.costs
let self t = t.self
let worker t i = t.workers.(i)
let exec_server t = t.exec_server
let exec_pool t = t.exec_pool
let batchers t = t.batchers
let set_route t route = t.route <- route
let halt t = t.halted <- true
let halted t = t.halted

let auth_cost t ~sign ndest =
  let c = t.costs in
  let per_dest =
    c.Rcc_sim.Costs.send_per_dest
    + if sign then 0 else c.Rcc_sim.Costs.mac_gen
  in
  (* One signature covers all copies of a broadcast; MACs are per pair. *)
  (ndest * per_dest) + if sign then c.Rcc_sim.Costs.sign else 0

let sender t ~worker =
  let send ?(sign = false) ?size ~dst msg =
    Cpu.submit worker ~cost:(auth_cost t ~sign 1) (fun () ->
        if not t.halted then begin
          let size = match size with Some s -> s | None -> Msg.size msg in
          Net.send t.net ~src:t.self ~dst ~size msg
        end)
  in
  let broadcast ?(sign = false) ?size ?(exclude = fun _ -> false) ~n msg =
    let dests = ref [] in
    for dst = n - 1 downto 0 do
      if dst <> t.self && not (exclude dst) then dests := dst :: !dests
    done;
    let dests = !dests in
    Cpu.submit worker ~cost:(auth_cost t ~sign (List.length dests)) (fun () ->
        if not t.halted then begin
          let size = match size with Some s -> s | None -> Msg.size msg in
          List.iter (fun dst -> Net.send t.net ~src:t.self ~dst ~size msg) dests
        end)
  in
  (send, broadcast)

let send_direct t ~dst msg =
  if not t.halted then Net.send t.net ~src:t.self ~dst ~size:(Msg.size msg) msg
