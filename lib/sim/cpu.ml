type server = {
  engine : Engine.t;
  name : string;
  owner : int;  (* node id for tracing; -1 when unowned *)
  mutable free_at : Engine.time;
  mutable busy_ns : Engine.time;
}

let server engine ?(owner = -1) ~name () =
  { engine; name; owner; free_at = 0; busy_ns = 0 }

let reserve t ~ready ~cost =
  (* Int-specialized: [Stdlib.max] is a polymorphic C comparison and
     this is run per simulated job. *)
  let cost = if cost < 0 then 0 else cost in
  let start = if ready > t.free_at then ready else t.free_at in
  let finish = start + cost in
  t.free_at <- finish;
  t.busy_ns <- t.busy_ns + cost;
  (if cost > 0 then
     match Engine.tracer t.engine with
     | None -> ()
     | Some r ->
         (* The span starts when the server picks the job up, which may
            be later than now (queueing). *)
         Rcc_trace.Recorder.record r
           {
             Rcc_trace.Event.at = start;
             replica = t.owner;
             instance = -1;
             payload = Rcc_trace.Event.Span { track = t.name; dur = cost };
           });
  finish

let submit_ready t ~ready ~cost job =
  let finish = reserve t ~ready ~cost in
  Engine.schedule_at t.engine finish job

let submit t ~cost job = submit_ready t ~ready:(Engine.now t.engine) ~cost job

let free_at t = t.free_at

let backlog t =
  let lag = t.free_at - Engine.now t.engine in
  if lag > 0 then lag else 0

let busy_time t = t.busy_ns

let utilization t ~since =
  let span = Engine.now t.engine - since in
  if span <= 0 then 0.0
  else
    let frac = float_of_int t.busy_ns /. float_of_int span in
    if frac > 1.0 then 1.0 else frac

type pool = { servers : server array }

let pool engine ?owner ~name ~size () =
  assert (size > 0);
  {
    servers =
      Array.init size (fun i ->
          server engine ?owner ~name:(Printf.sprintf "%s-%d" name i) ());
  }

let earliest t =
  let best = ref 0 in
  for i = 1 to Array.length t.servers - 1 do
    if t.servers.(i).free_at < t.servers.(!best).free_at then best := i
  done;
  t.servers.(!best)

let pool_submit t ~cost job = submit (earliest t) ~cost job
let pool_submit_ready t ~ready ~cost job = submit_ready (earliest t) ~ready ~cost job
let pool_reserve t ~ready ~cost = reserve (earliest t) ~ready ~cost
let pool_servers t = t.servers
let pool_size t = Array.length t.servers

let pool_busy_time t =
  Array.fold_left (fun acc s -> acc + s.busy_ns) 0 t.servers

(* Mean busy fraction across the pool: k servers each busy 100% report
   1.0, matching the single-server convention. *)
let pool_utilization t ~since =
  let sum =
    Array.fold_left (fun acc s -> acc +. utilization s ~since) 0.0 t.servers
  in
  sum /. float_of_int (Array.length t.servers)
