(** Discrete-event simulation engine.

    Time is simulated nanoseconds carried in an OCaml [int] (63 bits spans
    ~292 simulated years). Events with equal timestamps fire in insertion
    order, so runs are fully deterministic. *)

type time = int
(** Simulated nanoseconds since the start of the run. *)

val ns : int -> time
val us : int -> time
val ms : int -> time
val s : int -> time
val of_seconds : float -> time
val to_seconds : time -> float

type t

val create : unit -> t

val now : t -> time

val set_tracer : t -> Rcc_trace.Recorder.t -> unit
(** Attach a trace recorder. Simulation components (network, CPU
    servers) and everything holding an engine emit structured events
    into it; with no tracer attached the hooks cost one option check. *)

val tracer : t -> Rcc_trace.Recorder.t option

val tracing : t -> bool
(** [tracer t <> None] — cheap guard so hot paths skip building event
    payloads when tracing is off. *)

val trace :
  t -> replica:int -> instance:int -> Rcc_trace.Event.payload -> unit
(** Record an event stamped with the current simulated time. No-op
    without a tracer; callers on hot paths should still guard with
    {!tracing} to avoid allocating the payload. *)

val schedule_at : t -> time -> (unit -> unit) -> unit
(** Schedule an event. Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> time -> (unit -> unit) -> unit

type timer
(** A cancellable one-shot timer. *)

val timer_after : t -> time -> (unit -> unit) -> timer

val cancel : timer -> unit
(** Cancelling releases the timer's callback immediately (the heap slot
    keeps only a small forwarding closure until the fire time), so state
    captured by frequently re-armed timers is not retained. *)

val timer_pending : timer -> bool

val run : t -> until:time -> unit
(** Process events in timestamp order until the queue is empty or the next
    event is after [until]. [now] is left at [until] (or at the last event
    if the queue drained first — callers can keep scheduling and re-run). *)

val events_processed : t -> int
(** Total events executed; used by the engine microbench. *)
