(** Simulated datacenter network.

    Each node owns an egress NIC (a {!Cpu.server} whose job cost is
    transmission time = size / bandwidth); after serialization a message
    propagates for latency + jitter and is handed to the destination's
    registered handler. Per-destination copies of a broadcast each pay
    serialization, so large batches at high fan-out saturate the sender's
    NIC exactly as in the paper's setup.

    Fault injection composes through id-tagged link rules: any number of
    drop, delay-inflation and duplication rules may be active at once (the
    chaos nemesis adds and removes them as its script plays out).

    Node address space is the caller's: the runtime uses [0, n) for
    replicas and [n, n + client_machines) for client machines. *)

type 'msg t

val create :
  Engine.t ->
  ?describe:('msg -> string * int) ->
  nodes:int ->
  latency:Engine.time ->
  jitter:Engine.time ->
  gbps:float ->
  rng:Rcc_common.Rng.t ->
  unit ->
  'msg t
(** [describe] labels messages for tracing as [(kind, instance)]
    (instance [-1] = none); it is only consulted while a tracer is
    attached to the engine. Default [("msg", -1)]. *)

val engine : 'msg t -> Engine.t

val register : 'msg t -> int -> (src:int -> size:int -> 'msg -> unit) -> unit
(** Install the delivery handler for a node. Replaces any previous one. *)

val send : 'msg t -> src:int -> dst:int -> size:int -> 'msg -> unit
(** Transmit one message. Nothing leaves a dead sender; a dead (or
    since-revived) destination discards the message on arrival, but the
    sender still pays NIC serialization and the traffic counters still
    grow — it has no way to know the peer is down. Drop rules suppress
    the transmission entirely. Sending to self delivers after a small
    loopback delay without using the NIC. *)

val set_dead : 'msg t -> int -> bool -> unit
(** A dead node neither sends nor receives (crash fault). Reviving a dead
    node starts a fresh incarnation: messages that were in flight to it
    before the crash are discarded on arrival, and its egress NIC queue
    restarts empty — a restarted process does not inherit the wire. *)

val is_dead : 'msg t -> int -> bool

val incarnation : 'msg t -> int -> int
(** How many times the node has been revived. *)

(** {2 Composable link rules} *)

type rule_id

val add_drop_rule : 'msg t -> (src:int -> dst:int -> 'msg -> bool) -> rule_id
(** Consulted on every send; [true] means drop. All active drop rules are
    OR-ed together. *)

val add_delay_rule : 'msg t -> (src:int -> dst:int -> Engine.time) -> rule_id
(** Extra propagation delay added to matching sends; active delay rules
    accumulate. Negative results are treated as zero. *)

val add_dup_rule : 'msg t -> (src:int -> dst:int -> 'msg -> int) -> rule_id
(** Number of {e extra} copies to transmit (0 = no duplication). Each copy
    pays NIC serialization and draws its own jitter. *)

val remove_rule : 'msg t -> rule_id -> unit
(** Remove a rule by id; unknown ids are ignored. *)

val set_drop_rule : 'msg t -> (src:int -> dst:int -> 'msg -> bool) option -> unit
(** Legacy shim over {!add_drop_rule}/{!remove_rule}: installs the rule in
    a dedicated slot, replacing (or clearing, on [None]) the previous one.
    Rules added with {!add_drop_rule} are unaffected. *)

val messages_sent : 'msg t -> int
val bytes_sent : 'msg t -> int
