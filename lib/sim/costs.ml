type t = {
  mac_gen : Engine.time;
  mac_verify : Engine.time;
  sign : Engine.time;
  sig_verify : Engine.time;
  hash_base : Engine.time;
  hash_per_byte : float;
  input_parse : Engine.time;
  worker_msg : Engine.time;
  send_per_dest : Engine.time;
  batch_create : Engine.time;
  txn_exec : Engine.time;
  exec_batch_overhead : Engine.time;
  response_create : Engine.time;
  conflict_scan : Engine.time;
  exec_dispatch : Engine.time;
  fsync : Engine.time;
  disk_per_byte : float;
}

let default =
  {
    mac_gen = Engine.ns 900;
    mac_verify = Engine.ns 1_000;
    sign = Engine.us 21;
    sig_verify = Engine.us 62;
    hash_base = Engine.ns 400;
    hash_per_byte = 0.75;
    input_parse = Engine.ns 1_600;
    worker_msg = Engine.ns 8_000;
    send_per_dest = Engine.ns 1_300;
    batch_create = Engine.us 6;
    txn_exec = Engine.ns 2_500;
    exec_batch_overhead = Engine.us 12;
    response_create = Engine.us 3;
    conflict_scan = Engine.ns 18;
    exec_dispatch = Engine.us 2;
    fsync = Engine.us 50;
    disk_per_byte = 1.0;
  }

let hash_cost t nbytes =
  t.hash_base + int_of_float (t.hash_per_byte *. float_of_int nbytes)

let scale_ns factor v = int_of_float (float_of_int v *. factor)

let scaled t factor =
  (* factor = 1 is the identity; non-positive factors are nonsense and
     return the table unchanged rather than zeroing every cost. Anything
     else — including 0 < factor < 1 for faster-hardware ablations —
     scales every field. *)
  if factor = 1.0 || factor <= 0.0 then t
  else
    {
      mac_gen = scale_ns factor t.mac_gen;
      mac_verify = scale_ns factor t.mac_verify;
      sign = scale_ns factor t.sign;
      sig_verify = scale_ns factor t.sig_verify;
      hash_base = scale_ns factor t.hash_base;
      hash_per_byte = t.hash_per_byte *. factor;
      input_parse = scale_ns factor t.input_parse;
      worker_msg = scale_ns factor t.worker_msg;
      send_per_dest = scale_ns factor t.send_per_dest;
      batch_create = scale_ns factor t.batch_create;
      txn_exec = scale_ns factor t.txn_exec;
      exec_batch_overhead = scale_ns factor t.exec_batch_overhead;
      response_create = scale_ns factor t.response_create;
      conflict_scan = scale_ns factor t.conflict_scan;
      exec_dispatch = scale_ns factor t.exec_dispatch;
      fsync = scale_ns factor t.fsync;
      disk_per_byte = t.disk_per_byte *. factor;
    }
