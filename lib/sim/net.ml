type 'msg rule =
  | Drop of (src:int -> dst:int -> 'msg -> bool)
  | Delay of (src:int -> dst:int -> Engine.time)
  | Duplicate of (src:int -> dst:int -> 'msg -> int)

type rule_id = int

type 'msg t = {
  engine : Engine.t;
  nics : Cpu.server array;
  handlers : (src:int -> size:int -> 'msg -> unit) array;
  dead : bool array;
  incarnations : int array;
  latency : Engine.time;
  jitter : Engine.time;
  ns_per_byte : float;
  rng : Rcc_common.Rng.t;
  describe : 'msg -> string * int;  (* (kind, instance) for tracing *)
  mutable rules : (rule_id * 'msg rule) list;  (* insertion order *)
  (* Compiled views of [rules], split per kind in insertion order and
     rebuilt on every add/remove. [send] consults only these: the common
     no-rules case is three length checks, and with rules installed the
     scans run over flat arrays instead of re-filtering the list with
     fresh closures per send. *)
  mutable drops : (src:int -> dst:int -> 'msg -> bool) array;
  mutable delays : (src:int -> dst:int -> Engine.time) array;
  mutable dups : (src:int -> dst:int -> 'msg -> int) array;
  mutable next_rule_id : int;
  mutable legacy_drop : rule_id option;
  (* Memo of the last NIC serialization computed: broadcasts send the
     same size n-1 times in a row, so the float math runs once per
     distinct size instead of once per copy. *)
  mutable ser_size : int;
  mutable ser_cost : int;
  mutable messages : int;
  mutable bytes : int;
}

let no_handler ~src:_ ~size:_ _ = ()

let create engine ?(describe = fun _ -> ("msg", -1)) ~nodes ~latency ~jitter
    ~gbps ~rng () =
  assert (nodes > 0 && gbps > 0.0);
  {
    engine;
    nics =
      Array.init nodes (fun i ->
          Cpu.server engine ~owner:i ~name:(Printf.sprintf "nic-%d" i) ());
    handlers = Array.make nodes no_handler;
    dead = Array.make nodes false;
    incarnations = Array.make nodes 0;
    latency;
    jitter;
    (* gbps is Gbit/s; 8 bits per byte. *)
    ns_per_byte = 8.0 /. gbps;
    rng;
    describe;
    rules = [];
    drops = [||];
    delays = [||];
    dups = [||];
    next_rule_id = 0;
    legacy_drop = None;
    ser_size = -1;
    ser_cost = 0;
    messages = 0;
    bytes = 0;
  }

let engine t = t.engine
let register t node handler = t.handlers.(node) <- handler

let set_dead t node dead =
  if t.dead.(node) && not dead then begin
    (* Revival starts a new incarnation: traffic in flight to the old one
       is discarded on arrival and the egress NIC queue restarts empty. *)
    t.incarnations.(node) <- t.incarnations.(node) + 1;
    t.nics.(node) <-
      Cpu.server t.engine ~owner:node
        ~name:(Printf.sprintf "nic-%d.%d" node t.incarnations.(node))
        ()
  end;
  t.dead.(node) <- dead

let is_dead t node = t.dead.(node)
let incarnation t node = t.incarnations.(node)

let recompile t =
  let filter f = Array.of_list (List.filter_map f t.rules) in
  t.drops <- filter (function _, Drop f -> Some f | _ -> None);
  t.delays <- filter (function _, Delay f -> Some f | _ -> None);
  t.dups <- filter (function _, Duplicate f -> Some f | _ -> None)

let add_rule t rule =
  let id = t.next_rule_id in
  t.next_rule_id <- id + 1;
  t.rules <- t.rules @ [ (id, rule) ];
  recompile t;
  id

let add_drop_rule t f = add_rule t (Drop f)
let add_delay_rule t f = add_rule t (Delay f)
let add_dup_rule t f = add_rule t (Duplicate f)

let remove_rule t id =
  t.rules <- List.filter (fun (id', _) -> id' <> id) t.rules;
  recompile t

let set_drop_rule t rule =
  (match t.legacy_drop with
  | Some id ->
      remove_rule t id;
      t.legacy_drop <- None
  | None -> ());
  match rule with
  | None -> ()
  | Some f -> t.legacy_drop <- Some (add_drop_rule t f)

let messages_sent t = t.messages
let bytes_sent t = t.bytes

let loopback_delay = Engine.us 2

let deliver t ~src ~dst ~size ~epoch msg =
  if (not t.dead.(dst)) && t.incarnations.(dst) = epoch then begin
    (if Engine.tracing t.engine then
       let kind, instance = t.describe msg in
       Engine.trace t.engine ~replica:dst ~instance
         (Rcc_trace.Event.Net_deliver { kind; size; src; dst }));
    t.handlers.(dst) ~src ~size msg
  end

let serialize_cost t size =
  if size <> t.ser_size then begin
    t.ser_size <- size;
    t.ser_cost <- int_of_float (float_of_int size *. t.ns_per_byte)
  end;
  t.ser_cost

(* One transmitted copy: counters, trace, schedule the arrival. *)
let transmit t ~src ~dst ~size ~extra ~epoch msg =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + size;
  (if Engine.tracing t.engine then
     let kind, instance = t.describe msg in
     Engine.trace t.engine ~replica:src ~instance
       (Rcc_trace.Event.Net_send { kind; size; src; dst }));
  if src = dst then
    Engine.schedule_after t.engine (loopback_delay + extra) (fun () ->
        deliver t ~src ~dst ~size ~epoch msg)
  else begin
    (* Virtual NIC: serialization queues on the sender's egress; one
       event fires at arrival time. Duplicated copies each pay
       serialization, like a real retransmission would. *)
    let serialized =
      Cpu.reserve t.nics.(src) ~ready:(Engine.now t.engine)
        ~cost:(serialize_cost t size)
    in
    let propagation =
      t.latency
      + (if t.jitter > 0 then Rcc_common.Rng.int t.rng t.jitter else 0)
      + extra
    in
    Engine.schedule_at t.engine (serialized + propagation) (fun () ->
        deliver t ~src ~dst ~size ~epoch msg)
  end

(* A dead *destination* does not stop the send: a real sender cannot know
   the peer is down, so it pays NIC serialization and the traffic counters
   grow; the message is simply discarded on arrival (see [deliver]). Only
   a dead sender transmits nothing.

   With no rules installed (the common case) the send is branch-and-go:
   three empty-array checks, then one [transmit] — the only allocation is
   the arrival event's closure. The rule scans evaluate in insertion
   order with the same short-circuit behaviour as the original list
   passes, so rules drawing from an RNG observe an identical draw
   sequence. *)
let send t ~src ~dst ~size msg =
  if not t.dead.(src) then begin
    if
      Array.length t.drops = 0
      && Array.length t.delays = 0
      && Array.length t.dups = 0
    then transmit t ~src ~dst ~size ~extra:0 ~epoch:t.incarnations.(dst) msg
    else begin
      let drops = t.drops in
      let rec any_drop i =
        i < Array.length drops
        && ((Array.unsafe_get drops i) ~src ~dst msg || any_drop (i + 1))
      in
      if not (any_drop 0) then begin
        let delays = t.delays in
        let rec sum_delay i acc =
          if i < Array.length delays then
            let d = (Array.unsafe_get delays i) ~src ~dst in
            sum_delay (i + 1) (acc + if d < 0 then 0 else d)
          else acc
        in
        let extra = sum_delay 0 0 in
        let dups = t.dups in
        let rec sum_dup i acc =
          if i < Array.length dups then
            sum_dup (i + 1)
              (let d = (Array.unsafe_get dups i) ~src ~dst msg in
               acc + if d < 0 then 0 else d)
          else acc
        in
        let copies = 1 + sum_dup 0 0 in
        let epoch = t.incarnations.(dst) in
        for _ = 1 to copies do
          transmit t ~src ~dst ~size ~extra ~epoch msg
        done
      end
    end
  end
