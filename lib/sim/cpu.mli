(** Single-threaded CPU resources with FIFO queueing, in virtual time.

    Each replica "thread" of the paper's pipeline (input, batch, worker,
    execute, output, checkpoint — Figs. 7–8) is one {!server}. A server is
    a timestamp [free_at]: submitting work costing [c] at ready-time [r]
    completes at [max(r, free_at) + c], which is exactly FIFO queueing
    semantics with one heap event per job instead of a job queue. The
    queueing delay this produces is the bottleneck behaviour the
    evaluation measures (e.g. the execute-thread ceiling of MultiZ). *)

type server

val server : Engine.t -> ?owner:int -> name:string -> unit -> server
(** [owner] tags the server's trace spans with a node id (default -1 =
    unowned); [name] is the span track label. *)

val submit : server -> cost:Engine.time -> (unit -> unit) -> unit
(** [submit srv ~cost job] enqueues work costing [cost] ns of CPU, ready
    now; [job] runs at the completion time. *)

val submit_ready : server -> ready:Engine.time -> cost:Engine.time -> (unit -> unit) -> unit
(** Like {!submit} but the work cannot start before [ready] (e.g. a
    message that has not arrived yet). [ready] must be >= now. *)

val reserve : server -> ready:Engine.time -> cost:Engine.time -> Engine.time
(** Account for work without scheduling a callback; returns the completion
    time. Used to chain pipeline stages into a single event. *)

val free_at : server -> Engine.time

val backlog : server -> Engine.time
(** Nanoseconds of queued work ahead of a job submitted now. *)

val busy_time : server -> Engine.time
(** Cumulative busy nanoseconds, for utilization reporting. *)

val utilization : server -> since:Engine.time -> float
(** Busy fraction of wall time since [since] (clamped to [0, 1]); callers
    should pass the run start. *)

type pool
(** A set of interchangeable servers (e.g. the three input threads) with
    earliest-free dispatch. *)

val pool : Engine.t -> ?owner:int -> name:string -> size:int -> unit -> pool
val pool_submit : pool -> cost:Engine.time -> (unit -> unit) -> unit

val pool_submit_ready :
  pool -> ready:Engine.time -> cost:Engine.time -> (unit -> unit) -> unit
(** Earliest-free dispatch of work that cannot start before [ready] —
    the execute pool's entry point: a dependency group is dispatched when
    the conflict scan finishes, not when its acceptances arrived. *)

val pool_reserve : pool -> ready:Engine.time -> cost:Engine.time -> Engine.time
val pool_servers : pool -> server array
val pool_size : pool -> int

val pool_busy_time : pool -> Engine.time
(** Cumulative busy nanoseconds summed over the pool. *)

val pool_utilization : pool -> since:Engine.time -> float
(** Mean busy fraction across the pool's servers since [since]. *)
