(** CPU cost model for replica-side work, in simulated nanoseconds.

    Calibrated for the paper's testbed (16-core Intel Xeon Cascade Lake at
    3.8 GHz): MAC operations are two orders of magnitude cheaper than
    digital signatures, which is the asymmetry that separates PBFT-style
    protocols from HotStuff in the evaluation. The defaults were tuned so
    the fault-free headline numbers land in the paper's ballpark; every
    experiment uses the same single cost model. *)

type t = {
  mac_gen : Engine.time;  (** CMAC-AES generation, small message *)
  mac_verify : Engine.time;
  sign : Engine.time;  (** ED25519-class signature *)
  sig_verify : Engine.time;
  hash_base : Engine.time;  (** SHA256 fixed overhead *)
  hash_per_byte : float;  (** SHA256 ns/byte *)
  input_parse : Engine.time;  (** input-thread work per received message *)
  worker_msg : Engine.time;  (** worker bookkeeping per protocol message *)
  send_per_dest : Engine.time;  (** marshalling per destination on broadcast *)
  batch_create : Engine.time;  (** batch-thread work per client batch *)
  txn_exec : Engine.time;  (** execute one YCSB txn on the KV store *)
  exec_batch_overhead : Engine.time;  (** execute-thread per-batch fixed cost *)
  response_create : Engine.time;  (** build + MAC one client response *)
  conflict_scan : Engine.time;
      (** conflict analysis per read/write key in the scheduler window
          (sorted-set merge; parallel exec mode only) *)
  exec_dispatch : Engine.time;
      (** scheduler overhead per dependency group handed to the execute
          pool (parallel exec mode only) *)
  fsync : Engine.time;
      (** durable-journal flush fixed cost (one group-commit fsync;
          NVMe-class device) *)
  disk_per_byte : float;
      (** sequential journal write ns/byte on the disk lane *)
}

val default : t

val hash_cost : t -> int -> Engine.time
(** [hash_cost t nbytes] is the cost of digesting [nbytes]. *)

val scaled : t -> float -> t
(** [scaled t factor] multiplies every cost by [factor]: [> 1] models core
    contention when a replica runs more threads than cores, [0 < factor
    < 1] models faster hardware. [factor = 1] and non-positive factors
    return [t] unchanged. *)
