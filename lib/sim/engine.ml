type time = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let s x = x * 1_000_000_000
let of_seconds f = int_of_float (f *. 1e9)
let to_seconds t = float_of_int t *. 1e-9

type t = {
  mutable now : time;
  queue : (unit -> unit) Rcc_common.Binary_heap.t;
  mutable processed : int;
  mutable tracer : Rcc_trace.Recorder.t option;
}

(* The pending action lives in the timer, not in the heap slot: [cancel]
   drops it immediately, so whatever state the closure captured is not
   retained until the (possibly far-off) fire time. The heap keeps only
   the small forwarding closure over the timer itself. *)
type timer = { mutable action : (unit -> unit) option }

let no_op () = ()

let create () =
  {
    now = 0;
    queue = Rcc_common.Binary_heap.create ~capacity:4096 ~dummy:no_op ();
    processed = 0;
    tracer = None;
  }

let now t = t.now

let set_tracer t r = t.tracer <- Some r
let tracer t = t.tracer
let tracing t = t.tracer <> None

let trace t ~replica ~instance payload =
  match t.tracer with
  | None -> ()
  | Some r ->
      Rcc_trace.Recorder.record r
        { Rcc_trace.Event.at = t.now; replica; instance; payload }

let schedule_at t at f =
  if at < t.now then invalid_arg "Engine.schedule_at: scheduling in the past";
  Rcc_common.Binary_heap.push t.queue ~priority:at f

let schedule_after t delay f =
  schedule_at t (t.now + if delay < 0 then 0 else delay) f

let timer_after t delay f =
  let tm = { action = Some f } in
  schedule_after t delay (fun () ->
      match tm.action with
      | None -> ()
      | Some f ->
          tm.action <- None;
          f ());
  tm

let cancel tm = tm.action <- None
let timer_pending tm = Option.is_some tm.action

let run t ~until =
  let q = t.queue in
  let continue = ref true in
  while !continue do
    if Rcc_common.Binary_heap.is_empty q then continue := false
    else begin
      let at = Rcc_common.Binary_heap.min_priority q in
      if at > until then continue := false
      else begin
        let f = Rcc_common.Binary_heap.pop_min_exn q in
        t.now <- at;
        t.processed <- t.processed + 1;
        f ()
      end
    end
  done;
  if t.now < until then t.now <- until

let events_processed t = t.processed
