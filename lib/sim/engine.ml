type time = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let s x = x * 1_000_000_000
let of_seconds f = int_of_float (f *. 1e9)
let to_seconds t = float_of_int t *. 1e-9

type t = {
  mutable now : time;
  queue : (unit -> unit) Rcc_common.Binary_heap.t;
  mutable processed : int;
  mutable tracer : Rcc_trace.Recorder.t option;
}

type timer = { mutable live : bool }

let create () =
  {
    now = 0;
    queue = Rcc_common.Binary_heap.create ~capacity:4096 ();
    processed = 0;
    tracer = None;
  }

let now t = t.now

let set_tracer t r = t.tracer <- Some r
let tracer t = t.tracer
let tracing t = t.tracer <> None

let trace t ~replica ~instance payload =
  match t.tracer with
  | None -> ()
  | Some r ->
      Rcc_trace.Recorder.record r
        { Rcc_trace.Event.at = t.now; replica; instance; payload }

let schedule_at t at f =
  if at < t.now then invalid_arg "Engine.schedule_at: scheduling in the past";
  Rcc_common.Binary_heap.push t.queue ~priority:at f

let schedule_after t delay f = schedule_at t (t.now + max 0 delay) f

let timer_after t delay f =
  let tm = { live = true } in
  schedule_after t delay (fun () -> if tm.live then (tm.live <- false; f ()));
  tm

let cancel tm = tm.live <- false
let timer_pending tm = tm.live

let run t ~until =
  let continue = ref true in
  while !continue do
    match Rcc_common.Binary_heap.peek_priority t.queue with
    | Some at when at <= until -> begin
        match Rcc_common.Binary_heap.pop t.queue with
        | Some (at, f) ->
            t.now <- at;
            t.processed <- t.processed + 1;
            f ()
        | None -> assert false
      end
    | Some _ | None -> continue := false
  done;
  if t.now < until then t.now <- until

let events_processed t = t.processed
