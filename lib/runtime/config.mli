(** Experiment configuration (§7.2 setup).

    Defaults mirror the paper: YCSB with half a million records, 90%
    writes, Zipf 0.9; batch size 100; replica/client timeouts of 10 s /
    15 s; Google-Cloud-class network (10 Gbit NICs, ~100 µs one-way).
    Simulated durations are shorter than the paper's 180 s (steady state is
    reached within fractions of a second; see DESIGN.md). *)

type protocol =
  | Pbft
  | Zyzzyva
  | Hotstuff
  | MultiP
  | MultiZ
  | Cft  (** crash-fault primary-backup baseline (§8 extension) *)
  | MultiC  (** RCC over the crash-fault protocol *)

val protocol_name : protocol -> string
val all_protocols : protocol list

type fault =
  | No_fault
  | Crash of Rcc_common.Ids.replica_id list
      (** dead from the start of the run (fig. 11 "replica crashed") *)
  | Dark of {
      instance : Rcc_common.Ids.instance_id;
      victims : Rcc_common.Ids.replica_id list;
    }
      (** the instance's primary never sends its proposals to [victims]
          (fig. 11 "replicas in dark") *)
  | Collusion of {
      victim : Rcc_common.Ids.replica_id;
      at_round : Rcc_common.Ids.round;
    }
      (** Figure 12: instance 0's primary skips [victim] for exactly round
          [at_round]; the remaining byzantine replicas each falsely blame a
          non-faulty primary once the victim's view-change appears. *)
  | Client_dos of { instance : Rcc_common.Ids.instance_id }
      (** The instance's primary silently drops client requests (§3.6);
          starved clients defect via instance-change. *)

type exec_mode =
  | Exec_serial
      (** single execute thread, strict f_S(h) order — the ablation
          baseline and the digest-gated default *)
  | Exec_parallel
      (** conflict-aware scheduler over a multi-server execute pool *)

val exec_mode_name : exec_mode -> string

type arrival_process =
  | Poisson  (** exponential inter-arrival gaps (deterministic from seed) *)
  | Uniform  (** fixed inter-arrival gaps *)

val arrival_process_name : arrival_process -> string

type t = {
  protocol : protocol;
  n : int;
  f : int;  (** derived as (n-1)/3 by {!make} *)
  z : int;  (** instances; f+1 for RCC variants, 1 otherwise *)
  batch_size : int;
  clients : int;  (** total logical clients; equal across protocols so closed-loop latencies are comparable *)
  duration : Rcc_sim.Engine.time;
  warmup : Rcc_sim.Engine.time;
  replica_timeout : Rcc_sim.Engine.time;
  client_timeout : Rcc_sim.Engine.time;
  collusion_wait : Rcc_sim.Engine.time;
  heartbeat : Rcc_sim.Engine.time;
      (** idle-instance null-batch heartbeat; see Replica_builder *)
  recovery : Rcc_core.Coordinator.recovery_mode;
  use_permutation : bool;
  records : int;
  write_ratio : float;
  theta : float;
  latency : Rcc_sim.Engine.time;
  jitter : Rcc_sim.Engine.time;
  gbps : float;
  cores : int;
  checkpoint_interval : int;
  history_capacity : int;
  instance_change_after : int;
  seed : int;
  fault : fault;
  exec_mode : exec_mode;
  exec_threads : int;  (** execute-pool size (parallel mode only) *)
  exec_window : int;  (** max rounds per conflict-analysis window *)
  arrival_rate : float;
      (** offered load in txn/s; 0.0 (the default) selects closed-loop
          clients, anything positive selects open-loop arrivals *)
  arrival_process : arrival_process;
  max_in_flight : int;
      (** open-loop cap on concurrent outstanding requests; [<= 0] means
          one per client *)
  journal : bool;
      (** give every replica a durable write-ahead journal + checkpoint
          snapshots on a simulated disk, and restart-from-disk recovery;
          off by default so fault-free perf digests stay byte-identical *)
  storage_faults : float;
      (** probability each journal record / snapshot write is torn,
          corrupted or lost (applied per mode); 0.0 = honest disks *)
}

val make :
  ?batch_size:int ->
  ?clients:int ->
  ?duration:Rcc_sim.Engine.time ->
  ?warmup:Rcc_sim.Engine.time ->
  ?replica_timeout:Rcc_sim.Engine.time ->
  ?client_timeout:Rcc_sim.Engine.time ->
  ?collusion_wait:Rcc_sim.Engine.time ->
  ?heartbeat:Rcc_sim.Engine.time ->
  ?recovery:Rcc_core.Coordinator.recovery_mode ->
  ?use_permutation:bool ->
  ?records:int ->
  ?write_ratio:float ->
  ?theta:float ->
  ?z:int ->
  ?seed:int ->
  ?instance_change_after:int ->
  ?fault:fault ->
  ?exec_mode:exec_mode ->
  ?exec_threads:int ->
  ?exec_window:int ->
  ?arrival_rate:float ->
  ?arrival_process:arrival_process ->
  ?max_in_flight:int ->
  ?journal:bool ->
  ?storage_faults:float ->
  protocol:protocol ->
  n:int ->
  unit ->
  t

val client_instances : t -> int
(** How many targets clients spread over: z for primary-based protocols,
    n for HotStuff (all replicas lead). *)

val total_clients : t -> int

val quorum : t -> Rcc_replica.Client_pool.quorum

val open_loop : t -> bool
(** [arrival_rate > 0]. *)

val client_arrival : t -> Rcc_replica.Client_pool.arrival
(** The pool-level arrival mode this config selects. *)

val contention_factor : t -> float
(** Thread-count / core-count pressure used to scale CPU costs (§3.1's
    parallelism-vs-contention trade-off). Parallel execution counts its
    pool threads, so adding execute servers on a loaded machine honestly
    prices the extra contention. *)
