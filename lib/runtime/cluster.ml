module Engine = Rcc_sim.Engine
module Net = Rcc_sim.Net
module Msg = Rcc_messages.Msg
module Metrics = Rcc_replica.Metrics
module Client_pool = Rcc_replica.Client_pool
module Byz = Rcc_replica.Byz
module Builder = Rcc_core.Replica_builder
module Journal = Rcc_journal.Journal
module Sim_disk = Rcc_journal.Sim_disk

module B_pbft = Builder.Make (Rcc_pbft.Pbft_instance)
module B_zyz = Builder.Make (Rcc_zyzzyva.Zyzzyva_instance)
module B_hs = Builder.Make (Rcc_hotstuff.Hotstuff_replica)
module B_cft = Builder.Make (Rcc_cft.Cft_instance)

type replicas =
  | R_pbft of B_pbft.t array
  | R_zyz of B_zyz.t array
  | R_hs of B_hs.t array
  | R_cft of B_cft.t array

type t = {
  cfg : Config.t;
  engine : Engine.t;
  net : Msg.t Net.t;
  keychain : Rcc_crypto.Keychain.t;
  metrics : Metrics.t;
  replicas : replicas;
  pool : Client_pool.t;
  machines : int;
  (* Persistent per-replica disks: they outlive builder incarnations, so
     a restart-from-disk recovers from what the previous incarnation
     flushed. Empty-of-content but always allocated (allocation costs no
     engine events, so digests are unaffected). *)
  disks : Sim_disk.t array;
  mk_cfg : Rcc_common.Ids.replica_id -> Builder.config;
  (* Durable frontier proved by replica [r]'s most recent recovery; the
     chaos invariant asserts its ledger never regresses below this. *)
  recovery_floor : int array;
  mutable restarts : int;
  mutable replayed_rounds : int;
  mutable replayed_txns : int;
}

let config t = t.cfg
let metrics t = t.metrics
let engine t = t.engine
let client_pool t = t.pool

let ledger t r =
  match t.replicas with
  | R_pbft a -> B_pbft.ledger a.(r)
  | R_zyz a -> B_zyz.ledger a.(r)
  | R_hs a -> B_hs.ledger a.(r)
  | R_cft a -> B_cft.ledger a.(r)

let store t r =
  match t.replicas with
  | R_pbft a -> B_pbft.store a.(r)
  | R_zyz a -> B_zyz.store a.(r)
  | R_hs a -> B_hs.store a.(r)
  | R_cft a -> B_cft.store a.(r)

let txn_table t r =
  match t.replicas with
  | R_pbft a -> B_pbft.txn_table a.(r)
  | R_zyz a -> B_zyz.txn_table a.(r)
  | R_hs a -> B_hs.txn_table a.(r)
  | R_cft a -> B_cft.txn_table a.(r)

let primary_lookup protocol replicas x =
  match protocol with
  | Config.Hotstuff -> x
  | Config.Pbft | Config.Zyzzyva | Config.MultiP | Config.MultiZ | Config.Cft
  | Config.MultiC -> (
      match replicas with
      | R_pbft a -> B_pbft.current_primary a.(0) x
      | R_zyz a -> B_zyz.current_primary a.(0) x
      | R_hs a -> B_hs.current_primary a.(0) x
      | R_cft a -> B_cft.current_primary a.(0) x)

let primary_of_instance t x = primary_lookup t.cfg.Config.protocol t.replicas x

let coordinator_of t r =
  match t.replicas with
  | R_pbft a -> B_pbft.coordinator a.(r)
  | R_zyz a -> B_zyz.coordinator a.(r)
  | R_hs a -> B_hs.coordinator a.(r)
  | R_cft a -> B_cft.coordinator a.(r)

let replacements_of t r =
  match coordinator_of t r with
  | Some c -> Rcc_core.Coordinator.replacements c
  | None -> 0

let replacements t = replacements_of t 0

(* Snapshot-transfer totals, summed over every replica's manager. *)
let transfer_totals t =
  let acc = ref (0, 0, 0, 0, 0) in
  let add (s : Rcc_state_transfer.Manager.stats) =
    let a, b, c, d, e = !acc in
    acc :=
      ( a + s.Rcc_state_transfer.Manager.installs,
        b + s.Rcc_state_transfer.Manager.rejects,
        c + s.Rcc_state_transfer.Manager.rounds_skipped,
        d + s.Rcc_state_transfer.Manager.bytes_in,
        e + s.Rcc_state_transfer.Manager.bytes_out )
  in
  (match t.replicas with
  | R_pbft a -> Array.iter (fun r -> add (B_pbft.transfer_stats r)) a
  | R_zyz a -> Array.iter (fun r -> add (B_zyz.transfer_stats r)) a
  | R_hs a -> Array.iter (fun r -> add (B_hs.transfer_stats r)) a
  | R_cft a -> Array.iter (fun r -> add (B_cft.transfer_stats r)) a);
  !acc

(* Replica 0's slot-log footprint for instance [x]: how tightly the
   checkpoint GC is bounding consensus memory. *)
let log_stats t x =
  match t.replicas with
  | R_pbft a -> B_pbft.log_stats a.(0) x
  | R_zyz a -> B_zyz.log_stats a.(0) x
  | R_hs a -> B_hs.log_stats a.(0) x
  | R_cft a -> B_cft.log_stats a.(0) x

(* Replica 0's execute stage, for the duplicate-reply cache stats. *)
let exec0 t =
  match t.replicas with
  | R_pbft a -> B_pbft.exec a.(0)
  | R_zyz a -> B_zyz.exec a.(0)
  | R_hs a -> B_hs.exec a.(0)
  | R_cft a -> B_cft.exec a.(0)

let net t = t.net

let byz_spec t r =
  match t.replicas with
  | R_pbft a -> (B_pbft.config a.(r)).Builder.byz
  | R_zyz a -> (B_zyz.config a.(r)).Builder.byz
  | R_hs a -> (B_hs.config a.(r)).Builder.byz
  | R_cft a -> (B_cft.config a.(r)).Builder.byz

(* --- restart-from-disk ---------------------------------------------------- *)

(* Replace replica [r] with a fresh incarnation recovered from its
   persistent disk: halt the orphan (drops deliveries, suppresses queued
   sends, loses un-flushed journal records), build a successor over the
   same disk — [create] re-registers the net handler, displacing the
   orphan's — run journal recovery, then start it. Distinct from a
   nemesis [Restart]: that revives the same in-memory incarnation; this
   one trusts nothing but the disk. *)
let restart_from_disk t r =
  let recov =
    match t.replicas with
    | R_pbft a ->
        B_pbft.halt a.(r);
        let b =
          B_pbft.create ~engine:t.engine ~net:t.net ~keychain:t.keychain
            ~metrics:t.metrics (t.mk_cfg r)
        in
        let recov = B_pbft.restore b in
        a.(r) <- b;
        B_pbft.start b;
        recov
    | R_zyz a ->
        B_zyz.halt a.(r);
        let b =
          B_zyz.create ~engine:t.engine ~net:t.net ~keychain:t.keychain
            ~metrics:t.metrics (t.mk_cfg r)
        in
        let recov = B_zyz.restore b in
        a.(r) <- b;
        B_zyz.start b;
        recov
    | R_hs a ->
        B_hs.halt a.(r);
        let b =
          B_hs.create ~engine:t.engine ~net:t.net ~keychain:t.keychain
            ~metrics:t.metrics (t.mk_cfg r)
        in
        let recov = B_hs.restore b in
        a.(r) <- b;
        B_hs.start b;
        recov
    | R_cft a ->
        B_cft.halt a.(r);
        let b =
          B_cft.create ~engine:t.engine ~net:t.net ~keychain:t.keychain
            ~metrics:t.metrics (t.mk_cfg r)
        in
        let recov = B_cft.restore b in
        a.(r) <- b;
        B_cft.start b;
        recov
  in
  Net.set_dead t.net r false;
  t.restarts <- t.restarts + 1;
  (match recov with
  | Some rv ->
      t.recovery_floor.(r) <- rv.Journal.r_frontier;
      t.replayed_rounds <- t.replayed_rounds + rv.Journal.r_replayed_rounds;
      t.replayed_txns <- t.replayed_txns + rv.Journal.r_replayed_txns
  | None -> ());
  recov

let set_storage_faults t r p =
  Sim_disk.set_faults t.disks.(r) (Sim_disk.uniform_faults p)

let recovery_floor t r = t.recovery_floor.(r)
let restarts t = t.restarts
let disk t r = t.disks.(r)

let journal_of t r =
  match t.replicas with
  | R_pbft a -> B_pbft.journal a.(r)
  | R_zyz a -> B_zyz.journal a.(r)
  | R_hs a -> B_hs.journal a.(r)
  | R_cft a -> B_cft.journal a.(r)

(* Journal-writer totals over the *current* incarnations (a restart drops
   the orphan's counters) plus disk-level fault totals, which persist. *)
let journal_totals t =
  let a = ref 0 and fl = ref 0 and by = ref 0 and sn = ref 0 in
  for r = 0 to t.cfg.Config.n - 1 do
    match journal_of t r with
    | None -> ()
    | Some j ->
        a := !a + Journal.appends j;
        fl := !fl + Journal.flushes j;
        by := !by + Journal.bytes_flushed j;
        sn := !sn + Journal.snapshots_written j
  done;
  let faults =
    Array.fold_left (fun acc d -> acc + Sim_disk.faults_injected d) 0 t.disks
  in
  (!a, !fl, !by, !sn, faults)

(* Replica [r]'s own belief about the primary set: its coordinator's in
   unified mode, its instances' views otherwise. *)
let primaries_view t r =
  match coordinator_of t r with
  | Some c -> Rcc_core.Coordinator.primaries c
  | None ->
      List.init t.cfg.Config.z (fun x ->
          match t.replicas with
          | R_pbft a -> B_pbft.current_primary a.(r) x
          | R_zyz a -> B_zyz.current_primary a.(r) x
          | R_hs a -> B_hs.current_primary a.(r) x
          | R_cft a -> B_cft.current_primary a.(r) x)

let known_malicious_view t r =
  match coordinator_of t r with
  | Some c -> Rcc_core.Coordinator.known_malicious c
  | None -> []

(* --- fault wiring -------------------------------------------------------- *)

(* Byzantine behaviour of replica [self] under the configured fault. Each
   replica gets a private copy: the chaos nemesis mutates specs in place,
   so none may alias the shared [Byz.honest] constant. *)
let byz_of (cfg : Config.t) self =
  Byz.copy
  @@
  match cfg.Config.fault with
  | Config.No_fault | Config.Crash _ -> Byz.honest
  | Config.Client_dos { instance } ->
      if self = instance then Byz.client_ignorer else Byz.honest
  | Config.Dark { instance; victims } ->
      (* Instance x is initially led by replica x. *)
      if self = instance then Byz.dark_primary ~victims ()
      else Byz.honest
  | Config.Collusion { victim; at_round } ->
      (* The byzantine set: instance 0's primary (replica 0) plus the f-1
         highest-id replicas, skipping the (honest) victim. Together with
         the victim's own honest view-change they produce f+1 accusations
         from distinct replicas, spread so no primary collects f+1. *)
      if self = 0 then
        {
          Byz.byzantine = true;
          dark =
            Some
              {
                Byz.victims = [ victim ];
                from_round = at_round;
                until_round = Some at_round;
              };
          false_blame = (if cfg.Config.z > 1 then [ 1 ] else []);
          ignore_clients = false;
          equivocate = false;
          forge_views = false;
          corrupt_snapshot = false;
        }
      else begin
        let rec blamer_ids k id acc =
          if k = 0 then acc
          else if id = victim || id = 0 then blamer_ids k (id - 1) acc
          else blamer_ids (k - 1) (id - 1) (id :: acc)
        in
        let blamers = blamer_ids (max 0 (cfg.Config.f - 1)) (cfg.Config.n - 1) [] in
        match List.find_index (fun id -> id = self) blamers with
        | Some idx when cfg.Config.z > 1 ->
            Byz.false_blamer ~blames:[ (idx mod (cfg.Config.z - 1)) + 1 ]
        | Some _ | None -> Byz.honest
      end

let apply_crashes t =
  match t.cfg.Config.fault with
  | Config.Crash dead -> List.iter (fun r -> Net.set_dead t.net r true) dead
  | Config.No_fault | Config.Dark _ | Config.Collusion _ | Config.Client_dos _ ->
      ()

(* --- assembly -------------------------------------------------------------- *)

let build ?tracer (cfg : Config.t) =
  let engine = Engine.create () in
  Option.iter (Engine.set_tracer engine) tracer;
  let clients = Config.total_clients cfg in
  (* ~20 clients per simulated client machine, as the paper's testbed.
     The ceiling is 1024 machines (not the old 50): at paper scale — 1M
     clients — per-machine network nodes are cheap, and a 50-machine pool
     would serialize 20K clients behind each NIC. Configs of <= 1000
     clients land below either cap, so default runs are unchanged. *)
  let machines = max 1 (min 1024 ((clients + 19) / 20)) in
  let rng = Rcc_common.Rng.create cfg.Config.seed in
  let net =
    Net.create engine
      ~describe:(fun msg ->
        (Msg.kind msg, Option.value (Msg.instance_of msg) ~default:(-1)))
      ~nodes:(cfg.Config.n + machines)
      ~latency:cfg.Config.latency ~jitter:cfg.Config.jitter ~gbps:cfg.Config.gbps
      ~rng:(Rcc_common.Rng.split rng)
      ()
  in
  let keychain =
    Rcc_crypto.Keychain.create ~seed:cfg.Config.seed ~n:cfg.Config.n ~clients
  in
  let metrics =
    Metrics.create ~n:cfg.Config.n
      ~instances:(Config.client_instances cfg)
      ~warmup:cfg.Config.warmup ()
  in
  let costs =
    Rcc_sim.Costs.scaled Rcc_sim.Costs.default (Config.contention_factor cfg)
  in
  let client_node_of c = cfg.Config.n + (c mod machines) in
  (* One persistent disk per replica slot, deterministically seeded; the
     same disk is handed to every incarnation of that replica. *)
  let disks =
    Array.init cfg.Config.n (fun r ->
        let d = Sim_disk.create ~seed:(cfg.Config.seed + (7919 * (r + 1))) in
        if cfg.Config.storage_faults > 0.0 then
          Sim_disk.set_faults d
            (Sim_disk.uniform_faults cfg.Config.storage_faults);
        d)
  in
  let builder_cfg self =
    {
      Builder.n = cfg.Config.n;
      f = cfg.Config.f;
      z = cfg.Config.z;
      self;
      costs;
      timeout = cfg.Config.replica_timeout;
      heartbeat = cfg.Config.heartbeat;
      collusion_wait = cfg.Config.collusion_wait;
      checkpoint_interval = cfg.Config.checkpoint_interval;
      unified =
        (match cfg.Config.protocol with
        | Config.MultiP | Config.MultiZ | Config.MultiC -> true
        | Config.Pbft | Config.Zyzzyva | Config.Hotstuff | Config.Cft -> false);
      recovery = cfg.Config.recovery;
      min_cert =
        (match cfg.Config.protocol with
        | Config.MultiZ -> 2 (* speculative accept proofs *)
        | Config.Cft | Config.MultiC -> (cfg.Config.n / 2) + 1
        | Config.Pbft | Config.Zyzzyva | Config.Hotstuff | Config.MultiP ->
            cfg.Config.n - (2 * cfg.Config.f));
      history_capacity = cfg.Config.history_capacity;
      use_permutation = cfg.Config.use_permutation;
      exec_on_worker = (cfg.Config.protocol = Config.Zyzzyva);
      sign_speculative = (cfg.Config.protocol = Config.Zyzzyva);
      records = cfg.Config.records;
      materialize_state = (self = 0 || cfg.Config.n <= 8);
      parallel_exec = (cfg.Config.exec_mode = Config.Exec_parallel);
      exec_threads = cfg.Config.exec_threads;
      exec_window = cfg.Config.exec_window;
      input_threads = 3;
      batch_threads = 2;
      client_node_of;
      byz = byz_of cfg self;
      journal =
        (if cfg.Config.journal then
           Some (Journal.attach ~engine ~costs ~disk:disks.(self) ~self ())
         else None);
    }
  in
  let replicas =
    match cfg.Config.protocol with
    | Config.Pbft | Config.MultiP ->
        R_pbft
          (Array.init cfg.Config.n (fun self ->
               B_pbft.create ~engine ~net ~keychain ~metrics (builder_cfg self)))
    | Config.Zyzzyva | Config.MultiZ ->
        R_zyz
          (Array.init cfg.Config.n (fun self ->
               B_zyz.create ~engine ~net ~keychain ~metrics (builder_cfg self)))
    | Config.Hotstuff ->
        R_hs
          (Array.init cfg.Config.n (fun self ->
               B_hs.create ~engine ~net ~keychain ~metrics (builder_cfg self)))
    | Config.Cft | Config.MultiC ->
        R_cft
          (Array.init cfg.Config.n (fun self ->
               B_cft.create ~engine ~net ~keychain ~metrics (builder_cfg self)))
  in
  let pool =
    Client_pool.create ~engine ~net ~keychain ~metrics
      ~primary_of_instance:(fun x ->
        primary_lookup cfg.Config.protocol replicas x)
      {
        Client_pool.n = cfg.Config.n;
        f = cfg.Config.f;
        z = Config.client_instances cfg;
        clients;
        machines;
        batch_size = cfg.Config.batch_size;
        quorum = Config.quorum cfg;
        request_timeout = cfg.Config.client_timeout;
        instance_change_after = cfg.Config.instance_change_after;
        first_node = cfg.Config.n;
        records = cfg.Config.records;
        write_ratio = cfg.Config.write_ratio;
        theta = cfg.Config.theta;
        seed = cfg.Config.seed + 1;
        arrival = Config.client_arrival cfg;
      }
  in
  {
    cfg;
    engine;
    net;
    keychain;
    metrics;
    replicas;
    pool;
    machines;
    disks;
    mk_cfg = builder_cfg;
    recovery_floor = Array.make cfg.Config.n 0;
    restarts = 0;
    replayed_rounds = 0;
    replayed_txns = 0;
  }

let affected_replica (cfg : Config.t) =
  match cfg.Config.fault with
  | Config.Collusion { victim; _ } -> victim
  | Config.Dark { victims = v :: _; _ } -> v
  | Config.Dark { victims = []; _ }
  | Config.No_fault | Config.Crash _ | Config.Client_dos _ ->
      0

(* Stop the clients injecting new load — used by the chaos runner's drain
   phase so in-flight recovery can complete before the final quiesced
   judgement. Silences both closed-loop next-requests and the open-loop
   arrival process. *)
let stop_clients t = Client_pool.stop t.pool

let client_requests_sent t = Client_pool.requests_sent t.pool

let run t =
  let wall_start = Sys.time () in
  apply_crashes t;
  (match t.replicas with
  | R_pbft a -> Array.iter B_pbft.start a
  | R_zyz a -> Array.iter B_zyz.start a
  | R_hs a -> Array.iter B_hs.start a
  | R_cft a -> Array.iter B_cft.start a);
  Client_pool.start t.pool;
  Engine.run t.engine ~until:t.cfg.Config.duration;
  let ledger0 = ledger t 0 in
  let snap_installs, snap_rejects, snap_rounds_skipped, snap_bytes_in,
      snap_bytes_out =
    transfer_totals t
  in
  let jrn_appends, jrn_flushes, jrn_bytes, jrn_snapshots, jrn_faults =
    journal_totals t
  in
  {
    Report.protocol = Config.protocol_name t.cfg.Config.protocol;
    n = t.cfg.Config.n;
    batch_size = t.cfg.Config.batch_size;
    throughput = Metrics.throughput t.metrics ~duration:t.cfg.Config.duration;
    avg_latency = Metrics.avg_latency t.metrics;
    p50_latency = Metrics.latency_percentile t.metrics 0.5;
    p99_latency = Metrics.latency_percentile t.metrics 0.99;
    committed_txns = Metrics.committed_txns t.metrics;
    (* Full-run timeline: figures show the warmup ramp explicitly. *)
    timeline = Metrics.timeline ~include_warmup:true t.metrics;
    exec_timeline =
      Metrics.exec_timeline t.metrics ~replica:(affected_replica t.cfg);
    view_changes = Metrics.view_changes t.metrics;
    collusions_detected = Metrics.collusions_detected t.metrics;
    contract_bytes = Metrics.contract_bytes t.metrics;
    replacements = replacements t;
    messages = Net.messages_sent t.net;
    bytes_sent = Net.bytes_sent t.net;
    ledger_rounds = Rcc_storage.Ledger.length ledger0;
    ledger_valid =
      (match Rcc_storage.Ledger.validate ledger0 with
      | Ok () -> true
      | Error _ -> false);
    exec_utilization =
      (match t.replicas with
      | R_pbft a -> B_pbft.exec_utilization a.(0) ~since:0
      | R_zyz a -> B_zyz.exec_utilization a.(0) ~since:0
      | R_hs a -> B_hs.exec_utilization a.(0) ~since:0
      | R_cft a -> B_cft.exec_utilization a.(0) ~since:0);
    exec_pool_utilization =
      Option.value ~default:0.0
        (match t.replicas with
        | R_pbft a -> B_pbft.exec_pool_utilization a.(0) ~since:0
        | R_zyz a -> B_zyz.exec_pool_utilization a.(0) ~since:0
        | R_hs a -> B_hs.exec_pool_utilization a.(0) ~since:0
        | R_cft a -> B_cft.exec_pool_utilization a.(0) ~since:0);
    worker_utilization =
      (match t.replicas with
      | R_pbft a -> B_pbft.worker_utilization a.(0) 0 ~since:0
      | R_zyz a -> B_zyz.worker_utilization a.(0) 0 ~since:0
      | R_hs a -> B_hs.worker_utilization a.(0) 0 ~since:0
      | R_cft a -> B_cft.worker_utilization a.(0) 0 ~since:0);
    sim_events = Engine.events_processed t.engine;
    wall_seconds = Sys.time () -. wall_start;
    snap_installs;
    snap_rejects;
    snap_rounds_skipped;
    snap_bytes_in;
    snap_bytes_out;
    jrn_appends;
    jrn_flushes;
    jrn_bytes;
    jrn_snapshots;
    jrn_faults;
    jrn_restarts = t.restarts;
    jrn_replayed_rounds = t.replayed_rounds;
    jrn_replayed_txns = t.replayed_txns;
    open_loop =
      Option.map
        (fun (s : Client_pool.open_loop_stats) ->
          let batch = t.cfg.Config.batch_size in
          {
            Report.offered_rate = t.cfg.Config.arrival_rate;
            offered_txns = s.Client_pool.offered_batches * batch;
            injected_txns = s.Client_pool.injected_batches * batch;
            dropped_txns = s.Client_pool.dropped_batches * batch;
            queue_p50 = s.Client_pool.queue_p50;
            queue_p99 = s.Client_pool.queue_p99;
            max_depth = s.Client_pool.max_depth;
          })
        (Client_pool.open_loop_stats t.pool);
    per_instance =
      (let replied_retained = Rcc_replica.Exec.replied_retained (exec0 t) in
      Array.init (Metrics.instances t.metrics) (fun x ->
          let i_retained_slots, i_live_words =
            if x < t.cfg.Config.z then log_stats t x else (0, 0)
          in
          {
            Report.instance = x;
            i_throughput =
              Metrics.instance_throughput t.metrics x
                ~duration:t.cfg.Config.duration;
            i_avg_latency = Metrics.instance_avg_latency t.metrics x;
            i_p50_latency = Metrics.instance_latency_percentile t.metrics x 0.5;
            i_p99_latency = Metrics.instance_latency_percentile t.metrics x 0.99;
            i_txns = Metrics.instance_txns t.metrics x;
            i_view_changes = Metrics.instance_view_changes t.metrics x;
            i_retained_slots;
            i_live_words;
            i_replied_retained =
              (if x < Array.length replied_retained then replied_retained.(x)
               else 0);
            i_rolled_back_rounds =
              Metrics.instance_rolled_back_rounds t.metrics x;
            i_rolled_back_txns = Metrics.instance_rolled_back_txns t.metrics x;
          }));
  }

let run_config ?tracer cfg = run (build ?tracer cfg)
