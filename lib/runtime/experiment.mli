(** Parameter sweeps behind the paper's figures (§7).

    Every function returns one {!Report} per configuration, in sweep
    order, printing progress to stderr. [profile] scales simulated
    duration: [`Full] for the recorded results, [`Quick] for smoke runs
    and CI. *)

type profile = [ `Full | `Quick ]

val duration : profile -> Rcc_sim.Engine.time
val warmup : profile -> Rcc_sim.Engine.time

val trace_spec : (string * int option) option ref
(** When [Some (path, ring)], every {!run_one} records a structured trace
    and dumps it to [path] (Chrome trace-event JSON, or JSONL for a
    [.jsonl] path), overwriting per run. [ring] bounds the recorder's
    ring buffer. Meant for the bench CLI's [--trace]. *)

val run_one : ?label:string -> Config.t -> Report.t
(** Run a single configuration, echoing a progress line to stderr. *)

val sweep_batch :
  profile ->
  protocols:Config.protocol list ->
  n:int ->
  batch_sizes:int list ->
  (Config.protocol * int * Report.t) list
(** Figure 9: throughput/latency as a function of batch size. *)

val sweep_replicas :
  profile ->
  protocols:Config.protocol list ->
  ns:int list ->
  batch_size:int ->
  (Config.protocol * int * Report.t) list
(** Figure 10: performance as a function of the number of replicas. *)

val sweep_failures :
  profile ->
  protocols:Config.protocol list ->
  ns:int list ->
  batch_size:int ->
  failures:(n:int -> f:int -> Config.fault) ->
  (Config.protocol * int * Report.t) list
(** Figure 11: like {!sweep_replicas} with a fault injected; the replica
    watchdog is scaled down so detection fits in simulated time while the
    15 s client timeout stays (it is what collapses the Zyzzyva family). *)

val collusion_run :
  profile -> n:int -> batch_size:int -> Config.protocol -> Report.t
(** Figure 12: the collusion attack timeline under optimistic recovery,
    with the paper's 10 s + 5 s waits scaled to the simulated duration. *)

val z_sweep :
  profile -> n:int -> batch_size:int -> zs:int list -> (int * Report.t) list
(** Ablation: number of concurrent instances for MultiP. *)

val recovery_comparison :
  profile ->
  n:int ->
  batch_size:int ->
  (Rcc_core.Coordinator.recovery_mode * Report.t) list
(** Ablation: optimistic vs pessimistic vs view-shifting recovery under
    the collusion attack. *)
