(* One row of the per-instance breakdown: RCC behaviour under attack is
   per-instance (one straggling primary drags exactly one instance), so
   a run report carries each instance's own share of the load. *)
type instance_stats = {
  instance : int;
  i_throughput : float;
  i_avg_latency : float;
  i_p50_latency : float;
  i_p99_latency : float;
  i_txns : int;
  i_view_changes : int;
  i_retained_slots : int;
  i_live_words : int;
  i_replied_retained : int;
  i_rolled_back_rounds : int;
  i_rolled_back_txns : int;
}

(* Open-loop runs only: offered vs. completed load and backpressure.
   [None] for closed-loop runs, so their report text is unchanged. *)
type open_loop = {
  offered_rate : float;  (* configured arrival rate, txn/s *)
  offered_txns : int;  (* txns the arrival process tried to inject *)
  injected_txns : int;
  dropped_txns : int;  (* shed at the in-flight cap *)
  queue_p50 : float;  (* in-flight request depth, sampled per arrival *)
  queue_p99 : float;
  max_depth : int;
}

type t = {
  protocol : string;
  n : int;
  batch_size : int;
  throughput : float;
  avg_latency : float;
  p50_latency : float;
  p99_latency : float;
  committed_txns : int;
  timeline : (float * float) array;
  exec_timeline : (float * float) array;
  view_changes : int;
  collusions_detected : int;
  contract_bytes : int;
  replacements : int;
  messages : int;
  bytes_sent : int;
  ledger_rounds : int;
  ledger_valid : bool;
  exec_utilization : float;
  exec_pool_utilization : float;
  worker_utilization : float;
  sim_events : int;
  wall_seconds : float;
  snap_installs : int;
  snap_rejects : int;
  snap_rounds_skipped : int;
  snap_bytes_in : int;
  snap_bytes_out : int;
  jrn_appends : int;
  jrn_flushes : int;
  jrn_bytes : int;
  jrn_snapshots : int;
  jrn_faults : int;
  jrn_restarts : int;
  jrn_replayed_rounds : int;
  jrn_replayed_txns : int;
  open_loop : open_loop option;
  per_instance : instance_stats array;
      (* empty or length 1 when the run has a single logical instance *)
}

let header () =
  Printf.sprintf "%-9s %4s %6s %12s %10s %10s %10s %8s"
    "protocol" "n" "batch" "tput(txn/s)" "avg_lat" "p50_lat" "p99_lat" "rounds"

let row t =
  Printf.sprintf "%-9s %4d %6d %12.0f %9.2fms %9.2fms %9.2fms %8d"
    t.protocol t.n t.batch_size t.throughput
    (t.avg_latency *. 1e3) (t.p50_latency *. 1e3) (t.p99_latency *. 1e3)
    t.ledger_rounds

let pp_instance fmt s =
  Format.fprintf fmt
    "  instance %d: %.0f txn/s, lat avg %.2f ms (p50 %.2f, p99 %.2f), \
     txns=%d view_changes=%d slots=%d (~%d words) replied=%d"
    s.instance s.i_throughput
    (s.i_avg_latency *. 1e3)
    (s.i_p50_latency *. 1e3)
    (s.i_p99_latency *. 1e3)
    s.i_txns s.i_view_changes s.i_retained_slots s.i_live_words
    s.i_replied_retained;
  (* Fault-free runs never roll back; print the counters only when they
     fired so the baseline report layout is unchanged. *)
  if s.i_rolled_back_rounds > 0 then
    Format.fprintf fmt " rolled_back=%d rounds (%d txns)"
      s.i_rolled_back_rounds s.i_rolled_back_txns

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s n=%d batch=%d: %.0f txn/s, lat avg %.2f ms (p50 %.2f, p99 %.2f)@,\
     committed=%d rounds=%d ledger_valid=%b view_changes=%d collusions=%d@,\
     contracts=%dB replacements=%d msgs=%d bytes=%d events=%d wall=%.1fs@,\
     util: exec %.0f%% worker0 %.0f%%"
    t.protocol t.n t.batch_size t.throughput (t.avg_latency *. 1e3)
    (t.p50_latency *. 1e3) (t.p99_latency *. 1e3) t.committed_txns
    t.ledger_rounds t.ledger_valid t.view_changes t.collusions_detected
    t.contract_bytes t.replacements t.messages t.bytes_sent t.sim_events
    t.wall_seconds
    (t.exec_utilization *. 100.0)
    (t.worker_utilization *. 100.0);
  (match t.open_loop with
  | Some o ->
      Format.fprintf fmt
        "@,open-loop: offered %.0f txn/s (%d txns), injected=%d dropped=%d \
         queue p50=%.0f p99=%.0f max=%d"
        o.offered_rate o.offered_txns o.injected_txns o.dropped_txns
        o.queue_p50 o.queue_p99 o.max_depth
  | None -> ());
  if t.snap_installs + t.snap_rejects > 0 then
    Format.fprintf fmt
      "@,state transfer: installs=%d rejects=%d rounds_skipped=%d in=%dB out=%dB"
      t.snap_installs t.snap_rejects t.snap_rounds_skipped t.snap_bytes_in
      t.snap_bytes_out;
  (* Journal counters appear only when journaling ran, so fault-free
     digest runs keep the historical report layout. *)
  if t.jrn_appends + t.jrn_restarts > 0 then begin
    Format.fprintf fmt
      "@,journal: appends=%d flushes=%d bytes=%d snapshots=%d faults=%d"
      t.jrn_appends t.jrn_flushes t.jrn_bytes t.jrn_snapshots t.jrn_faults;
    if t.jrn_restarts > 0 then
      Format.fprintf fmt
        "@,recovery: restarts=%d replayed=%d rounds (%d txns)"
        t.jrn_restarts t.jrn_replayed_rounds t.jrn_replayed_txns
  end;
  if Array.length t.per_instance > 1 then
    Array.iter (fun s -> Format.fprintf fmt "@,%a" pp_instance s) t.per_instance;
  Format.fprintf fmt "@]"
