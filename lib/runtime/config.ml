module Engine = Rcc_sim.Engine

type protocol = Pbft | Zyzzyva | Hotstuff | MultiP | MultiZ | Cft | MultiC

let protocol_name = function
  | Pbft -> "pbft"
  | Zyzzyva -> "zyzzyva"
  | Hotstuff -> "hotstuff"
  | MultiP -> "multip"
  | MultiZ -> "multiz"
  | Cft -> "cft"
  | MultiC -> "multic"

let all_protocols = [ MultiZ; MultiP; Zyzzyva; Pbft; Hotstuff ]

type fault =
  | No_fault
  | Crash of Rcc_common.Ids.replica_id list
  | Dark of {
      instance : Rcc_common.Ids.instance_id;
      victims : Rcc_common.Ids.replica_id list;
    }
  | Collusion of {
      victim : Rcc_common.Ids.replica_id;
      at_round : Rcc_common.Ids.round;
    }
  | Client_dos of { instance : Rcc_common.Ids.instance_id }

type exec_mode = Exec_serial | Exec_parallel

let exec_mode_name = function
  | Exec_serial -> "serial"
  | Exec_parallel -> "parallel"

type arrival_process = Poisson | Uniform

let arrival_process_name = function Poisson -> "poisson" | Uniform -> "uniform"

type t = {
  protocol : protocol;
  n : int;
  f : int;
  z : int;
  batch_size : int;
  clients : int;  (* total logical clients, equal across protocols *)
  duration : Rcc_sim.Engine.time;
  warmup : Rcc_sim.Engine.time;
  replica_timeout : Rcc_sim.Engine.time;
  client_timeout : Rcc_sim.Engine.time;
  collusion_wait : Rcc_sim.Engine.time;
  heartbeat : Rcc_sim.Engine.time;
  recovery : Rcc_core.Coordinator.recovery_mode;
  use_permutation : bool;
  records : int;
  write_ratio : float;
  theta : float;
  latency : Rcc_sim.Engine.time;
  jitter : Rcc_sim.Engine.time;
  gbps : float;
  cores : int;
  checkpoint_interval : int;
  history_capacity : int;
  instance_change_after : int;
  seed : int;
  fault : fault;
  exec_mode : exec_mode;
  exec_threads : int;
  exec_window : int;
  arrival_rate : float;
      (* offered load in txn/s; 0.0 selects the closed-loop default *)
  arrival_process : arrival_process;
  max_in_flight : int;  (* open-loop in-flight cap; <= 0 = one per client *)
  journal : bool;  (* durable write-ahead journal; off by default so
                      fault-free perf digests stay byte-identical *)
  storage_faults : float;  (* per-record fault probability on every disk *)
}

let make ?(batch_size = 100) ?(clients = 240)
    ?(duration = Engine.of_seconds 3.0) ?(warmup = Engine.of_seconds 1.0)
    ?(replica_timeout = Engine.s 10) ?(client_timeout = Engine.s 15)
    ?(collusion_wait = Engine.s 5) ?(heartbeat = Engine.ms 25)
    ?(recovery = Rcc_core.Coordinator.Optimistic) ?(use_permutation = true)
    ?(records = 500_000) ?(write_ratio = 0.9) ?(theta = 0.9) ?z ?(seed = 42)
    ?(instance_change_after = 3) ?(fault = No_fault)
    ?(exec_mode = Exec_serial) ?(exec_threads = 4) ?(exec_window = 8)
    ?(arrival_rate = 0.0) ?(arrival_process = Poisson) ?(max_in_flight = 0)
    ?(journal = false) ?(storage_faults = 0.0) ~protocol ~n () =
  if n < 4 then invalid_arg "Config.make: need n >= 4";
  let f = (n - 1) / 3 in
  let z =
    match z with
    | Some z -> z
    | None -> (
        match protocol with
        | MultiP | MultiZ | MultiC -> f + 1
        | Pbft | Zyzzyva | Hotstuff | Cft -> 1)
  in
  {
    protocol;
    n;
    f;
    z;
    batch_size;
    clients;
    duration;
    warmup;
    replica_timeout;
    client_timeout;
    collusion_wait;
    heartbeat;
    recovery;
    use_permutation;
    records;
    write_ratio;
    theta;
    latency = Engine.us 100;
    jitter = Engine.us 60;
    gbps = 4.0;
    cores = 16;
    checkpoint_interval = 128;
    history_capacity = 16_384;
    instance_change_after;
    seed;
    fault;
    exec_mode;
    exec_threads;
    exec_window;
    arrival_rate;
    arrival_process;
    max_in_flight;
    journal;
    storage_faults;
  }

let client_instances t =
  match t.protocol with
  | Hotstuff -> t.n
  | Pbft | Zyzzyva | MultiP | MultiZ | Cft | MultiC -> t.z

let total_clients t = t.clients

let open_loop t = t.arrival_rate > 0.0

let client_arrival t =
  if t.arrival_rate <= 0.0 then Rcc_replica.Client_pool.Closed_loop
  else
    Rcc_replica.Client_pool.Open_loop
      {
        rate = t.arrival_rate;
        process =
          (match t.arrival_process with
          | Poisson -> Rcc_replica.Client_pool.Poisson
          | Uniform -> Rcc_replica.Client_pool.Uniform);
        max_in_flight = t.max_in_flight;
      }

let quorum t =
  match t.protocol with
  | Zyzzyva | MultiZ -> Rcc_replica.Client_pool.All_n_speculative
  | Pbft | Hotstuff | MultiP | Cft | MultiC ->
      Rcc_replica.Client_pool.Majority_fplus1

(* Input (3) + output (3) + batch (2) + z workers + execute + checkpoint
   threads versus the machine's cores (§7.1 gives the baselines the same
   12-thread layout). Oversubscription inflates CPU costs at half the
   excess ratio: the workers are not all runnable at once. *)
let contention_factor t =
  (* Serial mode runs the historical single execute thread; parallel mode
     adds the execute pool alongside the scheduler lane. *)
  let exec_threads =
    match t.exec_mode with
    | Exec_serial -> 1
    | Exec_parallel -> t.exec_threads + 1
  in
  let threads = 3 + 3 + 2 + t.z + exec_threads + 1 in
  let pressure = float_of_int threads /. float_of_int t.cores in
  if pressure <= 1.0 then 1.0 else 1.0 +. (0.5 *. (pressure -. 1.0))
