module Engine = Rcc_sim.Engine

type profile = [ `Full | `Quick ]

let duration = function
  | `Full -> Engine.of_seconds 1.0
  | `Quick -> Engine.of_seconds 0.4

let warmup = function
  | `Full -> Engine.of_seconds 0.34
  | `Quick -> Engine.of_seconds 0.15

(* When set, every run records a structured trace and dumps it to the
   given path ((path, ring capacity); the file is overwritten per run, so
   a sweep leaves the last configuration's trace). Set from the bench
   CLI's [--trace]. *)
let trace_spec : (string * int option) option ref = ref None

let run_one ?label cfg =
  let label =
    match label with
    | Some l -> l
    | None ->
        Printf.sprintf "%s n=%d batch=%d"
          (Config.protocol_name cfg.Config.protocol)
          cfg.Config.n cfg.Config.batch_size
  in
  Printf.eprintf "  [run] %s ...%!" label;
  let tracer =
    Option.map
      (fun (_, capacity) -> Rcc_trace.Recorder.create ?capacity ())
      !trace_spec
  in
  let report = Cluster.run_config ?tracer cfg in
  (match (!trace_spec, tracer) with
  | Some (path, _), Some recorder ->
      if Filename.check_suffix path ".jsonl" then
        Rcc_trace.Sink.write_jsonl recorder ~path
      else Rcc_trace.Sink.write_chrome recorder ~path;
      Printf.eprintf " [trace -> %s]%!" path
  | _ -> ());
  Printf.eprintf " %.0f txn/s (%.1fs wall)\n%!" report.Report.throughput
    report.Report.wall_seconds;
  report

let sweep_batch profile ~protocols ~n ~batch_sizes =
  List.concat_map
    (fun protocol ->
      List.map
        (fun batch_size ->
          let cfg =
            Config.make ~protocol ~n ~batch_size ~duration:(duration profile)
              ~warmup:(warmup profile) ()
          in
          (protocol, batch_size, run_one cfg))
        batch_sizes)
    protocols

let sweep_replicas profile ~protocols ~ns ~batch_size =
  List.concat_map
    (fun protocol ->
      List.map
        (fun n ->
          let cfg =
            Config.make ~protocol ~n ~batch_size ~duration:(duration profile)
              ~warmup:(warmup profile) ()
          in
          (protocol, n, run_one cfg))
        ns)
    protocols

(* Failure runs scale the replica watchdog into the simulated window so
   detection (and HotStuff's pacemaker) actually happens; the 15 s client
   timeout is deliberately NOT scaled — the paper's Zyzzyva collapse is the
   client-side wait. *)
let failure_timeout profile = duration profile / 4

let sweep_failures profile ~protocols ~ns ~batch_size ~failures =
  List.concat_map
    (fun protocol ->
      List.map
        (fun n ->
          let f = (n - 1) / 3 in
          let cfg =
            Config.make ~protocol ~n ~batch_size ~duration:(duration profile)
              ~warmup:(warmup profile)
              ~replica_timeout:(failure_timeout profile)
              ~fault:(failures ~n ~f) ()
          in
          (protocol, n, run_one cfg))
        ns)
    protocols

let collusion_run profile ~n ~batch_size protocol =
  let dur =
    match profile with
    | `Full -> Engine.of_seconds 5.0
    | `Quick -> Engine.of_seconds 2.0
  in
  let replica_timeout = dur / 5 in
  let collusion_wait = dur / 10 in
  (* Aim the single-round attack at roughly 40% into the run; round rate is
     throughput-dependent, so estimate from the execute ceiling. *)
  let at_round =
    match profile with `Full -> 450 | `Quick -> 150
  in
  (* The paper darkens replica 12 (n=32); at smaller n pick the first
     replica that neither hosts a primary nor belongs to the byzantine
     high-id set. *)
  let f = (n - 1) / 3 in
  let victim = if n > 24 then 12 else f + 2 in
  let cfg =
    Config.make ~protocol ~n ~batch_size ~duration:dur
      ~warmup:(warmup profile) ~replica_timeout ~collusion_wait
      ~fault:(Config.Collusion { victim; at_round })
      ()
  in
  run_one ~label:"collusion attack (fig12)" cfg

let z_sweep profile ~n ~batch_size ~zs =
  List.map
    (fun z ->
      let cfg =
        Config.make ~protocol:Config.MultiP ~n ~batch_size ~z
          ~duration:(duration profile) ~warmup:(warmup profile) ()
      in
      (z, run_one ~label:(Printf.sprintf "multip n=%d z=%d" n z) cfg))
    zs

let recovery_comparison profile ~n ~batch_size =
  let dur =
    match profile with
    | `Full -> Engine.of_seconds 4.0
    | `Quick -> Engine.of_seconds 2.0
  in
  let f = (n - 1) / 3 in
  let victim = if n > 24 then 12 else f + 2 in
  List.map
    (fun recovery ->
      let cfg =
        Config.make ~protocol:Config.MultiP ~n ~batch_size ~duration:dur
          ~warmup:(warmup profile) ~replica_timeout:(dur / 5)
          ~collusion_wait:(dur / 10) ~recovery
          ~fault:
            (Config.Collusion
               { victim; at_round = (match profile with `Full -> 350 | `Quick -> 150) })
          ()
      in
      let name =
        match recovery with
        | Rcc_core.Coordinator.Optimistic -> "optimistic"
        | Rcc_core.Coordinator.Pessimistic -> "pessimistic"
        | Rcc_core.Coordinator.View_shift -> "view-shift"
      in
      (recovery, run_one ~label:("recovery=" ^ name) cfg))
    [
      Rcc_core.Coordinator.Optimistic;
      Rcc_core.Coordinator.Pessimistic;
      Rcc_core.Coordinator.View_shift;
    ]
