(** Build and run one simulated deployment: n replicas, the client fleet,
    the network, the fault injection — then collect a {!Report}. *)

type t

val build : ?tracer:Rcc_trace.Recorder.t -> Config.t -> t
(** Constructs everything but does not start the clock. When [tracer] is
    given, every layer (net, cpu, slots, coordinator, clients) records
    structured events into it as the simulation runs. *)

val run : t -> Report.t
(** Starts replicas and clients, runs the simulation for the configured
    duration and returns the measurements. *)

val run_config : ?tracer:Rcc_trace.Recorder.t -> Config.t -> Report.t
(** [build] + [run]. *)

val stop_clients : t -> unit
(** Stop the clients from injecting or retrying requests — closed-loop
    next-requests and the open-loop arrival process alike. Used between
    [run] and a drain phase: with the load source off, the engine can be
    stepped further so in-flight recovery (catch-up execution, view-sync
    adoption) completes before a final invariant judgement. *)

val client_requests_sent : t -> int
(** Total client requests (including resends) the pool has put on the
    network; the chaos runner samples it at [stop_clients] to assert the
    drain is injection-free. *)

(* Introspection for tests and examples (valid after [run]). *)

val config : t -> Config.t
val metrics : t -> Rcc_replica.Metrics.t
val ledger : t -> Rcc_common.Ids.replica_id -> Rcc_storage.Ledger.t
val store : t -> Rcc_common.Ids.replica_id -> Rcc_storage.Kv_store.t
val txn_table : t -> Rcc_common.Ids.replica_id -> Rcc_storage.Txn_table.t
val primary_of_instance :
  t -> Rcc_common.Ids.instance_id -> Rcc_common.Ids.replica_id
val replacements : t -> int
val client_pool : t -> Rcc_replica.Client_pool.t
val engine : t -> Rcc_sim.Engine.t

(* Chaos-layer hooks: the nemesis injects faults through the network and
   the per-replica byzantine specs; the invariant checker compares each
   replica's view of the coordinator state. *)

val net : t -> Rcc_messages.Msg.t Rcc_sim.Net.t

val byz_spec : t -> Rcc_common.Ids.replica_id -> Rcc_replica.Byz.t
(** The live behaviour spec of one replica; mutate it (via
    {!Rcc_replica.Byz.set}) to flip the replica's behaviour mid-run. *)

val primaries_view :
  t -> Rcc_common.Ids.replica_id -> Rcc_common.Ids.replica_id list
(** The primary set as believed by replica [r] (per-instance, in instance
    order). *)

val known_malicious_view :
  t -> Rcc_common.Ids.replica_id -> Rcc_common.Ids.replica_id list

val replacements_of : t -> Rcc_common.Ids.replica_id -> int
(** Unified primary replacements performed by replica [r]'s coordinator. *)

(* Durable storage: restart-from-disk and storage-fault injection. All of
   these require the config to have been built with [journal = true];
   without it the disks exist but hold nothing. *)

val restart_from_disk :
  t -> Rcc_common.Ids.replica_id -> Rcc_journal.Journal.recovery option
(** Replace replica [r] with a fresh incarnation recovered from its
    persistent disk: the orphan is halted (un-flushed journal records are
    lost — crash semantics), the successor installs the newest verifiable
    snapshot, replays the journal suffix, re-registers the network
    handler and starts. Also clears the net dead flag. Returns the
    recovery summary ([None] when journaling is off: the successor comes
    up empty and relies entirely on state transfer). *)

val set_storage_faults : t -> Rcc_common.Ids.replica_id -> float -> unit
(** Make replica [r]'s disk lie: each subsequent record write is torn /
    corrupted / silently lost with the given per-mode probability.
    [0.0] restores an honest disk. *)

val recovery_floor : t -> Rcc_common.Ids.replica_id -> int
(** Durable frontier proved by [r]'s most recent restart-from-disk (0 if
    never restarted) — a recovered replica's ledger must never regress
    below this. *)

val restarts : t -> int
val disk : t -> Rcc_common.Ids.replica_id -> Rcc_journal.Sim_disk.t
val journal_of :
  t -> Rcc_common.Ids.replica_id -> Rcc_journal.Journal.t option
