(** Result of one experiment run, with printers for the bench tables. *)

type instance_stats = {
  instance : int;
  i_throughput : float;  (** committed txns / s, post-warmup *)
  i_avg_latency : float;  (** seconds *)
  i_p50_latency : float;
  i_p99_latency : float;
  i_txns : int;
  i_view_changes : int;
  i_retained_slots : int;  (** slot-log entries alive after checkpoint GC *)
  i_live_words : int;  (** rough heap words those slots pin *)
  i_replied_retained : int;
      (** duplicate-reply cache entries retained for this instance after
          checkpoint-driven eviction (replica 0) *)
  i_rolled_back_rounds : int;
      (** speculative rounds unwound on this instance's view changes
          (replica 0); 0 in fault-free runs *)
  i_rolled_back_txns : int;  (** executed txns those rounds had applied *)
}
(** One protocol instance's share of the run (z rows for RCC modes). *)

type open_loop = {
  offered_rate : float;  (** configured arrival rate, txn/s *)
  offered_txns : int;  (** txns the arrival process tried to inject *)
  injected_txns : int;
  dropped_txns : int;  (** shed at the in-flight cap / all clients busy *)
  queue_p50 : float;  (** in-flight request depth, sampled per arrival *)
  queue_p99 : float;
  max_depth : int;
}
(** Offered vs. completed load for open-loop runs. *)

type t = {
  protocol : string;
  n : int;
  batch_size : int;
  throughput : float;  (** committed client txns / s, post-warmup *)
  avg_latency : float;  (** seconds *)
  p50_latency : float;
  p99_latency : float;
  committed_txns : int;
  timeline : (float * float) array;  (** client throughput per 100 ms *)
  exec_timeline : (float * float) array;  (** affected replica, fig. 12 *)
  view_changes : int;
  collusions_detected : int;
  contract_bytes : int;
  replacements : int;
  messages : int;
  bytes_sent : int;
  ledger_rounds : int;
  ledger_valid : bool;
  exec_utilization : float;  (** replica 0's execute thread busy fraction *)
  exec_pool_utilization : float;
      (** replica 0's execute-pool mean busy fraction; 0 in serial mode *)
  worker_utilization : float;  (** replica 0's instance-0 worker busy fraction *)
  sim_events : int;
  wall_seconds : float;
  snap_installs : int;  (** snapshots installed, summed over replicas *)
  snap_rejects : int;  (** snapshot fetches rejected (bad blob / timeout) *)
  snap_rounds_skipped : int;  (** consensus rounds covered by installs *)
  snap_bytes_in : int;  (** snapshot payload bytes received *)
  snap_bytes_out : int;  (** snapshot payload bytes served *)
  jrn_appends : int;  (** journal records appended (all replicas) *)
  jrn_flushes : int;  (** group-commit flushes (modeled fsyncs) *)
  jrn_bytes : int;  (** journal bytes flushed to disk *)
  jrn_snapshots : int;  (** durable checkpoint snapshots written *)
  jrn_faults : int;  (** storage faults injected across all disks *)
  jrn_restarts : int;  (** restart-from-disk recoveries performed *)
  jrn_replayed_rounds : int;  (** rounds re-executed from the journal *)
  jrn_replayed_txns : int;
  open_loop : open_loop option;  (** [None] for closed-loop runs *)
  per_instance : instance_stats array;
      (** per-instance breakdown; printed by {!pp} when longer than 1 *)
}

val header : unit -> string
val row : t -> string
val pp : Format.formatter -> t -> unit
