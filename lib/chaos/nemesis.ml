module Engine = Rcc_sim.Engine
module Net = Rcc_sim.Net
module Byz = Rcc_replica.Byz
module Cluster = Rcc_runtime.Cluster
module Config = Rcc_runtime.Config
module Rng = Rcc_common.Rng

type t = {
  cluster : Cluster.t;
  n : int;
  rng : Rng.t;
  mutable partition_rule : Net.rule_id option;
  mutable link_rules : Net.rule_id list;  (* delay / drop / dup rules *)
  byz_tainted : bool array;
  crashed : bool array;
  was_crashed : bool array;
  mutable applied : int;
}

let net t = Cluster.net t.cluster

(* Membership test for a from/to set; [] is a wildcard over replicas. *)
let in_set t set node =
  match set with [] -> node < t.n | l -> List.mem node l

let remove_partition t =
  match t.partition_rule with
  | Some id ->
      Net.remove_rule (net t) id;
      t.partition_rule <- None
  | None -> ()

let heal t =
  remove_partition t;
  List.iter (Net.remove_rule (net t)) t.link_rules;
  t.link_rules <- []

let apply_partition t groups =
  remove_partition t;
  (* Replicas absent from every listed group form the remainder group. *)
  let group_of = Array.make t.n (List.length groups) in
  List.iteri
    (fun g members ->
      List.iter (fun r -> if r >= 0 && r < t.n then group_of.(r) <- g) members)
    groups;
  t.partition_rule <-
    Some
      (Net.add_drop_rule (net t) (fun ~src ~dst _ ->
           src < t.n && dst < t.n && group_of.(src) <> group_of.(dst)))

let spec_of_behaviour = function
  | Script.Dark victims -> Byz.dark_primary ~victims ()
  | Script.False_blame blames -> Byz.false_blamer ~blames
  | Script.Ignore_clients -> Byz.client_ignorer
  | Script.Equivocate -> Byz.equivocator
  | Script.Forge_views -> Byz.view_forger
  | Script.Corrupt_snapshot -> Byz.snapshot_corruptor

let apply t action =
  t.applied <- t.applied + 1;
  match action with
  | Script.Partition groups -> apply_partition t groups
  | Script.Heal -> heal t
  | Script.Delay_links { from_set; to_set; extra } ->
      let id =
        Net.add_delay_rule (net t) (fun ~src ~dst ->
            if in_set t from_set src && in_set t to_set dst then extra else 0)
      in
      t.link_rules <- id :: t.link_rules
  | Script.Drop_links { from_set; to_set; prob } ->
      let id =
        Net.add_drop_rule (net t) (fun ~src ~dst _ ->
            in_set t from_set src && in_set t to_set dst
            && (prob >= 1.0 || Rng.float t.rng 1.0 < prob))
      in
      t.link_rules <- id :: t.link_rules
  | Script.Duplicate_links { prob } ->
      let id =
        Net.add_dup_rule (net t) (fun ~src:_ ~dst:_ _ ->
            if Rng.float t.rng 1.0 < prob then 1 else 0)
      in
      t.link_rules <- id :: t.link_rules
  | Script.Crash r ->
      t.crashed.(r) <- true;
      t.was_crashed.(r) <- true;
      Net.set_dead (net t) r true
  | Script.Restart r ->
      t.crashed.(r) <- false;
      Net.set_dead (net t) r false
  | Script.Byz_on (r, behaviour) ->
      t.byz_tainted.(r) <- true;
      Byz.set (Cluster.byz_spec t.cluster r) (spec_of_behaviour behaviour)
  | Script.Byz_off r -> Byz.set (Cluster.byz_spec t.cluster r) Byz.honest
  | Script.Restart_from_disk r ->
      (* The successor incarnation is live again ([Cluster.restart_from_disk]
         clears the dead flag), so the invariant checker re-includes it:
         a journal-recovered replica re-enters the agreement and
         no-divergence guarantees after its drain window. *)
      t.crashed.(r) <- false;
      ignore (Cluster.restart_from_disk t.cluster r)
  | Script.Storage_faults (r, p) -> Cluster.set_storage_faults t.cluster r p

let install ?(seed = 0x6e656d) cluster script =
  let cfg = Cluster.config cluster in
  let n = cfg.Config.n in
  let t =
    {
      cluster;
      n;
      rng = Rng.create seed;
      partition_rule = None;
      link_rules = [];
      byz_tainted = Array.make n false;
      crashed = Array.make n false;
      was_crashed = Array.make n false;
      applied = 0;
    }
  in
  let engine = Cluster.engine cluster in
  List.iter
    (fun { Script.at; action } ->
      Engine.schedule_at engine at (fun () -> apply t action))
    (Script.sorted script);
  t

let listed flags =
  Array.to_seq flags
  |> Seq.mapi (fun i b -> (i, b))
  |> Seq.filter_map (fun (i, b) -> if b then Some i else None)
  |> List.of_seq

let tainted t = listed t.byz_tainted
let dead_now t = listed t.crashed
let ever_crashed t = listed t.was_crashed
let events_applied t = t.applied
