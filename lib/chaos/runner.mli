(** One chaos run: build the cluster, install the nemesis, run with
    periodic invariant checks, and verdict the outcome.

    Safety invariants are checked every [check_every] of simulated time
    and at the end; byzantine-tainted replicas (scripted or configured)
    are excluded from guarantees. If [expect_progress] (default), the run
    additionally requires post-heal liveness: client transactions commit
    during the run, and a never-faulty replica's ledger keeps growing
    after the script's last event. [quiesced_check] (default) adds the
    end-of-run coordinator agreement check — disable it for scripts that
    deliberately leave the cluster split or stalled. [canary] installs an
    intentionally-broken invariant ("no transaction ever commits") to
    demonstrate the failure-reporting path. *)

type outcome = {
  cfg : Rcc_runtime.Config.t;
  script : Script.t;
  report : Rcc_runtime.Report.t;
  violations : (Rcc_sim.Engine.time * Invariant.violation) list;
      (** in detection order; time is the simulated instant of the check *)
  trace_file : string option;
      (** where the structured trace was dumped, when tracing was on *)
  events : Rcc_trace.Event.t list;
      (** the recorder's surviving window, oldest first, when tracing was
          on ([trace_path] or [trace_ring] given); scenarios assert
          recovery milestones (e.g. snapshot installs) against it *)
}

val passed : outcome -> bool

val run :
  ?check_every:Rcc_sim.Engine.time ->
  ?expect_progress:bool ->
  ?quiesced_check:bool ->
  ?canary:bool ->
  ?nemesis_seed:int ->
  ?trace_path:string ->
  ?trace_ring:int ->
  Rcc_runtime.Config.t ->
  Script.t ->
  outcome
(** [trace_path] turns structured tracing on and dumps the recorder's
    trailing window there after the run — Chrome trace-event JSON, or
    JSONL when the path ends in [.jsonl]. Invariant violations are
    stamped into the trace at detection time. [trace_ring] bounds the
    ring buffer (events kept; default 65536). *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Deterministic summary: PASS/FAIL, committed rounds/txns, violations
    and the script on failure. No wall-clock fields. *)
