module Cluster = Rcc_runtime.Cluster
module Config = Rcc_runtime.Config
module Ledger = Rcc_storage.Ledger
module Block = Rcc_storage.Block
module Txn_table = Rcc_storage.Txn_table
module Batch = Rcc_messages.Batch

type violation = { invariant : string; detail : string }

let to_string v = Printf.sprintf "%s: %s" v.invariant v.detail

let fail invariant fmt = Printf.ksprintf (fun detail -> { invariant; detail }) fmt

let checked_replicas cluster ~exclude =
  let n = (Cluster.config cluster).Config.n in
  List.filter (fun r -> not (List.mem r exclude)) (List.init n (fun r -> r))

(* --- ledger chain validity ---------------------------------------------- *)

let check_chains cluster replicas =
  List.filter_map
    (fun r ->
      match Ledger.validate (Cluster.ledger cluster r) with
      | Ok () -> None
      | Error e -> Some (fail "ledger-chain" "replica %d: %s" r e))
    replicas

(* --- prefix and slot agreement ------------------------------------------ *)

(* Compare every replica against the longest ledger among the checked set;
   prefix agreement is transitive through the reference. *)
let check_prefixes cluster replicas =
  match replicas with
  | [] -> []
  | _ ->
      let longest =
        List.fold_left
          (fun best r ->
            if Ledger.length (Cluster.ledger cluster r)
               > Ledger.length (Cluster.ledger cluster best)
            then r
            else best)
          (List.hd replicas) replicas
      in
      let reference = Cluster.ledger cluster longest in
      List.concat_map
        (fun r ->
          if r = longest then []
          else begin
            let other = Cluster.ledger cluster r in
            let common = min (Ledger.length reference) (Ledger.length other) in
            let violations = ref [] in
            (try
               for round = 0 to common - 1 do
                 let a = Option.get (Ledger.get reference round) in
                 let b = Option.get (Ledger.get other round) in
                 if not (String.equal (Block.hash a) (Block.hash b)) then begin
                   (* Name the diverging slot if a single instance differs. *)
                   let slot =
                     List.find_opt
                       (fun (pa : Block.proof) ->
                         List.exists
                           (fun (pb : Block.proof) ->
                             pa.Block.instance = pb.Block.instance
                             && not
                                  (String.equal pa.Block.batch_digest
                                     pb.Block.batch_digest))
                           b.Block.proofs)
                       a.Block.proofs
                   in
                   (match slot with
                   | Some p ->
                       violations :=
                         fail "slot-agreement"
                           "replicas %d and %d executed different batches at \
                            (round %d, instance %d)"
                           longest r round p.Block.instance
                         :: !violations
                   | None ->
                       violations :=
                         fail "ledger-prefix"
                           "replicas %d and %d diverge at round %d" longest r
                           round
                         :: !violations);
                   raise Exit
                 end
               done
             with Exit -> ());
            List.rev !violations
          end)
        replicas

(* --- duplicate execution ------------------------------------------------- *)

(* §3.1: a client request is ordered by exactly one instance; a batch that
   executes in two rounds (or twice in one) was double-served. Checked per
   replica over its own txn table. *)
let check_no_duplicate_execution cluster replicas =
  List.filter_map
    (fun r ->
      let table = Cluster.txn_table cluster r in
      let rounds = Ledger.length (Cluster.ledger cluster r) in
      let seen = Hashtbl.create 256 in
      let dup = ref None in
      for round = 0 to rounds - 1 do
        List.iter
          (fun (e : Txn_table.entry) ->
            if e.Txn_table.client <> Batch.null_client then begin
              let key = (e.Txn_table.client, e.Txn_table.batch_digest) in
              match Hashtbl.find_opt seen key with
              | Some first when !dup = None ->
                  dup := Some (e.Txn_table.client, first, round)
              | Some _ -> ()
              | None -> Hashtbl.add seen key round
            end)
          (Txn_table.find table ~round)
      done;
      match !dup with
      | Some (client, first, again) ->
          Some
            (fail "no-duplicate-execution"
               "replica %d executed client %d's batch twice (rounds %d and %d)"
               r client first again)
      | None -> None)
    replicas

(* --- coordinator structure and agreement --------------------------------- *)

let check_coordinator_structure cluster replicas =
  let cfg = Cluster.config cluster in
  List.concat_map
    (fun r ->
      let primaries = Cluster.primaries_view cluster r in
      let distinct = List.sort_uniq compare primaries in
      let bad =
        List.exists (fun p -> p < 0 || p >= cfg.Config.n) primaries
      in
      if List.length primaries <> cfg.Config.z then
        [
          fail "coordinator-structure" "replica %d tracks %d primaries, want z=%d"
            r (List.length primaries) cfg.Config.z;
        ]
      else if List.length distinct <> cfg.Config.z || bad then
        [
          fail "coordinator-structure" "replica %d primary set invalid: [%s]" r
            (String.concat "," (List.map string_of_int primaries));
        ]
      else [])
    replicas

let check_coordinator_agreement cluster replicas =
  match replicas with
  | [] | [ _ ] -> []
  | reference :: rest ->
      let ref_primaries = Cluster.primaries_view cluster reference in
      let ref_replacements = Cluster.replacements_of cluster reference in
      List.concat_map
        (fun r ->
          let primaries = Cluster.primaries_view cluster r in
          let replacements = Cluster.replacements_of cluster r in
          let show l = String.concat "," (List.map string_of_int l) in
          (if primaries <> ref_primaries then
             [
               fail "coordinator-agreement"
                 "replicas %d and %d disagree on primaries: [%s] vs [%s]"
                 reference r (show ref_primaries) (show primaries);
             ]
           else [])
          @
          if replacements <> ref_replacements then
            [
              fail "coordinator-agreement"
                "replicas %d and %d disagree on replacements: %d vs %d"
                reference r ref_replacements replacements;
            ]
          else [])
        rest

(* --- durable frontier ----------------------------------------------------- *)

(* A journal-recovered replica proved a durable frontier at restart; its
   ledger regressing below that would mean recovery installed state the
   disk never justified (or a later rollback destroyed durable rounds). *)
let check_durable_frontier cluster replicas =
  List.filter_map
    (fun r ->
      let floor = Cluster.recovery_floor cluster r in
      if floor = 0 then None
      else
        let len = Ledger.length (Cluster.ledger cluster r) in
        if len < floor then
          Some
            (fail "durable-frontier"
               "replica %d regressed to %d rounds below its recovered \
                durable frontier %d"
               r len floor)
        else None)
    replicas

let safety cluster ~exclude =
  let replicas = checked_replicas cluster ~exclude in
  check_chains cluster replicas
  @ check_prefixes cluster replicas
  @ check_no_duplicate_execution cluster replicas
  @ check_coordinator_structure cluster replicas
  @ check_durable_frontier cluster replicas

let quiesced cluster ~exclude =
  let replicas = checked_replicas cluster ~exclude in
  safety cluster ~exclude @ check_coordinator_agreement cluster replicas
