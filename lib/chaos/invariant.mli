(** Cluster-wide safety and liveness checks.

    Safety checks ({!safety}) hold at {e every} instant of a run, faults
    active or not, for every replica outside [exclude] (byzantine-tainted
    replicas can be arbitrary; crashed/lagging replicas are still checked —
    a stale ledger is a correct prefix):

    - every ledger's hash chain validates;
    - ledger prefix agreement: the common prefix of any two ledgers is
      block-for-block identical;
    - slot agreement: no two replicas execute different batches at the
      same (round, instance) slot — the per-instance proof digests of a
      shared round must match;
    - no duplicate execution: a real (non-null) batch is executed in at
      most one round (§3.1 request-duplication prevention);
    - coordinator structure: each replica's primary set has z distinct
      members of [0, n).

    Quiesced checks ({!quiesced}) additionally require that the cluster
    has settled — faults healed and enough tail time passed:

    - coordinator agreement: all checked replicas report the same
      (primary set, replacement count). *)

type violation = { invariant : string; detail : string }

val to_string : violation -> string

val safety :
  Rcc_runtime.Cluster.t ->
  exclude:Rcc_common.Ids.replica_id list ->
  violation list

val quiesced :
  Rcc_runtime.Cluster.t ->
  exclude:Rcc_common.Ids.replica_id list ->
  violation list
(** [safety] plus the agreement checks; run only after faults heal. *)
