(** Executes a fault {!Script} against a built (not yet running) cluster.

    [install] schedules every scripted action on the cluster's engine;
    the actions then fire as the simulation clock passes their times.
    Faults are injected through the composable {!Rcc_sim.Net} link rules
    (partition, delay, probabilistic drop, duplication), through
    {!Rcc_sim.Net.set_dead} (crash/restart), and by mutating a replica's
    live {!Rcc_replica.Byz.t} spec in place (behaviour activation).

    All randomness (probabilistic drops, duplication) is drawn from a
    dedicated generator seeded by [seed], so a run is a pure function of
    (config, script, seed). *)

type t

val install : ?seed:int -> Rcc_runtime.Cluster.t -> Script.t -> t
(** Call between {!Rcc_runtime.Cluster.build} and
    {!Rcc_runtime.Cluster.run}. [seed] defaults to 0x6e656d (distinct from
    the cluster's own streams either way). *)

val tainted : t -> Rcc_common.Ids.replica_id list
(** Replicas that have behaved byzantinely at any point so far — excluded
    from safety guarantees by the invariant checker. Grows as the script
    plays; query it at check time. *)

val dead_now : t -> Rcc_common.Ids.replica_id list
(** Replicas currently crashed. *)

val ever_crashed : t -> Rcc_common.Ids.replica_id list

val events_applied : t -> int
(** Scripted actions fired so far (for progress reporting). *)
