(** Declarative fault scripts for the nemesis.

    A script is a list of timed actions over simulated time. The nemesis
    ({!Nemesis}) schedules each action on the cluster's engine and
    translates it into network link rules, crash/restart of nodes, or
    in-place mutation of a replica's byzantine behaviour spec.

    Scripts print deterministically ({!to_string}), so a fuzzer failure
    report is reproducible byte-for-byte from its seed. *)

open Rcc_common.Ids

type behaviour =
  | Dark of replica_id list  (** as primary, keep these replicas in the dark *)
  | False_blame of replica_id list  (** accuse these non-faulty primaries *)
  | Ignore_clients  (** as primary, starve clients (§3.6 DoS) *)
  | Equivocate  (** as primary, propose conflicting batches *)
  | Forge_views
      (** broadcast forged view-sync messages with fabricated blame
          certificates; honest coordinators must reject them *)
  | Corrupt_snapshot
      (** as a state-transfer donor, serve bit-flipped snapshot payloads;
          requesters must reject them and fail over to another donor *)

type action =
  | Partition of replica_id list list
      (** Named replica sets: traffic between different sets is cut.
          Replicas in no listed set form one implicit remainder set.
          A later [Partition] reshapes (replaces) the current one;
          client machines are never partitioned. *)
  | Heal  (** remove the partition and every link rule installed so far *)
  | Delay_links of {
      from_set : replica_id list;  (** [[]] means every replica *)
      to_set : replica_id list;
      extra : Rcc_sim.Engine.time;
    }  (** inflate propagation delay on matching directed links *)
  | Drop_links of {
      from_set : replica_id list;
      to_set : replica_id list;
      prob : float;  (** 1.0 = deterministic cut of the directed link *)
    }
  | Duplicate_links of { prob : float }
      (** duplicate any message (all links, clients included) with this
          probability — executed effects must stay idempotent *)
  | Crash of replica_id
      (** the node goes dead: sends and receives stop; in-flight traffic
          addressed to it will never be delivered *)
  | Restart of replica_id
      (** revive from durable state (ledger, checkpoints, KV store); the
          volatile NIC queue is lost and the node returns with a fresh
          incarnation, then catches up through the state-exchange path *)
  | Byz_on of replica_id * behaviour
      (** flip the replica's live {!Rcc_replica.Byz.t} spec *)
  | Byz_off of replica_id  (** back to honest *)
  | Restart_from_disk of replica_id
      (** replace the (crashed) replica with a fresh incarnation that
          trusts nothing but its persistent disk: newest verifiable
          snapshot + journal-suffix replay, then state transfer for the
          rest. Distinct from [Restart], which revives the same
          in-memory incarnation. With journaling off the successor comes
          up empty and recovers entirely through state transfer. *)
  | Storage_faults of replica_id * float
      (** make the replica's disk lie: each record write is torn /
          corrupted / lost with this per-mode probability (0.0 heals) *)

type event = { at : Rcc_sim.Engine.time; action : action }

type t = event list

val sorted : t -> t
(** Events in time order (stable for equal times). *)

val last_event_time : t -> Rcc_sim.Engine.time
(** 0 for the empty script. *)

val faulty_replicas : t -> replica_id list
(** Replicas the script ever crashes, makes byzantine, or gives a lying
    disk, sorted. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** One "t=<ms> <action>" line per event; deterministic. *)
