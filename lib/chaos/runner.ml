module Engine = Rcc_sim.Engine
module Cluster = Rcc_runtime.Cluster
module Config = Rcc_runtime.Config
module Report = Rcc_runtime.Report
module Ledger = Rcc_storage.Ledger
module Byz = Rcc_replica.Byz

type outcome = {
  cfg : Config.t;
  script : Script.t;
  report : Report.t;
  violations : (Engine.time * Invariant.violation) list;
  trace_file : string option;
  events : Rcc_trace.Event.t list;
}

let passed outcome = outcome.violations = []

(* Replicas outside the safety guarantee right now: every spec that is
   currently byzantine (configured faults stay on; scripted ones may have
   been switched off, which [Nemesis.tainted] still remembers), plus the
   currently-dead set — a crashed replica cannot be expected to agree.
   Crucially this is [dead_now], not [ever_crashed]: a replica revived or
   journal-recovered via [Restart_from_disk] drops back out of the dead
   set and re-enters the agreement / no-divergence checks after its
   drain window. *)
let excluded cluster nemesis =
  let n = (Cluster.config cluster).Config.n in
  let byz_now =
    List.filter
      (fun r -> (Cluster.byz_spec cluster r).Byz.byzantine)
      (List.init n (fun r -> r))
  in
  List.sort_uniq compare
    (byz_now @ Nemesis.tainted nemesis @ Nemesis.dead_now nemesis)

(* A replica the script and config never touch, to witness liveness. *)
let witness cfg script =
  let faulty =
    Script.faulty_replicas script
    @ (match cfg.Config.fault with Config.Crash dead -> dead | _ -> [])
  in
  let rec scan r =
    if r >= cfg.Config.n then None
    else if List.mem r faulty then scan (r + 1)
    else Some r
  in
  scan 0

let run ?check_every ?(expect_progress = true) ?(quiesced_check = true)
    ?(canary = false) ?nemesis_seed ?trace_path ?trace_ring (cfg : Config.t)
    script =
  let duration = cfg.Config.duration in
  let check_every =
    match check_every with Some t -> max 1 t | None -> max 1 (duration / 10)
  in
  let tracer =
    match (trace_path, trace_ring) with
    | None, None -> None
    | _ -> Some (Rcc_trace.Recorder.create ?capacity:trace_ring ())
  in
  let cluster = Cluster.build ?tracer cfg in
  let nemesis = Nemesis.install ?seed:nemesis_seed cluster script in
  let engine = Cluster.engine cluster in
  let violations = ref [] in
  let record vs =
    let now = Engine.now engine in
    List.iter
      (fun (v : Invariant.violation) ->
        (* Stamp the detection into the trace so the violation shows up
           amid the trailing event window it is dumped with. *)
        Option.iter
          (fun r ->
            Rcc_trace.Recorder.record r
              {
                Rcc_trace.Event.at = now;
                replica = -1;
                instance = -1;
                payload = Rcc_trace.Event.Violation { name = v.Invariant.invariant };
              })
          tracer;
        violations := (now, v) :: !violations)
      vs
  in
  (* Periodic mid-run safety checks. *)
  let rec arm at =
    if at < duration then
      Engine.schedule_at engine at (fun () ->
          record (Invariant.safety cluster ~exclude:(excluded cluster nemesis));
          arm (at + check_every))
  in
  arm check_every;
  (* Snapshot a healthy replica's progress once the script has fully
     played out; the post-heal ledger must grow past it. *)
  let witness_replica = witness cfg script in
  let snapshot = ref None in
  let last_event = Script.last_event_time script in
  (match witness_replica with
  | Some w when script <> [] && last_event < duration ->
      Engine.schedule_at engine last_event (fun () ->
          snapshot := Some (Ledger.length (Cluster.ledger cluster w)))
  | Some _ | None -> ());
  let report = Cluster.run cluster in
  (* Drain before judging convergence: the run ends mid-flight — lagging
     replicas may still hold queued catch-up work (rounds of execution
     ahead of a pending view-sync adoption). Stop the load source and
     step the engine in bounded increments until the cluster quiesces or
     the drain budget (50% of the run) is exhausted; a genuinely diverged
     cluster still fails, an in-flight one gets to finish its recovery. *)
  if quiesced_check then begin
    Cluster.stop_clients cluster;
    let sent_at_stop = Cluster.client_requests_sent cluster in
    let step = max 1 (duration / 20) in
    let bound = duration + max step (duration / 2) in
    let rec drain at =
      if
        at <= bound
        && Invariant.quiesced cluster ~exclude:(excluded cluster nemesis) <> []
      then begin
        Engine.run engine ~until:at;
        drain (at + step)
      end
    in
    drain (duration + step);
    (* The drain must be injection-free: with the pool stopped, neither
       closed-loop next-requests, retry timers, nor the open-loop arrival
       process may put new client requests on the network — a leak here
       means the quiesced judgement races fresh load. *)
    let sent_after = Cluster.client_requests_sent cluster in
    if sent_after > sent_at_stop then
      record
        [
          {
            Invariant.invariant = "drain-injection-free";
            detail =
              Printf.sprintf
                "%d client requests injected after stop_clients"
                (sent_after - sent_at_stop);
          };
        ]
  end;
  let exclude = excluded cluster nemesis in
  record
    (if quiesced_check then Invariant.quiesced cluster ~exclude
     else Invariant.safety cluster ~exclude);
  if expect_progress then begin
    if report.Report.committed_txns = 0 then
      record
        [
          {
            Invariant.invariant = "liveness-commits";
            detail = "no client transaction committed over the whole run";
          };
        ];
    match (witness_replica, !snapshot) with
    | Some w, Some before ->
        let after = Ledger.length (Cluster.ledger cluster w) in
        if after <= before then
          record
            [
              {
                Invariant.invariant = "liveness-post-heal";
                detail =
                  Printf.sprintf
                    "replica %d's ledger stuck at %d rounds after the last \
                     scripted fault"
                    w before;
              };
            ]
    | _ -> ()
  end;
  if canary && report.Report.committed_txns > 0 then
    record
      [
        {
          Invariant.invariant = "canary-no-commits";
          detail =
            Printf.sprintf
              "intentionally-broken invariant: %d transactions committed"
              report.Report.committed_txns;
        };
      ];
  let trace_file =
    match (trace_path, tracer) with
    | Some path, Some recorder ->
        (* Always write the ring's trailing window — on FAIL it is the
           forensic dump, on PASS the CI artifact. *)
        if Filename.check_suffix path ".jsonl" then
          Rcc_trace.Sink.write_jsonl recorder ~path
        else Rcc_trace.Sink.write_chrome recorder ~path;
        Some path
    | _ -> None
  in
  let events =
    match tracer with Some r -> Rcc_trace.Recorder.to_list r | None -> []
  in
  { cfg; script; report; violations = List.rev !violations; trace_file; events }

let pp_outcome fmt outcome =
  let r = outcome.report in
  if passed outcome then
    Format.fprintf fmt "PASS %s n=%d rounds=%d txns=%d replacements=%d@."
      r.Report.protocol r.Report.n r.Report.ledger_rounds
      r.Report.committed_txns r.Report.replacements
  else begin
    Format.fprintf fmt "FAIL %s n=%d rounds=%d txns=%d (%d violations)@."
      r.Report.protocol r.Report.n r.Report.ledger_rounds
      r.Report.committed_txns
      (List.length outcome.violations);
    List.iter
      (fun (at, v) ->
        Format.fprintf fmt "  at %dms %s@." (at / 1_000_000)
          (Invariant.to_string v))
      outcome.violations;
    Format.fprintf fmt "script:@.%s" (Script.to_string outcome.script)
  end;
  match outcome.trace_file with
  | Some path -> Format.fprintf fmt "trace written to %s@." path
  | None -> ()
