(** Seeded scenario fuzzer: random-but-reproducible fault schedules.

    Every run is a pure function of its scenario seed — the same seed
    always produces the same script, workload and verdict, so a failure
    report is reproducible from the seed alone. Scenario seeds derive
    deterministically from [master seed × run index].

    Generated scripts are fair: at most one victim replica is faulted
    (n >= 4 tolerates f >= 1), scripted drops only affect the victim's
    links, and every fault heals by ~60% of the run so liveness checks
    have tail time to recover in. *)

type failure = {
  run_index : int;
  protocol : Rcc_runtime.Config.protocol;
  scenario_seed : int;
  outcome : Runner.outcome;
  minimized : Script.t;  (** greedily one-event-minimised failing script *)
}

type summary = {
  master_seed : int;
  runs : int;  (** per protocol *)
  protocols : Rcc_runtime.Config.protocol list;
  passes : int;
  failures : failure list;
}

val scenario_seed : master:int -> run:int -> int

val gen_script :
  ?journal:bool ->
  seed:int -> n:int -> duration:Rcc_sim.Engine.time -> unit -> Script.t
(** The fault schedule for one scenario, derived from [seed] alone.
    [journal] (default false) unlocks the storage episode families —
    power-failure restart-from-disk, lying-disk recovery, staggered
    restart storms; off, the generator's random stream is exactly the
    historical one, so fixed-seed scripts stay byte-identical. *)

val run_one :
  ?canary:bool ->
  ?trace_path:string ->
  ?trace_ring:int ->
  ?exec_mode:Rcc_runtime.Config.exec_mode ->
  ?exec_threads:int ->
  ?journal:bool ->
  protocol:Rcc_runtime.Config.protocol ->
  n:int ->
  duration:Rcc_sim.Engine.time ->
  scenario_seed:int ->
  unit ->
  Runner.outcome
(** One scenario, fully determined by [scenario_seed]. [trace_path] /
    [trace_ring] are forwarded to {!Runner.run}. *)

val fuzz :
  ?exec_mode:Rcc_runtime.Config.exec_mode ->
  ?exec_threads:int ->
  ?protocols:Rcc_runtime.Config.protocol list ->
  ?n:int ->
  ?duration:Rcc_sim.Engine.time ->
  ?canary:bool ->
  ?journal:bool ->
  seed:int ->
  runs:int ->
  unit ->
  summary
(** [runs] scenarios per protocol (default MultiP and MultiZ, n = 4,
    2 s of simulated time each). Failing scenarios are re-run through
    greedy one-event removal to minimise the script before reporting. *)

val pp_summary : Format.formatter -> summary -> unit
(** Deterministic, line-oriented report; identical seeds produce
    byte-identical output. Failures include the minimised script and
    the [--scenario-seed] needed to reproduce them. *)
