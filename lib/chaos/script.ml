open Rcc_common.Ids

type behaviour =
  | Dark of replica_id list
  | False_blame of replica_id list
  | Ignore_clients
  | Equivocate
  | Forge_views
  | Corrupt_snapshot

type action =
  | Partition of replica_id list list
  | Heal
  | Delay_links of {
      from_set : replica_id list;
      to_set : replica_id list;
      extra : Rcc_sim.Engine.time;
    }
  | Drop_links of {
      from_set : replica_id list;
      to_set : replica_id list;
      prob : float;
    }
  | Duplicate_links of { prob : float }
  | Crash of replica_id
  | Restart of replica_id
  | Byz_on of replica_id * behaviour
  | Byz_off of replica_id
  | Restart_from_disk of replica_id
  | Storage_faults of replica_id * float

type event = { at : Rcc_sim.Engine.time; action : action }

type t = event list

let sorted t = List.stable_sort (fun a b -> compare a.at b.at) t

let last_event_time t = List.fold_left (fun acc e -> max acc e.at) 0 t

let faulty_replicas t =
  List.sort_uniq compare
    (List.concat_map
       (fun e ->
         match e.action with
         | Crash r | Byz_on (r, _) | Storage_faults (r, _) -> [ r ]
         | Partition _ | Heal | Delay_links _ | Drop_links _
         | Duplicate_links _ | Restart _ | Restart_from_disk _ | Byz_off _ ->
             [])
       t)

let ids l = String.concat "," (List.map string_of_int l)

let set_or_all = function [] -> "*" | l -> ids l

let behaviour_to_string = function
  | Dark victims -> Printf.sprintf "dark(%s)" (ids victims)
  | False_blame blamed -> Printf.sprintf "false_blame(%s)" (ids blamed)
  | Ignore_clients -> "ignore_clients"
  | Equivocate -> "equivocate"
  | Forge_views -> "forge_views"
  | Corrupt_snapshot -> "corrupt_snapshot"

let action_to_string = function
  | Partition groups ->
      Printf.sprintf "partition %s"
        (String.concat "|" (List.map (fun g -> "{" ^ ids g ^ "}") groups))
  | Heal -> "heal"
  | Delay_links { from_set; to_set; extra } ->
      Printf.sprintf "delay %s->%s +%dus" (set_or_all from_set)
        (set_or_all to_set) (extra / 1_000)
  | Drop_links { from_set; to_set; prob } ->
      Printf.sprintf "drop %s->%s p=%.2f" (set_or_all from_set)
        (set_or_all to_set) prob
  | Duplicate_links { prob } -> Printf.sprintf "duplicate p=%.2f" prob
  | Crash r -> Printf.sprintf "crash %d" r
  | Restart r -> Printf.sprintf "restart %d" r
  | Byz_on (r, b) -> Printf.sprintf "byz %d %s" r (behaviour_to_string b)
  | Byz_off r -> Printf.sprintf "honest %d" r
  | Restart_from_disk r -> Printf.sprintf "restart_from_disk %d" r
  | Storage_faults (r, p) -> Printf.sprintf "storage_faults %d p=%.2f" r p

let to_string t =
  String.concat ""
    (List.map
       (fun e ->
         Printf.sprintf "t=%dms %s\n" (e.at / 1_000_000) (action_to_string e.action))
       (sorted t))

let pp fmt t = Format.pp_print_string fmt (to_string t)
