module Engine = Rcc_sim.Engine
module Config = Rcc_runtime.Config
module Rng = Rcc_common.Rng

type failure = {
  run_index : int;
  protocol : Config.protocol;
  scenario_seed : int;
  outcome : Runner.outcome;
  minimized : Script.t;
}

type summary = {
  master_seed : int;
  runs : int;
  protocols : Config.protocol list;
  passes : int;
  failures : failure list;
}

(* A large odd multiplier keeps per-run seeds well separated without
   depending on the Rng's stream-split behaviour. *)
let scenario_seed ~master ~run = (master * 1_000_003) + run

(* Timeouts sized so primary replacement and client retries fit inside a
   ~2 s simulated run (mirrors the integration-test fault configs). *)
let config_for ?exec_mode ?exec_threads ?journal protocol ~n ~duration ~seed =
  Config.make ~protocol ~n ~batch_size:10 ~clients:40 ~records:5_000 ~duration
    ~warmup:(duration / 4)
    ~replica_timeout:(Engine.ms 250) ~client_timeout:(Engine.ms 400)
    ~collusion_wait:(Engine.ms 150) ~seed ?exec_mode ?exec_threads ?journal ()

let gen_script ?(journal = false) ~seed ~n ~duration () =
  let rng = Rng.create seed in
  let victim = Rng.int rng n in
  let other () =
    let r = Rng.int rng (n - 1) in
    if r >= victim then r + 1 else r
  in
  (* Faults start after a fifth of the run and all heal by ~60%, leaving
     the tail to recover and quiesce in. *)
  let start = duration / 5 in
  let heal_at = duration * 3 / 5 in
  let episodes = 1 + Rng.int rng 3 in
  let span = (heal_at - start) / episodes in
  let crashed = ref false in
  let byzantine = ref false in
  let episode i =
    let at = start + (i * span) + Rng.int rng (max 1 (span / 2)) in
    (* The journal episode families live past index 9, behind the
       [journal] flag: with it off the draw is [int 10] exactly as
       before, so historical fixed-seed scripts stay byte-identical. *)
    match Rng.int rng (if journal then 13 else 10) with
    | 0 -> [ { Script.at; action = Script.Partition [ [ victim ] ] } ]
    | 1 ->
        crashed := true;
        [ { Script.at; action = Script.Crash victim } ]
    | 2 ->
        byzantine := true;
        let behaviour =
          match Rng.int rng 5 with
          | 0 -> Script.Dark [ other () ]
          | 1 -> Script.False_blame [ other () ]
          | 2 -> Script.Ignore_clients
          | 3 -> Script.Forge_views
          | _ -> Script.Equivocate
        in
        [ { Script.at; action = Script.Byz_on (victim, behaviour) } ]
    | 3 ->
        let extra = Engine.ms (1 + Rng.int rng 5) in
        [
          {
            Script.at;
            action = Script.Delay_links { from_set = [ victim ]; to_set = []; extra };
          };
        ]
    | 4 ->
        let prob = 0.3 +. (0.4 *. Rng.float rng 1.0) in
        [
          {
            Script.at;
            action = Script.Drop_links { from_set = [ victim ]; to_set = []; prob };
          };
        ]
    | 5 ->
        let prob = 0.05 +. (0.15 *. Rng.float rng 1.0) in
        [ { Script.at; action = Script.Duplicate_links { prob } } ]
    | 6 ->
        (* Overlap family: a partition and a crash/restart in flight at
           once — the restarted replica must catch up through peers while
           the partitioned one is still dark, the regime that exposed the
           view-convergence bug. The partition heals at the global heal. *)
        let down = other () in
        [
          { Script.at; action = Script.Partition [ [ victim ] ] };
          { Script.at = at + (span / 4); action = Script.Crash down };
          { Script.at = at + (span / 2); action = Script.Restart down };
        ]
    | 7 ->
        (* Transfer family: isolate the victim long enough to open a
           snapshot-sized gap, then heal mid-episode so state transfer
           runs while the next scripted fault may land on top of it. *)
        [
          { Script.at; action = Script.Partition [ [ victim ] ] };
          { Script.at = at + (span * 2 / 3); action = Script.Heal };
        ]
    | 8 ->
        (* Transfer family: a donor dies mid-transfer. The victim heals
           and starts fetching while a healthy peer — a candidate donor —
           crashes, forcing the per-donor timeout and failover path. *)
        let donor = other () in
        [
          { Script.at; action = Script.Partition [ [ victim ] ] };
          { Script.at = at + (span / 3); action = Script.Heal };
          { Script.at = at + (span / 3) + 1; action = Script.Crash donor };
          { Script.at = at + (span * 2 / 3); action = Script.Restart donor };
        ]
    | 9 ->
        (* Transfer family: a byzantine donor serves corrupted snapshot
           payloads. Verification must reject them and the victim must
           still recover through an honest donor. *)
        let corruptor = other () in
        [
          { Script.at; action = Script.Byz_on (corruptor, Script.Corrupt_snapshot) };
          { Script.at = at + (span / 4); action = Script.Partition [ [ victim ] ] };
          { Script.at = at + (span * 2 / 3); action = Script.Heal };
          { Script.at = heal_at; action = Script.Byz_off corruptor };
        ]
    | 10 ->
        (* Journal family: power failure. The victim loses power mid-run
           and comes back as a fresh incarnation trusting only its disk —
           snapshot install + journal-suffix replay, state transfer for
           whatever was never flushed. *)
        crashed := true;
        [
          { Script.at; action = Script.Crash victim };
          { Script.at = at + (span / 2); action = Script.Restart_from_disk victim };
        ]
    | 11 ->
        (* Journal family: lying disk. Faults are armed before the crash
           so the journal tail written closest to the failure is suspect;
           recovery must truncate at the first bad record and close the
           gap through state transfer — never install corrupt state. *)
        crashed := true;
        let p = 0.05 +. (0.2 *. Rng.float rng 1.0) in
        [
          { Script.at; action = Script.Storage_faults (victim, p) };
          { Script.at = at + (span / 4); action = Script.Crash victim };
          { Script.at = at + (span / 2); action = Script.Restart_from_disk victim };
          { Script.at = heal_at; action = Script.Storage_faults (victim, 0.0) };
        ]
    | _ ->
        (* Journal family: staggered restart storm. Two replicas
           power-cycle back-to-back (never concurrently — n = 4 only
           tolerates one down), so the second recovery runs while the
           first recovered replica is still catching up. *)
        crashed := true;
        let down = other () in
        [
          { Script.at; action = Script.Crash victim };
          { Script.at = at + (span / 3); action = Script.Restart_from_disk victim };
          { Script.at = at + (span / 2); action = Script.Crash down };
          { Script.at = at + (span * 5 / 6); action = Script.Restart_from_disk down };
        ]
  in
  let faults = List.concat_map episode (List.init episodes (fun i -> i)) in
  let cleanup =
    ({ Script.at = heal_at; action = Script.Heal }
     :: (if !crashed then [ { Script.at = heal_at; action = Script.Restart victim } ]
         else []))
    @ (if !byzantine then [ { Script.at = heal_at; action = Script.Byz_off victim } ]
       else [])
  in
  Script.sorted (faults @ cleanup)

let run_one ?(canary = false) ?trace_path ?trace_ring ?exec_mode ?exec_threads
    ?(journal = false) ~protocol ~n ~duration
    ~scenario_seed () =
  let cfg =
    config_for ?exec_mode ?exec_threads ~journal protocol ~n ~duration
      ~seed:scenario_seed
  in
  let script = gen_script ~journal ~seed:scenario_seed ~n ~duration () in
  Runner.run ~canary ~nemesis_seed:scenario_seed ?trace_path ?trace_ring cfg
    script

(* Greedy one-event removal: drop any event whose absence still fails,
   until no single removal reproduces the failure. Each re-run is a pure
   function of (cfg, script, seed), so minimisation is deterministic. *)
let minimize ~still_fails script =
  let rec shrink script =
    let arr = Array.of_list script in
    let rec try_drop i =
      if i >= Array.length arr then script
      else
        let candidate =
          Array.to_list arr |> List.filteri (fun j _ -> j <> i)
        in
        if still_fails candidate then shrink candidate else try_drop (i + 1)
    in
    try_drop 0
  in
  shrink script

let fuzz ?exec_mode ?exec_threads ?(protocols = [ Config.MultiP; Config.MultiZ ]) ?(n = 4)
    ?(duration = Engine.of_seconds 2.0) ?(canary = false) ?(journal = false)
    ~seed ~runs () =
  let passes = ref 0 in
  let failures = ref [] in
  List.iter
    (fun protocol ->
      for run = 0 to runs - 1 do
        let scenario_seed = scenario_seed ~master:seed ~run in
        let outcome =
          run_one ~canary ?exec_mode ?exec_threads ~journal ~protocol ~n
            ~duration ~scenario_seed ()
        in
        if Runner.passed outcome then incr passes
        else begin
          let cfg =
            config_for ?exec_mode ?exec_threads ~journal protocol ~n ~duration
              ~seed:scenario_seed
          in
          let still_fails candidate =
            not
              (Runner.passed
                 (Runner.run ~canary ~nemesis_seed:scenario_seed cfg candidate))
          in
          let minimized = minimize ~still_fails outcome.Runner.script in
          failures :=
            { run_index = run; protocol; scenario_seed; outcome; minimized }
            :: !failures
        end
      done)
    protocols;
  {
    master_seed = seed;
    runs;
    protocols;
    passes = !passes;
    failures = List.rev !failures;
  }

let pp_summary fmt s =
  let total = s.runs * List.length s.protocols in
  Format.fprintf fmt "fuzz seed=%d runs=%d protocols=%s: %d/%d passed@."
    s.master_seed s.runs
    (String.concat "," (List.map Config.protocol_name s.protocols))
    s.passes total;
  List.iter
    (fun f ->
      Format.fprintf fmt "@.FAILURE %s run=%d scenario-seed=%d@."
        (Config.protocol_name f.protocol)
        f.run_index f.scenario_seed;
      List.iter
        (fun (at, v) ->
          Format.fprintf fmt "  at %dms %s@." (at / 1_000_000)
            (Invariant.to_string v))
        f.outcome.Runner.violations;
      Format.fprintf fmt "minimised script (%d of %d events):@.%s"
        (List.length f.minimized)
        (List.length f.outcome.Runner.script)
        (Script.to_string f.minimized);
      Format.fprintf fmt
        "repro: rcc_chaos --protocol %s --scenario-seed %d@."
        (Config.protocol_name f.protocol)
        f.scenario_seed)
    s.failures
