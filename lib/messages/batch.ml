type key_sets = { rset : int array; wset : int array }

type t = {
  id : int;
  client : Rcc_common.Ids.client_id;
  txns : Rcc_workload.Txn.t array;
  digest : string;
  signature : Rcc_crypto.Signature.signature;
  wire : int;
  mutable keys : key_sets option;
}

let encoded_size = Rcc_workload.Txn.encoded_size

(* Encode all transactions into one flat buffer and hash it in a single
   pass — byte-identical to digesting the concatenation of the per-txn
   encodings, without the per-txn strings and list cells. *)
let compute_digest txns =
  let n = Array.length txns in
  let buf = Bytes.create (n * encoded_size) in
  for i = 0 to n - 1 do
    Rcc_workload.Txn.encode_into buf (i * encoded_size) txns.(i)
  done;
  Rcc_crypto.Sha256.digest (Bytes.unsafe_to_string buf)

(* One-entry memo keyed by PHYSICAL array identity. The simulator passes
   messages by reference, so the primary verifying a client batch hashes
   the very array the client just hashed in [create] — the second pass is
   free. Physical keying makes the memo transparent: any other array
   (including a structurally equal copy, e.g. a forged batch in tests)
   misses and is recomputed. Empty arrays are excluded because OCaml
   shares [[||]] as one atom, which would alias all of them. *)
let memo_txns : Rcc_workload.Txn.t array ref = ref [||]
let memo_digest = ref ""

let digest_of_txns txns =
  if Array.length txns > 0 && txns == !memo_txns then !memo_digest
  else begin
    let d = compute_digest txns in
    memo_txns := txns;
    memo_digest := d;
    d
  end

(* A snapshot install swaps whole object graphs; dropping the memo costs
   one recompute and removes any chance of the retired graph's array
   being resurrected at the same address and hitting a stale entry. *)
let reset_memo () =
  memo_txns := [||];
  memo_digest := ""

let wire_size ~ntxns = ntxns * Rcc_workload.Txn.wire_size

(* --- read/write key sets ------------------------------------------------ *)

let empty_keys = { rset = [||]; wset = [||] }

(* Sort [a.(0..n-1)] ascending and drop duplicates in place; returns the
   deduplicated prefix. *)
let sorted_dedup a n =
  if n = 0 then [||]
  else begin
    let a = Array.sub a 0 n in
    Array.sort Int.compare a;
    let w = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!w - 1) then begin
        a.(!w) <- a.(i);
        incr w
      end
    done;
    if !w = n then a else Array.sub a 0 !w
  end

let compute_key_sets txns =
  let n = Array.length txns in
  if n = 0 then empty_keys
  else begin
    let r = Array.make n 0 and w = Array.make n 0 in
    let nr = ref 0 and nw = ref 0 in
    Array.iter
      (fun (txn : Rcc_workload.Txn.t) ->
        match txn.Rcc_workload.Txn.op with
        | Rcc_workload.Txn.Read ->
            r.(!nr) <- txn.Rcc_workload.Txn.key;
            incr nr
        | Rcc_workload.Txn.Write _ ->
            w.(!nw) <- txn.Rcc_workload.Txn.key;
            incr nw)
      txns;
    { rset = sorted_dedup r !nr; wset = sorted_dedup w !nw }
  end

(* Computed on first use and cached in the record (like [wire], but lazy:
   serial execution never needs key sets, so fault-free serial runs pay
   nothing). The cache is per-record, so unlike the digest memo it cannot
   alias across batches. *)
let key_sets t =
  match t.keys with
  | Some k -> k
  | None ->
      let k = compute_key_sets t.txns in
      t.keys <- Some k;
      k

let create ~id ~client ~txns ~secret =
  let digest = digest_of_txns txns in
  {
    id;
    client;
    txns;
    digest;
    signature = Rcc_crypto.Signature.sign secret digest;
    wire = wire_size ~ntxns:(Array.length txns);
    keys = None;
  }

let null_client = -1

let null ~round =
  {
    id = -round - 1;
    client = null_client;
    txns = [||];
    digest = Rcc_crypto.Sha256.digest ("rcc-null" ^ string_of_int round);
    signature = String.make Rcc_crypto.Signature.signature_size '\x00';
    wire = 0;
    keys = Some empty_keys;
  }

let is_null t = t.client = null_client

let verify t ~public =
  String.equal t.digest (digest_of_txns t.txns)
  && Rcc_crypto.Signature.verify public t.digest t.signature

let size t = t.wire
