(** Wire messages for every protocol in the system.

    One shared vocabulary keeps the network, replica pipeline, and all four
    protocol families (PBFT, Zyzzyva, HotStuff, RCC unification) on a
    single bus. Sizes follow the paper's §7.2 measurements: with a batch of
    100 transactions a PRE-PREPARE is 5400 bytes, a RESPONSE 1748 bytes,
    and every other message 250 bytes. *)

open Rcc_common.Ids

(** Zyzzyva commit certificate: the client's proof that [2f+1] replicas
    returned matching speculative responses. *)
type commit_cert = {
  cc_instance : instance_id;
  cc_seq : seqno;
  cc_client : client_id;  (** who holds the certificate: the ack target *)
  cc_digest : string;
  cc_replicas : int list;
}

(** One instance's round result inside an RCC recovery contract: the batch
    plus the set of replicas whose accept proofs back it. *)
type contract_entry = {
  ce_instance : instance_id;
  ce_round : round;
  ce_batch : Batch.t;
  ce_cert_replicas : int list;
}

(** One replica's authenticated accusation inside a {!View_sync}
    certificate: [bv_sig] signs the blame digest over (instance, the view
    being left, its primary under the deterministic rotation, [bv_round])
    with [bv_accuser]'s replica key. f+1 distinct verifying votes prove a
    blame quorum really deposed that primary. *)
type blame_vote = {
  bv_accuser : replica_id;
  bv_round : round;
  bv_sig : string;
}

type t =
  | Client_request of { instance : instance_id; batch : Batch.t }
  (* PBFT (also the replication stage of MultiP) *)
  | Pre_prepare of { instance : instance_id; view : view; seq : seqno; batch : Batch.t }
  | Prepare of { instance : instance_id; view : view; seq : seqno; digest : string }
  | Commit of { instance : instance_id; view : view; seq : seqno; digest : string }
  | Checkpoint of { instance : instance_id; seq : seqno; state_digest : string }
  | View_change of {
      instance : instance_id;
      new_view : view;
      blamed : replica_id;
      round : round;  (** round in which the failure was detected *)
      last_exec : seqno;
      signature : string;
          (** accuser's signature over the blame digest for
              (instance, new_view - 1, blamed, round); lets the blame be
              re-shipped later as a {!blame_vote} *)
    }
  | New_view of {
      instance : instance_id;
      view : view;
      reproposals : (seqno * Batch.t) list;
    }
  (* Zyzzyva (also the replication stage of MultiZ) *)
  | Order_request of {
      instance : instance_id;
      view : view;
      seq : seqno;
      batch : Batch.t;
      history : string;  (** chained digest of the ordering history *)
    }
  | Commit_cert of commit_cert  (* client -> replicas *)
  | Local_commit of { instance : instance_id; seq : seqno; client : client_id }
  (* HotStuff *)
  | Hs_proposal of {
      view : view;
      phase : int;  (** 0 prepare, 1 pre-commit, 2 commit, 3 decide *)
      seq : seqno;
      batch : Batch.t option;  (** carried in phase 0 only *)
      digest : string;
    }
  | Hs_vote of { view : view; phase : int; seq : seqno; digest : string }
  (* Replica -> client *)
  | Response of {
      client : client_id;
      batch_id : int;
      round : round;
      result_digest : string;
      txn_count : int;
      speculative : bool;  (** true for Zyzzyva spec-responses *)
      history : string;  (** Zyzzyva history digest; "" elsewhere *)
    }
  (* RCC unification *)
  | Contract of { round : round; entries : contract_entry list }
  | Contract_request of { round : round; instance : instance_id }
  | Instance_change of { client : client_id; instance : instance_id }
  | View_sync of {
      instance : instance_id;
      view : view;
      primary : replica_id;
      kmal : replica_id list;
      cert : blame_vote list;
          (** the f+1 blame-quorum evidence behind the latest replacement
              (step [view - 1 -> view]); receivers under the deterministic
              rotation adopt only on a verifying certificate, so a
              byzantine sender cannot forge view adoption *)
    }
      (** Answer to a blame that names an already-deposed primary: the
          sender's current view for the instance, so replicas that missed
          a replacement's blame quorum (partitioned or crashed at the
          time) converge on the coordinator state (§3.3 state exchange
          extended to primary metadata). *)
  (* Checkpoint-backed state transfer (§3.3's checkpoints used for
     recovery: a lagging replica installs a whole snapshot instead of
     replaying the gap round by round). *)
  | Snapshot_request of {
      sr_seq : round;
          (** offer probe ([fetch = false]): the requester's execution
              frontier; fetch ([fetch = true]): the snapshot boundary the
              requester chose from the f+1-matching offers *)
      fetch : bool;
    }
  | Snapshot_reply of {
      sp_seq : round;  (** snapshot boundary: state after rounds [< sp_seq] *)
      sp_head : string;  (** ledger head hash at the boundary *)
      sp_kv : string;
          (** digest of the canonical key-value section; [""] when the
              sender does not materialize state and so cannot attest it *)
      sp_attesters : replica_id list;
          (** replicas whose CHECKPOINT votes the sender holds for a
              stable checkpoint at or beyond the boundary (supporting
              evidence from its [Checkpoint_store]) *)
      sp_payload : string option;
          (** [None] for an offer; [Some blob] answers a fetch with the
              full serialized snapshot *)
    }

val header_size : int
(** 250 bytes — the paper's size for batch-free protocol messages. *)

val size : t -> int
(** Wire size in bytes under the §7.2 model. *)

val contract_entries_size : contract_entry list -> int
(** Size of a CONTRACT carrying these entries — what {!size} returns for
    [Contract], exposed so a contract can be sized without allocating a
    [t] around its entry list. *)

val kind : t -> string
(** Constructor name, for routing statistics and traces. *)

val instance_of : t -> instance_id option
(** The RCC instance a message belongs to, when it has one (HotStuff and
    contract messages do not). *)

val pp : Format.formatter -> t -> unit
