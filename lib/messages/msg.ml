open Rcc_common.Ids

type commit_cert = {
  cc_instance : instance_id;
  cc_seq : seqno;
  cc_client : client_id;  (* who holds the certificate: the ack target *)
  cc_digest : string;
  cc_replicas : int list;
}

type contract_entry = {
  ce_instance : instance_id;
  ce_round : round;
  ce_batch : Batch.t;
  ce_cert_replicas : int list;
}

type blame_vote = {
  bv_accuser : replica_id;
  bv_round : round;
  bv_sig : string;
}

type t =
  | Client_request of { instance : instance_id; batch : Batch.t }
  | Pre_prepare of { instance : instance_id; view : view; seq : seqno; batch : Batch.t }
  | Prepare of { instance : instance_id; view : view; seq : seqno; digest : string }
  | Commit of { instance : instance_id; view : view; seq : seqno; digest : string }
  | Checkpoint of { instance : instance_id; seq : seqno; state_digest : string }
  | View_change of {
      instance : instance_id;
      new_view : view;
      blamed : replica_id;
      round : round;
      last_exec : seqno;
      signature : string;
    }
  | New_view of {
      instance : instance_id;
      view : view;
      reproposals : (seqno * Batch.t) list;
    }
  | Order_request of {
      instance : instance_id;
      view : view;
      seq : seqno;
      batch : Batch.t;
      history : string;
    }
  | Commit_cert of commit_cert
  | Local_commit of { instance : instance_id; seq : seqno; client : client_id }
  | Hs_proposal of {
      view : view;
      phase : int;
      seq : seqno;
      batch : Batch.t option;
      digest : string;
    }
  | Hs_vote of { view : view; phase : int; seq : seqno; digest : string }
  | Response of {
      client : client_id;
      batch_id : int;
      round : round;
      result_digest : string;
      txn_count : int;
      speculative : bool;
      history : string;
    }
  | Contract of { round : round; entries : contract_entry list }
  | Contract_request of { round : round; instance : instance_id }
  | Instance_change of { client : client_id; instance : instance_id }
  | View_sync of {
      instance : instance_id;
      view : view;
      primary : replica_id;
      kmal : replica_id list;
      cert : blame_vote list;
    }
  | Snapshot_request of { sr_seq : round; fetch : bool }
  | Snapshot_reply of {
      sp_seq : round;
      sp_head : string;
      sp_kv : string;
      sp_attesters : replica_id list;
      sp_payload : string option;
    }

let header_size = 250

(* Batch-carrying messages add 150 B of framing over the plain header so
   that a 100-txn PRE-PREPARE is 250 + 150 + 100*50 = 5400 B. A RESPONSE is
   248 + 15 B per transaction result = 1748 B at batch size 100. *)
let batch_frame = 150
let response_base = 248
let response_per_txn = 15

(* Per entry: the batch plus the accept proof — a PREPARE and a COMMIT
   message per certifying replica (footnote 3). Shared with
   [Contract.size] so contracts can be sized without building a [t]. *)
let contract_entries_size entries =
  header_size
  + List.fold_left
      (fun acc e ->
        acc + batch_frame + Batch.size e.ce_batch
        + (2 * header_size * List.length e.ce_cert_replicas))
      0 entries

let size = function
  | Client_request { batch; _ } -> header_size + batch_frame + Batch.size batch
  | Pre_prepare { batch; _ } -> header_size + batch_frame + Batch.size batch
  | Order_request { batch; _ } -> header_size + batch_frame + Batch.size batch
  | Hs_proposal { batch; _ } -> (
      match batch with
      | Some b -> header_size + batch_frame + Batch.size b
      | None -> header_size)
  | Response { txn_count; _ } -> response_base + (response_per_txn * txn_count)
  | New_view { reproposals; _ } ->
      header_size
      + List.fold_left
          (fun acc (_, b) -> acc + batch_frame + Batch.size b)
          0 reproposals
  | Commit_cert { cc_replicas; _ } ->
      header_size + (48 * List.length cc_replicas)
  | Contract { entries; _ } -> contract_entries_size entries
  (* Per kmal entry a replica id; per certificate vote an accuser id, a
     round, and a 64-byte signature. *)
  | View_sync { kmal; cert; _ } ->
      header_size + (8 * List.length kmal) + (80 * List.length cert)
  (* Header plus two 32-byte digests and the attester list; a full reply
     additionally carries the snapshot blob verbatim. *)
  | Snapshot_reply { sp_attesters; sp_payload; _ } ->
      header_size + 64
      + (8 * List.length sp_attesters)
      + (match sp_payload with Some blob -> String.length blob | None -> 0)
  | Prepare _ | Commit _ | Checkpoint _ | View_change _ | Local_commit _
  | Hs_vote _ | Contract_request _ | Instance_change _ | Snapshot_request _ ->
      header_size

let kind = function
  | Client_request _ -> "client_request"
  | Pre_prepare _ -> "pre_prepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Checkpoint _ -> "checkpoint"
  | View_change _ -> "view_change"
  | New_view _ -> "new_view"
  | Order_request _ -> "order_request"
  | Commit_cert _ -> "commit_cert"
  | Local_commit _ -> "local_commit"
  | Hs_proposal _ -> "hs_proposal"
  | Hs_vote _ -> "hs_vote"
  | Response _ -> "response"
  | Contract _ -> "contract"
  | Contract_request _ -> "contract_request"
  | Instance_change _ -> "instance_change"
  | View_sync _ -> "view_sync"
  | Snapshot_request _ -> "snapshot_request"
  | Snapshot_reply _ -> "snapshot_reply"

let instance_of = function
  | Client_request { instance; _ }
  | Pre_prepare { instance; _ }
  | Prepare { instance; _ }
  | Commit { instance; _ }
  | Checkpoint { instance; _ }
  | View_change { instance; _ }
  | New_view { instance; _ }
  | Order_request { instance; _ }
  | Local_commit { instance; _ }
  | Contract_request { instance; _ }
  | Instance_change { instance; _ }
  | View_sync { instance; _ } ->
      Some instance
  | Commit_cert { cc_instance; _ } -> Some cc_instance
  | Hs_proposal _ | Hs_vote _ | Response _ | Contract _ | Snapshot_request _
  | Snapshot_reply _ ->
      None

let pp fmt t =
  match t with
  | Pre_prepare { instance; view; seq; batch } ->
      Format.fprintf fmt "pre_prepare[%a %a s%d b%d]" pp_instance instance
        pp_view view seq batch.Batch.id
  | Prepare { instance; view; seq; _ } ->
      Format.fprintf fmt "prepare[%a %a s%d]" pp_instance instance pp_view view seq
  | Commit { instance; view; seq; _ } ->
      Format.fprintf fmt "commit[%a %a s%d]" pp_instance instance pp_view view seq
  | View_change { instance; new_view; blamed; _ } ->
      Format.fprintf fmt "view_change[%a -> %a blames %a]" pp_instance instance
        pp_view new_view pp_replica blamed
  | Response { client; batch_id; _ } ->
      Format.fprintf fmt "response[%a b%d]" pp_client client batch_id
  | other -> Format.pp_print_string fmt (kind other)
