module Bytes_util = Rcc_common.Bytes_util

(* --- writer ------------------------------------------------------------- *)

let w_int buf v = Buffer.add_string buf (Bytes_util.u64_string (Int64.of_int v))

let w_string buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let w_bool buf b = Buffer.add_char buf (if b then '\x01' else '\x00')

let w_list buf f l =
  w_int buf (List.length l);
  List.iter (f buf) l

let w_batch buf (b : Batch.t) =
  w_int buf b.Batch.id;
  w_int buf b.Batch.client;
  w_int buf (Array.length b.Batch.txns);
  Array.iter (fun txn -> Buffer.add_string buf (Rcc_workload.Txn.encode txn)) b.Batch.txns;
  w_string buf b.Batch.digest;
  w_string buf b.Batch.signature

let w_vote buf (v : Msg.blame_vote) =
  w_int buf v.Msg.bv_accuser;
  w_int buf v.Msg.bv_round;
  w_string buf v.Msg.bv_sig

let w_entry buf (e : Msg.contract_entry) =
  w_int buf e.Msg.ce_instance;
  w_int buf e.Msg.ce_round;
  w_batch buf e.Msg.ce_batch;
  w_list buf w_int e.Msg.ce_cert_replicas

(* --- reader -------------------------------------------------------------- *)

exception Malformed of string

type reader = { buf : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.buf then raise (Malformed "truncated input")

let r_int r =
  need r 8;
  let v = Int64.to_int (Bytes_util.get_u64be r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let r_string r =
  let len = r_int r in
  if len < 0 then raise (Malformed "negative length");
  need r len;
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let r_bool r =
  need r 1;
  let c = r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\x00' -> false
  | '\x01' -> true
  | _ -> raise (Malformed "bad boolean")

let r_list r f =
  let len = r_int r in
  if len < 0 || len > 1_000_000 then raise (Malformed "bad list length");
  List.init len (fun _ -> f r)

let r_batch r =
  let id = r_int r in
  let client = r_int r in
  let ntxns = r_int r in
  if ntxns < 0 || ntxns > 1_000_000 then raise (Malformed "bad txn count");
  let txns =
    Array.init ntxns (fun _ ->
        need r Rcc_workload.Txn.encoded_size;
        match Rcc_workload.Txn.decode r.buf r.pos with
        | Ok txn ->
            r.pos <- r.pos + Rcc_workload.Txn.encoded_size;
            txn
        | Error e -> raise (Malformed e))
  in
  let digest = r_string r in
  let signature = r_string r in
  { Batch.id; client; txns; digest; signature;
    wire = Batch.wire_size ~ntxns; keys = None }

let r_vote r =
  let bv_accuser = r_int r in
  let bv_round = r_int r in
  let bv_sig = r_string r in
  { Msg.bv_accuser; bv_round; bv_sig }

let r_entry r =
  let ce_instance = r_int r in
  let ce_round = r_int r in
  let ce_batch = r_batch r in
  let ce_cert_replicas = r_list r r_int in
  { Msg.ce_instance; ce_round; ce_batch; ce_cert_replicas }

(* --- top level -------------------------------------------------------------- *)

let encode msg =
  let buf = Buffer.create 256 in
  (match msg with
  | Msg.Client_request { instance; batch } ->
      Buffer.add_char buf '\x01';
      w_int buf instance;
      w_batch buf batch
  | Msg.Pre_prepare { instance; view; seq; batch } ->
      Buffer.add_char buf '\x02';
      w_int buf instance;
      w_int buf view;
      w_int buf seq;
      w_batch buf batch
  | Msg.Prepare { instance; view; seq; digest } ->
      Buffer.add_char buf '\x03';
      w_int buf instance;
      w_int buf view;
      w_int buf seq;
      w_string buf digest
  | Msg.Commit { instance; view; seq; digest } ->
      Buffer.add_char buf '\x04';
      w_int buf instance;
      w_int buf view;
      w_int buf seq;
      w_string buf digest
  | Msg.Checkpoint { instance; seq; state_digest } ->
      Buffer.add_char buf '\x05';
      w_int buf instance;
      w_int buf seq;
      w_string buf state_digest
  | Msg.View_change { instance; new_view; blamed; round; last_exec; signature } ->
      Buffer.add_char buf '\x06';
      w_int buf instance;
      w_int buf new_view;
      w_int buf blamed;
      w_int buf round;
      w_int buf last_exec;
      w_string buf signature
  | Msg.New_view { instance; view; reproposals } ->
      Buffer.add_char buf '\x07';
      w_int buf instance;
      w_int buf view;
      w_list buf
        (fun buf (seq, batch) ->
          w_int buf seq;
          w_batch buf batch)
        reproposals
  | Msg.Order_request { instance; view; seq; batch; history } ->
      Buffer.add_char buf '\x08';
      w_int buf instance;
      w_int buf view;
      w_int buf seq;
      w_batch buf batch;
      w_string buf history
  | Msg.Commit_cert { cc_instance; cc_seq; cc_client; cc_digest; cc_replicas } ->
      Buffer.add_char buf '\x09';
      w_int buf cc_instance;
      w_int buf cc_seq;
      w_int buf cc_client;
      w_string buf cc_digest;
      w_list buf w_int cc_replicas
  | Msg.Local_commit { instance; seq; client } ->
      Buffer.add_char buf '\x0a';
      w_int buf instance;
      w_int buf seq;
      w_int buf client
  | Msg.Hs_proposal { view; phase; seq; batch; digest } ->
      Buffer.add_char buf '\x0b';
      w_int buf view;
      w_int buf phase;
      w_int buf seq;
      (match batch with
      | Some b ->
          w_bool buf true;
          w_batch buf b
      | None -> w_bool buf false);
      w_string buf digest
  | Msg.Hs_vote { view; phase; seq; digest } ->
      Buffer.add_char buf '\x0c';
      w_int buf view;
      w_int buf phase;
      w_int buf seq;
      w_string buf digest
  | Msg.Response { client; batch_id; round; result_digest; txn_count; speculative; history } ->
      Buffer.add_char buf '\x0d';
      w_int buf client;
      w_int buf batch_id;
      w_int buf round;
      w_string buf result_digest;
      w_int buf txn_count;
      w_bool buf speculative;
      w_string buf history
  | Msg.Contract { round; entries } ->
      Buffer.add_char buf '\x0e';
      w_int buf round;
      w_list buf w_entry entries
  | Msg.Contract_request { round; instance } ->
      Buffer.add_char buf '\x0f';
      w_int buf round;
      w_int buf instance
  | Msg.Instance_change { client; instance } ->
      Buffer.add_char buf '\x10';
      w_int buf client;
      w_int buf instance
  | Msg.View_sync { instance; view; primary; kmal; cert } ->
      Buffer.add_char buf '\x11';
      w_int buf instance;
      w_int buf view;
      w_int buf primary;
      w_list buf w_int kmal;
      w_list buf w_vote cert
  | Msg.Snapshot_request { sr_seq; fetch } ->
      Buffer.add_char buf '\x12';
      w_int buf sr_seq;
      w_bool buf fetch
  | Msg.Snapshot_reply { sp_seq; sp_head; sp_kv; sp_attesters; sp_payload } ->
      Buffer.add_char buf '\x13';
      w_int buf sp_seq;
      w_string buf sp_head;
      w_string buf sp_kv;
      w_list buf w_int sp_attesters;
      (match sp_payload with
      | Some blob ->
          w_bool buf true;
          w_string buf blob
      | None -> w_bool buf false));
  Buffer.contents buf

let decode_exn s =
  if String.length s = 0 then raise (Malformed "empty input");
  let r = { buf = s; pos = 1 } in
  let msg =
    match s.[0] with
    | '\x01' ->
        let instance = r_int r in
        Msg.Client_request { instance; batch = r_batch r }
    | '\x02' ->
        let instance = r_int r in
        let view = r_int r in
        let seq = r_int r in
        Msg.Pre_prepare { instance; view; seq; batch = r_batch r }
    | '\x03' ->
        let instance = r_int r in
        let view = r_int r in
        let seq = r_int r in
        Msg.Prepare { instance; view; seq; digest = r_string r }
    | '\x04' ->
        let instance = r_int r in
        let view = r_int r in
        let seq = r_int r in
        Msg.Commit { instance; view; seq; digest = r_string r }
    | '\x05' ->
        let instance = r_int r in
        let seq = r_int r in
        Msg.Checkpoint { instance; seq; state_digest = r_string r }
    | '\x06' ->
        let instance = r_int r in
        let new_view = r_int r in
        let blamed = r_int r in
        let round = r_int r in
        let last_exec = r_int r in
        Msg.View_change { instance; new_view; blamed; round; last_exec; signature = r_string r }
    | '\x07' ->
        let instance = r_int r in
        let view = r_int r in
        let reproposals =
          r_list r (fun r ->
              let seq = r_int r in
              (seq, r_batch r))
        in
        Msg.New_view { instance; view; reproposals }
    | '\x08' ->
        let instance = r_int r in
        let view = r_int r in
        let seq = r_int r in
        let batch = r_batch r in
        Msg.Order_request { instance; view; seq; batch; history = r_string r }
    | '\x09' ->
        let cc_instance = r_int r in
        let cc_seq = r_int r in
        let cc_client = r_int r in
        let cc_digest = r_string r in
        Msg.Commit_cert
          { cc_instance; cc_seq; cc_client; cc_digest; cc_replicas = r_list r r_int }
    | '\x0a' ->
        let instance = r_int r in
        let seq = r_int r in
        Msg.Local_commit { instance; seq; client = r_int r }
    | '\x0b' ->
        let view = r_int r in
        let phase = r_int r in
        let seq = r_int r in
        let batch = if r_bool r then Some (r_batch r) else None in
        Msg.Hs_proposal { view; phase; seq; batch; digest = r_string r }
    | '\x0c' ->
        let view = r_int r in
        let phase = r_int r in
        let seq = r_int r in
        Msg.Hs_vote { view; phase; seq; digest = r_string r }
    | '\x0d' ->
        let client = r_int r in
        let batch_id = r_int r in
        let round = r_int r in
        let result_digest = r_string r in
        let txn_count = r_int r in
        let speculative = r_bool r in
        Msg.Response
          { client; batch_id; round; result_digest; txn_count; speculative;
            history = r_string r }
    | '\x0e' ->
        let round = r_int r in
        Msg.Contract { round; entries = r_list r r_entry }
    | '\x0f' ->
        let round = r_int r in
        Msg.Contract_request { round; instance = r_int r }
    | '\x10' ->
        let client = r_int r in
        Msg.Instance_change { client; instance = r_int r }
    | '\x11' ->
        let instance = r_int r in
        let view = r_int r in
        let primary = r_int r in
        let kmal = r_list r r_int in
        Msg.View_sync { instance; view; primary; kmal; cert = r_list r r_vote }
    | '\x12' ->
        let sr_seq = r_int r in
        Msg.Snapshot_request { sr_seq; fetch = r_bool r }
    | '\x13' ->
        let sp_seq = r_int r in
        let sp_head = r_string r in
        let sp_kv = r_string r in
        let sp_attesters = r_list r r_int in
        let sp_payload = if r_bool r then Some (r_string r) else None in
        Msg.Snapshot_reply { sp_seq; sp_head; sp_kv; sp_attesters; sp_payload }
    | c -> raise (Malformed (Printf.sprintf "unknown tag 0x%02x" (Char.code c)))
  in
  if r.pos <> String.length s then raise (Malformed "trailing bytes");
  msg

let decode s =
  match decode_exn s with
  | msg -> Ok msg
  | exception Malformed e -> Error e

let encoded_size msg = String.length (encode msg)
