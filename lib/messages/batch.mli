(** Client request batches.

    A batch is one client's request: an ordered array of transactions, a
    SHA-256 digest over their encoding, and the client's signature over the
    digest (§6 "Batching"). Batches are the unit of consensus. *)

type key_sets = {
  rset : int array;  (** keys read, ascending, deduplicated *)
  wset : int array;  (** keys written, ascending, deduplicated *)
}
(** A batch's YCSB key footprint, the input to conflict analysis
    (two batches commute iff neither writes a key the other touches). *)

type t = {
  id : int;  (** globally unique request identifier *)
  client : Rcc_common.Ids.client_id;
  txns : Rcc_workload.Txn.t array;
  digest : string;  (** SHA-256 over the encoded transactions *)
  signature : Rcc_crypto.Signature.signature;  (** client's, over the digest *)
  wire : int;
      (** cached {!wire_size} of [txns] — [Msg.size] queries it on every
          send, so it is computed once at construction *)
  mutable keys : key_sets option;
      (** cached {!key_sets}, computed on first use; serial execution
          never touches it *)
}

val create :
  id:int ->
  client:Rcc_common.Ids.client_id ->
  txns:Rcc_workload.Txn.t array ->
  secret:Rcc_crypto.Signature.secret_key ->
  t

val null : round:Rcc_common.Ids.round -> t
(** The no-op batch a new primary proposes to fill a hole left by its
    predecessor (client is {!null_client}, no transactions). *)

val null_client : Rcc_common.Ids.client_id
(** Sentinel (-1): responses are not sent for null batches. *)

val is_null : t -> bool

val digest_of_txns : Rcc_workload.Txn.t array -> string

val key_sets : t -> key_sets
(** The batch's read/write key sets, sorted ascending and deduplicated;
    computed on first use and cached in the record. *)

val reset_memo : unit -> unit
(** Drop the one-entry digest memo. Called after a snapshot install
    retires whole object graphs, so a txn array allocated at a recycled
    address can never alias a stale memo entry. *)

val verify : t -> public:Rcc_crypto.Signature.public_key -> bool
(** Recompute the digest and check the client signature. *)

val size : t -> int
(** The cached [wire] field. *)

val wire_size : ntxns:int -> int
(** Bytes a batch occupies inside a message; 100 transactions give the
    paper's 5000-byte batch payload. *)
