(** An append-only blockchain of {!Block}s with hash-chain validation. *)

type t

val create : primaries:Rcc_common.Ids.replica_id list -> t
(** Starts from the genesis hash derived from the initial primaries. *)

val append : t -> Block.t -> (unit, string) result
(** Fails if the block's round is not the next round or its [prev_hash]
    does not match the current head. *)

val append_exn : t -> Block.t -> unit

val length : t -> int
(** Number of non-genesis blocks. *)

val head_hash : t -> string

val next_round : t -> Rcc_common.Ids.round

val get : t -> Rcc_common.Ids.round -> Block.t option

val validate : t -> (unit, string) result
(** Re-checks the whole hash chain. *)

val iter : t -> (Block.t -> unit) -> unit

val prefix : t -> upto:int -> Block.t array
(** The first [min upto (length t)] blocks, for serving a snapshot of the
    chain up to a checkpoint boundary. *)

val truncate_to : t -> round:Rcc_common.Ids.round -> unit
(** Drop every block at or above [round] (speculative rollback on a view
    change) and invalidate the cached head hash, so the next append
    chains from block [round - 1] (or genesis). No-op unless
    [0 <= round < length t]. *)

val install : t -> Block.t array -> unit
(** Replace the whole chain (state transfer install) and invalidate the
    cached head hash. The blocks must already chain from this ledger's
    genesis; callers verify with {!validate} / [Snapshot.chain_head]
    before installing. *)
