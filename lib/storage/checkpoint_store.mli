(** Stable-checkpoint log (PBFT's checkpoint protocol, §3.3).

    Records each checkpoint that became stable — the round it covers, the
    state digest agreed on, and the replicas whose CHECKPOINT messages
    attested it — so a recovering replica can prove how far the service
    had advanced. Bounded history; the newest [capacity] proofs are kept.

    The vote counting that decides {e when} a checkpoint becomes stable
    lives above this store, in [Rcc_proto_core.Checkpointing]; this
    module only persists the resulting proofs. *)

type proof = {
  seq : Rcc_common.Ids.round;
  state_digest : string;
  attesters : Rcc_common.Ids.replica_id list;
}

type t

val create : ?capacity:int -> unit -> t

val record : t -> proof -> unit
(** Record a newly stable checkpoint. Proofs must arrive with increasing
    [seq]; stale ones are ignored. *)

val stable : t -> proof option
(** The most recent stable checkpoint. *)

val stable_seq : t -> Rcc_common.Ids.round
(** Its round, or -1 when none. *)

val find : t -> seq:Rcc_common.Ids.round -> proof option

val recent : t -> int -> proof list
(** The latest [k] proofs, newest first. *)

val count : t -> int
(** Checkpoints recorded over the store's lifetime. *)
