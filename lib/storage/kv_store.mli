(** In-memory key-value store (§6 "Storage and Ledger Management").

    Holds the YCSB table: integer keys to fixed-size records. Tracks a
    monotone version per key and a state digest accumulator so replicas can
    compare states cheaply in tests. *)

type t

val create : unit -> t

val init_records : t -> count:int -> unit
(** Load [count] records with deterministic initial contents, as the paper
    initializes each replica with an identical copy of the YCSB table. *)

val read : t -> int -> int option
(** Current value, if the key exists. *)

val write : t -> key:int -> value:int -> unit

val version : t -> int -> int
(** Number of writes ever applied to the key (0 if never written). *)

val size : t -> int

val reads_performed : t -> int
val writes_performed : t -> int

val state_digest : t -> string
(** Order-insensitive digest of the current key/value/version state; equal
    states yield equal digests. Intended for test assertions, not the hot
    path. *)

val iter : t -> (int -> int -> int -> unit) -> unit
(** [iter t f] calls [f key value version] over every record in canonical
    order (direct keys ascending, then spill keys ascending) — equal
    states enumerate identically regardless of array/spill placement. *)

val entries : t -> (int * int * int) array
(** The whole table as [(key, value, version)] triples in canonical
    order; the snapshot wire representation. *)

val copy : t -> t
(** Deep copy of the current state (access counters reset). Snapshot
    boundary latches copy the store so a later fetch serializes the state
    as of the boundary, not the live one. *)

val install : t -> (int * int * int) array -> unit
(** Replace the entire table with the given triples (state transfer
    install). Access counters are left untouched. *)
