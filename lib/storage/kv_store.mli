(** In-memory key-value store (§6 "Storage and Ledger Management").

    Holds the YCSB table: integer keys to fixed-size records. Tracks a
    monotone version per key and a state digest accumulator so replicas can
    compare states cheaply in tests. *)

type t

val create : unit -> t

val init_records : t -> count:int -> unit
(** Load [count] records with deterministic initial contents, as the paper
    initializes each replica with an identical copy of the YCSB table. *)

val read : t -> int -> int option
(** Current value, if the key exists. *)

val write : t -> key:int -> value:int -> unit

val version : t -> int -> int
(** Number of writes ever applied to the key (0 if never written). *)

val size : t -> int

val reads_performed : t -> int
val writes_performed : t -> int

val state_digest : t -> string
(** Order-insensitive digest of the current key/value/version state; equal
    states yield equal digests. Intended for test assertions, not the hot
    path. *)

val iter : t -> (int -> int -> int -> unit) -> unit
(** [iter t f] calls [f key value version] over every record in canonical
    order (direct keys ascending, then spill keys ascending) — equal
    states enumerate identically regardless of array/spill placement. *)

val entries : t -> (int * int * int) array
(** The whole table as [(key, value, version)] triples in canonical
    order; the snapshot wire representation. *)

val copy : t -> t
(** Deep copy of the current state (access counters reset). Snapshot
    boundary latches copy the store so a later fetch serializes the state
    as of the boundary, not the live one. *)

val install : t -> (int * int * int) array -> unit
(** Replace the entire table with the given triples (state transfer
    install). Access counters are left untouched; the undo journal is
    cleared (its entries describe pre-install state). *)

(** {2 Speculative undo journal}

    Support for rolling back speculative rounds on a view change: while
    journaling is enabled, every write records the key's prior
    (value, version) tagged with the round set by {!journal_round}, and
    {!undo_above} restores the state as of the end of an earlier round.
    Per-key entries must be appended in execution order (the execute
    stage guarantees this: serial rounds run in order, and the parallel
    scheduler serializes same-key access inside conflict groups). *)

val enable_journal : t -> unit
(** Turn journaling on (off by default; a disabled journal costs one
    branch per write). There is no way to turn it off again — callers
    bound it with {!forget_below} as rounds become durable instead. *)

val journal_round : t -> int -> unit
(** Tag subsequent writes with this round. *)

val undo_above : t -> round:int -> unit
(** Restore every key written at rounds [>= round] to its pre-round
    state, newest write first, and drop those journal entries. *)

val forget_below : t -> round:int -> unit
(** Drop journal entries of rounds [< round] — they are attested by a
    checkpoint or commit certificate and will never be undone. *)

val journal_clear : t -> unit
(** Drop the whole journal (snapshot install supersedes all of it). *)

val journal_length : t -> int
(** Live journal entries, for tests and memory accounting. *)
