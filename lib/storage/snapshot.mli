(** Serialized replica state for checkpoint-backed state transfer.

    A snapshot at boundary [seq] is the state after executing rounds
    [0, seq): the ledger prefix (whose hash chain pins every byte of it),
    the materialized key-value table in canonical order, and the
    duplicate-reply cache. A lagging replica installs one wholesale
    instead of replaying the gap round by round — O(gap) bytes, not
    O(gap) consensus rounds.

    Verification argument: the requester learns [(seq, head, kv_digest)]
    from f+1 matching snapshot offers, so at least one correct replica
    attested them. {!verify} recomputes the chain head from the genesis
    parameters and the blob's own blocks; a forged or corrupted prefix
    cannot reach the attested head without breaking SHA-256. The KV
    section is pinned separately by {!kv_digest} because certificate
    digests and primaries are excluded from block identity, so the chain
    alone does not commit to it byte-for-byte. The reply cache is
    unattested best-effort data: it only suppresses duplicate client
    responses and cannot affect agreed state. *)

type t = {
  seq : Rcc_common.Ids.round;  (** state after rounds [< seq] *)
  blocks : Block.t array;  (** ledger prefix, rounds [0, seq) *)
  kv : (int * int * int) array option;
      (** [(key, value, version)] in {!Kv_store.entries} canonical order;
          [None] when the serving replica does not materialize state *)
  replied :
    (Rcc_common.Ids.client_id * string * Rcc_common.Ids.round * string) list;
      (** duplicate-reply cache entries
          [(client, batch digest, round, result digest)] *)
}

val kv_digest : (int * int * int) array option -> string
(** Digest over the canonical KV triples; [""] for [None]. This is the
    value boundary latches attest and {!Msg.Snapshot_reply} carries as
    [sp_kv]. *)

val chain_head : primaries:Rcc_common.Ids.replica_id list -> Block.t array ->
  (string, string) result
(** Head hash a standalone chain pins, walking it from the genesis
    derived from [primaries]; [Error] when rounds or links are broken. *)

val encode : t -> string

val decode : string -> (t, string) result

val verify : primaries:Rcc_common.Ids.replica_id list -> t ->
  (string, string) result
(** Self-consistency check before install: the chain covers exactly
    [seq] rounds and links end to end. Returns the resulting head hash
    for comparison against the attested one. *)
