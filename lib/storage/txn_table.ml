type entry = {
  round : Rcc_common.Ids.round;
  instance : Rcc_common.Ids.instance_id;
  client : Rcc_common.Ids.client_id;
  batch_digest : string;
  response_digest : string;
  txn_count : int;
}

type t = {
  by_round : (int, entry list ref) Hashtbl.t;
  mutable txns : int;
}

let create () = { by_round = Hashtbl.create 1024; txns = 0 }

let record t entry =
  t.txns <- t.txns + entry.txn_count;
  match Hashtbl.find_opt t.by_round entry.round with
  | Some l -> l := entry :: !l
  | None -> Hashtbl.replace t.by_round entry.round (ref [ entry ])

let find t ~round =
  match Hashtbl.find_opt t.by_round round with
  | None -> []
  | Some l -> List.sort (fun a b -> compare a.instance b.instance) !l

(* Speculative rollback: drop every row at or above [round], returning
   how many (rounds, txns) were dropped so the execute stage can adjust
   its counters. *)
let remove_from t ~round =
  let doomed =
    Hashtbl.fold
      (fun r _ acc -> if r >= round then r :: acc else acc)
      t.by_round []
  in
  let removed_txns = ref 0 in
  List.iter
    (fun r ->
      (match Hashtbl.find_opt t.by_round r with
      | Some l -> List.iter (fun e -> removed_txns := !removed_txns + e.txn_count) !l
      | None -> ());
      Hashtbl.remove t.by_round r)
    doomed;
  t.txns <- t.txns - !removed_txns;
  (List.length doomed, !removed_txns)

let total_txns t = t.txns
let rounds t = Hashtbl.length t.by_round
