module Bytes_util = Rcc_common.Bytes_util

let magic = "RCCS1\n"

type t = {
  seq : Rcc_common.Ids.round;
  blocks : Block.t array;
  kv : (int * int * int) array option;
  replied : (Rcc_common.Ids.client_id * string * Rcc_common.Ids.round * string) list;
}

(* --- digests ------------------------------------------------------------ *)

let kv_digest = function
  | None -> ""
  | Some entries ->
      let ctx = Rcc_crypto.Sha256.init () in
      Rcc_crypto.Sha256.update ctx "rcc-snapshot-kv";
      Array.iter
        (fun (key, value, version) ->
          Rcc_crypto.Sha256.update ctx (Bytes_util.u64_string (Int64.of_int key));
          Rcc_crypto.Sha256.update ctx (Bytes_util.u64_string (Int64.of_int value));
          Rcc_crypto.Sha256.update ctx
            (Bytes_util.u64_string (Int64.of_int version)))
        entries;
      Rcc_crypto.Sha256.finalize ctx

(* Walk the chain exactly as [Ledger.validate] does, but standalone — a
   requester must reject a forged prefix BEFORE installing it. Returns
   the head hash the chain pins (the genesis hash for an empty chain). *)
let chain_head ~primaries blocks =
  let genesis = Block.genesis_hash ~primaries in
  let n = Array.length blocks in
  let rec go i prev =
    if i = n then Ok prev
    else
      let b = blocks.(i) in
      if b.Block.round <> i then
        Error (Printf.sprintf "snapshot: bad round at %d" i)
      else if not (String.equal b.Block.prev_hash prev) then
        Error (Printf.sprintf "snapshot: hash chain broken at round %d" i)
      else go (i + 1) (Block.hash b)
  in
  go 0 genesis

(* --- encode ------------------------------------------------------------- *)

let w_int buf v = Buffer.add_string buf (Bytes_util.u64_string (Int64.of_int v))

let w_string buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let encode t =
  let buf = Buffer.create (4096 + (Array.length t.blocks * 128)) in
  Buffer.add_string buf magic;
  w_int buf t.seq;
  w_int buf (Array.length t.blocks);
  Array.iter (fun b -> Ledger_io.write_block buf b) t.blocks;
  (match t.kv with
  | Some entries ->
      Buffer.add_char buf '\x01';
      w_int buf (Array.length entries);
      Array.iter
        (fun (key, value, version) ->
          w_int buf key;
          w_int buf value;
          w_int buf version)
        entries
  | None -> Buffer.add_char buf '\x00');
  w_int buf (List.length t.replied);
  List.iter
    (fun (client, digest, round, result) ->
      w_int buf client;
      w_string buf digest;
      w_int buf round;
      w_string buf result)
    t.replied;
  Buffer.contents buf

(* --- decode ------------------------------------------------------------- *)

exception Malformed of string

type reader = { buf : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.buf then raise (Malformed "snapshot truncated")

let r_int r =
  need r 8;
  let v = Int64.to_int (Bytes_util.get_u64be r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let r_string r =
  let len = r_int r in
  if len < 0 || len > 10_000_000 then raise (Malformed "bad string length");
  need r len;
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let r_byte r =
  need r 1;
  let c = r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  c

let decode s =
  match
    (let mlen = String.length magic in
     if String.length s < mlen || not (String.equal (String.sub s 0 mlen) magic)
     then raise (Malformed "bad magic");
     let r = { buf = s; pos = mlen } in
     let seq = r_int r in
     if seq < 0 then raise (Malformed "negative seq");
     let nblocks = r_int r in
     if nblocks < 0 || nblocks > 10_000_000 then
       raise (Malformed "bad block count");
     let blocks =
       Array.init nblocks (fun _ ->
           match Ledger_io.read_block s ~pos:r.pos with
           | block, pos ->
               r.pos <- pos;
               block
           | exception Ledger_io.Malformed e -> raise (Malformed e))
     in
     let kv =
       match r_byte r with
       | '\x00' -> None
       | '\x01' ->
           let count = r_int r in
           if count < 0 || count > 100_000_000 then
             raise (Malformed "bad kv count");
           Some
             (Array.init count (fun _ ->
                  let key = r_int r in
                  let value = r_int r in
                  let version = r_int r in
                  (key, value, version)))
       | _ -> raise (Malformed "bad kv flag")
     in
     let nreplied = r_int r in
     if nreplied < 0 || nreplied > 10_000_000 then
       raise (Malformed "bad replied count");
     let replied =
       List.init nreplied (fun _ ->
           let client = r_int r in
           let digest = r_string r in
           let round = r_int r in
           let result = r_string r in
           (client, digest, round, result))
     in
     if r.pos <> String.length s then raise (Malformed "trailing bytes");
     { seq; blocks; kv; replied })
  with
  | snapshot -> Ok snapshot
  | exception Malformed e -> Error e

(* A snapshot is self-consistent when its chain really covers rounds
   [0, seq) and hashes to a single head. The caller then compares that
   head (and [kv_digest]) against the f+1-attested values. *)
let verify ~primaries t =
  if Array.length t.blocks <> t.seq then
    Error
      (Printf.sprintf "snapshot: %d blocks for seq %d" (Array.length t.blocks)
         t.seq)
  else chain_head ~primaries t.blocks
