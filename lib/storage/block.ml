type proof = {
  instance : Rcc_common.Ids.instance_id;
  batch_digest : string;
  certificate_digest : string;
}

type t = {
  round : Rcc_common.Ids.round;
  prev_hash : string;
  proofs : proof list;
  primaries : Rcc_common.Ids.replica_id list;
  clients : Rcc_common.Ids.client_id list;
}

let u64 i = Rcc_common.Bytes_util.u64_string (Int64.of_int i)

let genesis_hash ~primaries =
  Rcc_crypto.Sha256.digest_list ("rcc-genesis" :: List.map u64 primaries)

(* Certificate digests and primaries are intentionally excluded from the
   block identity: different replicas accept a round with different
   (equally valid) 2f+1 quorums, and replicas racing a primary
   replacement install the new primary set at different rounds of their
   execution stream. Only the agreed content — the ordered batches and
   the clients they serve — must hash identically everywhere. *)
let encode t =
  (* One flat buffer, byte-identical to concatenating the per-field
     strings — blocks are re-encoded at every append for the chain hash,
     so the intermediate strings of the naive concatenation added up. *)
  let len =
    List.fold_left
      (fun acc p -> acc + 8 + String.length p.batch_digest)
      (8 + String.length t.prev_hash)
      t.proofs
    + (8 * List.length t.clients)
  in
  let buf = Bytes.create len in
  Rcc_common.Bytes_util.put_u64be buf 0 (Int64.of_int t.round);
  Bytes.blit_string t.prev_hash 0 buf 8 (String.length t.prev_hash);
  let off = ref (8 + String.length t.prev_hash) in
  List.iter
    (fun p ->
      Rcc_common.Bytes_util.put_u64be buf !off (Int64.of_int p.instance);
      let n = String.length p.batch_digest in
      Bytes.blit_string p.batch_digest 0 buf (!off + 8) n;
      off := !off + 8 + n)
    t.proofs;
  List.iter
    (fun c ->
      Rcc_common.Bytes_util.put_u64be buf !off (Int64.of_int c);
      off := !off + 8)
    t.clients;
  Bytes.unsafe_to_string buf

let hash t = Rcc_crypto.Sha256.digest (encode t)

let pp fmt t =
  Format.fprintf fmt "block[%a prev=%s.. proofs=%d primaries=%d]"
    Rcc_common.Ids.pp_round t.round
    (String.sub (Rcc_common.Bytes_util.hex t.prev_hash) 0 8)
    (List.length t.proofs) (List.length t.primaries)
