type proof = {
  instance : Rcc_common.Ids.instance_id;
  batch_digest : string;
  certificate_digest : string;
}

type t = {
  round : Rcc_common.Ids.round;
  prev_hash : string;
  proofs : proof list;
  primaries : Rcc_common.Ids.replica_id list;
  clients : Rcc_common.Ids.client_id list;
}

let u64 i = Rcc_common.Bytes_util.u64_string (Int64.of_int i)

let genesis_hash ~primaries =
  Rcc_crypto.Sha256.digest_list ("rcc-genesis" :: List.map u64 primaries)

(* Certificate digests and primaries are intentionally excluded from the
   block identity: different replicas accept a round with different
   (equally valid) 2f+1 quorums, and replicas racing a primary
   replacement install the new primary set at different rounds of their
   execution stream. Only the agreed content — the ordered batches and
   the clients they serve — must hash identically everywhere. *)
let encode t =
  let proof p = u64 p.instance ^ p.batch_digest in
  String.concat ""
    (u64 t.round :: t.prev_hash
    :: (List.map proof t.proofs @ List.map u64 t.clients))

let hash t = Rcc_crypto.Sha256.digest (encode t)

let pp fmt t =
  Format.fprintf fmt "block[%a prev=%s.. proofs=%d primaries=%d]"
    Rcc_common.Ids.pp_round t.round
    (String.sub (Rcc_common.Bytes_util.hex t.prev_hash) 0 8)
    (List.length t.proofs) (List.length t.primaries)
