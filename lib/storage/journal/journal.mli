(** Durable write-ahead journal with restart-from-disk recovery.

    Each replica (when `--journal` is on) appends every committed round —
    the acceptances in deterministic replay order, including batch bytes
    and certificates — plus rollback, stable-checkpoint and view records
    to its {!Sim_disk}. Appends are buffered and group-committed: a flush
    is scheduled a short interval after the first buffered record (or
    forced by a byte threshold) and charges one modeled fsync plus
    per-byte sequential-write cost to a dedicated disk lane, off the
    execute path. Periodically the builder persists a full checkpoint
    {!Rcc_storage.Snapshot} into one of the disk's two alternating slots.

    Recovery ({!recover}) rebuilds a fresh replica's state from the disk
    alone: install the newest verifiable snapshot, then replay the
    journal suffix — re-executing rounds, re-applying rollbacks, stopping
    at the first torn/corrupt/missing record or at the first speculative
    round the stable floor does not cover. Whatever the disk cannot prove
    is left to state transfer.

    Record framing: each record is [magic "RJL1" | type byte | u64 body
    length | 8-byte SHA-256 prefix of the body | body]. Snapshot slots
    use the same discipline with magic "RJS1" around a
    {!Rcc_storage.Snapshot.encode} blob, because [Snapshot.verify] pins
    the chain but not the KV/reply bytes. *)

type t

val attach :
  engine:Rcc_sim.Engine.t ->
  costs:Rcc_sim.Costs.t ->
  disk:Sim_disk.t ->
  self:Rcc_common.Ids.replica_id ->
  unit ->
  t
(** Attach a journal writer for one incarnation over a persistent disk.
    Creates the disk-lane CPU server; buffered state dies with the
    incarnation ({!halt}), the disk does not. *)

val log_round :
  t ->
  round:Rcc_common.Ids.round ->
  primaries:Rcc_common.Ids.replica_id list ->
  Rcc_replica.Acceptance.t array ->
  unit
(** Append one committed round (acceptances in replay order). Also emits
    a view record whenever [primaries] changed since the last round. *)

val log_rollback : t -> frontier:Rcc_common.Ids.round -> unit
val log_stable : t -> floor:Rcc_common.Ids.round -> unit

val write_snapshot : t -> seq:Rcc_common.Ids.round -> Rcc_storage.Snapshot.t -> unit
(** Persist a checkpoint covering rounds [< seq] into a snapshot slot
    (charged to the disk lane like a flush). *)

val halt : t -> unit
(** Crash semantics: un-flushed buffered records are lost, scheduled
    flushes become no-ops. The underlying disk keeps what it has. *)

val disk : t -> Sim_disk.t
(** The persistent disk this incarnation writes to. *)

(** {2 Counters (for Report)} *)

val appends : t -> int
val flushes : t -> int
val bytes_flushed : t -> int
val snapshots_written : t -> int

val durable_round : t -> Rcc_common.Ids.round
(** Highest round covered by a completed flush — what the disk proves,
    assuming it didn't lie (recovery re-derives the truth). *)

(** {2 Recovery} *)

type recovery = {
  r_frontier : Rcc_common.Ids.round;
      (** ledger next-round after replay: the durable frontier *)
  r_snapshot_seq : Rcc_common.Ids.round;  (** installed snapshot boundary; 0 = none *)
  r_replayed_rounds : int;
  r_replayed_txns : int;
  r_dropped_bytes : int;  (** journal bytes discarded at a torn/corrupt record *)
  r_replied :
    (Rcc_common.Ids.client_id * string * Rcc_common.Ids.round * string) list;
      (** duplicate-reply cache rebuilt from snapshot + replay *)
}

val recover :
  engine:Rcc_sim.Engine.t ->
  self:Rcc_common.Ids.replica_id ->
  disk:Sim_disk.t ->
  ledger:Rcc_storage.Ledger.t ->
  store:Rcc_storage.Kv_store.t ->
  txn_table:Rcc_storage.Txn_table.t ->
  primaries:Rcc_common.Ids.replica_id list ->
  materialize:bool ->
  unit ->
  recovery
(** Rebuild [ledger]/[store]/[txn_table] (assumed fresh) from the disk:
    newest verifiable snapshot first, then the journal suffix. Every
    replayed round re-runs through the same KV-apply / block-build path
    as live execution, so a clean disk reproduces the pre-crash state
    byte-for-byte up to the durable frontier. Faulty records truncate
    the replay — never install corrupt state. *)
