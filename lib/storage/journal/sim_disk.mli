(** A simulated disk that can lie.

    One per replica, surviving incarnations: the network identity and all
    in-memory state die with a crash, but the disk is what a restarted
    replica recovers from. The model is TigerBeetle-style — faults are
    injected at write time from a deterministic per-disk stream, so a
    recovering reader faces exactly the corruptions a real power loss or
    firmware bug would have left behind:

    - {b torn}: a power cut mid-flush persists only a prefix of the
      record and drops the rest of that flush;
    - {b corrupt}: a sector lies — one byte of the stored record is
      flipped (checksums must catch it);
    - {b lost} (misdirected): the write lands nowhere, but later writes
      continue — recovery sees a gap.

    The journal area is append-only; checkpoint snapshots live in two
    alternating slots so a fault while writing one never destroys the
    other (the classic A/B superblock discipline). *)

type faults = {
  torn : float;  (** probability a flush tears mid-record *)
  corrupt : float;  (** probability a record's stored bytes are flipped *)
  lost : float;  (** probability a record is silently dropped *)
}

val no_faults : faults
val uniform_faults : float -> faults
(** [uniform_faults p] sets all three probabilities to [p]. *)

type t

val create : seed:int -> t
(** A fresh, empty, fault-free disk; [seed] drives the fault stream. *)

val set_faults : t -> faults -> unit
(** Replace the fault model (e.g. the nemesis turning a disk bad
    mid-run). *)

val append : t -> string list -> unit
(** One group-commit flush: append the records in order, each subject to
    the fault model. A torn fault persists a strict prefix of the record
    and discards the rest of the flush. *)

val journal : t -> string
(** Everything the journal area currently holds, in append order. *)

val journal_bytes : t -> int

val write_snapshot : t -> seq:int -> string -> unit
(** Write a checkpoint blob into the older of the two snapshot slots
    (never overwriting the newest good one). Subject to the corrupt and
    lost fault modes; snapshot writes do not tear (the slot header is
    written last, so a torn slot reads as absent). *)

val snapshots : t -> (int * string) list
(** Present snapshot slots as [(seq, blob)], newest first. *)

val writes : t -> int
(** Flushes + snapshot writes attempted. *)

val faults_injected : t -> int
val fault_log : t -> string list
(** Kinds of the injected faults, oldest first (for test assertions). *)
