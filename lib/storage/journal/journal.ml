module Engine = Rcc_sim.Engine
module Cpu = Rcc_sim.Cpu
module Costs = Rcc_sim.Costs
module Bytes_util = Rcc_common.Bytes_util
module Batch = Rcc_messages.Batch
module Acceptance = Rcc_replica.Acceptance

let record_magic = "RJL1"
let snap_magic = "RJS1"
let checksum_len = 8
let max_body = 16_777_216

(* Group-commit policy: flush at most [flush_interval] after the first
   buffered record, or immediately once [flush_bytes] accumulate. *)
let flush_interval = Engine.us 200
let flush_bytes = 65_536

(* --- record encoding ---------------------------------------------------- *)

let w_int buf v = Buffer.add_string buf (Bytes_util.u64_string (Int64.of_int v))

let w_string buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let w_int_list buf l =
  w_int buf (List.length l);
  List.iter (w_int buf) l

let w_batch buf (b : Batch.t) =
  w_int buf b.Batch.id;
  w_int buf b.Batch.client;
  w_int buf (Array.length b.Batch.txns);
  Array.iter
    (fun txn -> Buffer.add_string buf (Rcc_workload.Txn.encode txn))
    b.Batch.txns;
  w_string buf b.Batch.digest;
  w_string buf b.Batch.signature

(* [frame kind body]: magic | kind | u64 length | sha256-prefix | body.
   The checksum covers the body only; the header fields are validated
   structurally (magic match, sane length). *)
let frame kind body =
  let buf = Buffer.create (String.length body + 21) in
  Buffer.add_string buf record_magic;
  Buffer.add_char buf kind;
  w_int buf (String.length body);
  Buffer.add_string buf
    (String.sub (Rcc_crypto.Sha256.digest body) 0 checksum_len);
  Buffer.add_string buf body;
  Buffer.contents buf

let round_record ~round ~primaries (ordered : Acceptance.t array) =
  let buf = Buffer.create 512 in
  w_int buf round;
  w_int_list buf primaries;
  w_int buf (Array.length ordered);
  Array.iter
    (fun (a : Acceptance.t) ->
      w_int buf a.instance;
      Buffer.add_char buf (if a.speculative then '\x01' else '\x00');
      w_int_list buf a.cert;
      w_batch buf a.batch)
    ordered;
  frame 'R' (Buffer.contents buf)

let int_record kind v =
  let buf = Buffer.create 8 in
  w_int buf v;
  frame kind (Buffer.contents buf)

let view_record primaries =
  let buf = Buffer.create 16 in
  w_int_list buf primaries;
  frame 'V' (Buffer.contents buf)

(* --- writer ------------------------------------------------------------- *)

type t = {
  engine : Engine.t;
  costs : Costs.t;
  disk : Sim_disk.t;
  self : Rcc_common.Ids.replica_id;
  io : Cpu.server;
  mutable pending : string list;  (* newest first *)
  mutable pending_records : int;
  mutable pending_bytes : int;
  mutable pending_hi : int;  (* highest round in the pending buffer *)
  mutable flush_scheduled : bool;
  mutable halted : bool;
  mutable last_primaries : Rcc_common.Ids.replica_id list;
  mutable appends : int;
  mutable flushes : int;
  mutable bytes_flushed : int;
  mutable snapshots_written : int;
  mutable durable : int;
}

let attach ~engine ~costs ~disk ~self () =
  {
    engine;
    costs;
    disk;
    self;
    io = Cpu.server engine ~owner:self ~name:(Printf.sprintf "r%d-disk" self) ();
    pending = [];
    pending_records = 0;
    pending_bytes = 0;
    pending_hi = -1;
    flush_scheduled = false;
    halted = false;
    last_primaries = [];
    appends = 0;
    flushes = 0;
    bytes_flushed = 0;
    snapshots_written = 0;
    durable = -1;
  }

let io_cost t nbytes =
  t.costs.Costs.fsync
  + int_of_float (t.costs.Costs.disk_per_byte *. float_of_int nbytes)

let trace_new_faults t before =
  if Engine.tracing t.engine then begin
    let log = Sim_disk.fault_log t.disk in
    List.iteri
      (fun i kind ->
        if i >= before then
          Engine.trace t.engine ~replica:t.self ~instance:(-1)
            (Rcc_trace.Event.Journal_fault { kind }))
      log
  end

let flush t =
  if (not t.halted) && t.pending_records > 0 then begin
    let records = List.rev t.pending in
    let nrec = t.pending_records in
    let nbytes = t.pending_bytes in
    let hi = t.pending_hi in
    t.pending <- [];
    t.pending_records <- 0;
    t.pending_bytes <- 0;
    t.flush_scheduled <- false;
    (* The records become durable when the fsync completes on the disk
       lane; a crash in between loses them, exactly like a real page
       cache. *)
    Cpu.submit t.io ~cost:(io_cost t nbytes) (fun () ->
        if not t.halted then begin
          let before = Sim_disk.faults_injected t.disk in
          Sim_disk.append t.disk records;
          trace_new_faults t before;
          t.flushes <- t.flushes + 1;
          t.bytes_flushed <- t.bytes_flushed + nbytes;
          if hi > t.durable then t.durable <- hi;
          if Engine.tracing t.engine then
            Engine.trace t.engine ~replica:t.self ~instance:(-1)
              (Rcc_trace.Event.Journal_flush
                 { records = nrec; bytes = nbytes; durable = t.durable })
        end)
  end

let append t ?round record =
  if not t.halted then begin
    t.appends <- t.appends + 1;
    t.pending <- record :: t.pending;
    t.pending_records <- t.pending_records + 1;
    t.pending_bytes <- t.pending_bytes + String.length record;
    (match round with
    | Some r when r > t.pending_hi -> t.pending_hi <- r
    | _ -> ());
    if t.pending_bytes >= flush_bytes then flush t
    else if not t.flush_scheduled then begin
      t.flush_scheduled <- true;
      Engine.schedule_after t.engine flush_interval (fun () -> flush t)
    end
  end

let log_round t ~round ~primaries ordered =
  if primaries <> t.last_primaries then begin
    t.last_primaries <- primaries;
    append t (view_record primaries)
  end;
  append t ~round (round_record ~round ~primaries ordered)

let log_rollback t ~frontier = append t (int_record 'B' frontier)
let log_stable t ~floor = append t (int_record 'A' floor)

let write_snapshot t ~seq snapshot =
  if not t.halted then begin
    let body = Rcc_storage.Snapshot.encode snapshot in
    let blob =
      let buf = Buffer.create (String.length body + 20) in
      Buffer.add_string buf snap_magic;
      w_int buf (String.length body);
      Buffer.add_string buf
        (String.sub (Rcc_crypto.Sha256.digest body) 0 checksum_len);
      Buffer.add_string buf body;
      Buffer.contents buf
    in
    Cpu.submit t.io ~cost:(io_cost t (String.length blob)) (fun () ->
        if not t.halted then begin
          let before = Sim_disk.faults_injected t.disk in
          Sim_disk.write_snapshot t.disk ~seq blob;
          trace_new_faults t before;
          t.snapshots_written <- t.snapshots_written + 1;
          if Engine.tracing t.engine then
            Engine.trace t.engine ~replica:t.self ~instance:(-1)
              (Rcc_trace.Event.Journal_snapshot
                 { seq; bytes = String.length blob })
        end)
  end

let halt t =
  t.halted <- true;
  t.pending <- [];
  t.pending_records <- 0;
  t.pending_bytes <- 0

let disk t = t.disk
let appends t = t.appends
let flushes t = t.flushes
let bytes_flushed t = t.bytes_flushed
let snapshots_written t = t.snapshots_written
let durable_round t = t.durable

(* --- decoding ----------------------------------------------------------- *)

exception Bad of string

type reader = { buf : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.buf then raise (Bad "truncated")

let r_int r =
  need r 8;
  let v = Int64.to_int (Bytes_util.get_u64be r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let r_string r =
  let len = r_int r in
  if len < 0 || len > max_body then raise (Bad "bad string length");
  need r len;
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let r_int_list r =
  let len = r_int r in
  if len < 0 || len > 1_000_000 then raise (Bad "bad list length");
  List.init len (fun _ -> r_int r)

let r_bool r =
  need r 1;
  let c = r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\x00' -> false
  | '\x01' -> true
  | _ -> raise (Bad "bad boolean")

let r_batch r =
  let id = r_int r in
  let client = r_int r in
  let ntxns = r_int r in
  if ntxns < 0 || ntxns > 1_000_000 then raise (Bad "bad txn count");
  let txns =
    Array.init ntxns (fun _ ->
        need r Rcc_workload.Txn.encoded_size;
        match Rcc_workload.Txn.decode r.buf r.pos with
        | Ok txn ->
            r.pos <- r.pos + Rcc_workload.Txn.encoded_size;
            txn
        | Error e -> raise (Bad e))
  in
  let digest = r_string r in
  let signature = r_string r in
  {
    Batch.id;
    client;
    txns;
    digest;
    signature;
    wire = Batch.wire_size ~ntxns;
    keys = None;
  }

type slot_rec = {
  sr_instance : int;
  sr_speculative : bool;
  sr_cert : int list;
  sr_batch : Batch.t;
}

type round_rec = {
  rr_round : int;
  rr_primaries : int list;
  rr_slots : slot_rec list;
}

type record =
  | Round of round_rec
  | Attest of int
  | Rollback of int
  | View of int list

let parse_body kind body =
  let r = { buf = body; pos = 0 } in
  let record =
    match kind with
    | 'R' ->
        let rr_round = r_int r in
        let rr_primaries = r_int_list r in
        let nslots = r_int r in
        if nslots < 0 || nslots > 10_000 then raise (Bad "bad slot count");
        let rr_slots =
          List.init nslots (fun _ ->
              let sr_instance = r_int r in
              let sr_speculative = r_bool r in
              let sr_cert = r_int_list r in
              let sr_batch = r_batch r in
              { sr_instance; sr_speculative; sr_cert; sr_batch })
        in
        Round { rr_round; rr_primaries; rr_slots }
    | 'A' -> Attest (r_int r)
    | 'B' -> Rollback (r_int r)
    | 'V' -> View (r_int_list r)
    | _ -> raise (Bad "unknown record type")
  in
  if r.pos <> String.length body then raise (Bad "trailing bytes");
  record

(* Scan the journal area, returning the longest valid record prefix and
   the bytes dropped past the first torn / corrupt / malformed record.
   A checksum mismatch anywhere stops the scan — a lying disk gets its
   suffix truncated, never trusted. *)
let scan journal =
  let total = String.length journal in
  let header_len = String.length record_magic + 1 + 8 + checksum_len in
  let records = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos + header_len <= total do
    let p = !pos in
    if not (String.equal (String.sub journal p 4) record_magic) then ok := false
    else begin
      let kind = journal.[p + 4] in
      let len = Int64.to_int (Bytes_util.get_u64be journal (p + 5)) in
      if len < 0 || len > max_body || p + header_len + len > total then
        ok := false
      else begin
        let sum = String.sub journal (p + 13) checksum_len in
        let body = String.sub journal (p + header_len) len in
        if
          not
            (String.equal sum
               (String.sub (Rcc_crypto.Sha256.digest body) 0 checksum_len))
        then ok := false
        else
          match parse_body kind body with
          | record ->
              records := record :: !records;
              pos := p + header_len + len
          | exception Bad _ -> ok := false
      end
    end
  done;
  (* Trailing bytes shorter than a header are a torn tail, too. *)
  (List.rev !records, total - !pos)

(* --- recovery ----------------------------------------------------------- *)

type recovery = {
  r_frontier : int;
  r_snapshot_seq : int;
  r_replayed_rounds : int;
  r_replayed_txns : int;
  r_dropped_bytes : int;
  r_replied : (int * string * int * string) list;
}

(* Pick the newest snapshot slot whose framing checksum, decode and chain
   verification all pass; a corrupted slot falls through to the older
   one. *)
let load_snapshot disk ~primaries =
  let unwrap blob =
    let header = String.length snap_magic + 8 + checksum_len in
    if String.length blob < header then None
    else if not (String.equal (String.sub blob 0 4) snap_magic) then None
    else
      let len = Int64.to_int (Bytes_util.get_u64be blob 4) in
      if len < 0 || String.length blob <> header + len then None
      else
        let sum = String.sub blob 12 checksum_len in
        let body = String.sub blob header len in
        if
          not
            (String.equal sum
               (String.sub (Rcc_crypto.Sha256.digest body) 0 checksum_len))
        then None
        else
          match Rcc_storage.Snapshot.decode body with
          | Ok snap -> (
              match Rcc_storage.Snapshot.verify ~primaries snap with
              | Ok _ -> Some snap
              | Error _ -> None)
          | Error _ -> None
  in
  List.fold_left
    (fun acc (_, blob) -> match acc with Some _ -> acc | None -> unwrap blob)
    None
    (Sim_disk.snapshots disk)

let recover ~engine ~self ~disk ~ledger ~store ~txn_table ~primaries
    ~materialize () =
  let replied : (int * string, int * string * int) Hashtbl.t =
    Hashtbl.create 256
  in
  (* 1. Newest verifiable snapshot, installed wholesale. *)
  let base =
    match load_snapshot disk ~primaries with
    | None -> 0
    | Some snap ->
        Rcc_storage.Ledger.install ledger snap.Rcc_storage.Snapshot.blocks;
        (match snap.Rcc_storage.Snapshot.kv with
        | Some entries when materialize ->
            Rcc_storage.Kv_store.install store entries
        | _ -> ());
        List.iter
          (fun (client, digest, round, result) ->
            Hashtbl.replace replied (client, digest) (round, result, 0))
          snap.Rcc_storage.Snapshot.replied;
        snap.Rcc_storage.Snapshot.seq
  in
  if Engine.tracing engine then
    Engine.trace engine ~replica:self ~instance:(-1)
      (Rcc_trace.Event.Journal_replay_begin { seq = base });
  (* 2. Longest valid journal prefix; a fault truncates from there on. *)
  let records, dropped = scan (Sim_disk.journal disk) in
  (* 3. Final stable floor across the prefix: speculative rounds at or
     above it are unproven (their rollback may be in the lost suffix), so
     replay stops there and leaves the rest to state transfer. *)
  let attest_floor =
    List.fold_left
      (fun floor r -> match r with Attest f when f > floor -> f | _ -> floor)
      base records
  in
  let replayed_rounds = ref 0 in
  let replayed_txns = ref 0 in
  let replay_round (rr : round_rec) =
    let round = rr.rr_round in
    if materialize then Rcc_storage.Kv_store.journal_round store round;
    let proofs = ref [] in
    let clients = ref [] in
    List.iter
      (fun (s : slot_rec) ->
        let batch = s.sr_batch in
        let ntxns = Array.length batch.Batch.txns in
        let key = (batch.Batch.client, batch.Batch.digest) in
        let dup = (not (Batch.is_null batch)) && Hashtbl.mem replied key in
        proofs :=
          {
            Rcc_storage.Block.instance = s.sr_instance;
            batch_digest = batch.Batch.digest;
            certificate_digest =
              Rcc_replica.Exec.certificate_digest batch.Batch.digest s.sr_cert;
          }
          :: !proofs;
        if not (Batch.is_null batch) then
          clients := batch.Batch.client :: !clients;
        if not dup then begin
          if materialize then
            Array.iter
              (fun txn -> ignore (Rcc_workload.Txn.apply store txn))
              batch.Batch.txns;
          let result_digest =
            Rcc_crypto.Sha256.digest_list
              [ batch.Batch.digest; Bytes_util.u64_string (Int64.of_int round) ]
          in
          replayed_txns := !replayed_txns + ntxns;
          Rcc_storage.Txn_table.record txn_table
            {
              Rcc_storage.Txn_table.round;
              instance = s.sr_instance;
              client = batch.Batch.client;
              batch_digest = batch.Batch.digest;
              response_digest = result_digest;
              txn_count = ntxns;
            };
          if not (Batch.is_null batch) then
            Hashtbl.replace replied key (round, result_digest, s.sr_instance)
        end)
      rr.rr_slots;
    let block =
      {
        Rcc_storage.Block.round;
        prev_hash = Rcc_storage.Ledger.head_hash ledger;
        proofs = List.rev !proofs;
        primaries = rr.rr_primaries;
        clients = List.rev !clients;
      }
    in
    Rcc_storage.Ledger.append_exn ledger block;
    incr replayed_rounds;
    if Engine.tracing engine then
      Engine.trace engine ~replica:self ~instance:(-1)
        (Rcc_trace.Event.Journal_replay_round
           {
             round;
             txns =
               List.fold_left
                 (fun acc (s : slot_rec) ->
                   acc + Array.length s.sr_batch.Batch.txns)
                 0 rr.rr_slots;
           })
  in
  let apply_rollback frontier =
    (* Clamp to the snapshot base: rounds the snapshot bakes in have no
       undo records and can never be unwound here. *)
    let frontier = max frontier base in
    if frontier < Rcc_storage.Ledger.next_round ledger then begin
      if materialize then Rcc_storage.Kv_store.undo_above store ~round:frontier;
      Rcc_storage.Ledger.truncate_to ledger ~round:frontier;
      ignore (Rcc_storage.Txn_table.remove_from txn_table ~round:frontier);
      let dead =
        Hashtbl.fold
          (fun key (round, _, _) acc ->
            if round >= frontier then key :: acc else acc)
          replied []
      in
      List.iter (Hashtbl.remove replied) dead
    end
  in
  (* 4. Replay, in journal order. A round gap (lost record) or an
     unproven speculative round stops the replay — the suffix past it is
     state transfer's job. *)
  let stopped = ref false in
  List.iter
    (fun record ->
      if not !stopped then
        match record with
        | Round rr ->
            let next = Rcc_storage.Ledger.next_round ledger in
            if rr.rr_round < next then ()  (* covered by the snapshot *)
            else if rr.rr_round > next then stopped := true
            else if
              rr.rr_round >= attest_floor
              && List.exists (fun s -> s.sr_speculative) rr.rr_slots
            then stopped := true
            else replay_round rr
        | Rollback frontier -> apply_rollback frontier
        | Attest floor ->
            if floor > base && materialize then
              Rcc_storage.Kv_store.forget_below store ~round:floor
        | View _ -> ())
    records;
  if dropped > 0 && Engine.tracing engine then
    Engine.trace engine ~replica:self ~instance:(-1)
      (Rcc_trace.Event.Journal_truncated
         { durable = Rcc_storage.Ledger.next_round ledger; dropped });
  let frontier = Rcc_storage.Ledger.next_round ledger in
  if Engine.tracing engine then
    Engine.trace engine ~replica:self ~instance:(-1)
      (Rcc_trace.Event.Journal_replay_complete
         { frontier; rounds = !replayed_rounds; txns = !replayed_txns });
  {
    r_frontier = frontier;
    r_snapshot_seq = base;
    r_replayed_rounds = !replayed_rounds;
    r_replayed_txns = !replayed_txns;
    r_dropped_bytes = dropped;
    r_replied =
      Hashtbl.fold
        (fun (client, digest) (round, result, _) acc ->
          (client, digest, round, result) :: acc)
        replied [];
  }
