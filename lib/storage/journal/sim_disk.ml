type faults = { torn : float; corrupt : float; lost : float }

let no_faults = { torn = 0.0; corrupt = 0.0; lost = 0.0 }
let uniform_faults p = { torn = p; corrupt = p; lost = p }

type t = {
  buf : Buffer.t;  (* journal area, append-only *)
  mutable slot_seq : int array;  (* -1 = slot empty *)
  mutable slot_blob : string array;
  rng : Rcc_common.Rng.t;
  mutable faults : faults;
  mutable writes : int;
  mutable injected : int;
  mutable log : string list;  (* fault kinds, newest first *)
}

let create ~seed =
  {
    buf = Buffer.create 4096;
    slot_seq = [| -1; -1 |];
    slot_blob = [| ""; "" |];
    rng = Rcc_common.Rng.create seed;
    faults = no_faults;
    writes = 0;
    injected = 0;
    log = [];
  }

let set_faults t faults = t.faults <- faults

let inject t kind =
  t.injected <- t.injected + 1;
  t.log <- kind :: t.log

let roll t p = p > 0.0 && Rcc_common.Rng.float t.rng 1.0 < p

(* Flip one byte somewhere in the record — never a no-op flip. *)
let corrupt_record t record =
  let n = String.length record in
  if n = 0 then record
  else begin
    let pos = Rcc_common.Rng.int t.rng n in
    let b = Bytes.of_string record in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
    Bytes.to_string b
  end

let append t records =
  t.writes <- t.writes + 1;
  let rec go = function
    | [] -> ()
    | record :: rest ->
        if roll t t.faults.lost then begin
          inject t "lost";
          go rest
        end
        else if roll t t.faults.torn then begin
          (* Power loss mid-flush: a strict prefix of this record lands,
             nothing after it does. *)
          inject t "torn";
          let n = String.length record in
          let keep = if n <= 1 then 0 else Rcc_common.Rng.int t.rng n in
          Buffer.add_substring t.buf record 0 keep
        end
        else begin
          let record =
            if roll t t.faults.corrupt then begin
              inject t "corrupt";
              corrupt_record t record
            end
            else record
          in
          Buffer.add_string t.buf record;
          go rest
        end
  in
  go records

let journal t = Buffer.contents t.buf
let journal_bytes t = Buffer.length t.buf

let write_snapshot t ~seq blob =
  t.writes <- t.writes + 1;
  if roll t t.faults.lost then inject t "lost"
  else begin
    let blob =
      if roll t t.faults.corrupt then begin
        inject t "corrupt";
        corrupt_record t blob
      end
      else blob
    in
    (* Overwrite the older slot, preserving the newest good one. *)
    let victim = if t.slot_seq.(0) <= t.slot_seq.(1) then 0 else 1 in
    t.slot_seq.(victim) <- seq;
    t.slot_blob.(victim) <- blob
  end

let snapshots t =
  let slots =
    List.filter
      (fun (seq, _) -> seq >= 0)
      [ (t.slot_seq.(0), t.slot_blob.(0)); (t.slot_seq.(1), t.slot_blob.(1)) ]
  in
  List.sort (fun (a, _) (b, _) -> compare b a) slots

let writes t = t.writes
let faults_injected t = t.injected
let fault_log t = List.rev t.log
