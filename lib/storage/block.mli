(** Blocks of the RESILIENTDB ledger (§6 "Storage and Ledger Management").

    A block commits one RCC round: per-instance proof-of-replication
    digests, the primaries of the round, and the clients served. Client
    requests and responses live in a separate table ({!Txn_table}) indexed
    by round, exactly as in the paper. *)

type proof = {
  instance : Rcc_common.Ids.instance_id;
  batch_digest : string;  (** digest of the replicated request batch *)
  certificate_digest : string;  (** digest of the prepare/commit certificate *)
}

type t = {
  round : Rcc_common.Ids.round;
  prev_hash : string;
  proofs : proof list;  (** one per instance that replicated in the round *)
  primaries : Rcc_common.Ids.replica_id list;
  clients : Rcc_common.Ids.client_id list;
}

val genesis_hash : primaries:Rcc_common.Ids.replica_id list -> string
(** B_G := H(P_1, ..., P_z). *)

val hash : t -> string
(** Hash of {!encode}. Covers the agreed content (round, chain link,
    ordered batch digests, clients) but neither the certificate digests,
    which vary across replicas with the particular 2f+1 quorum each one
    observed, nor the primaries, which replicas racing a primary
    replacement install at different rounds of their execution stream. *)

val encode : t -> string

val pp : Format.formatter -> t -> unit
