module Bytes_util = Rcc_common.Bytes_util

let magic = "RCCL1\n"

(* --- writer ----------------------------------------------------------- *)

let w_int buf v = Buffer.add_string buf (Bytes_util.u64_string (Int64.of_int v))

let w_string buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let w_int_list buf l =
  w_int buf (List.length l);
  List.iter (w_int buf) l

let write_block buf (b : Block.t) =
  w_int buf b.Block.round;
  w_string buf b.Block.prev_hash;
  w_int buf (List.length b.Block.proofs);
  List.iter
    (fun (p : Block.proof) ->
      w_int buf p.Block.instance;
      w_string buf p.Block.batch_digest;
      w_string buf p.Block.certificate_digest)
    b.Block.proofs;
  w_int_list buf b.Block.primaries;
  w_int_list buf b.Block.clients

let save ledger ~primaries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  w_int_list buf primaries;
  w_int buf (Ledger.length ledger);
  Ledger.iter ledger (fun block -> write_block buf block);
  Buffer.contents buf

(* --- reader ------------------------------------------------------------ *)

exception Malformed of string

type reader = { buf : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.buf then raise (Malformed "ledger file truncated")

let r_int r =
  need r 8;
  let v = Int64.to_int (Bytes_util.get_u64be r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let r_string r =
  let len = r_int r in
  if len < 0 || len > 10_000_000 then raise (Malformed "bad string length");
  need r len;
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let r_int_list r =
  let len = r_int r in
  if len < 0 || len > 1_000_000 then raise (Malformed "bad list length");
  List.init len (fun _ -> r_int r)

let r_block r =
  let round = r_int r in
  let prev_hash = r_string r in
  let nproofs = r_int r in
  if nproofs < 0 || nproofs > 100_000 then raise (Malformed "bad proof count");
  let proofs =
    List.init nproofs (fun _ ->
        let instance = r_int r in
        let batch_digest = r_string r in
        let certificate_digest = r_string r in
        { Block.instance; batch_digest; certificate_digest })
  in
  let primaries = r_int_list r in
  let clients = r_int_list r in
  { Block.round; prev_hash; proofs; primaries; clients }

(* Exposed for Snapshot, which embeds a block chain in its own framing:
   reads one block record starting at [pos], returns it with the next
   position. *)
let read_block s ~pos =
  let r = { buf = s; pos } in
  let b = r_block r in
  (b, r.pos)

let load s =
  match
    (let mlen = String.length magic in
     if String.length s < mlen || not (String.equal (String.sub s 0 mlen) magic)
     then raise (Malformed "bad magic");
     let r = { buf = s; pos = mlen } in
     let primaries = r_int_list r in
     let count = r_int r in
     if count < 0 then raise (Malformed "negative block count");
     let ledger = Ledger.create ~primaries in
     for _ = 1 to count do
       match Ledger.append ledger (r_block r) with
       | Ok () -> ()
       | Error e -> raise (Malformed e)
     done;
     if r.pos <> String.length s then raise (Malformed "trailing bytes");
     ledger)
  with
  | ledger -> (
      (* Appends already checked the chain, but re-validate end to end so
         corruption inside a block body is also caught. *)
      match Ledger.validate ledger with
      | Ok () -> Ok ledger
      | Error e -> Error e)
  | exception Malformed e -> Error e

(* --- files ----------------------------------------------------------------- *)

let save_file ledger ~primaries ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save ledger ~primaries))

let load_file ~path =
  match open_in_bin path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          load (really_input_string ic len))
  | exception Sys_error e -> Error e
