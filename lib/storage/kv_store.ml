type record = { mutable value : int; mutable version : int }

(* YCSB keys are dense record ids counted up from zero, and [apply] hits
   the store once per transaction — the hottest storage path in the
   simulator. Small non-negative keys are direct-indexed in an array
   (one load, no hashing); anything outside the direct range spills to a
   Hashtbl so arbitrary keys still behave exactly as before. *)
type t = {
  mutable direct : record option array;
  spill : (int, record) Hashtbl.t;
  mutable direct_count : int;
  mutable reads : int;
  mutable writes : int;
  (* Speculative undo journal: the prior (value, version) of every key
     written while journaling is enabled, tagged with the round that wrote
     it. Version -1 marks a key that did not exist before the write, so
     undo removes it again. Parallel int arrays, append-only; entries are
     dropped from the front as the commit/checkpoint frontier passes
     ([forget_below]) and replayed from the back on rollback
     ([undo_above]). Off by default — a single branch on the write path. *)
  mutable journal_on : bool;
  mutable j_round : int array;
  mutable j_key : int array;
  mutable j_value : int array;
  mutable j_version : int array;
  mutable j_len : int;
  mutable j_current : int;  (* round tag stamped on new entries *)
}

(* Beyond this the direct array would no longer be a win; spill instead. *)
let max_direct = 1 lsl 22

let create () =
  {
    direct = Array.make 4096 None;
    spill = Hashtbl.create 16;
    direct_count = 0;
    reads = 0;
    writes = 0;
    journal_on = false;
    j_round = [||];
    j_key = [||];
    j_value = [||];
    j_version = [||];
    j_len = 0;
    j_current = -1;
  }

let grow t key =
  let n = ref (Array.length t.direct) in
  while key >= !n do
    n := !n * 2
  done;
  let direct = Array.make !n None in
  Array.blit t.direct 0 direct 0 (Array.length t.direct);
  t.direct <- direct

let[@inline] find t key =
  if key >= 0 && key < max_direct then
    if key < Array.length t.direct then Array.unsafe_get t.direct key else None
  else Hashtbl.find_opt t.spill key

let set_direct t key r =
  if key >= Array.length t.direct then grow t key;
  (match Array.unsafe_get t.direct key with
  | None -> t.direct_count <- t.direct_count + 1
  | Some _ -> ());
  Array.unsafe_set t.direct key (Some r)

let init_records t ~count =
  for key = 0 to count - 1 do
    set_direct t key { value = key * 7; version = 0 }
  done

let read t key =
  t.reads <- t.reads + 1;
  match find t key with Some r -> Some r.value | None -> None

(* --- speculative undo journal ----------------------------------------- *)

let enable_journal t = t.journal_on <- true
let journal_round t round = t.j_current <- round
let journal_length t = t.j_len

let journal_push t key value version =
  if t.j_len = Array.length t.j_round then begin
    let cap = max 256 (2 * t.j_len) in
    let grow a = Array.append a (Array.make (cap - Array.length a) 0) in
    t.j_round <- grow t.j_round;
    t.j_key <- grow t.j_key;
    t.j_value <- grow t.j_value;
    t.j_version <- grow t.j_version
  end;
  let i = t.j_len in
  t.j_round.(i) <- t.j_current;
  t.j_key.(i) <- key;
  t.j_value.(i) <- value;
  t.j_version.(i) <- version;
  t.j_len <- i + 1

let remove_key t key =
  if key >= 0 && key < max_direct then begin
    if key < Array.length t.direct then
      match Array.unsafe_get t.direct key with
      | Some _ ->
          Array.unsafe_set t.direct key None;
          t.direct_count <- t.direct_count - 1
      | None -> ()
  end
  else Hashtbl.remove t.spill key

(* Keep only journal entries satisfying [keep], preserving append order. *)
let journal_filter t keep =
  let k = ref 0 in
  for i = 0 to t.j_len - 1 do
    if keep t.j_round.(i) then begin
      if !k <> i then begin
        t.j_round.(!k) <- t.j_round.(i);
        t.j_key.(!k) <- t.j_key.(i);
        t.j_value.(!k) <- t.j_value.(i);
        t.j_version.(!k) <- t.j_version.(i)
      end;
      incr k
    end
  done;
  t.j_len <- !k

let undo_above t ~round =
  (* Replay newest-first so the oldest surviving pre-state wins. Entries
     of different rounds may interleave (parallel windows execute rounds
     out of order), but per key they are in execution order — same-key
     access is serialized by the conflict groups — so a selective reverse
     walk restores exactly the state as of the end of round [round - 1]. *)
  for i = t.j_len - 1 downto 0 do
    if t.j_round.(i) >= round then begin
      let key = t.j_key.(i) in
      if t.j_version.(i) < 0 then remove_key t key
      else
        match find t key with
        | Some r ->
            r.value <- t.j_value.(i);
            r.version <- t.j_version.(i)
        | None ->
            let r = { value = t.j_value.(i); version = t.j_version.(i) } in
            if key >= 0 && key < max_direct then set_direct t key r
            else Hashtbl.replace t.spill key r
    end
  done;
  journal_filter t (fun r -> r < round)

let forget_below t ~round = journal_filter t (fun r -> r >= round)

let journal_clear t = t.j_len <- 0

let write t ~key ~value =
  t.writes <- t.writes + 1;
  match find t key with
  | Some r ->
      if t.journal_on then journal_push t key r.value r.version;
      r.value <- value;
      r.version <- r.version + 1
  | None ->
      if t.journal_on then journal_push t key 0 (-1);
      let r = { value; version = 1 } in
      if key >= 0 && key < max_direct then set_direct t key r
      else Hashtbl.replace t.spill key r

let version t key =
  match find t key with Some r -> r.version | None -> 0

let size t = t.direct_count + Hashtbl.length t.spill

let reads_performed t = t.reads
let writes_performed t = t.writes

(* Canonical order — direct keys ascending, then spill keys ascending —
   so two stores holding the same state enumerate identically no matter
   how entries are split between the array and the spill. *)
let iter t f =
  Array.iteri
    (fun key r -> match r with Some r -> f key r.value r.version | None -> ())
    t.direct;
  if Hashtbl.length t.spill > 0 then begin
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.spill [] in
    List.iter
      (fun k ->
        let r = Hashtbl.find t.spill k in
        f k r.value r.version)
      (List.sort compare keys)
  end

let entries t =
  let out = Array.make (size t) (0, 0, 0) in
  let i = ref 0 in
  iter t (fun key value version ->
      out.(!i) <- (key, value, version);
      incr i);
  out

let copy t =
  {
    direct =
      Array.map (Option.map (fun r -> { value = r.value; version = r.version }))
        t.direct;
    spill =
      (let s = Hashtbl.create (max 16 (Hashtbl.length t.spill)) in
       Hashtbl.iter
         (fun k r -> Hashtbl.replace s k { value = r.value; version = r.version })
         t.spill;
       s);
    direct_count = t.direct_count;
    reads = 0;
    writes = 0;
    (* Copies are scratch stores (digest previews, tests); they start
       with journalling off and an empty undo log. *)
    journal_on = false;
    j_round = [||];
    j_key = [||];
    j_value = [||];
    j_version = [||];
    j_len = 0;
    j_current = -1;
  }

(* Wholesale replacement for snapshot install. The access counters are
   cumulative effort counters, not state, so they survive the install. *)
let install t new_entries =
  Array.fill t.direct 0 (Array.length t.direct) None;
  Hashtbl.reset t.spill;
  t.direct_count <- 0;
  (* Journal entries describe pre-install state; none can ever be undone
     into the installed table. *)
  t.j_len <- 0;
  Array.iter
    (fun (key, value, version) ->
      let r = { value; version } in
      if key >= 0 && key < max_direct then set_direct t key r
      else Hashtbl.replace t.spill key r)
    new_entries

let state_digest t =
  (* Xor of per-entry digests is order-insensitive, so the digest does
     not depend on whether an entry lives in the array or the spill. *)
  let acc = Bytes.make 32 '\x00' in
  let fold key (r : record) =
    let entry =
      Rcc_common.Bytes_util.u64_string (Int64.of_int key)
      ^ Rcc_common.Bytes_util.u64_string (Int64.of_int r.value)
      ^ Rcc_common.Bytes_util.u64_string (Int64.of_int r.version)
    in
    let d = Rcc_crypto.Sha256.digest entry in
    for i = 0 to 31 do
      Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lxor Char.code d.[i]))
    done
  in
  Array.iteri
    (fun key r -> match r with Some r -> fold key r | None -> ())
    t.direct;
  Hashtbl.iter fold t.spill;
  Bytes.unsafe_to_string acc
