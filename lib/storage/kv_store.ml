type record = { mutable value : int; mutable version : int }

(* YCSB keys are dense record ids counted up from zero, and [apply] hits
   the store once per transaction — the hottest storage path in the
   simulator. Small non-negative keys are direct-indexed in an array
   (one load, no hashing); anything outside the direct range spills to a
   Hashtbl so arbitrary keys still behave exactly as before. *)
type t = {
  mutable direct : record option array;
  spill : (int, record) Hashtbl.t;
  mutable direct_count : int;
  mutable reads : int;
  mutable writes : int;
}

(* Beyond this the direct array would no longer be a win; spill instead. *)
let max_direct = 1 lsl 22

let create () =
  {
    direct = Array.make 4096 None;
    spill = Hashtbl.create 16;
    direct_count = 0;
    reads = 0;
    writes = 0;
  }

let grow t key =
  let n = ref (Array.length t.direct) in
  while key >= !n do
    n := !n * 2
  done;
  let direct = Array.make !n None in
  Array.blit t.direct 0 direct 0 (Array.length t.direct);
  t.direct <- direct

let[@inline] find t key =
  if key >= 0 && key < max_direct then
    if key < Array.length t.direct then Array.unsafe_get t.direct key else None
  else Hashtbl.find_opt t.spill key

let set_direct t key r =
  if key >= Array.length t.direct then grow t key;
  (match Array.unsafe_get t.direct key with
  | None -> t.direct_count <- t.direct_count + 1
  | Some _ -> ());
  Array.unsafe_set t.direct key (Some r)

let init_records t ~count =
  for key = 0 to count - 1 do
    set_direct t key { value = key * 7; version = 0 }
  done

let read t key =
  t.reads <- t.reads + 1;
  match find t key with Some r -> Some r.value | None -> None

let write t ~key ~value =
  t.writes <- t.writes + 1;
  match find t key with
  | Some r ->
      r.value <- value;
      r.version <- r.version + 1
  | None ->
      let r = { value; version = 1 } in
      if key >= 0 && key < max_direct then set_direct t key r
      else Hashtbl.replace t.spill key r

let version t key =
  match find t key with Some r -> r.version | None -> 0

let size t = t.direct_count + Hashtbl.length t.spill

let reads_performed t = t.reads
let writes_performed t = t.writes

(* Canonical order — direct keys ascending, then spill keys ascending —
   so two stores holding the same state enumerate identically no matter
   how entries are split between the array and the spill. *)
let iter t f =
  Array.iteri
    (fun key r -> match r with Some r -> f key r.value r.version | None -> ())
    t.direct;
  if Hashtbl.length t.spill > 0 then begin
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.spill [] in
    List.iter
      (fun k ->
        let r = Hashtbl.find t.spill k in
        f k r.value r.version)
      (List.sort compare keys)
  end

let entries t =
  let out = Array.make (size t) (0, 0, 0) in
  let i = ref 0 in
  iter t (fun key value version ->
      out.(!i) <- (key, value, version);
      incr i);
  out

let copy t =
  {
    direct =
      Array.map (Option.map (fun r -> { value = r.value; version = r.version }))
        t.direct;
    spill =
      (let s = Hashtbl.create (max 16 (Hashtbl.length t.spill)) in
       Hashtbl.iter
         (fun k r -> Hashtbl.replace s k { value = r.value; version = r.version })
         t.spill;
       s);
    direct_count = t.direct_count;
    reads = 0;
    writes = 0;
  }

(* Wholesale replacement for snapshot install. The access counters are
   cumulative effort counters, not state, so they survive the install. *)
let install t new_entries =
  Array.fill t.direct 0 (Array.length t.direct) None;
  Hashtbl.reset t.spill;
  t.direct_count <- 0;
  Array.iter
    (fun (key, value, version) ->
      let r = { value; version } in
      if key >= 0 && key < max_direct then set_direct t key r
      else Hashtbl.replace t.spill key r)
    new_entries

let state_digest t =
  (* Xor of per-entry digests is order-insensitive, so the digest does
     not depend on whether an entry lives in the array or the spill. *)
  let acc = Bytes.make 32 '\x00' in
  let fold key (r : record) =
    let entry =
      Rcc_common.Bytes_util.u64_string (Int64.of_int key)
      ^ Rcc_common.Bytes_util.u64_string (Int64.of_int r.value)
      ^ Rcc_common.Bytes_util.u64_string (Int64.of_int r.version)
    in
    let d = Rcc_crypto.Sha256.digest entry in
    for i = 0 to 31 do
      Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lxor Char.code d.[i]))
    done
  in
  Array.iteri
    (fun key r -> match r with Some r -> fold key r | None -> ())
    t.direct;
  Hashtbl.iter fold t.spill;
  Bytes.unsafe_to_string acc
