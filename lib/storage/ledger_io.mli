(** Ledger persistence: a self-describing binary file format for the
    blockchain, so a replica can archive its chain and an auditor can
    reload and re-validate it offline.

    Layout: magic "RCCL1\n", the initial primary list, the block count,
    then length-prefixed block records. [load] rejects bad magic,
    truncation, and any chain whose hashes do not re-validate. *)

val save : Ledger.t -> primaries:Rcc_common.Ids.replica_id list -> string
(** Serialize the whole chain (with the genesis parameters needed to
    re-derive the genesis hash). *)

val load : string -> (Ledger.t, string) result
(** Parse and re-validate. The returned ledger is ready for appends. *)

val save_file : Ledger.t -> primaries:Rcc_common.Ids.replica_id list -> path:string -> unit
val load_file : path:string -> (Ledger.t, string) result

(** Block-record framing, exposed so {!Snapshot} can embed a chain prefix
    inside its own format without a second encoder. *)

exception Malformed of string

val write_block : Buffer.t -> Block.t -> unit

val read_block : string -> pos:int -> Block.t * int
(** Parse one block record at [pos]; returns the block and the position
    just past it. Raises {!Malformed} on truncated or oversized fields. *)
