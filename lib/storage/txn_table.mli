(** Side table of executed requests and responses, indexed by round
    (the ledger stores proofs, not payloads — §6). *)

type entry = {
  round : Rcc_common.Ids.round;
  instance : Rcc_common.Ids.instance_id;
  client : Rcc_common.Ids.client_id;
  batch_digest : string;
  response_digest : string;
  txn_count : int;
}

type t

val create : unit -> t
val record : t -> entry -> unit
val find : t -> round:Rcc_common.Ids.round -> entry list
(** Entries of a round, in instance order. *)

val remove_from : t -> round:Rcc_common.Ids.round -> int * int
(** Drop every entry of rounds [>= round] (speculative rollback).
    Returns [(rounds_removed, txns_removed)]. *)

val total_txns : t -> int
val rounds : t -> int
