type t = {
  genesis : string;
  blocks : Block.t array ref;
  mutable used : int;
  (* Hash of the last appended block, filled on first use. Blocks are
     immutable once appended, so the cache never goes stale — without it
     every append re-hashed the full previous block twice (once for the
     builder fetching [head_hash], once for the chain check). *)
  mutable head : string;
  mutable head_valid : bool;
}

let create ~primaries =
  {
    genesis = Block.genesis_hash ~primaries;
    blocks = ref [||];
    used = 0;
    head = "";
    head_valid = false;
  }

let head_hash t =
  if t.used = 0 then t.genesis
  else if t.head_valid then t.head
  else begin
    let h = Block.hash !(t.blocks).(t.used - 1) in
    t.head <- h;
    t.head_valid <- true;
    h
  end

let next_round t = t.used

let append t (block : Block.t) =
  if block.Block.round <> t.used then
    Error
      (Printf.sprintf "ledger: expected round %d, got %d" t.used block.Block.round)
  else if not (String.equal block.Block.prev_hash (head_hash t)) then
    Error "ledger: prev_hash does not match head"
  else begin
    if t.used = Array.length !(t.blocks) then begin
      let n = max 64 (2 * Array.length !(t.blocks)) in
      let grown = Array.make n block in
      Array.blit !(t.blocks) 0 grown 0 t.used;
      t.blocks := grown
    end;
    !(t.blocks).(t.used) <- block;
    t.used <- t.used + 1;
    t.head_valid <- false;
    Ok ()
  end

let append_exn t block =
  match append t block with Ok () -> () | Error e -> failwith e

let length t = t.used

let get t round = if round >= 0 && round < t.used then Some !(t.blocks).(round) else None

let validate t =
  let rec go i prev =
    if i = t.used then Ok ()
    else
      let b = !(t.blocks).(i) in
      if b.Block.round <> i then Error (Printf.sprintf "bad round at %d" i)
      else if not (String.equal b.Block.prev_hash prev) then
        Error (Printf.sprintf "hash chain broken at round %d" i)
      else go (i + 1) (Block.hash b)
  in
  go 0 t.genesis

let iter t f =
  for i = 0 to t.used - 1 do
    f !(t.blocks).(i)
  done

let prefix t ~upto =
  let n = min (max upto 0) t.used in
  Array.init n (fun i -> !(t.blocks).(i))

(* Speculative rollback: drop every block at or above [round]. The array
   keeps its capacity (dropped slots are overwritten by re-appends); the
   cached head hashed a now-dropped block, so it is invalidated. *)
let truncate_to t ~round =
  if round >= 0 && round < t.used then begin
    t.used <- round;
    t.head_valid <- false
  end

let install t blocks =
  t.blocks := Array.copy blocks;
  t.used <- Array.length blocks;
  (* The cached head hashed the pre-install chain; recompute lazily from
     the installed blocks or the next append chains off a stale head. *)
  t.head_valid <- false
