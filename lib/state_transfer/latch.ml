type entry = {
  seq : Rcc_common.Ids.round;
  head : string;
  kv : (int * int * int) array option;
  mutable kv_digest : string option;
}

type t = {
  interval : int;
  ring : entry option array;
  mutable next : int;  (* ring write cursor *)
  mutable latest_seq : int;
}

let create ?(capacity = 4) ~interval () =
  {
    interval;
    ring = Array.make (max 1 capacity) None;
    next = 0;
    latest_seq = -1;
  }

let interval t = t.interval

let boundary t ~executed =
  if t.interval <= 0 then None
  else
    let seq = executed + 1 in
    if seq > 0 && seq mod t.interval = 0 && seq > t.latest_seq then Some seq
    else None

let record t ~seq ~head ~kv =
  if seq > t.latest_seq then begin
    t.ring.(t.next) <- Some { seq; head; kv; kv_digest = None };
    t.next <- (t.next + 1) mod Array.length t.ring;
    t.latest_seq <- seq
  end

let latest t =
  let found = ref None in
  Array.iter
    (fun e ->
      match (e, !found) with
      | Some e, Some (f : entry) -> if e.seq > f.seq then found := Some e
      | Some e, None -> found := Some e
      | None, _ -> ())
    t.ring;
  !found

let find t ~seq =
  let found = ref None in
  Array.iter
    (fun e ->
      match e with
      | Some e when e.seq = seq -> found := Some e
      | Some _ | None -> ())
    t.ring;
  !found

let digest_of e =
  match e.kv_digest with
  | Some d -> d
  | None ->
      let d = Rcc_storage.Snapshot.kv_digest e.kv in
      e.kv_digest <- Some d;
      d
