(** The state-transfer state machine: gap detection, snapshot fetch,
    verification, and install for lagging and healed replicas.

    One manager runs per replica, driven by three inputs: the execution
    callback ({!on_executed}, which also latches boundaries), the liveness
    monitor's heartbeat ({!tick}), and routed [Snapshot_request] /
    [Snapshot_reply] traffic ({!on_msg}). Checkpoint votes observed on the
    wire ({!observe_checkpoint}) give passive gap detection the moment a
    healed replica reconnects, without waiting out a stall timeout.

    Protocol (two phases):

    + {b Probe.} A replica whose execution frontier has stalled past the
      replica timeout — or that observes checkpoint votes far beyond its
      frontier — broadcasts [Snapshot_request {fetch = false}] carrying
      its frontier. Peers answer light offers from their latest boundary
      latch: [(seq, head, kv digest)] plus supporting attesters, no
      payload.
    + {b Fetch.} Once [f+1] distinct peers offer the {e same}
      [(seq, head, kv)] triple — so at least one correct replica attests
      it — and the boundary is far enough ahead to be worth installing,
      the requester fetches the full blob from one offerer. A donor that
      times out or serves a blob failing verification is dropped and the
      next offerer tried; when offerers run out the manager returns to
      idle and re-probes.

    Verification before install is pure recomputation: the blob must
    decode, its chain must link genesis-to-head covering exactly [seq]
    rounds, the recomputed head must equal the attested one, and the
    recomputed KV digest must equal the attested one. A byzantine donor
    can therefore waste one fetch round-trip but cannot make a correct
    replica install wrong state (see {!Rcc_storage.Snapshot}).

    Fault-free runs never probe (the frontier never stalls and observed
    checkpoint votes never outrun it), so the manager adds no messages,
    no events, and no metric changes to them. *)

type hooks = {
  n : int;
  f : int;
  self : Rcc_common.Ids.replica_id;
  engine : Rcc_sim.Engine.t;
  timeout : Rcc_sim.Engine.time;
      (** stall threshold for probing and per-donor fetch timeout *)
  checkpoint_interval : int;
      (** boundaries latch every [4 * checkpoint_interval] rounds;
          [<= 0] disables the manager entirely *)
  materialized : bool;
      (** this replica executes against a real KV table, so a snapshot
          without a KV section is useless to it *)
  primaries : Rcc_common.Ids.replica_id list;
      (** initial primary assignment — pins the genesis hash *)
  send : dst:Rcc_common.Ids.replica_id -> Rcc_messages.Msg.t -> unit;
  broadcast : Rcc_messages.Msg.t -> unit;
  head : unit -> string;  (** current ledger head hash (boundary latching) *)
  kv_entries : unit -> (int * int * int) array option;
      (** canonical copy of the KV table, [None] if not materialized *)
  blocks_prefix : upto:Rcc_common.Ids.round -> Rcc_storage.Block.t array;
  replied_entries :
    unit ->
    (Rcc_common.Ids.client_id * string * Rcc_common.Ids.round * string) list;
      (** live duplicate-reply cache, for donors to bundle *)
  executed_upto : unit -> Rcc_common.Ids.round;
      (** highest executed round (-1 if none) *)
  attesters : seq:Rcc_common.Ids.round -> Rcc_common.Ids.replica_id list;
      (** checkpoint attesters this replica can vouch for at [seq] *)
  corrupt_reply : unit -> bool;
      (** byzantine donor knob: serve bit-flipped snapshot payloads *)
  install : Rcc_storage.Snapshot.t ->
            proof:Rcc_storage.Checkpoint_store.proof -> unit;
      (** install a verified snapshot wholesale: ledger, KV table, exec
          frontier, per-instance logs. Runs only after every check above
          passed; [proof] carries the attested boundary for the
          instances' checkpoint machinery. *)
}

type stats = {
  installs : int;  (** snapshots installed *)
  rejects : int;  (** fetches rejected (bad blob or donor timeout) *)
  rounds_skipped : int;  (** consensus rounds covered by installs *)
  bytes_in : int;  (** snapshot payload bytes received *)
  bytes_out : int;  (** snapshot payload bytes served *)
}

type t

val create : hooks -> t

val stats : t -> stats

val on_executed : t -> round:Rcc_common.Ids.round -> unit
(** Note execution progress; latch the boundary if [round] completed
    one. Call from the execution callback for every executed round. *)

val observe_checkpoint : t -> seq:Rcc_common.Ids.round -> unit
(** A checkpoint vote for [seq] passed through this replica's router.
    Votes far beyond the execution frontier mean the cluster moved on
    without us — probe immediately instead of waiting out the stall
    timeout. *)

val tick : t -> unit
(** Heartbeat: probe on a stalled frontier, expire a probe that drew no
    quorum of offers, fail over a fetch whose donor went quiet. *)

val on_msg : t -> src:Rcc_common.Ids.replica_id -> Rcc_messages.Msg.t -> unit
(** Handle routed [Snapshot_request] / [Snapshot_reply] traffic (other
    messages are ignored). *)
