(** Snapshot boundary latches.

    Every replica latches [(seq, head hash)] — and, when it materializes
    state, a canonical copy of the key-value table — each time execution
    crosses a snapshot boundary. A donor serves snapshot offers and
    fetches from its latest latch, so the state it vouches for is the
    state {e as of the boundary}, not the moving live state, and any two
    honest donors latching the same boundary vouch for identical bytes.

    Latching is O(state) copying but allocates no simulation events and
    sends no messages, so fault-free runs are byte-identical with or
    without it. The KV digest is NOT computed at latch time — only
    memoized on first use — because offers are rare and digesting the
    table every boundary would tax the fault-free hot path for nothing. *)

type entry = {
  seq : Rcc_common.Ids.round;  (** state after rounds [< seq] *)
  head : string;  (** ledger head hash at the boundary *)
  kv : (int * int * int) array option;
      (** canonical KV triples; [None] when state is not materialized *)
  mutable kv_digest : string option;  (** memoized {!Rcc_storage.Snapshot.kv_digest} *)
}

type t

val create : ?capacity:int -> interval:int -> unit -> t
(** Ring of the newest [capacity] (default 4) boundary latches, one
    every [interval] rounds. [interval <= 0] disables latching entirely
    ({!boundary} always [None]). *)

val interval : t -> int

val boundary : t -> executed:Rcc_common.Ids.round -> Rcc_common.Ids.round option
(** [Some seq] when executing round [executed] just completed boundary
    [seq = executed + 1] (a positive multiple of the interval) that has
    not been latched yet. *)

val record :
  t ->
  seq:Rcc_common.Ids.round ->
  head:string ->
  kv:(int * int * int) array option ->
  unit
(** Latch a boundary. Must arrive with increasing [seq]; stale ones are
    ignored. *)

val latest : t -> entry option

val find : t -> seq:Rcc_common.Ids.round -> entry option

val digest_of : entry -> string
(** The entry's KV digest ([""] for non-materialized state), memoized. *)
