open Rcc_common.Ids
module Engine = Rcc_sim.Engine
module Msg = Rcc_messages.Msg
module Snapshot = Rcc_storage.Snapshot
module Store = Rcc_storage.Checkpoint_store
module Event = Rcc_trace.Event

type hooks = {
  n : int;
  f : int;
  self : replica_id;
  engine : Engine.t;
  timeout : Engine.time;
  checkpoint_interval : int;
  materialized : bool;
  primaries : replica_id list;
  send : dst:replica_id -> Msg.t -> unit;
  broadcast : Msg.t -> unit;
  head : unit -> string;
  kv_entries : unit -> (int * int * int) array option;
  blocks_prefix : upto:round -> Rcc_storage.Block.t array;
  replied_entries : unit -> (client_id * string * round * string) list;
  executed_upto : unit -> round;
  attesters : seq:round -> replica_id list;
  corrupt_reply : unit -> bool;
  install : Snapshot.t -> proof:Store.proof -> unit;
}

type stats = {
  installs : int;
  rejects : int;
  rounds_skipped : int;
  bytes_in : int;
  bytes_out : int;
}

(* One distinct (seq, head, kv) triple seen among offers, with the
   replicas standing behind it. f+1 of them means at least one correct
   replica attests the triple. *)
type offer = {
  o_seq : round;
  o_head : string;
  o_kv : string;
  mutable o_srcs : replica_id list;  (* distinct offerers, newest first *)
  mutable o_attesters : replica_id list;  (* supporting checkpoint evidence *)
}

type fetch = {
  fx_seq : round;
  fx_head : string;
  fx_kv : string;
  fx_attesters : replica_id list;
  mutable fx_candidates : replica_id list;  (* donors not yet tried *)
  mutable fx_donor : replica_id;
  mutable fx_started : Engine.time;
}

type probing = {
  mutable pr_started : Engine.time;
  mutable pr_offers : offer list;
}

type phase = Idle | Probing of probing | Fetching of fetch

type t = {
  hooks : hooks;
  latch : Latch.t;
  mutable phase : phase;
  mutable last_exec : round;
  mutable last_change : Engine.time;
  mutable installs : int;
  mutable rejects : int;
  mutable rounds_skipped : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

(* Snapshot boundaries are sparser than checkpoint boundaries: latching
   copies the KV table, so doing it every checkpoint would tax the
   fault-free hot path for a state few peers will ever fetch. *)
let snap_multiple = 4

let create hooks =
  let interval =
    if hooks.checkpoint_interval > 0 then
      snap_multiple * hooks.checkpoint_interval
    else 0
  in
  {
    hooks;
    latch = Latch.create ~interval ();
    phase = Idle;
    last_exec = -1;
    last_change = Engine.now hooks.engine;
    installs = 0;
    rejects = 0;
    rounds_skipped = 0;
    bytes_in = 0;
    bytes_out = 0;
  }

let stats t =
  {
    installs = t.installs;
    rejects = t.rejects;
    rounds_skipped = t.rounds_skipped;
    bytes_in = t.bytes_in;
    bytes_out = t.bytes_out;
  }

let enabled t = Latch.interval t.latch > 0

let trace t payload =
  if Engine.tracing t.hooks.engine then
    Engine.trace t.hooks.engine ~replica:t.hooks.self ~instance:(-1) payload

let note_progress t ~round =
  if round > t.last_exec then begin
    t.last_exec <- round;
    t.last_change <- Engine.now t.hooks.engine
  end

let on_executed t ~round =
  note_progress t ~round;
  match Latch.boundary t.latch ~executed:round with
  | Some seq ->
      Latch.record t.latch ~seq ~head:(t.hooks.head ())
        ~kv:(t.hooks.kv_entries ())
  | None -> ()

(* --- requester side --------------------------------------------------- *)

let probe t =
  let now = Engine.now t.hooks.engine in
  t.phase <- Probing { pr_started = now; pr_offers = [] };
  let frontier = t.hooks.executed_upto () + 1 in
  trace t (Event.St_request { seq = frontier; fetch = false });
  t.hooks.broadcast (Msg.Snapshot_request { sr_seq = frontier; fetch = false })

let send_fetch t (fx : fetch) =
  fx.fx_started <- Engine.now t.hooks.engine;
  trace t (Event.St_request { seq = fx.fx_seq; fetch = true });
  t.hooks.send ~dst:fx.fx_donor
    (Msg.Snapshot_request { sr_seq = fx.fx_seq; fetch = true })

let next_donor t (fx : fetch) =
  match fx.fx_candidates with
  | donor :: rest ->
      fx.fx_candidates <- rest;
      fx.fx_donor <- donor;
      send_fetch t fx
  | [] ->
      (* Offerers exhausted; back to idle — the next stalled tick
         re-probes from scratch. *)
      t.phase <- Idle

let reject t (fx : fetch) ~donor ~reason =
  t.rejects <- t.rejects + 1;
  trace t (Event.St_rejected { seq = fx.fx_seq; donor; reason });
  next_donor t fx

(* Fetch once some (seq, head, kv) triple has f+1 distinct offerers and
   covers at least one checkpoint interval we lack — installing anything
   closer is not worth the payload; ordinary contract recovery covers it. *)
let try_begin_fetch t offers =
  let executed = t.hooks.executed_upto () in
  let qualifying =
    List.filter
      (fun o ->
        List.length o.o_srcs >= t.hooks.f + 1
        && o.o_seq >= executed + 1 + t.hooks.checkpoint_interval
        && ((not t.hooks.materialized) || o.o_kv <> ""))
      offers
  in
  match qualifying with
  | [] -> ()
  | first :: rest -> (
      let best =
        List.fold_left (fun a b -> if b.o_seq > a.o_seq then b else a) first rest
      in
      trace t
        (Event.St_gap { behind = best.o_seq - 1 - executed; target = best.o_seq });
      match List.rev best.o_srcs (* arrival order *) with
      | [] -> ()
      | donor :: candidates ->
          let fx =
            {
              fx_seq = best.o_seq;
              fx_head = best.o_head;
              fx_kv = best.o_kv;
              fx_attesters =
                List.sort_uniq compare (best.o_srcs @ best.o_attesters);
              fx_candidates = candidates;
              fx_donor = donor;
              fx_started = Engine.now t.hooks.engine;
            }
          in
          t.phase <- Fetching fx;
          send_fetch t fx)

let on_offer t ~src ~sp_seq ~sp_head ~sp_kv ~sp_attesters =
  match t.phase with
  | Probing p ->
      let o =
        match
          List.find_opt
            (fun o ->
              o.o_seq = sp_seq
              && String.equal o.o_head sp_head
              && String.equal o.o_kv sp_kv)
            p.pr_offers
        with
        | Some o -> o
        | None ->
            let o =
              {
                o_seq = sp_seq;
                o_head = sp_head;
                o_kv = sp_kv;
                o_srcs = [];
                o_attesters = [];
              }
            in
            p.pr_offers <- o :: p.pr_offers;
            o
      in
      if not (List.mem src o.o_srcs) then o.o_srcs <- src :: o.o_srcs;
      if sp_attesters <> [] then
        o.o_attesters <- List.sort_uniq compare (sp_attesters @ o.o_attesters);
      try_begin_fetch t p.pr_offers
  | Idle | Fetching _ -> ()

let on_full_reply t ~src ~sp_seq blob =
  match t.phase with
  | Fetching fx when fx.fx_donor = src && fx.fx_seq = sp_seq -> begin
      t.bytes_in <- t.bytes_in + String.length blob;
      match Snapshot.decode blob with
      | Error e -> reject t fx ~donor:src ~reason:("decode: " ^ e)
      | Ok snap -> (
          match Snapshot.verify ~primaries:t.hooks.primaries snap with
          | Error e ->
              reject t fx ~donor:src ~reason:("chain: " ^ e)
          | Ok head ->
              if not (String.equal head fx.fx_head) then
                reject t fx ~donor:src ~reason:"head mismatch"
              else if
                not (String.equal (Snapshot.kv_digest snap.Snapshot.kv) fx.fx_kv)
              then reject t fx ~donor:src ~reason:"kv digest mismatch"
              else begin
                trace t (Event.St_verified { seq = snap.Snapshot.seq });
                (* Ordinary recovery may have caught us up while the blob
                   was in flight; install only if it still advances us. *)
                let gap = snap.Snapshot.seq - 1 - t.hooks.executed_upto () in
                if gap > 0 then begin
                  t.hooks.install snap
                    ~proof:
                      {
                        Store.seq = snap.Snapshot.seq;
                        state_digest = head;
                        attesters = fx.fx_attesters;
                      };
                  t.installs <- t.installs + 1;
                  t.rounds_skipped <- t.rounds_skipped + gap;
                  trace t
                    (Event.St_installed
                       {
                         seq = snap.Snapshot.seq;
                         rounds = gap;
                         bytes = String.length blob;
                       })
                end;
                t.phase <- Idle;
                note_progress t ~round:(t.hooks.executed_upto ())
              end)
    end
  | Fetching _ | Probing _ | Idle -> ()

(* --- donor side ------------------------------------------------------- *)

let on_offer_probe t ~src ~sr_seq =
  match Latch.latest t.latch with
  | Some e when e.seq > sr_seq ->
      t.hooks.send ~dst:src
        (Msg.Snapshot_reply
           {
             sp_seq = e.seq;
             sp_head = e.head;
             sp_kv = Latch.digest_of e;
             sp_attesters = t.hooks.attesters ~seq:e.seq;
             sp_payload = None;
           })
  | Some _ | None -> ()

(* Flip a byte every ~1/64th of the blob rather than one byte total: a
   single flip can land in a field excluded from block identity
   (certificate digests, primary sets) and sail through verification,
   which would make the corruption a no-op instead of an attack. *)
let corrupt blob =
  let b = Bytes.of_string blob in
  let len = Bytes.length b in
  let step = max 1 (len / 64) in
  let i = ref (step / 2) in
  while !i < len do
    Bytes.set b !i (Char.chr (Char.code (Bytes.get b !i) lxor 0xff));
    i := !i + step
  done;
  Bytes.unsafe_to_string b

let on_fetch t ~src ~sr_seq =
  match Latch.find t.latch ~seq:sr_seq with
  | None -> ()  (* latch rotated out; the requester's timeout fails over *)
  | Some e ->
      let blocks = t.hooks.blocks_prefix ~upto:e.seq in
      (* A donor that itself installed a snapshot may hold a ledger
         shorter than its latch claims only transiently; never serve a
         partial prefix. *)
      if Array.length blocks = e.seq then begin
        let replied =
          List.filter (fun (_, _, r, _) -> r < e.seq) (t.hooks.replied_entries ())
        in
        let blob =
          Snapshot.encode { Snapshot.seq = e.seq; blocks; kv = e.kv; replied }
        in
        let blob = if t.hooks.corrupt_reply () then corrupt blob else blob in
        t.bytes_out <- t.bytes_out + String.length blob;
        trace t
          (Event.St_served { seq = e.seq; bytes = String.length blob; dst = src });
        t.hooks.send ~dst:src
          (Msg.Snapshot_reply
             {
               sp_seq = e.seq;
               sp_head = e.head;
               sp_kv = Latch.digest_of e;
               sp_attesters = t.hooks.attesters ~seq:e.seq;
               sp_payload = Some blob;
             })
      end

(* --- drivers ---------------------------------------------------------- *)

let observe_checkpoint t ~seq =
  if enabled t then
    match t.phase with
    | Idle ->
        (* Checkpoint votes more than two intervals past our frontier
           cannot be explained by ordinary pipeline skew: the cluster
           moved on without us. Probe now instead of waiting out the
           stall timeout. *)
        if seq > t.hooks.executed_upto () + (2 * t.hooks.checkpoint_interval)
        then probe t
    | Probing _ | Fetching _ -> ()

let tick t =
  if enabled t then begin
    let now = Engine.now t.hooks.engine in
    match t.phase with
    | Idle ->
        if now - t.last_change > t.hooks.timeout then begin
          (* Also throttles: a partitioned replica whose probes vanish
             re-probes once per timeout, not once per tick. *)
          t.last_change <- now;
          probe t
        end
    | Probing p -> if now - p.pr_started > t.hooks.timeout then t.phase <- Idle
    | Fetching fx ->
        if now - fx.fx_started > t.hooks.timeout then
          reject t fx ~donor:fx.fx_donor ~reason:"timeout"
  end

let on_msg t ~src msg =
  if enabled t then
    match msg with
    | Msg.Snapshot_request { sr_seq; fetch = false } ->
        on_offer_probe t ~src ~sr_seq
    | Msg.Snapshot_request { sr_seq; fetch = true } -> on_fetch t ~src ~sr_seq
    | Msg.Snapshot_reply { sp_seq; sp_head; sp_kv; sp_attesters; sp_payload = None }
      ->
        on_offer t ~src ~sp_seq ~sp_head ~sp_kv ~sp_attesters
    | Msg.Snapshot_reply { sp_seq; sp_payload = Some blob; _ } ->
        on_full_reply t ~src ~sp_seq blob
    | _ -> ()
