open Rcc_common.Ids
module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Cpu = Rcc_sim.Cpu
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Node = Rcc_replica.Node
module Exec = Rcc_replica.Exec
module Env = Rcc_replica.Instance_env
module Transfer = Rcc_state_transfer.Manager

type config = {
  n : int;
  f : int;
  z : int;
  self : replica_id;
  costs : Rcc_sim.Costs.t;
  timeout : Rcc_sim.Engine.time;
  heartbeat : Rcc_sim.Engine.time;
  collusion_wait : Rcc_sim.Engine.time;
  checkpoint_interval : int;
  unified : bool;
  recovery : Coordinator.recovery_mode;
  min_cert : int;
  history_capacity : int;
  use_permutation : bool;
  exec_on_worker : bool;
  (* Parallel execution (conflict-aware scheduler). [parallel_exec =
     false] is the serial ablation, byte-identical to the historical
     execute thread. *)
  parallel_exec : bool;
  exec_threads : int;
  exec_window : int;
  sign_speculative : bool;
  records : int;
  materialize_state : bool;
  input_threads : int;
  batch_threads : int;
  client_node_of : client_id -> int;
  byz : Rcc_replica.Byz.t;
  (* Durable write-ahead journal for this incarnation, attached over the
     replica's persistent [Sim_disk]; [None] = in-memory-only replica
     (the digest-gated default). *)
  journal : Rcc_journal.Journal.t option;
}

module Make (P : Rcc_replica.Instance_intf.S) = struct
  type t = {
    cfg : config;
    keychain : Rcc_crypto.Keychain.t;
    node : Node.t;
    instances : P.t array;
    exec : Exec.t;
    coordinator : Coordinator.t option;
    store : Rcc_storage.Kv_store.t;
    ledger : Rcc_storage.Ledger.t;
    txn_table : Rcc_storage.Txn_table.t;
    client_map : Client_map.t;
    transfer : Transfer.t;
    mutable false_blames_sent : bool;
    mutable halted : bool;
  }

  let config t = t.cfg
  let instance t x = t.instances.(x)
  let exec t = t.exec
  let journal t = t.cfg.journal
  let coordinator t = t.coordinator
  let store t = t.store
  let ledger t = t.ledger
  let txn_table t = t.txn_table
  let transfer_stats t = Transfer.stats t.transfer
  let log_stats t x = P.log_stats t.instances.(x)

  let exec_utilization t ~since =
    Cpu.utilization (Node.exec_server t.node) ~since

  let exec_pool_utilization t ~since =
    Option.map (fun pool -> Cpu.pool_utilization pool ~since)
      (Node.exec_pool t.node)

  let worker_utilization t x ~since = Cpu.utilization (Node.worker t.node x) ~since

  let current_primary t x =
    match t.coordinator with
    | Some c -> Coordinator.primary_of c x
    | None -> P.primary t.instances.(x)

  (* Figure 12's false-alarm attack: on witnessing any view-change, a
     byzantine replica accuses the non-faulty primaries on its list, each
     exactly once. *)
  let maybe_false_blame t broadcast =
    match t.cfg.byz.Rcc_replica.Byz.false_blame with
    | [] -> ()
    | targets ->
        if not t.false_blames_sent then begin
          t.false_blames_sent <- true;
          List.iter
            (fun blamed ->
              (* Locate the instance the target currently leads. *)
              let rec find x =
                if x >= t.cfg.z then None
                else if current_primary t x = blamed then Some x
                else find (x + 1)
              in
              match find 0 with
              | None -> ()
              | Some instance ->
                  (* The accusation is authenticated — the attack is lying,
                     not forging: the blamer signs a false claim under its
                     own key, exactly what a real byzantine replica can do. *)
                  let round = Exec.next_round t.exec in
                  let view =
                    match t.coordinator with
                    | Some c -> Coordinator.view_of c instance
                    | None -> 0
                  in
                  let signature =
                    Rcc_crypto.Signature.sign
                      (Rcc_crypto.Keychain.replica_secret t.keychain t.cfg.self)
                      (Coordinator.blame_digest ~instance ~view ~blamed ~round)
                  in
                  broadcast
                    (Msg.View_change
                       {
                         instance;
                         new_view = view + 1;
                         blamed;
                         round;
                         last_exec = round - 1;
                         signature;
                       }))
            targets
        end

  (* Messages carrying an out-of-range instance id (byzantine or stray
     standalone traffic) are routed to instance 0 rather than dropped. *)
  let clamp_instance cfg instance = if instance < cfg.z then instance else 0

  let install_route t =
    let cfg = t.cfg in
    let costs = Node.costs t.node in
    let exec_server = Node.exec_server t.node in
    let worker_of instance = Node.worker t.node (clamp_instance cfg instance) in
    let coordinator_cost (msg : Msg.t) =
      costs.Costs.worker_msg + costs.Costs.mac_verify
      + Costs.hash_cost costs (Msg.size msg)
    in
    Node.set_route t.node (fun ~src ~ready msg ->
        match msg with
        | Msg.Client_request { instance; batch } -> begin
            let x = clamp_instance cfg instance in
            (* §3.1 request-duplication prevention: clients are partitioned
               over instances deterministically, so a request is only
               ordered by the instance the client currently maps to. *)
            let mapped =
              cfg.z = 1
              || Client_map.current_instance t.client_map batch.Batch.client = x
            in
            match Node.batchers t.node with
            | None -> ()
            | Some _ when cfg.byz.Rcc_replica.Byz.ignore_clients ->
                (* §3.6: a malicious primary starving its clients. *)
                ()
            | Some _ when not mapped -> ()
            | Some pool ->
                let batched =
                  Cpu.pool_reserve pool ~ready
                    ~cost:(costs.Costs.batch_create + costs.Costs.sig_verify)
                in
                Cpu.submit_ready (worker_of x) ~ready:batched
                  ~cost:costs.Costs.worker_msg (fun () ->
                    if Batch.verify batch ~public:(Rcc_crypto.Keychain.client_public t.keychain batch.Batch.client)
                    then P.submit_batch t.instances.(x) batch)
          end
        | Msg.View_change { instance; new_view; blamed; round; signature; _ } -> begin
            (match t.coordinator with
            | Some coordinator ->
                Cpu.submit_ready exec_server ~ready ~cost:(coordinator_cost msg)
                  (fun () ->
                    Coordinator.on_view_change coordinator ~src ~instance
                      ~view:(new_view - 1) ~blamed ~round ~signature)
            | None ->
                let x = clamp_instance cfg instance in
                Cpu.submit_ready (worker_of x) ~ready ~cost:(P.cost_of costs msg)
                  (fun () -> P.handle t.instances.(x) ~src msg));
            if cfg.byz.Rcc_replica.Byz.false_blame <> [] then
              let _send, broadcast = Node.sender t.node ~worker:exec_server in
              maybe_false_blame t (fun m -> broadcast ~n:cfg.n m)
          end
        | Msg.Contract _ -> begin
            match t.coordinator with
            | Some coordinator ->
                Cpu.submit_ready exec_server ~ready ~cost:(coordinator_cost msg)
                  (fun () -> Coordinator.on_contract coordinator msg)
            | None -> ()
          end
        | Msg.Contract_request { round; _ } -> begin
            match t.coordinator with
            | Some coordinator ->
                Cpu.submit_ready exec_server ~ready ~cost:(coordinator_cost msg)
                  (fun () -> Coordinator.on_contract_request coordinator ~src ~round)
            | None -> ()
          end
        | Msg.View_sync { instance; view; primary; kmal; cert } -> begin
            match t.coordinator with
            | Some coordinator ->
                Cpu.submit_ready exec_server ~ready ~cost:(coordinator_cost msg)
                  (fun () ->
                    Coordinator.on_view_sync coordinator ~instance ~view
                      ~primary ~kmal ~cert)
            | None -> ()
          end
        | Msg.Instance_change { client; instance } ->
            (* §3.6: accept the defection unless the instance is already
               at its adopted-client capacity (anti-flooding). *)
            if instance < cfg.z then
              ignore
                (Client_map.request_change t.client_map ~client ~target:instance)
        | Msg.Response _ | Msg.Local_commit _ ->
            (* Replica-to-client traffic; replicas ignore stray copies. *)
            ()
        | Msg.Snapshot_request _ | Msg.Snapshot_reply _ ->
            (* State transfer is the execute thread's concern: snapshots
               read and write the ledger / KV store, which protocol
               workers never touch. *)
            Cpu.submit_ready exec_server ~ready ~cost:(coordinator_cost msg)
              (fun () -> Transfer.on_msg t.transfer ~src msg)
        | Msg.Checkpoint { seq; _ } ->
            (* Passive gap detection: a checkpoint vote far past our
               execution frontier means the cluster moved on without us.
               The observation itself is a frontier comparison — free —
               so it rides the normal worker dispatch below. *)
            Transfer.observe_checkpoint t.transfer ~seq;
            let x =
              match Msg.instance_of msg with
              | Some instance -> clamp_instance cfg instance
              | None -> 0
            in
            Cpu.submit_ready (worker_of x) ~ready ~cost:(P.cost_of costs msg)
              (fun () -> P.handle t.instances.(x) ~src msg)
        | Msg.Pre_prepare _ | Msg.Prepare _ | Msg.Commit _
        | Msg.New_view _ | Msg.Order_request _ | Msg.Commit_cert _
        | Msg.Hs_proposal _ | Msg.Hs_vote _ ->
            let x =
              match Msg.instance_of msg with
              | Some instance -> clamp_instance cfg instance
              | None -> 0
            in
            Cpu.submit_ready (worker_of x) ~ready ~cost:(P.cost_of costs msg)
              (fun () -> P.handle t.instances.(x) ~src msg))

  let create ~engine ~net ~keychain ~metrics cfg =
    let node =
      Node.create ~engine ~net ~costs:cfg.costs ~self:cfg.self ~z:cfg.z
        ~has_batchers:true ~input_threads:cfg.input_threads
        ~batch_threads:cfg.batch_threads
        ?exec_pool_size:(if cfg.parallel_exec then Some cfg.exec_threads else None)
        ()
    in
    let store = Rcc_storage.Kv_store.create () in
    if cfg.materialize_state then
      Rcc_storage.Kv_store.init_records store ~count:cfg.records;
    let initial_primaries = List.init cfg.z (fun x -> x) in
    let ledger = Rcc_storage.Ledger.create ~primaries:initial_primaries in
    let txn_table = Rcc_storage.Txn_table.create () in
    let coordinator_ref = ref None in
    let primaries () =
      match !coordinator_ref with
      | Some c -> Coordinator.primaries c
      | None -> initial_primaries
    in
    let respond client msg =
      Node.send_direct node ~dst:(cfg.client_node_of client) msg
    in
    let reorder accs =
      if cfg.use_permutation && Array.length accs > 1 then begin
        let digests =
          Array.to_list
            (Array.map
               (fun (a : Rcc_replica.Acceptance.t) -> a.batch.Batch.digest)
               accs)
        in
        let order =
          Permutation.order_of_round ~digests ~len:(Array.length accs)
        in
        Array.map (fun i -> accs.(i)) order
      end
      else accs
    in
    let exec_server =
      if cfg.exec_on_worker then Node.worker node 0 else Node.exec_server node
    in
    let sched =
      match Node.exec_pool node with
      | Some pool when cfg.parallel_exec ->
          Exec.Parallel { pool; window = max 1 cfg.exec_window }
      | Some _ | None -> Exec.Serial
    in
    let exec =
      Exec.create ~engine ~costs:cfg.costs ~server:exec_server ~z:cfg.z
        ~self:cfg.self ~store ~ledger ~txn_table ~current_primaries:primaries
        ~respond ~metrics ~reorder ~materialize:cfg.materialize_state
        ~sign_speculative:cfg.sign_speculative ~sched ()
    in
    (match cfg.journal with
    | Some j ->
        Exec.set_persist exec
          {
            Exec.p_round =
              (fun ~round ordered ->
                Rcc_journal.Journal.log_round j ~round
                  ~primaries:(primaries ()) ordered);
            p_rollback =
              (fun ~frontier -> Rcc_journal.Journal.log_rollback j ~frontier);
            p_stable =
              (fun ~floor -> Rcc_journal.Journal.log_stable j ~floor);
          }
    | None -> ());
    let instances =
      Array.init cfg.z (fun x ->
          let worker = Node.worker node x in
          let send, broadcast = Node.sender node ~worker in
          let env =
            {
              Env.n = cfg.n;
              f = cfg.f;
              z = cfg.z;
              instance = x;
              self = cfg.self;
              engine;
              costs = cfg.costs;
              timeout = cfg.timeout;
              checkpoint_interval = cfg.checkpoint_interval;
              send = (fun ?sign ~dst msg -> send ?sign ~dst msg);
              broadcast =
                (fun ?sign ?exclude msg -> broadcast ?sign ?exclude ~n:cfg.n msg);
              respond =
                (fun client msg ->
                  send ~dst:(cfg.client_node_of client) msg);
              accept = (fun acceptance -> Exec.notify exec acceptance);
              on_stable = (fun ~seq -> Exec.on_stable exec ~instance:x ~seq);
              rollback =
                (fun ~frontier ->
                  (* The coordinator's retained history must drop the
                     unwound rounds before the execute stage re-buffers
                     them, or recovery could serve pre-rollback orders. *)
                  (match !coordinator_ref with
                  | Some c -> Coordinator.on_rollback c ~frontier
                  | None -> ());
                  Exec.rollback_to exec ~frontier ~instance:x);
              report_failure =
                (fun ~round ~blamed ->
                  match !coordinator_ref with
                  | Some c ->
                      Coordinator.on_local_failure c ~instance:x ~round ~blamed
                  | None -> ());
              sign_blame =
                (fun ~view ~blamed ~round ->
                  Rcc_crypto.Signature.sign
                    (Rcc_crypto.Keychain.replica_secret keychain cfg.self)
                    (Coordinator.blame_digest ~instance:x ~view ~blamed ~round));
              byz = cfg.byz;
              unified = cfg.unified;
            }
          in
          P.create (Env.instrument env))
    in
    let coordinator =
      if cfg.unified then begin
        let send, broadcast = Node.sender node ~worker:(Node.exec_server node) in
        let handles =
          Array.map
            (fun inst ->
              {
                Coordinator.h_set_primary =
                  (fun r ~view -> P.set_primary inst r ~view);
                h_adopt = (fun ~round batch ~cert -> P.adopt inst ~round batch ~cert);
                h_accepted = (fun ~round -> P.accepted_batch inst ~round);
                h_incomplete = (fun () -> P.incomplete_rounds inst);
                h_primary = (fun () -> P.primary inst);
              })
            instances
        in
        let c =
          Coordinator.create
            {
              Coordinator.n = cfg.n;
              f = cfg.f;
              z = cfg.z;
              self = cfg.self;
              collusion_wait = cfg.collusion_wait;
              recovery = cfg.recovery;
              min_cert = cfg.min_cert;
              history_capacity = cfg.history_capacity;
            }
            ~engine ~keychain ~handles ~exec ~metrics
            ~broadcast:(fun ?size msg -> broadcast ?size ~n:cfg.n msg)
            ~send:(fun ?size ~dst msg -> send ?size ~dst msg)
        in
        coordinator_ref := Some c;
        Some c
      end
      else None
    in
    let transfer =
      let send, broadcast = Node.sender node ~worker:(Node.exec_server node) in
      let ckpt_log () = P.checkpoint_log instances.(0) in
      Transfer.create
        {
          Transfer.n = cfg.n;
          f = cfg.f;
          self = cfg.self;
          engine;
          timeout = cfg.timeout;
          checkpoint_interval = cfg.checkpoint_interval;
          materialized = cfg.materialize_state;
          primaries = initial_primaries;
          send = (fun ~dst msg -> send ~dst msg);
          broadcast = (fun msg -> broadcast ~n:cfg.n msg);
          head = (fun () -> Rcc_storage.Ledger.head_hash ledger);
          kv_entries =
            (fun () ->
              if cfg.materialize_state then
                Some (Rcc_storage.Kv_store.entries store)
              else None);
          blocks_prefix = (fun ~upto -> Rcc_storage.Ledger.prefix ledger ~upto);
          replied_entries = (fun () -> Exec.replied_entries exec);
          executed_upto = (fun () -> Exec.next_round exec - 1);
          attesters =
            (fun ~seq ->
              (* Instance 0's stable checkpoints stand in for the round's:
                 all instances stabilize the same boundaries in lockstep,
                 and the offer quorum re-checks every attester set against
                 f+1 agreeing offerers anyway. *)
              let log = ckpt_log () in
              match Rcc_storage.Checkpoint_store.find log ~seq with
              | Some p -> p.Rcc_storage.Checkpoint_store.attesters
              | None -> (
                  match Rcc_storage.Checkpoint_store.stable log with
                  | Some p when p.Rcc_storage.Checkpoint_store.seq >= seq ->
                      p.Rcc_storage.Checkpoint_store.attesters
                  | Some _ | None -> []));
          corrupt_reply = (fun () -> cfg.byz.Rcc_replica.Byz.corrupt_snapshot);
          install =
            (fun snap ~proof ->
              (* Wholesale install, in dependency order: the chain the
                 digests verified against, the KV table it led to, the
                 execution frontier, then every instance's slot log. The
                 Batch memo and the ledger's cached head are both
                 invalidated so nothing digests against pre-install
                 state. *)
              Rcc_storage.Ledger.install ledger snap.Rcc_storage.Snapshot.blocks;
              Batch.reset_memo ();
              (match snap.Rcc_storage.Snapshot.kv with
              | Some entries when cfg.materialize_state ->
                  Rcc_storage.Kv_store.install store entries
              | Some _ | None -> ());
              Exec.install_snapshot exec ~seq:snap.Rcc_storage.Snapshot.seq
                ~replied:snap.Rcc_storage.Snapshot.replied;
              Array.iter (fun inst -> P.fast_forward inst ~proof) instances);
        }
    in
    (* Durable checkpoint cadence: every state-transfer boundary (4 x the
       protocol checkpoint interval, matching the boundary latch), persist
       a full snapshot into a disk slot. Gated on [Exec.settled] so a
       parallel window mid-flight never leaks a half-executed KV state
       into a durable checkpoint — a skipped boundary just lengthens the
       replay suffix. *)
    let journal_checkpoint =
      match cfg.journal with
      | None -> fun _ -> ()
      | Some j ->
          let interval = max 1 (4 * cfg.checkpoint_interval) in
          fun round ->
            let seq = round + 1 in
            if
              seq mod interval = 0
              && Exec.settled exec
              && Rcc_storage.Ledger.next_round ledger = seq
            then
              Rcc_journal.Journal.write_snapshot j ~seq
                {
                  Rcc_storage.Snapshot.seq;
                  blocks = Rcc_storage.Ledger.prefix ledger ~upto:seq;
                  kv =
                    (if cfg.materialize_state then
                       Some (Rcc_storage.Kv_store.entries store)
                     else None);
                  replied = Exec.replied_entries exec;
                }
    in
    (match coordinator with
    | Some c ->
        Exec.set_on_executed exec (fun round accs ->
            Transfer.on_executed transfer ~round;
            journal_checkpoint round;
            Coordinator.on_round_executed c ~round accs)
    | None ->
        Exec.set_on_executed exec (fun round _ ->
            Transfer.on_executed transfer ~round;
            journal_checkpoint round));
    let t =
      {
        cfg;
        keychain;
        node;
        instances;
        exec;
        coordinator;
        store;
        ledger;
        txn_table;
        (* Adopted-client cap per instance (§3.6 anti-flooding); generous
           relative to the simulated client populations. *)
        client_map = Client_map.create ~z:cfg.z ~cap_per_instance:4096;
        transfer;
        false_blames_sent = false;
        halted = false;
      }
    in
    install_route t;
    t

  (* Round-lockstep liveness monitor. Execution waits for all z instances
     each round (§3.4.1), so an instance without traffic — an idle or
     client-ignoring primary, or a crashed one — would stall every
     replica. Primaries fill short stalls of their own instances with
     null batches; in unified mode a stall past the replica timeout blames
     the missing instances' primaries so the coordinator can replace them. *)
  let monitor t =
    let cfg = t.cfg in
    let engine = Node.engine t.node in
    let last_round = ref (-1) in
    let last_change = ref 0 in
    (* 0, not [min_int]: [now - !last_exchange] must not overflow. A stall
       can only be detected after [timeout] of simulated time anyway. *)
    let last_exchange = ref 0 in
    let last_heartbeat = Array.make cfg.z (-1) in
    let _send, broadcast = Node.sender t.node ~worker:(Node.exec_server t.node) in
    let rec tick () =
      if t.halted then ()
      else begin
      let round = Exec.next_round t.exec in
      let now = Engine.now engine in
      Transfer.tick t.transfer;
      (match t.coordinator with
      | Some c ->
          if cfg.byz.Rcc_replica.Byz.forge_views then
            (* Forged-view attack: claim an inflated view with self as the
               new primary, backed by a fabricated f+1 certificate. The
               votes are signed with OUR key but attributed to other
               replicas, so verification under the claimed accusers' keys
               must fail at every honest coordinator. *)
            for x = 0 to cfg.z - 1 do
              let view = Coordinator.view_of c x + 5 in
              let blamed = current_primary t x in
              let cert =
                List.init (cfg.f + 1) (fun i ->
                    let bv_accuser = (cfg.self + 1 + i) mod cfg.n in
                    let bv_round = round in
                    let bv_sig =
                      Rcc_crypto.Signature.sign
                        (Rcc_crypto.Keychain.replica_secret t.keychain cfg.self)
                        (Coordinator.blame_digest ~instance:x ~view:(view - 1)
                           ~blamed ~round)
                    in
                    { Msg.bv_accuser; bv_round; bv_sig })
              in
              broadcast ~n:cfg.n
                (Msg.View_sync
                   { instance = x; view; primary = cfg.self; kmal = []; cert })
            done
          else Coordinator.gossip_views c
      | None -> ());
      if round <> !last_round then begin
        last_round := round;
        last_change := now
      end
      else begin
        let stalled = now - !last_change in
        let missing = Exec.missing_instances t.exec ~round in
        if stalled > cfg.heartbeat then
          List.iter
            (fun x ->
              let inst = t.instances.(x) in
              let upto = P.proposed_upto inst in
              if
                current_primary t x = cfg.self
                && last_heartbeat.(x) < round
                && upto < round (* max_int opts a protocol out entirely *)
              then begin
                last_heartbeat.(x) <- round;
                (* Fill the idle instance up to the pipeline horizon so it
                   never throttles the round rate; the proposed_upto guard
                   keeps in-flight rounds untouched. *)
                let horizon =
                  max round (min (Exec.max_pending_round t.exec) (round + 64))
                in
                for r = max round (upto + 1) to horizon do
                  P.submit_batch inst (Batch.null ~round:r)
                done
              end)
            missing;
        if cfg.unified && stalled > cfg.timeout && now - !last_exchange > cfg.timeout
        then begin
          (* Escalate once per timeout period for as long as the stall
             lasts — NOT once per round. A round can stay stalled through
             a replacement (the replacement's own repropose can be lost
             to the same link fault that caused the stall), and then the
             new primary must be blamable for the same round or the
             instance wedges forever. Re-blaming is idempotent at the
             coordinator (accuser bitsets), and re-requesting contracts
             covers exchanges that fired while the peers were themselves
             mid-recovery and could only return a partial frontier. *)
          last_exchange := now;
          List.iter
            (fun x ->
              let blamed = current_primary t x in
              let view =
                match t.coordinator with
                | Some c -> Coordinator.view_of c x
                | None -> 0
              in
              (match t.coordinator with
              | Some c -> Coordinator.on_local_failure c ~instance:x ~round ~blamed
              | None -> ());
              let signature =
                Rcc_crypto.Signature.sign
                  (Rcc_crypto.Keychain.replica_secret t.keychain cfg.self)
                  (Coordinator.blame_digest ~instance:x ~view ~blamed ~round)
              in
              broadcast ~n:cfg.n
                (Msg.View_change
                   { instance = x; new_view = view + 1; blamed; round;
                     last_exec = round - 1; signature }))
            missing;
          (* State-exchange (§3.3's checkpoint recovery): ask peers for the
             stalled round's contract directly; any replica that executed
             it answers from its history ring. *)
          match missing with
          | x :: _ ->
              broadcast ~n:cfg.n (Msg.Contract_request { round; instance = x })
          | [] -> ()
        end
      end;
      Engine.schedule_after engine (max 1 (cfg.heartbeat / 2)) tick
      end
    in
    Engine.schedule_after engine cfg.heartbeat tick

  let start t =
    Array.iter P.start t.instances;
    monitor t

  (* Crash semantics for a restart-from-disk: the orphaned incarnation
     must go silent — its node drops deliveries and suppresses queued
     sends, the monitor stops rescheduling, and un-flushed journal
     records are lost (they were never durable). The persistent disk
     survives for the successor incarnation to recover from. *)
  let halt t =
    t.halted <- true;
    Node.halt t.node;
    Option.iter Rcc_journal.Journal.halt t.cfg.journal

  (* Restart-from-disk recovery, run on a freshly created builder before
     [start]: rebuild ledger / KV / txn-table from the newest verifiable
     snapshot plus the journal suffix, then advance the execution
     frontier and every instance's slot log to the recovered boundary.
     Anything the disk could not prove is left behind the frontier;
     state transfer closes that gap once the replica is live. *)
  let restore t =
    (* Regardless of what the disk proves, the successor must not resume
       sequencing on instances it leads: the lost incarnation may have
       assigned (and broadcast) rounds past the durable frontier, and
       re-using those numbers would equivocate. Resigning holds client
       batches until the ordinary view path re-establishes a primary
       through the state-exchange takeover. *)
    Array.iter P.resign_primary t.instances;
    match t.cfg.journal with
    | None -> None
    | Some j ->
        let r =
          Rcc_journal.Journal.recover ~engine:(Node.engine t.node)
            ~self:t.cfg.self
            ~disk:(Rcc_journal.Journal.disk j)
            ~ledger:t.ledger ~store:t.store ~txn_table:t.txn_table
            ~primaries:(List.init t.cfg.z (fun x -> x))
            ~materialize:t.cfg.materialize_state ()
        in
        Batch.reset_memo ();
        let frontier = r.Rcc_journal.Journal.r_frontier in
        if frontier > 0 then begin
          Exec.install_snapshot t.exec ~seq:frontier
            ~replied:r.Rcc_journal.Journal.r_replied;
          let proof =
            {
              Rcc_storage.Checkpoint_store.seq = frontier;
              state_digest =
                (if t.cfg.materialize_state then
                   Rcc_storage.Kv_store.state_digest t.store
                 else "");
              attesters = [];
            }
          in
          Array.iter (fun inst -> P.fast_forward inst ~proof) t.instances
        end;
        Some r
end
