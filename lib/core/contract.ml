module Msg = Rcc_messages.Msg

type t = {
  round : Rcc_common.Ids.round;
  entries : Rcc_messages.Msg.contract_entry list;
}

let build ~round ~accepted ~z =
  let entries = ref [] in
  for x = z - 1 downto 0 do
    match accepted x with
    | Some (batch, cert) ->
        entries :=
          {
            Msg.ce_instance = x;
            ce_round = round;
            ce_batch = batch;
            ce_cert_replicas = cert;
          }
          :: !entries
    | None -> ()
  done;
  { round; entries = !entries }

let to_msg t = Msg.Contract { round = t.round; entries = t.entries }

let of_msg = function
  | Msg.Contract { round; entries } -> Some { round; entries }
  | _ -> None

let validate t ~n ~min_cert =
  let ok_entry (e : Msg.contract_entry) =
    if e.Msg.ce_instance < 0 then Error "contract: negative instance"
    else if e.Msg.ce_round < t.round then Error "contract: round mismatch"
    else if
      List.exists (fun r -> r < 0 || r >= n) e.Msg.ce_cert_replicas
    then Error "contract: certifier out of range"
    else if List.length e.Msg.ce_cert_replicas < min_cert then
      Error "contract: insufficient accept proof"
    else Ok ()
  in
  List.fold_left
    (fun acc e -> match acc with Error _ -> acc | Ok () -> ok_entry e)
    (Ok ()) t.entries

let size t = Msg.contract_entries_size t.entries
