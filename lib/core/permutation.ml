let factorial n =
  if n < 0 || n > 20 then invalid_arg "Permutation.factorial: out of range";
  let rec go acc i = if i <= 1 then acc else go (acc * i) (i - 1) in
  go 1 n

(* Paper recursion: pick S[q], recurse on the rest, append S[q] at the
   end. Items are therefore placed from the last position backwards. *)
let of_index h ~len =
  if len <= 0 then invalid_arg "Permutation.of_index: empty sequence";
  if h < 0 || h >= factorial len then invalid_arg "Permutation.of_index: bad index";
  let rec build s h =
    match s with
    | [] -> []
    | [ x ] -> [ x ]
    | _ ->
        let k = List.length s in
        let fact = factorial (k - 1) in
        let q = h / fact in
        let r = h mod fact in
        let picked = List.nth s q in
        let rest = List.filteri (fun i _ -> i <> q) s in
        build rest r @ [ picked ]
  in
  Array.of_list (build (List.init len (fun i -> i)) h)

let index_of perm =
  let len = Array.length perm in
  if len = 0 then invalid_arg "Permutation.index_of: empty";
  (* Invert the recursion: the last element of the permutation was picked
     first, with quotient = its position in the then-current sequence. *)
  let rec go s i acc =
    if i < 0 then acc
    else
      let x = perm.(i) in
      let q =
        match List.find_index (fun y -> y = x) s with
        | Some q -> q
        | None -> invalid_arg "Permutation.index_of: not a permutation"
      in
      let rest = List.filteri (fun j _ -> j <> q) s in
      go rest (i - 1) (acc + (q * factorial (List.length s - 1)))
  in
  go (List.init len (fun i -> i)) (len - 1) 0

let seed_of_digest digest ~len =
  if String.length digest < 8 then invalid_arg "Permutation.seed_of_digest: short digest";
  let v = Rcc_common.Bytes_util.get_u64be digest 0 in
  let fact = Int64.of_int (factorial len) in
  let m = Int64.rem v fact in
  let m = if Int64.compare m 0L < 0 then Int64.add m fact else m in
  Int64.to_int m

(* len! stops fitting an int past 20, so paper-scale rounds (z > 20,
   i.e. n > 58) derive the order from a digest-seeded Fisher–Yates
   shuffle instead of a factorial-number-system index. The determinism
   contract is the same — every replica computes the same permutation
   from the same digests and no single instance reliably controls it —
   only the index space changes. *)
let shuffle_of_digest digest ~len =
  if String.length digest < 8 then
    invalid_arg "Permutation.shuffle_of_digest: short digest";
  let seed = Int64.to_int (Rcc_common.Bytes_util.get_u64be digest 0) in
  let rng = Rcc_common.Rng.create seed in
  let a = Array.init len (fun i -> i) in
  for i = len - 1 downto 1 do
    let j = Rcc_common.Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let order_of_round ~digests ~len =
  let d = Rcc_crypto.Sha256.digest_list digests in
  if len <= 20 then of_index (seed_of_digest d ~len) ~len
  else shuffle_of_digest d ~len
