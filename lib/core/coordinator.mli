(** The coordinator thread: unification (§3.4).

    Maintains the paper's per-replica internal state
    [(primary, kmal, replace)] and provides:

    - {b Unified multi-leader election} (§3.4.2): view-change evidence is
      counted per instance; once f+1 distinct replicas blame an instance's
      primary, the replacement entry [(x, r)] is handled in deterministic
      [(round, instance)] order (Lemma 5.1) — but only when every other
      instance has either replicated round [r] or itself requested
      replacement. The new primary is the first replica that is neither
      known-malicious nor already a primary.

    - {b Collusion detection} (§3.4.3, Example 3.3): if, after a waiting
      period, f+1 distinct replicas have sent view-changes but no single
      primary has f+1 accusers, the evidence is inconsistent with an
      ordinary primary failure and a collusion attack is declared.

    - {b Recovery}: [Optimistic] broadcasts contracts on detection;
      [Pessimistic] broadcasts a contract after every executed round;
      [View_shift] deterministically rotates the whole primary set
      (implemented for the ablation; the paper rejects it because it
      sacrifices continuous ordering). *)

open Rcc_common.Ids

type recovery_mode = Optimistic | Pessimistic | View_shift

type instance_handle = {
  h_set_primary : replica_id -> view:view -> unit;
  h_adopt : round:round -> Rcc_messages.Batch.t -> cert:int list -> unit;
  h_accepted : round:round -> (Rcc_messages.Batch.t * int list) option;
  h_incomplete : unit -> round list;
  h_primary : unit -> replica_id;
}

type config = {
  n : int;
  f : int;
  z : int;
  self : replica_id;
  collusion_wait : Rcc_sim.Engine.time;  (** extra wait before declaring collusion (5 s in §7.5.3) *)
  recovery : recovery_mode;
  min_cert : int;  (** accept-proof threshold for incoming contracts *)
  history_capacity : int;  (** executed rounds retained for contract building *)
}

type t

val create :
  config ->
  engine:Rcc_sim.Engine.t ->
  keychain:Rcc_crypto.Keychain.t ->
  handles:instance_handle array ->
  exec:Rcc_replica.Exec.t ->
  metrics:Rcc_replica.Metrics.t ->
  broadcast:(?size:int -> Rcc_messages.Msg.t -> unit) ->
  send:(?size:int -> dst:replica_id -> Rcc_messages.Msg.t -> unit) ->
  t

val primaries : t -> replica_id list
val primary_of : t -> instance_id -> replica_id
val view_of : t -> instance_id -> view
val known_malicious : t -> replica_id list

val blame_digest :
  instance:instance_id -> view:view -> blamed:replica_id -> round:round -> string
(** What a blame signature commits to: the instance, the view being left
    (so a quorum cannot be replayed after the rotation pool wraps), the
    blamed primary, and the round the failure was detected in. Exposed so
    protocol instances and the liveness monitor sign their accusations
    with the same digest the coordinator verifies. *)

val cert_of : t -> instance_id -> Rcc_messages.Msg.blame_vote list
(** The f+1 blame-quorum evidence behind [instance]'s latest view step
    (empty at view 0 and under [View_shift]); what {!gossip_views} ships. *)

val on_local_failure : t -> instance:instance_id -> round:round -> blamed:replica_id -> unit
(** An instance at this replica detected its primary faulty (R2). The
    coordinator signs the accusation with its own replica key. *)

val on_view_change :
  t ->
  src:replica_id ->
  instance:instance_id ->
  view:view ->
  blamed:replica_id ->
  round:round ->
  signature:string ->
  unit
(** Evidence from another replica's instance: [view] is the view the
    accuser is leaving ([new_view - 1] on the wire) and [signature] its
    signature over {!blame_digest}. Unauthenticated or wrong-view
    accusations count toward nothing. *)

val on_view_sync :
  t ->
  instance:instance_id ->
  view:view ->
  primary:replica_id ->
  kmal:replica_id list ->
  cert:Rcc_messages.Msg.blame_vote list ->
  unit
(** A peer's current coordinator view for [instance], sent in reply to a
    blame that named an already-deposed primary, as heartbeat gossip, or
    piggybacked on a contract reply. Adopted only if strictly newer than
    ours AND — under the deterministic rotation — backed by a verifying
    f+1 blame-quorum certificate for the final view step; the primary and
    the skipped-view kmal additions are recomputed from the rotation, so
    a byzantine sender can forge neither view adoption nor primary
    placement. [View_shift] (no rotation) keeps the legacy trusting
    behaviour as an ablation arm. *)

val gossip_views : t -> unit
(** Broadcast a {!Rcc_messages.Msg.View_sync} for every instance whose
    view has moved past the initial one. Called from the liveness
    monitor's heartbeat as anti-entropy: blame-triggered syncs only fire
    while traffic is unhealthy, so without gossip a replica that slept
    through the last replacement would stay stale forever. *)

val on_contract : t -> Rcc_messages.Msg.t -> unit

val on_contract_request : t -> src:replica_id -> round:round -> unit

val on_round_executed : t -> round:round -> Rcc_replica.Acceptance.t array -> unit
(** Execute-thread hook: retains the round for contract building and, in
    pessimistic mode, broadcasts the contract. *)

val on_rollback : t -> frontier:round -> unit
(** Speculative rollback unwound rounds [>= frontier]: drop their
    retained copies so contracts and recovery stop serving invalidated
    orderings; the rounds re-enter via {!on_round_executed} when they
    re-execute under the new view. *)

val replacements : t -> int
(** Unified primary replacements performed. *)
