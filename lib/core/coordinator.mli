(** The coordinator thread: unification (§3.4).

    Maintains the paper's per-replica internal state
    [(primary, kmal, replace)] and provides:

    - {b Unified multi-leader election} (§3.4.2): view-change evidence is
      counted per instance; once f+1 distinct replicas blame an instance's
      primary, the replacement entry [(x, r)] is handled in deterministic
      [(round, instance)] order (Lemma 5.1) — but only when every other
      instance has either replicated round [r] or itself requested
      replacement. The new primary is the first replica that is neither
      known-malicious nor already a primary.

    - {b Collusion detection} (§3.4.3, Example 3.3): if, after a waiting
      period, f+1 distinct replicas have sent view-changes but no single
      primary has f+1 accusers, the evidence is inconsistent with an
      ordinary primary failure and a collusion attack is declared.

    - {b Recovery}: [Optimistic] broadcasts contracts on detection;
      [Pessimistic] broadcasts a contract after every executed round;
      [View_shift] deterministically rotates the whole primary set
      (implemented for the ablation; the paper rejects it because it
      sacrifices continuous ordering). *)

open Rcc_common.Ids

type recovery_mode = Optimistic | Pessimistic | View_shift

type instance_handle = {
  h_set_primary : replica_id -> view:view -> unit;
  h_adopt : round:round -> Rcc_messages.Batch.t -> cert:int list -> unit;
  h_accepted : round:round -> (Rcc_messages.Batch.t * int list) option;
  h_incomplete : unit -> round list;
  h_primary : unit -> replica_id;
}

type config = {
  n : int;
  f : int;
  z : int;
  self : replica_id;
  collusion_wait : Rcc_sim.Engine.time;  (** extra wait before declaring collusion (5 s in §7.5.3) *)
  recovery : recovery_mode;
  min_cert : int;  (** accept-proof threshold for incoming contracts *)
  history_capacity : int;  (** executed rounds retained for contract building *)
}

type t

val create :
  config ->
  engine:Rcc_sim.Engine.t ->
  handles:instance_handle array ->
  exec:Rcc_replica.Exec.t ->
  metrics:Rcc_replica.Metrics.t ->
  broadcast:(?size:int -> Rcc_messages.Msg.t -> unit) ->
  send:(?size:int -> dst:replica_id -> Rcc_messages.Msg.t -> unit) ->
  t

val primaries : t -> replica_id list
val primary_of : t -> instance_id -> replica_id
val known_malicious : t -> replica_id list

val on_local_failure : t -> instance:instance_id -> round:round -> blamed:replica_id -> unit
(** An instance at this replica detected its primary faulty (R2). *)

val on_view_change :
  t -> src:replica_id -> instance:instance_id -> blamed:replica_id -> round:round -> unit
(** Evidence from another replica's instance. *)

val on_view_sync :
  t ->
  instance:instance_id ->
  view:view ->
  primary:replica_id ->
  kmal:replica_id list ->
  unit
(** A peer's current coordinator view for [instance], sent in reply to a
    blame that named an already-deposed primary. Adopted only if strictly
    newer than ours; converges replicas that missed a replacement's blame
    quorum while partitioned or crashed. *)

val gossip_views : t -> unit
(** Broadcast a {!Rcc_messages.Msg.View_sync} for every instance whose
    view has moved past the initial one. Called from the liveness
    monitor's heartbeat as anti-entropy: blame-triggered syncs only fire
    while traffic is unhealthy, so without gossip a replica that slept
    through the last replacement would stay stale forever. *)

val on_contract : t -> Rcc_messages.Msg.t -> unit

val on_contract_request : t -> src:replica_id -> round:round -> unit

val on_round_executed : t -> round:round -> Rcc_replica.Acceptance.t array -> unit
(** Execute-thread hook: retains the round for contract building and, in
    pessimistic mode, broadcasts the contract. *)

val replacements : t -> int
(** Unified primary replacements performed. *)
