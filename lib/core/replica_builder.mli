(** Assembly of one full replica: [z] protocol instances + pipeline +
    execute thread + coordinator.

    [Make (P)] instantiates the RCC paradigm over any protocol satisfying
    the black-box interface (MultiP = Make(Pbft), MultiZ = Make(Zyzzyva)).
    With [z = 1] and [unified = false] the same assembly runs the
    standalone protocol, which is how the baselines share the paper's
    parallel-pipelined architecture (§7.1). *)

open Rcc_common.Ids

type config = {
  n : int;
  f : int;
  z : int;
  self : replica_id;
  costs : Rcc_sim.Costs.t;
  timeout : Rcc_sim.Engine.time;  (** replica watchdog (10 s in §7.5) *)
  heartbeat : Rcc_sim.Engine.time;
      (** if the execute thread stalls on an instance this replica leads
          for longer than this, the primary proposes a null batch so idle
          instances cannot block the round lockstep; a stall past
          [timeout] escalates to a coordinator blame of the missing
          instances' primaries *)
  collusion_wait : Rcc_sim.Engine.time;  (** coordinator wait (5 s in §7.5.3) *)
  checkpoint_interval : int;
  unified : bool;  (** true = RCC unification; false = standalone protocol *)
  recovery : Coordinator.recovery_mode;
  min_cert : int;
  history_capacity : int;
  use_permutation : bool;  (** §3.4.1 digest-seeded execution order *)
  exec_on_worker : bool;
      (** standalone Zyzzyva: the single worker thread handles ordering
          AND speculative execution (§7.1) *)
  parallel_exec : bool;
      (** conflict-aware parallel execution: gather complete rounds into
          windows, partition by key overlap, execute dependency groups on
          a multi-server pool; false = serial ablation, byte-identical to
          the historical single execute thread *)
  exec_threads : int;  (** execute-pool size (parallel mode) *)
  exec_window : int;  (** max rounds per conflict-analysis window *)
  sign_speculative : bool;
      (** sign speculative responses (standalone Zyzzyva commit path) *)
  records : int;  (** YCSB table size *)
  materialize_state : bool;  (** whether this replica applies txns for real *)
  input_threads : int;
  batch_threads : int;
  client_node_of : client_id -> int;
  byz : Rcc_replica.Byz.t;
  journal : Rcc_journal.Journal.t option;
      (** durable write-ahead journal for this incarnation, attached over
          the replica's persistent disk; [None] = in-memory-only replica
          (the digest-gated default) *)
}

module Make (P : Rcc_replica.Instance_intf.S) : sig
  type t

  val create :
    engine:Rcc_sim.Engine.t ->
    net:Rcc_messages.Msg.t Rcc_sim.Net.t ->
    keychain:Rcc_crypto.Keychain.t ->
    metrics:Rcc_replica.Metrics.t ->
    config ->
    t
  (** Builds the node, installs routing, creates instances 0..z-1 (instance
      x initially led by replica x) and, in unified mode, the coordinator. *)

  val start : t -> unit
  (** Arm all instance watchdogs. *)

  val halt : t -> unit
  (** Silence this incarnation permanently (restart-from-disk): deliveries
      drop, queued sends become no-ops, the liveness monitor stops, and
      un-flushed journal records are lost. The persistent disk survives. *)

  val restore : t -> Rcc_journal.Journal.recovery option
  (** Run restart-from-disk recovery on a freshly created builder (before
      {!start}): install the newest verifiable snapshot, replay the
      journal suffix through the real execution path, and fast-forward
      the execute stage and every instance to the recovered frontier.
      Returns the recovery summary; [None] without a journal. *)

  val journal : t -> Rcc_journal.Journal.t option

  val config : t -> config
  val instance : t -> instance_id -> P.t
  val exec : t -> Rcc_replica.Exec.t
  val coordinator : t -> Coordinator.t option
  val store : t -> Rcc_storage.Kv_store.t
  val ledger : t -> Rcc_storage.Ledger.t
  val txn_table : t -> Rcc_storage.Txn_table.t

  val current_primary : t -> instance_id -> replica_id
  (** The primary this replica currently believes leads the instance. *)

  val transfer_stats : t -> Rcc_state_transfer.Manager.stats
  (** Snapshot installs / rejects / bytes moved by this replica's
      state-transfer manager (all zero in fault-free runs). *)

  val log_stats : t -> instance_id -> int * int
  (** [(retained slots, estimated live words)] of the instance's slot
      log — how tightly checkpoint GC bounds consensus memory. *)

  val exec_utilization : t -> since:Rcc_sim.Engine.time -> float
  (** Busy fraction of the execute thread since [since] — the ceiling the
      paper identifies for the MultiBFT variants. In parallel mode this is
      the scheduler lane (conflict scan + in-order commits). *)

  val exec_pool_utilization : t -> since:Rcc_sim.Engine.time -> float option
  (** Mean busy fraction of the execute pool; [None] in serial mode. *)

  val worker_utilization : t -> instance_id -> since:Rcc_sim.Engine.time -> float
end
