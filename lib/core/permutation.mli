(** Deterministic execution-order selection (§3.4.1).

    [f_S(h)] maps an integer [h] in [0, |S|!) to a unique permutation of
    the sequence [S]:

    {v
      f_S(h) = S                          if |S| = 1
             = f_{S \ S[q]}(r) ++ [S[q]]  if |S| > 1
    v}

    with [q = h div (|S|-1)!] and [r = h mod (|S|-1)!]. Seeding
    [h = D(S) mod |S|!] with the digest of the round's replicated requests
    gives every replica the same "fair" order on which no single instance
    has reliable influence. *)

val factorial : int -> int
(** Raises [Invalid_argument] beyond 20 (int64 overflow). *)

val of_index : int -> len:int -> int array
(** [of_index h ~len] is the paper's [f_S(h)] over [S = [0; ...; len-1]],
    returned as the array of positions. Requires [0 <= h < len!]. *)

val index_of : int array -> int
(** Inverse of {!of_index}: the [h] that generates a permutation. *)

val seed_of_digest : string -> len:int -> int
(** [D(S) mod len!] from a binary digest. *)

val order_of_round : digests:string list -> len:int -> int array
(** The round's execution order: digest the concatenated batch digests and
    apply {!of_index}. Beyond [len = 20] (where [len!] overflows an int)
    the order comes from a digest-seeded Fisher–Yates shuffle instead —
    the same all-replicas-agree determinism, a different index space. *)
