open Rcc_common.Ids
module Engine = Rcc_sim.Engine
module Msg = Rcc_messages.Msg
module Bitset = Rcc_common.Bitset
module Exec = Rcc_replica.Exec
module Acceptance = Rcc_replica.Acceptance
module Metrics = Rcc_replica.Metrics
module Keychain = Rcc_crypto.Keychain
module Signature = Rcc_crypto.Signature

type recovery_mode = Optimistic | Pessimistic | View_shift

type instance_handle = {
  h_set_primary : replica_id -> view:view -> unit;
  h_adopt : round:round -> Rcc_messages.Batch.t -> cert:int list -> unit;
  h_accepted : round:round -> (Rcc_messages.Batch.t * int list) option;
  h_incomplete : unit -> round list;
  h_primary : unit -> replica_id;
}

type config = {
  n : int;
  f : int;
  z : int;
  self : replica_id;
  collusion_wait : Rcc_sim.Engine.time;
  recovery : recovery_mode;
  min_cert : int;
  history_capacity : int;
}

type t = {
  cfg : config;
  engine : Engine.t;
  keychain : Keychain.t;
  handles : instance_handle array;
  exec : Exec.t;
  metrics : Metrics.t;
  broadcast : ?size:int -> Msg.t -> unit;
  send : ?size:int -> dst:replica_id -> Msg.t -> unit;
  primaries : replica_id array;
  views : int array;
  kmal : Bitset.t;
  blames : Bitset.t array;  (* per instance: distinct accusers of its primary *)
  blame_round : int array;  (* lowest blamed round per instance; max_int if none *)
  (* Per instance, per accuser: the (round, signature) of its counted
     blame at the current view — the raw material for replacement
     certificates. Rows clear together with [blames]. *)
  blame_sigs : (round * string) option array array;
  (* Per instance: the f+1 blame-quorum evidence behind the latest view
     step (certifies views.(x) - 1 -> views.(x)); shipped with every
     View_sync so lagging replicas adopt on proof, not trust. *)
  certs : Msg.blame_vote list array;
  stale_accusers : Bitset.t;  (* accusers of rounds we already executed *)
  mutable pending_replace : (round * instance_id) list;  (* sorted *)
  mutable collusion_timer : Engine.timer option;
  mutable replacements : int;
  mutable shifts : int;
  (* Ring of recently executed rounds, for building contracts about rounds
     the execute thread has already passed. *)
  history : (round * Acceptance.t array) option array;
}

let create cfg ~engine ~keychain ~handles ~exec ~metrics ~broadcast ~send =
  assert (Array.length handles = cfg.z);
  {
    cfg;
    engine;
    keychain;
    handles;
    exec;
    metrics;
    broadcast;
    send;
    primaries = Array.init cfg.z (fun x -> (handles.(x)).h_primary ());
    views = Array.make cfg.z 0;
    kmal = Bitset.create cfg.n;
    blames = Array.init cfg.z (fun _ -> Bitset.create cfg.n);
    blame_round = Array.make cfg.z max_int;
    blame_sigs = Array.init cfg.z (fun _ -> Array.make cfg.n None);
    certs = Array.make cfg.z [];
    stale_accusers = Bitset.create cfg.n;
    pending_replace = [];
    collusion_timer = None;
    replacements = 0;
    shifts = 0;
    history = Array.make (max 16 cfg.history_capacity) None;
  }

let trace t ~instance payload =
  Engine.trace t.engine ~replica:t.cfg.self ~instance payload

let primaries t = Array.to_list t.primaries
let primary_of t x = t.primaries.(x)
let view_of t x = t.views.(x)
let cert_of t x = t.certs.(x)
let known_malicious t = Bitset.to_list t.kmal
let replacements t = t.replacements

(* What a blame signature commits to. Binding the view being left (not
   just the blamed replica) is what makes certificates replay-proof: the
   rotation pool wraps, so a quorum that deposed replica [p] at view
   v -> v+1 must not double as evidence for the later step that deposes
   [p] again after the wrap. *)
let blame_digest ~instance ~view ~blamed ~round =
  Printf.sprintf "vc|%d|%d|%d|%d" instance view blamed round

(* --- round history ----------------------------------------------------- *)

let history_store t round accs =
  t.history.(round mod Array.length t.history) <- Some (round, accs)

let history_find t round instance =
  match t.history.(round mod Array.length t.history) with
  | Some (r, accs) when r = round ->
      Array.find_opt (fun (a : Acceptance.t) -> a.instance = instance) accs
  | Some _ | None -> None

(* Speculative rollback unwound rounds [>= frontier]: the retained copies
   describe orderings the view change just invalidated, so contract
   building and recovery must stop serving them. The rounds re-enter the
   ring via [on_round_executed] when they re-execute. *)
let on_rollback t ~frontier =
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (r, _) when r >= frontier -> t.history.(i) <- None
      | Some _ | None -> ())
    t.history

(* This replica's knowledge of instance [x]'s round-[r] batch: a pending
   acceptance at the execute thread, an already-executed round in the
   history ring, or the instance's own log. *)
let accepted_anywhere t ~round ~instance =
  match Exec.accepted t.exec ~round ~instance with
  | Some a -> Some (a.Acceptance.batch, a.Acceptance.cert)
  | None -> (
      match history_find t round instance with
      | Some a -> Some (a.Acceptance.batch, a.Acceptance.cert)
      | None -> (t.handles.(instance)).h_accepted ~round)

(* --- unified replacement (§3.4.2) -------------------------------------- *)

let clear_blames t x =
  Bitset.clear t.blames.(x);
  Array.fill t.blame_sigs.(x) 0 t.cfg.n None;
  t.blame_round.(x) <- max_int

(* Deterministic primary rotation: instance [x] draws its primaries from
   the residue class {r | r mod z = x}, in ascending order, starting at
   [x] itself (the view-0 primary). The classes are disjoint, so two
   instances can never share a primary, and — crucially — (instance,
   view) alone determines the primary. Replicas that conclude the same
   replacement from different local blame histories, or that adopt it
   later via [View_sync], land on the same choice without agreeing on
   anything else first. A deposed primary re-enters the rotation once
   the class wraps around (as in PBFT); if it is still faulty it is
   simply blamed and replaced again. *)
let primary_for cfg ~instance ~view =
  let pool_len = (cfg.n - instance + cfg.z - 1) / cfg.z in
  instance + (view mod pool_len) * cfg.z

(* Handle [(r, x)]: only once every other instance has either replicated
   round [r] or is itself awaiting replacement. *)
let can_handle t (r, x) =
  let awaiting y = List.exists (fun (_, x') -> x' = y) t.pending_replace in
  let replicated y =
    r < Exec.next_round t.exec
    || Option.is_some (Exec.accepted t.exec ~round:r ~instance:y)
  in
  let rec check y =
    y >= t.cfg.z || ((y = x || replicated y || awaiting y) && check (y + 1))
  in
  check 0

let rec process_replacements t =
  match t.pending_replace with
  | [] -> ()
  | (r, _x) :: rest when r < Exec.next_round t.exec ->
      (* The stall this replacement answers has been cured (execution
         passed the blamed round, via heal or contract adoption) while
         the entry sat parked behind the §3.4.2 ordering condition.
         Replacing now would act on evidence of a problem that no longer
         exists — and at wildly different times on different replicas. *)
      t.pending_replace <- rest;
      process_replacements t
  | ((_r, x) as entry) :: rest when can_handle t entry ->
      let deposed = t.primaries.(x) in
      Bitset.add t.kmal deposed |> ignore;
      t.pending_replace <- rest;
      (* Snapshot the blame quorum before [clear_blames] wipes it: these
         f+1 authenticated accusations are the certificate that lets a
         lagging replica verify this view step later. *)
      let votes = ref [] in
      Bitset.iter t.blames.(x) (fun src ->
          match t.blame_sigs.(x).(src) with
          | Some (round, s) ->
              votes :=
                { Msg.bv_accuser = src; bv_round = round; bv_sig = s } :: !votes
          | None -> ());
      t.certs.(x) <- List.rev !votes;
      t.views.(x) <- t.views.(x) + 1;
      let fresh = primary_for t.cfg ~instance:x ~view:t.views.(x) in
      t.primaries.(x) <- fresh;
      t.replacements <- t.replacements + 1;
      Metrics.record_view_change ~instance:x t.metrics;
      if Engine.tracing t.engine then begin
        trace t ~instance:x (Rcc_trace.Event.Kmal { culprit = deposed });
        trace t ~instance:x
          (Rcc_trace.Event.Primary_change
             { primary = fresh; view = t.views.(x) })
      end;
      clear_blames t x;
      (t.handles.(x)).h_set_primary fresh ~view:t.views.(x);
      process_replacements t
  | _ :: _ -> ()

let enqueue_replacement t ~instance ~round =
  if not (List.exists (fun (_, x) -> x = instance) t.pending_replace) then begin
    t.pending_replace <-
      List.sort compare ((round, instance) :: t.pending_replace);
    process_replacements t
  end

(* --- collusion detection (§3.4.3) --------------------------------------- *)

let distinct_accusers t =
  let seen = Bitset.create t.cfg.n in
  Array.iter (fun b -> Bitset.iter b (fun r -> Bitset.add seen r |> ignore)) t.blames;
  Bitset.iter t.stale_accusers (fun r -> Bitset.add seen r |> ignore);
  Bitset.count seen

let stalled_rounds t =
  (* Rounds named in blames, oldest first, capped to a small window. *)
  let rounds =
    Array.to_list t.blame_round
    |> List.filter (fun r -> r <> max_int)
    |> List.sort_uniq compare
  in
  match rounds with [] -> [ Exec.next_round t.exec ] | _ -> rounds

let broadcast_contract t ~round =
  let contract =
    Contract.build ~round
      ~accepted:(fun x -> accepted_anywhere t ~round ~instance:x)
      ~z:t.cfg.z
  in
  if contract.Contract.entries <> [] then begin
    let msg = Contract.to_msg contract in
    let size = Contract.size contract in
    Metrics.record_contract_bytes t.metrics size;
    if Engine.tracing t.engine then
      trace t ~instance:(-1)
        (Rcc_trace.Event.Contract_sent
           {
             round;
             entries = List.length contract.Contract.entries;
             bytes = size;
           });
    t.broadcast ~size msg
  end

let view_shift t =
  (* Deterministically move to the next set of z primaries (§3.4.3(3)).
     All instances restart under fresh primaries, so even healthy ones
     lose continuous ordering — the cost the paper rejects. *)
  t.shifts <- t.shifts + 1;
  let base = t.shifts * t.cfg.z in
  (* [taken] keeps the fresh set disjoint: skipping only known-malicious
     candidates lets two instances land on the same pick (n=4, z=2,
     kmal={2}: both collapse onto 3), violating the one-primary-per-
     instance structure. Past [k >= n] every candidate was rejected as
     malicious, so the malice filter is dropped (disjointness never is)
     to guarantee termination. *)
  let taken = Bitset.create t.cfg.n in
  for x = 0 to t.cfg.z - 1 do
    let rec pick k =
      let candidate = (base + x + k) mod t.cfg.n in
      if
        Bitset.mem taken candidate
        || (k < t.cfg.n && Bitset.mem t.kmal candidate)
      then pick (k + 1)
      else candidate
    in
    let fresh = pick 0 in
    Bitset.add taken fresh |> ignore;
    t.primaries.(x) <- fresh;
    t.views.(x) <- t.views.(x) + 1;
    if Engine.tracing t.engine then
      trace t ~instance:x
        (Rcc_trace.Event.Primary_change { primary = fresh; view = t.views.(x) });
    clear_blames t x;
    (t.handles.(x)).h_set_primary fresh ~view:t.views.(x)
  done

let on_collusion_detected t =
  Metrics.record_collusion_detected t.metrics;
  if Engine.tracing t.engine then trace t ~instance:(-1) Rcc_trace.Event.Collusion;
  match t.cfg.recovery with
  | Optimistic | Pessimistic ->
      List.iter (fun round -> broadcast_contract t ~round) (stalled_rounds t)
  | View_shift -> view_shift t

let collusion_pending t =
  match t.collusion_timer with
  | Some timer -> Engine.timer_pending timer
  | None -> false

let rec arm_collusion_timer t =
  match t.collusion_timer with
  | Some timer when Engine.timer_pending timer -> ()
  | Some _ | None ->
      t.collusion_timer <-
        Some
          (Engine.timer_after t.engine t.cfg.collusion_wait (fun () ->
               evaluate_collusion t))

and evaluate_collusion t =
  t.collusion_timer <- None;
  let strongest = Array.fold_left (fun m b -> max m (Bitset.count b)) 0 t.blames in
  let accusers = distinct_accusers t in
  if accusers >= t.cfg.f + 1 && strongest < t.cfg.f + 1 then begin
    (* f+1 replicas complain, yet no primary has f+1 accusers: the
       evidence cannot come from a single failed primary. *)
    on_collusion_detected t;
    Array.iteri (fun x _ -> clear_blames t x) t.blames;
    Bitset.clear t.stale_accusers
  end
  else begin
    (* Inconclusive: this window's stale accusers expire with it. A
       replica catching up after a crash goes briefly stale at everyone;
       if that mark never aged out, months of unrelated catch-ups would
       accumulate until any single fresh blame tipped the count over f+1
       — a phantom collusion no quorum ever witnessed at once. A
       genuinely stuck Example 3.3 victim keeps re-blaming every replica
       timeout, so its evidence re-enters the next window on its own. *)
    Bitset.clear t.stale_accusers;
    let fresh = Array.exists (fun b -> Bitset.count b > 0) t.blames in
    if fresh && strongest < t.cfg.f + 1 then arm_collusion_timer t
  end

(* --- evidence intake ----------------------------------------------------- *)

let send_view_sync t ~dst ~instance =
  let msg =
    Msg.View_sync
      {
        instance;
        view = t.views.(instance);
        primary = t.primaries.(instance);
        kmal = Bitset.to_list t.kmal;
        cert = t.certs.(instance);
      }
  in
  t.send ~size:(Msg.size msg) ~dst msg

(* Periodic anti-entropy: replicas that were crashed or partitioned
   through a replacement's blame quorum hold stale views until something
   reminds them. Blame-triggered syncs only fire while traffic is
   unhealthy, so the heartbeat also gossips any non-initial views. *)
let gossip_views t =
  for x = 0 to t.cfg.z - 1 do
    if t.views.(x) > 0 then begin
      let msg =
        Msg.View_sync
          {
            instance = x;
            view = t.views.(x);
            primary = t.primaries.(x);
            kmal = Bitset.to_list t.kmal;
            cert = t.certs.(x);
          }
      in
      t.broadcast ~size:(Msg.size msg) msg
    end
  done

let register_blame t ~src ~instance ~view ~blamed ~round ~signature =
  if
    instance >= 0 && instance < t.cfg.z && src >= 0 && src < t.cfg.n
    (* Authenticity first: an unauthenticated accusation counts toward
       nothing — not a replacement quorum, not collusion evidence. The
       claimed view is part of the signed digest, so a byzantine replica
       cannot re-label a replica's old blame as evidence about the
       current primary. *)
    && Signature.verify
         (Keychain.replica_public t.keychain src)
         (blame_digest ~instance ~view ~blamed ~round)
         signature
  then begin
    if Engine.tracing t.engine then
      trace t ~instance (Rcc_trace.Event.Blame { round; blamed; accuser = src });
    if round < Exec.next_round t.exec then begin
      (* A blame about a round we already executed says nothing about the
         current primary — counting it toward a replacement quorum lets a
         single replica catching up after a crash push instances through
         spurious view changes. But it IS the signature of Example 3.3:
         a victim that colluding primaries keep in the dark stays stuck
         at an old round while the rest of the cluster advances, so such
         accusers still feed collusion detection (which never replaces a
         single primary on its own). *)
      if Bitset.add t.stale_accusers src then arm_collusion_timer t
    end
    else if view = t.views.(instance) && blamed = t.primaries.(instance)
    then begin
      Bitset.add t.blames.(instance) src |> ignore;
      t.blame_sigs.(instance).(src) <- Some (round, signature);
      if round < t.blame_round.(instance) then t.blame_round.(instance) <- round;
      if Bitset.count t.blames.(instance) >= t.cfg.f + 1 then
        enqueue_replacement t ~instance ~round:t.blame_round.(instance)
      else arm_collusion_timer t
    end
    else if Bitset.mem t.kmal blamed && src <> t.cfg.self then
      (* The accuser blames a primary we already deposed: it missed a
         replacement's blame quorum (partitioned or crashed at the time).
         Ship it our certified view so the coordinator state converges. *)
      send_view_sync t ~dst:src ~instance
  end

(* Does [cert] prove the view step [view - 1 -> view]? Under the
   deterministic rotation the deposed primary is a pure function of
   (instance, view - 1), so each vote must verify against that digest —
   the sender picks neither whom the quorum deposed nor at which view. *)
let verify_cert t ~instance ~view cert =
  let prev = view - 1 in
  let deposed = primary_for t.cfg ~instance ~view:prev in
  let seen = Bitset.create t.cfg.n in
  List.iter
    (fun (v : Msg.blame_vote) ->
      if
        v.Msg.bv_accuser >= 0
        && v.Msg.bv_accuser < t.cfg.n
        && (not (Bitset.mem seen v.Msg.bv_accuser))
        && Signature.verify
             (Keychain.replica_public t.keychain v.Msg.bv_accuser)
             (blame_digest ~instance ~view:prev ~blamed:deposed
                ~round:v.Msg.bv_round)
             v.Msg.bv_sig
      then ignore (Bitset.add seen v.Msg.bv_accuser))
    cert;
  Bitset.count seen >= t.cfg.f + 1

(* Adopt a strictly newer view for [instance]. Counts the skipped
   replacements so the replacement totals converge too (exact under
   optimistic/pessimistic recovery, where every view step is one
   replacement). *)
let on_view_sync t ~instance ~view ~primary ~kmal ~cert =
  if instance >= 0 && instance < t.cfg.z && view > t.views.(instance) then begin
    let adopt primary =
      let skipped = view - t.views.(instance) in
      t.replacements <- t.replacements + skipped;
      for _ = 1 to skipped do
        Metrics.record_view_change ~instance t.metrics
      done;
      if Engine.tracing t.engine then
        trace t ~instance (Rcc_trace.Event.Primary_change { primary; view });
      t.primaries.(instance) <- primary;
      t.views.(instance) <- view;
      t.pending_replace <-
        List.filter (fun (_, x) -> x <> instance) t.pending_replace;
      clear_blames t instance;
      (t.handles.(instance)).h_set_primary primary ~view;
      process_replacements t
    in
    match t.cfg.recovery with
    | Optimistic | Pessimistic ->
        (* Evidence-gated adoption: a certificate for the final step
           [view - 1 -> view] suffices — at least one honest replica
           stood in that blame quorum at view - 1, and honest replicas
           only reach a view through a chain of such quorums. Neither
           the sender's primary claim nor its kmal list is trusted:
           both are recomputed from the rotation over the skipped
           views. A sync without f+1 verifying votes moves nothing. *)
        if verify_cert t ~instance ~view cert then begin
          for v' = t.views.(instance) to view - 1 do
            Bitset.add t.kmal (primary_for t.cfg ~instance ~view:v') |> ignore
          done;
          t.certs.(instance) <- cert;
          adopt (primary_for t.cfg ~instance ~view)
        end
    | View_shift ->
        (* View-shift assigns primaries outside the rotation, so no
           per-step blame quorum exists to certify; the ablation arm
           keeps the legacy trust-the-sender convergence. *)
        List.iter (fun r -> Bitset.add t.kmal r |> ignore) kmal;
        adopt primary
  end

let on_local_failure t ~instance ~round ~blamed =
  if instance >= 0 && instance < t.cfg.z then begin
    let view = t.views.(instance) in
    let signature =
      Signature.sign
        (Keychain.replica_secret t.keychain t.cfg.self)
        (blame_digest ~instance ~view ~blamed ~round)
    in
    register_blame t ~src:t.cfg.self ~instance ~view ~blamed ~round ~signature
  end

let on_view_change t ~src ~instance ~view ~blamed ~round ~signature =
  register_blame t ~src ~instance ~view ~blamed ~round ~signature

(* --- contracts ----------------------------------------------------------- *)

let on_contract t msg =
  match Contract.of_msg msg with
  | None -> ()
  | Some contract -> (
      match Contract.validate contract ~n:t.cfg.n ~min_cert:t.cfg.min_cert with
      | Error _ -> ()
      | Ok () ->
          (if Engine.tracing t.engine then
             match contract.Contract.entries with
             | [] -> ()
             | e :: _ ->
                 trace t ~instance:(-1)
                   (Rcc_trace.Event.Contract_adopted
                      {
                        round = e.Msg.ce_round;
                        entries = List.length contract.Contract.entries;
                      }));
          List.iter
            (fun (e : Msg.contract_entry) ->
              if e.Msg.ce_instance < t.cfg.z then
                (t.handles.(e.Msg.ce_instance)).h_adopt ~round:e.Msg.ce_round
                  e.Msg.ce_batch ~cert:e.Msg.ce_cert_replicas)
            contract.Contract.entries)

(* Bound on how many consecutive rounds one contract reply may carry. *)
let contract_window = 1_024

let on_contract_request t ~src ~round =
  (* Serve not just the requested round but the contiguous window of later
     rounds we know about: the requester — a replica whose execution
     stalled, or a fresh primary taking over an instance it was cut off
     from — has no way to know how far ahead the rest of the cluster ran,
     so a single request must be able to return the whole in-flight
     frontier. Contract entries carry their own round numbers, so the
     window packs into one message. *)
  let entries = ref [] in
  let r = ref round in
  let continue = ref true in
  while !continue && !r < round + contract_window do
    let c =
      Contract.build ~round:!r
        ~accepted:(fun x -> accepted_anywhere t ~round:!r ~instance:x)
        ~z:t.cfg.z
    in
    match c.Contract.entries with
    | [] -> continue := false
    | es ->
        entries := List.rev_append es !entries;
        incr r
  done;
  (match List.rev !entries with
  | [] -> ()
  | es ->
      let msg = Msg.Contract { round; entries = es } in
      let size = Msg.contract_entries_size es in
      Metrics.record_contract_bytes t.metrics size;
      if Engine.tracing t.engine then
        trace t ~instance:(-1)
          (Rcc_trace.Event.Contract_sent
             { round; entries = List.length es; bytes = size });
      t.send ~size ~dst:src msg);
  (* A contract request is the voice of a replica pulling itself out of a
     stall (healed partition, restart): besides its missing round
     frontier, ship it our certified coordinator views directly, so it
     converges on the primary set without waiting out the heartbeat
     gossip it may keep missing under backlog. *)
  for x = 0 to t.cfg.z - 1 do
    if t.views.(x) > 0 then send_view_sync t ~dst:src ~instance:x
  done

let on_round_executed t ~round accs =
  history_store t round accs;
  (* Blame evidence is scoped to the stall it complains about: once
     execution advances past the blamed round, the complaint has been
     cured (partition healed, contract adopted) and the accusations must
     not linger to combine with blames of a much later, unrelated stall —
     that is how replicas end up replacing primaries on evidence no
     quorum ever held at once. *)
  for x = 0 to t.cfg.z - 1 do
    if t.blame_round.(x) <> max_int && round > t.blame_round.(x) then
      clear_blames t x
  done;
  (* Stale accusers are scoped to the collusion window instead: while an
     evaluation is pending they must survive this hook — at a healthy
     replica execution advances every few hundred microseconds, and the
     Example 3.3 evidence (a victim stuck thousands of rounds behind) is
     stale BY DEFINITION at everyone else, so clearing it on every
     executed round would erase the attack's only signature long before
     the timer fires. Once no evaluation is pending the window is closed
     and whatever lingers is catch-up noise, not evidence. *)
  if not (collusion_pending t) then Bitset.clear t.stale_accusers;
  if t.cfg.recovery = Pessimistic then broadcast_contract t ~round
