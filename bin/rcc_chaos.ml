(* rcc-chaos: seeded chaos fuzzing and scripted fault scenarios.

     dune exec bin/rcc_chaos.exe -- --seed 7 --runs 10            # fuzz both
     dune exec bin/rcc_chaos.exe -- --smoke                       # bundled scenario
     dune exec bin/rcc_chaos.exe -- --protocol multip --scenario-seed 7000021
     dune exec bin/rcc_chaos.exe -- --canary --runs 1             # failure demo

   Output is deterministic: the same flags and seeds produce
   byte-identical reports. Exits 1 if any invariant was violated.
*)

open Cmdliner
module Config = Rcc_runtime.Config
module Engine = Rcc_sim.Engine
module Script = Rcc_chaos.Script
module Runner = Rcc_chaos.Runner
module Fuzzer = Rcc_chaos.Fuzzer

let protocols_of = function
  | `MultiP -> [ Config.MultiP ]
  | `MultiZ -> [ Config.MultiZ ]
  | `Both -> [ Config.MultiP; Config.MultiZ ]

(* Bundled smoke scenario: a partition, a dark attack, and a primary
   crash/restart, all healed with 30% of the run left to quiesce in.
   Event times scale with the configured duration. *)
let smoke_script duration =
  let pct p = duration * p / 100 in
  let ev at action = { Script.at; action } in
  [
    ev (pct 15) (Script.Partition [ [ 3 ] ]);
    ev (pct 30) Script.Heal;
    ev (pct 35) (Script.Byz_on (1, Script.Dark [ 2 ]));
    ev (pct 55) (Script.Byz_off 1);
    ev (pct 60) (Script.Crash 0);
    ev (pct 70) (Script.Restart 0);
  ]

let run protocol_sel n duration seed runs scenario_seed smoke canary quick
    trace_path trace_ring =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 16 * 1024 * 1024 };
  let protocols = protocols_of protocol_sel in
  let duration =
    Engine.of_seconds (if quick then Float.min duration 1.5 else duration)
  in
  let runs = if quick then min runs 2 else runs in
  let failed = ref false in
  let note outcome =
    if not (Runner.passed outcome) then failed := true;
    Format.printf "%a" Runner.pp_outcome outcome
  in
  (if smoke then
     List.iter
       (fun protocol ->
         let cfg =
           Config.make ~protocol ~n ~batch_size:10 ~clients:40 ~records:5_000
             ~duration ~warmup:(duration / 4)
             ~replica_timeout:(Engine.ms 250) ~client_timeout:(Engine.ms 400)
             ~collusion_wait:(Engine.ms 150) ~seed ()
         in
         note
           (Runner.run ~canary ~nemesis_seed:seed ?trace_path ?trace_ring cfg
              (smoke_script duration)))
       protocols
   else
     match scenario_seed with
     | Some scenario_seed ->
         List.iter
           (fun protocol ->
             note
               (Fuzzer.run_one ~canary ?trace_path ?trace_ring ~protocol ~n
                  ~duration ~scenario_seed ()))
           protocols
     | None ->
         let summary =
           Fuzzer.fuzz ~protocols ~n ~duration ~canary ~seed ~runs ()
         in
         Format.printf "%a" Fuzzer.pp_summary summary;
         if summary.Fuzzer.failures <> [] then failed := true);
  if !failed then exit 1

let cmd =
  let protocol =
    Arg.(value
         & opt (enum [ ("multip", `MultiP); ("multiz", `MultiZ); ("both", `Both) ]) `Both
         & info [ "p"; "protocol" ] ~doc:"Protocol(s) to fuzz: multip, multiz or both.")
  in
  let n = Arg.(value & opt int 4 & info [ "n"; "replicas" ] ~doc:"Number of replicas.") in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~doc:"Simulated seconds per scenario.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master fuzzing seed.") in
  let runs = Arg.(value & opt int 5 & info [ "runs" ] ~doc:"Scenarios per protocol.") in
  let scenario_seed =
    Arg.(value & opt (some int) None
         & info [ "scenario-seed" ]
             ~doc:"Reproduce the single scenario with this seed (from a failure report).")
  in
  let smoke = Arg.(value & flag & info [ "smoke" ] ~doc:"Run the bundled smoke scenario.") in
  let canary =
    Arg.(value & flag
         & info [ "canary" ]
             ~doc:"Enable the intentionally-broken no-commits invariant to demo failure reporting.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Cap duration and runs for CI.") in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record a structured trace of the run (--smoke or \
                   --scenario-seed) and write it to $(docv): Chrome \
                   trace-event JSON, or JSONL when $(docv) ends in .jsonl. \
                   With several protocols the file is overwritten per run.")
  in
  let trace_ring =
    Arg.(value & opt (some int) None
         & info [ "trace-ring" ] ~docv:"N"
             ~doc:"Trace ring-buffer capacity in events (default 65536).")
  in
  let term =
    Term.(const run $ protocol $ n $ duration $ seed $ runs $ scenario_seed
          $ smoke $ canary $ quick $ trace $ trace_ring)
  in
  Cmd.v
    (Cmd.info "rcc-chaos"
       ~doc:"Seeded chaos fuzzing of RCC clusters with invariant checking")
    term

let () = exit (Cmd.eval cmd)
