(* rcc-chaos: seeded chaos fuzzing and scripted fault scenarios.

     dune exec bin/rcc_chaos.exe -- --seed 7 --runs 10            # fuzz both
     dune exec bin/rcc_chaos.exe -- --smoke                       # bundled scenario
     dune exec bin/rcc_chaos.exe -- --protocol multip --scenario-seed 7000021
     dune exec bin/rcc_chaos.exe -- --restart                     # restart-from-disk
     dune exec bin/rcc_chaos.exe -- --journal --runs 10           # storage fuzzing
     dune exec bin/rcc_chaos.exe -- --canary --runs 1             # failure demo

   Output is deterministic: the same flags and seeds produce
   byte-identical reports. Exits 1 if any invariant was violated.
*)

open Cmdliner
module Config = Rcc_runtime.Config
module Engine = Rcc_sim.Engine
module Script = Rcc_chaos.Script
module Runner = Rcc_chaos.Runner
module Fuzzer = Rcc_chaos.Fuzzer

let protocols_of = function
  | `MultiP -> [ Config.MultiP ]
  | `MultiZ -> [ Config.MultiZ ]
  | `Both -> [ Config.MultiP; Config.MultiZ ]

(* Bundled smoke scenario: a partition, a dark attack, and a primary
   crash/restart, all healed with 30% of the run left to quiesce in.
   Event times scale with the configured duration. *)
let smoke_script duration =
  let pct p = duration * p / 100 in
  let ev at action = { Script.at; action } in
  [
    ev (pct 15) (Script.Partition [ [ 3 ] ]);
    ev (pct 30) Script.Heal;
    ev (pct 35) (Script.Byz_on (1, Script.Dark [ 2 ]));
    ev (pct 55) (Script.Byz_off 1);
    ev (pct 60) (Script.Crash 0);
    ev (pct 70) (Script.Restart 0);
  ]

(* Bundled state-transfer scenario: replica 3 is partitioned for 60% of
   the run — thousands of rounds at chaos throughput, far past the
   contract window — then healed. Catching up by replay is impossible;
   convergence therefore proves a snapshot install, and the trace is
   asserted to contain one. *)
let transfer_script duration =
  let pct p = duration * p / 100 in
  [
    { Script.at = pct 10; action = Script.Partition [ [ 3 ] ] };
    { Script.at = pct 70; action = Script.Heal };
  ]

(* Same gap, but every prospective donor serves corrupted snapshot
   payloads until 85% of the run. Verification must reject each corrupt
   blob (the trace must show it), and the install must still land once
   honest donors are back. *)
let corrupt_transfer_script duration =
  let pct p = duration * p / 100 in
  let donors = [ 0; 1; 2 ] in
  List.map
    (fun r ->
      { Script.at = pct 5; action = Script.Byz_on (r, Script.Corrupt_snapshot) })
    donors
  @ [
      { Script.at = pct 10; action = Script.Partition [ [ 3 ] ] };
      { Script.at = pct 70; action = Script.Heal };
    ]
  @ List.map (fun r -> { Script.at = pct 85; action = Script.Byz_off r }) donors

(* Bundled restart-from-disk scenario (journaling on): replica 3 loses
   power mid-run and comes back as a fresh incarnation that trusts
   nothing but its disk. With an honest disk the journal suffix replays
   to the durable frontier and the replica rejoins without the full
   state-transfer blob: the trace must show a deep replayed frontier,
   and any snapshot install may only be an incremental one covering the
   short outage window (state transfer races the 250 ms contract-
   recovery timers for the rounds missed while dead, and often wins),
   never the snapshot-sized catch-up an empty replica would need. *)
let restart_script duration =
  let pct p = duration * p / 100 in
  [
    { Script.at = pct 45; action = Script.Crash 3 };
    { Script.at = pct 45 + Engine.ms 5; action = Script.Restart_from_disk 3 };
  ]

(* Lying-disk variant: storage faults are armed long before the crash, so
   the journal holds torn / corrupt / lost records. Recovery must detect
   every bad record (truncate, never trust) and close the resulting gap
   through state transfer — the trace must show the detection or the
   fallback install. *)
let faulty_restart_script duration =
  let pct p = duration * p / 100 in
  [
    { Script.at = pct 5; action = Script.Storage_faults (3, 0.25) };
    { Script.at = pct 45; action = Script.Crash 3 };
    { Script.at = pct 55; action = Script.Restart_from_disk 3 };
    { Script.at = pct 60; action = Script.Storage_faults (3, 0.0) };
  ]

module Event = Rcc_trace.Event

let first_event events ~replica ~matches =
  List.find_opt
    (fun e -> e.Event.replica = replica && matches e.Event.payload)
    events

(* Hard assertions on the recorded trace, beyond the runner's generic
   invariants; failures print like invariant violations and flip the
   exit code. *)
let assert_transfer ~label ~expect_reject outcome =
  let events = outcome.Runner.events in
  let installed =
    first_event events ~replica:3 ~matches:(function
      | Event.St_installed _ -> true
      | _ -> false)
  in
  let rejected =
    first_event events ~replica:3 ~matches:(function
      | Event.St_rejected _ -> true
      | _ -> false)
  in
  let failures = ref [] in
  let fail msg = failures := msg :: !failures in
  (match installed with
  | None -> fail "no snapshot install on the healed replica"
  | Some { Event.payload = Event.St_installed { rounds; _ }; _ }
    when rounds < 1_000 ->
      fail (Printf.sprintf "install covered only %d rounds (want >= 1000)" rounds)
  | Some _ -> ());
  if expect_reject then begin
    match (rejected, installed) with
    | None, _ -> fail "no corrupt snapshot was rejected"
    | Some r, Some i when r.Event.at > i.Event.at ->
        fail "first rejection came after the install"
    | Some _, _ -> ()
  end;
  List.iter
    (fun msg -> Format.printf "FAIL transfer(%s): %s@." label msg)
    (List.rev !failures);
  !failures = []

(* Trace assertions for the restart-from-disk scenarios. *)
let assert_restart ~label ~faulty outcome =
  let events = outcome.Runner.events in
  let failures = ref [] in
  let fail msg = failures := msg :: !failures in
  let replay_complete =
    first_event events ~replica:3 ~matches:(function
      | Event.Journal_replay_complete _ -> true
      | _ -> false)
  in
  let has matches = first_event events ~replica:3 ~matches <> None in
  (match replay_complete with
  | None -> fail "no journal replay on the restarted replica"
  | Some { Event.payload = Event.Journal_replay_complete { frontier; _ }; _ }
    when (not faulty) && frontier < 1_024 ->
      (* Honest disk: snapshot + suffix must prove the bulk of the
         pre-crash prefix, thousands of rounds at chaos throughput. *)
      fail
        (Printf.sprintf "journal replay recovered only %d rounds (want >= 1024)"
           frontier)
  | Some { Event.payload = Event.Journal_replay_complete { frontier; _ }; _ }
    when faulty && frontier < 1 ->
      fail "journal replay recovered an empty frontier"
  | Some _ -> ());
  if faulty then begin
    (* The disk lied; every injected fault must be detected — truncation
       of the journal suffix — or repaired via a snapshot install. *)
    if outcome.Runner.report.Rcc_runtime.Report.jrn_faults = 0 then
      fail "no storage faults were injected";
    if
      not
        (has (function
           | Event.Journal_truncated _ | Event.St_installed _ -> true
           | _ -> false))
    then fail "faulty disk: neither truncation nor a fallback install"
  end
  else begin
    (* Honest disk: the replayed frontier carries the rejoin. Catch-up
       for the rounds missed while dead may still win the race against
       contract recovery as an incremental install, but every install
       must start at or above the replayed frontier — a blob re-covering
       disk-proven rounds would mean the journal under-delivered. *)
    let frontier =
      match replay_complete with
      | Some
          { Event.payload = Event.Journal_replay_complete { frontier; _ }; _ }
        ->
          frontier
      | _ -> 0
    in
    match
      first_event events ~replica:3 ~matches:(function
        | Event.St_installed { seq; rounds; _ } -> seq - rounds < frontier
        | _ -> false)
    with
    | Some { Event.payload = Event.St_installed { seq; rounds; _ }; _ } ->
        fail
          (Printf.sprintf
             "clean-disk install re-covered disk-proven rounds (base %d < \
              replayed frontier %d)"
             (seq - rounds) frontier)
    | _ -> ()
  end;
  List.iter
    (fun msg -> Format.printf "FAIL restart(%s): %s@." label msg)
    (List.rev !failures);
  !failures = []

let run protocol_sel n duration seed runs scenario_seed smoke transfer restart
    journal canary quick exec_mode exec_threads trace_path trace_ring =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 16 * 1024 * 1024 };
  let protocols = protocols_of protocol_sel in
  let duration =
    Engine.of_seconds (if quick then Float.min duration 1.5 else duration)
  in
  let runs = if quick then min runs 2 else runs in
  let failed = ref false in
  let note outcome =
    if not (Runner.passed outcome) then failed := true;
    Format.printf "%a" Runner.pp_outcome outcome
  in
  let smoke_cfg ?(journal = journal) protocol =
    Config.make ~protocol ~n ~batch_size:10 ~clients:40 ~records:5_000
      ~duration ~warmup:(duration / 4)
      ~replica_timeout:(Engine.ms 250) ~client_timeout:(Engine.ms 400)
      ~collusion_wait:(Engine.ms 150) ~seed ~exec_mode ~exec_threads ~journal ()
  in
  (if smoke then
     List.iter
       (fun protocol ->
         note
           (Runner.run ~canary ~nemesis_seed:seed ?trace_path ?trace_ring
              (smoke_cfg protocol) (smoke_script duration)))
       protocols
   else if transfer then begin
     (* MultiZ runs this too since speculative rollback landed: with a
        replica partitioned away, clients fall back from the all-n
        speculative quorum to commit certificates, so the healthy
        majority keeps executing and the healed replica faces a
        snapshot-sized gap just like MultiP. *)
     List.iter
       (fun protocol ->
         (* Tracing always on: the scenario's verdict reads the events. *)
         let ring = Option.value trace_ring ~default:131_072 in
         let variant_path suffix =
           match trace_path with
           | None -> None
           | Some p when Filename.check_suffix p ".jsonl" ->
               Some (Filename.chop_suffix p ".jsonl" ^ suffix ^ ".jsonl")
           | Some p -> Some (p ^ suffix)
         in
         let clean =
           Runner.run ~canary ~nemesis_seed:seed ?trace_path:(variant_path "")
             ~trace_ring:ring (smoke_cfg protocol) (transfer_script duration)
         in
         note clean;
         if not (assert_transfer ~label:"heal" ~expect_reject:false clean) then
           failed := true;
         let corrupt =
           Runner.run ~canary ~nemesis_seed:seed
             ?trace_path:(variant_path ".corrupt") ~trace_ring:ring
             (smoke_cfg protocol)
             (corrupt_transfer_script duration)
         in
         note corrupt;
         if
           not (assert_transfer ~label:"corrupt-donor" ~expect_reject:true corrupt)
         then failed := true)
       protocols
   end
   else if restart then
     List.iter
       (fun protocol ->
         let ring = Option.value trace_ring ~default:131_072 in
         let variant_path suffix =
           match trace_path with
           | None -> None
           | Some p when Filename.check_suffix p ".jsonl" ->
               Some (Filename.chop_suffix p ".jsonl" ^ suffix ^ ".jsonl")
           | Some p -> Some (p ^ suffix)
         in
         let clean =
           Runner.run ~canary ~nemesis_seed:seed ?trace_path:(variant_path "")
             ~trace_ring:ring
             (smoke_cfg ~journal:true protocol)
             (restart_script duration)
         in
         note clean;
         if not (assert_restart ~label:"clean-disk" ~faulty:false clean) then
           failed := true;
         let faulty =
           Runner.run ~canary ~nemesis_seed:seed
             ?trace_path:(variant_path ".faulty") ~trace_ring:ring
             (smoke_cfg ~journal:true protocol)
             (faulty_restart_script duration)
         in
         note faulty;
         if not (assert_restart ~label:"faulty-disk" ~faulty:true faulty) then
           failed := true)
       protocols
   else
     match scenario_seed with
     | Some scenario_seed ->
         List.iter
           (fun protocol ->
             note
               (Fuzzer.run_one ~canary ?trace_path ?trace_ring ~exec_mode
                  ~exec_threads ~journal ~protocol ~n ~duration ~scenario_seed
                  ()))
           protocols
     | None ->
         let summary =
           Fuzzer.fuzz ~exec_mode ~exec_threads ~protocols ~n ~duration ~canary
             ~journal ~seed ~runs ()
         in
         Format.printf "%a" Fuzzer.pp_summary summary;
         if summary.Fuzzer.failures <> [] then failed := true);
  if !failed then exit 1

let cmd =
  let protocol =
    Arg.(value
         & opt (enum [ ("multip", `MultiP); ("multiz", `MultiZ); ("both", `Both) ]) `Both
         & info [ "p"; "protocol" ] ~doc:"Protocol(s) to fuzz: multip, multiz or both.")
  in
  let n = Arg.(value & opt int 4 & info [ "n"; "replicas" ] ~doc:"Number of replicas.") in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~doc:"Simulated seconds per scenario.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master fuzzing seed.") in
  let runs = Arg.(value & opt int 5 & info [ "runs" ] ~doc:"Scenarios per protocol.") in
  let scenario_seed =
    Arg.(value & opt (some int) None
         & info [ "scenario-seed" ]
             ~doc:"Reproduce the single scenario with this seed (from a failure report).")
  in
  let smoke = Arg.(value & flag & info [ "smoke" ] ~doc:"Run the bundled smoke scenario.") in
  let transfer =
    Arg.(value & flag
         & info [ "transfer" ]
             ~doc:"Run the bundled state-transfer scenarios: a long \
                   partition healed into a snapshot install, and a \
                   corrupt-donor variant that must reject forged payloads \
                   before recovering.")
  in
  let restart =
    Arg.(value & flag
         & info [ "restart" ]
             ~doc:"Run the bundled restart-from-disk scenarios (journaling \
                   on): a clean-disk power failure whose journal replay must \
                   carry the rejoin, and a lying-disk variant whose injected \
                   faults must be detected or repaired via state transfer.")
  in
  let journal =
    Arg.(value & flag
         & info [ "journal" ]
             ~doc:"Give every replica a durable write-ahead journal and \
                   unlock the fuzzer's storage episode families \
                   (power-failure restart-from-disk, lying disks, restart \
                   storms).")
  in
  let canary =
    Arg.(value & flag
         & info [ "canary" ]
             ~doc:"Enable the intentionally-broken no-commits invariant to demo failure reporting.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Cap duration and runs for CI.") in
  let exec_mode =
    let mode_conv =
      let parse s =
        match String.lowercase_ascii s with
        | "serial" -> Ok Config.Exec_serial
        | "parallel" -> Ok Config.Exec_parallel
        | other -> Error (`Msg (Printf.sprintf "unknown exec mode %S" other))
      in
      Arg.conv
        (parse, fun fmt m -> Format.pp_print_string fmt (Config.exec_mode_name m))
    in
    Arg.(value & opt mode_conv Config.Exec_serial
         & info [ "exec-mode" ]
             ~doc:"Execution scheduler under chaos: serial or parallel                    (conflict-aware execute pool).")
  in
  let exec_threads =
    Arg.(value & opt int 4
         & info [ "exec-threads" ] ~doc:"Execute-pool size (parallel mode).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record a structured trace of the run (--smoke or \
                   --scenario-seed) and write it to $(docv): Chrome \
                   trace-event JSON, or JSONL when $(docv) ends in .jsonl. \
                   With several protocols the file is overwritten per run.")
  in
  let trace_ring =
    Arg.(value & opt (some int) None
         & info [ "trace-ring" ] ~docv:"N"
             ~doc:"Trace ring-buffer capacity in events (default 65536).")
  in
  let term =
    Term.(const run $ protocol $ n $ duration $ seed $ runs $ scenario_seed
          $ smoke $ transfer $ restart $ journal $ canary $ quick $ exec_mode
          $ exec_threads $ trace $ trace_ring)
  in
  Cmd.v
    (Cmd.info "rcc-chaos"
       ~doc:"Seeded chaos fuzzing of RCC clusters with invariant checking")
    term

let () = exit (Cmd.eval cmd)
