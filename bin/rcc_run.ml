(* rcc-run: run one simulated deployment from the command line.

     dune exec bin/rcc_run.exe -- --protocol multip -n 32 --batch 100
     dune exec bin/rcc_run.exe -- --protocol zyzzyva -n 16 --fault crash:15
     dune exec bin/rcc_run.exe -- --protocol multip -n 32 --fault collusion:12 \
         --duration 5 --replica-timeout 1 --timeline
*)

open Cmdliner

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "pbft" -> Ok Rcc_runtime.Config.Pbft
    | "zyzzyva" | "zyz" -> Ok Rcc_runtime.Config.Zyzzyva
    | "hotstuff" | "hs" -> Ok Rcc_runtime.Config.Hotstuff
    | "multip" -> Ok Rcc_runtime.Config.MultiP
    | "multiz" -> Ok Rcc_runtime.Config.MultiZ
    | "cft" -> Ok Rcc_runtime.Config.Cft
    | "multic" -> Ok Rcc_runtime.Config.MultiC
    | other -> Error (`Msg (Printf.sprintf "unknown protocol %S" other))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Rcc_runtime.Config.protocol_name p))

(* crash:ID[,ID..] | dark:INSTANCE:VICTIM[,VICTIM..] | collusion:VICTIM[:ROUND]
   | dos:INSTANCE *)
let fault_conv =
  let parse s =
    let ids part = List.map int_of_string (String.split_on_char ',' part) in
    match String.split_on_char ':' s with
    | [ "none" ] -> Ok Rcc_runtime.Config.No_fault
    | [ "crash"; list ] -> Ok (Rcc_runtime.Config.Crash (ids list))
    | [ "dark"; instance; victims ] ->
        Ok
          (Rcc_runtime.Config.Dark
             { instance = int_of_string instance; victims = ids victims })
    | [ "collusion"; victim ] ->
        Ok
          (Rcc_runtime.Config.Collusion
             { victim = int_of_string victim; at_round = 100 })
    | [ "collusion"; victim; round ] ->
        Ok
          (Rcc_runtime.Config.Collusion
             { victim = int_of_string victim; at_round = int_of_string round })
    | [ "dos"; instance ] ->
        Ok (Rcc_runtime.Config.Client_dos { instance = int_of_string instance })
    | _ -> Error (`Msg (Printf.sprintf "cannot parse fault %S" s))
  in
  let print fmt = function
    | Rcc_runtime.Config.No_fault -> Format.pp_print_string fmt "none"
    | Rcc_runtime.Config.Crash l ->
        Format.fprintf fmt "crash:%s" (String.concat "," (List.map string_of_int l))
    | Rcc_runtime.Config.Dark { instance; victims } ->
        Format.fprintf fmt "dark:%d:%s" instance
          (String.concat "," (List.map string_of_int victims))
    | Rcc_runtime.Config.Collusion { victim; at_round } ->
        Format.fprintf fmt "collusion:%d:%d" victim at_round
    | Rcc_runtime.Config.Client_dos { instance } -> Format.fprintf fmt "dos:%d" instance
  in
  Arg.conv ~docv:"FAULT" (parse, print)

let exec_mode_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "serial" -> Ok Rcc_runtime.Config.Exec_serial
    | "parallel" -> Ok Rcc_runtime.Config.Exec_parallel
    | other -> Error (`Msg (Printf.sprintf "unknown exec mode %S" other))
  in
  Arg.conv
    ( parse,
      fun fmt m ->
        Format.pp_print_string fmt (Rcc_runtime.Config.exec_mode_name m) )

let run protocol n batch_size clients duration warmup replica_timeout
    client_timeout collusion_wait z seed fault exec_mode exec_threads
    exec_window theta write_ratio records arrival_rate arrival_process
    max_in_flight journal storage_faults trace trace_ring timeline quiet =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 16 * 1024 * 1024 };
  let seconds f = Rcc_sim.Engine.of_seconds f in
  let cfg =
    Rcc_runtime.Config.make ~protocol ~n ~batch_size ~clients
      ~duration:(seconds duration) ~warmup:(seconds warmup)
      ?replica_timeout:(Option.map seconds replica_timeout)
      ?client_timeout:(Option.map seconds client_timeout)
      ?collusion_wait:(Option.map seconds collusion_wait)
      ?z ~seed ~fault ~exec_mode ~exec_threads ~exec_window
      ?theta ?write_ratio ?records ?arrival_rate ~arrival_process
      ?max_in_flight ~journal ~storage_faults ()
  in
  if not quiet then
    Printf.eprintf
      "running %s n=%d f=%d z=%d batch=%d clients=%d exec=%s%s for %.1fs...\n%!"
      (Rcc_runtime.Config.protocol_name protocol)
      cfg.Rcc_runtime.Config.n cfg.Rcc_runtime.Config.f cfg.Rcc_runtime.Config.z
      batch_size clients
      (Rcc_runtime.Config.exec_mode_name cfg.Rcc_runtime.Config.exec_mode)
      (match cfg.Rcc_runtime.Config.exec_mode with
      | Rcc_runtime.Config.Exec_parallel ->
          Printf.sprintf "(%d threads, window %d)"
            cfg.Rcc_runtime.Config.exec_threads
            cfg.Rcc_runtime.Config.exec_window
      | Rcc_runtime.Config.Exec_serial -> "")
      duration;
  let tracer =
    Option.map (fun _ -> Rcc_trace.Recorder.create ?capacity:trace_ring ()) trace
  in
  let report = Rcc_runtime.Cluster.run_config ?tracer cfg in
  (match (trace, tracer) with
  | Some path, Some recorder ->
      if Filename.check_suffix path ".jsonl" then
        Rcc_trace.Sink.write_jsonl recorder ~path
      else Rcc_trace.Sink.write_chrome recorder ~path;
      if not quiet then
        Printf.eprintf "trace: %d events recorded, %d kept -> %s\n%!"
          (Rcc_trace.Recorder.recorded recorder)
          (Rcc_trace.Recorder.stored recorder)
          path
  | _ -> ());
  Format.printf "%a@." Rcc_runtime.Report.pp report;
  if timeline then begin
    Format.printf "@.timeline (client txn/s per 100ms):@.";
    Array.iter
      (fun (t, rate) -> Format.printf "  %6.1fs %12.0f@." t rate)
      report.Rcc_runtime.Report.timeline
  end

let cmd =
  let protocol =
    Arg.(value & opt protocol_conv Rcc_runtime.Config.MultiP
         & info [ "p"; "protocol" ] ~doc:"Protocol: pbft, zyzzyva, hotstuff, multip, multiz.")
  in
  let n = Arg.(value & opt int 16 & info [ "n"; "replicas" ] ~doc:"Number of replicas.") in
  let batch = Arg.(value & opt int 100 & info [ "b"; "batch" ] ~doc:"Transactions per batch.") in
  let clients = Arg.(value & opt int 120 & info [ "clients" ] ~doc:"Total simulated clients (closed-loop loopers, or the open-loop pool size).") in
  let duration = Arg.(value & opt float 1.0 & info [ "duration" ] ~doc:"Simulated seconds.") in
  let warmup = Arg.(value & opt float 0.3 & info [ "warmup" ] ~doc:"Warmup seconds (excluded from stats).") in
  let replica_timeout =
    Arg.(value & opt (some float) None & info [ "replica-timeout" ] ~doc:"Replica watchdog seconds (default 10).")
  in
  let client_timeout =
    Arg.(value & opt (some float) None & info [ "client-timeout" ] ~doc:"Client retry timeout seconds (default 15).")
  in
  let collusion_wait =
    Arg.(value & opt (some float) None & info [ "collusion-wait" ] ~doc:"Coordinator collusion wait seconds (default 5).")
  in
  let z = Arg.(value & opt (some int) None & info [ "z"; "instances" ] ~doc:"Concurrent instances (default f+1 for RCC).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let fault =
    Arg.(value & opt fault_conv Rcc_runtime.Config.No_fault
         & info [ "fault" ] ~doc:"Fault injection: none, crash:IDS, dark:INST:VICTIMS, collusion:VICTIM[:ROUND], dos:INST.")
  in
  let exec_mode =
    Arg.(value & opt exec_mode_conv Rcc_runtime.Config.Exec_serial
         & info [ "exec-mode" ]
             ~doc:"Execution scheduler: serial (strict order, the digest-gated                    default) or parallel (conflict-aware dependency groups on                    an execute pool).")
  in
  let exec_threads =
    Arg.(value & opt int 4
         & info [ "exec-threads" ] ~doc:"Execute-pool size (parallel mode).")
  in
  let exec_window =
    Arg.(value & opt int 8
         & info [ "exec-window" ]
             ~doc:"Max consecutive rounds per conflict-analysis window.")
  in
  let theta =
    Arg.(value & opt (some float) None
         & info [ "theta" ] ~doc:"YCSB Zipf skew (default 0.9).")
  in
  let write_ratio =
    Arg.(value & opt (some float) None
         & info [ "write-ratio" ] ~doc:"YCSB write fraction (default 0.9).")
  in
  let records =
    Arg.(value & opt (some int) None
         & info [ "records" ] ~doc:"YCSB table size (default 500000).")
  in
  let arrival_rate =
    Arg.(value & opt (some float) None
         & info [ "arrival-rate" ] ~docv:"TXN_PER_S"
             ~doc:"Open-loop offered load in transactions per second. When \
                   set, requests arrive under a deterministic arrival \
                   process and claim idle clients instead of each client \
                   looping; the default (unset) keeps closed-loop clients.")
  in
  let arrival_process =
    let process_conv =
      let parse s =
        match String.lowercase_ascii s with
        | "poisson" -> Ok Rcc_runtime.Config.Poisson
        | "uniform" -> Ok Rcc_runtime.Config.Uniform
        | other -> Error (`Msg (Printf.sprintf "unknown arrival process %S" other))
      in
      Arg.conv
        ( parse,
          fun fmt p ->
            Format.pp_print_string fmt
              (Rcc_runtime.Config.arrival_process_name p) )
    in
    Arg.(value & opt process_conv Rcc_runtime.Config.Poisson
         & info [ "arrival" ] ~docv:"PROCESS"
             ~doc:"Open-loop arrival process: poisson or uniform.")
  in
  let max_in_flight =
    Arg.(value & opt (some int) None
         & info [ "max-in-flight" ] ~docv:"N"
             ~doc:"Open-loop cap on concurrent outstanding requests; \
                   arrivals beyond it are counted as drops. Default: one \
                   per client.")
  in
  let journal =
    Arg.(value & flag
         & info [ "journal" ]
             ~doc:"Give every replica a durable write-ahead journal plus \
                   periodic checkpoint snapshots on a simulated disk \
                   (group-committed, modeled fsync cost, off the execute \
                   path). Off by default: fault-free digests are \
                   byte-identical without it.")
  in
  let storage_faults =
    Arg.(value & opt float 0.0
         & info [ "storage-faults" ] ~docv:"P"
             ~doc:"Probability each journal record / snapshot write is \
                   torn, corrupted or silently lost (per fault mode). \
                   Requires --journal to matter.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record a structured trace and write it to $(docv): Chrome \
                   trace-event JSON (chrome://tracing, Perfetto), or JSONL \
                   when $(docv) ends in .jsonl.")
  in
  let trace_ring =
    Arg.(value & opt (some int) None
         & info [ "trace-ring" ] ~docv:"N"
             ~doc:"Trace ring-buffer capacity in events (default 65536); \
                   only the trailing $(docv) events are kept.")
  in
  let timeline = Arg.(value & flag & info [ "timeline" ] ~doc:"Print the throughput timeline.") in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the progress line.") in
  let term =
    Term.(const run $ protocol $ n $ batch $ clients $ duration $ warmup
          $ replica_timeout $ client_timeout $ collusion_wait $ z $ seed $ fault
          $ exec_mode $ exec_threads $ exec_window $ theta $ write_ratio
          $ records $ arrival_rate $ arrival_process $ max_in_flight
          $ journal $ storage_faults $ trace $ trace_ring $ timeline $ quiet)
  in
  Cmd.v (Cmd.info "rcc-run" ~doc:"Run one RCC/BFT deployment in the simulator") term

let () = exit (Cmd.eval cmd)
