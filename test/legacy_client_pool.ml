(* Verbatim copy of the seed (pre-SoA) client pool, kept as the reference
   implementation for the QCheck parity property in test_client_pool.ml:
   closed-loop runs over the flat-array pool must produce identical
   completion/instance-change/event counts to this one. Do not "improve"
   this file — its value is being frozen. *)

module Engine = Rcc_sim.Engine
module Net = Rcc_sim.Net
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Bitset = Rcc_common.Bitset

type quorum = Majority_fplus1 | All_n_speculative

type config = {
  n : int;
  f : int;
  z : int;
  clients : int;
  machines : int;
  batch_size : int;
  quorum : quorum;
  request_timeout : Rcc_sim.Engine.time;
  instance_change_after : int;
  first_node : int;
  records : int;
  write_ratio : float;
  theta : float;
  seed : int;
}

type outstanding = {
  batch : Batch.t;
  sent_at : Engine.time;
  (* response-digest key -> (replicas that sent it, round they reported).
     The round rides with its key: a stale speculative response that
     survived a view change carries a pre-rollback history (its own key),
     and the commit certificate must name the round of the quorum that
     actually matched — not whichever response happened to arrive
     first. *)
  mutable responses : (string * Bitset.t * int) list;
  mutable commit_acks : Bitset.t option;  (* Zyzzyva commit phase *)
  mutable timer : Engine.timer;
}

type client = {
  id : Rcc_common.Ids.client_id;
  machine : int;
  secret : Rcc_crypto.Signature.secret_key;
  gen : Rcc_workload.Ycsb.t;
  mutable instance : Rcc_common.Ids.instance_id;
  mutable out : outstanding option;
  mutable resends : int;
  mutable degraded : bool;
      (* All_n_speculative only: a timeout fired while a 2f+1-strong
         response set was already in hand, i.e. some replica is down or
         cut off and the all-n fast path cannot complete. While set, the
         commit-certificate phase starts as soon as 2f+1 matching
         responses arrive instead of waiting out the timer each batch —
         otherwise one dead replica stalls every client to timeout speed.
         Cleared by the next full-speculative completion. *)
}

type t = {
  engine : Engine.t;
  net : Msg.t Net.t;
  metrics : Rcc_replica.Metrics.t;
  cfg : config;
  primary_of_instance : Rcc_common.Ids.instance_id -> Rcc_common.Ids.replica_id;
  clients : client array;
  mutable next_batch_id : int;
  mutable completed : int;
  mutable instance_changes : int;
  mutable stopped : bool;
}

let send_request t client (batch : Batch.t) =
  let dst = t.primary_of_instance client.instance in
  let msg = Msg.Client_request { instance = client.instance; batch } in
  Net.send t.net ~src:client.machine ~dst ~size:(Msg.size msg) msg

(* Zyzzyva second phase: enough matching speculative responses to form a
   commit certificate — sequenced at the matching quorum's own round. *)
let begin_commit_phase t client out ~key ~set ~round =
  out.commit_acks <- Some (Bitset.create t.cfg.n);
  let cert =
    Msg.Commit_cert
      {
        cc_instance = client.instance;
        cc_seq = round;
        cc_client = client.id;
        cc_digest = String.sub key 0 (min 32 (String.length key));
        cc_replicas = Bitset.to_list set;
      }
  in
  let size = Msg.size cert in
  for dst = 0 to t.cfg.n - 1 do
    Net.send t.net ~src:client.machine ~dst ~size cert
  done

let rec complete t client out =
  Engine.cancel out.timer;
  client.out <- None;
  client.resends <- 0;
  t.completed <- t.completed + 1;
  let now = Engine.now t.engine in
  Rcc_replica.Metrics.record_completion ~instance:client.instance t.metrics ~now
    ~ntxns:(Array.length out.batch.Batch.txns)
    ~latency:(now - out.sent_at);
  send_next t client

and arm_timer t client out =
  out.timer <-
    Engine.timer_after t.engine t.cfg.request_timeout (fun () ->
        on_timeout t client out)

and on_timeout t client out =
  match client.out with
  | Some current when current == out && not t.stopped -> begin
      let cc_quorum = (2 * t.cfg.f) + 1 in
      let strong =
        List.find_opt (fun (_, set, _) -> Bitset.count set >= cc_quorum)
      in
      match (t.cfg.quorum, out.commit_acks, strong out.responses) with
      | All_n_speculative, None, Some (key, set, round) ->
          (* A strong quorum was in hand yet the all-n set never closed:
             some replica is unreachable. Degrade this client so its next
             batches fall back without eating the timeout again. *)
          client.degraded <- true;
          begin_commit_phase t client out ~key ~set ~round;
          arm_timer t client out
      | (Majority_fplus1 | All_n_speculative), _, _ ->
          (* Resend; after enough failures, defect to another instance
             (§3.6 instance-change). *)
          client.resends <- client.resends + 1;
          if
            t.cfg.instance_change_after > 0
            && client.resends mod t.cfg.instance_change_after = 0
            && t.cfg.z > 1
          then begin
            client.instance <- (client.instance + 1) mod t.cfg.z;
            t.instance_changes <- t.instance_changes + 1;
            let notice =
              Msg.Instance_change { client = client.id; instance = client.instance }
            in
            Net.send t.net ~src:client.machine
              ~dst:(t.primary_of_instance client.instance)
              ~size:(Msg.size notice) notice
          end;
          send_request t client out.batch;
          arm_timer t client out
    end
  | Some _ | None -> ()

and send_next t client =
  if t.stopped then ()
  else begin
  let txns = Rcc_workload.Ycsb.batch client.gen ~size:t.cfg.batch_size in
  let id = t.next_batch_id in
  t.next_batch_id <- id + 1;
  let batch = Batch.create ~id ~client:client.id ~txns ~secret:client.secret in
  let out =
    {
      batch;
      sent_at = Engine.now t.engine;
      responses = [];
      commit_acks = None;
      timer = Engine.timer_after t.engine 0 (fun () -> ());
    }
  in
  Engine.cancel out.timer;
  client.out <- Some out;
  send_request t client batch;
  arm_timer t client out
  end

let handle_response t client_id ~src result_digest history batch_id round =
  let client = t.clients.(client_id) in
  match client.out with
  | Some out when batch_id = out.batch.Batch.id ->
      (* Responses keep accumulating even after the commit phase starts:
         a degraded client certs at 2f+1, but if the straggler's
         speculative response lands anyway, the full all-n set commits
         on the spot — and proves the cluster healed. *)
      let in_commit_phase = Option.is_some out.commit_acks in
      let key = result_digest ^ history in
      let set, set_round =
        match
          List.find_opt (fun (k, _, _) -> String.equal k key) out.responses
        with
        | Some (_, set, r) -> (set, r)
        | None ->
            let set = Bitset.create t.cfg.n in
            out.responses <- (key, set, round) :: out.responses;
            (set, round)
      in
      if Bitset.add set src then begin
        match t.cfg.quorum with
        | Majority_fplus1 ->
            if (not in_commit_phase) && Bitset.count set >= t.cfg.f + 1 then
              complete t client out
        | All_n_speculative ->
            let count = Bitset.count set in
            if count >= t.cfg.n then begin
              (* The fast path closed again: the cluster healed. *)
              client.degraded <- false;
              complete t client out
            end
            else if (not in_commit_phase) && client.degraded
                    && count >= (2 * t.cfg.f) + 1 then
              (* Known-degraded cluster: go to the commit phase the
                 moment a strong quorum matches, at its own round. *)
              begin_commit_phase t client out ~key ~set ~round:set_round
      end
  | Some _ | None -> ()

let handle_local_commit t client_id ~src =
  let client = t.clients.(client_id) in
  match client.out with
  | Some ({ commit_acks = Some acks; _ } as out) ->
      if Bitset.add acks src && Bitset.count acks >= (2 * t.cfg.f) + 1 then
        complete t client out
  | Some _ | None -> ()

let create ~engine ~net ~keychain ~metrics ~primary_of_instance cfg =
  let zipf = Rcc_workload.Zipf.create ~n:cfg.records ~theta:cfg.theta in
  let gens =
    Array.init cfg.machines (fun m ->
        Rcc_workload.Ycsb.create_shared ~zipf ~write_ratio:cfg.write_ratio
          ~seed:(cfg.seed + (7919 * m)))
  in
  let clients =
    Array.init cfg.clients (fun c ->
        {
          id = c;
          machine = cfg.first_node + (c mod cfg.machines);
          secret = Rcc_crypto.Keychain.client_secret keychain c;
          gen = gens.(c mod cfg.machines);
          instance = c mod cfg.z;
          out = None;
          resends = 0;
          degraded = false;
        })
  in
  let t =
    {
      engine;
      net;
      metrics;
      cfg;
      primary_of_instance;
      clients;
      next_batch_id = 0;
      completed = 0;
      instance_changes = 0;
      stopped = false;
    }
  in
  (* All clients of a machine share its delivery handler; dispatch on the
     client id carried in every replica->client message. *)
  for m = 0 to cfg.machines - 1 do
    Net.register net (cfg.first_node + m) (fun ~src ~size:_ msg ->
        match msg with
        | Msg.Response { client; batch_id; result_digest; history; round; _ } ->
            handle_response t client ~src result_digest history batch_id round
        | Msg.Local_commit { client; _ } -> handle_local_commit t client ~src
        | _ -> ())
  done;
  t

let start t =
  Array.iteri
    (fun i client ->
      Engine.schedule_after t.engine (Engine.us (i mod 1000)) (fun () ->
          send_next t client))
    t.clients

let stop t = t.stopped <- true

let completed_batches t = t.completed
let instance_changes t = t.instance_changes
let client_instance t c = t.clients.(c).instance
