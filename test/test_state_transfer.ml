(* State-transfer tests: snapshot codec and verification, the manager's
   probe/fetch/install state machine against stub hooks (donor timeout
   failover, corrupt-donor rejection), install cache invalidation, and a
   cluster-level partition/heal run asserting the lagging replica
   converges through a snapshot rather than replay. *)

module Engine = Rcc_sim.Engine
module Msg = Rcc_messages.Msg
module Block = Rcc_storage.Block
module Ledger = Rcc_storage.Ledger
module Kv = Rcc_storage.Kv_store
module Snapshot = Rcc_storage.Snapshot
module Batch = Rcc_messages.Batch
module Manager = Rcc_state_transfer.Manager
module Latch = Rcc_state_transfer.Latch
module Config = Rcc_runtime.Config
module Report = Rcc_runtime.Report
module Cluster = Rcc_runtime.Cluster
module Script = Rcc_chaos.Script
module Nemesis = Rcc_chaos.Nemesis
module Invariant = Rcc_chaos.Invariant

let check = Alcotest.check

let primaries = [ 0; 1 ]

let proof i =
  {
    Block.instance = i;
    batch_digest = Rcc_crypto.Sha256.digest (Printf.sprintf "batch-%d" i);
    certificate_digest = Rcc_crypto.Sha256.digest (Printf.sprintf "cert-%d" i);
  }

(* A valid [rounds]-block chain from the [primaries] genesis, with
   per-round proof digests so every block hashes distinctly. *)
let ledger_of ~rounds =
  let ledger = Ledger.create ~primaries in
  for round = 0 to rounds - 1 do
    let proofs =
      [
        { (proof 0) with
          Block.batch_digest =
            Rcc_crypto.Sha256.digest (Printf.sprintf "b0-%d" round);
        };
        proof 1;
      ]
    in
    Ledger.append_exn ledger
      {
        Block.round;
        prev_hash = Ledger.head_hash ledger;
        proofs;
        primaries;
        clients = [ round mod 7 ];
      }
  done;
  ledger

(* KV table with the dense YCSB records plus spill keys outside the
   dense range — both shapes must survive the snapshot roundtrip. *)
let store_with_spill () =
  let store = Kv.create () in
  Kv.init_records store ~count:50;
  Kv.write store ~key:3 ~value:77;
  Kv.write store ~key:9_999 ~value:1;
  Kv.write store ~key:123_456 ~value:42;
  store

let snapshot_of ~rounds =
  let ledger = ledger_of ~rounds in
  let store = store_with_spill () in
  {
    Snapshot.seq = rounds;
    blocks = Ledger.prefix ledger ~upto:rounds;
    kv = Some (Kv.entries store);
    replied = [ (4, Rcc_crypto.Sha256.digest "req", rounds - 1, "result") ];
  }

(* --- snapshot codec ----------------------------------------------------- *)

let test_snapshot_roundtrip () =
  let snap = snapshot_of ~rounds:12 in
  let head = Ledger.head_hash (ledger_of ~rounds:12) in
  match Snapshot.decode (Snapshot.encode snap) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok got ->
      check Alcotest.int "seq" snap.Snapshot.seq got.Snapshot.seq;
      check Alcotest.int "blocks" 12 (Array.length got.Snapshot.blocks);
      check Alcotest.bool "kv preserved" true (snap.Snapshot.kv = got.Snapshot.kv);
      check Alcotest.bool "replied preserved" true
        (snap.Snapshot.replied = got.Snapshot.replied);
      check Alcotest.string "kv digest stable"
        (Snapshot.kv_digest snap.Snapshot.kv)
        (Snapshot.kv_digest got.Snapshot.kv);
      (match Snapshot.verify ~primaries got with
      | Ok h -> check Alcotest.string "verified head = chain head" head h
      | Error e -> Alcotest.failf "verify failed: %s" e)

let test_snapshot_roundtrip_unmaterialized () =
  let snap = { (snapshot_of ~rounds:8) with Snapshot.kv = None; replied = [] } in
  match Snapshot.decode (Snapshot.encode snap) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok got ->
      check Alcotest.bool "kv none" true (got.Snapshot.kv = None);
      check Alcotest.string "kv digest empty" "" (Snapshot.kv_digest got.Snapshot.kv);
      check Alcotest.bool "verifies" true (Result.is_ok (Snapshot.verify ~primaries got))

(* Single-byte corruptions must either be caught before install — decoder
   rejection, chain break, or head/kv digest mismatch — or land only in
   fields the design explicitly leaves unattested: certificate digests
   and primaries (excluded from block identity because replicas
   legitimately hold different valid quorums) and the best-effort reply
   cache. Nothing that reaches agreed state may change. *)
let test_snapshot_corruption_rejected () =
  let snap = snapshot_of ~rounds:6 in
  let attested_head =
    match Snapshot.verify ~primaries snap with
    | Ok h -> h
    | Error e -> Alcotest.failf "pristine snapshot must verify: %s" e
  in
  let attested_kv = Snapshot.kv_digest snap.Snapshot.kv in
  let blob = Snapshot.encode snap in
  let step = max 1 (String.length blob / 97) in
  let pos = ref 0 in
  while !pos < String.length blob do
    let b = Bytes.of_string blob in
    Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0x40));
    let attested_fields_intact (forged : Snapshot.t) =
      forged.Snapshot.seq = snap.Snapshot.seq
      && Array.length forged.Snapshot.blocks = Array.length snap.Snapshot.blocks
      && Array.for_all2
           (fun (f : Block.t) (o : Block.t) ->
             f.Block.round = o.Block.round
             && String.equal f.Block.prev_hash o.Block.prev_hash
             && f.Block.clients = o.Block.clients
             && List.length f.Block.proofs = List.length o.Block.proofs
             && List.for_all2
                  (fun (fp : Block.proof) (op : Block.proof) ->
                    fp.Block.instance = op.Block.instance
                    && String.equal fp.Block.batch_digest op.Block.batch_digest)
                  f.Block.proofs o.Block.proofs)
           forged.Snapshot.blocks snap.Snapshot.blocks
      && forged.Snapshot.kv = snap.Snapshot.kv
    in
    let ok =
      match Snapshot.decode (Bytes.unsafe_to_string b) with
      | Error _ -> true
      | Ok forged -> (
          match Snapshot.verify ~primaries forged with
          | Error _ -> true
          | Ok head ->
              if
                (not (String.equal head attested_head))
                || not
                     (String.equal
                        (Snapshot.kv_digest forged.Snapshot.kv)
                        attested_kv)
              then true (* caught by the requester's attested comparison *)
              else attested_fields_intact forged)
    in
    if not ok then
      Alcotest.failf "corruption at byte %d of %d reached attested state" !pos
        (String.length blob);
    pos := !pos + step
  done

(* --- manager state machine --------------------------------------------- *)

(* A requester manager wired to stub hooks: donors are simulated by
   feeding replies through [on_msg], sends are captured for inspection,
   and install lands in a real ledger + store so cache invalidation is
   exercised too. *)
type world = {
  mgr : Manager.t;
  engine : Engine.t;
  sent : (Rcc_common.Ids.replica_id option * Msg.t) list ref;
      (* (Some dst | None = broadcast, msg), newest first *)
  ledger : Ledger.t;
  store : Kv.t;
  executed : int ref;
  installed : int ref;
}

let donor_rounds = 32

(* checkpoint_interval 4 -> snapshot boundary every 16 rounds. *)
let interval = 4

let make_world ?(corrupt = ref false) () =
  let engine = Engine.create () in
  let sent = ref [] in
  let ledger = Ledger.create ~primaries in
  let store = Kv.create () in
  let executed = ref (-1) in
  let installed = ref 0 in
  let hooks =
    {
      Manager.n = 4;
      f = 1;
      self = 3;
      engine;
      timeout = Engine.ms 100;
      checkpoint_interval = interval;
      materialized = true;
      primaries;
      send = (fun ~dst msg -> sent := (Some dst, msg) :: !sent);
      broadcast = (fun msg -> sent := (None, msg) :: !sent);
      head = (fun () -> Ledger.head_hash ledger);
      kv_entries = (fun () -> Some (Kv.entries store));
      blocks_prefix = (fun ~upto -> Ledger.prefix ledger ~upto);
      replied_entries = (fun () -> []);
      executed_upto = (fun () -> !executed);
      attesters = (fun ~seq:_ -> []);
      corrupt_reply = (fun () -> !corrupt);
      install =
        (fun snap ~proof:_ ->
          Ledger.install ledger snap.Snapshot.blocks;
          Batch.reset_memo ();
          (match snap.Snapshot.kv with
          | Some entries -> Kv.install store entries
          | None -> ());
          executed := snap.Snapshot.seq - 1;
          incr installed);
    }
  in
  { mgr = Manager.create hooks; engine; sent; ledger; store; executed; installed }

let advance w ms_ =
  let target = Engine.now w.engine + Engine.ms ms_ in
  Engine.schedule_at w.engine target (fun () -> ());
  Engine.run w.engine ~until:target

(* The donor's state all stub donors serve from. *)
let donor_snapshot () =
  let ledger = ledger_of ~rounds:donor_rounds in
  let store = store_with_spill () in
  ( {
      Snapshot.seq = donor_rounds;
      blocks = Ledger.prefix ledger ~upto:donor_rounds;
      kv = Some (Kv.entries store);
      replied = [];
    },
    Ledger.head_hash ledger )

let offer_from w ~src ~head ~kv_digest =
  Manager.on_msg w.mgr ~src
    (Msg.Snapshot_reply
       {
         sp_seq = donor_rounds;
         sp_head = head;
         sp_kv = kv_digest;
         sp_attesters = [];
         sp_payload = None;
       })

let full_reply_from w ~src blob ~head ~kv_digest =
  Manager.on_msg w.mgr ~src
    (Msg.Snapshot_reply
       {
         sp_seq = donor_rounds;
         sp_head = head;
         sp_kv = kv_digest;
         sp_attesters = [];
         sp_payload = Some blob;
       })

let fetch_target w =
  match !(w.sent) with
  | (Some dst, Msg.Snapshot_request { fetch = true; _ }) :: _ -> Some dst
  | _ -> None

(* Stall past the timeout, collect offers from f+1 donors, and return the
   donor the manager picked. *)
let stall_and_probe w ~head ~kv_digest =
  advance w 150;
  Manager.tick w.mgr;
  (match !(w.sent) with
  | (None, Msg.Snapshot_request { fetch = false; _ }) :: _ -> ()
  | _ -> Alcotest.fail "stall did not broadcast a probe");
  offer_from w ~src:0 ~head ~kv_digest;
  check Alcotest.bool "single offer not fetched yet" true (fetch_target w = None);
  offer_from w ~src:1 ~head ~kv_digest;
  match fetch_target w with
  | Some dst -> dst
  | None -> Alcotest.fail "f+1 matching offers did not start a fetch"

let test_manager_install_path () =
  let w = make_world () in
  let snap, head = donor_snapshot () in
  let kvd = Snapshot.kv_digest snap.Snapshot.kv in
  let donor = stall_and_probe w ~head ~kv_digest:kvd in
  check Alcotest.int "fetches from first offerer" 0 donor;
  full_reply_from w ~src:donor (Snapshot.encode snap) ~head ~kv_digest:kvd;
  check Alcotest.int "installed" 1 !(w.installed);
  check Alcotest.int "frontier jumped" (donor_rounds - 1) !(w.executed);
  check Alcotest.int "ledger replaced" donor_rounds (Ledger.length w.ledger);
  check Alcotest.string "ledger head = donor head" head (Ledger.head_hash w.ledger);
  check Alcotest.(option int) "kv spill key installed" (Some 42)
    (Kv.read w.store 123_456);
  let stats = Manager.stats w.mgr in
  check Alcotest.int "stats installs" 1 stats.Manager.installs;
  check Alcotest.int "stats rounds skipped" donor_rounds stats.Manager.rounds_skipped;
  check Alcotest.bool "bytes counted" true (stats.Manager.bytes_in > 0)

let test_manager_donor_timeout_failover () =
  let w = make_world () in
  let snap, head = donor_snapshot () in
  let kvd = Snapshot.kv_digest snap.Snapshot.kv in
  let first = stall_and_probe w ~head ~kv_digest:kvd in
  (* First donor never answers; the per-donor timeout must fail over to
     the second offerer, not re-probe from scratch. *)
  advance w 150;
  Manager.tick w.mgr;
  (match fetch_target w with
  | Some second ->
      check Alcotest.bool "failover donor differs" true (second <> first);
      full_reply_from w ~src:second (Snapshot.encode snap) ~head ~kv_digest:kvd
  | None -> Alcotest.fail "timeout did not fail over to the next donor");
  check Alcotest.int "installed after failover" 1 !(w.installed);
  let stats = Manager.stats w.mgr in
  check Alcotest.int "timeout counted as reject" 1 stats.Manager.rejects

let test_manager_rejects_corrupt_then_recovers () =
  let w = make_world () in
  let snap, head = donor_snapshot () in
  let kvd = Snapshot.kv_digest snap.Snapshot.kv in
  let blob = Snapshot.encode snap in
  let corrupt =
    let b = Bytes.of_string blob in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Bytes.unsafe_to_string b
  in
  let first = stall_and_probe w ~head ~kv_digest:kvd in
  full_reply_from w ~src:first corrupt ~head ~kv_digest:kvd;
  check Alcotest.int "corrupt blob not installed" 0 !(w.installed);
  (match fetch_target w with
  | Some second ->
      check Alcotest.bool "failover donor differs" true (second <> first);
      full_reply_from w ~src:second blob ~head ~kv_digest:kvd
  | None -> Alcotest.fail "rejection did not fail over to the next donor");
  check Alcotest.int "honest blob installed" 1 !(w.installed);
  let stats = Manager.stats w.mgr in
  check Alcotest.int "one reject" 1 stats.Manager.rejects;
  check Alcotest.int "one install" 1 stats.Manager.installs

(* A forged head that f+1 colluding offerers agree on still cannot be
   installed: the blob's recomputed head won't match it (chain check), and
   a blob doctored to match would need a SHA-256 break. *)
let test_manager_rejects_head_mismatch () =
  let w = make_world () in
  let snap, _head = donor_snapshot () in
  let kvd = Snapshot.kv_digest snap.Snapshot.kv in
  let forged = Rcc_crypto.Sha256.digest "forged-head" in
  let donor = stall_and_probe w ~head:forged ~kv_digest:kvd in
  full_reply_from w ~src:donor (Snapshot.encode snap) ~head:forged ~kv_digest:kvd;
  check Alcotest.int "nothing installed" 0 !(w.installed);
  check Alcotest.int "rejected" 1 (Manager.stats w.mgr).Manager.rejects

(* --- install cache invalidation (satellite: digest-after-install) ------ *)

let test_install_invalidates_caches () =
  (* Ledger head cache: force the lazy head to be computed for the short
     chain, then install a longer one — the cached value must not leak. *)
  let short = ledger_of ~rounds:4 and long = ledger_of ~rounds:9 in
  let target = Ledger.create ~primaries in
  Ledger.install target (Ledger.prefix short ~upto:4);
  let before = Ledger.head_hash target in
  check Alcotest.string "short head" (Ledger.head_hash short) before;
  Ledger.install target (Ledger.prefix long ~upto:9);
  check Alcotest.string "head recomputed after install"
    (Ledger.head_hash long) (Ledger.head_hash target);
  check Alcotest.bool "installed chain validates" true
    (Result.is_ok (Ledger.validate target));
  (* Batch digest memo: the one-deep memo is keyed by physical array
     identity, so mutating the memoized array in place would serve a
     stale digest — reset_memo (called by every install) must drop it. *)
  let txns = [| Rcc_workload.Txn.{ key = 1; op = Write 5 } |] in
  let d1 = Batch.digest_of_txns txns in
  Batch.reset_memo ();
  txns.(0) <- Rcc_workload.Txn.{ key = 1; op = Write 6 };
  let d2 = Batch.digest_of_txns txns in
  check Alcotest.bool "memo dropped: mutated array re-digested" false
    (String.equal d1 d2)

(* --- cluster-level convergence ----------------------------------------- *)

(* Partition replica 3 for long enough that the cluster's frontier moves
   thousands of rounds — far past both the contract window and a snapshot
   boundary — then heal. Replay can't close that gap inside the run, so
   the assertions below prove the snapshot path: the report counts an
   install, and the healed replica's ledger prefix-agrees with a donor's
   and ends within one snapshot interval of it. *)
let test_cluster_partition_heal_transfer () =
  let duration = Engine.of_seconds 1.0 in
  let cfg =
    Config.make ~protocol:Config.MultiP ~n:4 ~batch_size:10 ~clients:24
      ~records:2_000 ~duration ~warmup:(duration / 4)
      ~replica_timeout:(Engine.ms 250) ~client_timeout:(Engine.ms 400)
      ~collusion_wait:(Engine.ms 150) ~seed:11 ()
  in
  let script =
    Script.
      [
        { at = duration / 10; action = Partition [ [ 3 ] ] };
        { at = duration * 6 / 10; action = Heal };
      ]
  in
  let cluster = Cluster.build cfg in
  let _nemesis = Nemesis.install cluster script in
  let report = Cluster.run cluster in
  (* Drain in-flight recovery the way the chaos runner does, then judge. *)
  Cluster.stop_clients cluster;
  let engine = Cluster.engine cluster in
  let step = duration / 20 in
  let rec drain at =
    if at <= duration * 2 && Invariant.quiesced cluster ~exclude:[] <> [] then begin
      Engine.run engine ~until:at;
      drain (at + step)
    end
  in
  drain (duration + step);
  check Alcotest.bool "no violations after drain" true
    (Invariant.quiesced cluster ~exclude:[] = []);
  check Alcotest.bool "snapshot installed" true (report.Report.snap_installs >= 1);
  check Alcotest.bool "install skipped >= 1000 rounds" true
    (report.Report.snap_rounds_skipped >= 1_000);
  check Alcotest.bool "payload bytes flowed" true
    (report.Report.snap_bytes_in > 0 && report.Report.snap_bytes_out > 0);
  let healed = Cluster.ledger cluster 3 and donor = Cluster.ledger cluster 0 in
  let lh = Ledger.length healed and ld = Ledger.length donor in
  check Alcotest.bool "healed replica caught up past the gap" true (lh >= 1_000);
  check Alcotest.bool "healed within one snapshot interval of donor" true
    (ld - lh < 512);
  let common = min lh ld in
  (match (Ledger.get healed (common - 1), Ledger.get donor (common - 1)) with
  | Some a, Some b ->
      check Alcotest.string "prefix agreement at common frontier"
        (Rcc_common.Bytes_util.hex (Block.hash b))
        (Rcc_common.Bytes_util.hex (Block.hash a))
  | _ -> Alcotest.fail "missing block at common frontier");
  (* Slot-log GC satellite: consensus memory stays bounded by checkpoint
     distance, not run length. *)
  Array.iter
    (fun (i : Report.instance_stats) ->
      check Alcotest.bool "retained slots bounded by checkpoint GC" true
        (i.Report.i_retained_slots < 2_048))
    report.Report.per_instance;
  check Alcotest.bool "run executed far more rounds than any slot log retains"
    true
    (report.Report.ledger_rounds > 4_000)

let suite =
  ( "state_transfer",
    [
      Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
      Alcotest.test_case "snapshot roundtrip (no kv)" `Quick
        test_snapshot_roundtrip_unmaterialized;
      Alcotest.test_case "snapshot corruption rejected" `Quick
        test_snapshot_corruption_rejected;
      Alcotest.test_case "manager install path" `Quick test_manager_install_path;
      Alcotest.test_case "manager donor timeout failover" `Quick
        test_manager_donor_timeout_failover;
      Alcotest.test_case "manager corrupt donor failover" `Quick
        test_manager_rejects_corrupt_then_recovers;
      Alcotest.test_case "manager head mismatch rejected" `Quick
        test_manager_rejects_head_mismatch;
      Alcotest.test_case "install invalidates caches" `Quick
        test_install_invalidates_caches;
      Alcotest.test_case "cluster partition-heal converges via snapshot" `Slow
        test_cluster_partition_heal_transfer;
    ] )
