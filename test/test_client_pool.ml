(* The flat-array client pool and its timing wheel.

   Three layers of coverage:
   - Timing_wheel units: bucket-order firing, past-due parking, multi-lap
     entries, reentrant scheduling from a fire callback.
   - Open-loop pool units: arrival accounting, drops at the in-flight
     cap, stop silencing the arrival process, wheel-driven retries and
     the Zyzzyva commit-certificate fallback.
   - A QCheck parity property: closed-loop runs over the SoA pool must
     produce the same completions, instance changes, request count and
     engine event count as the frozen seed pool
     ([Legacy_client_pool]) across random small configs and responder
     behaviours. This is the in-tree twin of the perf-digest gate. *)

open Alcotest
module Engine = Rcc_sim.Engine
module Net = Rcc_sim.Net
module Msg = Rcc_messages.Msg
module Client_pool = Rcc_replica.Client_pool
module Metrics = Rcc_replica.Metrics
module Timing_wheel = Rcc_common.Timing_wheel

(* --- timing wheel --------------------------------------------------------- *)

let fired_payloads w ~now =
  let acc = ref [] in
  Timing_wheel.advance w ~now (fun p -> acc := p :: !acc);
  List.rev !acc

let test_wheel_fires_in_bucket_order () =
  let w = Timing_wheel.create ~granularity:10 () in
  (* Insert out of order; buckets fire in time order, insertion order
     within one bucket. *)
  Timing_wheel.schedule w ~deadline:95 1;
  Timing_wheel.schedule w ~deadline:15 2;
  Timing_wheel.schedule w ~deadline:12 3;
  Timing_wheel.schedule w ~deadline:55 4;
  check (list int) "nothing due yet" [] (fired_payloads w ~now:5);
  check (list int) "one bucket, insertion order" [ 2; 3 ]
    (fired_payloads w ~now:20);
  check int "two left" 2 (Timing_wheel.pending w);
  check (list int) "remaining fire in time order" [ 4; 1 ]
    (fired_payloads w ~now:100);
  check bool "drained" true (Timing_wheel.is_empty w)

let test_wheel_respects_exact_deadline () =
  let w = Timing_wheel.create ~granularity:10 () in
  (* An entry whose bucket is reached but whose deadline is still in the
     future must wait for a later advance. *)
  Timing_wheel.schedule w ~deadline:18 7;
  check (list int) "same bucket, deadline not reached" []
    (fired_payloads w ~now:12);
  check (list int) "fires once the deadline passes" [ 7 ]
    (fired_payloads w ~now:18)

let test_wheel_past_due_fires_next_advance () =
  let w = Timing_wheel.create ~granularity:10 () in
  ignore (fired_payloads w ~now:500);
  (* Scheduling behind the wheel's position parks the entry in the
     current bucket: it fires on the very next sweep. *)
  Timing_wheel.schedule w ~deadline:40 9;
  check (list int) "past-due entry fires" [ 9 ] (fired_payloads w ~now:501)

let test_wheel_multi_lap_entries_survive () =
  (* slots=4, granularity=10: the ring covers 40 time units. A deadline
     370 ahead hashes into a bucket the sweep visits nine times before
     the entry is actually due — it must stay parked until then. *)
  let w = Timing_wheel.create ~slots:4 ~granularity:10 () in
  Timing_wheel.schedule w ~deadline:370 1;
  Timing_wheel.schedule w ~deadline:25 2;
  check (list int) "near entry only" [ 2 ] (fired_payloads w ~now:100);
  check (list int) "far entry still parked" [] (fired_payloads w ~now:360);
  check (list int) "far entry fires on its lap" [ 1 ]
    (fired_payloads w ~now:375)

let test_wheel_reentrant_schedule_not_recursive () =
  let w = Timing_wheel.create ~granularity:10 () in
  let log = ref [] in
  Timing_wheel.schedule w ~deadline:45 1;
  (* The fire callback re-arms a deadline BEHIND the sweep position
     (tick 3 while the head sits at tick 4). It must not fire inside
     this advance, and must not strand in a just-passed ring bucket for
     a full lap either: it fires on the very next sweep. *)
  Timing_wheel.advance w ~now:50 (fun p ->
      log := p :: !log;
      if p = 1 then Timing_wheel.schedule w ~deadline:30 2);
  check (list int) "only the original fired" [ 1 ] (List.rev !log);
  check int "retry is pending" 1 (Timing_wheel.pending w);
  check (list int) "retry fires on the next sweep" [ 2 ]
    (fired_payloads w ~now:51)

(* --- pool fixture ---------------------------------------------------------- *)

type fixture = {
  engine : Engine.t;
  net : Msg.t Net.t;
  pool : Client_pool.t;
  requests : (int * Msg.t) list ref;  (* (dst replica, message) *)
}

let make_pool ?(quorum = Client_pool.Majority_fplus1) ?(n = 4)
    ?(request_timeout = Engine.ms 100) ?(clients = 4)
    ?(arrival = Client_pool.Closed_loop) () =
  let engine = Engine.create () in
  let machines = 1 in
  let net =
    Net.create engine ~nodes:(n + machines) ~latency:(Engine.us 10) ~jitter:0
      ~gbps:10.0 ~rng:(Rcc_common.Rng.create 3) ()
  in
  let requests = ref [] in
  for replica = 0 to n - 1 do
    Net.register net replica (fun ~src:_ ~size:_ msg ->
        requests := (replica, msg) :: !requests)
  done;
  let keychain = Rcc_crypto.Keychain.create ~seed:8 ~n ~clients in
  let metrics = Metrics.create ~n ~warmup:0 () in
  let pool =
    Client_pool.create ~engine ~net ~keychain ~metrics
      ~primary_of_instance:(fun x -> x)
      {
        Client_pool.n;
        f = (n - 1) / 3;
        z = 2;
        clients;
        machines;
        batch_size = 5;
        quorum;
        request_timeout;
        instance_change_after = 2;
        first_node = n;
        records = 100;
        write_ratio = 0.9;
        theta = 0.5;
        seed = 5;
        arrival;
      }
  in
  { engine; net; pool; requests }

let respond fx ~n ~replica ~client ~batch_id ?(digest = "same")
    ?(speculative = false) () =
  let msg =
    Msg.Response
      {
        client;
        batch_id;
        round = 0;
        result_digest = digest;
        txn_count = 5;
        speculative;
        history = "";
      }
  in
  Net.send fx.net ~src:replica ~dst:n ~size:(Msg.size msg) msg

let client_requests fx =
  List.filter
    (fun (_, m) -> match m with Msg.Client_request _ -> true | _ -> false)
    !(fx.requests)

(* --- open-loop pool -------------------------------------------------------- *)

let open_loop ?(rate = 2000.0) ?(process = Client_pool.Uniform)
    ?(max_in_flight = 0) () =
  Client_pool.Open_loop { rate; process; max_in_flight }

let stats fx =
  match Client_pool.open_loop_stats fx.pool with
  | Some s -> s
  | None -> fail "expected open-loop stats"

let test_open_loop_arrivals_inject () =
  (* 2000 txn/s uniform at 5 txns/batch = one batch every 2.5ms, 50ms ≈
     20 arrivals over 4 idle clients; replicas answer nothing, so
     in-flight saturates and the rest drop. *)
  let fx = make_pool ~arrival:(open_loop ()) () in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 50);
  let s = stats fx in
  check bool "arrivals offered" true (s.Client_pool.offered_batches > 10);
  check int "injected = one per idle client" 4 s.Client_pool.injected_batches;
  check int "everything else dropped"
    (s.Client_pool.offered_batches - 4)
    s.Client_pool.dropped_batches;
  check int "four requests on the wire" 4 (List.length (client_requests fx));
  check bool "max depth saw the full pool" true (s.Client_pool.max_depth >= 4)

let test_open_loop_respects_in_flight_cap () =
  let fx = make_pool ~arrival:(open_loop ~max_in_flight:2 ()) () in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 50);
  let s = stats fx in
  check int "cap bounds injections" 2 s.Client_pool.injected_batches;
  check bool "depth never exceeds the cap" true (s.Client_pool.max_depth <= 2)

let test_open_loop_completion_frees_client () =
  let n = 4 in
  (* Slow trickle (one arrival per 10ms): answer the first request, and
     the freed client must absorb a later arrival instead of a drop. *)
  let fx = make_pool ~arrival:(open_loop ~rate:500.0 ~max_in_flight:1 ()) () in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 15);
  (match client_requests fx with
  | (_, Msg.Client_request { batch; _ }) :: _ ->
      respond fx ~n ~replica:0 ~client:batch.Rcc_messages.Batch.client
        ~batch_id:batch.Rcc_messages.Batch.id ();
      respond fx ~n ~replica:1 ~client:batch.Rcc_messages.Batch.client
        ~batch_id:batch.Rcc_messages.Batch.id ()
  | _ -> fail "no first arrival on the wire");
  Engine.run fx.engine ~until:(Engine.ms 60);
  check int "first batch completed" 1 (Client_pool.completed_batches fx.pool);
  let s = stats fx in
  check bool "a later arrival reused the freed slot" true
    (s.Client_pool.injected_batches >= 2)

let test_open_loop_stop_silences_arrivals () =
  let fx = make_pool ~arrival:(open_loop ~rate:500.0 ()) () in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 20);
  Client_pool.stop fx.pool;
  let sent = Client_pool.requests_sent fx.pool in
  let offered = (stats fx).Client_pool.offered_batches in
  Engine.run fx.engine ~until:(Engine.ms 400);
  check int "no requests injected after stop" sent
    (Client_pool.requests_sent fx.pool);
  check int "arrival process stopped ticking" offered
    (stats fx).Client_pool.offered_batches

let test_open_loop_wheel_retries_and_instance_change () =
  (* Nobody answers: wheel-driven timeouts must resend and, after
     instance_change_after = 2 resends, defect to the other instance —
     the same policy the closed-loop engine timers implement. *)
  let fx =
    make_pool ~request_timeout:(Engine.ms 20)
      ~arrival:(open_loop ~rate:100.0 ())
      ()
  in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 200);
  check bool "resends on the wire" true
    (Client_pool.requests_sent fx.pool
    > (stats fx).Client_pool.injected_batches);
  check bool "instance changes recorded" true
    (Client_pool.instance_changes fx.pool > 0)

let test_open_loop_commit_cert_fallback () =
  let n = 4 in
  (* Zyzzyva under open load: 2f+1 = 3 of 4 speculative responses, then a
     wheel timeout must broadcast the commit certificate; 2f+1
     LOCAL-COMMITs complete the batch. *)
  let fx =
    make_pool ~quorum:Client_pool.All_n_speculative
      ~request_timeout:(Engine.ms 20)
      ~arrival:(open_loop ~rate:1000.0 ~max_in_flight:1 ())
      ()
  in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 8);
  let client, batch_id =
    match client_requests fx with
    | (_, Msg.Client_request { batch; _ }) :: _ ->
        (batch.Rcc_messages.Batch.client, batch.Rcc_messages.Batch.id)
    | _ -> fail "no first arrival on the wire"
  in
  List.iter
    (fun replica ->
      respond fx ~n ~replica ~client ~batch_id ~speculative:true ())
    [ 0; 1; 2 ];
  Engine.run fx.engine ~until:(Engine.ms 40);
  let certs =
    List.filter
      (fun (_, m) -> match m with Msg.Commit_cert _ -> true | _ -> false)
      !(fx.requests)
  in
  check int "commit cert broadcast to all n" n (List.length certs);
  List.iter
    (fun replica ->
      let msg = Msg.Local_commit { instance = 0; seq = 0; client } in
      Net.send fx.net ~src:replica ~dst:n ~size:(Msg.size msg) msg)
    [ 0; 1; 2 ];
  Engine.run fx.engine ~until:(Engine.ms 100);
  check int "completed via commit path" 1
    (Client_pool.completed_batches fx.pool)

(* --- closed-loop parity with the frozen seed pool -------------------------- *)

(* Both pools run in their own world against the same deterministic
   responder: replica [r] answers batch [id] iff
   [(id * 31 + r * 17 + salt) mod 8 < level]. Low levels starve quorums
   (exercising timeouts, resends, instance changes, the Zyzzyva
   commit-certificate fallback); high levels complete everything. *)
type responder = { salt : int; level : int; ack_level : int }

let responds rsp ~replica ~batch_id =
  ((batch_id * 31) + (replica * 17) + rsp.salt) mod 8 < rsp.level

let acks rsp ~replica ~seq = ((seq * 13) + (replica * 7) + rsp.salt) mod 8 < rsp.ack_level

type params = {
  n : int;
  clients : int;
  speculative : bool;
  timeout_ms : int;
  seed : int;
  rsp : responder;
}

(* Replica handlers shared by both worlds: respond to requests and acks
   per the responder tables, everything decided by (batch id, replica) so
   the two runs see byte-identical traffic. *)
let install_responders net ~p ~count =
  for replica = 0 to p.n - 1 do
    Net.register net replica (fun ~src ~size:_ msg ->
        match msg with
        | Msg.Client_request { batch; _ } ->
            incr count;
            for r = 0 to p.n - 1 do
              if responds p.rsp ~replica:r ~batch_id:batch.Rcc_messages.Batch.id
              then begin
                let reply =
                  Msg.Response
                    {
                      client = batch.Rcc_messages.Batch.client;
                      batch_id = batch.Rcc_messages.Batch.id;
                      round = 0;
                      result_digest = "ok";
                      txn_count = Array.length batch.Rcc_messages.Batch.txns;
                      speculative = p.speculative;
                      history = "";
                    }
                in
                Net.send net ~src:replica ~dst:src ~size:(Msg.size reply) reply
              end
            done
        | Msg.Commit_cert cc ->
            if acks p.rsp ~replica ~seq:cc.Msg.cc_seq then begin
              let reply =
                Msg.Local_commit
                  {
                    instance = cc.Msg.cc_instance;
                    seq = cc.Msg.cc_seq;
                    client = cc.Msg.cc_client;
                  }
              in
              Net.send net ~src:replica ~dst:src ~size:(Msg.size reply) reply
            end
        | _ -> ())
  done

type outcome = {
  completed : int;
  changes : int;
  requests : int;
  events : int;
}

let world_config p =
  ( Engine.create (),
    fun engine ->
      Net.create engine ~nodes:(p.n + 1) ~latency:(Engine.us 10) ~jitter:0
        ~gbps:10.0
        ~rng:(Rcc_common.Rng.create 3)
        () )

let run_new p ~until =
  let engine, mknet = world_config p in
  let net = mknet engine in
  let count = ref 0 in
  install_responders net ~p ~count;
  let keychain = Rcc_crypto.Keychain.create ~seed:8 ~n:p.n ~clients:p.clients in
  let metrics = Metrics.create ~n:p.n ~warmup:0 () in
  let pool =
    Client_pool.create ~engine ~net ~keychain ~metrics
      ~primary_of_instance:(fun i -> i mod p.n)
      {
        Client_pool.n = p.n;
        f = (p.n - 1) / 3;
        z = 2;
        clients = p.clients;
        machines = 1;
        batch_size = 3;
        quorum =
          (if p.speculative then Client_pool.All_n_speculative
           else Client_pool.Majority_fplus1);
        request_timeout = Engine.ms p.timeout_ms;
        instance_change_after = 2;
        first_node = p.n;
        records = 100;
        write_ratio = 0.9;
        theta = 0.5;
        seed = p.seed;
        arrival = Client_pool.Closed_loop;
      }
  in
  Client_pool.start pool;
  Engine.run engine ~until;
  (* requests_sent counts sends; the wire count can lag by messages
     still in flight when the clock stops. *)
  check bool "requests_sent covers the wire" true
    (Client_pool.requests_sent pool >= !count);
  {
    completed = Client_pool.completed_batches pool;
    changes = Client_pool.instance_changes pool;
    requests = !count;
    events = Engine.events_processed engine;
  }

let run_legacy p ~until =
  let engine, mknet = world_config p in
  let net = mknet engine in
  (* The frozen pool predates [requests_sent]; both worlds count
     delivered Client_requests at the replica handlers instead. *)
  let count = ref 0 in
  install_responders net ~p ~count;
  let keychain = Rcc_crypto.Keychain.create ~seed:8 ~n:p.n ~clients:p.clients in
  let metrics = Metrics.create ~n:p.n ~warmup:0 () in
  let pool =
    Legacy_client_pool.create ~engine ~net ~keychain ~metrics
      ~primary_of_instance:(fun i -> i mod p.n)
      {
        Legacy_client_pool.n = p.n;
        f = (p.n - 1) / 3;
        z = 2;
        clients = p.clients;
        machines = 1;
        batch_size = 3;
        quorum =
          (if p.speculative then Legacy_client_pool.All_n_speculative
           else Legacy_client_pool.Majority_fplus1);
        request_timeout = Engine.ms p.timeout_ms;
        instance_change_after = 2;
        first_node = p.n;
        records = 100;
        write_ratio = 0.9;
        theta = 0.5;
        seed = p.seed;
      }
  in
  Legacy_client_pool.start pool;
  Engine.run engine ~until;
  {
    completed = Legacy_client_pool.completed_batches pool;
    changes = Legacy_client_pool.instance_changes pool;
    requests = !count;
    events = Engine.events_processed engine;
  }

let gen_params =
  QCheck2.Gen.(
    let* n = oneofl [ 4; 7 ] in
    let* clients = int_range 1 5 in
    let* speculative = bool in
    let* timeout_ms = int_range 15 60 in
    let* seed = int_range 0 1000 in
    let* salt = int_range 0 100 in
    let* level = int_range 2 8 in
    let+ ack_level = int_range 4 8 in
    { n; clients; speculative; timeout_ms; seed; rsp = { salt; level; ack_level } })

let pp_params p =
  Printf.sprintf
    "{n=%d clients=%d spec=%b timeout=%dms seed=%d salt=%d level=%d ack=%d}"
    p.n p.clients p.speculative p.timeout_ms p.seed p.rsp.salt p.rsp.level
    p.rsp.ack_level

let parity_prop p =
  let until = Engine.ms 400 in
  let a = run_new p ~until and b = run_legacy p ~until in
  if
    a.completed = b.completed && a.changes = b.changes
    && a.requests = b.requests && a.events = b.events
  then true
  else
    QCheck2.Test.fail_reportf
      "%s: new (done=%d chg=%d req=%d ev=%d) vs legacy (done=%d chg=%d req=%d \
       ev=%d)"
      (pp_params p) a.completed a.changes a.requests a.events b.completed
      b.changes b.requests b.events

let parity_test =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30
       ~name:"closed-loop SoA pool == frozen seed pool" gen_params parity_prop)

let suite =
  ( "client_pool",
    [
      test_case "wheel: bucket firing order" `Quick
        test_wheel_fires_in_bucket_order;
      test_case "wheel: exact deadlines" `Quick
        test_wheel_respects_exact_deadline;
      test_case "wheel: past-due parks to next sweep" `Quick
        test_wheel_past_due_fires_next_advance;
      test_case "wheel: multi-lap entries" `Quick
        test_wheel_multi_lap_entries_survive;
      test_case "wheel: reentrant schedule" `Quick
        test_wheel_reentrant_schedule_not_recursive;
      test_case "open loop: arrivals inject and drop" `Quick
        test_open_loop_arrivals_inject;
      test_case "open loop: in-flight cap" `Quick
        test_open_loop_respects_in_flight_cap;
      test_case "open loop: completion frees a client" `Quick
        test_open_loop_completion_frees_client;
      test_case "open loop: stop silences arrivals" `Quick
        test_open_loop_stop_silences_arrivals;
      test_case "open loop: wheel retries + instance change" `Quick
        test_open_loop_wheel_retries_and_instance_change;
      test_case "open loop: commit-certificate fallback" `Quick
        test_open_loop_commit_cert_fallback;
      parity_test;
    ] )
