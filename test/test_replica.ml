(* Replica-layer tests: the execute thread's round lockstep, metrics,
   closed-loop client behaviour, byzantine behaviour specs. *)

module Engine = Rcc_sim.Engine
module Cpu = Rcc_sim.Cpu
module Net = Rcc_sim.Net
module Exec = Rcc_replica.Exec
module Metrics = Rcc_replica.Metrics
module Client_pool = Rcc_replica.Client_pool
module Byz = Rcc_replica.Byz
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch

let check = Alcotest.check

let rng = Rcc_common.Rng.create 404
let secret, _ = Rcc_crypto.Signature.keygen rng

let batch ?(client = 0) id =
  Batch.create ~id ~client
    ~txns:[| Rcc_workload.Txn.{ key = id; op = Write id } |]
    ~secret

let acceptance ?(speculative = false) ~instance ~round id =
  {
    Rcc_replica.Acceptance.instance;
    round;
    batch = batch id;
    cert = [ 0; 1; 2 ];
    speculative;
    history = "";
  }

(* --- exec ------------------------------------------------------------------ *)

type exec_fixture = {
  engine : Engine.t;
  exec : Exec.t;
  responses : (int * Msg.t) list ref;  (* (client, response) *)
  executed : int list ref;  (* rounds in execution order *)
  store : Rcc_storage.Kv_store.t;
  ledger : Rcc_storage.Ledger.t;
}

let make_exec ?(z = 2) ?reorder () =
  let engine = Engine.create () in
  let store = Rcc_storage.Kv_store.create () in
  let ledger = Rcc_storage.Ledger.create ~primaries:(List.init z (fun x -> x)) in
  let txn_table = Rcc_storage.Txn_table.create () in
  let responses = ref [] in
  let executed = ref [] in
  let exec =
    Exec.create ~engine ~costs:Rcc_sim.Costs.default
      ~server:(Cpu.server engine ~name:"exec" ()) ~z ~self:0 ~store ~ledger
      ~txn_table
      ~current_primaries:(fun () -> List.init z (fun x -> x))
      ~respond:(fun client msg -> responses := (client, msg) :: !responses)
      ~metrics:(Metrics.create ~n:1 ~warmup:0 ())
      ?reorder
      ~on_executed:(fun round _ -> executed := round :: !executed)
      ()
  in
  { engine; exec; responses; executed; store; ledger }

let test_exec_waits_for_all_instances () =
  let fx = make_exec () in
  Exec.notify fx.exec (acceptance ~instance:0 ~round:0 1);
  Engine.run fx.engine ~until:(Engine.ms 10);
  check Alcotest.int "round incomplete, nothing executed" 0
    (Exec.executed_rounds fx.exec);
  check Alcotest.(list int) "instance 1 missing" [ 1 ]
    (Exec.missing_instances fx.exec ~round:0);
  Exec.notify fx.exec (acceptance ~instance:1 ~round:0 2);
  Engine.run fx.engine ~until:(Engine.ms 20);
  check Alcotest.int "round executed" 1 (Exec.executed_rounds fx.exec);
  check Alcotest.int "ledger grew" 1 (Rcc_storage.Ledger.length fx.ledger);
  check Alcotest.int "both clients answered" 2 (List.length !(fx.responses))

let test_exec_rounds_in_order () =
  let fx = make_exec () in
  (* Round 1 completes before round 0; execution must still be 0 then 1. *)
  Exec.notify fx.exec (acceptance ~instance:0 ~round:1 10);
  Exec.notify fx.exec (acceptance ~instance:1 ~round:1 11);
  Engine.run fx.engine ~until:(Engine.ms 10);
  check Alcotest.int "future round buffered" 0 (Exec.executed_rounds fx.exec);
  check Alcotest.int "max pending" 1 (Exec.max_pending_round fx.exec);
  Exec.notify fx.exec (acceptance ~instance:0 ~round:0 20);
  Exec.notify fx.exec (acceptance ~instance:1 ~round:0 21);
  Engine.run fx.engine ~until:(Engine.ms 20);
  check Alcotest.(list int) "in round order" [ 0; 1 ] (List.rev !(fx.executed));
  check Alcotest.bool "ledger validates" true
    (Result.is_ok (Rcc_storage.Ledger.validate fx.ledger))

let test_exec_duplicate_notify_ignored () =
  let fx = make_exec () in
  Exec.notify fx.exec (acceptance ~instance:0 ~round:0 1);
  Exec.notify fx.exec (acceptance ~instance:0 ~round:0 99);
  Exec.notify fx.exec (acceptance ~instance:1 ~round:0 2);
  Engine.run fx.engine ~until:(Engine.ms 20);
  check Alcotest.int "executed once" 1 (Exec.executed_rounds fx.exec);
  (* The first notification wins. *)
  let ids =
    List.filter_map
      (fun (_, msg) ->
        match msg with Msg.Response { batch_id; _ } -> Some batch_id | _ -> None)
      !(fx.responses)
  in
  check Alcotest.bool "batch 1 executed, not 99" true
    (List.mem 1 ids && not (List.mem 99 ids))

let test_exec_null_batches_get_no_response () =
  let fx = make_exec () in
  Exec.notify fx.exec
    {
      Rcc_replica.Acceptance.instance = 0;
      round = 0;
      batch = Batch.null ~round:0;
      cert = [];
      speculative = false;
      history = "";
    };
  Exec.notify fx.exec (acceptance ~instance:1 ~round:0 5);
  Engine.run fx.engine ~until:(Engine.ms 20);
  check Alcotest.int "round executed" 1 (Exec.executed_rounds fx.exec);
  check Alcotest.int "only the real batch answered" 1 (List.length !(fx.responses))

let test_exec_reorder_hook () =
  (* Reverse order: instance 1's batch writes key 7 first, then instance 0
     overwrites — so the final value reveals execution order. *)
  let write v = Rcc_workload.Txn.{ key = 7; op = Write v } in
  let acc instance v =
    {
      Rcc_replica.Acceptance.instance;
      round = 0;
      batch =
        Batch.create ~id:v ~client:instance ~txns:[| write v |] ~secret;
      cert = [];
      speculative = false;
      history = "";
    }
  in
  let reorder accs = Array.of_list (List.rev (Array.to_list accs)) in
  let fx = make_exec ~reorder () in
  Exec.notify fx.exec (acc 0 100);
  Exec.notify fx.exec (acc 1 200);
  Engine.run fx.engine ~until:(Engine.ms 20);
  check Alcotest.(option int) "instance 0 executed last under reversal"
    (Some 100)
    (Rcc_storage.Kv_store.read fx.store 7)

(* --- metrics ------------------------------------------------------------------ *)

let test_metrics_warmup_filter () =
  let m = Metrics.create ~n:2 ~warmup:(Engine.ms 100) () in
  Metrics.record_completion m ~now:(Engine.ms 50) ~ntxns:10 ~latency:(Engine.ms 1);
  check Alcotest.int "warmup excluded" 0 (Metrics.committed_txns m);
  Metrics.record_completion m ~now:(Engine.ms 150) ~ntxns:10 ~latency:(Engine.ms 2);
  check Alcotest.int "post-warmup counted" 10 (Metrics.committed_txns m);
  check Alcotest.int "batches" 1 (Metrics.committed_batches m);
  (* Throughput normalizes by the post-warmup window. *)
  let tput = Metrics.throughput m ~duration:(Engine.ms 200) in
  check (Alcotest.float 1.0) "throughput" 100.0 tput;
  check (Alcotest.float 1e-6) "latency mean" 0.002 (Metrics.avg_latency m);
  check Alcotest.bool "timeline has both buckets" true
    (Array.length (Metrics.timeline ~include_warmup:true m) >= 2)

(* Regression: the timeline series used to record warmup completions the
   scalar counters excluded, so the timeline summed to more than
   [committed_txns]. The default timeline must agree with the counters;
   the full-run view is opt-in. *)
let test_metrics_timeline_warmup_consistency () =
  let m = Metrics.create ~n:2 ~warmup:(Engine.ms 100) () in
  (* 3 warmup completions, 2 measured ones. *)
  Metrics.record_completion m ~now:(Engine.ms 10) ~ntxns:5 ~latency:(Engine.ms 1);
  Metrics.record_completion m ~now:(Engine.ms 40) ~ntxns:5 ~latency:(Engine.ms 1);
  Metrics.record_completion m ~now:(Engine.ms 90) ~ntxns:5 ~latency:(Engine.ms 1);
  Metrics.record_completion m ~now:(Engine.ms 150) ~ntxns:7 ~latency:(Engine.ms 1);
  Metrics.record_completion m ~now:(Engine.ms 250) ~ntxns:7 ~latency:(Engine.ms 1);
  let sum timeline =
    (* rates are txns/s over 100 ms buckets *)
    Array.fold_left (fun acc (_, rate) -> acc +. (rate *. 0.1)) 0.0 timeline
  in
  check (Alcotest.float 1e-6) "default timeline sums to committed_txns" 14.0
    (sum (Metrics.timeline m));
  check (Alcotest.float 1e-6) "full-run timeline adds the warmup back" 29.0
    (sum (Metrics.timeline ~include_warmup:true m));
  (* Warmup buckets are zero in the default view. *)
  let default_tl = Metrics.timeline m in
  check (Alcotest.float 1e-6) "warmup bucket empty by default" 0.0
    (snd default_tl.(0))

let test_metrics_per_instance () =
  let m = Metrics.create ~n:2 ~instances:3 ~warmup:(Engine.ms 100) () in
  check Alcotest.int "instances" 3 (Metrics.instances m);
  (* Warmup completions touch no instance counters either. *)
  Metrics.record_completion ~instance:0 m ~now:(Engine.ms 50) ~ntxns:9
    ~latency:(Engine.ms 1);
  check Alcotest.int "warmup excluded per instance" 0 (Metrics.instance_txns m 0);
  Metrics.record_completion ~instance:0 m ~now:(Engine.ms 150) ~ntxns:10
    ~latency:(Engine.ms 2);
  Metrics.record_completion ~instance:2 m ~now:(Engine.ms 150) ~ntxns:30
    ~latency:(Engine.ms 4);
  Metrics.record_view_change ~instance:2 m;
  check Alcotest.int "instance 0 txns" 10 (Metrics.instance_txns m 0);
  check Alcotest.int "instance 1 idle" 0 (Metrics.instance_txns m 1);
  check Alcotest.int "instance 2 txns" 30 (Metrics.instance_txns m 2);
  check Alcotest.int "aggregate sums instances" 40 (Metrics.committed_txns m);
  check Alcotest.int "view change attributed" 1 (Metrics.instance_view_changes m 2);
  check Alcotest.int "aggregate view changes" 1 (Metrics.view_changes m);
  let tput0 = Metrics.instance_throughput m 0 ~duration:(Engine.ms 200) in
  check (Alcotest.float 1.0) "instance 0 throughput" 100.0 tput0;
  check (Alcotest.float 1e-6) "instance latency mean" 0.004
    (Metrics.instance_avg_latency m 2);
  check Alcotest.bool "instance percentile near its latency" true
    (abs_float (Metrics.instance_latency_percentile m 2 0.5 -. 0.004) < 0.0005);
  check Alcotest.bool "instance timeline populated" true
    (Array.length (Metrics.instance_timeline m 2) > 0);
  (* Out-of-range instance ids are inert on both record and read. *)
  Metrics.record_completion ~instance:7 m ~now:(Engine.ms 150) ~ntxns:1
    ~latency:(Engine.ms 1);
  Metrics.record_view_change ~instance:(-1) m;
  check Alcotest.int "out-of-range reads zero" 0 (Metrics.instance_txns m 7);
  check Alcotest.int "out-of-range still aggregates" 41 (Metrics.committed_txns m)

let test_metrics_throughput_guard () =
  (* A run no longer than the warmup window has no measurement span;
     throughput must report 0 rather than divide by <= 0. *)
  let m = Metrics.create ~n:2 ~warmup:(Engine.ms 100) () in
  Metrics.record_completion m ~now:(Engine.ms 100) ~ntxns:10
    ~latency:(Engine.ms 1);
  check (Alcotest.float 0.0) "duration = warmup" 0.0
    (Metrics.throughput m ~duration:(Engine.ms 100));
  check (Alcotest.float 0.0) "duration < warmup" 0.0
    (Metrics.throughput m ~duration:(Engine.ms 50));
  (* The boundary completion itself (now = warmup) is inside the
     measurement window. *)
  check Alcotest.int "boundary completion counted" 10
    (Metrics.committed_txns m);
  check Alcotest.bool "positive span measures" true
    (Metrics.throughput m ~duration:(Engine.ms 200) > 0.0)

let test_metrics_percentiles_and_timeline () =
  let m = Metrics.create ~n:2 ~warmup:0 () in
  for i = 1 to 100 do
    Metrics.record_completion m
      ~now:(Engine.ms (i * 10))
      ~ntxns:1 ~latency:(Engine.ms i)
  done;
  let p50 = Metrics.latency_percentile m 0.5
  and p99 = Metrics.latency_percentile m 0.99 in
  check Alcotest.bool "p50 <= p99" true (p50 <= p99);
  check Alcotest.bool "p50 near the median" true (p50 >= 0.040 && p50 <= 0.065);
  check Alcotest.bool "p99 near the tail" true (p99 >= 0.090 && p99 <= 0.105);
  let mean = Metrics.avg_latency m in
  check Alcotest.bool "mean within the latency range" true
    (mean > 0.001 && mean < 0.100);
  let timeline = Metrics.timeline m in
  check Alcotest.bool "timeline spans the run" true
    (Array.length timeline >= 9);
  Array.iter
    (fun (_, rate) -> check Alcotest.bool "rates non-negative" true (rate >= 0.0))
    timeline;
  (* Completions arrive one per 10 ms: every 100 ms bucket carries
     roughly 10 completions -> ~100 txns/s. *)
  let _, rate = timeline.(4) in
  check Alcotest.bool "mid-run bucket near 100 txns/s" true
    (rate > 50.0 && rate < 150.0)

let test_metrics_counters () =
  let m = Metrics.create ~n:2 ~warmup:0 () in
  Metrics.record_view_change m;
  Metrics.record_collusion_detected m;
  Metrics.record_contract_bytes m 1234;
  Metrics.record_exec m ~replica:1 ~now:(Engine.ms 10) ~ntxns:5;
  check Alcotest.int "view changes" 1 (Metrics.view_changes m);
  check Alcotest.int "collusions" 1 (Metrics.collusions_detected m);
  check Alcotest.int "contract bytes" 1234 (Metrics.contract_bytes m);
  check Alcotest.bool "exec timeline populated" true
    (Array.length (Metrics.exec_timeline m ~replica:1) > 0)

(* --- client pool ---------------------------------------------------------------- *)

type pool_fixture = {
  engine : Engine.t;
  net : Msg.t Net.t;
  pool : Client_pool.t;
  requests : (int * Msg.t) list ref;  (* (dst replica, request) *)
}

(* One replica node (0) that records requests; client machines after it. *)
let make_pool ?(quorum = Client_pool.Majority_fplus1) ?(n = 4)
    ?(request_timeout = Engine.ms 100) ?(clients = 2) () =
  let engine = Engine.create () in
  let machines = 1 in
  let net =
    Net.create engine ~nodes:(n + machines) ~latency:(Engine.us 10) ~jitter:0
      ~gbps:10.0 ~rng:(Rcc_common.Rng.create 3) ()
  in
  let requests = ref [] in
  for replica = 0 to n - 1 do
    Net.register net replica (fun ~src:_ ~size:_ msg ->
        requests := (replica, msg) :: !requests)
  done;
  let keychain = Rcc_crypto.Keychain.create ~seed:8 ~n ~clients in
  let metrics = Metrics.create ~n ~warmup:0 () in
  let pool =
    Client_pool.create ~engine ~net ~keychain ~metrics
      ~primary_of_instance:(fun x -> x)
      {
        Client_pool.n;
        f = (n - 1) / 3;
        z = 2;
        clients;
        machines;
        batch_size = 5;
        quorum;
        request_timeout;
        instance_change_after = 2;
        first_node = n;
        records = 100;
        write_ratio = 0.9;
        theta = 0.5;
        seed = 5;
        arrival = Client_pool.Closed_loop;
      }
  in
  { engine; net; pool; requests }

let respond fx ~replica ~client ~batch_id ?(digest = "same")
    ?(speculative = false) ?(round = 0) ?(history = "") () =
  let msg =
    Msg.Response
      {
        client;
        batch_id;
        round;
        result_digest = digest;
        txn_count = 5;
        speculative;
        history;
      }
  in
  Net.send fx.net ~src:replica ~dst:4 ~size:(Msg.size msg) msg

let test_client_sends_to_home_primary () =
  let fx = make_pool () in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 10);
  (* Client 0 -> instance 0 -> replica 0; client 1 -> instance 1 -> replica 1. *)
  let dsts = List.sort compare (List.map fst !(fx.requests)) in
  check Alcotest.(list int) "requests to both primaries" [ 0; 1 ] dsts

let test_client_completes_on_fplus1 () =
  let fx = make_pool () in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 5);
  (* f+1 = 2 matching responses complete client 0's batch (id 0). *)
  respond fx ~replica:0 ~client:0 ~batch_id:0 ();
  respond fx ~replica:1 ~client:0 ~batch_id:0 ();
  Engine.run fx.engine ~until:(Engine.ms 20);
  check Alcotest.int "one batch completed" 1 (Client_pool.completed_batches fx.pool);
  (* Completion triggers the next request to the same primary. *)
  let to_replica0 = List.filter (fun (d, _) -> d = 0) !(fx.requests) in
  check Alcotest.bool "next request sent" true (List.length to_replica0 >= 2)

let test_client_mismatched_digests_dont_complete () =
  let fx = make_pool () in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 5);
  respond fx ~replica:0 ~client:0 ~batch_id:0 ~digest:"a" ();
  respond fx ~replica:1 ~client:0 ~batch_id:0 ~digest:"b" ();
  Engine.run fx.engine ~until:(Engine.ms 20);
  check Alcotest.int "no quorum on divergent digests" 0
    (Client_pool.completed_batches fx.pool)

let test_client_timeout_resend_and_instance_change () =
  let fx = make_pool ~request_timeout:(Engine.ms 20) () in
  Client_pool.start fx.pool;
  (* No replica ever answers: clients resend, and on the second resend
     (instance_change_after = 2) defect to the other instance. *)
  Engine.run fx.engine ~until:(Engine.ms 70);
  check Alcotest.bool "instance changes recorded" true
    (Client_pool.instance_changes fx.pool > 0);
  check Alcotest.int "client 0 moved to instance 1" 1
    (Client_pool.client_instance fx.pool 0)

let test_zyzzyva_client_needs_all_n () =
  let fx = make_pool ~quorum:Client_pool.All_n_speculative () in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 5);
  respond fx ~replica:0 ~client:0 ~batch_id:0 ~speculative:true ();
  respond fx ~replica:1 ~client:0 ~batch_id:0 ~speculative:true ();
  respond fx ~replica:2 ~client:0 ~batch_id:0 ~speculative:true ();
  Engine.run fx.engine ~until:(Engine.ms 20);
  check Alcotest.int "3 of 4 is not enough" 0 (Client_pool.completed_batches fx.pool);
  respond fx ~replica:3 ~client:0 ~batch_id:0 ~speculative:true ();
  Engine.run fx.engine ~until:(Engine.ms 40);
  check Alcotest.int "all n completes" 1 (Client_pool.completed_batches fx.pool)

let test_zyzzyva_commit_certificate_path () =
  let fx = make_pool ~quorum:Client_pool.All_n_speculative ~request_timeout:(Engine.ms 20) () in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 5);
  (* 2f+1 = 3 matching spec responses, but never all 4: on timeout the
     client broadcasts a COMMIT-CERT. *)
  respond fx ~replica:0 ~client:0 ~batch_id:0 ();
  respond fx ~replica:1 ~client:0 ~batch_id:0 ();
  respond fx ~replica:2 ~client:0 ~batch_id:0 ();
  Engine.run fx.engine ~until:(Engine.ms 40);
  let certs =
    List.filter (fun (_, m) -> match m with Msg.Commit_cert _ -> true | _ -> false)
      !(fx.requests)
  in
  check Alcotest.int "commit cert broadcast to all n" 4 (List.length certs);
  (* 2f+1 LOCAL-COMMIT acks finish the request. *)
  List.iter
    (fun replica ->
      let msg = Msg.Local_commit { instance = 0; seq = 0; client = 0 } in
      Net.send fx.net ~src:replica ~dst:4 ~size:(Msg.size msg) msg)
    [ 0; 1; 2 ];
  Engine.run fx.engine ~until:(Engine.ms 60);
  check Alcotest.int "completed via commit path" 1
    (Client_pool.completed_batches fx.pool)

let certs_sent fx =
  List.filter_map
    (fun (_, m) ->
      match m with
      | Msg.Commit_cert { cc_seq; cc_client; _ } -> Some (cc_seq, cc_client)
      | _ -> None)
    !(fx.requests)

let ack fx ~replica ~client ~seq =
  let msg = Msg.Local_commit { instance = 0; seq; client } in
  Net.send fx.net ~src:replica ~dst:4 ~size:(Msg.size msg) msg

let test_zyzzyva_cert_names_matching_quorum_round () =
  (* Regression: a stale speculative response that survived a rollback
     (old history, old round) arrives first. The commit certificate must
     be sequenced at the round of the quorum that actually matched, and
     must name its client — not inherit whichever response came first. *)
  let fx =
    make_pool ~quorum:Client_pool.All_n_speculative
      ~request_timeout:(Engine.ms 20) ()
  in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 5);
  respond fx ~replica:0 ~client:0 ~batch_id:0 ~round:3 ~history:"pre-rollback"
    ();
  respond fx ~replica:1 ~client:0 ~batch_id:0 ~round:7 ~history:"h" ();
  respond fx ~replica:2 ~client:0 ~batch_id:0 ~round:7 ~history:"h" ();
  respond fx ~replica:3 ~client:0 ~batch_id:0 ~round:7 ~history:"h" ();
  Engine.run fx.engine ~until:(Engine.ms 40);
  let certs = certs_sent fx in
  check Alcotest.bool "certs broadcast" true (List.length certs > 0);
  List.iter
    (fun (seq, cl) ->
      check Alcotest.int "cert sequenced at the matching quorum's round" 7 seq;
      check Alcotest.int "cert names its client" 0 cl)
    certs

let test_zyzzyva_degraded_client_skips_timeout () =
  (* One replica never answers. The first batch pays the full request
     timeout before falling back to the commit-certificate phase; that
     timeout marks the client degraded, so subsequent batches fall back
     the moment 2f+1 responses match. A later all-n completion clears
     the flag and restores timeout-gated fallback. *)
  let fx =
    make_pool ~quorum:Client_pool.All_n_speculative
      ~request_timeout:(Engine.ms 20) ()
  in
  Client_pool.start fx.pool;
  Engine.run fx.engine ~until:(Engine.ms 5);
  (* Batch 0: 2f+1 responses, then the 20ms timeout forces the cert. *)
  respond fx ~replica:0 ~client:0 ~batch_id:0 ();
  respond fx ~replica:1 ~client:0 ~batch_id:0 ();
  respond fx ~replica:2 ~client:0 ~batch_id:0 ();
  Engine.run fx.engine ~until:(Engine.ms 30);
  check Alcotest.int "first fallback waits for the timeout" 4
    (List.length (certs_sent fx));
  List.iter (fun r -> ack fx ~replica:r ~client:0 ~seq:0) [ 0; 1; 2 ];
  Engine.run fx.engine ~until:(Engine.ms 32);
  (* Batch 2 (ids interleave with client 1): degraded now, so the cert
     goes out on the third response — well before the timer at ~52ms. *)
  respond fx ~replica:0 ~client:0 ~batch_id:2 ();
  respond fx ~replica:1 ~client:0 ~batch_id:2 ();
  respond fx ~replica:2 ~client:0 ~batch_id:2 ();
  Engine.run fx.engine ~until:(Engine.ms 35);
  check Alcotest.int "degraded client certs without waiting" 8
    (List.length (certs_sent fx));
  List.iter (fun r -> ack fx ~replica:r ~client:0 ~seq:0) [ 0; 1; 2 ];
  Engine.run fx.engine ~until:(Engine.ms 37);
  (* Batch 3 closes all-n: the cluster healed, degradation clears. The
     third response still triggers a (wasted) cert broadcast, but the
     fourth commits the fast path and un-degrades the client. *)
  List.iter
    (fun r -> respond fx ~replica:r ~client:0 ~batch_id:3 ())
    [ 0; 1; 2; 3 ];
  Engine.run fx.engine ~until:(Engine.ms 39);
  check Alcotest.int "three batches completed" 3
    (Client_pool.completed_batches fx.pool);
  (* Batch 4: 2f+1 again, but no longer degraded — no early cert. *)
  respond fx ~replica:0 ~client:0 ~batch_id:4 ();
  respond fx ~replica:1 ~client:0 ~batch_id:4 ();
  respond fx ~replica:2 ~client:0 ~batch_id:4 ();
  Engine.run fx.engine ~until:(Engine.ms 45);
  check Alcotest.int "healed client waits for the timeout again" 12
    (List.length (certs_sent fx))

(* --- instance env helpers ------------------------------------------------------- *)

let test_quorum_helpers () =
  let env n f =
    {
      Rcc_replica.Instance_env.n;
      f;
      z = 1;
      instance = 0;
      self = 0;
      engine = Engine.create ();
      costs = Rcc_sim.Costs.default;
      timeout = Engine.s 1;
      checkpoint_interval = 0;
      on_stable = (fun ~seq:_ -> ());
      send = (fun ?sign:_ ~dst:_ _ -> ());
      broadcast = (fun ?sign:_ ?exclude:_ _ -> ());
      respond = (fun _ _ -> ());
      accept = (fun _ -> ());
      report_failure = (fun ~round:_ ~blamed:_ -> ());
      rollback = (fun ~frontier:_ -> ());
      sign_blame = (fun ~view:_ ~blamed:_ ~round:_ -> "");
      byz = Byz.honest;
      unified = false;
    }
  in
  check Alcotest.int "2f+1 of n=4" 3
    (Rcc_replica.Instance_env.quorum_2f1 (env 4 1));
  check Alcotest.int "2f+1 of n=32" 21
    (Rcc_replica.Instance_env.quorum_2f1 (env 32 10));
  check Alcotest.int "f+1 of n=32" 11
    (Rcc_replica.Instance_env.majority_nf (env 32 10))

(* --- byz specs -------------------------------------------------------------------- *)

let test_byz_excludes () =
  let spec = Byz.dark_primary ~victims:[ 3; 5 ] ~from_round:10 ~until_round:12 () in
  check Alcotest.bool "before window" false (Byz.excludes spec ~round:9 3);
  check Alcotest.bool "in window" true (Byz.excludes spec ~round:11 3);
  check Alcotest.bool "after window" false (Byz.excludes spec ~round:13 3);
  check Alcotest.bool "non-victim" false (Byz.excludes spec ~round:11 4);
  let forever = Byz.dark_primary ~victims:[ 1 ] () in
  check Alcotest.bool "open-ended window" true (Byz.excludes forever ~round:1_000_000 1);
  check Alcotest.bool "honest excludes nobody" false (Byz.excludes Byz.honest ~round:0 0)

(* An equivocating primary proposes conflicting batches to the two halves
   of the backups (§6). Neither half can assemble 2f+1 matching PREPAREs
   for its half's batch, so in the equivocator's view nobody accepts: the
   slot stalls, the primary gets blamed and deposed, and any eventual
   acceptance (the new primary re-proposing a logged batch) is the same
   on every honest replica. *)
module HP = Harness.Make (Rcc_pbft.Pbft_instance)

let test_equivocate_rejected () =
  let byz self = if self = 0 then Byz.equivocator else Byz.honest in
  let t = HP.create ~n:4 ~byz () in
  HP.submit t ~replica:0 (Harness.make_batch 7);
  (* Before any view change can fire, neither conflicting batch reaches
     the 2f+1 PREPAREs needed for acceptance. *)
  HP.run t 0.1;
  for r = 1 to 3 do
    check
      Alcotest.(option int)
      (Printf.sprintf "replica %d accepts neither conflicting batch" r)
      None
      (HP.accepted_batch_id t ~replica:r ~round:0)
  done;
  (* Let the timeout machinery depose the equivocator. *)
  HP.run t 0.5;
  check Alcotest.bool "honest replicas blame the equivocator" true
    (List.exists (fun (_, blamed) -> blamed = 0) (HP.node t 1).HP.failures);
  let accepted =
    List.filter_map
      (fun r -> HP.accepted_batch_id t ~replica:r ~round:0)
      [ 1; 2; 3 ]
  in
  check Alcotest.int "honest replicas never split" 1
    (List.length (List.sort_uniq compare accepted))

let test_false_blame_no_spurious_replacement () =
  (* Figure 12's false-alarm attack: replica 3 piggybacks an accusation
     of the healthy primary 1 on a genuine view change (crash of primary
     0). A single accuser is short of the f+1 quorum, so instance 1 must
     keep its primary. *)
  let cfg =
    Rcc_runtime.Config.make ~protocol:Rcc_runtime.Config.MultiP ~n:4
      ~batch_size:10 ~clients:24 ~records:5_000
      ~duration:(Engine.of_seconds 1.2)
      ~warmup:(Engine.of_seconds 0.3) ~replica_timeout:(Engine.ms 250)
      ~client_timeout:(Engine.ms 400) ~collusion_wait:(Engine.ms 150) ()
  in
  let cluster = Rcc_runtime.Cluster.build cfg in
  let script =
    Rcc_chaos.Script.
      [
        { at = Engine.ms 100; action = Byz_on (3, False_blame [ 1 ]) };
        { at = Engine.ms 300; action = Crash 0 };
        { at = Engine.ms 600; action = Restart 0 };
        { at = Engine.ms 600; action = Byz_off 3 };
      ]
  in
  let _nemesis = Rcc_chaos.Nemesis.install cluster script in
  let _report = Rcc_runtime.Cluster.run cluster in
  (* Honest survivors: 1 and 2 (0 crashed and recovered, 3 is byzantine). *)
  List.iter
    (fun r ->
      match Rcc_runtime.Cluster.primaries_view cluster r with
      | _ :: p1 :: _ ->
          check Alcotest.int
            (Printf.sprintf "replica %d keeps instance 1's primary" r)
            1 p1
      | short ->
          Alcotest.failf "replica %d tracks %d primaries" r (List.length short))
    [ 1; 2 ]

let suite =
  ( "replica",
    [
      Alcotest.test_case "exec waits for all z" `Quick test_exec_waits_for_all_instances;
      Alcotest.test_case "exec round order" `Quick test_exec_rounds_in_order;
      Alcotest.test_case "exec duplicate notify" `Quick test_exec_duplicate_notify_ignored;
      Alcotest.test_case "exec null batch" `Quick test_exec_null_batches_get_no_response;
      Alcotest.test_case "exec reorder hook" `Quick test_exec_reorder_hook;
      Alcotest.test_case "metrics warmup" `Quick test_metrics_warmup_filter;
      Alcotest.test_case "metrics throughput guard" `Quick
        test_metrics_throughput_guard;
      Alcotest.test_case "metrics percentiles/timeline" `Quick
        test_metrics_percentiles_and_timeline;
      Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
      Alcotest.test_case "metrics timeline warmup consistency" `Quick
        test_metrics_timeline_warmup_consistency;
      Alcotest.test_case "metrics per instance" `Quick test_metrics_per_instance;
      Alcotest.test_case "client home primary" `Quick test_client_sends_to_home_primary;
      Alcotest.test_case "client f+1 quorum" `Quick test_client_completes_on_fplus1;
      Alcotest.test_case "client digest mismatch" `Quick test_client_mismatched_digests_dont_complete;
      Alcotest.test_case "client timeout/instance change" `Quick
        test_client_timeout_resend_and_instance_change;
      Alcotest.test_case "zyzzyva client all n" `Quick test_zyzzyva_client_needs_all_n;
      Alcotest.test_case "zyzzyva commit path" `Quick test_zyzzyva_commit_certificate_path;
      Alcotest.test_case "zyzzyva cert round/client" `Quick
        test_zyzzyva_cert_names_matching_quorum_round;
      Alcotest.test_case "zyzzyva degraded fallback" `Quick
        test_zyzzyva_degraded_client_skips_timeout;
      Alcotest.test_case "quorum helpers" `Quick test_quorum_helpers;
      Alcotest.test_case "byz excludes" `Quick test_byz_excludes;
      Alcotest.test_case "equivocation rejected" `Quick test_equivocate_rejected;
      Alcotest.test_case "false blame no replacement" `Slow
        test_false_blame_no_spurious_replacement;
    ] )
