(* Chaos subsystem tests: nemesis scripts driven through the cluster
   invariant checker — partition/heal, crash/restart, and the Example 3.3
   collusion attack under optimistic recovery. *)

module Engine = Rcc_sim.Engine
module Config = Rcc_runtime.Config
module Report = Rcc_runtime.Report
module Script = Rcc_chaos.Script
module Runner = Rcc_chaos.Runner
module Invariant = Rcc_chaos.Invariant
module Fuzzer = Rcc_chaos.Fuzzer
module Event = Rcc_trace.Event

let check = Alcotest.check
let ms = Engine.ms

let cfg ?(n = 4) protocol ~duration =
  Config.make ~protocol ~n ~batch_size:10 ~clients:24 ~records:5_000
    ~duration:(Engine.of_seconds duration)
    ~warmup:(Engine.of_seconds (duration /. 4.))
    ~replica_timeout:(Engine.ms 250) ~client_timeout:(Engine.ms 400)
    ~collusion_wait:(Engine.ms 150) ()

let assert_passes name outcome =
  if not (Runner.passed outcome) then begin
    Format.printf "%a@." Runner.pp_outcome outcome;
    Alcotest.failf "%s: chaos run failed" name
  end

let test_partition_heal () =
  let script =
    Script.
      [
        { at = ms 300; action = Partition [ [ 3 ] ] };
        { at = ms 600; action = Heal };
      ]
  in
  assert_passes "partition/heal"
    (Runner.run (cfg Config.MultiP ~duration:1.2) script)

let test_crash_restart () =
  (* Crash a primary mid-round; its instance must be replaced, and the
     restarted node must catch back up without forking any ledger. *)
  let script =
    Script.
      [
        { at = ms 400; action = Crash 0 };
        { at = ms 700; action = Restart 0 };
      ]
  in
  assert_passes "crash/restart"
    (Runner.run (cfg Config.MultiP ~duration:1.2) script)

let test_collusion_dark_victim () =
  (* Example 3.3: both primaries keep replica 3 in the dark. The blame
     evidence spreads across instances, so no single primary ever draws
     f+1 accusers and no replacement may happen; optimistic recovery
     (contract exchange) must still let the victim catch up once the
     attack stops. *)
  let script =
    Script.
      [
        { at = ms 300; action = Byz_on (0, Dark [ 3 ]) };
        { at = ms 300; action = Byz_on (1, Dark [ 3 ]) };
        { at = ms 800; action = Byz_off 0 };
        { at = ms 800; action = Byz_off 1 };
      ]
  in
  let outcome = Runner.run (cfg Config.MultiP ~duration:1.4) script in
  assert_passes "collusion" outcome;
  check Alcotest.int "no replacement on spread blames" 0
    outcome.Runner.report.Report.replacements

let test_forged_view_sync_harmless () =
  (* A byzantine replica broadcasts View_sync messages claiming views far
     ahead, naming itself primary, with certificate votes signed by its
     own key but attributed to other replicas. Certificate verification
     must reject every one: no honest replica's views or primaries may
     move, so the run ends with zero replacements and the coordinator-
     agreement invariant intact. *)
  let script =
    Script.
      [
        { at = ms 300; action = Byz_on (2, Forge_views) };
        { at = ms 800; action = Byz_off 2 };
      ]
  in
  let outcome = Runner.run (cfg Config.MultiP ~duration:1.2) script in
  assert_passes "forged view-sync" outcome;
  check Alcotest.int "no honest replica moved views" 0
    outcome.Runner.report.Report.replacements

let test_canary_reports_failure () =
  (* The intentionally-broken invariant must fail and be attributed, to
     prove the checker actually runs and reports. *)
  let outcome = Runner.run ~canary:true (cfg Config.MultiP ~duration:0.4) [] in
  check Alcotest.bool "canary run fails" false (Runner.passed outcome);
  check Alcotest.bool "violation names the canary" true
    (List.exists
       (fun (_, v) -> v.Invariant.invariant = "canary-no-commits")
       outcome.Runner.violations)

let test_speculative_fork_heals () =
  (* Scenario 7000022, open in ROADMAP since PR 1: a partition isolates a
     MultiZ instance primary mid-speculation, the survivors replace it
     and order different batches at the same slots. With speculative
     rollback the fork must heal — slot-agreement and ledger-prefix
     invariants hold through the view change and the final quiesced
     check. *)
  assert_passes "speculative fork (scenario 7000022)"
    (Fuzzer.run_one ~protocol:Config.MultiZ ~n:4
       ~duration:(Engine.of_seconds 2.0) ~scenario_seed:7000022 ())

let test_retransmission_dedup () =
  (* Scenario 7000021, open in ROADMAP since PR 8: under partition +
     crash + forged views a MultiP (PBFT) primary re-ordered a client's
     retransmitted batch at a fresh slot after the replied-cache floor
     passed the first execution, tripping no-duplicate-execution. The
     per-primary [ordered] table now re-announces the original
     Pre_prepare instead of burning a new slot. *)
  assert_passes "retransmission dedup (scenario 7000021)"
    (Fuzzer.run_one ~protocol:Config.MultiP ~n:4
       ~duration:(Engine.of_seconds 2.0) ~scenario_seed:7000021 ())

let test_restart_primary_resigns () =
  (* Scenario 9000030, found by the journal fuzzer: a restart-from-disk
     at 506 ms revives a MultiZ instance primary whose volatile next_seq
     regressed to the durable frontier, and re-assigning already
     broadcast slots forked the speculative history (slot-agreement
     violation at round 4352). Builder.restore now resigns every
     instance the successor leads until the view path re-establishes
     sequencing, so the scenario must pass with a primary replacement
     instead of an equivocation. *)
  assert_passes "restart-from-disk primary resigns (scenario 9000030)"
    (Fuzzer.run_one ~journal:true ~protocol:Config.MultiZ ~n:4
       ~duration:(Engine.of_seconds 2.0) ~scenario_seed:9000030 ())

let transfer_script duration =
  let pct p = duration * p / 100 in
  Script.
    [
      { at = pct 10; action = Partition [ [ 3 ] ] };
      { at = pct 70; action = Heal };
    ]

let test_multiz_transfer_install () =
  (* The multiz state-transfer scenario PR 6 had to skip: replica 3 sits
     out 60% of the run. Degraded clients keep the healthy majority at
     full commit-certificate throughput, so the healed replica faces a
     gap far past the contract window and only a snapshot install can
     converge it — the trace must show one covering >= 1000 rounds. *)
  let duration = Engine.of_seconds 2.0 in
  let cfg =
    Config.make ~protocol:Config.MultiZ ~n:4 ~batch_size:10 ~clients:40
      ~records:5_000 ~duration ~warmup:(duration / 4)
      ~replica_timeout:(ms 250) ~client_timeout:(ms 400)
      ~collusion_wait:(ms 150) ()
  in
  let outcome = Runner.run ~trace_ring:131_072 cfg (transfer_script duration) in
  assert_passes "multiz transfer" outcome;
  let installed =
    List.exists
      (fun (e : Event.t) ->
        match e.Event.payload with
        | Event.St_installed { rounds; _ } ->
            e.Event.replica = 3 && rounds >= 1_000
        | _ -> false)
      outcome.Runner.events
  in
  check Alcotest.bool "healed replica installed a >=1000-round snapshot" true
    installed

let test_fuzzer_deterministic () =
  let report () =
    Format.asprintf "%a" Fuzzer.pp_summary
      (Fuzzer.fuzz ~protocols:[ Config.MultiP ]
         ~duration:(Engine.of_seconds 0.5) ~seed:11 ~runs:1 ())
  in
  let a = report () in
  check Alcotest.bool "report non-empty" true (String.length a > 0);
  check Alcotest.string "same seed, same report" a (report ())

let test_script_roundtrip () =
  let script =
    Script.
      [
        { at = ms 10; action = Crash 2 };
        { at = ms 5; action = Byz_on (1, Dark [ 0; 3 ]) };
        { at = ms 20; action = Restart 2 };
      ]
  in
  check
    Alcotest.(list int)
    "faulty replicas" [ 1; 2 ]
    (Script.faulty_replicas script);
  check Alcotest.int "last event" (ms 20) (Script.last_event_time script);
  (match Script.sorted script with
  | { at; _ } :: _ -> check Alcotest.int "sorted head" (ms 5) at
  | [] -> Alcotest.fail "sorted dropped events");
  check Alcotest.bool "printable" true
    (String.length (Script.to_string script) > 0)

let suite =
  ( "chaos",
    [
      Alcotest.test_case "script basics" `Quick test_script_roundtrip;
      Alcotest.test_case "partition/heal" `Slow test_partition_heal;
      Alcotest.test_case "crash/restart mid-round" `Slow test_crash_restart;
      Alcotest.test_case "example 3.3 collusion" `Slow test_collusion_dark_victim;
      Alcotest.test_case "forged view-sync harmless" `Slow
        test_forged_view_sync_harmless;
      Alcotest.test_case "canary failure report" `Slow test_canary_reports_failure;
      Alcotest.test_case "speculative fork heals (7000022)" `Slow
        test_speculative_fork_heals;
      Alcotest.test_case "retransmission dedup (7000021)" `Slow
        test_retransmission_dedup;
      Alcotest.test_case "multiz transfer installs a snapshot" `Slow
        test_multiz_transfer_install;
      Alcotest.test_case "restart-from-disk primary resigns (9000030)" `Slow
        test_restart_primary_resigns;
      Alcotest.test_case "fuzzer determinism" `Slow test_fuzzer_deterministic;
    ] )
