let () =
  Alcotest.run "rcc"
    ([
      Test_common.suite;
      Test_crypto.suite;
      Test_sim.suite;
      Test_trace.suite;
      Test_storage.suite;
      Test_workload.suite;
      Test_messages.suite;
      Test_codec.suite;
      Test_replica.suite;
      Test_client_pool.suite;
      Test_exec_parallel.suite;
      Test_core.suite;
      Test_pbft.suite;
      Test_zyzzyva.suite;
      Test_hotstuff.suite;
      Test_cft.suite;
      Test_coordinator.suite;
      Test_runtime.suite;
      Test_state_transfer.suite;
      Test_journal.suite;
      Test_chaos.suite;
      Test_integration.suite;
    ]
    @ Conformance.suites)
