(* Simulation substrate tests: engine ordering, virtual CPU servers,
   network model. *)

module Engine = Rcc_sim.Engine
module Cpu = Rcc_sim.Cpu
module Net = Rcc_sim.Net
module Costs = Rcc_sim.Costs

let check = Alcotest.check

(* --- engine ----------------------------------------------------------------- *)

let test_engine_order () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule_at engine 30 (fun () -> log := 30 :: !log);
  Engine.schedule_at engine 10 (fun () -> log := 10 :: !log);
  Engine.schedule_at engine 20 (fun () -> log := 20 :: !log);
  Engine.run engine ~until:100;
  check Alcotest.(list int) "timestamp order" [ 10; 20; 30 ] (List.rev !log);
  check Alcotest.int "now is until" 100 (Engine.now engine)

let test_engine_tie_fifo () =
  let engine = Engine.create () in
  let log = ref [] in
  List.iter
    (fun v -> Engine.schedule_at engine 5 (fun () -> log := v :: !log))
    [ 1; 2; 3 ];
  Engine.run engine ~until:10;
  check Alcotest.(list int) "insertion order among ties" [ 1; 2; 3 ] (List.rev !log)

let test_engine_past_rejected () =
  let engine = Engine.create () in
  Engine.schedule_at engine 10 (fun () -> ());
  Engine.run engine ~until:50;
  Alcotest.check_raises "past scheduling"
    (Invalid_argument "Engine.schedule_at: scheduling in the past") (fun () ->
      Engine.schedule_at engine 10 (fun () -> ()))

let test_engine_nested_schedule () =
  let engine = Engine.create () in
  let fired = ref 0 in
  Engine.schedule_at engine 10 (fun () ->
      Engine.schedule_after engine 5 (fun () -> fired := Engine.now engine));
  Engine.run engine ~until:100;
  check Alcotest.int "nested event at 15" 15 !fired

let test_timer_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let timer = Engine.timer_after engine 10 (fun () -> fired := true) in
  check Alcotest.bool "pending" true (Engine.timer_pending timer);
  Engine.cancel timer;
  Engine.run engine ~until:100;
  check Alcotest.bool "cancelled timer silent" false !fired;
  check Alcotest.bool "not pending" false (Engine.timer_pending timer)

let test_engine_units () =
  check Alcotest.int "us" 1_000 (Engine.us 1);
  check Alcotest.int "ms" 1_000_000 (Engine.ms 1);
  check Alcotest.int "s" 1_000_000_000 (Engine.s 1);
  check Alcotest.int "of_seconds" 1_500_000_000 (Engine.of_seconds 1.5);
  check (Alcotest.float 1e-9) "to_seconds" 1.5 (Engine.to_seconds (Engine.of_seconds 1.5))

(* --- cpu servers -------------------------------------------------------------- *)

let test_cpu_fifo_queueing () =
  let engine = Engine.create () in
  let srv = Cpu.server engine ~name:"w" () in
  let log = ref [] in
  (* Two jobs submitted back-to-back serialize: 0..100, 100..150. *)
  Cpu.submit srv ~cost:100 (fun () -> log := ("a", Engine.now engine) :: !log);
  Cpu.submit srv ~cost:50 (fun () -> log := ("b", Engine.now engine) :: !log);
  Engine.run engine ~until:1000;
  check
    Alcotest.(list (pair string int))
    "completion times" [ ("a", 100); ("b", 150) ] (List.rev !log);
  check Alcotest.int "busy time" 150 (Cpu.busy_time srv)

let test_cpu_idle_gap () =
  let engine = Engine.create () in
  let srv = Cpu.server engine ~name:"w" () in
  let completions = ref [] in
  Cpu.submit srv ~cost:10 (fun () -> completions := Engine.now engine :: !completions);
  Engine.schedule_at engine 500 (fun () ->
      Cpu.submit srv ~cost:10 (fun () ->
          completions := Engine.now engine :: !completions));
  Engine.run engine ~until:1000;
  check Alcotest.(list int) "idle server restarts at now" [ 10; 510 ]
    (List.rev !completions)

let test_cpu_ready_time () =
  let engine = Engine.create () in
  let srv = Cpu.server engine ~name:"w" () in
  let fired = ref 0 in
  Cpu.submit_ready srv ~ready:200 ~cost:25 (fun () -> fired := Engine.now engine);
  Engine.run engine ~until:1000;
  check Alcotest.int "starts no earlier than ready" 225 !fired

let test_cpu_reserve_chain () =
  let engine = Engine.create () in
  let srv = Cpu.server engine ~name:"w" () in
  let a = Cpu.reserve srv ~ready:0 ~cost:10 in
  let b = Cpu.reserve srv ~ready:0 ~cost:10 in
  check Alcotest.int "first" 10 a;
  check Alcotest.int "second queues" 20 b;
  check Alcotest.int "backlog" 20 (Cpu.backlog srv)

let test_pool_earliest_dispatch () =
  let engine = Engine.create () in
  let pool = Cpu.pool engine ~name:"in" ~size:2 () in
  let done_at = ref [] in
  for _ = 1 to 4 do
    Cpu.pool_submit pool ~cost:10 (fun () -> done_at := Engine.now engine :: !done_at)
  done;
  Engine.run engine ~until:100;
  (* 4 jobs over 2 servers: two finish at 10, two at 20. *)
  check Alcotest.(list int) "parallel dispatch" [ 10; 10; 20; 20 ]
    (List.sort compare !done_at)

(* --- network -------------------------------------------------------------------- *)

let make_net ?(latency = Engine.us 100) ?(jitter = 0) ?(gbps = 8.0) ~nodes engine =
  Net.create engine ~nodes ~latency ~jitter ~gbps
    ~rng:(Rcc_common.Rng.create 1) ()

let test_net_delivery () =
  let engine = Engine.create () in
  let net = make_net ~nodes:2 engine in
  let got = ref None in
  Net.register net 1 (fun ~src ~size msg -> got := Some (src, size, msg));
  (* 1000 bytes at 8 Gbit/s = 1000 ns serialization, + 100 us latency. *)
  Net.send net ~src:0 ~dst:1 ~size:1000 "hello";
  Engine.run engine ~until:Engine.(ms 10);
  check
    Alcotest.(option (triple int int string))
    "delivered" (Some (0, 1000, "hello")) !got

let test_net_bandwidth_serializes () =
  let engine = Engine.create () in
  let net = make_net ~latency:0 ~nodes:2 engine in
  let times = ref [] in
  Net.register net 1 (fun ~src:_ ~size:_ () -> times := Engine.now engine :: !times);
  (* Two 1000-byte messages share the sender NIC: arrivals at 1 us and 2 us. *)
  Net.send net ~src:0 ~dst:1 ~size:1000 ();
  Net.send net ~src:0 ~dst:1 ~size:1000 ();
  Engine.run engine ~until:Engine.(ms 1);
  check Alcotest.(list int) "NIC serialization" [ 1000; 2000 ] (List.rev !times)

let test_net_dead_nodes () =
  let engine = Engine.create () in
  let net = make_net ~nodes:3 engine in
  let count = ref 0 in
  Net.register net 1 (fun ~src:_ ~size:_ () -> incr count);
  Net.set_dead net 2 true;
  check Alcotest.bool "is_dead" true (Net.is_dead net 2);
  Net.send net ~src:2 ~dst:1 ~size:10 ();
  (* dead sender *)
  Net.set_dead net 1 true;
  Net.send net ~src:0 ~dst:1 ~size:10 ();
  (* dead receiver *)
  Engine.run engine ~until:Engine.(ms 10);
  check Alcotest.int "nothing delivered" 0 !count

(* Regression: [send] used to return early when the *destination* was
   dead, skipping the sender's NIC serialization and the traffic
   counters — a sender cannot know the peer is down. Two large messages
   to a dead node must still queue on the sender's egress and delay a
   later message to a live node. *)
let test_net_dead_dst_costs_sender () =
  let engine = Engine.create () in
  let net = make_net ~latency:0 ~nodes:3 engine in
  let arrival = ref None in
  Net.register net 1 (fun ~src:_ ~size:_ () -> arrival := Some (Engine.now engine));
  Net.set_dead net 2 true;
  (* 10_000 bytes at 8 Gbit/s = 10 us serialization each. *)
  Net.send net ~src:0 ~dst:2 ~size:10_000 ();
  Net.send net ~src:0 ~dst:2 ~size:10_000 ();
  Net.send net ~src:0 ~dst:1 ~size:1_000 ();
  Engine.run engine ~until:Engine.(ms 10);
  (match !arrival with
  | Some at ->
      check Alcotest.int "queued behind dead-dst traffic"
        (Engine.us 21) at
  | None -> Alcotest.fail "live destination never got the message");
  check Alcotest.int "all sends counted" 3 (Net.messages_sent net);
  check Alcotest.int "all bytes counted" 21_000 (Net.bytes_sent net)

let test_net_drop_rule () =
  let engine = Engine.create () in
  let net = make_net ~nodes:2 engine in
  let count = ref 0 in
  Net.register net 1 (fun ~src:_ ~size:_ () -> incr count);
  Net.set_drop_rule net (Some (fun ~src ~dst:_ _ -> src = 0));
  Net.send net ~src:0 ~dst:1 ~size:10 ();
  Net.set_drop_rule net None;
  Net.send net ~src:0 ~dst:1 ~size:10 ();
  Engine.run engine ~until:Engine.(ms 10);
  check Alcotest.int "only undropped delivered" 1 !count

let test_net_stats () =
  let engine = Engine.create () in
  let net = make_net ~nodes:2 engine in
  Net.register net 1 (fun ~src:_ ~size:_ () -> ());
  Net.send net ~src:0 ~dst:1 ~size:100 ();
  Net.send net ~src:0 ~dst:1 ~size:200 ();
  Engine.run engine ~until:Engine.(ms 10);
  check Alcotest.int "messages" 2 (Net.messages_sent net);
  check Alcotest.int "bytes" 300 (Net.bytes_sent net)

let test_net_revive_fresh_incarnation () =
  let engine = Engine.create () in
  let net = make_net ~nodes:2 engine in
  let got = ref [] in
  Net.register net 1 (fun ~src:_ ~size:_ msg -> got := msg :: !got);
  (* In flight when the node crashes (arrival ~100 us), revived before
     arrival: a restarted process does not inherit the wire, so the
     pre-crash message must be discarded on arrival. *)
  Net.send net ~src:0 ~dst:1 ~size:10 "pre-crash";
  Engine.run engine ~until:(Engine.us 10);
  Net.set_dead net 1 true;
  Engine.run engine ~until:(Engine.us 20);
  Net.set_dead net 1 false;
  check Alcotest.int "second incarnation" 1 (Net.incarnation net 1);
  Engine.run engine ~until:(Engine.ms 1);
  check Alcotest.(list string) "pre-crash traffic discarded" [] !got;
  (* Post-revive traffic flows normally. *)
  Net.send net ~src:0 ~dst:1 ~size:10 "post-revive";
  Engine.run engine ~until:(Engine.ms 2);
  check Alcotest.(list string) "fresh NIC delivers" [ "post-revive" ] !got

let test_net_rules_compose () =
  let engine = Engine.create () in
  let net = make_net ~latency:0 ~jitter:0 ~nodes:3 engine in
  let arrivals = ref [] in
  Net.register net 1 (fun ~src:_ ~size:_ () ->
      arrivals := Engine.now engine :: !arrivals);
  (* Two delay rules accumulate; a drop rule on another link does not
     interfere. 100 bytes at 8 Gbit/s = 100 ns serialization. *)
  let d1 = Net.add_delay_rule net (fun ~src:_ ~dst -> if dst = 1 then Engine.us 10 else 0) in
  let _d2 = Net.add_delay_rule net (fun ~src:_ ~dst -> if dst = 1 then Engine.us 5 else 0) in
  let drop = Net.add_drop_rule net (fun ~src:_ ~dst _msg -> dst = 2) in
  Net.send net ~src:0 ~dst:1 ~size:100 ();
  Engine.run engine ~until:(Engine.ms 1);
  check Alcotest.(list int) "delays accumulate" [ Engine.us 15 + 100 ] !arrivals;
  (* Removing one delay rule leaves the other active. *)
  Net.remove_rule net d1;
  arrivals := [];
  Net.send net ~src:0 ~dst:1 ~size:100 ();
  Engine.run engine ~until:(Engine.ms 2);
  (match !arrivals with
  | [ at ] ->
      check Alcotest.bool "only removed rule's delay gone" true
        (at - Engine.ms 1 < Engine.us 15 + 100)
  | _ -> Alcotest.fail "expected one arrival");
  (* The drop rule still cuts 0 -> 2 until removed. *)
  let got2 = ref 0 in
  Net.register net 2 (fun ~src:_ ~size:_ () -> incr got2);
  Net.send net ~src:0 ~dst:2 ~size:100 ();
  Engine.run engine ~until:(Engine.ms 3);
  check Alcotest.int "drop rule cuts link" 0 !got2;
  Net.remove_rule net drop;
  Net.send net ~src:0 ~dst:2 ~size:100 ();
  Engine.run engine ~until:(Engine.ms 4);
  check Alcotest.int "drop rule removed" 1 !got2

let test_net_dup_rule_and_shim () =
  let engine = Engine.create () in
  let net = make_net ~latency:0 ~jitter:0 ~nodes:2 engine in
  let count = ref 0 in
  Net.register net 1 (fun ~src:_ ~size:_ () -> incr count);
  let dup = Net.add_dup_rule net (fun ~src:_ ~dst:_ _ -> 2) in
  Net.send net ~src:0 ~dst:1 ~size:100 ();
  Engine.run engine ~until:(Engine.ms 1);
  check Alcotest.int "two extra copies" 3 !count;
  Net.remove_rule net dup;
  (* The legacy set_drop_rule slot replaces itself and clears on None,
     without touching rules added through add_drop_rule. *)
  let keep = Net.add_drop_rule net (fun ~src ~dst:_ _msg -> src = 9) in
  Net.set_drop_rule net (Some (fun ~src:_ ~dst:_ _msg -> true));
  Net.send net ~src:0 ~dst:1 ~size:100 ();
  Engine.run engine ~until:(Engine.ms 2);
  check Alcotest.int "shim rule drops" 3 !count;
  Net.set_drop_rule net None;
  Net.send net ~src:0 ~dst:1 ~size:100 ();
  Engine.run engine ~until:(Engine.ms 3);
  check Alcotest.int "shim cleared" 4 !count;
  Net.remove_rule net keep

(* Model-based property: the virtual-timestamp server behaves exactly like
   a reference FIFO queue — completion_i = max(ready_i, completion_{i-1})
   + cost_i in submission order. *)
let cpu_matches_fifo_model =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"cpu: virtual time = FIFO queue model"
       QCheck2.Gen.(
         list_size (int_range 1 20) (pair (int_range 0 1000) (int_range 0 500)))
       (fun jobs ->
         let engine = Engine.create () in
         let srv = Cpu.server engine ~name:"m" () in
         let completions = ref [] in
         List.iter
           (fun (ready, cost) ->
             Cpu.submit_ready srv ~ready ~cost (fun () ->
                 completions := Engine.now engine :: !completions))
           jobs;
         Engine.run engine ~until:max_int;
         let expected =
           List.rev
             (fst
                (List.fold_left
                   (fun (acc, free) (ready, cost) ->
                     let finish = max ready free + cost in
                     (finish :: acc, finish))
                   ([], 0) jobs))
         in
         (* Completion callbacks fire in timestamp order; sorting both
            sides compares the multisets and the model order. *)
         List.sort compare !completions = List.sort compare expected))

(* --- costs ----------------------------------------------------------------------- *)

let test_costs_scaling () =
  let base = Costs.default in
  let scaled = Costs.scaled base 2.0 in
  check Alcotest.int "sign doubles" (2 * base.Costs.sign) scaled.Costs.sign;
  (* Down-scaling used to be a silent no-op (any factor <= 1.0 returned
     [t] unchanged); [0 < factor < 1] now means faster hardware. *)
  check Alcotest.int "sign halves" (base.Costs.sign / 2)
    (Costs.scaled base 0.5).Costs.sign;
  check Alcotest.int "identity at 1" base.Costs.sign
    (Costs.scaled base 1.0).Costs.sign;
  check Alcotest.int "identity at 0 (nonsense factor)" base.Costs.sign
    (Costs.scaled base 0.0).Costs.sign;
  check Alcotest.int "identity below 0 (nonsense factor)" base.Costs.sign
    (Costs.scaled base (-2.0)).Costs.sign;
  check Alcotest.int "fsync halves" (base.Costs.fsync / 2)
    (Costs.scaled base 0.5).Costs.fsync;
  check Alcotest.bool "disk_per_byte scales" true
    (Float.abs ((Costs.scaled base 0.5).Costs.disk_per_byte
                -. (0.5 *. base.Costs.disk_per_byte))
     < 1e-9);
  check Alcotest.bool "hash grows with size" true
    (Costs.hash_cost base 5400 > Costs.hash_cost base 250)

let suite =
  ( "sim",
    [
      Alcotest.test_case "engine order" `Quick test_engine_order;
      Alcotest.test_case "engine tie fifo" `Quick test_engine_tie_fifo;
      Alcotest.test_case "engine rejects past" `Quick test_engine_past_rejected;
      Alcotest.test_case "engine nested" `Quick test_engine_nested_schedule;
      Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
      Alcotest.test_case "engine units" `Quick test_engine_units;
      Alcotest.test_case "cpu fifo" `Quick test_cpu_fifo_queueing;
      Alcotest.test_case "cpu idle gap" `Quick test_cpu_idle_gap;
      Alcotest.test_case "cpu ready time" `Quick test_cpu_ready_time;
      Alcotest.test_case "cpu reserve chain" `Quick test_cpu_reserve_chain;
      Alcotest.test_case "pool dispatch" `Quick test_pool_earliest_dispatch;
      Alcotest.test_case "net delivery" `Quick test_net_delivery;
      Alcotest.test_case "net bandwidth" `Quick test_net_bandwidth_serializes;
      Alcotest.test_case "net dead nodes" `Quick test_net_dead_nodes;
      Alcotest.test_case "net dead dst costs sender" `Quick
        test_net_dead_dst_costs_sender;
      Alcotest.test_case "net drop rule" `Quick test_net_drop_rule;
      Alcotest.test_case "net stats" `Quick test_net_stats;
      Alcotest.test_case "net revive fresh incarnation" `Quick
        test_net_revive_fresh_incarnation;
      Alcotest.test_case "net rules compose" `Quick test_net_rules_compose;
      Alcotest.test_case "net dup rule and shim" `Quick
        test_net_dup_rule_and_shim;
      cpu_matches_fifo_model;
      Alcotest.test_case "costs scaling" `Quick test_costs_scaling;
    ] )
