(* Conflict-aware parallel execution: partitioner unit tests, the
   watermark and duplicate-reply-cache bounds, and the serial/parallel
   equivalence property — any notify arrival order and any execute-pool
   size must produce the same ledger, KV state and client responses as
   strict serial execution. *)

module Engine = Rcc_sim.Engine
module Cpu = Rcc_sim.Cpu
module Costs = Rcc_sim.Costs
module Batch = Rcc_messages.Batch
module Msg = Rcc_messages.Msg
module Exec = Rcc_replica.Exec
module Conflict = Rcc_replica.Conflict
module Acceptance = Rcc_replica.Acceptance
module Metrics = Rcc_replica.Metrics
module Txn = Rcc_workload.Txn

let check = Alcotest.check

let keychain = Rcc_crypto.Keychain.create ~seed:7 ~n:4 ~clients:256

let mk_batch ~id ~client txns =
  Batch.create ~id ~client ~txns:(Array.of_list txns)
    ~secret:(Rcc_crypto.Keychain.client_secret keychain client)

let acc ~instance ~round batch =
  {
    Acceptance.instance;
    round;
    batch;
    cert = [ 0; 1; 2 ];
    speculative = false;
    history = "";
  }

let w k = { Txn.key = k; op = Txn.Write k }
let r k = { Txn.key = k; op = Txn.Read }

let item ~round ~rank ~instance batch =
  { Conflict.round; rank; acc = acc ~instance ~round batch }

(* --- partitioner units ------------------------------------------------- *)

let test_overlap () =
  let a = mk_batch ~id:0 ~client:0 [ w 1; w 2 ] in
  let b = mk_batch ~id:1 ~client:1 [ w 2; w 3 ] in
  check Alcotest.int "write/write overlap" 1 (Conflict.overlap a b);
  let c = mk_batch ~id:2 ~client:2 [ r 1; r 9 ] in
  check Alcotest.int "write/read overlap" 1 (Conflict.overlap a c);
  check Alcotest.int "read/write overlap" 1 (Conflict.overlap c a);
  let d = mk_batch ~id:3 ~client:3 [ r 1; r 9 ] in
  check Alcotest.int "read/read sharing is free" 0 (Conflict.overlap c d);
  let e = mk_batch ~id:4 ~client:4 [ w 7 ] in
  check Alcotest.int "disjoint" 0 (Conflict.overlap a e)

let test_partition_disjoint () =
  let items =
    Array.init 4 (fun i ->
        item ~round:0 ~rank:i ~instance:i
          (mk_batch ~id:i ~client:i [ w (10 * i); w ((10 * i) + 1) ]))
  in
  let groups = Conflict.partition items in
  check Alcotest.int "disjoint batches stay singletons" 4 (List.length groups);
  List.iteri
    (fun i g ->
      check Alcotest.int "singleton" 1 (List.length g.Conflict.members);
      check Alcotest.int "group order = first member order" i
        (List.hd g.Conflict.members).Conflict.rank;
      check Alcotest.int "no conflict keys" 0 g.Conflict.conflict_keys)
    groups

let test_partition_transitive () =
  (* A{1} ~ B{1,2} ~ C{2}: one group even though A and C are disjoint. *)
  let a = mk_batch ~id:0 ~client:0 [ w 1 ] in
  let b = mk_batch ~id:1 ~client:1 [ w 1; w 2 ] in
  let c = mk_batch ~id:2 ~client:2 [ w 2 ] in
  let d = mk_batch ~id:3 ~client:3 [ w 99 ] in
  let items =
    [|
      item ~round:0 ~rank:0 ~instance:0 a;
      item ~round:0 ~rank:1 ~instance:1 b;
      item ~round:0 ~rank:2 ~instance:2 c;
      item ~round:0 ~rank:3 ~instance:3 d;
    |]
  in
  match Conflict.partition items with
  | [ g1; g2 ] ->
      check Alcotest.int "transitive group has 3 members" 3
        (List.length g1.Conflict.members);
      check (Alcotest.list Alcotest.int) "members keep (round, rank) order"
        [ 0; 1; 2 ]
        (List.map (fun it -> it.Conflict.rank) g1.Conflict.members);
      check Alcotest.int "glued by 2 overlapping keys" 2 g1.Conflict.conflict_keys;
      check Alcotest.int "bystander stays alone" 1
        (List.length g2.Conflict.members)
  | gs -> Alcotest.failf "expected 2 groups, got %d" (List.length gs)

let test_partition_duplicates () =
  (* Identical non-null digests (a re-ordered duplicate) must serialize
     even with no key overlap at all (here: read-only). *)
  let txns = [ r 5 ] in
  let a = mk_batch ~id:0 ~client:9 txns in
  let b = mk_batch ~id:1 ~client:9 txns in
  check Alcotest.int "read-only duplicates share no conflicting keys" 0
    (Conflict.overlap a b);
  let items =
    [| item ~round:0 ~rank:0 ~instance:0 a; item ~round:1 ~rank:0 ~instance:0 b |]
  in
  (match Conflict.partition items with
  | [ g ] ->
      check Alcotest.int "duplicates merged" 2 (List.length g.Conflict.members)
  | gs -> Alcotest.failf "expected 1 group, got %d" (List.length gs));
  (* Null batches all share digest "" but must NOT merge on it. *)
  let items =
    [|
      item ~round:0 ~rank:0 ~instance:0 (Batch.null ~round:0);
      item ~round:1 ~rank:0 ~instance:0 (Batch.null ~round:1);
    |]
  in
  check Alcotest.int "null batches never merge as duplicates" 2
    (List.length (Conflict.partition items))

let test_partition_cross_round () =
  (* Conflicts across rounds of a window merge; group takes the earliest
     member as its representative so ordering stays deterministic. *)
  let items =
    [|
      item ~round:3 ~rank:0 ~instance:0 (mk_batch ~id:0 ~client:0 [ w 1 ]);
      item ~round:3 ~rank:1 ~instance:1 (mk_batch ~id:1 ~client:1 [ w 50 ]);
      item ~round:4 ~rank:0 ~instance:0 (mk_batch ~id:2 ~client:2 [ r 1 ]);
      item ~round:4 ~rank:1 ~instance:1 (mk_batch ~id:3 ~client:3 [ w 60 ]);
    |]
  in
  let groups = Conflict.partition items in
  check Alcotest.int "3 groups" 3 (List.length groups);
  let first = List.hd groups in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "w1/r1 merged across rounds, ordered by (round, rank)"
    [ (3, 0); (4, 0) ]
    (List.map
       (fun it -> (it.Conflict.round, it.Conflict.rank))
       first.Conflict.members)

let test_total_keys () =
  let items =
    [|
      item ~round:0 ~rank:0 ~instance:0 (mk_batch ~id:0 ~client:0 [ w 1; w 1; r 2 ]);
      item ~round:0 ~rank:1 ~instance:1 (mk_batch ~id:1 ~client:1 [ r 9 ]);
    |]
  in
  (* dedup: {1}w {2}r + {9}r = 3 *)
  check Alcotest.int "total keys deduped" 3 (Conflict.total_keys items)

(* --- exec harness ------------------------------------------------------ *)

type outcome = {
  o_head : string;
  o_rounds : int;
  o_state : string;
  o_txns : int;
  o_responses : (int * int * string) list;  (* sorted (client, round, digest) *)
}

(* Drive a bare execute stage with a synthetic workload: [batches.(r).(i)]
   ordered by instance [i] in round [r], notified in [order], engine run
   to quiescence. *)
let run_exec ~sched_kind ~z ~batches ~order =
  let engine = Engine.create () in
  let server = Cpu.server engine ~name:"exec" () in
  let sched =
    match sched_kind with
    | `Serial -> Exec.Serial
    | `Parallel (threads, window) ->
        Exec.Parallel
          { pool = Cpu.pool engine ~name:"exec-pool" ~size:threads (); window }
  in
  let store = Rcc_storage.Kv_store.create () in
  Rcc_storage.Kv_store.init_records store ~count:64;
  let primaries = List.init z (fun i -> i) in
  let ledger = Rcc_storage.Ledger.create ~primaries in
  let txn_table = Rcc_storage.Txn_table.create () in
  let metrics = Metrics.create ~n:1 ~instances:z ~warmup:0 () in
  let responses = ref [] in
  let respond client msg =
    match msg with
    | Msg.Response { round; result_digest; _ } ->
        responses := (client, round, result_digest) :: !responses
    | _ -> ()
  in
  let exec =
    Exec.create ~engine ~costs:Costs.default ~server ~z ~self:0 ~store ~ledger
      ~txn_table ~current_primaries:(fun () -> primaries)
      ~respond ~metrics ~sched ()
  in
  List.iter
    (fun (round, i) -> Exec.notify exec (acc ~instance:i ~round batches.(round).(i)))
    order;
  Engine.run engine ~until:max_int;
  {
    o_head = Rcc_storage.Ledger.head_hash ledger;
    o_rounds = Rcc_storage.Ledger.length ledger;
    o_state = Rcc_storage.Kv_store.state_digest store;
    o_txns = Exec.executed_txns exec;
    o_responses = List.sort compare !responses;
  }

(* Synthetic workload: [rounds] x [z] batches; key range controls the
   conflict rate (small range = heavy conflicts, forcing multi-member
   groups). Occasional null batches and cross-round duplicates exercise
   the hole-filling and §3.1 duplicate-suppression paths. *)
let gen_batches rng ~rounds ~z ~key_range ~conflict_free =
  let id = ref 0 in
  Array.init rounds (fun round ->
      Array.init z (fun i ->
          incr id;
          let slot = (round * z) + i in
          if (not conflict_free) && Random.State.int rng 10 = 0 then
            Batch.null ~round
          else
            let ntxns = 1 + Random.State.int rng 3 in
            let txns =
              List.init ntxns (fun t ->
                  let key =
                    if conflict_free then (slot * 8) + t
                    else Random.State.int rng key_range
                  in
                  if Random.State.int rng 3 = 0 then r key else w key)
            in
            mk_batch ~id:!id ~client:(slot mod 256) txns))

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let equivalence_prop ~conflict_free (seed, threads, window) =
  let rng = Random.State.make [| seed |] in
  let z = 1 + Random.State.int rng 4 in
  let rounds = 1 + Random.State.int rng 10 in
  let key_range = 4 + Random.State.int rng 12 in
  let batches = gen_batches rng ~rounds ~z ~key_range ~conflict_free in
  let slots =
    List.concat_map
      (fun round -> List.init z (fun i -> (round, i)))
      (List.init rounds (fun r -> r))
  in
  let reference = run_exec ~sched_kind:`Serial ~z ~batches ~order:slots in
  let same label o =
    if
      o.o_head <> reference.o_head
      || o.o_rounds <> reference.o_rounds
      || o.o_state <> reference.o_state
      || o.o_txns <> reference.o_txns
      || o.o_responses <> reference.o_responses
    then
      QCheck2.Test.fail_reportf
        "%s diverged from serial: rounds %d vs %d, txns %d vs %d, head %s vs %s"
        label o.o_rounds reference.o_rounds o.o_txns reference.o_txns
        (String.sub (Rcc_common.Bytes_util.hex o.o_head) 0 12)
        (String.sub (Rcc_common.Bytes_util.hex reference.o_head) 0 12)
  in
  (* Serial, shuffled arrivals: gathering is order-insensitive. *)
  same "serial/shuffled"
    (run_exec ~sched_kind:`Serial ~z ~batches ~order:(shuffle rng slots));
  (* Parallel, in-order and shuffled arrivals. *)
  same "parallel/in-order"
    (run_exec ~sched_kind:(`Parallel (threads, window)) ~z ~batches ~order:slots);
  same "parallel/shuffled"
    (run_exec ~sched_kind:(`Parallel (threads, window)) ~z ~batches
       ~order:(shuffle rng slots));
  true

let equivalence_test ~name ~conflict_free =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name
       QCheck2.Gen.(
         triple (int_range 0 1_000_000) (int_range 1 8) (int_range 1 8))
       (equivalence_prop ~conflict_free))

(* --- speculative rollback ---------------------------------------------- *)

(* Fork/heal runner: execute the [fork] ordering end to end, roll
   instance [x] back to [frontier] (the view change installing a
   different ordering above it), feed instance [x]'s replacement batches
   from [final], and run to quiescence again. Other instances' rounds
   above the frontier re-execute from the exec layer's own uncommitted
   window — the caller re-notifies nothing for them. *)
let run_fork_heal ~sched_kind ~z ~fork ~final ~frontier ~x =
  let rounds = Array.length fork in
  let engine = Engine.create () in
  let server = Cpu.server engine ~name:"exec" () in
  let sched =
    match sched_kind with
    | `Serial -> Exec.Serial
    | `Parallel (threads, window) ->
        Exec.Parallel
          { pool = Cpu.pool engine ~name:"exec-pool" ~size:threads (); window }
  in
  let store = Rcc_storage.Kv_store.create () in
  Rcc_storage.Kv_store.init_records store ~count:64;
  let primaries = List.init z (fun i -> i) in
  let ledger = Rcc_storage.Ledger.create ~primaries in
  let exec =
    Exec.create ~engine ~costs:Costs.default ~server ~z ~self:0 ~store ~ledger
      ~txn_table:(Rcc_storage.Txn_table.create ())
      ~current_primaries:(fun () -> primaries)
      ~respond:(fun _ _ -> ())
      ~metrics:(Metrics.create ~n:1 ~instances:z ~warmup:0 ())
      ~sched ()
  in
  for round = 0 to rounds - 1 do
    for i = 0 to z - 1 do
      Exec.notify exec (acc ~instance:i ~round fork.(round).(i))
    done
  done;
  (* Finite horizon: [run] advances the clock to [until] once the queue
     drains, and phase 2 below must still be able to schedule work at
     [now + cost] without overflowing. *)
  Engine.run engine ~until:(Engine.of_seconds 3600.);
  Exec.rollback_to exec ~frontier ~instance:x;
  for round = frontier to rounds - 1 do
    Exec.notify exec (acc ~instance:x ~round final.(round).(x))
  done;
  Engine.run engine ~until:max_int;
  {
    o_head = Rcc_storage.Ledger.head_hash ledger;
    o_rounds = Rcc_storage.Ledger.length ledger;
    o_state = Rcc_storage.Kv_store.state_digest store;
    o_txns = Exec.executed_txns exec;
    o_responses = [];
  }

(* Execute -> rollback -> re-execute must leave exactly the state of
   executing the final ordering directly: same ledger head and length,
   same KV digest, same net executed-txn count — in serial AND parallel
   mode. This is the tentpole invariant of the speculative-rollback
   path: a healed fork is indistinguishable from never having forked. *)
let rollback_equivalence_prop (seed, threads, window) =
  let rng = Random.State.make [| seed |] in
  let z = 1 + Random.State.int rng 3 in
  let rounds = 2 + Random.State.int rng 8 in
  let key_range = 4 + Random.State.int rng 12 in
  let fork = gen_batches rng ~rounds ~z ~key_range ~conflict_free:false in
  let repl = gen_batches rng ~rounds ~z ~key_range ~conflict_free:false in
  let frontier = Random.State.int rng (rounds + 1) in
  let x = Random.State.int rng z in
  (* The final ordering: the fork's agreed prefix, instance [x]'s slots
     replaced from [frontier] up. *)
  let final =
    Array.mapi
      (fun round row ->
        Array.mapi
          (fun i b -> if round >= frontier && i = x then repl.(round).(i) else b)
          row)
      fork
  in
  let slots =
    List.concat_map
      (fun round -> List.init z (fun i -> (round, i)))
      (List.init rounds (fun r -> r))
  in
  let same label (healed : outcome) (direct : outcome) =
    if
      healed.o_head <> direct.o_head
      || healed.o_rounds <> direct.o_rounds
      || healed.o_state <> direct.o_state
      || healed.o_txns <> direct.o_txns
    then
      QCheck2.Test.fail_reportf
        "%s: rollback/re-execute diverged from direct execution (frontier %d, \
         instance %d): rounds %d vs %d, txns %d vs %d, head %s vs %s, kv %s \
         vs %s"
        label frontier x healed.o_rounds direct.o_rounds healed.o_txns
        direct.o_txns
        (String.sub (Rcc_common.Bytes_util.hex healed.o_head) 0 12)
        (String.sub (Rcc_common.Bytes_util.hex direct.o_head) 0 12)
        (String.sub (Rcc_common.Bytes_util.hex healed.o_state) 0 12)
        (String.sub (Rcc_common.Bytes_util.hex direct.o_state) 0 12)
  in
  let direct_serial =
    run_exec ~sched_kind:`Serial ~z ~batches:final ~order:slots
  in
  same "serial"
    (run_fork_heal ~sched_kind:`Serial ~z ~fork ~final ~frontier ~x)
    direct_serial;
  same "parallel"
    (run_fork_heal
       ~sched_kind:(`Parallel (threads, window))
       ~z ~fork ~final ~frontier ~x)
    { direct_serial with o_responses = [] };
  true

let rollback_equivalence_test =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30
       ~name:"rollback + re-execute = direct execution (serial and parallel)"
       QCheck2.Gen.(
         triple (int_range 0 1_000_000) (int_range 1 8) (int_range 1 8))
       rollback_equivalence_prop)

(* --- watermark --------------------------------------------------------- *)

let bare_exec ~z =
  let engine = Engine.create () in
  let server = Cpu.server engine ~name:"exec" () in
  let store = Rcc_storage.Kv_store.create () in
  let primaries = List.init z (fun i -> i) in
  let ledger = Rcc_storage.Ledger.create ~primaries in
  let exec =
    Exec.create ~engine ~costs:Costs.default ~server ~z ~self:0 ~store ~ledger
      ~txn_table:(Rcc_storage.Txn_table.create ())
      ~current_primaries:(fun () -> primaries)
      ~respond:(fun _ _ -> ())
      ~metrics:(Metrics.create ~n:1 ~instances:z ~warmup:0 ())
      ()
  in
  (engine, exec)

let test_watermark () =
  let engine, exec = bare_exec ~z:2 in
  check Alcotest.int "empty: next_round - 1" (-1) (Exec.max_pending_round exec);
  let put round i =
    Exec.notify exec
      (acc ~instance:i ~round (mk_batch ~id:((round * 2) + i) ~client:0 [ w 1 ]))
  in
  put 5 0;
  put 3 1;
  check Alcotest.int "watermark tracks the highest buffered round" 5
    (Exec.max_pending_round exec);
  (* Complete rounds 0..1 and drain them. *)
  for round = 0 to 1 do
    put round 0;
    put round 1
  done;
  Engine.run engine ~until:max_int;
  check Alcotest.int "executed prefix" 2 (Exec.next_round exec);
  check Alcotest.int "watermark survives execution" 5
    (Exec.max_pending_round exec);
  (* A snapshot install past everything collapses it to next_round - 1. *)
  Exec.install_snapshot exec ~seq:9 ~replied:[];
  check Alcotest.int "install drops stale rounds" 8 (Exec.max_pending_round exec)

(* --- duplicate-reply cache GC ------------------------------------------ *)

let test_replied_gc () =
  let engine, exec = bare_exec ~z:2 in
  (* 4 rounds x 2 instances, distinct clients: 8 cache entries. *)
  for round = 0 to 3 do
    for i = 0 to 1 do
      let client = (round * 2) + i in
      Exec.notify exec
        (acc ~instance:i ~round (mk_batch ~id:client ~client [ w client ]))
    done
  done;
  Engine.run engine ~until:max_int;
  let total () = Array.fold_left ( + ) 0 (Exec.replied_retained exec) in
  check Alcotest.int "all replies retained before any checkpoint" 8 (total ());
  check (Alcotest.list Alcotest.int) "per-instance split" [ 4; 4 ]
    (Array.to_list (Exec.replied_retained exec));
  (* One instance stabilizing is not enough: the floor is the min. *)
  Exec.on_stable exec ~instance:0 ~seq:3;
  check Alcotest.int "floor waits for every instance" 8 (total ());
  Exec.on_stable exec ~instance:1 ~seq:2;
  check Alcotest.int "entries below min stable evicted" 4 (total ());
  check Alcotest.int "evicted counted" 4 (Exec.replied_evicted exec);
  (* Regressing or repeating a frontier never un-evicts. *)
  Exec.on_stable exec ~instance:1 ~seq:1;
  Exec.on_stable exec ~instance:1 ~seq:2;
  check Alcotest.int "monotone" 4 (total ())

let suite =
  ( "exec_parallel",
    [
      Alcotest.test_case "conflict: overlap counting" `Quick test_overlap;
      Alcotest.test_case "conflict: disjoint partition" `Quick
        test_partition_disjoint;
      Alcotest.test_case "conflict: transitive merge" `Quick
        test_partition_transitive;
      Alcotest.test_case "conflict: duplicate digests" `Quick
        test_partition_duplicates;
      Alcotest.test_case "conflict: cross-round window" `Quick
        test_partition_cross_round;
      Alcotest.test_case "conflict: total keys" `Quick test_total_keys;
      Alcotest.test_case "watermark: max_pending_round" `Quick test_watermark;
      Alcotest.test_case "replied cache: checkpoint GC" `Quick test_replied_gc;
      equivalence_test
        ~name:"parallel = serial (conflict-free workloads, any order/threads)"
        ~conflict_free:true;
      equivalence_test
        ~name:"parallel = serial (conflicting workloads, any order/threads)"
        ~conflict_free:false;
      rollback_equivalence_test;
    ] )
